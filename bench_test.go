// Benchmarks: one testing.B target per paper table/figure (regenerating the
// experiment end-to-end), plus micro-benchmarks for the hot substrates.
// Run with: go test -bench=. -benchmem
package hotline_test

import (
	"testing"

	"hotline"
	"hotline/internal/accel"
	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
	"hotline/internal/tensor"
)

// benchExperiment runs one experiment generator per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	hotline.SetExperimentTrainIters(12) // keep functional training short
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := hotline.RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable1ISA(b *testing.B)            { benchExperiment(b, "tab1") }
func BenchmarkTable2Models(b *testing.B)         { benchExperiment(b, "tab2") }
func BenchmarkTable5Accuracy(b *testing.B)       { benchExperiment(b, "tab5") }
func BenchmarkFig3HybridBreakdown(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4GPUOnlyBreakdown(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5MultiNodeBreakdown(b *testing.B) {
	benchExperiment(b, "fig5")
}
func BenchmarkFig6AccessSkew(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7CPUSegregation(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8CorePlateau(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9EvolvingSkew(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig15SRRIPvsOracle(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16QueueBanks(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkFig18AccuracyParity(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19Speedup(b *testing.B)        { benchExperiment(b, "fig19") }
func BenchmarkFig20LatencyBreakdown(b *testing.B) {
	benchExperiment(b, "fig20")
}
func BenchmarkFig21Throughput(b *testing.B)      { benchExperiment(b, "fig21") }
func BenchmarkFig22HugeCTR(b *testing.B)         { benchExperiment(b, "fig22") }
func BenchmarkFig23CPUvsAccel(b *testing.B)      { benchExperiment(b, "fig23") }
func BenchmarkFig24ScratchPipe(b *testing.B)     { benchExperiment(b, "fig24") }
func BenchmarkFig25RatioSweep(b *testing.B)      { benchExperiment(b, "fig25") }
func BenchmarkFig26BatchSweep(b *testing.B)      { benchExperiment(b, "fig26") }
func BenchmarkFig27EALSize(b *testing.B)         { benchExperiment(b, "fig27") }
func BenchmarkFig28SyntheticModels(b *testing.B) { benchExperiment(b, "fig28") }
func BenchmarkFig29PerfPerWatt(b *testing.B)     { benchExperiment(b, "fig29") }
func BenchmarkFig30MultiNode(b *testing.B)       { benchExperiment(b, "fig30") }

// Design-choice ablations (DESIGN.md).
func BenchmarkAblEALPolicy(b *testing.B) { benchExperiment(b, "abl-eal") }
func BenchmarkAblFeistel(b *testing.B)   { benchExperiment(b, "abl-feistel") }
func BenchmarkAblOverlap(b *testing.B)   { benchExperiment(b, "abl-overlap") }
func BenchmarkAblSampling(b *testing.B)  { benchExperiment(b, "abl-sampling") }

// --- micro-benchmarks on the hot substrates -------------------------------

// BenchmarkEALTouch measures the Embedding Access Logger's learning-phase
// throughput (the accelerator's innermost loop).
func BenchmarkEALTouch(b *testing.B) {
	eal := accel.NewEAL(accel.EALConfig{SizeBytes: 1 << 20, Banks: 64, Ways: 8, BytesPerEntry: 2, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eal.Touch(i%26, int32(i%100000))
	}
}

// BenchmarkEALClassify measures acceleration-phase classification of a 4K
// Criteo Kaggle mini-batch.
func BenchmarkEALClassify(b *testing.B) {
	cfg := data.CriteoKaggle()
	acc := accel.New(accel.DefaultConfig())
	gen := data.NewGenerator(cfg)
	for i := 0; i < 2; i++ {
		acc.LearnBatch(gen.NextBatch(1024))
	}
	batch := gen.NextBatch(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Classify(batch)
	}
}

// BenchmarkHotlineTrainStep measures one functional Hotline training step
// (segregate + two µ-batch passes + update) on a scaled Kaggle model.
func BenchmarkHotlineTrainStep(b *testing.B) {
	cfg := data.CriteoKaggle()
	cfg.BotMLP = []int{13, 64, 16}
	cfg.TopMLP = []int{64, 1}
	m := hotline.NewModel(cfg, 1)
	tr := hotline.NewHotlineTrainer(m, 0.1)
	gen := hotline.NewGenerator(cfg)
	batch := gen.NextBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(batch)
	}
}

// BenchmarkPipelineIteration measures the full analytic timing model for
// every pipeline on the 4-GPU Kaggle workload.
func BenchmarkPipelineIteration(b *testing.B) {
	w := pipeline.NewWorkload(data.CriteoKaggle(), 4096, cost.PaperSystem(4))
	pipes := pipeline.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pipes {
			p.Iteration(w)
		}
	}
}

// BenchmarkZipfSample measures the workload generator's inner sampler.
func BenchmarkZipfSample(b *testing.B) {
	z := data.NewZipf(1_000_000, 1.1)
	rng := tensor.NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(rng)
	}
}
