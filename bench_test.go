// Benchmarks: one testing.B target per paper table/figure (regenerating the
// experiment end-to-end), plus micro-benchmarks for the hot substrates.
// Run with: go test -bench=. -benchmem
package hotline_test

import (
	"testing"

	"hotline"
	"hotline/internal/tools/microbench"
)

// benchExperiment runs one experiment generator per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	hotline.SetExperimentTrainIters(12) // keep functional training short
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := hotline.RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable1ISA(b *testing.B)            { benchExperiment(b, "tab1") }
func BenchmarkTable2Models(b *testing.B)         { benchExperiment(b, "tab2") }
func BenchmarkTable5Accuracy(b *testing.B)       { benchExperiment(b, "tab5") }
func BenchmarkFig3HybridBreakdown(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4GPUOnlyBreakdown(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5MultiNodeBreakdown(b *testing.B) {
	benchExperiment(b, "fig5")
}
func BenchmarkFig6AccessSkew(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7CPUSegregation(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8CorePlateau(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9EvolvingSkew(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig15SRRIPvsOracle(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16QueueBanks(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkFig18AccuracyParity(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19Speedup(b *testing.B)        { benchExperiment(b, "fig19") }
func BenchmarkFig20LatencyBreakdown(b *testing.B) {
	benchExperiment(b, "fig20")
}
func BenchmarkFig21Throughput(b *testing.B)      { benchExperiment(b, "fig21") }
func BenchmarkFig22HugeCTR(b *testing.B)         { benchExperiment(b, "fig22") }
func BenchmarkFig23CPUvsAccel(b *testing.B)      { benchExperiment(b, "fig23") }
func BenchmarkFig24ScratchPipe(b *testing.B)     { benchExperiment(b, "fig24") }
func BenchmarkFig25RatioSweep(b *testing.B)      { benchExperiment(b, "fig25") }
func BenchmarkFig26BatchSweep(b *testing.B)      { benchExperiment(b, "fig26") }
func BenchmarkFig27EALSize(b *testing.B)         { benchExperiment(b, "fig27") }
func BenchmarkFig28SyntheticModels(b *testing.B) { benchExperiment(b, "fig28") }
func BenchmarkFig29PerfPerWatt(b *testing.B)     { benchExperiment(b, "fig29") }
func BenchmarkFig30MultiNode(b *testing.B)       { benchExperiment(b, "fig30") }

// Design-choice ablations (DESIGN.md).
func BenchmarkAblEALPolicy(b *testing.B) { benchExperiment(b, "abl-eal") }
func BenchmarkAblFeistel(b *testing.B)   { benchExperiment(b, "abl-feistel") }
func BenchmarkAblOverlap(b *testing.B)   { benchExperiment(b, "abl-overlap") }
func BenchmarkAblSampling(b *testing.B)  { benchExperiment(b, "abl-sampling") }

// --- micro-benchmarks on the hot substrates -------------------------------
//
// The targets live in internal/tools/microbench, shared with the
// hotline-bench -bench runner (which records them into BENCH_<date>.json);
// these wrappers keep them reachable through `go test -bench`.

// BenchmarkEALTouch measures the Embedding Access Logger's learning-phase
// throughput (the accelerator's innermost loop).
func BenchmarkEALTouch(b *testing.B) { microbench.EALTouch(b) }

// BenchmarkEALClassify measures acceleration-phase classification of a 4K
// Criteo Kaggle mini-batch (steady state: 0 allocs/op).
func BenchmarkEALClassify(b *testing.B) { microbench.EALClassify(b) }

// BenchmarkHotlineTrainStep measures one functional Hotline training step
// (segregate + two µ-batch passes + update) on a scaled Kaggle model
// (steady state: 0 allocs/op at Parallelism(1)).
func BenchmarkHotlineTrainStep(b *testing.B) { microbench.HotlineTrainStep(b) }

// BenchmarkHotlineTrainStepPipelined is the cross-iteration pipelined
// entry point (lookahead classification staged every step).
func BenchmarkHotlineTrainStepPipelined(b *testing.B) { microbench.HotlineTrainStepPipelined(b) }

// BenchmarkHotlineTrainStepDepth4 is the train step through the depth-4
// lookahead pipeline (three mini-batches staged ahead every step).
func BenchmarkHotlineTrainStepDepth4(b *testing.B) { microbench.HotlineTrainStepDepth4(b) }

// BenchmarkShardedPrefetchWindow measures one async gather window end to
// end on a 4-node service (plan → queues → staging → consume → release).
func BenchmarkShardedPrefetchWindow(b *testing.B) { microbench.ShardedPrefetchWindow(b) }

// BenchmarkQuantGatherINT8 measures the fused dequantize-gather window with
// every remote row warm-tier resident at int8 (steady state: 0 allocs/op at
// Parallelism(1)); diff against BenchmarkShardedPrefetchWindow to isolate
// the quantization kernel.
func BenchmarkQuantGatherINT8(b *testing.B) { microbench.QuantGatherINT8(b) }

// BenchmarkQuantGatherFP16 is the fused dequantize-gather window with fp16
// warm rows.
func BenchmarkQuantGatherFP16(b *testing.B) { microbench.QuantGatherFP16(b) }

// BenchmarkServePredict measures one online prediction through the
// read-only serving path on a warmed 4-node sharded server (steady state:
// 0 allocs/op at Parallelism(1)).
func BenchmarkServePredict(b *testing.B) { microbench.ServePredict(b) }

// BenchmarkPipelineIteration measures the full analytic timing model for
// every pipeline on the 4-GPU Kaggle workload.
func BenchmarkPipelineIteration(b *testing.B) { microbench.PipelineIteration(b) }

// BenchmarkZipfSample measures the workload generator's inner sampler.
func BenchmarkZipfSample(b *testing.B) { microbench.ZipfSample(b) }
