// Package hotline is the public API of this reproduction of "Heterogeneous
// Acceleration Pipeline for Recommendation System Training" (ISCA 2024).
//
// The package re-exports the stable surface of the internal substrates:
//
//   - Dataset configs and synthetic generators (the paper's Table II
//     workloads with Zipfian popularity and day-to-day drift);
//   - Functional DLRM/TBSM models with full forward/backward/SGD;
//   - The training executors: the standard baseline and the Hotline
//     µ-batch executor with its accelerator-backed input classification;
//   - The accelerator model (EAL, lookup engines, ISA, power);
//   - The performance simulator: system specs, workloads, and the seven
//     training pipelines the paper compares;
//   - The experiment harness that regenerates every table and figure.
//
// See examples/ for runnable entry points and DESIGN.md for the system map.
package hotline

import (
	"hotline/internal/accel"
	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/experiments"
	"hotline/internal/metrics"
	"hotline/internal/model"
	"hotline/internal/par"
	"hotline/internal/pipeline"
	"hotline/internal/report"
	"hotline/internal/serve"
	"hotline/internal/shard"
	"hotline/internal/shard/chaos"
	"hotline/internal/train"
)

// --- parallelism -----------------------------------------------------------

// Parallelism sets the worker count used by every parallel substrate — the
// batch-sharded tensor/embedding kernels, the Hotline trainer's concurrent
// µ-batch passes — and returns the previous setting. n <= 0 restores the
// default (one worker per CPU core). Results are bit-identical for every
// setting: shards only partition independent work, and cross-shard gradient
// reductions happen in fixed index order.
func Parallelism(n int) int { return par.SetWorkers(n) }

// NumWorkers returns the effective worker count (>= 1).
func NumWorkers() int { return par.Workers() }

// PipelineDepth sets the prefetch pipeline depth k newly built Hotline
// executors use — how many gather windows may be in flight at once (the one
// the current iteration consumes plus k-1 staged for future mini-batches) —
// and returns the previous default. Depth 1 degenerates to synchronous
// staged gathers; depth 2 (the default) is the classic cross-iteration
// pipeline; deeper queues hide more fabric traffic at the cost of dirty-row
// repair traffic. Training state is bit-identical for every depth: staged
// rows rewritten by intervening sparse updates are delta-repaired before
// use (unless ShardService.SetStaleReads opts into measured staleness).
// k < 1 restores the default. Executors also expose the knob per-instance
// (HotlineTrainer.Depth).
func PipelineDepth(k int) int { return train.SetDefaultPipelineDepth(k) }

// DefaultPipelineDepth returns the current default prefetch pipeline depth.
func DefaultPipelineDepth() int { return train.DefaultPipelineDepth() }

// --- datasets and generators ---------------------------------------------

// DatasetConfig describes one synthetic workload (paper Table II shape).
type DatasetConfig = data.Config

// Generator produces deterministic mini-batches for a dataset.
type Generator = data.Generator

// Batch is one mini-batch of dense features, sparse indices and labels.
type Batch = data.Batch

// Dataset constructors (paper Table II).
var (
	// CriteoKaggle returns the RM2 workload (DLRM, 26 sparse features).
	CriteoKaggle = data.CriteoKaggle
	// TaobaoAlibaba returns the RM1 workload (TBSM with attention).
	TaobaoAlibaba = data.TaobaoAlibaba
	// CriteoTerabyte returns the RM3 workload (DLRM, 266M rows).
	CriteoTerabyte = data.CriteoTerabyte
	// Avazu returns the RM4 workload (DLRM, 21 sparse features).
	Avazu = data.Avazu
	// SynM1 returns the 196 GB multi-hot synthetic model (Fig 28/30).
	SynM1 = data.SynM1
	// SynM2 returns the 390 GB multi-hot synthetic model.
	SynM2 = data.SynM2
)

// Datasets returns the four real-world workloads in paper order.
func Datasets() []DatasetConfig { return data.AllDatasets() }

// DatasetByName resolves a dataset by name or RM id ("RM3").
var DatasetByName = data.ByName

// NewGenerator builds a batch generator positioned at day 0.
func NewGenerator(cfg DatasetConfig) *Generator { return data.NewGenerator(cfg) }

// --- functional models and training --------------------------------------

// Model is a DLRM or TBSM instance with full backprop.
type Model = model.Model

// NewModel builds a model with deterministic weights derived from seed.
func NewModel(cfg DatasetConfig, seed uint64) *Model { return model.New(cfg, seed) }

// Trainer consumes mini-batches and updates a model.
type Trainer = train.Trainer

// TrainRunConfig controls a training run.
type TrainRunConfig = train.RunConfig

// CurvePoint is one evaluation sample along a training run.
type CurvePoint = train.CurvePoint

// MetricSummary bundles accuracy/AUC/logloss.
type MetricSummary = metrics.Summary

// NewBaselineTrainer returns the standard mini-batch SGD executor.
func NewBaselineTrainer(m *Model, lr float32) Trainer { return train.NewBaseline(m, lr) }

// NewHotlineTrainer returns the µ-batch executor backed by the accelerator's
// EAL classification. Its updates are at parity with the baseline (Eq. 5).
func NewHotlineTrainer(m *Model, lr float32) *train.HotlineTrainer {
	return train.NewHotline(m, lr)
}

// PipelinedTrainer is a Trainer with one-mini-batch lookahead: given the
// next batch, the executor classifies it and issues its fabric prefetches
// while the current iteration finishes (bit-identical to stepping batch by
// batch). RunTraining feeds pipelined trainers automatically.
type PipelinedTrainer = train.PipelinedTrainer

// LookaheadTrainer is a PipelinedTrainer with a depth-k pipeline: the
// executor stages up to k-1 future mini-batches (classification + fabric
// prefetch), bit-identical to batch-by-batch stepping for every depth.
// RunTraining feeds lookahead trainers that many batches ahead.
type LookaheadTrainer = train.LookaheadTrainer

// NewBaselineAdagradTrainer is the baseline executor under dense + sparse
// Adagrad (the DLRM reference's production optimizer).
func NewBaselineAdagradTrainer(m *Model, lr float32) Trainer {
	return train.NewBaselineAdagrad(m, lr)
}

// NewHotlineAdagradTrainer is the Hotline µ-batch executor under dense +
// sparse Adagrad; each table's µ-batch gradients merge into one update per
// mini-batch, keeping parity with the Adagrad baseline.
func NewHotlineAdagradTrainer(m *Model, lr float32) *train.HotlineTrainer {
	return train.NewHotlineAdagrad(m, lr)
}

// RunTraining trains and returns the metric curve.
var RunTraining = train.Run

// ParityReport compares baseline and Hotline executors on identical data.
type ParityReport = train.ParityReport

// RunParity trains both executors from identical state (Fig 18 / Table V).
var RunParity = train.Parity

// Evaluate computes accuracy/AUC/logloss for predictions.
var Evaluate = metrics.Evaluate

// MaxModelStateDiff returns the largest absolute parameter difference
// between two models across dense and sparse state (0 when bit-identical).
var MaxModelStateDiff = model.MaxStateDiff

// --- sharded embedding service --------------------------------------------

// ShardConfig sizes a sharded embedding service: node count, per-node
// device-cache budget, row footprint and eviction policy.
type ShardConfig = shard.Config

// ShardService partitions embedding rows across simulated nodes with
// bounded per-node hot-entry device caches, and accounts every gather and
// gradient scatter the topology incurs.
type ShardService = shard.Service

// ShardStats is a snapshot of a service's measured traffic: cache
// hits/misses, gather/scatter rows and bytes, fills and evictions.
type ShardStats = shard.Stats

// CachePolicy selects the device-cache eviction policy.
type CachePolicy = shard.Policy

// Device-cache eviction policies.
const (
	CacheLRU   = shard.PolicyLRU
	CacheSRRIP = shard.PolicySRRIP
)

// NewShardService builds a sharded embedding service. The classifier
// decides which rows may replicate into device caches (nil admits all).
var NewShardService = shard.New

// NewHotlineShardedTrainer wraps a model in the Hotline executor with its
// embedding tables partitioned across the service's nodes. Training is
// bit-identical to NewHotlineTrainer for every node count and placement;
// the service additionally reports the measured cache and all-to-all
// traffic. The async gather engine is attached with overlap enabled (set
// OverlapGather = false on the returned trainer for synchronous gathers).
func NewHotlineShardedTrainer(m *Model, lr float32, svc *ShardService) *train.HotlineTrainer {
	return train.NewHotlineSharded(m, lr, svc)
}

// NewHotlineShardedAdagradTrainer is NewHotlineShardedTrainer under dense +
// sparse Adagrad; sharded training stays bit-identical to the single-node
// Adagrad executor (mn-adagrad scenario).
func NewHotlineShardedAdagradTrainer(m *Model, lr float32, svc *ShardService) *train.HotlineTrainer {
	return train.NewHotlineShardedAdagrad(m, lr, svc)
}

// ShardMeasurement carries measured sharding statistics (hit-rates,
// gather/scatter fractions, bytes per iteration, exposed-gather fraction)
// for the timing models.
type ShardMeasurement = pipeline.ShardMeasurement

// MeasureShardStats replays a real access stream against a sharded service
// under the given eviction policy and returns steady-state measurements
// (memoised per full configuration, including the policy).
var MeasureShardStats = pipeline.MeasureShardStats

// ShardProbe configures a MeasureShard measurement: node count, cache
// budget, batch size, eviction policy and ownership placement.
type ShardProbe = pipeline.ShardProbe

// MeasureShard is MeasureShardStats with the full probe surface, including
// the ownership placement (round-robin, capacity-weighted, hot-aware).
var MeasureShard = pipeline.MeasureShard

// NewShardedWorkload assembles a workload whose timing models consume
// measured sharding statistics instead of analytic popularity fractions.
// cacheBytes <= 0 selects the dataset's scaled hot-set budget. The
// exposed-gather fraction is measured too (MeasureOverlapExposed), so the
// Hotline model prices overlap from the pipelined engine by default.
var NewShardedWorkload = pipeline.NewShardedWorkload

// MeasureOverlapExposed runs the pipelined Hotline executor functionally —
// sync vs cross-iteration prefetch — and returns the measured fraction of
// gather wall time left exposed (memoised per dataset, node count and
// cache budget; default pipeline depth).
var MeasureOverlapExposed = pipeline.MeasureOverlapExposed

// MeasureOverlapExposedDepth is MeasureOverlapExposed at an explicit
// pipeline depth k (memoised per depth too): the mn-depth scenario's
// queue-depth-vs-staleness sweep.
var MeasureOverlapExposedDepth = pipeline.MeasureOverlapExposedDepth

// NewShardedWorkloadDepth is NewShardedWorkload with the overlap measured
// at an explicit pipeline depth k.
var NewShardedWorkloadDepth = pipeline.NewShardedWorkloadDepth

// DefaultShardCacheBytes returns the default per-node device-cache budget
// for a dataset (its scaled hot-set budget).
var DefaultShardCacheBytes = pipeline.DefaultShardCacheBytes

// --- ownership placement and async gather overlap --------------------------

// ShardPartitioner decides which node owns each embedding row; plug one
// into ShardConfig.Part to replace the round-robin default.
type ShardPartitioner = shard.Partitioner

// ShardPlacementKind names the shipped ownership policies for probes and
// reports.
type ShardPlacementKind = shard.PlacementKind

// Shipped ownership placements.
const (
	PlaceRoundRobin = shard.PlaceRoundRobin
	PlaceCapacity   = shard.PlaceCapacity
	PlaceHotAware   = shard.PlaceHotAware
)

// NewRoundRobinPartitioner returns the uniform row % nodes placement.
var NewRoundRobinPartitioner = shard.NewRoundRobin

// NewCapacityWeightedPartitioner spreads rows proportionally to integer
// per-node capacity weights (heterogeneous clusters).
var NewCapacityWeightedPartitioner = shard.NewCapacityWeighted

// NewCapacityWeightedHBMPartitioner derives the capacity-weighted placement
// from real per-node HBM byte budgets (each node's device-memory allowance
// at the given row footprint) instead of hand-picked weights.
var NewCapacityWeightedHBMPartitioner = shard.NewCapacityWeightedHBM

// ShardRequestCounter tallies per-node request counts from access streams;
// its HotAware method builds the placement that pins popular rows to their
// dominant requesting node.
type ShardRequestCounter = shard.RequestCounter

// NewShardRequestCounter returns an empty request counter for a topology.
var NewShardRequestCounter = shard.NewRequestCounter

// OverlapStats aggregates the async gather engine's measured traffic and
// how much of its wall time stayed exposed (svc.Gatherer().Stats()).
type OverlapStats = shard.OverlapStats

// AsyncGatherer is the engine that streams planned fabric fetches into
// staging buffers off the consumer's critical path.
type AsyncGatherer = shard.AsyncGatherer

// --- transport fabric -------------------------------------------------------

// Transport moves the shard service's cross-node traffic: per-owner gather
// fetch lists into staging buffers, and pre-reduced scatter updates back to
// the owning node. The in-proc default is a zero-overhead direct path;
// SocketTransport speaks the length-prefixed binary framing to real
// NodeServer peers. Plug one in with ShardService.SetTransport before
// tables are registered.
type Transport = shard.Transport

// InprocTransport is the explicit form of the default shared-address-space
// fast path (bit-for-bit and allocation-for-allocation identical to not
// setting a transport at all).
var InprocTransport = shard.NewInproc

// FabricConfig describes a socket fabric to dial: network family
// ("unix"/"tcp"), one listen address per shard node, per-op timeout.
type FabricConfig = shard.FabricConfig

// SocketTransport is the framed-protocol Transport over unix or TCP
// sockets, one connection per peer node.
type SocketTransport = shard.SocketTransport

// DialFabric connects a SocketTransport to already-listening node servers
// (e.g. hotline-node worker processes).
var DialFabric = shard.DialFabric

// NodeServer is one shard node of the multi-process fabric: it owns its
// rows authoritatively and answers framed fetch/push requests
// (cmd/hotline-node wraps it in a process).
type NodeServer = shard.NodeServer

// ServeNode starts a NodeServer listening on the given address (unix
// socket path, or host:port — port 0 picks a free port).
var ServeNode = shard.ServeNode

// LocalFabric bundles in-process node servers with a connected transport:
// real sockets and framing without separate OS processes (tests, examples,
// and hotline-bench's fallback when hotline-node is not on PATH).
type LocalFabric = shard.LocalFabric

// StartLocalFabric spins up nodes in-process NodeServers on the network
// family ("unix" or "tcp") and dials them.
func StartLocalFabric(nodes int, network string) (*LocalFabric, error) {
	return shard.StartLocalFabric(nodes, network, 0, nil)
}

// --- fault tolerance & recovery ---------------------------------------------

// FabricTimeouts are the socket fabric's validated timeout knobs: Dial
// (connection establishment), IO (per-operation read/write deadlines) and
// Retry (one recovery's total re-dial budget). Zero fields take documented
// non-zero defaults; negative fields are a config error.
type FabricTimeouts = shard.FabricTimeouts

// ResilientTransport layers retry, re-dial, mirror resync and spare
// adoption over a dialed SocketTransport: transient I/O failures recover,
// protocol corruption surfaces immediately, and per-peer health is
// observable (ShardService.PeerHealth).
type ResilientTransport = shard.ResilientTransport

// NewResilientTransport wraps a dialed socket fabric in the retry/re-dial
// policy. The zero RetryConfig is a working production config.
var NewResilientTransport = shard.NewResilientTransport

// RetryConfig tunes the resilient layer: attempt/redial bounds, backoff
// schedule, injectable clock, address re-resolution and spare-node
// adoption.
type RetryConfig = shard.RetryConfig

// PeerHealth is one peer's recovery snapshot: state (alive/suspect/dead),
// consecutive failures, re-dials, spare adoption, last error.
type PeerHealth = shard.PeerHealth

// RecoveryConfig selects the service's recovery policy: RecoverNone
// (fail-fast, the default), RecoverRedial (transport-level retry only), or
// RecoverAdopt (surviving nodes adopt a dead peer's shard, bit-identically).
type RecoveryConfig = shard.RecoveryConfig

// RecoveryPolicy names a recovery policy.
type RecoveryPolicy = shard.RecoveryPolicy

// Recovery policies, in escalation order.
const (
	RecoverNone   = shard.RecoverNone
	RecoverRedial = shard.RecoverRedial
	RecoverAdopt  = shard.RecoverAdopt
)

// RecoveryStats counts what recovery cost: shard adoptions, migrated and
// resynced row payload, re-routed window fetches, recovery wall clock.
type RecoveryStats = shard.RecoveryStats

// ChaosSchedule is a deterministic fault schedule (kill/restart/delay/
// corrupt events at training-window granularity) for recovery testing.
type ChaosSchedule = chaos.Schedule

// SeededChaosSchedule derives a deterministic kill/restart (+link-delay)
// schedule from a seed: same inputs, same faults, every run.
var SeededChaosSchedule = chaos.Seeded

// ChaosMeasurement is one functional training run through an injected
// fault: recovery latency, migration/resync payload, stale-served rows and
// the bit-parity evidence against the fault-free reference.
type ChaosMeasurement = pipeline.ChaosMeasurement

// MeasureChaos kills a peer mid-training under a deterministic schedule and
// measures what the chosen recovery policy cost (the mn-chaos scenario).
var MeasureChaos = pipeline.MeasureChaos

// FabricMeasurement is one functional training run over a real fabric:
// measured gather/scatter wall clock plus bit-parity evidence against the
// in-proc reference.
type FabricMeasurement = pipeline.FabricMeasurement

// MeasureFabric trains the pipelined executor over a socket fabric and the
// in-proc reference and returns the measured wall times and parity.
var MeasureFabric = pipeline.MeasureFabric

// MeasureFabricDepth is MeasureFabric with explicit pipeline depth,
// iteration and batch knobs.
var MeasureFabricDepth = pipeline.MeasureFabricDepth

// --- online serving and the load harness -----------------------------------

// Server answers prediction requests from weight-sharing model replicas
// behind a read/write lock: concurrent Predicts, exclusive Train steps.
// The read path never consumes prefetch windows or touches backward state,
// so a mixed train+serve run leaves training bit-identical to train-only;
// serve traffic is booked into the shard service's serve-side counters
// (ShardService.ServeSnapshot) while still warming the shared device
// caches.
type Server = serve.Server

// NewServer wraps a model in n predict replicas (model shadows; n <= 0
// means 1). Wrap training steps in Server.Train to serialise them against
// in-flight predicts.
var NewServer = serve.NewServer

// ServeRequest is one inference request: a batch to score plus the drift
// day it was drawn from.
type ServeRequest = serve.Request

// ServeCorpus is a deterministic request stream across drift days.
type ServeCorpus = serve.Corpus

// BuildServeCorpus draws a corpus from the Zipf/drifting generator:
// perDay request batches of batchSize samples for each of days days.
var BuildServeCorpus = serve.BuildCorpus

// LoadConfig drives one open-loop load run (target QPS, request cap,
// player bound).
type LoadConfig = serve.LoadConfig

// LoadReport is one load run's throughput and latency measurements.
type LoadReport = serve.LoadReport

// LatencySummary holds exact nearest-rank latency percentiles
// (p50/p90/p99/p999) over a full sample set.
type LatencySummary = serve.LatencySummary

// RunLoad replays a corpus against a server at a target QPS with bounded
// parallel request players; latency is measured from each request's
// scheduled arrival, so saturation shows up as queueing in the tail.
var RunLoad = serve.RunLoad

// SummarizeLatency computes the exact percentile summary of a latency
// sample set (reordering it in place).
var SummarizeLatency = serve.Summarize

// SweepPoint is one rate's report within a saturation sweep.
type SweepPoint = serve.SweepPoint

// SaturationSweep replays the corpus at each target rate, producing the
// QPS-vs-latency curve.
var SaturationSweep = serve.SaturationSweep

// LoadKnee returns the index of the highest-rate sweep point whose p99
// stays within budget (-1 when none does).
var LoadKnee = serve.Knee

// --- accelerator ----------------------------------------------------------

// Accelerator is the functional + timing model of the Hotline accelerator.
type Accelerator = accel.Accelerator

// AcceleratorConfig bundles EAL/engine/reducer/eDRAM settings (Table IV).
type AcceleratorConfig = accel.Config

// NewAccelerator builds an accelerator; DefaultAcceleratorConfig matches
// the paper's Table IV.
func NewAccelerator(cfg AcceleratorConfig) *Accelerator { return accel.New(cfg) }

// DefaultAcceleratorConfig is the paper's accelerator configuration.
var DefaultAcceleratorConfig = accel.DefaultConfig

// --- performance simulation ------------------------------------------------

// System is a simulated training server or cluster (paper Table III).
type System = cost.System

// PaperSystem returns the single-node evaluation server with n GPUs.
var PaperSystem = cost.PaperSystem

// PaperCluster returns an n-node cluster with 4 GPUs per node.
var PaperCluster = cost.PaperCluster

// Workload bundles a dataset, batch size and system for the timing models.
type Workload = pipeline.Workload

// NewWorkload assembles a workload with measured popularity statistics.
var NewWorkload = pipeline.NewWorkload

// TrainingPipeline is one training-system timing model.
type TrainingPipeline = pipeline.Pipeline

// IterStats is one steady-state iteration's timing and phase breakdown.
type IterStats = pipeline.IterStats

// Pipeline constructors for every system the paper compares.
var (
	// NewHotlinePipeline is the accelerator-pipelined Hotline system.
	NewHotlinePipeline = pipeline.NewHotline
	// NewHotlineCPUPipeline is the CPU-segregation ablation (§VII-D).
	NewHotlineCPUPipeline = pipeline.NewHotlineCPU
	// NewIntelDLRMPipeline is the hybrid CPU-GPU Intel-optimized baseline.
	NewIntelDLRMPipeline = pipeline.NewIntelDLRM
	// NewXDLPipeline is the parameter-server XDL baseline.
	NewXDLPipeline = pipeline.NewXDL
	// NewFAEPipeline is the static popularity scheduler baseline.
	NewFAEPipeline = pipeline.NewFAE
	// NewHugeCTRPipeline is the GPU-only (model-parallel HBM) baseline.
	NewHugeCTRPipeline = pipeline.NewHugeCTR
	// NewScratchPipePipeline is the idealised lookahead-cache comparator.
	NewScratchPipePipeline = pipeline.NewScratchPipeIdeal
)

// Pipelines returns every pipeline in figure order.
func Pipelines() []TrainingPipeline { return pipeline.All() }

// Speedup returns a.Total/b.Total (0 when either side OOMs).
var Speedup = pipeline.Speedup

// --- experiments ------------------------------------------------------------

// ExperimentTable is one regenerated table/figure.
type ExperimentTable = report.Table

// Experiments returns every experiment id (tab1..fig30).
func Experiments() []string { return experiments.All() }

// ExperimentTitle returns an experiment's title.
var ExperimentTitle = experiments.Title

// RunExperiment regenerates one table or figure by id, e.g. "fig19".
func RunExperiment(id string) (*ExperimentTable, error) { return experiments.Run(id) }

// ExperimentResult is one experiment's outcome within a concurrent sweep:
// its table (or captured error) plus the wall-clock duration.
type ExperimentResult = experiments.SweepResult

// SweepExperiments runs the given experiment ids on a bounded worker pool
// and returns one result per id in input order. workers <= 0 means NumCPU.
var SweepExperiments = experiments.Sweep

// EffectiveSweepWorkers reports the pool size SweepExperiments uses for a
// requested worker count and job count.
var EffectiveSweepWorkers = experiments.EffectiveWorkers

// RunAllExperiments regenerates experiments concurrently (every registered
// one when ids is empty) and returns their tables in stable id order. The
// sweep is deterministic: tables are byte-identical to serial RunExperiment
// calls for any worker count.
var RunAllExperiments = experiments.RunAll

// SetExperimentTrainIters adjusts functional-training experiment length.
var SetExperimentTrainIters = experiments.SetTrainIters
