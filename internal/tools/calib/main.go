package main

import (
	"fmt"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
)

func main() {
	for _, gpus := range []int{1, 2, 4} {
		sys := cost.PaperSystem(gpus)
		batch := 1024 * gpus // weak scaling as in Fig 19
		fmt.Printf("=== %d GPU, batch %d ===\n", gpus, batch)
		for _, cfg := range data.AllDatasets() {
			w := pipeline.NewWorkload(cfg, batch, sys)
			fmt.Printf("%-16s pop=%.2f cold=%.3f | ", cfg.Name, w.PopularFrac, w.ColdLookupFrac)
			var xdl pipeline.IterStats
			for _, p := range pipeline.All() {
				st := p.Iteration(w)
				if p.Name() == "XDL" {
					xdl = st
				}
				if st.OOM {
					fmt.Printf("%s=OOM ", p.Name())
					continue
				}
				fmt.Printf("%s=%.2fms(%.2fx) ", p.Name(), st.Total.Millis(), pipeline.Speedup(xdl, st))
			}
			fmt.Println()
		}
	}
}
