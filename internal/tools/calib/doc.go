// Command calib is the developer calibration harness: it sweeps every
// training pipeline across GPU counts and datasets (weak scaling, as in
// paper Figure 19) and prints iteration times and speedups normalised to
// XDL. It exists to re-fit the cost-model constants in internal/cost
// whenever they change; EXPERIMENTS.md records the bands the fit targets.
//
// It lives under internal/tools because it is a development aid, not part
// of the reproduction surface (cmd/ holds the user-facing binaries).
//
//	go run ./internal/tools/calib
package main
