// Package microbench defines the repository's micro-benchmark targets in
// one place, so `go test -bench` (bench_test.go) and the hotline-bench
// -bench runner execute identical code, and the runner can emit a
// machine-readable BENCH_<date>.json recording the performance trajectory
// (ns/op, B/op, allocs/op per target) across PRs. The checked-in bench/
// files are the reference points the zero-allocation and ≥25%-speedup
// criteria are judged against.
package microbench

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"hotline/internal/accel"
	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/model"
	"hotline/internal/pipeline"
	"hotline/internal/serve"
	"hotline/internal/shard"
	"hotline/internal/tensor"
	"hotline/internal/train"
)

// Target is one named micro-benchmark over a hot substrate.
type Target struct {
	Name string
	Fn   func(b *testing.B)
}

// Targets returns every micro-benchmark in display order.
func Targets() []Target {
	return []Target{
		{"EALTouch", EALTouch},
		{"EALClassify", EALClassify},
		{"HotlineTrainStep", HotlineTrainStep},
		{"HotlineTrainStepPipelined", HotlineTrainStepPipelined},
		{"HotlineTrainStepDepth4", HotlineTrainStepDepth4},
		{"ShardedPrefetchWindow", ShardedPrefetchWindow},
		{"QuantGatherINT8", QuantGatherINT8},
		{"QuantGatherFP16", QuantGatherFP16},
		{"ServePredict", ServePredict},
		{"PipelineIteration", PipelineIteration},
		{"ZipfSample", ZipfSample},
	}
}

// EALTouch measures the Embedding Access Logger's learning-phase
// throughput (the accelerator's innermost loop).
func EALTouch(b *testing.B) {
	eal := accel.NewEAL(accel.EALConfig{SizeBytes: 1 << 20, Banks: 64, Ways: 8, BytesPerEntry: 2, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eal.Touch(i%26, int32(i%100000))
	}
}

// EALClassify measures acceleration-phase classification of a 4K Criteo
// Kaggle mini-batch (steady state: 0 allocs/op).
func EALClassify(b *testing.B) {
	cfg := data.CriteoKaggle()
	acc := accel.New(accel.DefaultConfig())
	gen := data.NewGenerator(cfg)
	for i := 0; i < 2; i++ {
		acc.LearnBatch(gen.NextBatch(1024))
	}
	batch := gen.NextBatch(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Classify(batch)
	}
}

// benchTrainCfg is the scaled Kaggle model of the train-step benchmarks.
func benchTrainCfg() data.Config {
	cfg := data.CriteoKaggle()
	cfg.BotMLP = []int{13, 64, 16}
	cfg.TopMLP = []int{64, 1}
	return cfg
}

// HotlineTrainStep measures one functional Hotline training step
// (segregate + two µ-batch passes + update) on a scaled Kaggle model
// (steady state: 0 allocs/op at Parallelism(1)).
func HotlineTrainStep(b *testing.B) {
	cfg := benchTrainCfg()
	tr := train.NewHotline(model.New(cfg, 1), 0.1)
	gen := data.NewGenerator(cfg)
	batch := gen.NextBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(batch)
	}
}

// HotlineTrainStepPipelined is HotlineTrainStep through the
// cross-iteration pipelined entry point (lookahead staged every step).
func HotlineTrainStepPipelined(b *testing.B) {
	cfg := benchTrainCfg()
	tr := train.NewHotline(model.New(cfg, 1), 0.1)
	gen := data.NewGenerator(cfg)
	cur := gen.NextBatch(64)
	next := gen.NextBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.StepPipelined(cur, next)
		cur, next = next, cur
	}
}

// HotlineTrainStepDepth4 is the train step through the depth-4 lookahead
// pipeline (three mini-batches staged ahead every step; steady state:
// 0 allocs/op at Parallelism(1)).
func HotlineTrainStepDepth4(b *testing.B) {
	cfg := benchTrainCfg()
	tr := train.NewHotline(model.New(cfg, 1), 0.1)
	tr.Depth = 4
	gen := data.NewGenerator(cfg)
	const window = 8
	batches := make([]*data.Batch, window)
	for i := range batches {
		batches[i] = gen.NextBatch(64)
	}
	look := make([]*data.Batch, tr.Depth-1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range look {
			look[j] = batches[(i+1+j)%window]
		}
		tr.StepLookahead(batches[i%window], look)
	}
}

// ShardedPrefetchWindow measures one asynchronous gather window end to end
// (plan → double-buffered queues → staging → consume → ring release) on a
// 4-node service.
func ShardedPrefetchWindow(b *testing.B) {
	const dim, rows = 16, 256
	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 8 * int64(dim) * 4, RowBytes: int64(dim) * 4,
	}, nil)
	svc.EnableAsyncGather()
	sb := embedding.ShardBag(embedding.NewTable(rows, dim, tensor.NewRNG(3)), svc, 0)
	idx := make([][]int32, 32)
	for i := range idx {
		idx[i] = []int32{int32(i * 7 % rows), int32(i * 13 % rows), int32(i % 7)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Prefetch(idx)
		sb.Forward(idx)
	}
}

// quantGather measures the fused dequantize-gather path end to end on a
// 4-node precision-tiered service: every remote row is warm-tier resident at
// width w, so each window stages entirely through the fused kernel (fetch +
// in-place round trip into the pooled staging slots; steady state:
// 0 allocs/op at Parallelism(1)). The same index set as
// ShardedPrefetchWindow, so the two targets diff cleanly: the delta between
// them is the quantization kernel itself.
func quantGather(b *testing.B, q shard.QuantMode) {
	const dim, rows = 16, 256
	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: int64(rows) * int64(dim) * 4, RowBytes: int64(dim) * 4,
		Quant: q,
	}, nil)
	svc.EnableAsyncGather()
	sb := embedding.ShardBag(embedding.NewTable(rows, dim, tensor.NewRNG(3)), svc, 0)
	idx := make([][]int32, 32)
	for i := range idx {
		idx[i] = []int32{int32(i * 7 % rows), int32(i * 13 % rows), int32(i % 7)}
	}
	sb.Prefetch(idx) // warm: admit every remote row at the narrow width
	sb.Forward(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Prefetch(idx)
		sb.Forward(idx)
	}
}

// QuantGatherINT8 is the fused dequantize-gather window with int8 warm rows.
func QuantGatherINT8(b *testing.B) { quantGather(b, shard.QuantINT8) }

// QuantGatherFP16 is the fused dequantize-gather window with fp16 warm rows.
func QuantGatherFP16(b *testing.B) { quantGather(b, shard.QuantFP16) }

// benchServeServer builds the warmed 4-node serving stack the serve
// benchmarks and the BENCH load section share.
func benchServeServer(replicas int) *serve.Server {
	cfg := benchTrainCfg()
	m := model.New(cfg, 1)
	m.ShardEmbeddings(shard.New(shard.Config{
		Nodes: 4, CacheBytes: 1 << 20, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil))
	return serve.NewServer(m, replicas)
}

// ServePredict measures one online prediction (batch 32) through the
// read-only serving path on a warmed 4-node sharded server (steady state:
// 0 allocs/op at Parallelism(1)).
func ServePredict(b *testing.B) {
	srv := benchServeServer(1)
	cfg := benchTrainCfg()
	batch := data.NewGenerator(cfg).NextBatch(32)
	probs := srv.Predict(batch) // warm caches and scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probs = srv.PredictInto(probs, batch)
	}
}

// ServeLoadResult is the BENCH json's load-harness section: one open-loop
// run of the request player against the warmed serving stack, recording
// achieved throughput and exact tail percentiles. Latency targets live in
// the checked-in bench/ snapshots alongside the ns/op trajectory.
type ServeLoadResult struct {
	QPS        float64 `json:"qps"`
	Requests   int     `json:"requests"`
	Players    int     `json:"players"`
	Throughput float64 `json:"throughput_rps"`
	P50NS      int64   `json:"p50_ns"`
	P99NS      int64   `json:"p99_ns"`
	P999NS     int64   `json:"p999_ns"`
}

// ServeLoad replays a drifting request corpus at a modest fixed rate and
// condenses the report (Run attaches it to the BENCH json).
func ServeLoad() ServeLoadResult {
	srv := benchServeServer(2)
	corpus := serve.BuildCorpus(benchTrainCfg(), 2, 32, 32)
	rep := serve.RunLoad(srv, corpus, serve.LoadConfig{QPS: 500, Requests: 256, Players: 2})
	return ServeLoadResult{
		QPS: rep.QPS, Requests: rep.Requests, Players: rep.Players,
		Throughput: rep.Throughput,
		P50NS:      rep.Latency.P50.Nanoseconds(),
		P99NS:      rep.Latency.P99.Nanoseconds(),
		P999NS:     rep.Latency.P999.Nanoseconds(),
	}
}

// RecoveryResult is the BENCH json's fault-recovery section: one
// fixed-schedule chaos run per recovery policy (2 nodes, unix sockets, peer
// killed at window 1), recording the measured recovery latency and payload
// costs so the trajectory of recovery overhead is tracked across PRs like
// ns/op. MaxStateDiff must stay 0 — a recovered run that is not
// bit-identical is a correctness bug, not a slow run.
type RecoveryResult struct {
	Policy         string  `json:"policy"`
	Schedule       string  `json:"schedule"`
	RecoveryWallNS int64   `json:"recovery_wall_ns"`
	Redials        int     `json:"redials"`
	Adoptions      int     `json:"adoptions"`
	MigratedBytes  int64   `json:"migrated_bytes"`
	ResyncBytes    int64   `json:"resync_bytes"`
	RefetchedRows  int64   `json:"refetched_rows"`
	StaleServeRows int64   `json:"stale_serve_rows"`
	MaxStateDiff   float64 `json:"max_state_diff"`
	Error          string  `json:"error,omitempty"`
}

// ChaosRecovery runs the fixed chaos schedule under both recovery policies
// (Run attaches the results to the BENCH json).
func ChaosRecovery() []RecoveryResult {
	out := make([]RecoveryResult, 0, 2)
	for _, policy := range []shard.RecoveryPolicy{shard.RecoverRedial, shard.RecoverAdopt} {
		m, err := pipeline.MeasureChaos(data.CriteoKaggle(), 2, 0, "unix",
			8, 256, policy, 10*time.Millisecond)
		r := RecoveryResult{
			Policy:         policy.String(),
			Schedule:       m.Schedule,
			RecoveryWallNS: m.RecoveryWall.Nanoseconds(),
			Redials:        m.Redials,
			Adoptions:      m.Adoptions,
			MigratedBytes:  m.MigratedBytes,
			ResyncBytes:    m.ResyncBytes,
			RefetchedRows:  m.RefetchedRows,
			StaleServeRows: m.StaleServeRows,
			MaxStateDiff:   m.MaxStateDiff,
		}
		if err != nil {
			r.Error = err.Error()
		}
		out = append(out, r)
	}
	return out
}

// PipelineIteration measures the full analytic timing model for every
// pipeline on the 4-GPU Kaggle workload.
func PipelineIteration(b *testing.B) {
	w := pipeline.NewWorkload(data.CriteoKaggle(), 4096, cost.PaperSystem(4))
	pipes := pipeline.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pipes {
			p.Iteration(w)
		}
	}
}

// ZipfSample measures the workload generator's inner sampler.
func ZipfSample(b *testing.B) {
	z := data.NewZipf(1_000_000, 1.1)
	rng := tensor.NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(rng)
	}
}

// Result is one target's measured outcome.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the machine-readable BENCH_<date>.json payload.
type Report struct {
	Date        string `json:"date"`
	Label       string `json:"label,omitempty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Parallelism int    `json:"parallelism"`
	// PipelineDepth records the default prefetch pipeline depth the
	// benchmarks ran under (the depth-named targets override it locally).
	PipelineDepth int      `json:"pipeline_depth"`
	Results       []Result `json:"results"`
	// ServeLoad is the load-harness run (absent in pre-serving snapshots).
	ServeLoad *ServeLoadResult `json:"serve_load,omitempty"`
	// Recovery is the chaos-schedule fault-recovery run, one entry per
	// policy (absent in pre-recovery snapshots).
	Recovery []RecoveryResult `json:"recovery,omitempty"`
}

// Run executes every target under testing.Benchmark and returns the report.
func Run(label string, now time.Time) Report {
	rep := Report{
		Date:          now.Format("2006-01-02"),
		Label:         label,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		PipelineDepth: train.DefaultPipelineDepth(),
	}
	for _, t := range Targets() {
		r := testing.Benchmark(t.Fn)
		rep.Results = append(rep.Results, Result{
			Name:        t.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	load := ServeLoad()
	rep.ServeLoad = &load
	rep.Recovery = ChaosRecovery()
	return rep
}

// JSON renders the report with a trailing newline.
func (r Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
