package metrics

import (
	"fmt"
	"math"
	"sort"
)

// AUC computes the area under the ROC curve via the rank-statistic
// formulation, with proper tie handling (average ranks). Returns 0.5 when
// one class is absent.
func AUC(scores []float32, labels []float32) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: AUC %d scores vs %d labels", len(scores), len(labels)))
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Average ranks over ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	var pos, rankSum float64
	for i, l := range labels {
		if l == 1 {
			pos++
			rankSum += ranks[i]
		}
	}
	neg := float64(n) - pos
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (rankSum - pos*(pos+1)/2) / (pos * neg)
}

// Accuracy is the fraction of predictions on the correct side of 0.5.
func Accuracy(probs []float32, labels []float32) float64 {
	if len(probs) == 0 {
		return 0
	}
	correct := 0
	for i, p := range probs {
		pred := float32(0)
		if p >= 0.5 {
			pred = 1
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(probs))
}

// LogLoss is the mean binary cross-entropy of probabilities (clamped away
// from 0/1 for stability, like sklearn).
func LogLoss(probs []float32, labels []float32) float64 {
	if len(probs) == 0 {
		return 0
	}
	const eps = 1e-7
	var sum float64
	for i, p := range probs {
		q := math.Min(math.Max(float64(p), eps), 1-eps)
		if labels[i] == 1 {
			sum += -math.Log(q)
		} else {
			sum += -math.Log(1 - q)
		}
	}
	return sum / float64(len(probs))
}

// Summary bundles the Table V metric triple.
type Summary struct {
	Accuracy float64
	AUC      float64
	LogLoss  float64
}

// Evaluate computes all three metrics at once.
func Evaluate(probs []float32, labels []float32) Summary {
	return Summary{
		Accuracy: Accuracy(probs, labels),
		AUC:      AUC(probs, labels),
		LogLoss:  LogLoss(probs, labels),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("acc=%.4f auc=%.4f logloss=%.4f", s.Accuracy, s.AUC, s.LogLoss)
}
