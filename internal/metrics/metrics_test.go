package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"hotline/internal/tensor"
)

func TestAUCPerfectRanking(t *testing.T) {
	scores := []float32{0.1, 0.2, 0.8, 0.9}
	labels := []float32{0, 0, 1, 1}
	if a := AUC(scores, labels); a != 1 {
		t.Fatalf("perfect AUC = %g", a)
	}
	inverted := []float32{0.9, 0.8, 0.2, 0.1}
	if a := AUC(inverted, labels); a != 0 {
		t.Fatalf("inverted AUC = %g", a)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	rng := tensor.NewRNG(1)
	n := 5000
	scores := make([]float32, n)
	labels := make([]float32, n)
	for i := range scores {
		scores[i] = rng.Float32()
		if rng.Float32() < 0.5 {
			labels[i] = 1
		}
	}
	if a := AUC(scores, labels); math.Abs(a-0.5) > 0.03 {
		t.Fatalf("random AUC = %g", a)
	}
}

func TestAUCTiesAveraged(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 by tie averaging.
	scores := []float32{0.5, 0.5, 0.5, 0.5}
	labels := []float32{0, 1, 0, 1}
	if a := AUC(scores, labels); a != 0.5 {
		t.Fatalf("tied AUC = %g", a)
	}
}

func TestAUCOneClass(t *testing.T) {
	if a := AUC([]float32{0.1, 0.9}, []float32{1, 1}); a != 0.5 {
		t.Fatalf("single-class AUC = %g", a)
	}
}

// Property: AUC is invariant under strictly monotone score transforms.
func TestAUCMonotoneInvarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 50
		scores := make([]float32, n)
		labels := make([]float32, n)
		for i := range scores {
			scores[i] = rng.Float32() * 4
			if rng.Float32() < 0.4 {
				labels[i] = 1
			}
		}
		transformed := make([]float32, n)
		for i, s := range scores {
			transformed[i] = float32(math.Exp(float64(s))) // strictly monotone
		}
		return math.Abs(AUC(scores, labels)-AUC(transformed, labels)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracy(t *testing.T) {
	probs := []float32{0.9, 0.2, 0.6, 0.4}
	labels := []float32{1, 0, 0, 1}
	if a := Accuracy(probs, labels); a != 0.5 {
		t.Fatalf("accuracy = %g", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestLogLossKnown(t *testing.T) {
	probs := []float32{0.8, 0.3}
	labels := []float32{1, 0}
	want := (-math.Log(0.8) - math.Log(0.7)) / 2
	if got := LogLoss(probs, labels); math.Abs(got-want) > 1e-6 {
		t.Fatalf("logloss = %g want %g", got, want)
	}
}

func TestLogLossClampsExtremes(t *testing.T) {
	got := LogLoss([]float32{0, 1}, []float32{1, 0})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("logloss must clamp, got %g", got)
	}
}

func TestEvaluateBundle(t *testing.T) {
	s := Evaluate([]float32{0.9, 0.1}, []float32{1, 0})
	if s.Accuracy != 1 || s.AUC != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String should render")
	}
}
