// Package metrics implements the evaluation metrics the paper reports
// (Table V, Figure 18): ROC AUC, binary accuracy, and log-loss.
//
// In the DESIGN.md layering the package is a leaf consumed by
// internal/train (evaluation along training curves) and the accuracy
// experiments; it depends on nothing but the standard library.
package metrics
