package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs f under a fixed worker count and restores the previous
// setting afterwards.
func withWorkers(n int, f func()) {
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if got := SetWorkers(0); got != 3 {
		t.Fatalf("SetWorkers returned %d, want previous 3", got)
	}
	if Workers() < 1 {
		t.Fatalf("auto Workers() = %d, want >= 1", Workers())
	}
}

func TestForWorkCoversRangeExactlyOnce(t *testing.T) {
	const n = 10_000
	withWorkers(8, func() {
		visits := make([]int32, n)
		ForWork(n, minShardWork, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad shard [%d, %d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("index %d visited %d times", i, v)
			}
		}
	})
}

func TestForWorkSerialFallbacks(t *testing.T) {
	countCalls := func(n int, perItem int64) int {
		var mu sync.Mutex
		calls := 0
		ForWork(n, perItem, func(lo, hi int) {
			mu.Lock()
			calls++
			mu.Unlock()
		})
		return calls
	}
	withWorkers(1, func() {
		if c := countCalls(1_000_000, 1024); c != 1 {
			t.Fatalf("workers=1 made %d calls, want 1 serial call", c)
		}
	})
	withWorkers(8, func() {
		if c := countCalls(16, 1); c != 1 {
			t.Fatalf("tiny loop made %d calls, want 1 serial call", c)
		}
		if c := countCalls(1_000_000, 1024); c <= 1 {
			t.Fatalf("large loop made %d calls, want > 1 shard", c)
		}
	})
	ForWork(0, 1, func(lo, hi int) { t.Fatal("n=0 must not invoke fn") })
}

// Panics inside worker goroutines must surface on the calling goroutine —
// recoverable like a serial kernel panic — not crash the process.
func TestForWorkPropagatesPanic(t *testing.T) {
	withWorkers(4, func() {
		defer func() {
			if r := recover(); r != "kernel boom" {
				t.Fatalf("recovered %v, want the worker panic", r)
			}
		}()
		ForWork(1_000_000, 1024, func(lo, hi int) { panic("kernel boom") })
		t.Fatal("ForWork must re-panic")
	})
}

func TestDoPropagatesPanic(t *testing.T) {
	for _, idx := range []int{0, 1} {
		withWorkers(4, func() {
			defer func() {
				if r := recover(); r != "thunk boom" {
					t.Fatalf("thunk %d: recovered %v, want the thunk panic", idx, r)
				}
			}()
			thunks := []func(){func() {}, func() {}}
			thunks[idx] = func() { panic("thunk boom") }
			Do(thunks...)
			t.Fatal("Do must re-panic")
		})
	}
}

func TestDoRunsAllThunks(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(w, func() {
			var ran [3]atomic.Bool
			Do(
				func() { ran[0].Store(true) },
				func() { ran[1].Store(true) },
				func() { ran[2].Store(true) },
			)
			for i := range ran {
				if !ran[i].Load() {
					t.Fatalf("workers=%d: thunk %d did not run", w, i)
				}
			}
		})
	}
}
