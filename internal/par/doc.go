// Package par is the process-wide parallelism substrate for the functional
// training layer. It provides a single worker-count knob (the public
// hotline.Parallelism API) and data-parallel loop helpers that the tensor,
// nn, embedding and model packages use to shard batch work across cores.
//
// Determinism contract: every kernel built on this package computes each
// output element with the exact scalar operation sequence of its serial
// loop — shards only partition *independent* output elements, never a
// floating-point reduction. Results are therefore bit-identical for every
// worker count, including 1.
//
// In the DESIGN.md layering this is the lowest substrate: everything that
// parallelises (kernels, the Hotline executor's concurrent µ-batches, the
// experiment sweep's per-kernel sharding) routes through it, which is what
// makes one knob govern the whole process.
//
//hotline:deterministic
package par
