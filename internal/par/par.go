package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride holds the configured worker count; 0 means "auto"
// (runtime.NumCPU()).
var workerOverride atomic.Int64

// SetWorkers sets the worker count used by all parallel kernels and returns
// the previous setting. n <= 0 restores the default (NumCPU). Safe for
// concurrent use, though callers normally set it once at startup.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// Workers returns the effective worker count (>= 1).
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// minShardWork is the minimum number of scalar operations a shard must carry
// before forking is worth a goroutine handoff (~a few microseconds of math).
const minShardWork = 1 << 15

// Serial reports whether a kernel over n items of perItem scalar ops each
// should run serially: a single worker, or total work below the forking
// threshold. Hot kernels branch on it and run their loop body directly in
// the serial case instead of building a closure for ForWork — a closure
// passed to ForWork escapes to the heap even when ForWork would take its
// own serial path, and the steady-state training loop must not allocate.
func Serial(n int, perItem int64) bool {
	if n <= 0 {
		return true
	}
	if perItem < 1 {
		perItem = 1
	}
	return Workers() <= 1 || int64(n)*perItem < 2*minShardWork
}

// ForWork runs fn over contiguous shards covering [0, n). perItem estimates
// the scalar-operation cost of one item; loops whose total work is below
// 2*minShardWork — or when Workers() == 1 — run serially as fn(0, n) on the
// calling goroutine.
//
// fn must compute items independently: no cross-item accumulation may span a
// shard boundary (see the package determinism contract).
func ForWork(n int, perItem int64, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if perItem < 1 {
		perItem = 1
	}
	if w <= 1 || int64(n)*perItem < 2*minShardWork {
		fn(0, n)
		return
	}
	itemsPerShard := int(minShardWork / perItem)
	if itemsPerShard < 1 {
		itemsPerShard = 1
	}
	shards := (n + itemsPerShard - 1) / itemsPerShard
	if shards > w {
		shards = w
	}
	if shards <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + shards - 1) / shards
	var wg sync.WaitGroup
	var trap panicTrap
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer trap.capture()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	trap.repanic()
}

// panicTrap forwards the first panic from a worker goroutine to the caller,
// so a panic inside a parallel kernel behaves like its serial counterpart —
// recoverable by the caller (the sweep's per-experiment capture relies on
// this) instead of crashing the process from an unjoined goroutine.
type panicTrap struct {
	mu  sync.Mutex
	val any
}

// capture is deferred inside each worker goroutine.
func (p *panicTrap) capture() {
	if r := recover(); r != nil {
		p.mu.Lock()
		if p.val == nil {
			p.val = r
		}
		p.mu.Unlock()
	}
}

// repanic rethrows the first captured panic on the calling goroutine. Must
// run after every worker has been joined.
func (p *panicTrap) repanic() {
	if p.val != nil {
		panic(p.val)
	}
}

// Go runs fn(w) for w in [0, n) on n concurrently running goroutines and
// waits for all of them. Unlike ForWork, the concurrency is the caller's
// choice and ignores the global worker knob: Go's workers are request
// players and other blocking loops — they spend their life in sleeps and
// lock waits, not arithmetic — so serialising them on a 1-CPU box would
// change semantics, not just speed. n == 1 runs inline. Panics propagate to
// the caller after every worker has been joined.
func Go(n int, fn func(worker int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var trap panicTrap
	for w := 1; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer trap.capture()
			fn(w)
		}(w)
	}
	func() {
		defer trap.capture()
		fn(0)
	}()
	wg.Wait()
	trap.repanic()
}

// Do runs the given thunks concurrently (bounded only by their count) and
// waits for all of them. With Workers() == 1 the thunks run sequentially in
// order. The train layer uses this for the popular / non-popular µ-batch
// passes, whose gradients are later reduced in fixed index order.
func Do(thunks ...func()) {
	if Workers() <= 1 || len(thunks) <= 1 {
		for _, f := range thunks {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	var trap panicTrap
	for _, f := range thunks[1:] {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			defer trap.capture()
			f()
		}(f)
	}
	func() {
		defer trap.capture()
		thunks[0]()
	}()
	wg.Wait()
	trap.repanic()
}
