// Package cost holds the device catalog (paper Table III) and the analytic
// cost models that translate work (FLOPs, bytes, lookups) into simulated
// time on each device and link. All pipelines share these models, so
// relative speedups reflect scheduling and placement rather than
// per-pipeline constants.
//
// In the DESIGN.md layering the package is the pricing layer between
// internal/sim (simulated time and resources) and internal/pipeline (the
// training-system timing models). internal/shard also feeds its *measured*
// gather/scatter volumes through the collective models here, so measured
// and analytic traffic are priced identically.
package cost
