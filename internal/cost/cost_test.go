package cost

import (
	"testing"

	"hotline/internal/sim"
)

func TestLinkTransfer(t *testing.T) {
	l := LinkSpec{Name: "test", Bandwidth: 1e9, Latency: sim.Microseconds(1)}
	if got := l.Transfer(0); got != sim.Microseconds(1) {
		t.Fatalf("zero-byte transfer = %v", got)
	}
	// 1 GB at 1 GB/s = 1 s + latency.
	got := l.Transfer(1e9)
	want := sim.SecondsDur(1) + sim.Microseconds(1)
	if got != want {
		t.Fatalf("transfer = %v want %v", got, want)
	}
}

func TestPaperSystemMatchesTable3(t *testing.T) {
	s := PaperSystem(4)
	if s.GPU.HBMBytes != 16<<30 {
		t.Fatal("V100 must have 16GB HBM")
	}
	if s.GPU.HBMBandwidth != 900e9 {
		t.Fatal("HBM2 must be 900GB/s")
	}
	if s.CPU.DDRBandwidth != 76.8e9 {
		t.Fatal("DDR4 must be 76.8GB/s")
	}
	if s.CPU.Cores != 24 {
		t.Fatal("Xeon 4116 has 24 cores")
	}
	if s.TotalGPUs() != 4 {
		t.Fatal("TotalGPUs wrong")
	}
	if PaperCluster(2).TotalGPUs() != 8 {
		t.Fatal("cluster GPUs wrong")
	}
}

func TestHBMBeatsDDRForLookups(t *testing.T) {
	s := PaperSystem(1)
	n, row := int64(4096*26), int64(64*4)
	cpu := CPUEmbLookupTime(s.CPU, n, row)
	gpu := GPUEmbLookupTime(s.GPU, n, row)
	if gpu >= cpu {
		t.Fatalf("HBM gather (%v) must beat DDR gather (%v)", gpu, cpu)
	}
	// Paper §IV: roofline gives ~3x for HBM over the Intel DDR4 operator;
	// our derated bandwidths should put the ratio in the 2-60x range
	// depending on fixed costs. Check a sane lower bound on the asymptote.
	bigN := int64(1 << 22)
	ratio := float64(CPUEmbLookupTime(s.CPU, bigN, row)) / float64(GPUEmbLookupTime(s.GPU, bigN, row))
	if ratio < 3 {
		t.Fatalf("asymptotic HBM/DDR lookup ratio = %.1f, want >= 3", ratio)
	}
}

func TestMLPTimeScalesWithFLOPs(t *testing.T) {
	g := V100()
	t1 := GPUMLPTime(g, 1e9, 0)
	t2 := GPUMLPTime(g, 2e9, 0)
	if d := t2 - 2*t1; d < -1 || d > 1 {
		t.Fatalf("GPU MLP time must be linear in FLOPs: %v vs %v", t1, t2)
	}
	if GPUMLPTime(g, 0, 3) != 3*g.KernelLaunch {
		t.Fatal("kernel launch overhead missing")
	}
	c := XeonSilver4116()
	if CPUMLPTime(c, 1e9) <= GPUMLPTime(g, 1e9, 0) {
		t.Fatal("CPU GEMM must be slower than GPU")
	}
}

func TestAllReduceProperties(t *testing.T) {
	link := NVLink2()
	if AllReduceTime(link, 1<<20, 1) != 0 {
		t.Fatal("single participant all-reduce must be free")
	}
	t2 := AllReduceTime(link, 1<<20, 2)
	t4 := AllReduceTime(link, 1<<20, 4)
	if t2 <= 0 || t4 <= t2 {
		t.Fatalf("all-reduce must grow with participants: %v %v", t2, t4)
	}
	// Ring all-reduce asymptote: per-rank traffic < 2x buffer.
	big := AllReduceTime(link, 1<<30, 64)
	naive := link.Transfer(2 << 30)
	if big > naive+sim.Milliseconds(1) {
		t.Fatalf("ring all-reduce should not exceed 2x buffer transfer: %v vs %v", big, naive)
	}
}

func TestAllToAllScalesWithParticipants(t *testing.T) {
	link := NVLink2()
	if AllToAllTime(link, 1<<20, 1) != 0 {
		t.Fatal("single participant all-to-all must be free")
	}
	t2 := AllToAllTime(link, 1<<20, 2)
	t8 := AllToAllTime(link, 1<<20, 8)
	if t8 <= t2 {
		t.Fatalf("all-to-all send fraction grows with n: %v %v", t2, t8)
	}
}

func TestHierarchicalCollectives(t *testing.T) {
	single := PaperSystem(4)
	multi := PaperCluster(4)
	bytes := int64(8 << 20)
	if HierarchicalAllReduceTime(single, bytes) >= HierarchicalAllReduceTime(multi, bytes) {
		t.Fatal("multi-node all-reduce must cost more (IB hop)")
	}
	if CrossNodeAllToAllTime(single, bytes) >= CrossNodeAllToAllTime(multi, bytes) {
		t.Fatal("multi-node all-to-all must cost more")
	}
}

// Figure 8's shape: segregation time falls with cores then plateaus.
func TestCPUSegregationPlateau(t *testing.T) {
	c := XeonSilver4116()
	lookups := int64(4096 * 26)
	t1 := CPUSegregationTime(c, lookups, 1)
	t8 := CPUSegregationTime(c, lookups, 8)
	t24 := CPUSegregationTime(c, lookups, 24)
	t32 := CPUSegregationTime(c, lookups, 32)
	if !(t1 > t8 && t8 > t24) {
		t.Fatalf("segregation should speed up with cores: %v %v %v", t1, t8, t24)
	}
	plateau := float64(t24-t32) / float64(t24)
	if plateau > 0.10 {
		t.Fatalf("beyond MemParallelism cores the gain must be <10%%, got %.2f", plateau)
	}
}

// Figure 7's claim: CPU segregation of a 4K batch is commensurate with (and
// for big models larger than) GPU mini-batch training time.
func TestSegregationCommensurateWithTraining(t *testing.T) {
	c := XeonSilver4116()
	seg := CPUSegregationTime(c, 4096*26, 24)
	if seg < sim.Milliseconds(5) || seg > sim.Milliseconds(150) {
		t.Fatalf("4K x 26 segregation should be O(10ms), got %v", seg)
	}
}

func TestDMAGatherOverlapsDRAMAndPCIe(t *testing.T) {
	s := PaperSystem(1)
	rows, rowBytes := int64(2048), int64(256)
	g := DMAGatherTime(s, rows, rowBytes)
	dram := CPUEmbLookupTime(s.CPU, rows, rowBytes)
	pcie := s.PCIe.Transfer(rows * rowBytes)
	max := dram
	if pcie > max {
		max = pcie
	}
	if g < max || g > dram+pcie {
		t.Fatalf("DMA gather %v must be in [max(%v,%v), sum)", g, dram, pcie)
	}
}

func TestEmbUpdateCostsMoreThanLookup(t *testing.T) {
	c := XeonSilver4116()
	if CPUEmbUpdateTime(c, 1000, 256) <= CPUEmbLookupTime(c, 1000, 256) {
		t.Fatal("read-modify-write update must cost more than read")
	}
	g := V100()
	if GPUEmbUpdateTime(g, 1000, 256) <= sim.Duration(0) {
		t.Fatal("GPU update must be positive")
	}
}
