package cost

import (
	"math"

	"hotline/internal/sim"
)

// GPUMLPTime returns the time for a dense pass of the given FLOP count on
// one GPU, including nKernels launch overheads.
func GPUMLPTime(g GPUSpec, flops int64, nKernels int) sim.Duration {
	t := sim.Duration(float64(flops) / g.EffectiveFLOPS() * 1e9)
	return t + sim.Duration(nKernels)*g.KernelLaunch
}

// CPUMLPTime returns the dense-pass time on the host.
func CPUMLPTime(c CPUSpec, flops int64) sim.Duration {
	return sim.Duration(float64(flops) / c.GEMMFLOPS * 1e9)
}

// CPUEmbLookupTime models a sum-pooled EmbeddingBag forward over host DRAM.
// Sparse lookups are latency-bound, not bandwidth-bound: each lookup is a
// dependent random DRAM access (one cache line for dim<=16 rows) plus
// software pooling, only partially hidden by hardware prefetch and
// multi-threading. The per-lookup constant is fitted so a Terabyte-scale
// 4K mini-batch (106k lookups) costs ~15 ms, matching the CPU-dominated
// breakdowns of Figure 3. Wide rows additionally pay streaming bandwidth.
func CPUEmbLookupTime(c CPUSpec, nLookups int64, rowBytes int64) sim.Duration {
	const perLookupNS = 90.0
	par := embOpParallelism(nLookups)
	stream := float64(nLookups*rowBytes) / (c.DDRBandwidth * c.DDRRandomEff)
	return sim.Duration(float64(nLookups)*perLookupNS/par + stream*1e9)
}

// embOpParallelism models how the optimized CPU operator's thread-level
// parallelism grows with work: small batches are latency-bound on few
// threads; larger batches amortise across more, capping at the memory
// subsystem's useful concurrency. This keeps CPU embedding time roughly
// flat under weak scaling (batch grows with GPUs), matching the paper's
// near-constant CPU share across GPU counts (Figures 3 and 20).
func embOpParallelism(nLookups int64) float64 {
	par := float64(nLookups) / 24000
	if par < 1 {
		return 1
	}
	if par > 8 {
		return 8
	}
	return par
}

// GPUEmbLookupTime models the same gather out of HBM.
func GPUEmbLookupTime(g GPUSpec, nLookups int64, rowBytes int64) sim.Duration {
	bytes := float64(nLookups * rowBytes)
	bw := g.HBMBandwidth * g.HBMRandomEff
	return sim.Duration(bytes/bw*1e9) + g.KernelLaunch
}

// CPUEmbUpdateTime models the lock-free sparse optimizer applying nRows row
// updates in host memory: a dependent read-modify-write per row (more
// expensive than the forward read) plus streaming traffic for wide rows.
func CPUEmbUpdateTime(c CPUSpec, nRows int64, rowBytes int64) sim.Duration {
	const perRowNS = 100.0
	par := embOpParallelism(nRows)
	stream := float64(2*nRows*rowBytes) / (c.DDRBandwidth * c.DDRRandomEff)
	return sim.Duration(float64(nRows)*perRowNS/par + stream*1e9)
}

// GPUEmbUpdateTime models the sparse optimizer in HBM.
func GPUEmbUpdateTime(g GPUSpec, nRows int64, rowBytes int64) sim.Duration {
	bytes := float64(2 * nRows * rowBytes)
	bw := g.HBMBandwidth * g.HBMRandomEff
	return sim.Duration(bytes/bw*1e9) + g.KernelLaunch
}

// CollectiveSWOverhead is the fixed software cost of issuing one collective
// (NCCL-style kernel launch, synchronisation and protocol setup).
const CollectiveSWOverhead = sim.Duration(20_000) // 20 µs

// AllReduceTime models a ring all-reduce of bytes across n participants on
// link: each participant sends 2(n-1)/n of the buffer.
func AllReduceTime(link LinkSpec, bytes int64, n int) sim.Duration {
	if n <= 1 {
		return 0
	}
	perRank := float64(bytes) * 2 * float64(n-1) / float64(n)
	return CollectiveSWOverhead + link.Latency*sim.Duration(n-1) + sim.Duration(perRank/link.Bandwidth*1e9)
}

// AllToAllTime models an all-to-all exchange where each of n participants
// holds bytesPerRank destined uniformly to the others. Unlike ring
// all-reduce, all-to-all on point-to-point NVLink topologies (no NVSwitch in
// the paper's C4140) routes most pairs through intermediate hops and incurs
// per-peer synchronisation, so it runs at a small fraction of link bandwidth.
func AllToAllTime(link LinkSpec, bytesPerRank int64, n int) sim.Duration {
	if n <= 1 {
		return 0
	}
	eff := link.A2AEff
	if eff == 0 {
		eff = 0.5
	}
	perPeer := sim.Microseconds(40) // p2p send/recv setup + sync per peer
	send := float64(bytesPerRank) * float64(n-1) / float64(n)
	return perPeer*sim.Duration(n-1) + link.Latency*sim.Duration(n-1) +
		sim.Duration(send/(link.Bandwidth*eff)*1e9)
}

// HierarchicalAllReduceTime models a two-level all-reduce: ring inside each
// node over NVLink, then ring across nodes over IB, then broadcast back.
func HierarchicalAllReduceTime(s System, bytes int64) sim.Duration {
	intra := AllReduceTime(s.NVLink, bytes, s.GPUsPerNode)
	if s.Nodes <= 1 {
		return intra
	}
	inter := AllReduceTime(s.IB, bytes, s.Nodes)
	return intra + inter
}

// CrossNodeAllToAllTime models the embedding all-to-all when shards span
// nodes: intra-node part on NVLink plus the dominant inter-node part on IB.
func CrossNodeAllToAllTime(s System, bytesPerGPU int64) sim.Duration {
	intra := AllToAllTime(s.NVLink, bytesPerGPU, s.GPUsPerNode)
	if s.Nodes <= 1 {
		return intra
	}
	// Fraction of each GPU's traffic that must leave the node.
	crossFrac := float64(s.Nodes-1) / float64(s.Nodes)
	crossBytes := int64(float64(bytesPerGPU) * crossFrac)
	// All GPUs in a node share the node's IB NIC.
	inter := AllToAllTime(s.IB, crossBytes*int64(s.GPUsPerNode), s.Nodes)
	return intra + inter
}

// CPUSegregationTime models classifying a mini-batch into popular and
// non-popular µ-batches on the host (paper Figures 7-8): every lookup is a
// dependent random access into the frequency structure, parallelised across
// cores but capped by the memory subsystem's sustained request parallelism,
// which is why the curve plateaus beyond ~20 cores.
func CPUSegregationTime(c CPUSpec, totalLookups int64, cores int) sim.Duration {
	if cores < 1 {
		cores = 1
	}
	eff := cores
	if eff > c.MemParallelism {
		eff = c.MemParallelism
	}
	// Each lookup walks a DRAM-resident frequency structure: a
	// memory-bound floor that cores cannot remove (dependent misses keep
	// the memory subsystem saturated) plus a weakly-scaling software part
	// (hashing, partitioning, µ-batch assembly). Constants preserve the
	// shape of Figure 8 — roughly 1.8x between 1 core and the plateau
	// beyond ~24 cores — and keep segregation 1-2.5x a GPU mini-batch
	// training time (Figure 7) within this simulator's timescale.
	const floorPerLookup = 80    // ns
	const scalablePerLookup = 90 // ns at 1 core
	scale := 1 / powf(float64(eff), 0.7)
	per := float64(floorPerLookup) + float64(scalablePerLookup)*scale
	return sim.Duration(float64(totalLookups) * per)
}

func powf(x, a float64) float64 { return math.Pow(x, a) }

// PerIterHostOverhead is the fixed per-iteration host-side cost every
// framework pays: the training loop, data loading, batching, and launch
// queue management. Fitted to real PyTorch/TF recommendation-training
// iteration floors.
const PerIterHostOverhead = sim.Duration(1_500_000) // 1.5 ms

// DMAGatherTime models the accelerator-driven DMA gather of cold rows from
// host DRAM into a pinned staging buffer and across PCIe.
func DMAGatherTime(s System, nRows int64, rowBytes int64) sim.Duration {
	dram := CPUEmbLookupTime(s.CPU, nRows, rowBytes)
	pcie := s.PCIe.Transfer(nRows * rowBytes)
	// DMA engine pipelines DRAM reads with PCIe bursts; exposed time is the
	// max of the two plus one setup latency.
	if dram > pcie {
		return dram + s.PCIe.Latency
	}
	return pcie + s.PCIe.Latency
}
