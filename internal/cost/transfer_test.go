package cost

import "testing"

// The shard accounting prices its measured gather/scatter volumes with
// these transfer models, so their monotonic structure is load-bearing:
// more bytes or more participants must never get cheaper.

func TestAllToAllMonotoneInBytes(t *testing.T) {
	for _, link := range []LinkSpec{NVLink2(), InfiniBand100()} {
		prev := AllToAllTime(link, 1<<10, 4)
		for _, bytes := range []int64{1 << 14, 1 << 18, 1 << 22, 1 << 26} {
			cur := AllToAllTime(link, bytes, 4)
			if cur <= prev {
				t.Fatalf("%s: all-to-all not monotone in bytes: %v at %d bytes", link.Name, cur, bytes)
			}
			prev = cur
		}
	}
}

func TestAllToAllMonotoneInParticipants(t *testing.T) {
	link := InfiniBand100()
	prev := AllToAllTime(link, 1<<20, 1)
	for _, n := range []int{2, 4, 8, 16} {
		cur := AllToAllTime(link, 1<<20, n)
		if cur <= prev {
			t.Fatalf("all-to-all not monotone in participants: %v at n=%d", cur, n)
		}
		prev = cur
	}
}

func TestCrossNodeAllToAllMonotoneInNodes(t *testing.T) {
	bytes := int64(4 << 20)
	prev := CrossNodeAllToAllTime(PaperSystem(4), bytes)
	for _, nodes := range []int{2, 4, 8} {
		cur := CrossNodeAllToAllTime(PaperCluster(nodes), bytes)
		if cur <= prev {
			t.Fatalf("cross-node all-to-all not monotone in nodes: %v at %d nodes", cur, nodes)
		}
		prev = cur
	}
}

func TestCrossNodeAllToAllMonotoneInBatch(t *testing.T) {
	// Per-GPU bytes scale linearly with the mini-batch; the exchange time
	// must follow.
	sys := PaperCluster(4)
	rowBytes := int64(64)
	prev := CrossNodeAllToAllTime(sys, 1024*rowBytes)
	for _, batch := range []int64{4096, 16384, 65536} {
		cur := CrossNodeAllToAllTime(sys, batch*rowBytes)
		if cur <= prev {
			t.Fatalf("cross-node all-to-all not monotone in batch: %v at %d", cur, batch)
		}
		prev = cur
	}
}

func TestHierarchicalAllReduceMonotone(t *testing.T) {
	prev := HierarchicalAllReduceTime(PaperCluster(1), 8<<20)
	for _, nodes := range []int{2, 4, 8} {
		cur := HierarchicalAllReduceTime(PaperCluster(nodes), 8<<20)
		if cur <= prev {
			t.Fatalf("hierarchical all-reduce not monotone in nodes: %v at %d", cur, nodes)
		}
		prev = cur
	}
	small := HierarchicalAllReduceTime(PaperCluster(4), 1<<20)
	large := HierarchicalAllReduceTime(PaperCluster(4), 32<<20)
	if large <= small {
		t.Fatal("hierarchical all-reduce not monotone in bytes")
	}
}

func TestDMAGatherMonotoneInRows(t *testing.T) {
	sys := PaperSystem(1)
	prev := DMAGatherTime(sys, 256, 64)
	for _, rows := range []int64{1024, 4096, 16384} {
		cur := DMAGatherTime(sys, rows, 64)
		if cur <= prev {
			t.Fatalf("DMA gather not monotone in rows: %v at %d rows", cur, rows)
		}
		prev = cur
	}
}

func TestEmbUpdateMonotoneInRowsAndWidth(t *testing.T) {
	c := XeonSilver4116()
	if CPUEmbUpdateTime(c, 2000, 64) <= CPUEmbUpdateTime(c, 1000, 64) {
		t.Fatal("CPU update not monotone in rows")
	}
	if CPUEmbUpdateTime(c, 1000, 512) <= CPUEmbUpdateTime(c, 1000, 64) {
		t.Fatal("CPU update not monotone in row width")
	}
	g := V100()
	if GPUEmbUpdateTime(g, 2000, 64) <= GPUEmbUpdateTime(g, 1000, 64) {
		t.Fatal("GPU update not monotone in rows")
	}
}
