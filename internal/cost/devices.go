package cost

import "hotline/internal/sim"

// GPUSpec models one accelerator card (NVIDIA V100 in the paper).
type GPUSpec struct {
	Name string
	// PeakFLOPS is fp32 peak; EffMLP derates it for MLP-sized GEMMs.
	PeakFLOPS float64
	EffMLP    float64
	// HBMBandwidth is sequential HBM bandwidth in bytes/s; HBMRandomEff
	// derates it for gather-style random access.
	HBMBandwidth float64
	HBMRandomEff float64
	// HBMBytes is usable memory capacity.
	HBMBytes int64
	// KernelLaunch is the effective fixed host-side cost per launched
	// kernel, including framework dispatch (Python/C++ op overhead), not
	// just the hardware launch.
	KernelLaunch sim.Duration
}

// EffectiveFLOPS returns the derated GEMM throughput.
func (g GPUSpec) EffectiveFLOPS() float64 { return g.PeakFLOPS * g.EffMLP }

// CPUSpec models the host processor and its DRAM subsystem.
type CPUSpec struct {
	Name  string
	Cores int
	// GEMMFLOPS is the effective dense math throughput of the whole socket.
	GEMMFLOPS float64
	// DDRBandwidth is sequential DRAM bandwidth in bytes/s; DDRRandomEff
	// derates it for random embedding gathers.
	DDRBandwidth float64
	DDRRandomEff float64
	// DRAMBytes is main-memory capacity.
	DRAMBytes int64
	// RandomAccessLatency is one dependent random DRAM access.
	RandomAccessLatency sim.Duration
	// MemParallelism is the number of concurrent outstanding random
	// accesses the memory subsystem sustains; adding cores beyond this
	// plateaus segregation throughput (paper Figure 8).
	MemParallelism int
}

// LinkSpec models an interconnect.
type LinkSpec struct {
	Name      string
	Bandwidth float64 // bytes/s
	Latency   sim.Duration
	// A2AEff is the fraction of Bandwidth an all-to-all exchange achieves:
	// low on point-to-point NVLink meshes (most pairs route through hops),
	// higher on switched fabrics like InfiniBand. 0 means "use default".
	A2AEff float64
}

// Transfer returns the time to move n bytes over the link.
func (l LinkSpec) Transfer(bytes int64) sim.Duration {
	if bytes <= 0 {
		return l.Latency
	}
	return l.Latency + sim.Duration(float64(bytes)/l.Bandwidth*1e9)
}

// System is a training server (or cluster) configuration.
type System struct {
	Nodes       int
	GPUsPerNode int
	GPU         GPUSpec
	CPU         CPUSpec
	PCIe        LinkSpec // CPU <-> GPU / accelerator
	NVLink      LinkSpec // GPU <-> GPU intra-node
	IB          LinkSpec // node <-> node
}

// TotalGPUs returns the cluster GPU count.
func (s System) TotalGPUs() int { return s.Nodes * s.GPUsPerNode }

// V100 returns the paper's GPU spec (Table III): Tesla V100, 16 GB HBM2 at
// 900 GB/s. Effective MLP throughput is derated to ~27% of the 15.7 TFLOPS
// fp32 peak, typical for the small-GEMM MLPs of recommendation models.
func V100() GPUSpec {
	return GPUSpec{
		Name:         "Tesla V100",
		PeakFLOPS:    15.7e12,
		EffMLP:       0.27,
		HBMBandwidth: 900e9,
		HBMRandomEff: 0.45,
		HBMBytes:     16 << 30,
		KernelLaunch: sim.Microseconds(20),
	}
}

// XeonSilver4116 returns the paper's CPU spec (Table III): 24 cores at
// 2.1 GHz with 192 GB DDR4 at 76.8 GB/s.
func XeonSilver4116() CPUSpec {
	return CPUSpec{
		Name:                "Xeon Silver 4116",
		Cores:               24,
		GEMMFLOPS:           0.6e12,
		DDRBandwidth:        76.8e9,
		DDRRandomEff:        0.14,
		DRAMBytes:           192 << 30,
		RandomAccessLatency: sim.Nanoseconds(85),
		MemParallelism:      20,
	}
}

// PCIeGen3x16 is the accelerator/GPU host link: ~15.75 GB/s.
func PCIeGen3x16() LinkSpec {
	return LinkSpec{Name: "PCIe Gen3 x16", Bandwidth: 15.75e9, Latency: sim.Microseconds(2)}
}

// NVLink2 is the intra-node GPU mesh: 2400 Gb/s per the paper (§II-A3).
func NVLink2() LinkSpec {
	return LinkSpec{Name: "NVLink 2.0", Bandwidth: 300e9, Latency: sim.Microseconds(1), A2AEff: 0.08}
}

// InfiniBand100 is the inter-node fabric: 100 Gb/s.
func InfiniBand100() LinkSpec {
	return LinkSpec{Name: "InfiniBand 100Gb", Bandwidth: 12.5e9, Latency: sim.Microseconds(5), A2AEff: 0.5}
}

// PaperSystem returns the evaluation server: one node with the given GPU
// count (the paper's Dell EMC C4140 carries 4 V100s).
func PaperSystem(gpus int) System {
	return System{
		Nodes: 1, GPUsPerNode: gpus,
		GPU: V100(), CPU: XeonSilver4116(),
		PCIe: PCIeGen3x16(), NVLink: NVLink2(), IB: InfiniBand100(),
	}
}

// PaperCluster returns a multi-node system with 4 GPUs per node connected by
// 100 Gb/s InfiniBand (paper §VII-H).
func PaperCluster(nodes int) System {
	s := PaperSystem(4)
	s.Nodes = nodes
	return s
}
