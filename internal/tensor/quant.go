package tensor

import "math"

// Row quantization kernels for the precision-tiered device caches.
//
// Two narrow formats are supported:
//
//   - int8 with a symmetric per-row scale: q = round(v/scale) clamped to
//     [-127, 127], scale = maxabs(row)/127. The row footprint is dim bytes
//     plus one float32 scale.
//   - IEEE 754 binary16 (fp16), round-to-nearest-even. The row footprint is
//     2*dim bytes.
//
// Every kernel is total: NaN inputs quantize to 0 and infinities saturate at
// the format's extreme, so a corrupted row can never panic the hot path or
// inject non-finite values into training math (FuzzQuantRoundTrip gates
// this). Embedding rows are finite by construction, so the saturation paths
// are a safety net, not a steady-state branch.
//
// The round-trip kernels (RoundTripI8 / RoundTripF16) are the math core of
// the fused dequantize-gather: they write dequantize(quantize(src)) straight
// into a caller-owned destination without materializing the narrow row —
// exactly the value a real warm-tier cache would serve — with the 4-wide
// unroll idiom the dense kernels use (independent per-element chains, so the
// result is bit-equal to the plain loop).

// I8RowOverheadBytes is the per-row metadata of the int8 format (one float32
// scale).
const I8RowOverheadBytes = 4

// F16MaxValue is the largest finite binary16 magnitude; QuantizeRowF16
// saturates there instead of overflowing to infinity.
const F16MaxValue = 65504

// F16FromF32 converts one float32 to IEEE 754 binary16 with round-to-
// nearest-even. NaN maps to zero and magnitudes above F16MaxValue saturate
// at the largest finite half (kernel totality; see the package comment).
//
//hotline:hotpath
func F16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff
	if exp == 0xff { // Inf or NaN
		if man != 0 {
			return 0 // NaN → 0
		}
		return sign | 0x7bff // ±Inf saturates at ±F16MaxValue
	}
	// Rebase the exponent: f32 bias 127 → f16 bias 15.
	e := exp - 127 + 15
	if e >= 0x1f {
		return sign | 0x7bff // overflow saturates
	}
	if e <= 0 {
		// Subnormal (or underflow-to-zero) half: shift the full 24-bit
		// significand right with round-to-nearest-even.
		if e < -10 {
			return sign // underflows even the smallest subnormal
		}
		m := man | 0x800000 // implicit leading 1
		shift := uint32(14 - e)
		q := m >> shift
		rem := m & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && q&1 == 1) {
			q++
		}
		return sign | uint16(q)
	}
	// Normal half: drop 13 mantissa bits with round-to-nearest-even.
	q := man >> 13
	rem := man & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && q&1 == 1) {
		q++
		if q == 0x400 { // mantissa rounded over; bump the exponent
			q = 0
			e++
			if e >= 0x1f {
				return sign | 0x7bff
			}
		}
	}
	return sign | uint16(e)<<10 | uint16(q)
}

// F16ToF32 converts one IEEE 754 binary16 to float32 (exact: every half is
// representable as a float32).
//
//hotline:hotpath
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal half: normalize into the f32 exponent range.
		e := uint32(113)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | man<<13) // Inf/NaN
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// maxAbsFinite returns the largest finite |v| in src (0 when src is empty or
// holds no finite value).
//
//hotline:hotpath
func maxAbsFinite(src []float32) float32 {
	var m float32
	for _, v := range src {
		if v != v { // NaN
			continue
		}
		if v < 0 {
			v = -v
		}
		if v > m && v <= math.MaxFloat32 {
			m = v
		}
	}
	return m
}

// i8Scale derives the symmetric per-row scale, nudged down by ulps until the
// dequantized extreme 127*scale stays finite — a row whose maxabs sits
// within one rounding step of MaxFloat32 would otherwise overflow on the way
// back (totality again; the slack is far inside the error bound).
//
//hotline:hotpath
func i8Scale(src []float32) float32 {
	scale := maxAbsFinite(src) / 127
	for 127*scale > math.MaxFloat32 {
		scale = math.Nextafter32(scale, 0)
	}
	return scale
}

// q8 quantizes one value at 1/scale, saturating at ±127 (infinities clamp,
// NaN maps to 0).
//
//hotline:hotpath
func q8(v, inv float32) int8 {
	if v != v {
		return 0
	}
	s := v * inv
	if s >= 127 {
		return 127
	}
	if s <= -127 {
		return -127
	}
	if s >= 0 {
		return int8(s + 0.5)
	}
	return int8(s - 0.5)
}

// QuantizeRowI8 quantizes src into dst with a symmetric per-row scale
// (scale = maxabs/127) and returns the scale. A row with no finite non-zero
// value quantizes to all zeros with scale 0. len(dst) must be >= len(src).
//
//hotline:hotpath
func QuantizeRowI8(dst []int8, src []float32) float32 {
	scale := i8Scale(src)
	if scale == 0 {
		for i := range src {
			dst[i] = 0
		}
		return 0
	}
	inv := 1 / scale
	j := 0
	for ; j+4 <= len(src); j += 4 {
		dst[j] = q8(src[j], inv)
		dst[j+1] = q8(src[j+1], inv)
		dst[j+2] = q8(src[j+2], inv)
		dst[j+3] = q8(src[j+3], inv)
	}
	for ; j < len(src); j++ {
		dst[j] = q8(src[j], inv)
	}
	return scale
}

// DequantizeRowI8 expands an int8 row back to float32 at the given scale.
// len(dst) must be >= len(src).
//
//hotline:hotpath
func DequantizeRowI8(dst []float32, src []int8, scale float32) {
	j := 0
	for ; j+4 <= len(src); j += 4 {
		dst[j] = float32(src[j]) * scale
		dst[j+1] = float32(src[j+1]) * scale
		dst[j+2] = float32(src[j+2]) * scale
		dst[j+3] = float32(src[j+3]) * scale
	}
	for ; j < len(src); j++ {
		dst[j] = float32(src[j]) * scale
	}
}

// QuantizeRowF16 converts src to binary16. len(dst) must be >= len(src).
//
//hotline:hotpath
func QuantizeRowF16(dst []uint16, src []float32) {
	j := 0
	for ; j+4 <= len(src); j += 4 {
		dst[j] = F16FromF32(src[j])
		dst[j+1] = F16FromF32(src[j+1])
		dst[j+2] = F16FromF32(src[j+2])
		dst[j+3] = F16FromF32(src[j+3])
	}
	for ; j < len(src); j++ {
		dst[j] = F16FromF32(src[j])
	}
}

// DequantizeRowF16 expands a binary16 row back to float32. len(dst) must be
// >= len(src).
//
//hotline:hotpath
func DequantizeRowF16(dst []float32, src []uint16) {
	j := 0
	for ; j+4 <= len(src); j += 4 {
		dst[j] = F16ToF32(src[j])
		dst[j+1] = F16ToF32(src[j+1])
		dst[j+2] = F16ToF32(src[j+2])
		dst[j+3] = F16ToF32(src[j+3])
	}
	for ; j < len(src); j++ {
		dst[j] = F16ToF32(src[j])
	}
}

// RoundTripI8 writes dequantize(quantize(src)) into dst without
// materializing the int8 row — the fused dequantize-gather kernel for the
// warm tier's int8 format. dst and src may alias. len(dst) must be >=
// len(src).
//
//hotline:hotpath
func RoundTripI8(dst, src []float32) {
	scale := i8Scale(src)
	if scale == 0 {
		for i := range src {
			dst[i] = 0
		}
		return
	}
	inv := 1 / scale
	j := 0
	for ; j+4 <= len(src); j += 4 {
		dst[j] = float32(q8(src[j], inv)) * scale
		dst[j+1] = float32(q8(src[j+1], inv)) * scale
		dst[j+2] = float32(q8(src[j+2], inv)) * scale
		dst[j+3] = float32(q8(src[j+3], inv)) * scale
	}
	for ; j < len(src); j++ {
		dst[j] = float32(q8(src[j], inv)) * scale
	}
}

// RoundTripF16 writes dequantize(quantize(src)) into dst for the fp16
// format — the fused dequantize-gather kernel for fp16-tier rows. dst and
// src may alias. len(dst) must be >= len(src).
//
//hotline:hotpath
func RoundTripF16(dst, src []float32) {
	j := 0
	for ; j+4 <= len(src); j += 4 {
		dst[j] = F16ToF32(F16FromF32(src[j]))
		dst[j+1] = F16ToF32(F16FromF32(src[j+1]))
		dst[j+2] = F16ToF32(F16FromF32(src[j+2]))
		dst[j+3] = F16ToF32(F16FromF32(src[j+3]))
	}
	for ; j < len(src); j++ {
		dst[j] = F16ToF32(F16FromF32(src[j]))
	}
}
