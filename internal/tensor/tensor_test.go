package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %v len=%d", m, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-initialise")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m.Data)
	}
	m.Set(1, 0, 9)
	if d[3] != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad length")
		}
	}()
	FromSlice(2, 3, []float32{1})
}

func TestRowIsView(t *testing.T) {
	m := New(2, 2)
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must return a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone must deep-copy")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone should equal original")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("MatMul got %v want %v", dst.Data, want)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

// MatMulTransB(a, b) must equal MatMul(a, Transpose(b)).
func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(1)
	a, b := New(4, 5), New(3, 5)
	NormalInit(a, 1, rng)
	NormalInit(b, 1, rng)
	viaT := New(4, 3)
	MatMul(viaT, a, Transpose(b))
	direct := New(4, 3)
	MatMulTransB(direct, a, b)
	if d := MaxAbsDiff(viaT, direct); d > 1e-5 {
		t.Fatalf("MatMulTransB diff %g", d)
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a, b := New(6, 4), New(6, 3)
	NormalInit(a, 1, rng)
	NormalInit(b, 1, rng)
	viaT := New(4, 3)
	MatMul(viaT, Transpose(a), b)
	direct := New(4, 3)
	MatMulTransA(direct, a, b)
	if d := MaxAbsDiff(viaT, direct); d > 1e-5 {
		t.Fatalf("MatMulTransA diff %g", d)
	}
}

func TestAddBiasRow(t *testing.T) {
	m := New(2, 3)
	AddBiasRow(m, []float32{1, 2, 3})
	if m.At(0, 1) != 2 || m.At(1, 2) != 3 {
		t.Fatalf("AddBiasRow wrong: %v", m.Data)
	}
}

func TestSumRowsInto(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	dst := make([]float32, 2)
	SumRowsInto(dst, m)
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("SumRowsInto = %v", dst)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	dst := New(1, 3)
	Add(dst, a, b)
	if dst.Data[2] != 9 {
		t.Fatalf("Add = %v", dst.Data)
	}
	Hadamard(dst, a, b)
	if dst.Data[1] != 10 {
		t.Fatalf("Hadamard = %v", dst.Data)
	}
	AxpyInto(dst, 2, a)
	if dst.Data[0] != 4+2 {
		t.Fatalf("AxpyInto = %v", dst.Data)
	}
	Scale(a, 10)
	if a.Data[0] != 10 {
		t.Fatalf("Scale = %v", a.Data)
	}
	Apply(a, a, func(v float32) float32 { return -v })
	if a.Data[0] != -10 {
		t.Fatalf("Apply = %v", a.Data)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(3)
	m := New(3, 5)
	NormalInit(m, 1, rng)
	tt := Transpose(Transpose(m))
	if !m.Equal(tt) {
		t.Fatal("transpose twice should be identity")
	}
}

func TestFillZero(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Fatal("Zero failed")
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a, b, c := New(3, 4), New(4, 2), New(2, 5)
		NormalInit(a, 0.5, rng)
		NormalInit(b, 0.5, rng)
		NormalInit(c, 0.5, rng)
		ab := New(3, 2)
		MatMul(ab, a, b)
		abc1 := New(3, 5)
		MatMul(abc1, ab, c)
		bc := New(4, 5)
		MatMul(bc, b, c)
		abc2 := New(3, 5)
		MatMul(abc2, a, bc)
		return MaxAbsDiff(abc1, abc2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over Add.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a, b1, b2 := New(3, 4), New(4, 3), New(4, 3)
		NormalInit(a, 0.5, rng)
		NormalInit(b1, 0.5, rng)
		NormalInit(b2, 0.5, rng)
		sum := New(4, 3)
		Add(sum, b1, b2)
		lhs := New(3, 3)
		MatMul(lhs, a, sum)
		r1, r2 := New(3, 3), New(3, 3)
		MatMul(r1, a, b1)
		MatMul(r2, a, b2)
		rhs := New(3, 3)
		Add(rhs, r1, r2)
		return MaxAbsDiff(lhs, rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestRNGFloatRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %g", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.08 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := NewRNG(13)
	m := New(10, 10)
	XavierInit(m, 10, 10, rng)
	limit := float32(math.Sqrt(6.0 / 20.0))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier value %g outside ±%g", v, limit)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := NewRNG(1)
	a, m := New(128, 128), New(128, 128)
	NormalInit(a, 1, rng)
	NormalInit(m, 1, rng)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, m)
	}
}

// TestWorkspaceReuse: the arena hands back the same buffers after Reset,
// matrices come back zeroed, and Int32 contents are caller-owned.
func TestWorkspaceReuse(t *testing.T) {
	var ws Workspace
	m1 := ws.Matrix(4, 3)
	m1.Fill(7)
	s1 := ws.Int32(5)
	for i := range s1 {
		s1[i] = int32(i)
	}
	ws.Reset()
	m2 := ws.Matrix(2, 2)
	if m2 != m1 {
		t.Fatal("Matrix must reuse the pooled buffer after Reset")
	}
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("reused workspace matrix must come back zeroed")
		}
	}
	s2 := ws.Int32(3)
	if &s2[0] != &s1[0] {
		t.Fatal("Int32 must reuse the pooled slab after Reset")
	}
}

// TestMatrixReset: Reset truncates to 0x0 but keeps capacity for Resize.
func TestMatrixReset(t *testing.T) {
	m := New(3, 4)
	m.Fill(1)
	m.Reset()
	if m.Rows != 0 || m.Cols != 0 || len(m.Data) != 0 {
		t.Fatalf("Reset left %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if cap(m.Data) != 12 {
		t.Fatalf("Reset dropped capacity: %d", cap(m.Data))
	}
	m.Resize(2, 3)
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Resize after Reset must zero the reused storage")
		}
	}
}
