// Package tensor provides the dense float32 linear-algebra kernels used by
// the functional training layer (MLPs, feature interaction, attention).
//
// The package is deliberately small: recommendation models need dense GEMM,
// element-wise maps, bias broadcast, and a seeded RNG for reproducible
// initialisation. Everything operates on row-major Matrix values.
//
// Above a size threshold the GEMM and element-wise kernels shard their
// independent output rows/elements across the par worker pool. Each output
// element is always computed by one goroutine with the serial loop's exact
// operation order, so results are bit-identical for every worker count.
//
// In the DESIGN.md layering this is the bottom of the functional stack:
// nn, embedding and model all build on these kernels.
//
//hotline:deterministic
package tensor
