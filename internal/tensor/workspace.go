package tensor

// Workspace is the per-step scratch arena of the steady-state training loop:
// a cursor-based pool of matrices and flat scratch slices that is Reset once
// per training step and then handed out in call order. After the first step
// warms the pool every acquisition reuses the buffer the same call site got
// last step, so the loop runs allocation-free while each buffer keeps a
// stable identity for exactly one step.
//
// Ownership contract: the component that Resets a workspace owns its
// boundary — the model resets its forward workspace at the top of every
// Forward pass and its optimizer workspace at the top of ApplySparseAdagrad.
// Buffers obtained from a workspace are valid until the next Reset; holding
// one across that boundary is a bug. A Workspace is not safe for concurrent
// use — concurrent µ-batch passes run on separate models, each owning a
// private workspace.
type Workspace struct {
	mats []*Matrix
	mi   int
	i32s [][]int32
	ii   int
}

// Reset returns every pooled buffer to the arena. Called once per owner
// boundary, before any acquisition.
func (w *Workspace) Reset() { w.mi, w.ii = 0, 0 }

// Matrix hands out a zeroed rows x cols matrix from the arena.
func (w *Workspace) Matrix(rows, cols int) *Matrix {
	if w.mi == len(w.mats) {
		w.mats = append(w.mats, New(rows, cols))
		w.mi++
		return w.mats[w.mi-1]
	}
	m := w.mats[w.mi]
	w.mi++
	return m.Resize(rows, cols)
}

// Int32 hands out a []int32 of length n from the arena. Contents are
// unspecified (stale values from a previous step) — callers either
// overwrite every element or truncate to [:0] and append; zeroing here
// would be a wasted pass over the buffer on the hot path.
func (w *Workspace) Int32(n int) []int32 {
	if w.ii == len(w.i32s) {
		w.i32s = append(w.i32s, make([]int32, n))
		w.ii++
		return w.i32s[w.ii-1]
	}
	s := w.i32s[w.ii]
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	w.i32s[w.ii] = s
	w.ii++
	return s
}
