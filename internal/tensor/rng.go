package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). The functional training layer seeds one
// RNG per component so that runs are reproducible regardless of package
// initialisation order, and independent of math/rand's global state.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal deviate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.hasSpare = true
	return u * mul
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// XavierInit fills m with Xavier/Glorot-uniform values for a layer with the
// given fan-in and fan-out.
func XavierInit(m *Matrix, fanIn, fanOut int, rng *RNG) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float32() - 1) * limit
	}
}

// NormalInit fills m with N(0, std²) values.
func NormalInit(m *Matrix, std float64, rng *RNG) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// UniformInit fills m with U(-limit, limit) values.
func UniformInit(m *Matrix, limit float64, rng *RNG) {
	for i := range m.Data {
		m.Data[i] = float32((2*rng.Float64() - 1) * limit)
	}
}
