package tensor

import (
	"encoding/binary"
	"math"
	"testing"
)

// i8Bound returns the worst-case absolute round-trip error of the int8
// format for a row with the given scale: half a quantization step plus a
// little float32 rounding slack.
func i8Bound(scale float32) float64 {
	return float64(scale)*0.501 + 1e-30
}

// f16Bound returns the worst-case absolute round-trip error of binary16 for
// one finite value within the format's range: half a ulp relative in the
// normal range, the subnormal step near zero (both with slack).
func f16Bound(v float32) float64 {
	av := math.Abs(float64(v))
	rel := av / 1024 // 2^-10: one full ulp, double the RNE bound
	if rel < 1.0/(1<<24) {
		rel = 1.0 / (1 << 24)
	}
	return rel
}

func TestF16ConversionExactCases(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-2, 0xc000},
		{0.5, 0x3800},
		{65504, 0x7bff},
		{-65504, 0xfbff},
		{5.9604645e-08, 0x0001}, // smallest subnormal half
		{6.1035156e-05, 0x0400}, // smallest normal half
	}
	for _, c := range cases {
		if got := F16FromF32(c.f); got != c.h {
			t.Errorf("F16FromF32(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := F16ToF32(c.h); got != c.f {
			t.Errorf("F16ToF32(%#04x) = %g, want %g", c.h, got, c.f)
		}
	}
}

func TestF16Saturation(t *testing.T) {
	for _, v := range []float32{70000, float32(math.Inf(1)), math.MaxFloat32} {
		if got := F16ToF32(F16FromF32(v)); got != F16MaxValue {
			t.Errorf("round-trip of %g = %g, want saturation at %d", v, got, F16MaxValue)
		}
		if got := F16ToF32(F16FromF32(-v)); got != -F16MaxValue {
			t.Errorf("round-trip of %g = %g, want saturation at %d", -v, got, -F16MaxValue)
		}
	}
	if got := F16FromF32(float32(math.NaN())); got != 0 {
		t.Errorf("NaN must quantize to zero, got %#04x", got)
	}
}

func TestQuantizeRowI8RoundTrip(t *testing.T) {
	src := []float32{1.5, -0.25, 0, 127, -128, 0.0001, 42.42}
	q := make([]int8, len(src))
	scale := QuantizeRowI8(q, src)
	if scale <= 0 {
		t.Fatalf("scale = %g, want > 0", scale)
	}
	dq := make([]float32, len(src))
	DequantizeRowI8(dq, q, scale)
	fused := make([]float32, len(src))
	RoundTripI8(fused, src)
	for i := range src {
		if dq[i] != fused[i] {
			t.Errorf("elem %d: fused kernel %g != quantize→dequantize %g", i, fused[i], dq[i])
		}
		if err := math.Abs(float64(dq[i] - src[i])); err > i8Bound(scale) {
			t.Errorf("elem %d: round-trip error %g exceeds bound %g (scale %g)", i, err, i8Bound(scale), scale)
		}
	}
}

func TestQuantizeRowI8Degenerate(t *testing.T) {
	// All-zero and all-non-finite rows quantize to zeros with scale 0.
	for _, src := range [][]float32{
		{0, 0, 0},
		{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))},
		{},
	} {
		q := make([]int8, len(src))
		if scale := QuantizeRowI8(q, src); scale != 0 {
			t.Errorf("degenerate row scale = %g, want 0", scale)
		}
		rt := make([]float32, len(src))
		RoundTripI8(rt, src)
		for i := range rt {
			if rt[i] != 0 {
				t.Errorf("degenerate row round-trip elem %d = %g, want 0", i, rt[i])
			}
		}
	}
	// A row mixing finite and non-finite values scales over the finite ones;
	// infinities saturate and NaN maps to zero.
	src := []float32{2, float32(math.Inf(1)), float32(math.NaN()), -1}
	rt := make([]float32, len(src))
	RoundTripI8(rt, src)
	scale := float32(2) / 127
	if math.Abs(float64(rt[0]-2)) > i8Bound(scale) || math.Abs(float64(rt[3]+1)) > i8Bound(scale) {
		t.Errorf("finite values mangled: %v", rt)
	}
	if rt[1] != rt[0] { // +Inf clamps to +127, the same bucket as maxabs
		t.Errorf("+Inf must saturate at maxabs: got %g, maxabs round-trips to %g", rt[1], rt[0])
	}
	if rt[2] != 0 {
		t.Errorf("NaN must quantize to 0, got %g", rt[2])
	}
}

func TestRoundTripF16MatchesScalar(t *testing.T) {
	src := []float32{3.14159, -2.71828, 1e-6, -65504, 65504, 0.333333}
	q := make([]uint16, len(src))
	QuantizeRowF16(q, src)
	dq := make([]float32, len(src))
	DequantizeRowF16(dq, q)
	fused := make([]float32, len(src))
	RoundTripF16(fused, src)
	for i := range src {
		if dq[i] != fused[i] {
			t.Errorf("elem %d: fused %g != quantize→dequantize %g", i, fused[i], dq[i])
		}
		if err := math.Abs(float64(dq[i] - src[i])); err > f16Bound(src[i]) {
			t.Errorf("elem %d: error %g exceeds bound %g for %g", i, err, f16Bound(src[i]), src[i])
		}
	}
}

// TestF16RoundTripExhaustiveHalves verifies F16ToF32→F16FromF32 is the
// identity on every finite half — the two conversions are exact inverses on
// the representable set.
func TestF16RoundTripExhaustiveHalves(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		if uint16(h)>>10&0x1f == 0x1f {
			continue // Inf/NaN halves are policy-mapped, not round-tripped
		}
		f := F16ToF32(uint16(h))
		back := F16FromF32(f)
		if back != uint16(h) && !(f == 0 && back&0x7fff == 0) {
			t.Fatalf("half %#04x → %g → %#04x", h, f, back)
		}
	}
}

// FuzzQuantRoundTrip is the quantization kernels' safety contract on
// arbitrary rows: quantize→dequantize never panics, always produces finite
// output, agrees with the fused round-trip kernels bit for bit, and stays
// within the per-format error bound for finite in-range inputs — including
// rows laced with NaN and ±Inf.
func FuzzQuantRoundTrip(f *testing.F) {
	addRow := func(vals ...float32) {
		b := make([]byte, 0, 4*len(vals))
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
		}
		f.Add(b)
	}
	addRow(1, -2, 3.5, -0.125)
	addRow(0, 0, 0, 0)
	addRow(float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 1e-30)
	addRow(65504, 70000, -65505)
	addRow(math.MaxFloat32, -math.MaxFloat32, math.SmallestNonzeroFloat32)
	f.Add([]byte{1, 2, 3}) // ragged tail, decodes to an empty row

	f.Fuzz(func(t *testing.T, b []byte) {
		n := len(b) / 4
		if n > 4096 {
			n = 4096
		}
		src := make([]float32, n)
		for i := range src {
			src[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
		}

		// int8: scalar pipeline and fused kernel must agree exactly.
		q := make([]int8, n)
		scale := QuantizeRowI8(q, src)
		dq := make([]float32, n)
		DequantizeRowI8(dq, q, scale)
		fused := make([]float32, n)
		RoundTripI8(fused, src)
		for i, v := range src {
			if dq[i] != fused[i] {
				t.Fatalf("i8 elem %d: fused %g != scalar %g", i, fused[i], dq[i])
			}
			if math.IsNaN(float64(fused[i])) || math.IsInf(float64(fused[i]), 0) {
				t.Fatalf("i8 elem %d: non-finite output %g from input %g", i, fused[i], v)
			}
			finite := !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0)
			if finite && scale > 0 && !math.IsInf(float64(float32(1)/scale), 0) {
				if err := math.Abs(float64(fused[i] - v)); err > i8Bound(scale) {
					t.Fatalf("i8 elem %d: error %g exceeds bound %g (v=%g scale=%g)", i, err, i8Bound(scale), v, scale)
				}
			}
		}

		// fp16: same agreement and totality contract.
		h := make([]uint16, n)
		QuantizeRowF16(h, src)
		dqh := make([]float32, n)
		DequantizeRowF16(dqh, h)
		fusedh := make([]float32, n)
		RoundTripF16(fusedh, src)
		for i, v := range src {
			if dqh[i] != fusedh[i] {
				t.Fatalf("f16 elem %d: fused %g != scalar %g", i, fusedh[i], dqh[i])
			}
			if math.IsNaN(float64(fusedh[i])) || math.IsInf(float64(fusedh[i]), 0) {
				t.Fatalf("f16 elem %d: non-finite output %g from input %g", i, fusedh[i], v)
			}
			finite := !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0)
			if finite && math.Abs(float64(v)) <= F16MaxValue {
				if err := math.Abs(float64(fusedh[i] - v)); err > f16Bound(v) {
					t.Fatalf("f16 elem %d: error %g exceeds bound %g for %g", i, err, f16Bound(v), v)
				}
			}
		}
	})
}
