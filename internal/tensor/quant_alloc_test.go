package tensor

import "testing"

// TestQuantKernelsZeroAlloc gates every quantization kernel at 0 allocs/op:
// they run inside the fused dequantize-gather on the prefetch hot path, so
// none of them may touch the heap.
func TestQuantKernelsZeroAlloc(t *testing.T) {
	src := make([]float32, 67) // odd length exercises the unroll tails
	for i := range src {
		src[i] = float32(i)*0.37 - 11
	}
	qi := make([]int8, len(src))
	qh := make([]uint16, len(src))
	dst := make([]float32, len(src))
	var scale float32
	if n := testing.AllocsPerRun(100, func() {
		scale = QuantizeRowI8(qi, src)
		DequantizeRowI8(dst, qi, scale)
		QuantizeRowF16(qh, src)
		DequantizeRowF16(dst, qh)
		RoundTripI8(dst, src)
		RoundTripF16(dst, src)
	}); n != 0 {
		t.Fatalf("quant kernels allocate %v/op; want 0", n)
	}
	if scale == 0 {
		t.Fatal("non-degenerate row must produce a positive scale")
	}
}
