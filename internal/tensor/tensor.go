package tensor

import (
	"fmt"

	"hotline/internal/par"
)

// Matrix is a dense row-major float32 matrix.
//
// The zero value is an empty 0x0 matrix. Data has length Rows*Cols; element
// (r, c) lives at Data[r*Cols+c].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows x cols matrix without copying.
// len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Resize reshapes m to rows x cols and zeroes every element, reusing the
// existing backing array when its capacity suffices. This is the scratch
// substrate of the steady-state training loop: per-step buffers are resized
// instead of reallocated, so after warm-up a step performs no allocations.
//
//hotline:hotpath
func (m *Matrix) Resize(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		// Grow geometrically: µ-batch sizes jitter step to step, and exact
		// sizing would re-allocate on every new maximum instead of letting
		// the scratch buffer converge after a couple of steps.
		newCap := n
		if c := 2 * cap(m.Data); c > newCap {
			newCap = c
		}
		m.Data = make([]float32, n, newCap) //hotline:allow hotalloc geometric growth; scratch converges after warm-up (0 allocs/op gated)
	} else {
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// ResizeNoZero is Resize without the clearing pass, for destinations whose
// every element is about to be overwritten (or that the consuming kernel
// zeroes itself, like MatMul). Reusing a buffer through Resize would memset
// it twice per step on the hot path.
//
//hotline:hotpath
func (m *Matrix) ResizeNoZero(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		newCap := n
		if c := 2 * cap(m.Data); c > newCap {
			newCap = c
		}
		m.Data = make([]float32, n, newCap) //hotline:allow hotalloc geometric growth; scratch converges after warm-up (0 allocs/op gated)
	} else {
		m.Data = m.Data[:n]
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// Reset truncates m to 0x0, keeping the backing array for later Resize.
func (m *Matrix) Reset() {
	m.Rows, m.Cols = 0, 0
	m.Data = m.Data[:0]
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view (no copy) of row r.
//
//hotline:hotpath
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom resizes m to src's shape and copies src's contents into it,
// reusing m's backing array when possible.
//
//hotline:hotpath
func (m *Matrix) CopyFrom(src *Matrix) *Matrix {
	n := src.Rows * src.Cols
	if cap(m.Data) < n {
		// Same geometric growth as Resize: µ-batch sizes jitter, and exact
		// sizing would re-allocate on every new maximum.
		newCap := n
		if c := 2 * cap(m.Data); c > newCap {
			newCap = c
		}
		m.Data = make([]float32, n, newCap) //hotline:allow hotalloc geometric growth; scratch converges after warm-up (0 allocs/op gated)
	} else {
		m.Data = m.Data[:n]
	}
	m.Rows, m.Cols = src.Rows, src.Cols
	copy(m.Data, src.Data)
	return m
}

// Zero sets every element to 0 in place.
//
//hotline:hotpath
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
//
//hotline:hotpath
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and other have identical shape and contents.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if other.Data[i] != v {
			return false
		}
	}
	return true
}

// String renders a compact shape descriptor (not the contents).
func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

// The hot kernels below branch on par.Serial and call their range body
// directly in the serial case: a closure passed to par.ForWork escapes to
// the heap at its creation point, so building one only on the parallel
// branch keeps the steady-state training loop allocation-free.

// matMulRange computes rows [lo, hi) of dst = a x b (dst rows pre-zeroed).
//
//hotline:hotpath
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			// Reslicing drow to brow's length lets the compiler drop the
			// bounds checks in the innermost loop.
			axpyUnrolled(drow[:len(brow)], brow, aik)
		}
	}
}

// axpyUnrolled computes dst[j] += alpha*src[j] with 4-wide unrolling. Each
// output element keeps its own addition chain, so the result is bit-equal
// to the plain loop — the unroll only exposes instruction parallelism.
//
//hotline:hotpath
func axpyUnrolled(dst, src []float32, alpha float32) {
	j := 0
	for ; j+4 <= len(src) && j+4 <= len(dst); j += 4 {
		dst[j] += alpha * src[j]
		dst[j+1] += alpha * src[j+1]
		dst[j+2] += alpha * src[j+2]
		dst[j+3] += alpha * src[j+3]
	}
	for ; j < len(src); j++ {
		dst[j] += alpha * src[j]
	}
}

// MatMul computes dst = a x b. dst must be a.Rows x b.Cols and must not
// alias a or b. It uses the cache-friendly i-k-j loop order.
//
//hotline:hotpath
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	perRow := 2 * int64(a.Cols) * int64(b.Cols)
	if par.Serial(a.Rows, perRow) {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	par.ForWork(a.Rows, perRow, func(lo, hi int) {
		matMulRange(dst, a, b, lo, hi)
	})
}

// matMulTransBRange computes rows [lo, hi) of dst = a x bᵀ. Output columns
// are processed in pairs: the two dot products keep their own k-ascending
// accumulation chains (bit-equal to the plain loop) while their instruction
// streams interleave.
//
//hotline:hotpath
func matMulTransBRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		j := 0
		for ; j+2 <= b.Rows; j += 2 {
			brow0 := b.Row(j)[:len(arow)]
			brow1 := b.Row(j + 1)[:len(arow)]
			var sum0, sum1 float32
			for k, av := range arow {
				sum0 += av * brow0[k]
				sum1 += av * brow1[k]
			}
			drow[j] = sum0
			drow[j+1] = sum1
		}
		for ; j < b.Rows; j++ {
			brow := b.Row(j)[:len(arow)]
			var sum float32
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// MatMulTransB computes dst = a x bᵀ. dst must be a.Rows x b.Rows.
//
//hotline:hotpath
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	perRow := 2 * int64(a.Cols) * int64(b.Rows)
	if par.Serial(a.Rows, perRow) {
		matMulTransBRange(dst, a, b, 0, a.Rows)
		return
	}
	par.ForWork(a.Rows, perRow, func(lo, hi int) {
		matMulTransBRange(dst, a, b, lo, hi)
	})
}

// matMulTransARange computes output rows (columns of a) [lo, hi) of
// dst = aᵀ x b, accumulating over r in ascending order — the same
// per-element addition sequence for every shard split, so the result is
// bit-identical to the serial r-outer loop.
//
//hotline:hotpath
func matMulTransARange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	ac := a.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : i*n+n]
		for r := 0; r < a.Rows; r++ {
			aval := a.Data[r*ac+i]
			if aval == 0 {
				continue
			}
			brow := b.Data[r*n : r*n+n]
			axpyUnrolled(drow[:len(brow)], brow, aval)
		}
	}
}

// MatMulTransA computes dst = aᵀ x b. dst must be a.Cols x b.Cols.
//
//hotline:hotpath
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d != %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	n := b.Cols
	perCol := 2 * int64(a.Rows) * int64(n)
	if par.Serial(a.Cols, perCol) {
		// Cache-friendly r-outer accumulation on a single core. Per output
		// element this is the same ascending-r addition sequence as the
		// column-parallel form, so both orders are bit-identical.
		for r := 0; r < a.Rows; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i, aval := range arow {
				if aval == 0 {
					continue
				}
				axpyUnrolled(dst.Data[i*n:i*n+n], brow, aval)
			}
		}
		return
	}
	// Parallel form: each goroutine owns whole output rows (columns of a).
	par.ForWork(a.Cols, perCol, func(lo, hi int) {
		matMulTransARange(dst, a, b, lo, hi)
	})
}

// AddBiasRow adds bias (length m.Cols) to every row of m in place.
//
//hotline:hotpath
func AddBiasRow(m *Matrix, bias []float32) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: AddBiasRow bias len %d want %d", len(bias), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += bias[c]
		}
	}
}

// sumRowsRange accumulates columns [lo, hi) of the column-wise sum of m
// into dst, over r in ascending order.
//
//hotline:hotpath
func sumRowsRange(dst []float32, m *Matrix, lo, hi int) {
	cols := m.Cols
	for c := lo; c < hi; c++ {
		for r := 0; r < m.Rows; r++ {
			dst[c] += m.Data[r*cols+c]
		}
	}
}

// SumRowsInto accumulates the column-wise sum of m into dst (length m.Cols).
//
//hotline:hotpath
func SumRowsInto(dst []float32, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: SumRowsInto dst len %d want %d", len(dst), m.Cols))
	}
	if par.Serial(m.Cols, int64(m.Rows)) {
		// Row-outer on a single core; per output element the addition order
		// (r ascending) matches the column-parallel form bit for bit.
		for r := 0; r < m.Rows; r++ {
			row := m.Row(r)
			for c := range row {
				dst[c] += row[c]
			}
		}
		return
	}
	par.ForWork(m.Cols, int64(m.Rows), func(lo, hi int) {
		sumRowsRange(dst, m, lo, hi)
	})
}

// Add computes dst = a + b element-wise; shapes must match.
func Add(dst, a, b *Matrix) {
	checkSameShape("Add", a, b)
	checkSameShape("Add(dst)", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// axpyRange computes dst[lo:hi] += alpha*src[lo:hi].
//
//hotline:hotpath
func axpyRange(dst *Matrix, alpha float32, src *Matrix, lo, hi int) {
	d, s := dst.Data, src.Data
	for i := lo; i < hi; i++ {
		d[i] += alpha * s[i]
	}
}

// AxpyInto computes dst += alpha*src element-wise.
//
//hotline:hotpath
func AxpyInto(dst *Matrix, alpha float32, src *Matrix) {
	checkSameShape("AxpyInto", dst, src)
	if par.Serial(len(dst.Data), 1) {
		axpyRange(dst, alpha, src, 0, len(dst.Data))
		return
	}
	par.ForWork(len(dst.Data), 1, func(lo, hi int) {
		axpyRange(dst, alpha, src, lo, hi)
	})
}

// Scale multiplies every element of m by alpha in place.
//
//hotline:hotpath
func Scale(m *Matrix, alpha float32) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Apply maps f over every element of src into dst (shapes must match; dst
// may alias src).
func Apply(dst, src *Matrix, f func(float32) float32) {
	checkSameShape("Apply", dst, src)
	par.ForWork(len(src.Data), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Data[i] = f(src.Data[i])
		}
	})
}

// hadamardRange computes dst[lo:hi] = a[lo:hi] ⊙ b[lo:hi].
//
//hotline:hotpath
func hadamardRange(dst, a, b *Matrix, lo, hi int) {
	d, x, y := dst.Data, a.Data, b.Data
	for i := lo; i < hi; i++ {
		d[i] = x[i] * y[i]
	}
}

// Hadamard computes dst = a ⊙ b element-wise.
//
//hotline:hotpath
func Hadamard(dst, a, b *Matrix) {
	checkSameShape("Hadamard", a, b)
	checkSameShape("Hadamard(dst)", dst, a)
	if par.Serial(len(dst.Data), 1) {
		hadamardRange(dst, a, b, 0, len(dst.Data))
		return
	}
	par.ForWork(len(dst.Data), 1, func(lo, hi int) {
		hadamardRange(dst, a, b, lo, hi)
	})
}

// Transpose returns mᵀ as a new matrix.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			out.Data[c*m.Rows+r] = row[c]
		}
	}
	return out
}

// MaxAbsDiff returns the max absolute element-wise difference between a and b.
func MaxAbsDiff(a, b *Matrix) float32 {
	checkSameShape("MaxAbsDiff", a, b)
	var max float32
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
