package tensor

import (
	"fmt"

	"hotline/internal/par"
)

// Matrix is a dense row-major float32 matrix.
//
// The zero value is an empty 0x0 matrix. Data has length Rows*Cols; element
// (r, c) lives at Data[r*Cols+c].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows x cols matrix without copying.
// len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view (no copy) of row r.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and other have identical shape and contents.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if other.Data[i] != v {
			return false
		}
	}
	return true
}

// String renders a compact shape descriptor (not the contents).
func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

// MatMul computes dst = a x b. dst must be a.Rows x b.Cols and must not
// alias a or b. It uses the cache-friendly i-k-j loop order.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	n := b.Cols
	par.ForWork(a.Rows, 2*int64(a.Cols)*int64(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for k := 0; k < a.Cols; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.Data[k*n : k*n+n]
				for j := 0; j < n; j++ {
					drow[j] += aik * brow[j]
				}
			}
		}
	})
}

// MatMulTransB computes dst = a x bᵀ. dst must be a.Rows x b.Rows.
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	par.ForWork(a.Rows, 2*int64(a.Cols)*int64(b.Rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var sum float32
				for k := range arow {
					sum += arow[k] * brow[k]
				}
				drow[j] = sum
			}
		}
	})
}

// MatMulTransA computes dst = aᵀ x b. dst must be a.Cols x b.Cols.
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d != %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	n := b.Cols
	if par.Workers() <= 1 {
		// Cache-friendly r-outer accumulation on a single core.
		for r := 0; r < a.Rows; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i, aval := range arow {
				if aval == 0 {
					continue
				}
				drow := dst.Data[i*n : i*n+n]
				for j := 0; j < n; j++ {
					drow[j] += aval * brow[j]
				}
			}
		}
		return
	}
	// Parallel form: each goroutine owns whole output rows (columns of a),
	// accumulating over r in ascending order — the same per-element addition
	// sequence as the serial loop, so the result is bit-identical.
	ac := a.Cols
	par.ForWork(ac, 2*int64(a.Rows)*int64(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Data[i*n : i*n+n]
			for r := 0; r < a.Rows; r++ {
				aval := a.Data[r*ac+i]
				if aval == 0 {
					continue
				}
				brow := b.Data[r*n : r*n+n]
				for j := 0; j < n; j++ {
					drow[j] += aval * brow[j]
				}
			}
		}
	})
}

// AddBiasRow adds bias (length m.Cols) to every row of m in place.
func AddBiasRow(m *Matrix, bias []float32) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: AddBiasRow bias len %d want %d", len(bias), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += bias[c]
		}
	}
}

// SumRowsInto accumulates the column-wise sum of m into dst (length m.Cols).
func SumRowsInto(dst []float32, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: SumRowsInto dst len %d want %d", len(dst), m.Cols))
	}
	if par.Workers() <= 1 {
		for r := 0; r < m.Rows; r++ {
			row := m.Row(r)
			for c := range row {
				dst[c] += row[c]
			}
		}
		return
	}
	// Column-parallel form: each goroutine sums whole columns over r in
	// ascending order — bit-identical to the serial row-outer loop.
	cols := m.Cols
	par.ForWork(cols, int64(m.Rows), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			for r := 0; r < m.Rows; r++ {
				dst[c] += m.Data[r*cols+c]
			}
		}
	})
}

// Add computes dst = a + b element-wise; shapes must match.
func Add(dst, a, b *Matrix) {
	checkSameShape("Add", a, b)
	checkSameShape("Add(dst)", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AxpyInto computes dst += alpha*src element-wise.
func AxpyInto(dst *Matrix, alpha float32, src *Matrix) {
	checkSameShape("AxpyInto", dst, src)
	par.ForWork(len(dst.Data), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Data[i] += alpha * src.Data[i]
		}
	})
}

// Scale multiplies every element of m by alpha in place.
func Scale(m *Matrix, alpha float32) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Apply maps f over every element of src into dst (shapes must match; dst
// may alias src).
func Apply(dst, src *Matrix, f func(float32) float32) {
	checkSameShape("Apply", dst, src)
	par.ForWork(len(src.Data), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Data[i] = f(src.Data[i])
		}
	})
}

// Hadamard computes dst = a ⊙ b element-wise.
func Hadamard(dst, a, b *Matrix) {
	checkSameShape("Hadamard", a, b)
	checkSameShape("Hadamard(dst)", dst, a)
	par.ForWork(len(dst.Data), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Data[i] = a.Data[i] * b.Data[i]
		}
	})
}

// Transpose returns mᵀ as a new matrix.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			out.Data[c*m.Rows+r] = row[c]
		}
	}
	return out
}

// MaxAbsDiff returns the max absolute element-wise difference between a and b.
func MaxAbsDiff(a, b *Matrix) float32 {
	checkSameShape("MaxAbsDiff", a, b)
	var max float32
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
