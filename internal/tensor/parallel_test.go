package tensor

import (
	"testing"

	"hotline/internal/par"
)

// randMatrix fills a matrix with normal values, zeroing ~10% of entries so
// the skip-zero fast paths run in both serial and parallel forms.
func randMatrix(rows, cols int, rng *RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if rng.Float32() < 0.1 {
			continue
		}
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// The determinism contract of internal/par: every kernel produces
// bit-identical results for every worker count. Odd shapes stress shard
// boundary handling.
func TestKernelsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := NewRNG(7)
	a := randMatrix(97, 53, rng)
	b := randMatrix(53, 61, rng)
	c := randMatrix(97, 61, rng)
	d := randMatrix(97, 53, rng)

	type result struct {
		mm, mta, mtb, axpy, apply, had *Matrix
		sums                           []float32
	}
	run := func(workers int) result {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		r := result{
			mm:    New(97, 61),
			mta:   New(53, 61), // aᵀ x c
			mtb:   New(97, 97), // a x dᵀ
			axpy:  a.Clone(),
			apply: New(97, 53),
			had:   New(97, 53),
			sums:  make([]float32, 61),
		}
		MatMul(r.mm, a, b)
		MatMulTransA(r.mta, a, c)
		MatMulTransB(r.mtb, a, d)
		AxpyInto(r.axpy, 0.5, d)
		Apply(r.apply, a, func(v float32) float32 { return v * v })
		Hadamard(r.had, a, d)
		for i := range r.sums {
			r.sums[i] = 0.25 // non-zero start: SumRowsInto accumulates
		}
		SumRowsInto(r.sums, c)
		return r
	}

	want := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		pairs := []struct {
			name string
			a, b *Matrix
		}{
			{"MatMul", want.mm, got.mm},
			{"MatMulTransA", want.mta, got.mta},
			{"MatMulTransB", want.mtb, got.mtb},
			{"AxpyInto", want.axpy, got.axpy},
			{"Apply", want.apply, got.apply},
			{"Hadamard", want.had, got.had},
		}
		for _, p := range pairs {
			if !p.a.Equal(p.b) {
				t.Fatalf("%s: workers=%d differs from workers=1", p.name, workers)
			}
		}
		for i := range want.sums {
			if want.sums[i] != got.sums[i] {
				t.Fatalf("SumRowsInto[%d]: workers=%d %v != workers=1 %v",
					i, workers, got.sums[i], want.sums[i])
			}
		}
	}
}
