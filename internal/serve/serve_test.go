package serve

import (
	"math/rand"
	"testing"
	"time"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
)

func testCfg() data.Config {
	return data.Config{
		Name: "tiny-serve", RM: "T1",
		DenseFeatures: 4, NumTables: 3,
		FullRowsPerTable:   []int64{2000, 1000, 400},
		ScaledRowsPerTable: []int{200, 100, 40},
		LookupsPerTable:    1, ZipfS: 1.2, DriftPerDay: 0.1, HotFracRows: 0.3,
		EmbedDim: 8,
		BotMLP:   []int{4, 16, 8},
		TopMLP:   []int{16, 1},
		Samples:  2048, Seed: 77, ScaleFactor: 10, FullSizeGB: 0.001,
	}
}

func testSvc(cfg data.Config, nodes int) *shard.Service {
	return shard.New(shard.Config{
		Nodes: nodes, CacheBytes: 32 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
}

// TestServeDeterministic: predictions are a pure function of weights and
// request — identical across repeats (cache churn never touches values)
// and across physical layouts (single-node vs 4-way sharded).
func TestServeDeterministic(t *testing.T) {
	cfg := testCfg()
	c := BuildCorpus(cfg, 2, 4, 8)

	single := NewServer(model.New(cfg, 11), 2)
	mSharded := model.New(cfg, 11)
	mSharded.ShardEmbeddings(testSvc(cfg, 4))
	sharded := NewServer(mSharded, 2)

	for i, req := range c.Requests {
		a := single.Predict(req.Batch)
		b := append([]float32(nil), sharded.Predict(req.Batch)...)
		again := sharded.Predict(req.Batch)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("req %d sample %d: layouts diverge %g vs %g", i, k, a[k], b[k])
			}
			if b[k] != again[k] {
				t.Fatalf("req %d sample %d: repeat diverges %g vs %g", i, k, b[k], again[k])
			}
			if a[k] <= 0 || a[k] >= 1 {
				t.Fatalf("req %d sample %d: probability %g out of (0,1)", i, k, a[k])
			}
		}
	}
	if reqs, samples := sharded.Served(); reqs != int64(2*c.Len()) || samples != 2*c.Samples() {
		t.Fatalf("served counters: %d requests, %d samples", reqs, samples)
	}
}

// TestServeTrafficAccounting: request traffic lands in the service's serve
// counters only, warms the shared caches, and never scatters.
func TestServeTrafficAccounting(t *testing.T) {
	cfg := testCfg()
	svc := testSvc(cfg, 4)
	m := model.New(cfg, 3)
	m.ShardEmbeddings(svc)
	s := NewServer(m, 1)
	c := BuildCorpus(cfg, 1, 4, 16)
	for _, req := range c.Requests {
		s.Predict(req.Batch)
	}
	sv := svc.ServeSnapshot()
	if sv.Lookups == 0 || sv.ScatterRows != 0 || sv.ScatterBytes != 0 {
		t.Fatalf("serve snapshot: %+v", sv)
	}
	if st := svc.Snapshot(); st.Lookups != 0 {
		t.Fatalf("serve traffic leaked into training counters: %+v", st)
	}
	cold := sv.CacheHits
	for _, req := range c.Requests {
		s.Predict(req.Batch)
	}
	if sv = svc.ServeSnapshot(); sv.CacheHits <= cold {
		t.Fatalf("replay must hit the warmed caches: %d -> %d", cold, sv.CacheHits)
	}
}

// TestLatencyPercentilesExact: nearest-rank percentiles of a shuffled
// 1..1000ms stream are exactly the 500th/900th/990th/999th values.
func TestLatencyPercentilesExact(t *testing.T) {
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	rand.New(rand.NewSource(42)).Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
	s := Summarize(samples)
	want := LatencySummary{
		N: 1000, Min: time.Millisecond, Max: time.Second,
		Mean: 500500 * time.Microsecond,
		P50:  500 * time.Millisecond, P90: 900 * time.Millisecond,
		P99: 990 * time.Millisecond, P999: 999 * time.Millisecond,
	}
	if s != want {
		t.Fatalf("summary = %+v want %+v", s, want)
	}

	// Single sample: every percentile is that sample.
	one := Summarize([]time.Duration{7 * time.Millisecond})
	if one.P50 != 7*time.Millisecond || one.P999 != 7*time.Millisecond || one.N != 1 {
		t.Fatalf("single-sample summary: %+v", one)
	}
	if z := Summarize(nil); z != (LatencySummary{}) {
		t.Fatalf("empty summary: %+v", z)
	}
}

// TestRunLoadLowQPS: the harness plays every request, measures positive
// latencies, and reports coherent throughput.
func TestRunLoadLowQPS(t *testing.T) {
	cfg := testCfg()
	m := model.New(cfg, 5)
	m.ShardEmbeddings(testSvc(cfg, 2))
	s := NewServer(m, 2)
	c := BuildCorpus(cfg, 2, 8, 4)

	rep := RunLoad(s, c, LoadConfig{QPS: 2000, Players: 2})
	if rep.Requests != c.Len() || rep.Latency.N != c.Len() {
		t.Fatalf("played %d/%d requests (latency N %d)", rep.Requests, c.Len(), rep.Latency.N)
	}
	if rep.Samples != c.Samples() {
		t.Fatalf("samples = %d want %d", rep.Samples, c.Samples())
	}
	if rep.Players != 2 || rep.QPS != 2000 {
		t.Fatalf("config echo: %+v", rep)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P999 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P999 {
		t.Fatalf("incoherent percentiles: %+v", rep.Latency)
	}
	if rep.Throughput <= 0 || rep.Wall <= 0 {
		t.Fatalf("throughput %g wall %v", rep.Throughput, rep.Wall)
	}
	if reqs, _ := s.Served(); reqs != int64(c.Len()) {
		t.Fatalf("server saw %d requests", reqs)
	}

	// A request cap above the corpus length wraps it.
	wrap := RunLoad(s, c, LoadConfig{QPS: 5000, Requests: c.Len() + 3, Players: 2})
	if wrap.Requests != c.Len()+3 {
		t.Fatalf("wrapped run played %d", wrap.Requests)
	}
}

// TestKnee: the knee is the last point inside the budget.
func TestKnee(t *testing.T) {
	mk := func(p99 time.Duration) SweepPoint {
		return SweepPoint{Report: LoadReport{Latency: LatencySummary{P99: p99}}}
	}
	pts := []SweepPoint{mk(time.Millisecond), mk(2 * time.Millisecond), mk(50 * time.Millisecond)}
	if k := Knee(pts, 5*time.Millisecond); k != 1 {
		t.Fatalf("knee = %d want 1", k)
	}
	if k := Knee(pts, time.Microsecond); k != -1 {
		t.Fatalf("knee = %d want -1", k)
	}
	if k := Knee(nil, time.Second); k != -1 {
		t.Fatalf("empty knee = %d", k)
	}
}

// TestCorpusDeterministic: same arguments, same corpus; days are stamped in
// order and drift actually changes the index stream across days.
func TestCorpusDeterministic(t *testing.T) {
	cfg := testCfg()
	a := BuildCorpus(cfg, 2, 3, 8)
	b := BuildCorpus(cfg, 2, 3, 8)
	if a.Len() != 6 || b.Len() != 6 || a.Days != 2 {
		t.Fatalf("corpus shape: %d/%d requests", a.Len(), b.Len())
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.Day != rb.Day || ra.Day != i/3 {
			t.Fatalf("request %d day %d vs %d", i, ra.Day, rb.Day)
		}
		for tab := range ra.Batch.Sparse {
			for s := range ra.Batch.Sparse[tab] {
				for k := range ra.Batch.Sparse[tab][s] {
					if ra.Batch.Sparse[tab][s][k] != rb.Batch.Sparse[tab][s][k] {
						t.Fatal("corpus not deterministic")
					}
				}
			}
		}
	}
}
