package serve

import "time"

// SweepPoint is one sweep rate's load report.
type SweepPoint struct {
	QPS    float64
	Report LoadReport
}

// SaturationSweep replays the corpus at each target rate in qps — a closed
// loop over open-loop runs — producing the QPS-vs-latency curve whose knee
// is the server's usable capacity. cfg.QPS is overridden per point; the
// request cap and player bound apply to every run.
func SaturationSweep(s *Server, c *Corpus, qps []float64, cfg LoadConfig) []SweepPoint {
	points := make([]SweepPoint, len(qps))
	for i, q := range qps {
		run := cfg
		run.QPS = q
		points[i] = SweepPoint{QPS: q, Report: RunLoad(s, c, run)}
	}
	return points
}

// Knee returns the index of the highest-rate point whose p99 latency stays
// within budget, or -1 when even the first point blows it. Points are
// assumed rate-ascending (SaturationSweep preserves caller order).
func Knee(points []SweepPoint, budget time.Duration) int {
	knee := -1
	for i := range points {
		if points[i].Report.Latency.P99 <= budget {
			knee = i
		}
	}
	return knee
}
