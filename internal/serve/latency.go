package serve

import (
	"slices"
	"time"
)

// LatencySummary condenses a latency sample set. Percentiles are exact
// nearest-rank values over the full sorted sample set — no histogram
// binning or interpolation — so a synthetic stream of known durations has
// fully predictable percentiles (TestLatencyPercentilesExact).
type LatencySummary struct {
	N                   int
	Min, Mean, Max      time.Duration
	P50, P90, P99, P999 time.Duration
}

// Summarize computes the summary of samples, reordering them in place (the
// sort IS the percentile computation). An empty set summarises to zeros.
func Summarize(samples []time.Duration) LatencySummary {
	s := LatencySummary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	slices.Sort(samples)
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	s.Min, s.Max = samples[0], samples[s.N-1]
	s.Mean = sum / time.Duration(s.N)
	s.P50 = permille(samples, 500)
	s.P90 = permille(samples, 900)
	s.P99 = permille(samples, 990)
	s.P999 = permille(samples, 999)
	return s
}

// permille returns the nearest-rank pm/1000 quantile of an ascending sample
// set: the smallest sample with at least pm permille of the set at or below
// it (rank ceil(pm·N/1000), 1-based). Integer arithmetic — a float ceil
// would misrank p999 on round sample counts (99.9/100·1000 floats to
// 999.0000000000001).
func permille(sorted []time.Duration, pm int) time.Duration {
	rank := (pm*len(sorted) + 999) / 1000
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
