// Package serve is the online-inference side of the substrate: the paper's
// target systems train continuously but spend most of their life answering
// recommendation requests, and this package makes that half measurable.
//
// Three pieces compose:
//
//   - Server wraps a model in predict replicas (weight-sharing shadows with
//     private scratch) behind a read/write lock: any number of concurrent
//     Predicts, exclusive Train steps. Predictions take the bags' read-only
//     ServeForward path — no scatter, no prefetch-window interaction, serve
//     traffic booked separately — so a mixed train+serve run leaves training
//     bit-identical to a train-only run.
//
//   - Corpus is a deterministic request stream drawn from the Zipf/drifting
//     generator (internal/data), one slice of batches per simulated day, so
//     load runs exercise exactly the popularity churn the device caches are
//     built for.
//
//   - RunLoad replays a corpus at a target QPS with bounded parallel request
//     players (par.Go). The schedule is open-loop — request i is due at
//     start + i/QPS regardless of earlier completions, and latency is
//     measured from that due time — so tail percentiles include queueing
//     delay once the server saturates instead of hiding it (no coordinated
//     omission). SaturationSweep steps the rate across a grid and Knee reads
//     off the highest rate whose p99 stays inside a budget.
//
// Latency percentiles are exact nearest-rank values over the full sample
// set (Summarize), never histogram approximations, so tests can assert them
// against synthetic streams.
package serve
