package serve

import (
	"fmt"

	"hotline/internal/data"
)

// Request is one inference request: a batch of candidate samples to score,
// tagged with the simulated drift day it was drawn from.
type Request struct {
	Day   int
	Batch *data.Batch
}

// Corpus is a pre-generated, deterministic request stream: perDay request
// batches for each of Days consecutive drift days, in day order. Playing it
// front to back walks the server through exactly the popularity churn the
// evolving-skew experiments train under — the popular head of each table
// drifts between days, so the device caches must re-warm on live traffic.
type Corpus struct {
	Days     int
	Requests []Request
}

// BuildCorpus draws a corpus from the Zipf/drifting generator for cfg.
// Generation is deterministic in (cfg, days, perDay, batchSize): two
// corpora built from the same arguments are identical, so load runs are
// replayable.
func BuildCorpus(cfg data.Config, days, perDay, batchSize int) *Corpus {
	if days < 1 || perDay < 1 || batchSize < 1 {
		panic(fmt.Sprintf("serve: corpus wants days, perDay, batchSize >= 1 (got %d, %d, %d)",
			days, perDay, batchSize))
	}
	g := data.NewGenerator(cfg)
	c := &Corpus{Days: days, Requests: make([]Request, 0, days*perDay)}
	for d := 0; d < days; d++ {
		g.SetDay(d)
		for r := 0; r < perDay; r++ {
			c.Requests = append(c.Requests, Request{Day: d, Batch: g.NextBatch(batchSize)})
		}
	}
	return c
}

// Len returns the request count.
func (c *Corpus) Len() int { return len(c.Requests) }

// Samples returns the total sample count across requests.
func (c *Corpus) Samples() int64 {
	var n int64
	for i := range c.Requests {
		n += int64(c.Requests[i].Batch.Size())
	}
	return n
}
