package serve

import (
	"sync"
	"sync/atomic"

	"hotline/internal/data"
	"hotline/internal/model"
)

// Server serves click predictions from a model while allowing interleaved
// training on the same weights.
//
// Replicas are weight-sharing shadows (model.NewShadow): the parameters
// live once, each replica owns private forward scratch, so replicas score
// requests concurrently. A read/write lock orders serving against
// training — Predict holds the read side (any number of concurrent
// predicts), Train the write side (exclusive) — which keeps mixed
// train+serve runs race-clean without ever blocking predicts on each
// other. Serving cannot perturb training: replica lookups take the bags'
// ServeForward path, which never consumes a prefetch window, never arms
// backward state, and books its traffic into the shard service's serve
// counters. The shared device caches ARE warmed by request traffic — that
// coupling is the serving story, and it changes accounting only, never
// values.
type Server struct {
	mu       sync.RWMutex
	replicas chan *model.Model

	requests atomic.Int64
	samples  atomic.Int64
}

// NewServer builds a server with n predict replicas shadowing m (n <= 0
// defaults to 1). The caller keeps training through its own executor on m;
// wrap each training step in Train so it serialises against predicts.
func NewServer(m *model.Model, n int) *Server {
	if n <= 0 {
		n = 1
	}
	s := &Server{replicas: make(chan *model.Model, n)}
	for i := 0; i < n; i++ {
		s.replicas <- model.NewShadow(m)
	}
	return s
}

// Replicas returns the predict replica count.
func (s *Server) Replicas() int { return cap(s.replicas) }

// Predict returns click probabilities for one request batch.
func (s *Server) Predict(b *data.Batch) []float32 {
	return s.PredictInto(nil, b)
}

// PredictInto is Predict writing into dst (grown as needed), so a request
// player reusing one buffer allocates nothing in steady state. It blocks
// while a Train step holds the write lock or every replica is busy; that
// wait is real serving latency and the load harness measures it.
func (s *Server) PredictInto(dst []float32, b *data.Batch) []float32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rep := <-s.replicas
	dst = rep.ServePredictInto(dst, b)
	s.replicas <- rep
	s.requests.Add(1)
	s.samples.Add(int64(b.Size()))
	return dst
}

// Train runs one training step — any closure advancing the shared
// weights — under the exclusive lock. In-flight predicts drain first
// (replica passes only read parameters, so they must not overlap a
// mutation), and new predicts wait until the step returns.
func (s *Server) Train(step func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	step()
}

// Served returns how many requests and samples have been predicted.
func (s *Server) Served() (requests, samples int64) {
	return s.requests.Load(), s.samples.Load()
}
