package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"hotline/internal/par"
)

// LoadConfig drives one load run.
type LoadConfig struct {
	// QPS is the target request arrival rate. The schedule is open-loop:
	// request i is due at start + i/QPS whether or not earlier requests
	// have finished, and its latency is measured from that due time. Once
	// the server saturates, queueing delay therefore lands in the tail
	// percentiles instead of silently stretching the schedule (the
	// coordinated-omission trap a closed-loop "send, wait, send" player
	// falls into).
	QPS float64
	// Requests caps how many requests are played, wrapping the corpus when
	// it is shorter; <= 0 plays the corpus exactly once.
	Requests int
	// Players bounds the parallel request players (par.Go); <= 0 defaults
	// to par.Workers(). Players cap the server's concurrency, not its
	// schedule — a late player finds its next request already overdue and
	// fires immediately.
	Players int
}

// LoadReport is one load run's measurements.
type LoadReport struct {
	QPS        float64 // target rate
	Requests   int
	Samples    int64
	Players    int
	Wall       time.Duration
	Throughput float64 // achieved requests per second
	Latency    LatencySummary
}

// RunLoad replays the corpus against the server at the configured rate and
// reports achieved throughput plus exact latency percentiles. Players pull
// request slots from a shared cursor, sleep until the slot's due time, then
// score it; each slot owns one entry of the latency array, so capture is
// race-free without locks and the player loop allocates nothing in steady
// state (one reused probability buffer per player).
func RunLoad(s *Server, c *Corpus, cfg LoadConfig) LoadReport {
	if c.Len() == 0 {
		panic("serve: RunLoad on an empty corpus")
	}
	if cfg.QPS <= 0 {
		panic(fmt.Sprintf("serve: RunLoad wants QPS > 0 (got %g)", cfg.QPS))
	}
	n := cfg.Requests
	if n <= 0 {
		n = c.Len()
	}
	players := cfg.Players
	if players <= 0 {
		players = par.Workers()
	}
	if players > n {
		players = n
	}
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	lat := make([]time.Duration, n)
	var cursor, samples atomic.Int64
	start := time.Now()
	par.Go(players, func(int) {
		var probs []float32
		for {
			i := int(cursor.Add(1) - 1)
			if i >= n {
				return
			}
			req := c.Requests[i%c.Len()]
			due := start.Add(time.Duration(i) * interval)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			probs = s.PredictInto(probs, req.Batch)
			lat[i] = time.Since(due)
			samples.Add(int64(req.Batch.Size()))
		}
	})
	wall := time.Since(start)
	rep := LoadReport{
		QPS: cfg.QPS, Requests: n, Samples: samples.Load(),
		Players: players, Wall: wall, Latency: Summarize(lat),
	}
	if wall > 0 {
		rep.Throughput = float64(n) / wall.Seconds()
	}
	return rep
}
