package train

import (
	"math"
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
)

func tinyCfg() data.Config {
	return data.Config{
		Name: "tiny-train", RM: "T1",
		DenseFeatures: 4, NumTables: 3,
		FullRowsPerTable:   []int64{2000, 1000, 400},
		ScaledRowsPerTable: []int{200, 100, 40},
		LookupsPerTable:    1, ZipfS: 1.2, DriftPerDay: 0.1, HotFracRows: 0.3,
		EmbedDim: 8,
		BotMLP:   []int{4, 16, 8},
		TopMLP:   []int{16, 1},
		Samples:  2048, Seed: 77, ScaleFactor: 10, FullSizeGB: 0.001,
	}
}

func TestBaselineStepReducesLoss(t *testing.T) {
	cfg := tinyCfg()
	tr := NewBaseline(model.New(cfg, 1), 0.1)
	gen := data.NewGenerator(cfg)
	b := gen.NextBatch(256)
	first := tr.Step(b)
	var last float64
	for i := 0; i < 50; i++ {
		last = tr.Step(b)
	}
	if last > first-0.01 {
		t.Fatalf("baseline loss did not fall: %g -> %g", first, last)
	}
}

func TestHotlineClassifiesAndTrains(t *testing.T) {
	cfg := tinyCfg()
	tr := NewHotline(model.New(cfg, 2), 0.1)
	gen := data.NewGenerator(cfg)
	for i := 0; i < 20; i++ {
		tr.Step(gen.NextBatch(128))
	}
	if tr.TotalInputs != 20*128 {
		t.Fatalf("total inputs = %d", tr.TotalInputs)
	}
	if f := tr.PopularFraction(); f <= 0.2 || f > 1 {
		t.Fatalf("popular fraction %.2f implausible", f)
	}
}

// The core parity claim (Eq. 5): baseline and Hotline executors trained on
// identical streams stay numerically together (differences only from float
// summation order).
func TestParityBaselineVsHotline(t *testing.T) {
	cfg := tinyCfg()
	rep := Parity(cfg, 9, RunConfig{BatchSize: 64, Iters: 30, EvalSize: 512})
	if rep.MaxStateDiff > 1e-3 {
		t.Fatalf("executors diverged: max diff %g", rep.MaxStateDiff)
	}
	if math.Abs(rep.Baseline.AUC-rep.Hotline.AUC) > 5e-3 {
		t.Fatalf("AUC diverged: %v vs %v", rep.Baseline.AUC, rep.Hotline.AUC)
	}
	if math.Abs(rep.Baseline.LogLoss-rep.Hotline.LogLoss) > 5e-3 {
		t.Fatalf("logloss diverged: %v vs %v", rep.Baseline.LogLoss, rep.Hotline.LogLoss)
	}
	if rep.String() == "" {
		t.Fatal("report should render")
	}
}

// Per-step loss parity: on the same batch from the same state, the Hotline
// µ-batch loss must equal the baseline loss (Eq. 5 directly).
func TestPerStepLossParity(t *testing.T) {
	cfg := tinyCfg()
	base := NewBaseline(model.New(cfg, 5), 0.05)
	hot := NewHotline(model.New(cfg, 5), 0.05)
	genA, genB := data.NewGenerator(cfg), data.NewGenerator(cfg)
	for i := 0; i < 15; i++ {
		la := base.Step(genA.NextBatch(64))
		lb := hot.Step(genB.NextBatch(64))
		if math.Abs(la-lb) > 1e-4 {
			t.Fatalf("iter %d: baseline loss %g vs hotline %g", i, la, lb)
		}
	}
}

func TestRunProducesCurve(t *testing.T) {
	cfg := tinyCfg()
	tr := NewBaseline(model.New(cfg, 3), 0.1)
	curve := Run(tr, data.NewGenerator(cfg), RunConfig{BatchSize: 64, Iters: 30, EvalEvery: 10, EvalSize: 256})
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(curve))
	}
	if curve[len(curve)-1].Iteration != 30 {
		t.Fatal("final point must be at the last iteration")
	}
	for _, p := range curve {
		if p.Metrics.AUC < 0.3 || p.Metrics.AUC > 1 {
			t.Fatalf("implausible AUC %g", p.Metrics.AUC)
		}
	}
}

// Training with the Hotline executor must still learn (AUC above chance).
func TestHotlineLearns(t *testing.T) {
	cfg := tinyCfg()
	tr := NewHotline(model.New(cfg, 4), 0.1)
	curve := Run(tr, data.NewGenerator(cfg), RunConfig{BatchSize: 128, Iters: 60, EvalEvery: 60, EvalSize: 512})
	final := curve[len(curve)-1].Metrics.AUC
	if final < 0.55 {
		t.Fatalf("hotline executor failed to learn: AUC %.3f", final)
	}
}

func TestSeedDerivation(t *testing.T) {
	if Seed(1, 2) == Seed(1, 3) {
		t.Fatal("different k must give different seeds")
	}
	if Seed(1, 2) != Seed(1, 2) {
		t.Fatal("Seed must be deterministic")
	}
}
