package train

import (
	"sync"
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/serve"
	"hotline/internal/shard"
)

// TestMixedServeTrainingParity extends the parity family to the serving
// path: a Hotline run that also answers predict traffic — both overlapped
// (a player goroutine hammering the server throughout) and deliberately
// BETWEEN pipelined steps, while cross-iteration prefetch windows are open
// — must leave training state bit-identical to the train-only run. This is
// the end-to-end guarantee behind ServeForward's contract: no prefetch
// window consumed, no backward state armed, no parameter touched.
func TestMixedServeTrainingParity(t *testing.T) {
	cfg := tinyCfg()
	const seed, batch, iters = 21, 48, 10

	run := func(mixed bool) (*model.Model, []float64) {
		svc := shard.New(shard.Config{
			Nodes: 4, CacheBytes: 32 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		}, nil)
		tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
		gen := data.NewGenerator(cfg)
		batches := make([]*data.Batch, iters)
		for i := range batches {
			batches[i] = gen.NextBatch(batch)
		}
		losses := make([]float64, iters)

		var srv *serve.Server
		var corpus *serve.Corpus
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if mixed {
			srv = serve.NewServer(tr.Model(), 2)
			corpus = serve.BuildCorpus(cfg, 2, 4, 16)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					srv.Predict(corpus.Requests[i%corpus.Len()].Batch)
				}
			}()
		}
		for i, b := range batches {
			var next *data.Batch
			if i+1 < iters {
				next = batches[i+1]
			}
			if !mixed {
				losses[i] = tr.StepPipelined(b, next)
				continue
			}
			srv.Train(func() { losses[i] = tr.StepPipelined(b, next) })
			// One synchronous predict per iteration with the next window
			// already staged: it must not consume it.
			srv.Predict(corpus.Requests[i%corpus.Len()].Batch)
		}
		if mixed {
			close(stop)
			wg.Wait()
			if reqs, _ := srv.Served(); reqs < int64(iters) {
				t.Fatalf("server answered only %d requests", reqs)
			}
		}
		return tr.Model(), losses
	}

	mTrain, lossTrain := run(false)
	mMixed, lossMixed := run(true)
	for i := range lossTrain {
		if lossTrain[i] != lossMixed[i] {
			t.Fatalf("iter %d: loss %g (train-only) vs %g (mixed)", i, lossTrain[i], lossMixed[i])
		}
	}
	if d := model.MaxStateDiff(mTrain, mMixed); d != 0 {
		t.Fatalf("mixed train+serve perturbed training state: max diff %g", d)
	}
}
