package train

import (
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
)

// modHot is a deterministic popularity classifier for the quantized
// determinism grid: every fourth row is "hot", so the mixed mode exercises
// both tiers on every batch without profiling a stream.
type modHot struct{}

func (modHot) IsHot(_ int, row int32) bool { return row%4 == 0 }

// TestPipelinedQuantizedDeterminism extends the depth-k determinism
// contract to the precision-tiered caches: for every quantized cache mode
// and every pipeline depth k, training with StepLookahead is byte-identical
// to fully synchronous batch-by-batch training under the SAME mode — the
// warm tier's fused dequantize-gather and the dirty-row repair path must
// produce the same bits whether a staged row is consumed immediately or k-1
// iterations later. (Quantized training legitimately differs from fp32
// training; what may never differ is pipelined vs unpipelined.)
func TestPipelinedQuantizedDeterminism(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 1024
	cfg.BotMLP = []int{13, 32, 16}
	cfg.TopMLP = []int{32, 1}
	const seed, iters, batch, nodes = 42, 8, 128, 4

	batches := func() []*data.Batch {
		gen := data.NewGenerator(cfg)
		bs := make([]*data.Batch, iters)
		for i := range bs {
			bs[i] = gen.NextBatch(batch)
		}
		return bs
	}()

	fp32ref := func() *model.Model {
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		}, nil)
		tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
		tr.LearnSamples = 512
		for i := 0; i < iters; i++ {
			tr.Step(batches[i])
		}
		return tr.M
	}()

	for _, q := range []shard.QuantMode{shard.QuantFP16, shard.QuantINT8, shard.QuantMixed} {
		newTrainer := func(overlap bool) (*HotlineTrainer, *shard.Service) {
			var hot shard.HotClassifier
			if q == shard.QuantMixed {
				hot = modHot{} // a nil classifier would degenerate Mixed to all-fp32
			}
			svc := shard.New(shard.Config{
				Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
				Quant: q,
			}, hot)
			tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
			tr.OverlapGather = overlap
			tr.LearnSamples = 512
			return tr, svc
		}

		// Synchronous batch-by-batch reference at this quant mode.
		ref, refSvc := newTrainer(false)
		for i := 0; i < iters; i++ {
			ref.Step(batches[i])
		}
		if st := refSvc.Snapshot(); st.QuantHits == 0 || st.DequantRows == 0 {
			t.Fatalf("%s: reference run never served a warm-tier hit (quantHits=%d dequantRows=%d); the grid is vacuous",
				q, st.QuantHits, st.DequantRows)
		}
		// The quantized reference must actually train differently from fp32
		// — otherwise "pipelined == synchronous" would hold trivially.
		if model.DenseStateEqual(fp32ref, ref.M) && model.SparseStateEqual(fp32ref, ref.M) {
			t.Fatalf("%s: quantized training is bit-identical to fp32; the warm tier served exact values", q)
		}

		for _, k := range []int{1, 2, 4, 8} {
			tr, svc := newTrainer(true)
			tr.Depth = k
			for i := 0; i < iters; i++ {
				end := i + k
				if end > iters {
					end = iters
				}
				tr.StepLookahead(batches[i], batches[i+1:end])
			}
			if !model.DenseStateEqual(ref.M, tr.M) {
				t.Fatalf("%s k=%d: pipelined dense state diverged from synchronous", q, k)
			}
			if !model.SparseStateEqual(ref.M, tr.M) {
				t.Fatalf("%s k=%d: pipelined sparse state diverged from synchronous", q, k)
			}
			if st := svc.Gatherer().Stats(); st.StaleRows != 0 {
				t.Fatalf("%s k=%d: repair mode consumed %d stale rows", q, k, st.StaleRows)
			}
		}
	}
}

// TestQuantOffMatchesSeedBehavior pins the QuantOff zero value to the
// pre-quantization cache bit for bit: an explicitly-defaulted config and
// one that never mentions Quant train identically, and the byte-budgeted
// cache admits exactly floor(CacheBytes/RowBytes) fp32 rows.
func TestQuantOffMatchesSeedBehavior(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 512
	cfg.BotMLP = []int{13, 16, 16}
	cfg.TopMLP = []int{16, 1}
	const seed, iters, batch, nodes = 42, 4, 128, 2

	run := func(explicit bool) (*model.Model, shard.Stats) {
		sc := shard.Config{Nodes: nodes, CacheBytes: 32 << 10, RowBytes: int64(cfg.EmbedDim) * 4}
		if explicit {
			sc.Quant = shard.QuantOff
		}
		svc := shard.New(sc, nil)
		tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
		tr.LearnSamples = 256
		gen := data.NewGenerator(cfg)
		for i := 0; i < iters; i++ {
			tr.Step(gen.NextBatch(batch))
		}
		return tr.M, svc.Snapshot()
	}
	ma, sa := run(false)
	mb, sb := run(true)
	if !model.DenseStateEqual(ma, mb) || !model.SparseStateEqual(ma, mb) {
		t.Fatal("explicit QuantOff diverged from the zero-value config")
	}
	sa.GatherWall, sb.GatherWall = 0, 0 // wall clock is the one legitimately noisy field
	sa.ScatterWall, sb.ScatterWall = 0, 0
	if sa != sb {
		t.Fatalf("stats diverged:\n%+v\n%+v", sa, sb)
	}
	if sa.QuantHits != 0 || sa.DequantRows != 0 {
		t.Fatalf("quant-off run counted quantized traffic: %+v", sa)
	}
}
