package train

import (
	"hotline/internal/model"
	"hotline/internal/shard"
)

// NewHotlineSharded wraps a model in the Hotline µ-batch executor with its
// embedding tables partitioned across the nodes of svc (row-wise under the
// service's placement policy, with per-node hot-entry device caches).
// Training math is bit-identical to the unsharded executor for every node
// count and placement — the service only simulates row placement, caching
// and all-to-all traffic — so the Eq. 5 parity argument carries over
// unchanged while svc.Snapshot() reports what the topology actually moved.
//
// The service's async gather engine is attached and overlap enabled: the
// non-popular µ-batch's fabric gathers stream while the popular µ-batch
// computes, and svc.Gatherer().Stats() reports how much gather time stayed
// exposed. Set OverlapGather = false for the synchronous ablation (same
// traffic, fully exposed gathers).
func NewHotlineSharded(m *model.Model, lr float32, svc *shard.Service) *HotlineTrainer {
	svc.EnableAsyncGather()
	m.ShardEmbeddings(svc)
	t := NewHotline(m, lr)
	t.Shard = svc
	t.OverlapGather = true
	return t
}

// NewHotlineShardedAdagrad is NewHotlineSharded under dense + sparse
// Adagrad (the mn-adagrad scenario's executor). The sparse accumulators are
// globally indexed, so sharded training matches the single-node Adagrad
// executor bit for bit, like the SGD path.
func NewHotlineShardedAdagrad(m *model.Model, lr float32, svc *shard.Service) *HotlineTrainer {
	t := NewHotlineSharded(m, lr, svc)
	t.EnableAdagrad()
	return t
}
