package train

import (
	"hotline/internal/model"
	"hotline/internal/shard"
)

// NewHotlineSharded wraps a model in the Hotline µ-batch executor with its
// embedding tables partitioned across the nodes of svc (row-wise, with
// per-node hot-entry device caches). Training math is bit-identical to the
// unsharded executor for every node count — the service only simulates
// placement, caching and all-to-all traffic — so the Eq. 5 parity argument
// carries over unchanged while svc.Snapshot() reports what the topology
// actually moved.
func NewHotlineSharded(m *model.Model, lr float32, svc *shard.Service) *HotlineTrainer {
	m.ShardEmbeddings(svc)
	t := NewHotline(m, lr)
	t.Shard = svc
	return t
}
