// Package train provides the functional training executors: the baseline
// mini-batch SGD loop and the Hotline executor that fragments every
// mini-batch into popular and non-popular µ-batches (classified by the
// accelerator's EAL) and accumulates their gradients into a single update.
//
// This is the layer behind the paper's accuracy-parity claim (§IV-A,
// Eq. 5): because L_hotline = L_popular + L_non-popular = L_baseline, both
// executors produce the same updates on the same data, and the Figure 18 /
// Table V metrics coincide.
//
// In the DESIGN.md layering the package sits on top of internal/model and
// internal/accel. NewHotlineSharded additionally runs the same executor on
// shard-service-backed tables (internal/shard) — bit-identical math, plus
// measured cache and all-to-all traffic.
//
//hotline:deterministic
package train
