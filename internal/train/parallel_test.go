package train

import (
	"sync"
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/par"
)

// trainSteps runs n Hotline steps from a fixed seed under the given worker
// count and returns the trainer plus the per-step losses.
func trainSteps(workers, n int) (*HotlineTrainer, []float64) {
	prev := par.SetWorkers(workers)
	defer par.SetWorkers(prev)
	cfg := tinyCfg()
	tr := NewHotline(model.New(cfg, 21), 0.1)
	gen := data.NewGenerator(cfg)
	losses := make([]float64, n)
	for i := range losses {
		losses[i] = tr.Step(gen.NextBatch(96))
	}
	return tr, losses
}

// The trainer's concurrent µ-batch execution must be bit-deterministic: the
// popular pass runs on the primary model, the non-popular pass on a
// weight-sharing shadow, and gradients reduce in fixed order — so any worker
// count produces exactly the same parameters and losses.
func TestHotlineStepBitIdenticalAcrossWorkers(t *testing.T) {
	serial, serialLoss := trainSteps(1, 12)
	for _, workers := range []int{2, 8} {
		parallel, parallelLoss := trainSteps(workers, 12)
		for i := range serialLoss {
			if serialLoss[i] != parallelLoss[i] {
				t.Fatalf("workers=%d: step %d loss %v != serial %v",
					workers, i, parallelLoss[i], serialLoss[i])
			}
		}
		if !model.DenseStateEqual(serial.M, parallel.M) {
			t.Fatalf("workers=%d: dense parameters differ from serial", workers)
		}
		if !model.SparseStateEqual(serial.M, parallel.M) {
			t.Fatalf("workers=%d: embedding tables differ from serial", workers)
		}
	}
}

// The baseline executor's batch-sharded kernels carry the same guarantee.
func TestBaselineStepBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) *model.Model {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		cfg := tinyCfg()
		tr := NewBaseline(model.New(cfg, 33), 0.1)
		gen := data.NewGenerator(cfg)
		for i := 0; i < 10; i++ {
			tr.Step(gen.NextBatch(128))
		}
		return tr.M
	}
	serial := run(1)
	parallel := run(8)
	if !model.DenseStateEqual(serial, parallel) || !model.SparseStateEqual(serial, parallel) {
		t.Fatal("baseline training is not bit-identical across worker counts")
	}
}

// Eq. 5 parity must survive the concurrent µ-batch execution: the Hotline
// executor still tracks the baseline within float-reordering tolerance.
func TestParityHoldsUnderParallelExecution(t *testing.T) {
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	rep := Parity(tinyCfg(), 9, RunConfig{BatchSize: 64, Iters: 20, EvalSize: 512})
	if rep.MaxStateDiff > 1e-3 {
		t.Fatalf("parallel executors diverged: max diff %g", rep.MaxStateDiff)
	}
}

// Distinct trainers over distinct models may train concurrently (the race
// harness for parallel Model.TrainStep).
func TestConcurrentTrainersRaceFree(t *testing.T) {
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	cfg := tinyCfg()
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var tr Trainer
			if k%2 == 0 {
				tr = NewBaseline(model.New(cfg, Seed(5, k)), 0.1)
			} else {
				tr = NewHotline(model.New(cfg, Seed(5, k)), 0.1)
			}
			gen := data.NewGenerator(cfg)
			for i := 0; i < 4; i++ {
				tr.Step(gen.NextBatch(64))
			}
		}(k)
	}
	wg.Wait()
}
