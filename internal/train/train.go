package train

import (
	"fmt"

	"hotline/internal/accel"
	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/metrics"
	"hotline/internal/model"
	"hotline/internal/nn"
	"hotline/internal/par"
	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// Trainer consumes mini-batches and updates a model.
type Trainer interface {
	Name() string
	// Step trains on one mini-batch and returns the mean BCE loss.
	Step(b *data.Batch) float64
	// Model exposes the trained model for evaluation.
	Model() *model.Model
}

// PipelinedTrainer is a Trainer that can look one mini-batch ahead: while
// the caller consumes iteration i's result, the executor has already
// classified mini-batch i+1 and issued its fabric prefetches. Run feeds
// pipelined trainers automatically.
type PipelinedTrainer interface {
	Trainer
	// StepPipelined trains on b and then stages next (classification +
	// cross-iteration gather prefetch); pass nil for the final batch.
	// Training state is bit-identical to calling Step(b) for every batch.
	StepPipelined(b, next *data.Batch) float64
}

// denseOptimizer is the dense update rule an executor caches across steps
// (nn.SGD and nn.Adagrad both satisfy it).
type denseOptimizer interface {
	Step()
}

// syncLR pushes the executor's (public, user-mutable) learning rate into
// the cached optimizer, so assigning t.LR mid-training keeps working like
// it did when the optimizer was rebuilt every step.
func syncLR(opt denseOptimizer, lr float32) {
	switch o := opt.(type) {
	case *nn.SGD:
		o.LR = lr
	case *nn.Adagrad:
		o.LR = lr
	}
}

// Baseline is the standard full-mini-batch executor (SGD by default; see
// EnableAdagrad).
type Baseline struct {
	M  *model.Model
	LR float32

	denseOpt denseOptimizer
	adagrad  []*embedding.AdagradState
	bceGrad  tensor.Matrix
}

// NewBaseline wraps a model in the standard executor.
func NewBaseline(m *model.Model, lr float32) *Baseline { return &Baseline{M: m, LR: lr} }

// NewBaselineAdagrad is NewBaseline with dense and sparse Adagrad.
func NewBaselineAdagrad(m *model.Model, lr float32) *Baseline {
	t := NewBaseline(m, lr)
	t.EnableAdagrad()
	return t
}

// EnableAdagrad switches the executor to dense + sparse Adagrad (the DLRM
// reference's production optimizer). Must be called before the first Step.
func (t *Baseline) EnableAdagrad() {
	t.denseOpt = nn.NewAdagrad(t.M.DenseParams(), t.LR)
	t.adagrad = newAdagradStates(t.M)
}

// newAdagradStates builds one globally-indexed accumulator per table.
func newAdagradStates(m *model.Model) []*embedding.AdagradState {
	states := make([]*embedding.AdagradState, len(m.Tables))
	for i, b := range m.Tables {
		states[i] = embedding.NewAdagradStateFor(b)
	}
	return states
}

// Name implements Trainer.
func (t *Baseline) Name() string {
	if t.adagrad != nil {
		return "baseline-adagrad"
	}
	return "baseline"
}

// Model implements Trainer.
func (t *Baseline) Model() *model.Model { return t.M }

// Step implements Trainer. The SGD path is exactly Model.TrainStep (one
// implementation of the standard step); only the Adagrad variant lives
// here.
func (t *Baseline) Step(b *data.Batch) float64 {
	m := t.M
	if t.adagrad == nil {
		return m.TrainStep(b, t.LR)
	}
	m.ZeroAll()
	logits := m.Forward(b)
	loss, grad := nn.BCEWithLogitsInto(&t.bceGrad, logits, b.Labels, nn.ReduceMean)
	m.Backward(grad, 1)
	syncLR(t.denseOpt, t.LR)
	t.denseOpt.Step()
	m.ApplySparseAdagrad(t.adagrad, t.LR)
	return loss
}

// stagedBatch is one pipelined lookahead: the next mini-batch, its copied
// classification, the materialised non-popular µ-batch and whether its
// fabric gathers are already in flight.
type stagedBatch struct {
	valid      bool
	prefetched bool
	batch      *data.Batch
	popIdx     []int
	nonIdx     []int
	nonSub     *data.Batch
}

// HotlineTrainer is the µ-batch executor: the accelerator classifies each
// mini-batch, the popular µ-batch "runs first" (GPU in the paper), the
// non-popular µ-batch follows, and one combined update is applied — at
// parity with the baseline's gradients.
//
// The executor is pipelined across iterations (StepPipelined): given the
// next mini-batch it runs the accelerator's learning + classification for
// it at the END of the current step — after the sparse update, exactly when
// the paper's accelerator classifies mini-batch i+1 while the GPUs train on
// i — and, on a sharded service with an async engine, issues the next
// non-popular µ-batch's fabric gathers so they stream through the dense
// optimizer step and the next iteration's popular pass. Training state is
// bit-identical to the unpipelined executor: the EAL sees batches in the
// same order, classification happens against the same EAL state, and the
// prefetch is planned at the same point of the cache-state sequence (right
// after the update, before the next popular pass).
//
// Step scratch (µ-batch buffers, classification copies, loss gradients) is
// reused across steps; the steady-state loop performs no allocations at
// Parallelism(1).
type HotlineTrainer struct {
	M   *model.Model
	LR  float32
	Acc *accel.Accelerator

	// LearnSamples is how many initial inputs feed the EAL before the
	// learning phase is considered warm (the paper samples ~5%% of the
	// first epoch; the scaled datasets need a couple thousand inputs).
	LearnSamples int
	seenSamples  int

	// shadow shares M's parameters with private gradient state so the
	// non-popular µ-batch can run concurrently with the popular one.
	shadow *model.Model

	// Shard is non-nil when the embeddings run on a sharded service (see
	// NewHotlineSharded); its snapshot exposes the measured cache and
	// all-to-all traffic of the run.
	Shard *shard.Service

	// OverlapGather, on a sharded service with an async engine, prefetches
	// the non-popular µ-batch's remote embedding rows so the fabric gather
	// streams while compute runs — within the iteration when stepping
	// batch-by-batch, across iterations under StepPipelined. Training state
	// is bit-identical with the flag on or off (TestOverlapDeterminism);
	// only the measured exposed-gather time changes. NewHotlineSharded
	// enables it.
	OverlapGather bool

	// stats
	PopularInputs, TotalInputs int64

	// optimizer state (cached across steps)
	denseOpt denseOptimizer
	adagrad  []*embedding.AdagradState

	// step scratch
	popIdx, nonIdx   []int // classification copy for unpipelined steps
	popSub           data.Batch
	nonSubs          [2]*data.Batch // alternating non-popular buffers
	nonFlip          int
	popGrad, nonGrad tensor.Matrix

	staged stagedBatch
}

// NewHotline wraps a model in the Hotline executor with a default
// accelerator configuration.
func NewHotline(m *model.Model, lr float32) *HotlineTrainer {
	cfg := accel.DefaultConfig()
	return &HotlineTrainer{M: m, LR: lr, Acc: accel.New(cfg), LearnSamples: 1536}
}

// NewHotlineAdagrad is NewHotline with dense and sparse Adagrad.
func NewHotlineAdagrad(m *model.Model, lr float32) *HotlineTrainer {
	t := NewHotline(m, lr)
	t.EnableAdagrad()
	return t
}

// EnableAdagrad switches the executor to dense + sparse Adagrad. The
// µ-batch gradients of each table are merged into one combined update per
// mini-batch (Adagrad is non-linear in the gradient — see
// Model.ApplySparseAdagrad). Must be called before the first Step.
func (t *HotlineTrainer) EnableAdagrad() {
	t.denseOpt = nn.NewAdagrad(t.M.DenseParams(), t.LR)
	t.adagrad = newAdagradStates(t.M)
}

// Name implements Trainer.
func (t *HotlineTrainer) Name() string {
	if t.adagrad != nil {
		return "hotline-adagrad"
	}
	return "hotline"
}

// Model implements Trainer.
func (t *HotlineTrainer) Model() *model.Model { return t.M }

// PopularFraction reports the classified popular-input fraction so far.
func (t *HotlineTrainer) PopularFraction() float64 {
	if t.TotalInputs == 0 {
		return 0
	}
	return float64(t.PopularInputs) / float64(t.TotalInputs)
}

// learn feeds one mini-batch through the accelerator's learning phase
// (initial warm-up, then periodic 5% re-sampling).
func (t *HotlineTrainer) learn(b *data.Batch) {
	if t.seenSamples < t.LearnSamples {
		t.Acc.LearnBatch(b)
		t.seenSamples += b.Size()
	} else {
		t.Acc.MaybeLearn(b)
	}
}

// Step implements Trainer: segregate, run both µ-batches, update once.
func (t *HotlineTrainer) Step(b *data.Batch) float64 { return t.StepPipelined(b, nil) }

// StepPipelined implements PipelinedTrainer: a full training step on b,
// then the lookahead for next (accelerator learning + classification +
// cross-iteration gather prefetch). See the type comment for the
// determinism argument.
func (t *HotlineTrainer) StepPipelined(b, next *data.Batch) float64 {
	var pop, non []int
	var nonSub *data.Batch
	prefetched := false
	if t.staged.valid && t.staged.batch == b {
		// The lookahead already learned, classified and (when sharded)
		// prefetched this batch at the end of the previous step.
		pop, non = t.staged.popIdx, t.staged.nonIdx
		nonSub = t.staged.nonSub
		prefetched = t.staged.prefetched
	} else {
		if t.staged.valid {
			// The lookahead speculated on a different batch: its windows
			// must never be consumed against weights that moved since.
			if t.staged.prefetched && t.shadow != nil {
				t.shadow.AbortPrefetchSparse()
			}
		}
		t.learn(b)
		cl := t.Acc.Classify(b)
		t.popIdx = append(t.popIdx[:0], cl.PopularIdx...)
		t.nonIdx = append(t.nonIdx[:0], cl.NonPopularIdx...)
		pop, non = t.popIdx, t.nonIdx
	}
	t.staged.valid = false
	t.PopularInputs += int64(len(pop))
	t.TotalInputs += int64(b.Size())

	n := b.Size()
	invN := float32(1) / float32(n)
	t.M.ZeroAll()
	var totalLoss float64
	if len(pop) == 0 || len(non) == 0 {
		// Degenerate split: a single µ-batch runs on the primary model.
		if len(pop) > 0 {
			totalLoss += t.passOn(t.M, b, pop, invN, &t.popGrad)
		}
		if len(non) > 0 {
			totalLoss += t.passOn(t.M, b, non, invN, &t.popGrad)
		}
	} else {
		// Popular µ-batch on the primary model (it is dispatched to the
		// GPUs immediately in the real system); non-popular on a
		// weight-sharing shadow. Both passes only read parameters, so they
		// run concurrently when workers allow, and the gradients reduce in
		// fixed order — popular, then non-popular — which keeps the result
		// bit-identical for every worker count and, per Eq. 5, equal to the
		// baseline's full-mini-batch update.
		if t.shadow == nil {
			t.shadow = model.NewShadow(t.M)
		}
		t.shadow.ZeroAll()
		if nonSub == nil {
			nonSub = t.nextNonSub(b, non)
		}
		if !prefetched && t.overlapReady() {
			// Issue the non-popular µ-batch's fabric gathers before the
			// popular µ-batch is dispatched: the async engine streams the
			// remote rows into staging while the popular pass computes, and
			// the shadow's Forward blocks only on whatever stayed exposed.
			// Planning before the popular pass also fixes the cache-state
			// order, so the service's counters are deterministic.
			t.shadow.PrefetchSparse(nonSub)
		}
		totalLoss = t.runSplit(b, pop, nonSub, invN)
	}
	if t.denseOpt == nil {
		t.denseOpt = nn.NewSGD(t.M.DenseParams(), t.LR)
	}
	syncLR(t.denseOpt, t.LR)
	t.denseOpt.Step()
	if t.adagrad != nil {
		t.M.ApplySparseAdagrad(t.adagrad, t.LR)
	} else {
		t.M.ApplySparse(t.LR)
	}
	if next != nil {
		t.stage(next)
	}
	return totalLoss / float64(n)
}

// runSplit runs the popular and non-popular µ-batch passes (concurrently
// when workers allow) and folds the shadow's gradients back in fixed order.
func (t *HotlineTrainer) runSplit(b *data.Batch, pop []int, nonSub *data.Batch, invN float32) float64 {
	var totalLoss float64
	if par.Workers() <= 1 {
		lossPop := t.passOn(t.M, b, pop, invN, &t.popGrad)
		lossNon := passInto(t.shadow, nonSub, invN, &t.nonGrad)
		totalLoss = lossPop + lossNon
	} else {
		var lossPop, lossNon float64
		par.Do(
			func() { lossPop = t.passOn(t.M, b, pop, invN, &t.popGrad) },
			func() { lossNon = passInto(t.shadow, nonSub, invN, &t.nonGrad) },
		)
		totalLoss = lossPop + lossNon
	}
	t.M.AbsorbShadow(t.shadow)
	return totalLoss
}

// overlapReady reports whether cross-µ-batch gather prefetching is active.
func (t *HotlineTrainer) overlapReady() bool {
	return t.OverlapGather && t.Shard != nil && t.Shard.Gatherer() != nil
}

// nextNonSub materialises the non-popular µ-batch into the next buffer of
// the alternating pair. Two buffers are needed by the pipeline: while
// iteration i consumes one, the lookahead subsets iteration i+1's µ-batch
// (whose index lists back the in-flight prefetch window) into the other.
func (t *HotlineTrainer) nextNonSub(b *data.Batch, non []int) *data.Batch {
	t.nonFlip ^= 1
	if t.nonSubs[t.nonFlip] == nil {
		t.nonSubs[t.nonFlip] = &data.Batch{}
	}
	return b.SubsetInto(t.nonSubs[t.nonFlip], non)
}

// stage runs the lookahead for the next mini-batch: accelerator learning
// and classification (the same EAL-state sequence as stepping it directly),
// then — when overlapping on a sharded service and the split is real — the
// non-popular µ-batch's fabric prefetch, planned right after this step's
// sparse update so the staged rows are exact copies of the weights the next
// forward will read.
func (t *HotlineTrainer) stage(next *data.Batch) {
	t.learn(next)
	cl := t.Acc.Classify(next)
	t.staged.batch = next
	t.staged.popIdx = append(t.staged.popIdx[:0], cl.PopularIdx...)
	t.staged.nonIdx = append(t.staged.nonIdx[:0], cl.NonPopularIdx...)
	t.staged.nonSub = nil
	t.staged.prefetched = false
	t.staged.valid = true
	if len(t.staged.popIdx) == 0 || len(t.staged.nonIdx) == 0 {
		return
	}
	t.staged.nonSub = t.nextNonSub(next, t.staged.nonIdx)
	if t.overlapReady() {
		if t.shadow == nil {
			t.shadow = model.NewShadow(t.M)
		}
		t.shadow.PrefetchSparse(t.staged.nonSub)
		t.staged.prefetched = true
	}
}

// passOn subsets idx out of b into the executor's popular-side buffer and
// runs one µ-batch pass on m.
func (t *HotlineTrainer) passOn(m *model.Model, b *data.Batch, idx []int, invN float32, grad *tensor.Matrix) float64 {
	return passInto(m, b.SubsetInto(&t.popSub, idx), invN, grad)
}

// passInto runs forward/backward for one already-extracted µ-batch on m.
// Sum-reduced gradients are scaled by 1/n (the full mini-batch size) so the
// accumulated update equals the baseline's mean-reduced mini-batch update
// (Eq. 5). grad is the executor-owned loss-gradient buffer for this pass.
func passInto(m *model.Model, sub *data.Batch, invN float32, grad *tensor.Matrix) float64 {
	logits := m.Forward(sub)
	loss, g := nn.BCEWithLogitsInto(grad, logits, sub.Labels, nn.ReduceSum)
	m.Backward(g, invN)
	return loss
}

// CurvePoint is one evaluation sample along a training run.
type CurvePoint struct {
	Iteration int
	Loss      float64
	Metrics   metrics.Summary
}

// RunConfig controls a training run.
type RunConfig struct {
	BatchSize int
	Iters     int
	EvalEvery int
	EvalSize  int
}

// Run trains for cfg.Iters mini-batches from gen, evaluating on a held-out
// batch every EvalEvery iterations, and returns the metric curve. Trainers
// implementing PipelinedTrainer are fed one batch ahead, so the executor's
// lookahead (classification + cross-iteration prefetch) overlaps the
// caller's evaluation and batch generation; the batch stream and the
// training math are identical either way.
func Run(t Trainer, gen *data.Generator, cfg RunConfig) []CurvePoint {
	if cfg.Iters <= 0 {
		// Nothing to train; in particular, do not consume a batch from the
		// caller's generator (the priming draw below would shift its stream).
		return nil
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 10
	}
	if cfg.EvalSize <= 0 {
		cfg.EvalSize = 1024
	}
	evalGen := data.NewGenerator(gen.Cfg)
	evalGen.SetDay(0)
	// Skip ahead so the eval batch is disjoint from early training batches.
	evalGen.NextBatch(cfg.EvalSize)
	evalBatch := evalGen.NextBatch(cfg.EvalSize)

	pt, pipelined := t.(PipelinedTrainer)
	var curve []CurvePoint
	var lastLoss float64
	b := gen.NextBatch(cfg.BatchSize)
	for i := 1; i <= cfg.Iters; i++ {
		var next *data.Batch
		if i < cfg.Iters {
			next = gen.NextBatch(cfg.BatchSize)
		}
		if pipelined {
			lastLoss = pt.StepPipelined(b, next)
		} else {
			lastLoss = t.Step(b)
		}
		if i%cfg.EvalEvery == 0 || i == cfg.Iters {
			probs := t.Model().Predict(evalBatch)
			curve = append(curve, CurvePoint{
				Iteration: i,
				Loss:      lastLoss,
				Metrics:   metrics.Evaluate(probs, evalBatch.Labels),
			})
		}
		b = next
	}
	return curve
}

// ParityReport compares two trainers on identical data streams and returns
// the maximum divergence of their model states plus final metrics for both.
type ParityReport struct {
	MaxStateDiff float64
	Baseline     metrics.Summary
	Hotline      metrics.Summary
	PopularFrac  float64
}

// Parity trains a baseline and a Hotline executor from identical initial
// states on identical batches and reports the divergence (Figure 18 /
// Table V's experiment).
func Parity(cfg data.Config, seed uint64, run RunConfig) ParityReport {
	base := NewBaseline(model.New(cfg, seed), 0.1)
	hot := NewHotline(model.New(cfg, seed), 0.1)
	return parityOf(base, hot, cfg, run)
}

// ParityAdagrad is Parity under dense + sparse Adagrad on both executors
// (the mn-adagrad scenario's accuracy check).
func ParityAdagrad(cfg data.Config, seed uint64, run RunConfig) ParityReport {
	base := NewBaselineAdagrad(model.New(cfg, seed), 0.1)
	hot := NewHotlineAdagrad(model.New(cfg, seed), 0.1)
	return parityOf(base, hot, cfg, run)
}

// parityOf drives two executors over identical streams and reports the
// state divergence and final metrics.
func parityOf(base *Baseline, hot *HotlineTrainer, cfg data.Config, run RunConfig) ParityReport {
	genA := data.NewGenerator(cfg)
	genB := data.NewGenerator(cfg)
	for i := 0; i < run.Iters; i++ {
		ba := genA.NextBatch(run.BatchSize)
		bb := genB.NextBatch(run.BatchSize)
		base.Step(ba)
		hot.Step(bb)
	}

	evalGen := data.NewGenerator(cfg)
	evalGen.NextBatch(run.EvalSize)
	evalBatch := evalGen.NextBatch(run.EvalSize)
	return ParityReport{
		MaxStateDiff: model.MaxStateDiff(base.M, hot.M),
		Baseline:     metrics.Evaluate(base.M.Predict(evalBatch), evalBatch.Labels),
		Hotline:      metrics.Evaluate(hot.M.Predict(evalBatch), evalBatch.Labels),
		PopularFrac:  hot.PopularFraction(),
	}
}

// String renders the parity report.
func (p ParityReport) String() string {
	return fmt.Sprintf("max state diff %.3g | baseline %v | hotline %v | popular %.1f%%",
		p.MaxStateDiff, p.Baseline, p.Hotline, p.PopularFrac*100)
}

// Seed helper used by tests/examples to derive per-run seeds.
func Seed(base uint64, k int) uint64 { return base ^ tensor.NewRNG(uint64(k)).Uint64() }
