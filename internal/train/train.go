package train

import (
	"fmt"
	"sync/atomic"

	"hotline/internal/accel"
	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/metrics"
	"hotline/internal/model"
	"hotline/internal/nn"
	"hotline/internal/par"
	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// Trainer consumes mini-batches and updates a model.
type Trainer interface {
	Name() string
	// Step trains on one mini-batch and returns the mean BCE loss.
	Step(b *data.Batch) float64
	// Model exposes the trained model for evaluation.
	Model() *model.Model
}

// PipelinedTrainer is a Trainer that can look one mini-batch ahead: while
// the caller consumes iteration i's result, the executor has already
// classified mini-batch i+1 and issued its fabric prefetches. Run feeds
// pipelined trainers automatically.
type PipelinedTrainer interface {
	Trainer
	// StepPipelined trains on b and then stages next (classification +
	// cross-iteration gather prefetch); pass nil for the final batch.
	// Training state is bit-identical to calling Step(b) for every batch.
	StepPipelined(b, next *data.Batch) float64
}

// LookaheadTrainer is a PipelinedTrainer whose pipeline is k windows deep:
// the executor stages up to Lookahead() = k-1 future mini-batches
// (classification + fabric prefetch) while the current iteration finishes.
// Run feeds lookahead trainers that many batches ahead. Training state is
// bit-identical to batch-by-batch stepping for every depth — staged rows
// that later sparse updates rewrite are delta-repaired before use.
type LookaheadTrainer interface {
	PipelinedTrainer
	// Lookahead returns how many batches ahead the executor stages
	// (pipeline depth minus one; 0 disables cross-iteration staging).
	Lookahead() int
	// StepLookahead trains on b; lookahead holds the following batches in
	// stream order (it may be shorter than Lookahead() near the end of the
	// stream, and extra entries beyond it are ignored).
	StepLookahead(b *data.Batch, lookahead []*data.Batch) float64
}

// defaultPipelineDepth is the pipeline depth executors start with; zero
// reads as the depth-2 default (the classic cross-iteration pipeline, one
// mini-batch of lookahead). Atomic like par's worker knob: workloads and
// sweep goroutines read it concurrently with callers moving it.
var defaultPipelineDepth atomic.Int32

// SetDefaultPipelineDepth sets the pipeline depth newly built Hotline
// executors use (k >= 1; depth 1 degenerates to synchronous staged
// gathers — the pipeline's only window belongs to the consuming forward,
// so nothing prefetches — and depth k stages k-1 mini-batches ahead) and
// returns the previous default. The public hotline.PipelineDepth knob
// wraps this.
func SetDefaultPipelineDepth(k int) int {
	if k < 1 {
		k = 2
	}
	if prev := defaultPipelineDepth.Swap(int32(k)); prev > 0 {
		return int(prev)
	}
	return 2
}

// DefaultPipelineDepth returns the current default pipeline depth.
func DefaultPipelineDepth() int {
	if d := defaultPipelineDepth.Load(); d > 0 {
		return int(d)
	}
	return 2
}

// denseOptimizer is the dense update rule an executor caches across steps
// (nn.SGD and nn.Adagrad both satisfy it).
type denseOptimizer interface {
	Step()
}

// syncLR pushes the executor's (public, user-mutable) learning rate into
// the cached optimizer, so assigning t.LR mid-training keeps working like
// it did when the optimizer was rebuilt every step.
func syncLR(opt denseOptimizer, lr float32) {
	switch o := opt.(type) {
	case *nn.SGD:
		o.LR = lr
	case *nn.Adagrad:
		o.LR = lr
	}
}

// Baseline is the standard full-mini-batch executor (SGD by default; see
// EnableAdagrad).
type Baseline struct {
	M  *model.Model
	LR float32

	denseOpt denseOptimizer
	adagrad  []*embedding.AdagradState
	bceGrad  tensor.Matrix
}

// NewBaseline wraps a model in the standard executor.
func NewBaseline(m *model.Model, lr float32) *Baseline { return &Baseline{M: m, LR: lr} }

// NewBaselineAdagrad is NewBaseline with dense and sparse Adagrad.
func NewBaselineAdagrad(m *model.Model, lr float32) *Baseline {
	t := NewBaseline(m, lr)
	t.EnableAdagrad()
	return t
}

// EnableAdagrad switches the executor to dense + sparse Adagrad (the DLRM
// reference's production optimizer). Must be called before the first Step.
func (t *Baseline) EnableAdagrad() {
	t.denseOpt = nn.NewAdagrad(t.M.DenseParams(), t.LR)
	t.adagrad = newAdagradStates(t.M)
}

// newAdagradStates builds one globally-indexed accumulator per table.
func newAdagradStates(m *model.Model) []*embedding.AdagradState {
	states := make([]*embedding.AdagradState, len(m.Tables))
	for i, b := range m.Tables {
		states[i] = embedding.NewAdagradStateFor(b)
	}
	return states
}

// Name implements Trainer.
func (t *Baseline) Name() string {
	if t.adagrad != nil {
		return "baseline-adagrad"
	}
	return "baseline"
}

// Model implements Trainer.
func (t *Baseline) Model() *model.Model { return t.M }

// Step implements Trainer. The SGD path is exactly Model.TrainStep (one
// implementation of the standard step); only the Adagrad variant lives
// here.
//
//hotline:hotpath
func (t *Baseline) Step(b *data.Batch) float64 {
	m := t.M
	if t.adagrad == nil {
		return m.TrainStep(b, t.LR)
	}
	m.ZeroAll()
	logits := m.Forward(b)
	loss, grad := nn.BCEWithLogitsInto(&t.bceGrad, logits, b.Labels, nn.ReduceMean)
	m.Backward(grad, 1)
	syncLR(t.denseOpt, t.LR)
	t.denseOpt.Step()
	m.ApplySparseAdagrad(t.adagrad, t.LR)
	return loss
}

// stagedBatch is one slot of the executor's lookahead ring: a future
// mini-batch with its copied classification, the materialised non-popular
// µ-batch and whether its fabric gathers are already in flight. Slots (and
// their buffers) are reused across steps.
type stagedBatch struct {
	batch      *data.Batch
	prefetched bool
	popIdx     []int
	nonIdx     []int
	sub        *data.Batch // materialised non-popular µ-batch (nil when degenerate)
	subBuf     *data.Batch // slot-owned subset buffer, lazily created
}

// HotlineTrainer is the µ-batch executor: the accelerator classifies each
// mini-batch, the popular µ-batch "runs first" (GPU in the paper), the
// non-popular µ-batch follows, and one combined update is applied — at
// parity with the baseline's gradients.
//
// The executor is pipelined across iterations with a configurable depth k
// (Depth, default 2): at the END of each step — after the sparse update,
// exactly when the paper's accelerator classifies ahead while the GPUs
// train — it runs the accelerator's learning + classification for up to
// k-1 future mini-batches and, on a sharded service with an async engine,
// issues their non-popular µ-batches' fabric gathers, so up to k gather
// windows stream concurrently with compute. Training state is bit-identical
// to the unpipelined executor for every depth: the EAL sees batches in the
// same order (each lookahead batch's learn/classify pair runs in stream
// order), and staged rows that a later sparse update rewrites are
// delta-repaired from their owner shard before the consuming forward
// (shard.WindowQueue) — unless the service opts into stale reads, which
// trades exactness for the repair traffic and is measured, not assumed.
//
// Step scratch (µ-batch buffers, classification copies, loss gradients,
// the lookahead ring) is reused across steps; the steady-state loop
// performs no allocations at Parallelism(1) for any depth.
type HotlineTrainer struct {
	M   *model.Model
	LR  float32
	Acc *accel.Accelerator

	// Depth is the pipeline depth k >= 1: how many gather windows may be
	// in flight at once — the one the current iteration consumes plus up
	// to k-1 staged for future mini-batches. Depth 1 therefore degenerates
	// to synchronous staged gathers (the single window is issued at
	// consume time, so nothing overlaps); depth 2 is the classic
	// cross-iteration pipeline. Changing it mid-training aborts any staged
	// lookahead (set it before training for clean measurements).
	Depth int

	// LearnSamples is how many initial inputs feed the EAL before the
	// learning phase is considered warm (the paper samples ~5%% of the
	// first epoch; the scaled datasets need a couple thousand inputs).
	LearnSamples int
	seenSamples  int

	// shadow shares M's parameters with private gradient state so the
	// non-popular µ-batch can run concurrently with the popular one.
	shadow *model.Model

	// Shard is non-nil when the embeddings run on a sharded service (see
	// NewHotlineSharded); its snapshot exposes the measured cache and
	// all-to-all traffic of the run.
	Shard *shard.Service

	// OverlapGather, on a sharded service with an async engine, prefetches
	// the non-popular µ-batch's remote embedding rows so the fabric gather
	// streams while compute runs — within the iteration when stepping
	// batch-by-batch, across iterations under StepPipelined/StepLookahead.
	// Training state is bit-identical with the flag on or off
	// (TestOverlapDeterminism); only the measured exposed-gather time
	// changes. NewHotlineSharded enables it.
	OverlapGather bool

	// stats
	PopularInputs, TotalInputs int64

	// optimizer state (cached across steps)
	denseOpt denseOptimizer
	adagrad  []*embedding.AdagradState

	// step scratch
	popSub           data.Batch
	popGrad, nonGrad tensor.Matrix

	// lookahead ring: ring[(head+j) % Depth] is the j-th staged batch;
	// staged counts occupied slots (at most Depth-1 — the remaining slot
	// serves the batch currently training).
	ring   []stagedBatch
	head   int
	staged int
	look1  [1]*data.Batch // StepPipelined's lookahead scratch
}

// NewHotline wraps a model in the Hotline executor with a default
// accelerator configuration and the package default pipeline depth.
func NewHotline(m *model.Model, lr float32) *HotlineTrainer {
	cfg := accel.DefaultConfig()
	return &HotlineTrainer{
		M: m, LR: lr, Acc: accel.New(cfg), LearnSamples: 1536,
		Depth: DefaultPipelineDepth(),
	}
}

// NewHotlineAdagrad is NewHotline with dense and sparse Adagrad.
func NewHotlineAdagrad(m *model.Model, lr float32) *HotlineTrainer {
	t := NewHotline(m, lr)
	t.EnableAdagrad()
	return t
}

// EnableAdagrad switches the executor to dense + sparse Adagrad. The
// µ-batch gradients of each table are merged into one combined update per
// mini-batch (Adagrad is non-linear in the gradient — see
// Model.ApplySparseAdagrad). Must be called before the first Step.
func (t *HotlineTrainer) EnableAdagrad() {
	t.denseOpt = nn.NewAdagrad(t.M.DenseParams(), t.LR)
	t.adagrad = newAdagradStates(t.M)
}

// Name implements Trainer.
func (t *HotlineTrainer) Name() string {
	if t.adagrad != nil {
		return "hotline-adagrad"
	}
	return "hotline"
}

// Model implements Trainer.
func (t *HotlineTrainer) Model() *model.Model { return t.M }

// PopularFraction reports the classified popular-input fraction so far.
func (t *HotlineTrainer) PopularFraction() float64 {
	if t.TotalInputs == 0 {
		return 0
	}
	return float64(t.PopularInputs) / float64(t.TotalInputs)
}

// learn feeds one mini-batch through the accelerator's learning phase
// (initial warm-up, then periodic 5% re-sampling).
//
//hotline:hotpath
func (t *HotlineTrainer) learn(b *data.Batch) {
	if t.seenSamples < t.LearnSamples {
		t.Acc.LearnBatch(b)
		t.seenSamples += b.Size()
	} else {
		t.Acc.MaybeLearn(b)
	}
}

// Step implements Trainer: segregate, run both µ-batches, update once.
//
//hotline:hotpath
func (t *HotlineTrainer) Step(b *data.Batch) float64 { return t.StepLookahead(b, nil) }

// StepPipelined implements PipelinedTrainer: StepLookahead with a
// one-batch lookahead (the classic two-deep pipeline when Depth >= 2).
//
//hotline:hotpath
func (t *HotlineTrainer) StepPipelined(b, next *data.Batch) float64 {
	if next == nil {
		return t.StepLookahead(b, nil)
	}
	t.look1[0] = next
	return t.StepLookahead(b, t.look1[:])
}

// Lookahead implements LookaheadTrainer: the executor stages Depth-1
// batches ahead.
func (t *HotlineTrainer) Lookahead() int { return t.depth() - 1 }

// depth normalises the public Depth knob.
//
//hotline:hotpath
func (t *HotlineTrainer) depth() int {
	if t.Depth < 1 {
		return 1
	}
	return t.Depth
}

// StepLookahead implements LookaheadTrainer: a full training step on b,
// then the lookahead — accelerator learning + classification + fabric
// prefetch for every not-yet-staged batch of `lookahead`, up to Depth-1
// ahead. See the type comment for the determinism argument.
//
//hotline:hotpath
func (t *HotlineTrainer) StepLookahead(b *data.Batch, lookahead []*data.Batch) float64 {
	if len(t.ring) != t.depth() {
		// First step, or the Depth knob moved: restart the pipeline.
		t.abortStaged()
		t.ring = make([]stagedBatch, t.depth()) //hotline:allow hotalloc pipeline restart is cold; the ring is reused until Depth changes
		t.head = 0
	}

	var pop, non []int
	var nonSub *data.Batch
	prefetched := false
	var slot *stagedBatch
	if t.staged > 0 && t.ring[t.head].batch == b {
		// The lookahead already learned, classified and (when sharded)
		// prefetched this batch at the end of an earlier step.
		slot = &t.ring[t.head]
		t.head = (t.head + 1) % len(t.ring)
		t.staged--
		pop, non = slot.popIdx, slot.nonIdx
		nonSub = slot.sub
		prefetched = slot.prefetched
		slot.batch = nil
		slot.sub = nil
		slot.prefetched = false
	} else {
		// Speculation miss (or cold start): staged windows must never be
		// consumed against weights that moved since, so the whole
		// lookahead is aborted before b is classified fresh.
		t.abortStaged()
		t.learn(b)
		cl := t.Acc.Classify(b)
		slot = &t.ring[t.head]                                     // every slot is free after the abort
		slot.popIdx = append(slot.popIdx[:0], cl.PopularIdx...)    //hotline:allow hotalloc classification copy into slot scratch; converges to the batch size
		slot.nonIdx = append(slot.nonIdx[:0], cl.NonPopularIdx...) //hotline:allow hotalloc classification copy into slot scratch; converges to the batch size
		pop, non = slot.popIdx, slot.nonIdx
	}
	t.PopularInputs += int64(len(pop))
	t.TotalInputs += int64(b.Size())

	n := b.Size()
	invN := float32(1) / float32(n)
	t.M.ZeroAll()
	var totalLoss float64
	if len(pop) == 0 || len(non) == 0 {
		// Degenerate split: a single µ-batch runs on the primary model.
		if len(pop) > 0 {
			totalLoss += t.passOn(t.M, b, pop, invN, &t.popGrad)
		}
		if len(non) > 0 {
			totalLoss += t.passOn(t.M, b, non, invN, &t.popGrad)
		}
	} else {
		// Popular µ-batch on the primary model (it is dispatched to the
		// GPUs immediately in the real system); non-popular on a
		// weight-sharing shadow. Both passes only read parameters, so they
		// run concurrently when workers allow, and the gradients reduce in
		// fixed order — popular, then non-popular — which keeps the result
		// bit-identical for every worker count and, per Eq. 5, equal to the
		// baseline's full-mini-batch update.
		if t.shadow == nil {
			t.shadow = model.NewShadow(t.M)
		}
		t.shadow.ZeroAll()
		if nonSub == nil {
			nonSub = b.SubsetInto(t.subBufFor(slot), non)
		}
		if !prefetched && t.overlapReady() && t.depth() > 1 {
			// Issue the non-popular µ-batch's fabric gathers before the
			// popular µ-batch is dispatched: the async engine streams the
			// remote rows into staging while the popular pass computes, and
			// the shadow's Forward blocks only on whatever stayed exposed.
			// Planning before the popular pass also fixes the cache-state
			// order, so the service's counters are deterministic. At depth
			// 1 the pipeline's only window belongs to the consuming
			// forward, so the gather stays synchronous by construction.
			t.shadow.PrefetchSparse(nonSub)
		}
		totalLoss = t.runSplit(b, pop, nonSub, invN)
	}
	if t.denseOpt == nil {
		t.denseOpt = nn.NewSGD(t.M.DenseParams(), t.LR)
	}
	syncLR(t.denseOpt, t.LR)
	t.denseOpt.Step()
	// The sparse update marks rows staged by open lookahead windows dirty
	// (shard.WindowQueue.MarkDirty) so their consuming forwards repair them.
	if t.adagrad != nil {
		t.M.ApplySparseAdagrad(t.adagrad, t.LR)
	} else {
		t.M.ApplySparse(t.LR)
	}
	t.stageLookahead(lookahead)
	return totalLoss / float64(n)
}

// abortStaged discards the whole staged lookahead: every open prefetch
// window is joined and dropped (its accounting already happened — wasted
// speculation), and the ring slots are freed. The committed accelerator
// learning is NOT undone, matching the real system: the EAL saw those
// inputs whether or not the speculation paid off.
//
//hotline:hotpath
func (t *HotlineTrainer) abortStaged() {
	if t.staged == 0 {
		return
	}
	aborted := false
	for j := 0; j < t.staged; j++ {
		s := &t.ring[(t.head+j)%len(t.ring)]
		if s.prefetched {
			aborted = true
		}
		s.batch = nil
		s.sub = nil
		s.prefetched = false
	}
	t.staged = 0
	if aborted {
		t.M.AbortPrefetchSparse()
	}
}

// stageLookahead stages future batches (in stream order) until the
// pipeline is Depth-1 deep, skipping the prefix that is already staged. A
// caller whose lookahead diverges from what was staged gets no new staging
// — the mismatch is resolved (aborted) when its head batch trains.
//
//hotline:hotpath
func (t *HotlineTrainer) stageLookahead(lookahead []*data.Batch) {
	limit := len(t.ring) - 1
	for j, nb := range lookahead {
		if nb == nil || j >= limit {
			return
		}
		if j < t.staged {
			if t.ring[(t.head+j)%len(t.ring)].batch != nb {
				return
			}
			continue
		}
		t.stage(nb)
	}
}

// stage runs the lookahead for one future mini-batch: accelerator learning
// and classification (the same EAL-state sequence as stepping it directly
// — lookahead batches are staged in stream order, each learn/classify pair
// adjacent), then — when overlapping on a sharded service and the split is
// real — the non-popular µ-batch's fabric prefetch. The window is planned
// after the current step's sparse update; rows a LATER update rewrites
// while the window waits are delta-repaired at consume time, so the staged
// values always equal what a synchronous gather would read.
//
//hotline:hotpath
func (t *HotlineTrainer) stage(nb *data.Batch) {
	slot := &t.ring[(t.head+t.staged)%len(t.ring)]
	t.learn(nb)
	cl := t.Acc.Classify(nb)
	slot.batch = nb
	slot.popIdx = append(slot.popIdx[:0], cl.PopularIdx...)    //hotline:allow hotalloc classification copy into slot scratch; converges to the batch size
	slot.nonIdx = append(slot.nonIdx[:0], cl.NonPopularIdx...) //hotline:allow hotalloc classification copy into slot scratch; converges to the batch size
	slot.sub = nil
	slot.prefetched = false
	t.staged++
	if len(slot.popIdx) == 0 || len(slot.nonIdx) == 0 {
		return
	}
	slot.sub = nb.SubsetInto(t.subBufFor(slot), slot.nonIdx)
	if t.overlapReady() {
		if t.shadow == nil {
			t.shadow = model.NewShadow(t.M)
		}
		t.shadow.PrefetchSparse(slot.sub)
		slot.prefetched = true
	}
}

// subBufFor returns a slot's lazily-created non-popular subset buffer. Each
// ring slot owns one buffer: a slot's previous subset is consumed (passes
// complete) before the slot is restaged, so the Depth buffers cover the
// whole pipeline without copies.
//
//hotline:hotpath
func (t *HotlineTrainer) subBufFor(slot *stagedBatch) *data.Batch {
	if slot.subBuf == nil {
		slot.subBuf = &data.Batch{} //hotline:allow hotalloc lazy one-time per-slot subset buffer
	}
	return slot.subBuf
}

// runSplit runs the popular and non-popular µ-batch passes (concurrently
// when workers allow) and folds the shadow's gradients back in fixed order.
//
//hotline:hotpath
func (t *HotlineTrainer) runSplit(b *data.Batch, pop []int, nonSub *data.Batch, invN float32) float64 {
	var totalLoss float64
	if par.Workers() <= 1 {
		lossPop := t.passOn(t.M, b, pop, invN, &t.popGrad)
		lossNon := passInto(t.shadow, nonSub, invN, &t.nonGrad)
		totalLoss = lossPop + lossNon
	} else {
		var lossPop, lossNon float64
		par.Do(
			func() { lossPop = t.passOn(t.M, b, pop, invN, &t.popGrad) },
			func() { lossNon = passInto(t.shadow, nonSub, invN, &t.nonGrad) },
		)
		totalLoss = lossPop + lossNon
	}
	t.M.AbsorbShadow(t.shadow)
	return totalLoss
}

// overlapReady reports whether cross-µ-batch gather prefetching is active.
//
//hotline:hotpath
func (t *HotlineTrainer) overlapReady() bool {
	return t.OverlapGather && t.Shard != nil && t.Shard.Gatherer() != nil
}

// passOn subsets idx out of b into the executor's popular-side buffer and
// runs one µ-batch pass on m.
//
//hotline:hotpath
func (t *HotlineTrainer) passOn(m *model.Model, b *data.Batch, idx []int, invN float32, grad *tensor.Matrix) float64 {
	return passInto(m, b.SubsetInto(&t.popSub, idx), invN, grad)
}

// passInto runs forward/backward for one already-extracted µ-batch on m.
// Sum-reduced gradients are scaled by 1/n (the full mini-batch size) so the
// accumulated update equals the baseline's mean-reduced mini-batch update
// (Eq. 5). grad is the executor-owned loss-gradient buffer for this pass.
//
//hotline:hotpath
func passInto(m *model.Model, sub *data.Batch, invN float32, grad *tensor.Matrix) float64 {
	logits := m.Forward(sub)
	loss, g := nn.BCEWithLogitsInto(grad, logits, sub.Labels, nn.ReduceSum)
	m.Backward(g, invN)
	return loss
}

// CurvePoint is one evaluation sample along a training run.
type CurvePoint struct {
	Iteration int
	Loss      float64
	Metrics   metrics.Summary
}

// RunConfig controls a training run.
type RunConfig struct {
	BatchSize int
	Iters     int
	EvalEvery int
	EvalSize  int
}

// Run trains for cfg.Iters mini-batches from gen, evaluating on a held-out
// batch every EvalEvery iterations, and returns the metric curve. Trainers
// implementing PipelinedTrainer are fed one batch ahead — and
// LookaheadTrainers as many batches ahead as their pipeline depth stages —
// so the executor's lookahead (classification + cross-iteration prefetch)
// overlaps the caller's evaluation and batch generation; the batch stream
// and the training math are identical for every depth.
func Run(t Trainer, gen *data.Generator, cfg RunConfig) []CurvePoint {
	if cfg.Iters <= 0 {
		// Nothing to train; in particular, do not consume a batch from the
		// caller's generator (the priming draw below would shift its stream).
		return nil
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 10
	}
	if cfg.EvalSize <= 0 {
		cfg.EvalSize = 1024
	}
	evalGen := data.NewGenerator(gen.Cfg)
	evalGen.SetDay(0)
	// Skip ahead so the eval batch is disjoint from early training batches.
	evalGen.NextBatch(cfg.EvalSize)
	evalBatch := evalGen.NextBatch(cfg.EvalSize)

	pt, pipelined := t.(PipelinedTrainer)
	ahead := 0
	var lt LookaheadTrainer
	if pipelined {
		ahead = 1
		if x, ok := t.(LookaheadTrainer); ok {
			lt = x
			ahead = x.Lookahead()
		}
	}
	fill := ahead
	if fill < 1 {
		fill = 1 // even unpipelined stepping advances through `future`
	}
	var curve []CurvePoint
	var lastLoss float64
	b := gen.NextBatch(cfg.BatchSize)
	drawn := 1
	// future holds the already-drawn upcoming batches, oldest first; the
	// stream order is exactly the unpipelined one, only drawn earlier.
	var future []*data.Batch
	for i := 1; i <= cfg.Iters; i++ {
		for drawn < cfg.Iters && len(future) < fill {
			future = append(future, gen.NextBatch(cfg.BatchSize))
			drawn++
		}
		switch {
		case lt != nil && ahead != 1:
			lastLoss = lt.StepLookahead(b, future)
		case pipelined:
			var next *data.Batch
			if len(future) > 0 {
				next = future[0]
			}
			lastLoss = pt.StepPipelined(b, next)
		default:
			lastLoss = t.Step(b)
		}
		if i%cfg.EvalEvery == 0 || i == cfg.Iters {
			probs := t.Model().Predict(evalBatch)
			curve = append(curve, CurvePoint{
				Iteration: i,
				Loss:      lastLoss,
				Metrics:   metrics.Evaluate(probs, evalBatch.Labels),
			})
		}
		if len(future) > 0 {
			b = future[0]
			copy(future, future[1:])
			future = future[:len(future)-1]
		} else {
			b = nil
		}
	}
	return curve
}

// ParityReport compares two trainers on identical data streams and returns
// the maximum divergence of their model states plus final metrics for both.
type ParityReport struct {
	MaxStateDiff float64
	Baseline     metrics.Summary
	Hotline      metrics.Summary
	PopularFrac  float64
}

// Parity trains a baseline and a Hotline executor from identical initial
// states on identical batches and reports the divergence (Figure 18 /
// Table V's experiment).
func Parity(cfg data.Config, seed uint64, run RunConfig) ParityReport {
	base := NewBaseline(model.New(cfg, seed), 0.1)
	hot := NewHotline(model.New(cfg, seed), 0.1)
	return parityOf(base, hot, cfg, run)
}

// ParityAdagrad is Parity under dense + sparse Adagrad on both executors
// (the mn-adagrad scenario's accuracy check).
func ParityAdagrad(cfg data.Config, seed uint64, run RunConfig) ParityReport {
	base := NewBaselineAdagrad(model.New(cfg, seed), 0.1)
	hot := NewHotlineAdagrad(model.New(cfg, seed), 0.1)
	return parityOf(base, hot, cfg, run)
}

// parityOf drives two executors over identical streams and reports the
// state divergence and final metrics.
func parityOf(base *Baseline, hot *HotlineTrainer, cfg data.Config, run RunConfig) ParityReport {
	genA := data.NewGenerator(cfg)
	genB := data.NewGenerator(cfg)
	for i := 0; i < run.Iters; i++ {
		ba := genA.NextBatch(run.BatchSize)
		bb := genB.NextBatch(run.BatchSize)
		base.Step(ba)
		hot.Step(bb)
	}

	evalGen := data.NewGenerator(cfg)
	evalGen.NextBatch(run.EvalSize)
	evalBatch := evalGen.NextBatch(run.EvalSize)
	return ParityReport{
		MaxStateDiff: model.MaxStateDiff(base.M, hot.M),
		Baseline:     metrics.Evaluate(base.M.Predict(evalBatch), evalBatch.Labels),
		Hotline:      metrics.Evaluate(hot.M.Predict(evalBatch), evalBatch.Labels),
		PopularFrac:  hot.PopularFraction(),
	}
}

// String renders the parity report.
func (p ParityReport) String() string {
	return fmt.Sprintf("max state diff %.3g | baseline %v | hotline %v | popular %.1f%%",
		p.MaxStateDiff, p.Baseline, p.Hotline, p.PopularFrac*100)
}

// Seed helper used by tests/examples to derive per-run seeds.
func Seed(base uint64, k int) uint64 { return base ^ tensor.NewRNG(uint64(k)).Uint64() }
