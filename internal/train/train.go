package train

import (
	"fmt"

	"hotline/internal/accel"
	"hotline/internal/data"
	"hotline/internal/metrics"
	"hotline/internal/model"
	"hotline/internal/nn"
	"hotline/internal/par"
	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// Trainer consumes mini-batches and updates a model.
type Trainer interface {
	Name() string
	// Step trains on one mini-batch and returns the mean BCE loss.
	Step(b *data.Batch) float64
	// Model exposes the trained model for evaluation.
	Model() *model.Model
}

// Baseline is the standard full-mini-batch SGD executor.
type Baseline struct {
	M  *model.Model
	LR float32
}

// NewBaseline wraps a model in the standard executor.
func NewBaseline(m *model.Model, lr float32) *Baseline { return &Baseline{M: m, LR: lr} }

// Name implements Trainer.
func (t *Baseline) Name() string { return "baseline" }

// Model implements Trainer.
func (t *Baseline) Model() *model.Model { return t.M }

// Step implements Trainer.
func (t *Baseline) Step(b *data.Batch) float64 { return t.M.TrainStep(b, t.LR) }

// HotlineTrainer is the µ-batch executor: the accelerator classifies each
// mini-batch, the popular µ-batch "runs first" (GPU in the paper), the
// non-popular µ-batch follows, and one combined update is applied — at
// parity with the baseline's gradients.
type HotlineTrainer struct {
	M   *model.Model
	LR  float32
	Acc *accel.Accelerator

	// LearnSamples is how many initial inputs feed the EAL before the
	// learning phase is considered warm (the paper samples ~5%% of the
	// first epoch; the scaled datasets need a couple thousand inputs).
	LearnSamples int
	seenSamples  int

	// shadow shares M's parameters with private gradient state so the
	// non-popular µ-batch can run concurrently with the popular one.
	shadow *model.Model

	// Shard is non-nil when the embeddings run on a sharded service (see
	// NewHotlineSharded); its snapshot exposes the measured cache and
	// all-to-all traffic of the run.
	Shard *shard.Service

	// OverlapGather, on a sharded service with an async engine, prefetches
	// the non-popular µ-batch's remote embedding rows so the fabric gather
	// streams while the popular µ-batch computes — the paper's pipeline,
	// executed in the functional layer. Training state is bit-identical
	// with the flag on or off (TestOverlapDeterminism); only the measured
	// exposed-gather time changes. NewHotlineSharded enables it.
	OverlapGather bool

	// stats
	PopularInputs, TotalInputs int64
}

// NewHotline wraps a model in the Hotline executor with a default
// accelerator configuration.
func NewHotline(m *model.Model, lr float32) *HotlineTrainer {
	cfg := accel.DefaultConfig()
	return &HotlineTrainer{M: m, LR: lr, Acc: accel.New(cfg), LearnSamples: 1536}
}

// Name implements Trainer.
func (t *HotlineTrainer) Name() string { return "hotline" }

// Model implements Trainer.
func (t *HotlineTrainer) Model() *model.Model { return t.M }

// PopularFraction reports the classified popular-input fraction so far.
func (t *HotlineTrainer) PopularFraction() float64 {
	if t.TotalInputs == 0 {
		return 0
	}
	return float64(t.PopularInputs) / float64(t.TotalInputs)
}

// Step implements Trainer: segregate, run both µ-batches, update once.
func (t *HotlineTrainer) Step(b *data.Batch) float64 {
	// Learning phase: the first ~LearnSamples inputs train the EAL; after
	// that the accelerator keeps re-sampling 5% of batches to track drift.
	if t.seenSamples < t.LearnSamples {
		t.Acc.LearnBatch(b)
		t.seenSamples += b.Size()
	} else {
		t.Acc.MaybeLearn(b)
	}

	cl := t.Acc.Classify(b)
	t.PopularInputs += int64(len(cl.PopularIdx))
	t.TotalInputs += int64(b.Size())

	n := b.Size()
	invN := float32(1) / float32(n)
	t.M.ZeroAll()
	var totalLoss float64
	pop, non := cl.PopularIdx, cl.NonPopularIdx
	if len(pop) == 0 || len(non) == 0 {
		// Degenerate split: a single µ-batch runs on the primary model.
		for _, idx := range [][]int{pop, non} {
			if len(idx) == 0 {
				continue
			}
			totalLoss += microBatchPass(t.M, b, idx, invN)
		}
	} else {
		// Popular µ-batch on the primary model (it is dispatched to the
		// GPUs immediately in the real system); non-popular on a
		// weight-sharing shadow. Both passes only read parameters, so they
		// run concurrently when workers allow, and the gradients reduce in
		// fixed order — popular, then non-popular — which keeps the result
		// bit-identical for every worker count and, per Eq. 5, equal to the
		// baseline's full-mini-batch update.
		if t.shadow == nil {
			t.shadow = model.NewShadow(t.M)
		}
		t.shadow.ZeroAll()
		var lossPop, lossNon float64
		nonSub := b.Subset(non)
		if t.OverlapGather && t.Shard != nil && t.Shard.Gatherer() != nil {
			// Issue the non-popular µ-batch's fabric gathers before the
			// popular µ-batch is dispatched: the async engine streams the
			// remote rows into staging while the popular pass computes, and
			// the shadow's Forward blocks only on whatever stayed exposed.
			// Planning before the popular pass also fixes the cache-state
			// order, so the service's counters are deterministic.
			t.shadow.PrefetchSparse(nonSub)
		}
		par.Do(
			func() { lossPop = microBatchPass(t.M, b, pop, invN) },
			func() { lossNon = subBatchPass(t.shadow, nonSub, invN) },
		)
		t.M.AbsorbShadow(t.shadow)
		totalLoss = lossPop + lossNon
	}
	opt := nn.NewSGD(t.M.DenseParams(), t.LR)
	opt.Step()
	t.M.ApplySparse(t.LR)
	return totalLoss / float64(n)
}

// microBatchPass runs forward/backward for one µ-batch on m. Sum-reduced
// gradients are scaled by 1/n (the full mini-batch size) so the accumulated
// update equals the baseline's mean-reduced mini-batch update (Eq. 5).
func microBatchPass(m *model.Model, b *data.Batch, idx []int, invN float32) float64 {
	return subBatchPass(m, b.Subset(idx), invN)
}

// subBatchPass is microBatchPass against an already-extracted subset (the
// executor subsets the non-popular µ-batch up front so its sparse index
// sets can be prefetched before the pass runs).
func subBatchPass(m *model.Model, sub *data.Batch, invN float32) float64 {
	logits := m.Forward(sub)
	loss, grad := nn.BCEWithLogits(logits, sub.Labels, nn.ReduceSum)
	m.Backward(grad, invN)
	return loss
}

// CurvePoint is one evaluation sample along a training run.
type CurvePoint struct {
	Iteration int
	Loss      float64
	Metrics   metrics.Summary
}

// RunConfig controls a training run.
type RunConfig struct {
	BatchSize int
	Iters     int
	EvalEvery int
	EvalSize  int
}

// Run trains for cfg.Iters mini-batches from gen, evaluating on a held-out
// batch every EvalEvery iterations, and returns the metric curve.
func Run(t Trainer, gen *data.Generator, cfg RunConfig) []CurvePoint {
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 10
	}
	if cfg.EvalSize <= 0 {
		cfg.EvalSize = 1024
	}
	evalGen := data.NewGenerator(gen.Cfg)
	evalGen.SetDay(0)
	// Skip ahead so the eval batch is disjoint from early training batches.
	evalGen.NextBatch(cfg.EvalSize)
	evalBatch := evalGen.NextBatch(cfg.EvalSize)

	var curve []CurvePoint
	var lastLoss float64
	for i := 1; i <= cfg.Iters; i++ {
		lastLoss = t.Step(gen.NextBatch(cfg.BatchSize))
		if i%cfg.EvalEvery == 0 || i == cfg.Iters {
			probs := t.Model().Predict(evalBatch)
			curve = append(curve, CurvePoint{
				Iteration: i,
				Loss:      lastLoss,
				Metrics:   metrics.Evaluate(probs, evalBatch.Labels),
			})
		}
	}
	return curve
}

// ParityReport compares two trainers on identical data streams and returns
// the maximum divergence of their model states plus final metrics for both.
type ParityReport struct {
	MaxStateDiff float64
	Baseline     metrics.Summary
	Hotline      metrics.Summary
	PopularFrac  float64
}

// Parity trains a baseline and a Hotline executor from identical initial
// states on identical batches and reports the divergence (Figure 18 /
// Table V's experiment).
func Parity(cfg data.Config, seed uint64, run RunConfig) ParityReport {
	base := NewBaseline(model.New(cfg, seed), 0.1)
	hot := NewHotline(model.New(cfg, seed), 0.1)

	genA := data.NewGenerator(cfg)
	genB := data.NewGenerator(cfg)
	for i := 0; i < run.Iters; i++ {
		ba := genA.NextBatch(run.BatchSize)
		bb := genB.NextBatch(run.BatchSize)
		base.Step(ba)
		hot.Step(bb)
	}

	evalGen := data.NewGenerator(cfg)
	evalGen.NextBatch(run.EvalSize)
	evalBatch := evalGen.NextBatch(run.EvalSize)
	return ParityReport{
		MaxStateDiff: model.MaxStateDiff(base.M, hot.M),
		Baseline:     metrics.Evaluate(base.M.Predict(evalBatch), evalBatch.Labels),
		Hotline:      metrics.Evaluate(hot.M.Predict(evalBatch), evalBatch.Labels),
		PopularFrac:  hot.PopularFraction(),
	}
}

// String renders the parity report.
func (p ParityReport) String() string {
	return fmt.Sprintf("max state diff %.3g | baseline %v | hotline %v | popular %.1f%%",
		p.MaxStateDiff, p.Baseline, p.Hotline, p.PopularFrac*100)
}

// Seed helper used by tests/examples to derive per-run seeds.
func Seed(base uint64, k int) uint64 { return base ^ tensor.NewRNG(uint64(k)).Uint64() }
