package train

import (
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/par"
	"hotline/internal/shard"
)

func shardedCfg() data.Config {
	cfg := data.CriteoKaggle()
	cfg.Samples = 512
	return cfg
}

// TestShardedHotlineParity is the executor-level determinism contract: the
// Hotline trainer on sharded tables produces bit-identical model state to
// the unsharded trainer for every node count, while the service records
// real traffic.
func TestShardedHotlineParity(t *testing.T) {
	cfg := shardedCfg()
	const seed, iters, batch = 42, 4, 64

	ref := NewHotline(model.New(cfg, seed), 0.1)
	refGen := data.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		ref.Step(refGen.NextBatch(batch))
	}

	for _, nodes := range []int{1, 2, 4, 8} {
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		}, nil)
		hot := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
		gen := data.NewGenerator(cfg)
		for i := 0; i < iters; i++ {
			hot.Step(gen.NextBatch(batch))
		}

		if !model.DenseStateEqual(ref.M, hot.M) {
			t.Fatalf("nodes=%d: dense state diverged", nodes)
		}
		if !model.SparseStateEqual(ref.M, hot.M) {
			t.Fatalf("nodes=%d: sparse state diverged", nodes)
		}

		st := svc.Snapshot()
		if st.Lookups == 0 {
			t.Fatalf("nodes=%d: service recorded no lookups", nodes)
		}
		if nodes == 1 && st.A2ABytes() != 0 {
			t.Fatalf("single node must move no bytes: %+v", st)
		}
		if nodes > 1 && (st.GatherBytes == 0 || st.ScatterBytes == 0) {
			t.Fatalf("nodes=%d: expected all-to-all traffic: %+v", nodes, st)
		}
	}
}

// TestShardedHotlineParallelDeterminism re-runs the sharded executor under
// different worker counts: the model state must stay bit-identical (the
// PR 1 determinism contract extended to sharded tables).
func TestShardedHotlineParallelDeterminism(t *testing.T) {
	cfg := shardedCfg()
	run := func(workers int) *model.Model {
		old := par.SetWorkers(workers)
		defer par.SetWorkers(old)
		svc := shard.New(shard.Config{
			Nodes: 4, CacheBytes: 32 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		}, nil)
		tr := NewHotlineSharded(model.New(cfg, 7), 0.1, svc)
		gen := data.NewGenerator(cfg)
		for i := 0; i < 3; i++ {
			tr.Step(gen.NextBatch(48))
		}
		return tr.M
	}
	a, b := run(1), run(4)
	if !model.DenseStateEqual(a, b) || !model.SparseStateEqual(a, b) {
		t.Fatal("sharded training must be bit-identical across worker counts")
	}
}

// TestShardedAdagradTrainerParity is the mn-adagrad scenario's contract at
// the executor level: end-to-end Hotline training under dense + sparse
// Adagrad on sharded tables is bit-identical to the unsharded Adagrad
// executor for every node count (the accumulators are globally indexed and
// the merged per-mini-batch update is applied in fixed table order).
func TestShardedAdagradTrainerParity(t *testing.T) {
	cfg := shardedCfg()
	const seed, iters, batch = 77, 4, 64

	ref := NewHotlineAdagrad(model.New(cfg, seed), 0.1)
	refGen := data.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		ref.Step(refGen.NextBatch(batch))
	}

	for _, nodes := range []int{1, 2, 4} {
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		}, nil)
		hot := NewHotlineShardedAdagrad(model.New(cfg, seed), 0.1, svc)
		gen := data.NewGenerator(cfg)
		b := gen.NextBatch(batch)
		for i := 1; i <= iters; i++ {
			var next *data.Batch
			if i < iters {
				next = gen.NextBatch(batch)
			}
			hot.StepPipelined(b, next) // the pipeline must hold for Adagrad too
			b = next
		}
		if !model.DenseStateEqual(ref.M, hot.M) || !model.SparseStateEqual(ref.M, hot.M) {
			t.Fatalf("nodes=%d: sharded Adagrad training diverged from unsharded executor", nodes)
		}
	}
}
