package train

import (
	"fmt"
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/par"
	"hotline/internal/shard"
)

// allocCfg is the benchmark model shape: real Criteo Kaggle sparse stream
// over small MLPs, so the test exercises every executor path quickly.
func allocCfg() data.Config {
	cfg := data.CriteoKaggle()
	cfg.BotMLP = []int{13, 64, 16}
	cfg.TopMLP = []int{64, 1}
	return cfg
}

// TestHotlineStepZeroAllocSteadyState is the tentpole's contract: after
// warm-up, one Hotline training step — classification, both µ-batch
// passes, gradient reduction, dense SGD and the sparse update — performs
// ZERO allocations at Parallelism(1). (Parallel runs pay goroutine fan-out;
// that is the forking cost, not the step's.)
func TestHotlineStepZeroAllocSteadyState(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	cfg := allocCfg()
	tr := NewHotline(model.New(cfg, 1), 0.1)
	gen := data.NewGenerator(cfg)
	b := gen.NextBatch(64)
	// Warm past the learning phase, buffer growth AND the backward-arena
	// slot cap (256): the shadow model's arenas are rewound by ZeroAll, not
	// by the sparse update, so a long run must stay slot-bounded too.
	for i := 0; i < 300; i++ {
		tr.Step(b)
	}
	if n := testing.AllocsPerRun(30, func() { tr.Step(b) }); n > 0 {
		t.Fatalf("Hotline Step allocated %.1f times per step, want 0", n)
	}
}

// TestHotlineStepPipelinedZeroAllocSteadyState repeats the contract for the
// cross-iteration pipelined entry point (lookahead classification staged
// every step).
func TestHotlineStepPipelinedZeroAllocSteadyState(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	cfg := allocCfg()
	tr := NewHotline(model.New(cfg, 1), 0.1)
	gen := data.NewGenerator(cfg)
	b := gen.NextBatch(64)
	next := gen.NextBatch(64)
	for i := 0; i < 30; i++ {
		tr.StepPipelined(b, next)
		b, next = next, b
	}
	if n := testing.AllocsPerRun(30, func() {
		tr.StepPipelined(b, next)
		b, next = next, b
	}); n > 0 {
		t.Fatalf("pipelined Step allocated %.1f times per step, want 0", n)
	}
}

// TestShardedPipelinedZeroAllocDepths is the depth-k gate: with the
// persistent per-queue drainer goroutines and the prefetch/window rings in
// place, the SHARDED pipelined step — classification, both µ-batch passes,
// async gather windows, dirty-row marking and delta repair, dense + sparse
// update — performs ZERO steady-state allocations at Parallelism(1) for
// every pipeline depth k in {2, 4, 8}.
func TestShardedPipelinedZeroAllocDepths(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	cfg := allocCfg()
	for _, k := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			svc := shard.New(shard.Config{
				Nodes: 4, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
			}, nil)
			tr := NewHotlineSharded(model.New(cfg, 1), 0.1, svc)
			tr.Depth = k
			gen := data.NewGenerator(cfg)
			const window = 16
			batches := make([]*data.Batch, window)
			for i := range batches {
				batches[i] = gen.NextBatch(64)
			}
			look := make([]*data.Batch, k-1)
			i := 0
			step := func() {
				for j := range look {
					look[j] = batches[(i+1+j)%window]
				}
				tr.StepLookahead(batches[i%window], look)
				i++
			}
			// Warm past the learning phase, ring growth, arena slot caps
			// and the dirty-list high-water marks.
			for n := 0; n < 300; n++ {
				step()
			}
			if n := testing.AllocsPerRun(30, step); n > 0 {
				t.Fatalf("depth-%d sharded pipelined step allocated %.1f times per step, want 0", k, n)
			}
		})
	}
}

// TestQuantizedPipelinedZeroAllocDepths extends the depth-k zero-alloc gate
// to the precision-tiered caches: with warm rows stored narrow and every
// warm-tier access served through the fused dequantize-gather kernel (plus
// its delta-repair path at consume time), the sharded pipelined step must
// still perform ZERO steady-state allocations at Parallelism(1) for every
// depth k in {1, 2, 4, 8} — the fused kernel writes straight into the pooled
// staging slots, never through a fresh buffer.
func TestQuantizedPipelinedZeroAllocDepths(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	cfg := allocCfg()
	for _, q := range []shard.QuantMode{shard.QuantINT8, shard.QuantMixed} {
		for _, k := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/k=%d", q, k), func(t *testing.T) {
				if testing.Short() && q == shard.QuantINT8 {
					t.Skip("the mixed sweep covers the fused kernel and both tiers; run without -short for the uniform mode")
				}
				svc := shard.New(shard.Config{
					Nodes: 4, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
					Quant: q,
				}, modHot{})
				tr := NewHotlineSharded(model.New(cfg, 1), 0.1, svc)
				tr.Depth = k
				gen := data.NewGenerator(cfg)
				const window = 16
				batches := make([]*data.Batch, window)
				for i := range batches {
					batches[i] = gen.NextBatch(64)
				}
				look := make([]*data.Batch, k-1)
				i := 0
				step := func() {
					for j := range look {
						look[j] = batches[(i+1+j)%window]
					}
					tr.StepLookahead(batches[i%window], look)
					i++
				}
				for n := 0; n < 300; n++ {
					step()
				}
				if st := svc.Snapshot(); st.DequantRows == 0 {
					t.Fatal("warm-up never ran the fused dequantize-gather; the gate is vacuous")
				}
				if n := testing.AllocsPerRun(30, step); n > 0 {
					t.Fatalf("%s depth-%d quantized pipelined step allocated %.1f times per step, want 0", q, k, n)
				}
			})
		}
	}
}

// TestBaselineStepZeroAllocSteadyState: the baseline executor's step is
// also allocation-free (forward, loss, backward, SGD, sparse update).
func TestBaselineStepZeroAllocSteadyState(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	cfg := allocCfg()
	tr := NewBaseline(model.New(cfg, 1), 0.1)
	gen := data.NewGenerator(cfg)
	b := gen.NextBatch(64)
	for i := 0; i < 5; i++ {
		tr.Step(b)
	}
	if n := testing.AllocsPerRun(30, func() { tr.Step(b) }); n > 0 {
		t.Fatalf("baseline Step allocated %.1f times per step, want 0", n)
	}
}

// TestAdagradStepSteadyStateAllocs: the Adagrad executors reuse the merge
// workspace; the merged-update path stays allocation-free too.
func TestAdagradStepSteadyStateAllocs(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	cfg := allocCfg()
	tr := NewHotlineAdagrad(model.New(cfg, 1), 0.1)
	gen := data.NewGenerator(cfg)
	b := gen.NextBatch(64)
	for i := 0; i < 30; i++ {
		tr.Step(b)
	}
	if n := testing.AllocsPerRun(30, func() { tr.Step(b) }); n > 0 {
		t.Fatalf("Adagrad Step allocated %.1f times per step, want 0", n)
	}
}
