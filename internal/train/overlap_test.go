package train

import (
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
)

// buildPartitioner realises one of the placements the determinism contract
// covers: nil (round-robin default) or a hot-aware layout counted over the
// test's own access stream.
func buildPartitioner(t *testing.T, cfg data.Config, nodes, iters, batch int, hotAware bool) shard.Partitioner {
	t.Helper()
	if !hotAware {
		return nil
	}
	rc := shard.NewRequestCounter(nodes)
	gen := data.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		b := gen.NextBatch(batch)
		for tbl := range b.Sparse {
			rc.Observe(tbl, b.Sparse[tbl])
		}
	}
	return rc.HotAware(nil)
}

// TestOverlapDeterminism is the async-overlap determinism contract: training
// with the non-popular gather prefetched and overlapped with the popular
// µ-batch is byte-identical to fully synchronous sharded training, for
// every node count and for both the round-robin and hot-aware placements.
// The -race harness runs this too, so the staging hand-off is also proven
// race-free.
func TestOverlapDeterminism(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 1024
	// The contract under test lives entirely in the embedding/shard layer;
	// tiny MLPs keep the 16-run matrix fast under -race without touching
	// the sparse access stream the EAL classifies.
	cfg.BotMLP = []int{13, 32, 16}
	cfg.TopMLP = []int{32, 1}
	// 4 batches feed the EAL's learning phase (LearnSamples below), the
	// rest classify with real popular/non-popular splits — the overlap path
	// only runs on split batches.
	const seed, iters, batch = 42, 8, 128

	for _, hotAware := range []bool{false, true} {
		for _, nodes := range []int{1, 2, 4, 8} {
			run := func(overlap bool) (*model.Model, shard.OverlapStats) {
				svc := shard.New(shard.Config{
					Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
					Part: buildPartitioner(t, cfg, nodes, iters, batch, hotAware),
				}, nil)
				tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
				tr.OverlapGather = overlap
				tr.LearnSamples = 512 // the EAL's minimum useful warm-up
				gen := data.NewGenerator(cfg)
				for i := 0; i < iters; i++ {
					tr.Step(gen.NextBatch(batch))
				}
				return tr.M, svc.Gatherer().Stats()
			}
			sync, syncStats := run(false)
			over, overStats := run(true)
			if !model.DenseStateEqual(sync, over) {
				t.Fatalf("nodes=%d hotAware=%v: dense state diverged", nodes, hotAware)
			}
			if !model.SparseStateEqual(sync, over) {
				t.Fatalf("nodes=%d hotAware=%v: sparse state diverged", nodes, hotAware)
			}
			if nodes > 1 {
				if overStats.Windows == 0 {
					t.Fatalf("nodes=%d hotAware=%v: overlap run issued no prefetch windows", nodes, hotAware)
				}
				if syncStats.Windows != 0 {
					t.Fatalf("nodes=%d hotAware=%v: sync run must not prefetch: %+v", nodes, hotAware, syncStats)
				}
				if syncStats.SyncGather <= 0 {
					t.Fatalf("nodes=%d hotAware=%v: sync run measured no gather time", nodes, hotAware)
				}
			}
		}
	}
}

// TestPipelinedOverlapDeterminism extends the determinism contract to the
// depth-k cross-iteration pipeline: training with StepLookahead — the next
// k-1 mini-batches classified and their non-popular fabric gathers issued
// while iteration i finishes, staged rows dirty-repaired after intervening
// sparse updates — is byte-identical to fully synchronous batch-by-batch
// sharded training, for every depth k in {1,2,4,8} x nodes {1,2,4,8} x
// both the round-robin and hot-aware placements. The -race harness runs
// this too, so the window-ring hand-off and the persistent drainers are
// also proven race-free.
func TestPipelinedOverlapDeterminism(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 1024
	cfg.BotMLP = []int{13, 32, 16}
	cfg.TopMLP = []int{32, 1}
	const seed, iters, batch = 42, 8, 128

	for _, hotAware := range []bool{false, true} {
		for _, nodes := range []int{1, 2, 4, 8} {
			newTrainer := func(overlap bool) (*HotlineTrainer, *shard.Service) {
				svc := shard.New(shard.Config{
					Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
					Part: buildPartitioner(t, cfg, nodes, iters, batch, hotAware),
				}, nil)
				tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
				tr.OverlapGather = overlap
				tr.LearnSamples = 512
				return tr, svc
			}
			batches := func() []*data.Batch {
				gen := data.NewGenerator(cfg)
				bs := make([]*data.Batch, iters)
				for i := range bs {
					bs[i] = gen.NextBatch(batch)
				}
				return bs
			}()

			// Synchronous batch-by-batch reference.
			ref, _ := newTrainer(false)
			for i := 0; i < iters; i++ {
				ref.Step(batches[i])
			}

			for _, k := range []int{1, 2, 4, 8} {
				tr, svc := newTrainer(true)
				tr.Depth = k
				for i := 0; i < iters; i++ {
					end := i + k
					if end > iters {
						end = iters
					}
					tr.StepLookahead(batches[i], batches[i+1:end])
				}
				st := svc.Gatherer().Stats()
				if !model.DenseStateEqual(ref.M, tr.M) {
					t.Fatalf("k=%d nodes=%d hotAware=%v: pipelined dense state diverged", k, nodes, hotAware)
				}
				if !model.SparseStateEqual(ref.M, tr.M) {
					t.Fatalf("k=%d nodes=%d hotAware=%v: pipelined sparse state diverged", k, nodes, hotAware)
				}
				if nodes > 1 && k > 1 && st.Windows == 0 {
					t.Fatalf("k=%d nodes=%d hotAware=%v: pipelined run issued no prefetch windows", k, nodes, hotAware)
				}
				if k == 1 && st.Windows != 0 {
					t.Fatalf("k=%d nodes=%d hotAware=%v: depth-1 pipeline must gather synchronously, issued %d windows",
						k, nodes, hotAware, st.Windows)
				}
				if st.StaleRows != 0 {
					t.Fatalf("k=%d nodes=%d hotAware=%v: repair mode consumed %d stale rows", k, nodes, hotAware, st.StaleRows)
				}
			}
		}
	}
}

// TestDeepPipelineRepairAndStaleness pins down the queue-depth-vs-staleness
// tradeoff the depth-k pipeline exists to expose: at depth 8 the lookahead
// windows outlive several sparse updates, so (a) the repair-mode run ships
// dirty-row repairs (and stays bit-identical — covered by
// TestPipelinedOverlapDeterminism), and (b) the opt-in stale mode consumes
// stale rows and measurably diverges from exact training.
func TestDeepPipelineRepairAndStaleness(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 1024
	cfg.BotMLP = []int{13, 32, 16}
	cfg.TopMLP = []int{32, 1}
	const seed, iters, batch, k = 42, 10, 128, 8

	run := func(stale bool) (*model.Model, shard.OverlapStats) {
		svc := shard.New(shard.Config{
			Nodes: 4, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		}, nil)
		svc.SetStaleReads(stale)
		tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
		tr.Depth = k
		tr.LearnSamples = 512
		gen := data.NewGenerator(cfg)
		batches := make([]*data.Batch, iters)
		for i := range batches {
			batches[i] = gen.NextBatch(batch)
		}
		for i := 0; i < iters; i++ {
			end := i + k
			if end > iters {
				end = iters
			}
			tr.StepLookahead(batches[i], batches[i+1:end])
		}
		return tr.M, svc.Gatherer().Stats()
	}

	repairM, repairStats := run(false)
	staleM, staleStats := run(true)
	if repairStats.RepairRows == 0 || repairStats.RepairBytes == 0 {
		t.Fatalf("depth-%d pipeline must repair dirtied rows: %+v", k, repairStats)
	}
	if repairStats.StaleRows != 0 {
		t.Fatalf("repair mode consumed stale rows: %+v", repairStats)
	}
	if staleStats.StaleRows == 0 {
		t.Fatalf("stale mode must count its stale consumptions: %+v", staleStats)
	}
	if staleStats.RepairRows != 0 {
		t.Fatalf("stale mode must not repair: %+v", staleStats)
	}
	if model.DenseStateEqual(repairM, staleM) && model.SparseStateEqual(repairM, staleM) {
		t.Fatal("stale reads at depth 8 must diverge from exact training (that cost is what the mode measures)")
	}
}

// TestPipelinedSpeculationMiss drives StepPipelined with a lookahead batch
// that is NOT the one trained next: the stale prefetch windows must be
// joined and discarded (never consumed against moved weights), and training
// must keep matching a non-speculating executor fed the same EAL stream.
func TestPipelinedSpeculationMiss(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 1024
	cfg.BotMLP = []int{13, 32, 16}
	cfg.TopMLP = []int{32, 1}
	const seed, iters, batch = 42, 6, 128

	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
	tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
	tr.LearnSamples = 512
	gen := data.NewGenerator(cfg)
	decoyGen := data.NewGenerator(cfg)
	decoyGen.SetDay(1)
	var batches []*data.Batch
	for i := 0; i < iters; i++ {
		batches = append(batches, gen.NextBatch(batch))
	}

	// Reference: the same batches AND the same EAL learning stream,
	// including the decoy lookaheads (a lookahead commits its accelerator
	// learning even when the speculation misses).
	refSvc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
	ref := NewHotlineSharded(model.New(cfg, seed), 0.1, refSvc)
	ref.LearnSamples = 512
	refDecoy := data.NewGenerator(cfg)
	refDecoy.SetDay(1)

	for i := 0; i < iters; i++ {
		// Speculate on a decoy batch that will never be trained.
		tr.StepPipelined(batches[i], decoyGen.NextBatch(batch))

		ref.Step(batches[i])
		ref.learn(refDecoy.NextBatch(batch)) // mirror the decoy's EAL feed
	}
	if !model.DenseStateEqual(tr.M, ref.M) || !model.SparseStateEqual(tr.M, ref.M) {
		t.Fatal("speculation misses must not change training state")
	}
}

// TestOverlapMatchesUnshardedExecutor closes the loop to the original
// executor parity: overlapped sharded training equals the plain unsharded
// Hotline trainer bit for bit.
func TestOverlapMatchesUnshardedExecutor(t *testing.T) {
	cfg := shardedCfg()
	const seed, iters, batch = 7, 3, 48

	ref := NewHotline(model.New(cfg, seed), 0.1)
	refGen := data.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		ref.Step(refGen.NextBatch(batch))
	}

	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 32 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
	tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
	gen := data.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		tr.Step(gen.NextBatch(batch))
	}
	if !model.DenseStateEqual(ref.M, tr.M) || !model.SparseStateEqual(ref.M, tr.M) {
		t.Fatal("overlapped sharded training must match the unsharded executor")
	}
}
