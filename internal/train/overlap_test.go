package train

import (
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
)

// buildPartitioner realises one of the placements the determinism contract
// covers: nil (round-robin default) or a hot-aware layout counted over the
// test's own access stream.
func buildPartitioner(t *testing.T, cfg data.Config, nodes, iters, batch int, hotAware bool) shard.Partitioner {
	t.Helper()
	if !hotAware {
		return nil
	}
	rc := shard.NewRequestCounter(nodes)
	gen := data.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		b := gen.NextBatch(batch)
		for tbl := range b.Sparse {
			rc.Observe(tbl, b.Sparse[tbl])
		}
	}
	return rc.HotAware(nil)
}

// TestOverlapDeterminism is the async-overlap determinism contract: training
// with the non-popular gather prefetched and overlapped with the popular
// µ-batch is byte-identical to fully synchronous sharded training, for
// every node count and for both the round-robin and hot-aware placements.
// The -race harness runs this too, so the staging hand-off is also proven
// race-free.
func TestOverlapDeterminism(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 1024
	// The contract under test lives entirely in the embedding/shard layer;
	// tiny MLPs keep the 16-run matrix fast under -race without touching
	// the sparse access stream the EAL classifies.
	cfg.BotMLP = []int{13, 32, 16}
	cfg.TopMLP = []int{32, 1}
	// 4 batches feed the EAL's learning phase (LearnSamples below), the
	// rest classify with real popular/non-popular splits — the overlap path
	// only runs on split batches.
	const seed, iters, batch = 42, 8, 128

	for _, hotAware := range []bool{false, true} {
		for _, nodes := range []int{1, 2, 4, 8} {
			run := func(overlap bool) (*model.Model, shard.OverlapStats) {
				svc := shard.New(shard.Config{
					Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
					Part: buildPartitioner(t, cfg, nodes, iters, batch, hotAware),
				}, nil)
				tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
				tr.OverlapGather = overlap
				tr.LearnSamples = 512 // the EAL's minimum useful warm-up
				gen := data.NewGenerator(cfg)
				for i := 0; i < iters; i++ {
					tr.Step(gen.NextBatch(batch))
				}
				return tr.M, svc.Gatherer().Stats()
			}
			sync, syncStats := run(false)
			over, overStats := run(true)
			if !model.DenseStateEqual(sync, over) {
				t.Fatalf("nodes=%d hotAware=%v: dense state diverged", nodes, hotAware)
			}
			if !model.SparseStateEqual(sync, over) {
				t.Fatalf("nodes=%d hotAware=%v: sparse state diverged", nodes, hotAware)
			}
			if nodes > 1 {
				if overStats.Windows == 0 {
					t.Fatalf("nodes=%d hotAware=%v: overlap run issued no prefetch windows", nodes, hotAware)
				}
				if syncStats.Windows != 0 {
					t.Fatalf("nodes=%d hotAware=%v: sync run must not prefetch: %+v", nodes, hotAware, syncStats)
				}
				if syncStats.SyncGather <= 0 {
					t.Fatalf("nodes=%d hotAware=%v: sync run measured no gather time", nodes, hotAware)
				}
			}
		}
	}
}

// TestPipelinedOverlapDeterminism extends the determinism contract to the
// cross-iteration pipeline: training with StepPipelined — mini-batch i+1
// classified and its non-popular fabric gathers issued while iteration i
// finishes — is byte-identical to fully synchronous batch-by-batch sharded
// training, for nodes {1,2,4,8} and both the round-robin and hot-aware
// placements. The -race harness runs this too, so the two-deep window ring
// hand-off is also proven race-free.
func TestPipelinedOverlapDeterminism(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 1024
	cfg.BotMLP = []int{13, 32, 16}
	cfg.TopMLP = []int{32, 1}
	const seed, iters, batch = 42, 8, 128

	for _, hotAware := range []bool{false, true} {
		for _, nodes := range []int{1, 2, 4, 8} {
			run := func(pipelined bool) (*model.Model, shard.OverlapStats) {
				svc := shard.New(shard.Config{
					Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
					Part: buildPartitioner(t, cfg, nodes, iters, batch, hotAware),
				}, nil)
				tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
				tr.OverlapGather = pipelined
				tr.LearnSamples = 512
				gen := data.NewGenerator(cfg)
				if !pipelined {
					for i := 0; i < iters; i++ {
						tr.Step(gen.NextBatch(batch))
					}
				} else {
					b := gen.NextBatch(batch)
					for i := 1; i <= iters; i++ {
						var next *data.Batch
						if i < iters {
							next = gen.NextBatch(batch)
						}
						tr.StepPipelined(b, next)
						b = next
					}
				}
				return tr.M, svc.Gatherer().Stats()
			}
			sync, _ := run(false)
			pipe, pipeStats := run(true)
			if !model.DenseStateEqual(sync, pipe) {
				t.Fatalf("nodes=%d hotAware=%v: pipelined dense state diverged", nodes, hotAware)
			}
			if !model.SparseStateEqual(sync, pipe) {
				t.Fatalf("nodes=%d hotAware=%v: pipelined sparse state diverged", nodes, hotAware)
			}
			if nodes > 1 && pipeStats.Windows == 0 {
				t.Fatalf("nodes=%d hotAware=%v: pipelined run issued no prefetch windows", nodes, hotAware)
			}
		}
	}
}

// TestPipelinedSpeculationMiss drives StepPipelined with a lookahead batch
// that is NOT the one trained next: the stale prefetch windows must be
// joined and discarded (never consumed against moved weights), and training
// must keep matching a non-speculating executor fed the same EAL stream.
func TestPipelinedSpeculationMiss(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 1024
	cfg.BotMLP = []int{13, 32, 16}
	cfg.TopMLP = []int{32, 1}
	const seed, iters, batch = 42, 6, 128

	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
	tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
	tr.LearnSamples = 512
	gen := data.NewGenerator(cfg)
	decoyGen := data.NewGenerator(cfg)
	decoyGen.SetDay(1)
	var batches []*data.Batch
	for i := 0; i < iters; i++ {
		batches = append(batches, gen.NextBatch(batch))
	}

	// Reference: the same batches AND the same EAL learning stream,
	// including the decoy lookaheads (a lookahead commits its accelerator
	// learning even when the speculation misses).
	refSvc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
	ref := NewHotlineSharded(model.New(cfg, seed), 0.1, refSvc)
	ref.LearnSamples = 512
	refDecoy := data.NewGenerator(cfg)
	refDecoy.SetDay(1)

	for i := 0; i < iters; i++ {
		// Speculate on a decoy batch that will never be trained.
		tr.StepPipelined(batches[i], decoyGen.NextBatch(batch))

		ref.Step(batches[i])
		ref.learn(refDecoy.NextBatch(batch)) // mirror the decoy's EAL feed
	}
	if !model.DenseStateEqual(tr.M, ref.M) || !model.SparseStateEqual(tr.M, ref.M) {
		t.Fatal("speculation misses must not change training state")
	}
}

// TestOverlapMatchesUnshardedExecutor closes the loop to the original
// executor parity: overlapped sharded training equals the plain unsharded
// Hotline trainer bit for bit.
func TestOverlapMatchesUnshardedExecutor(t *testing.T) {
	cfg := shardedCfg()
	const seed, iters, batch = 7, 3, 48

	ref := NewHotline(model.New(cfg, seed), 0.1)
	refGen := data.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		ref.Step(refGen.NextBatch(batch))
	}

	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 32 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
	tr := NewHotlineSharded(model.New(cfg, seed), 0.1, svc)
	gen := data.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		tr.Step(gen.NextBatch(batch))
	}
	if !model.DenseStateEqual(ref.M, tr.M) || !model.SparseStateEqual(ref.M, tr.M) {
		t.Fatal("overlapped sharded training must match the unsharded executor")
	}
}
