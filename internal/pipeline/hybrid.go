package pipeline

import (
	"hotline/internal/cost"
	"hotline/internal/sim"
)

// Hybrid models hybrid CPU-GPU training (paper Figure 1a): embeddings live
// in CPU DRAM and are gathered/updated there, pooled embedding activations
// cross PCIe to the GPUs, which run the neural network data-parallel and
// all-reduce dense gradients.
//
// Two baselines share this structure: the Intel-optimized DLRM and XDL's
// parameter-server design, which pays extra pull/push communication and
// framework overhead on the same dataflow.
type Hybrid struct {
	name string
	// cpuFactor scales CPU embedding operator time (XDL's TF-based ops are
	// slower than Intel's AVX-optimized EmbeddingBag).
	cpuFactor float64
	// commFactor scales CPU-GPU transfer volume (parameter-server pull and
	// push round trips).
	commFactor float64
	// frameworkFrac adds a fractional overhead on the whole iteration.
	frameworkFrac float64
}

// NewIntelDLRM returns the Intel-optimized DLRM baseline [Kalamkar et al.].
func NewIntelDLRM() *Hybrid {
	return &Hybrid{name: "Intel-Opt DLRM", cpuFactor: 1, commFactor: 1, frameworkFrac: 0}
}

// NewXDL returns the XDL parameter-server baseline [Jiang et al.]: slower
// CPU embedding ops, pull+push transfers, and TensorFlow dispatch overhead.
func NewXDL() *Hybrid {
	return &Hybrid{name: "XDL", cpuFactor: 1.4, commFactor: 2.0, frameworkFrac: 0.18}
}

// Name implements Pipeline.
func (h *Hybrid) Name() string { return h.name }

// Iteration times one steady-state mini-batch.
func (h *Hybrid) Iteration(w Workload) IterStats {
	sys := w.Sys
	ph := Breakdown{}

	// 1. CPU gathers and pools every embedding row for the batch.
	embFwd := scaleDur(cost.CPUEmbLookupTime(sys.CPU, w.TotalLookups(), w.RowBytes()), h.cpuFactor)
	ph[PhaseEmbFwd] = embFwd

	// 2. Pooled activations cross PCIe to the GPUs (scatter).
	commFwd := scaleDur(sys.PCIe.Transfer(w.PooledEmbBytes(w.Batch)), h.commFactor)

	// 3. Data-parallel dense forward/backward on each GPU.
	fwd, bwd := w.gpuDenseTime(w.PerGPUBatch())
	ph[PhaseMLPFwd] = fwd
	ph[PhaseBwd] = bwd

	// 4. Dense gradient all-reduce.
	ph[PhaseAllReduce] = cost.HierarchicalAllReduceTime(sys, w.DenseParamBytes())

	// 5. Embedding gradients return to the CPU over PCIe (gather).
	commBwd := scaleDur(sys.PCIe.Transfer(w.PooledEmbBytes(w.Batch)), h.commFactor)
	ph[PhaseComm] = commFwd + commBwd

	// 6. CPU applies sparse updates (lock-free SGD); GPU applies dense.
	touched := dedupRows(w.TotalLookups())
	opt := scaleDur(cost.CPUEmbUpdateTime(sys.CPU, touched, w.RowBytes()), h.cpuFactor)
	opt += cost.GPUMLPTime(sys.GPU, w.DenseParamBytes()/2, 2) // dense SGD
	ph[PhaseOpt] = opt

	// 7. Host loop overhead; parameter-server frameworks pay extra.
	overhead := cost.PerIterHostOverhead
	if h.frameworkFrac > 0 {
		overhead += scaleDur(ph.Total()+overhead, h.frameworkFrac)
	}
	ph[PhaseOverhead] = overhead

	return IterStats{Total: ph.Total(), Phases: ph}
}

// scaleDur multiplies a duration by a float factor.
func scaleDur(d sim.Duration, f float64) sim.Duration {
	return sim.Duration(float64(d) * f)
}

// dedupRows estimates distinct touched rows from total lookups: Zipfian
// traffic revisits hot rows within a batch, so roughly 80% are distinct.
func dedupRows(lookups int64) int64 { return lookups * 4 / 5 }
