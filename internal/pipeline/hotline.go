package pipeline

import (
	"hotline/internal/accel"
	"hotline/internal/cost"
	"hotline/internal/sim"
)

// Hotline models the paper's system (Figure 12): the accelerator segregates
// each mini-batch into a popular µ-batch (dispatched straight to the GPUs,
// all embeddings in HBM) and a non-popular µ-batch whose CPU-resident
// working parameters the accelerator gathers over DMA while the popular
// µ-batch executes. Embedding lookups and updates all happen in HBM; cold
// rows are updated in CPU DRAM by DMA writes off the critical path.
type Hotline struct {
	Accel accel.Config
	// DedupFrac models intra-batch reuse of cold rows (gathered once).
	DedupFrac float64
	// NoOverlap serialises the gather after the popular µ-batch instead of
	// pipelining them — the scheduling ablation (what Hotline's pipeline
	// buys over a ScratchPipe-style serial gather).
	NoOverlap bool
}

// NewHotline returns the accelerator-pipelined Hotline system.
func NewHotline() *Hotline {
	return &Hotline{Accel: accel.DefaultConfig(), DedupFrac: 0.8}
}

// NewHotlineNoOverlap returns the ablation variant that does not hide the
// non-popular gather under popular execution.
func NewHotlineNoOverlap() *Hotline {
	h := NewHotline()
	h.NoOverlap = true
	return h
}

// Name implements Pipeline.
func (h *Hotline) Name() string {
	if h.NoOverlap {
		return "Hotline (no overlap)"
	}
	return "Hotline"
}

// Iteration times one steady-state mini-batch with the accelerator overlap.
func (h *Hotline) Iteration(w Workload) IterStats {
	sys := w.Sys
	nGPU := sys.TotalGPUs()
	ph := Breakdown{}

	seg := accel.NewSegregationModel(h.Accel.Engines, h.Accel.EAL)

	// Segregation of the *next* mini-batch runs on the accelerator during
	// the current iteration; at microsecond scale it is fully hidden, so
	// only the learning-phase sampling (5% of batches re-profiled) shows
	// up, amortised, as overhead.
	segTime := seg.SegregationTime(w.TotalLookups())
	learnAmortised := scaleDur(segTime, h.Accel.SampleRate)

	// --- popular µ-batch on GPUs, gather on accelerator, in parallel ---
	gpu := sim.NewResource("gpu")
	acc := sim.NewResource("accelerator")

	popShare := int(float64(w.PerGPUBatch()) * w.PopularFrac)
	if popShare < 1 {
		popShare = 1
	}
	popLookups := scaleI64(w.TotalLookups(), w.PopularFrac) / int64(nGPU)
	popEmb := cost.GPUEmbLookupTime(sys.GPU, popLookups, w.RowBytes())
	popDense := w.gpuDenseFwdTime(popShare, 1)
	_, popStart := gpu.Schedule(0, 0)
	_, popEnd := gpu.Schedule(popStart, popEmb+popDense)

	// Accelerator: gather cold rows from CPU DRAM, pool them (reducer),
	// stream to GPUs. DMAGatherTime already pipelines DRAM with PCIe. In
	// the NoOverlap ablation the gather only starts once the popular
	// µ-batch finishes. A sharded workload replaces the analytic
	// cold × dedup estimate with the gather fraction measured against real
	// device-cache state.
	coldFrac := w.ColdLookupFrac * h.DedupFrac
	if w.Shard != nil {
		coldFrac = w.Shard.GatherFrac
	}
	coldRows := scaleI64(w.TotalLookups(), coldFrac)
	gather := cost.DMAGatherTime(sys, coldRows, w.RowBytes())
	reducer := h.Accel.Reducer.ReduceTime(coldRows, w.Cfg.EmbedDim)
	gatherStart := sim.Time(0)
	if h.NoOverlap {
		gatherStart = popEnd
	}
	_, gatherEnd := acc.Schedule(gatherStart, gather+reducer)
	if !h.NoOverlap && w.Shard != nil && w.Shard.OverlapMeasured {
		// A functional overlap run measured how much of the gather actually
		// stayed on the critical path; price that exposed share after the
		// popular µ-batch instead of the analytic overlap schedule.
		gatherEnd = popEnd + scaleDur(gather+reducer, w.Shard.ExposedFrac)
	}

	// --- non-popular µ-batch starts when both GPU and parameters ready ---
	nonShare := w.PerGPUBatch() - popShare
	var nonEmb, nonDense sim.Duration
	nonStart := popEnd
	if nonShare > 0 {
		nonLookups := w.TotalLookups()/int64(nGPU) - popLookups
		nonEmb = cost.GPUEmbLookupTime(sys.GPU, nonLookups, w.RowBytes())
		// The non-popular µ-batch's launches are issued while the popular
		// µ-batch still executes, hiding most of their dispatch cost.
		nonDense = w.gpuDenseFwdTime(nonShare, 0.25)
		nonStart = sim.MaxTime(popEnd, gatherEnd)
	}
	_, fwdEnd := gpu.Schedule(nonStart, nonEmb+nonDense)

	ph[PhaseEmbFwd] = popEmb + nonEmb
	ph[PhaseMLPFwd] = popDense + nonDense
	stall := nonStart - popEnd
	if stall > 0 {
		ph[PhaseGather] = stall
	}

	// --- backward over the full mini-batch ---
	_, bwd := w.gpuDenseTime(w.PerGPUBatch())
	bwdEmb := cost.GPUEmbLookupTime(sys.GPU, w.TotalLookups()/int64(nGPU), w.RowBytes())
	_, bwdEnd := gpu.Schedule(fwdEnd, bwd+bwdEmb)
	ph[PhaseBwd] = bwdEnd - fwdEnd

	// --- all-reduce: dense grads + touched hot embedding grads ---
	gradBytes := w.DenseParamBytes() + w.PooledEmbBytes(w.PerGPUBatch())
	ph[PhaseAllReduce] = cost.HierarchicalAllReduceTime(sys, gradBytes)

	// --- optimizer: hot rows in HBM; cold rows DMA-written to CPU DRAM
	// concurrently with the next iteration (off the critical path) ---
	touchedHot := dedupRows(w.TotalLookups()/int64(nGPU) - coldRows/int64(nGPU))
	if touchedHot < 0 {
		touchedHot = 0
	}
	ph[PhaseOpt] = cost.GPUEmbUpdateTime(sys.GPU, touchedHot, w.RowBytes()) +
		cost.GPUMLPTime(sys.GPU, w.DenseParamBytes()/2, 2)

	ph[PhaseOverhead] = cost.PerIterHostOverhead + learnAmortised

	return IterStats{Total: ph.Total(), Phases: ph}
}

// scaleI64 multiplies an int64 by a float factor.
func scaleI64(v int64, f float64) int64 { return int64(float64(v) * f) }

// HotlineCPU is the §VII-D ablation: the same popular/non-popular split but
// with segregation and parameter gathering done by CPU multi-processing
// instead of the accelerator. The CPU stage cannot hide behind the popular
// µ-batch, so the GPUs stall.
type HotlineCPU struct {
	Cores int
	// DedupFrac mirrors Hotline's gather dedup.
	DedupFrac float64
}

// NewHotlineCPU returns the CPU-based variant using all host cores.
func NewHotlineCPU() *HotlineCPU {
	return &HotlineCPU{Cores: 0, DedupFrac: 0.8}
}

// Name implements Pipeline.
func (h *HotlineCPU) Name() string { return "Hotline-CPU" }

// Iteration times one steady-state mini-batch: a two-stage software
// pipeline where the CPU stage (segregate + gather next batch) and the GPU
// stage (train current batch) run concurrently; the iteration time is the
// slower stage.
func (h *HotlineCPU) Iteration(w Workload) IterStats {
	sys := w.Sys
	nGPU := sys.TotalGPUs()
	cores := h.Cores
	if cores <= 0 {
		cores = sys.CPU.Cores
	}
	ph := Breakdown{}

	// CPU stage: segregation plus cold-row gather and PCIe push (no DMA
	// pipelining: CPU copies to pinned memory, then transfers).
	segTime := cost.CPUSegregationTime(sys.CPU, w.TotalLookups(), cores)
	coldRows := scaleI64(w.TotalLookups(), w.ColdLookupFrac*h.DedupFrac)
	gather := cost.CPUEmbLookupTime(sys.CPU, coldRows, w.RowBytes()) +
		sys.PCIe.Transfer(coldRows*w.RowBytes())
	cpuStage := segTime + gather

	// GPU stage: identical compute to Hotline's GPU work.
	perGPULookups := w.TotalLookups() / int64(nGPU)
	embFwd := cost.GPUEmbLookupTime(sys.GPU, perGPULookups, w.RowBytes())
	fwd, bwd := w.gpuDenseTime(w.PerGPUBatch())
	ar := cost.HierarchicalAllReduceTime(sys, w.DenseParamBytes()+w.PooledEmbBytes(w.PerGPUBatch()))
	opt := cost.GPUEmbUpdateTime(sys.GPU, dedupRows(perGPULookups), w.RowBytes()) +
		cost.GPUMLPTime(sys.GPU, w.DenseParamBytes()/2, 2)
	gpuStage := embFwd + fwd + bwd + ar + opt

	ph[PhaseEmbFwd] = embFwd
	ph[PhaseMLPFwd] = fwd
	ph[PhaseBwd] = bwd
	ph[PhaseAllReduce] = ar
	ph[PhaseOpt] = opt
	if cpuStage > gpuStage {
		// GPUs sit idle waiting for the CPU stage (paper: >50% idle).
		ph[PhaseSeg] = cpuStage - gpuStage
	}
	ph[PhaseOverhead] = cost.PerIterHostOverhead

	return IterStats{Total: ph.Total(), Phases: ph}
}
