package pipeline

import "fmt"

// All returns every pipeline the paper evaluates, in figure order.
func All() []Pipeline {
	return []Pipeline{
		NewXDL(),
		NewIntelDLRM(),
		NewFAE(),
		NewHugeCTR(),
		NewScratchPipeIdeal(),
		NewHotlineCPU(),
		NewHotline(),
	}
}

// ByName looks up a pipeline.
func ByName(name string) (Pipeline, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("pipeline: unknown pipeline %q", name)
}

// Speedup returns a.Total/b.Total — how much faster b is than a.
// Returns 0 if either side OOMs.
func Speedup(a, b IterStats) float64 {
	if a.OOM || b.OOM || b.Total <= 0 {
		return 0
	}
	return float64(a.Total) / float64(b.Total)
}
