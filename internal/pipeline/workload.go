package pipeline

import (
	"sync"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/nn"
	"hotline/internal/sim"
)

// Phase labels for latency breakdowns, matching the paper's figure legends.
const (
	PhaseMLPFwd    = "Forward MLP"
	PhaseEmbFwd    = "Forward Embedding"
	PhaseBwd       = "Backward"
	PhaseOpt       = "Optimizer"
	PhaseComm      = "CPU-GPU Comm"
	PhaseA2A       = "alltoall Comm"
	PhaseAllReduce = "All-Reduce"
	PhaseSeg       = "Segregation"
	PhaseGather    = "Gather Stall"
	PhaseOverhead  = "Overhead"
)

// Breakdown maps phase label to exposed (critical-path) time.
type Breakdown map[string]sim.Duration

// Total sums all phases.
func (b Breakdown) Total() sim.Duration {
	var t sim.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// IterStats is the result of one steady-state training iteration.
type IterStats struct {
	Total  sim.Duration
	Phases Breakdown
	// OOM marks configurations whose model does not fit device memory
	// (HugeCTR's failure mode in Figures 22 and 30). Timing fields are
	// meaningless when OOM is set.
	OOM bool
}

// Pipeline is one training-system timing model.
type Pipeline interface {
	Name() string
	Iteration(w Workload) IterStats
}

// Workload bundles everything a pipeline needs to time one iteration.
type Workload struct {
	Cfg   data.Config
	Batch int
	Sys   cost.System

	// PopularFrac is the fraction of inputs whose accesses are all hot.
	PopularFrac float64
	// ColdLookupFrac is the fraction of all embedding lookups that touch
	// CPU-resident rows.
	ColdLookupFrac float64
	// HotBytesFull is the paper-scale footprint of the hot (GPU-replicated)
	// embedding tier (≤ 512 MB in the paper).
	HotBytesFull int64

	// Shard, when non-nil, carries measured sharding statistics (cache
	// hit-rates, gather/scatter fractions) from internal/shard replay; the
	// timing models then price measured traffic instead of the analytic
	// PopularFrac/ColdLookupFrac estimates. See NewShardedWorkload.
	Shard *ShardMeasurement
}

// workloadStats caches measured popularity statistics per dataset.
var workloadStats sync.Map // string -> [2]float64{popularFrac, coldLookupFrac}

// workloadStatsMu serialises first-time probes so a concurrent experiment
// sweep measures each dataset once instead of duplicating the epoch profile.
var workloadStatsMu sync.Mutex

// MeasureStats runs the functional layer once per config to measure the
// popular-input fraction and cold-lookup fraction under the config's hot
// budget. Results are cached per dataset name; the function is safe for
// concurrent use from any number of workloads.
func MeasureStats(cfg data.Config) (popularFrac, coldLookupFrac float64) {
	if v, ok := workloadStats.Load(cfg.Name); ok {
		s := v.([2]float64)
		return s[0], s[1]
	}
	workloadStatsMu.Lock()
	defer workloadStatsMu.Unlock()
	if v, ok := workloadStats.Load(cfg.Name); ok {
		s := v.([2]float64)
		return s[0], s[1]
	}
	probe := cfg
	if probe.Samples > 4096 {
		probe.Samples = 4096
	}
	gen := data.NewGenerator(probe)
	prof := data.ProfileEpoch(gen, 512)
	placement := embedding.PlacementFromCounts(
		prof.Counts(), probe.NumTables, probe.EmbedDim, data.ScaledHotBudget(probe))

	eval := data.NewGenerator(probe)
	b := eval.NextBatch(2048)
	var popular, cold, total int64
	for i := 0; i < b.Size(); i++ {
		isPop := true
		for t := range b.Sparse {
			for _, ix := range b.Sparse[t][i] {
				total++
				if !placement.IsHot(t, ix) {
					cold++
					isPop = false
				}
			}
		}
		if isPop {
			popular++
		}
	}
	p := float64(popular) / float64(b.Size())
	c := float64(cold) / float64(total)
	workloadStats.Store(cfg.Name, [2]float64{p, c})
	return p, c
}

// NewWorkload assembles a Workload with measured popularity statistics.
func NewWorkload(cfg data.Config, batch int, sys cost.System) Workload {
	p, c := MeasureStats(cfg)
	hot := int64(cfg.HotFracRows * float64(cfg.FullEmbeddingBytes()))
	if hot > 512<<20 {
		hot = 512 << 20 // the paper's observed hot-set ceiling
	}
	return Workload{
		Cfg: cfg, Batch: batch, Sys: sys,
		PopularFrac: p, ColdLookupFrac: c, HotBytesFull: hot,
	}
}

// --- derived quantities -------------------------------------------------

// LookupsPerSample counts sparse accesses per input (TimeSteps for the TBSM
// sequence table, LookupsPerTable elsewhere).
func (w Workload) LookupsPerSample() int64 {
	n := int64(0)
	for t := 0; t < w.Cfg.NumTables; t++ {
		if w.Cfg.TimeSteps > 1 && t == 0 {
			n += int64(w.Cfg.TimeSteps)
		} else {
			n += int64(w.Cfg.LookupsPerTable)
		}
	}
	return n
}

// TotalLookups is lookups for the whole mini-batch.
func (w Workload) TotalLookups() int64 { return int64(w.Batch) * w.LookupsPerSample() }

// RowBytes is one embedding row in bytes.
func (w Workload) RowBytes() int64 { return int64(w.Cfg.EmbedDim) * 4 }

// PooledEmbBytes is the pooled per-table embedding activations for n
// samples (what crosses CPU->GPU in hybrid mode and GPU->GPU in all-to-all).
func (w Workload) PooledEmbBytes(n int) int64 {
	return int64(n) * int64(w.Cfg.NumTables) * w.RowBytes()
}

// DenseFwdFLOPs returns the forward dense FLOPs for n samples: bottom MLP,
// feature interaction, and top MLP (with its interaction-width input layer).
func (w Workload) DenseFwdFLOPs(n int) int64 {
	bot := nn.MLPFLOPs(w.Cfg.BotMLP, n)
	nVec := w.Cfg.NumTables + 1
	interWidth := w.Cfg.EmbedDim + nVec*(nVec-1)/2
	inter := 2 * int64(n) * int64(nVec*(nVec-1)/2) * int64(w.Cfg.EmbedDim)
	top := nn.MLPFLOPs(append([]int{interWidth}, w.Cfg.TopMLP...), n)
	var attn int64
	if w.Cfg.TimeSteps > 1 {
		attn = 4 * int64(n) * int64(w.Cfg.TimeSteps) * int64(w.Cfg.EmbedDim)
	}
	return bot + inter + top + attn
}

// DenseParamBytes is the dense parameter footprint (all-reduced each
// iteration).
func (w Workload) DenseParamBytes() int64 {
	var params int64
	sizes := w.Cfg.BotMLP
	for i := 0; i < len(sizes)-1; i++ {
		params += int64(sizes[i])*int64(sizes[i+1]) + int64(sizes[i+1])
	}
	nVec := w.Cfg.NumTables + 1
	interWidth := w.Cfg.EmbedDim + nVec*(nVec-1)/2
	top := append([]int{interWidth}, w.Cfg.TopMLP...)
	for i := 0; i < len(top)-1; i++ {
		params += int64(top[i])*int64(top[i+1]) + int64(top[i+1])
	}
	return params * 4
}

// DenseKernels approximates kernel launches per dense pass.
func (w Workload) DenseKernels() int {
	return 2 * (len(w.Cfg.BotMLP) + len(w.Cfg.TopMLP) + 1)
}

// PerGPUBatch returns the per-GPU share of the mini-batch (data parallel).
func (w Workload) PerGPUBatch() int {
	g := w.Sys.TotalGPUs()
	if g < 1 {
		g = 1
	}
	n := w.Batch / g
	if n < 1 {
		n = 1
	}
	return n
}

// gpuDenseTime returns fwd+bwd dense time for the per-GPU batch share.
// Forward passes carry a few fused embedding-op kernels on top of the MLP
// launches; backward roughly doubles the math at the same launch count.
func (w Workload) gpuDenseTime(n int) (fwd, bwd sim.Duration) {
	flops := w.DenseFwdFLOPs(n)
	fwd = cost.GPUMLPTime(w.Sys.GPU, flops, 4+w.DenseKernels())
	bwd = cost.GPUMLPTime(w.Sys.GPU, 2*flops, w.DenseKernels())
	return
}

// gpuDenseFwdTime returns the forward dense time with a kernel-launch
// fraction: µ-batches dispatched while the GPU is still executing earlier
// work hide most of their launch cost behind execution (stream pipelining).
func (w Workload) gpuDenseFwdTime(n int, kernelFrac float64) sim.Duration {
	flops := w.DenseFwdFLOPs(n)
	full := cost.GPUMLPTime(w.Sys.GPU, flops, 0)
	launches := sim.Duration(float64(4+w.DenseKernels()) * kernelFrac * float64(w.Sys.GPU.KernelLaunch))
	return full + launches
}
