package pipeline

import (
	"math"
	"testing"

	"hotline/internal/cost"
	"hotline/internal/data"
)

func kaggle4GPU(t *testing.T) Workload {
	t.Helper()
	return NewWorkload(data.CriteoKaggle(), 4096, cost.PaperSystem(4))
}

func geomean(vals []float64) float64 {
	p := 1.0
	for _, v := range vals {
		p *= v
	}
	return math.Pow(p, 1/float64(len(vals)))
}

func TestMeasureStatsPlausible(t *testing.T) {
	for _, cfg := range data.AllDatasets() {
		p, c := MeasureStats(cfg)
		if p < 0.5 || p > 0.98 {
			t.Errorf("%s popular fraction %.2f implausible", cfg.Name, p)
		}
		if c <= 0 || c > 0.2 {
			t.Errorf("%s cold lookup fraction %.3f implausible", cfg.Name, c)
		}
	}
}

func TestWorkloadDerivedQuantities(t *testing.T) {
	w := kaggle4GPU(t)
	if w.LookupsPerSample() != 26 {
		t.Fatalf("Kaggle lookups/sample = %d", w.LookupsPerSample())
	}
	if w.TotalLookups() != 4096*26 {
		t.Fatalf("total lookups = %d", w.TotalLookups())
	}
	if w.RowBytes() != 64 {
		t.Fatalf("row bytes = %d", w.RowBytes())
	}
	if w.PerGPUBatch() != 1024 {
		t.Fatalf("per-GPU batch = %d", w.PerGPUBatch())
	}
	if w.PooledEmbBytes(1) != 26*64 {
		t.Fatalf("pooled bytes/sample = %d", w.PooledEmbBytes(1))
	}
	if w.DenseFwdFLOPs(1) <= 0 || w.DenseParamBytes() <= 0 {
		t.Fatal("dense quantities must be positive")
	}
	// TBSM counts the sequence steps.
	wt := NewWorkload(data.TaobaoAlibaba(), 1024, cost.PaperSystem(1))
	if wt.LookupsPerSample() != 21+2 {
		t.Fatalf("Taobao lookups/sample = %d", wt.LookupsPerSample())
	}
}

func TestAllPipelinesProduceSaneIterations(t *testing.T) {
	w := kaggle4GPU(t)
	for _, p := range All() {
		st := p.Iteration(w)
		if st.OOM {
			t.Fatalf("%s should not OOM on Kaggle", p.Name())
		}
		if st.Total <= 0 {
			t.Fatalf("%s: non-positive iteration", p.Name())
		}
		if st.Phases.Total() != st.Total {
			t.Fatalf("%s: phases (%v) must sum to total (%v)", p.Name(), st.Phases.Total(), st.Total)
		}
		if st.Total.Millis() > 500 {
			t.Fatalf("%s: iteration %v absurdly long", p.Name(), st.Total)
		}
	}
}

// Figure 19's ordering: XDL slowest, then Intel DLRM, then FAE, Hotline
// fastest of the hybrid-memory systems.
func TestFig19Ordering(t *testing.T) {
	for _, gpus := range []int{1, 2, 4} {
		sys := cost.PaperSystem(gpus)
		for _, cfg := range data.AllDatasets() {
			w := NewWorkload(cfg, 1024*gpus, sys)
			xdl := NewXDL().Iteration(w).Total
			dlrm := NewIntelDLRM().Iteration(w).Total
			fae := NewFAE().Iteration(w).Total
			hl := NewHotline().Iteration(w).Total
			if !(xdl > dlrm && dlrm > fae && fae > hl) {
				t.Errorf("%s %dGPU ordering broken: xdl=%v dlrm=%v fae=%v hotline=%v",
					cfg.Name, gpus, xdl, dlrm, fae, hl)
			}
		}
	}
}

// The headline claim: Hotline averages ~2.2x over Intel-optimized DLRM
// (we accept a 1.5x-4.5x band per dataset; the paper's geomean is 2.2-3.1
// depending on GPU count).
func TestHeadlineSpeedupBand(t *testing.T) {
	var ratios []float64
	for _, gpus := range []int{1, 2, 4} {
		sys := cost.PaperSystem(gpus)
		for _, cfg := range data.AllDatasets() {
			w := NewWorkload(cfg, 1024*gpus, sys)
			r := Speedup(NewIntelDLRM().Iteration(w), NewHotline().Iteration(w))
			if r < 1.5 || r > 5.5 {
				t.Errorf("%s %dGPU: Hotline/DLRM = %.2f outside band", cfg.Name, gpus, r)
			}
			ratios = append(ratios, r)
		}
	}
	gm := geomean(ratios)
	if gm < 2.0 || gm > 4.0 {
		t.Errorf("geomean Hotline/DLRM speedup %.2f, paper reports 2.2-3.1", gm)
	}
}

// FAE comparison (paper: 1.4-1.5x).
func TestFAESpeedupBand(t *testing.T) {
	var ratios []float64
	for _, gpus := range []int{1, 2, 4} {
		sys := cost.PaperSystem(gpus)
		for _, cfg := range data.AllDatasets() {
			w := NewWorkload(cfg, 1024*gpus, sys)
			ratios = append(ratios, Speedup(NewFAE().Iteration(w), NewHotline().Iteration(w)))
		}
	}
	gm := geomean(ratios)
	if gm < 1.2 || gm > 2.5 {
		t.Errorf("geomean Hotline/FAE = %.2f, paper reports ~1.4-1.5", gm)
	}
}

// HugeCTR comparison (Figure 22): Hotline modestly ahead at 4 GPUs thanks
// to eliminating all-to-all; Terabyte OOMs below 4 GPUs.
func TestHugeCTRComparison(t *testing.T) {
	hc := NewHugeCTR()
	hl := NewHotline()

	for _, gpus := range []int{1, 2} {
		w := NewWorkload(data.CriteoTerabyte(), 1024*gpus, cost.PaperSystem(gpus))
		if st := hc.Iteration(w); !st.OOM {
			t.Errorf("Terabyte (63GB) must OOM HugeCTR on %d GPU(s)", gpus)
		}
		if st := hl.Iteration(w); st.OOM || st.Total <= 0 {
			t.Error("Hotline must train Terabyte on a single GPU (paper §VII-C)")
		}
	}
	w := NewWorkload(data.CriteoTerabyte(), 4096, cost.PaperSystem(4))
	if st := hc.Iteration(w); st.OOM {
		t.Error("Terabyte fits 4 GPUs (64GB HBM)")
	}

	// 4-GPU speedup band around the paper's 1.13x.
	var ratios []float64
	for _, cfg := range data.AllDatasets() {
		w := NewWorkload(cfg, 4096, cost.PaperSystem(4))
		hcSt := hc.Iteration(w)
		if hcSt.OOM {
			continue
		}
		ratios = append(ratios, Speedup(hcSt, hl.Iteration(w)))
	}
	gm := geomean(ratios)
	if gm < 1.0 || gm > 1.4 {
		t.Errorf("Hotline/HugeCTR 4GPU geomean = %.2f, paper reports ~1.13", gm)
	}
}

// ScratchPipe-Ideal (Figure 24): parity at 1 GPU, Hotline ahead at 4 GPUs.
func TestScratchPipeComparison(t *testing.T) {
	sp := NewScratchPipeIdeal()
	hl := NewHotline()
	var one, four []float64
	for _, cfg := range data.AllDatasets() {
		w1 := NewWorkload(cfg, 1024, cost.PaperSystem(1))
		one = append(one, Speedup(sp.Iteration(w1), hl.Iteration(w1)))
		w4 := NewWorkload(cfg, 4096, cost.PaperSystem(4))
		four = append(four, Speedup(sp.Iteration(w4), hl.Iteration(w4)))
	}
	if gm := geomean(one); gm < 0.85 || gm > 1.6 {
		t.Errorf("1-GPU Hotline/ScratchPipe = %.2f, paper says similar (~1.0)", gm)
	}
	gm4 := geomean(four)
	if gm4 < 1.1 || gm4 > 2.2 {
		t.Errorf("4-GPU Hotline/ScratchPipe = %.2f, paper reports ~1.2", gm4)
	}
	if gm4 <= geomean(one) {
		t.Error("Hotline's edge must grow with GPUs (all-to-all scaling)")
	}
}

// Hotline-CPU ablation (Figure 23): the accelerator wins, increasingly so
// with more GPUs, up to ~3.5x.
func TestHotlineCPUComparison(t *testing.T) {
	hc := NewHotlineCPU()
	hl := NewHotline()
	prev := 0.0
	for _, gpus := range []int{1, 2, 4} {
		var rs []float64
		for _, cfg := range data.AllDatasets() {
			w := NewWorkload(cfg, 1024*gpus, cost.PaperSystem(gpus))
			rs = append(rs, Speedup(hc.Iteration(w), hl.Iteration(w)))
		}
		gm := geomean(rs)
		if gm < 1.0 || gm > 4.0 {
			t.Errorf("%dGPU Hotline/Hotline-CPU = %.2f outside [1,4]", gpus, gm)
		}
		if gm < prev {
			t.Errorf("accelerator advantage should grow with GPUs: %.2f after %.2f", gm, prev)
		}
		prev = gm
	}
}

// Figure 3's shape: the hybrid baseline spends most of its time on
// CPU-side embedding work for the embedding-dominated datasets.
func TestHybridBreakdownCPUDominated(t *testing.T) {
	for _, name := range []string{"Criteo Kaggle", "Criteo Terabyte"} {
		cfg, err := data.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorkload(cfg, 4096, cost.PaperSystem(4))
		st := NewIntelDLRM().Iteration(w)
		cpuSide := st.Phases[PhaseEmbFwd] + st.Phases[PhaseOpt] + st.Phases[PhaseComm]
		frac := float64(cpuSide) / float64(st.Total)
		if frac < 0.40 || frac > 0.85 {
			t.Errorf("%s: hybrid CPU-side fraction %.2f, paper shows 40-75%%", name, frac)
		}
	}
}

// Figure 4/22's driver: all-to-all must be a visible slice of GPU-only time
// and grow dramatically across nodes (Figure 5: >50% multi-node).
func TestAllToAllShare(t *testing.T) {
	cfg := data.CriteoTerabyte()
	w := NewWorkload(cfg, 4096, cost.PaperSystem(4))
	st := NewHugeCTR().Iteration(w)
	frac := float64(st.Phases[PhaseA2A]) / float64(st.Total)
	if frac < 0.03 || frac > 0.4 {
		t.Errorf("single-node a2a share %.2f, paper reports ~12%%", frac)
	}

	multi := NewWorkload(data.SynM1(), 4096*4, cost.PaperCluster(4))
	stM := NewHugeCTR().Iteration(multi)
	if stM.OOM {
		t.Fatal("SYN-M1 should fit 16 GPUs")
	}
	fracM := float64(stM.Phases[PhaseA2A]) / float64(stM.Total)
	if fracM < 0.4 {
		t.Errorf("multi-node a2a share %.2f, paper reports >50%%", fracM)
	}
	if fracM <= frac {
		t.Error("a2a share must grow across nodes")
	}
}

// Figure 30: SYN-M1 fits only at 4 nodes for HugeCTR; SYN-M2 exceeds even
// 4 nodes; Hotline runs both at any node count and wins at 4 nodes.
func TestMultiNodeOOMMatrix(t *testing.T) {
	hc := NewHugeCTR()
	hl := NewHotline()
	for _, tc := range []struct {
		cfg   data.Config
		nodes int
		oom   bool
	}{
		{data.SynM1(), 1, true},
		{data.SynM1(), 2, true},
		{data.SynM1(), 4, false},
		{data.SynM2(), 4, true},
	} {
		w := NewWorkload(tc.cfg, 4096*tc.nodes, cost.PaperCluster(tc.nodes))
		if got := hc.Iteration(w).OOM; got != tc.oom {
			t.Errorf("%s %d-node HugeCTR OOM=%v want %v", tc.cfg.Name, tc.nodes, got, tc.oom)
		}
		if hl.Iteration(w).OOM {
			t.Errorf("Hotline must never OOM (%s %d nodes)", tc.cfg.Name, tc.nodes)
		}
	}
	// At 4 nodes where both run, Hotline wins by eliminating all-to-all
	// (paper: 1.89x).
	w := NewWorkload(data.SynM1(), 4096*4, cost.PaperCluster(4))
	r := Speedup(hc.Iteration(w), hl.Iteration(w))
	if r < 1.3 || r > 3.5 {
		t.Errorf("4-node Hotline/HugeCTR on SYN-M1 = %.2f, paper reports 1.89", r)
	}
}

// Figure 26: Hotline's advantage over the hybrid baseline grows with batch.
func TestBatchSweepAdvantageGrows(t *testing.T) {
	cfg := data.CriteoKaggle()
	sys := cost.PaperSystem(4)
	prev := 0.0
	for _, b := range []int{1024, 4096, 16384} {
		w := NewWorkload(cfg, b, sys)
		r := Speedup(NewIntelDLRM().Iteration(w), NewHotline().Iteration(w))
		if r < prev*0.95 {
			t.Errorf("batch %d: speedup %.2f fell vs %.2f", b, r, prev)
		}
		prev = r
	}
}

// Hotline hides the gather under popular execution for realistic ratios
// (Figure 25's point): no stall at measured popularity, visible stall when
// popularity is artificially forced very low.
func TestGatherHiding(t *testing.T) {
	w := kaggle4GPU(t)
	st := NewHotline().Iteration(w)
	if st.Phases[PhaseGather] > st.Total/20 {
		t.Errorf("gather stall %v should be hidden at %.0f%% popularity",
			st.Phases[PhaseGather], w.PopularFrac*100)
	}
	// Force a 20:80 split with lots of cold traffic.
	w.PopularFrac = 0.2
	w.ColdLookupFrac = 0.4
	st2 := NewHotline().Iteration(w)
	if st2.Phases[PhaseGather] <= st.Phases[PhaseGather] {
		t.Error("forcing low popularity must increase the gather stall")
	}
}

// Hotline-CPU exposes a segregation stall that the accelerator variant
// does not have (Figures 7/23).
func TestSegregationStallOnlyOnCPU(t *testing.T) {
	w := kaggle4GPU(t)
	cpuSt := NewHotlineCPU().Iteration(w)
	if cpuSt.Phases[PhaseSeg] <= 0 {
		t.Error("CPU-based Hotline must expose a segregation stall at 4K batch")
	}
	hlSt := NewHotline().Iteration(w)
	if hlSt.Phases[PhaseSeg] != 0 {
		t.Error("accelerator Hotline must fully hide segregation")
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) != 7 {
		t.Fatalf("expected 7 pipelines, got %d", len(All()))
	}
	if _, err := ByName("Hotline"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown pipeline must error")
	}
	if Speedup(IterStats{OOM: true}, IterStats{Total: 1}) != 0 {
		t.Fatal("OOM speedup must be 0")
	}
}

func TestXDLWeakScalingBatch(t *testing.T) {
	// Weak scaling grows total batch with GPUs: iteration time of CPU-bound
	// pipelines must not shrink as GPUs grow.
	cfg := data.CriteoKaggle()
	t1 := NewXDL().Iteration(NewWorkload(cfg, 1024, cost.PaperSystem(1))).Total
	t4 := NewXDL().Iteration(NewWorkload(cfg, 4096, cost.PaperSystem(4))).Total
	if t4 < t1 {
		t.Errorf("XDL weak scaling: 4GPU iter %v < 1GPU iter %v", t4, t1)
	}
}
