package pipeline

import (
	"testing"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/shard"
	"hotline/internal/train"
)

func TestMeasureShardStatsBasics(t *testing.T) {
	cfg := data.CriteoKaggle()
	m := MeasureShardStats(cfg, 4, DefaultShardCacheBytes(cfg), 1024, shard.PolicyLRU)
	if m.Nodes != 4 {
		t.Fatalf("nodes = %d", m.Nodes)
	}
	if m.RemoteFrac <= 0 || m.RemoteFrac > 1 {
		t.Fatalf("remote frac = %g", m.RemoteFrac)
	}
	// The hot set is preloaded into ample caches, so the skewed head must
	// hit: hit rate well above zero, and the fabric fraction strictly below
	// the raw remote fraction.
	if m.HitRate <= 0.2 {
		t.Fatalf("hit rate = %g, want > 0.2 with a full hot-set cache", m.HitRate)
	}
	if m.GatherFrac >= m.RemoteFrac {
		t.Fatalf("gather frac %g must be < remote frac %g (caching + dedup)", m.GatherFrac, m.RemoteFrac)
	}
	if m.A2ABytesPerIter <= 0 {
		t.Fatal("a2a bytes must be measured")
	}
}

func TestMeasureShardStatsSingleNode(t *testing.T) {
	cfg := data.CriteoKaggle()
	m := MeasureShardStats(cfg, 1, DefaultShardCacheBytes(cfg), 1024, shard.PolicyLRU)
	if m.RemoteFrac != 0 || m.A2ABytesPerIter != 0 {
		t.Fatalf("single node must be all-local: %+v", m)
	}
}

func TestMeasureShardStatsCachePressure(t *testing.T) {
	cfg := data.CriteoKaggle()
	big := MeasureShardStats(cfg, 4, DefaultShardCacheBytes(cfg), 1024, shard.PolicyLRU)
	tiny := MeasureShardStats(cfg, 4, DefaultShardCacheBytes(cfg)/16, 1024, shard.PolicyLRU)
	if tiny.HitRate >= big.HitRate {
		t.Fatalf("smaller cache must hit less: tiny %g vs big %g", tiny.HitRate, big.HitRate)
	}
	if tiny.GatherFrac <= big.GatherFrac {
		t.Fatalf("smaller cache must gather more: tiny %g vs big %g", tiny.GatherFrac, big.GatherFrac)
	}
}

// TestMeasureShardStatsPolicyKeyed is the regression test for the memo-key
// bug: the eviction policy is part of the measurement identity, so a
// policy-ablation caller can never read stats measured under a different
// policy. Under cache pressure LRU and SRRIP behave differently, and each
// policy's memoised result must be stable across repeated calls in either
// order.
func TestMeasureShardStatsPolicyKeyed(t *testing.T) {
	cfg := data.CriteoKaggle()
	cache := DefaultShardCacheBytes(cfg) / 16
	srrip := MeasureShardStats(cfg, 4, cache, 1024, shard.PolicySRRIP)
	lru := MeasureShardStats(cfg, 4, cache, 1024, shard.PolicyLRU)
	if lru.Policy != shard.PolicyLRU || srrip.Policy != shard.PolicySRRIP {
		t.Fatalf("measurements must record their policy: %v / %v", lru.Policy, srrip.Policy)
	}
	if lru == srrip {
		t.Fatal("under pressure, LRU and SRRIP measurements must differ; " +
			"identical results mean the memo ignored the policy")
	}
	if again := MeasureShardStats(cfg, 4, cache, 1024, shard.PolicySRRIP); again != srrip {
		t.Fatal("repeated SRRIP call returned a different (cross-policy) memo entry")
	}
}

// TestMeasureShardPlacements exercises the full probe surface: hot-aware
// ownership must beat blind round-robin on the measured all-to-all volume
// (the mn-place acceptance claim, asserted at test granularity).
func TestMeasureShardPlacements(t *testing.T) {
	cfg := data.CriteoKaggle()
	cache := DefaultShardCacheBytes(cfg) / 8
	rr := MeasureShard(cfg, ShardProbe{Nodes: 4, CacheBytes: cache, Batch: 1024,
		Placement: shard.PlaceRoundRobin})
	ha := MeasureShard(cfg, ShardProbe{Nodes: 4, CacheBytes: cache, Batch: 1024,
		Placement: shard.PlaceHotAware})
	cw := MeasureShard(cfg, ShardProbe{Nodes: 4, CacheBytes: cache, Batch: 1024,
		Placement: shard.PlaceCapacity,
		HBMBytes:  []int64{3 * cache, 2 * cache, 2 * cache, cache}})
	if rr.Placement != "round-robin" || ha.Placement != "hot-aware" || cw.Placement != "capacity-weighted" {
		t.Fatalf("placement labels: %q %q %q", rr.Placement, ha.Placement, cw.Placement)
	}
	if ha.A2ABytesPerIter >= rr.A2ABytesPerIter {
		t.Fatalf("hot-aware a2a %d must be < round-robin %d",
			ha.A2ABytesPerIter, rr.A2ABytesPerIter)
	}
	if ha.LocalFrac <= rr.LocalFrac {
		t.Fatalf("hot-aware local frac %g must exceed round-robin %g", ha.LocalFrac, rr.LocalFrac)
	}
	if rr.OverlapMeasured {
		t.Fatal("exposed frac must default to unmeasured")
	}
}

// TestMeasureShardQuantReprices: the probe's precision-tiering knob is part
// of the measurement identity, the narrow tier's effective capacity shows up
// in the measured frontier (more resident rows, higher hit rate, fewer
// all-to-all bytes at the same byte budget), and the timing models reprice
// off the quantized measurement automatically — no model code knows about
// widths, it just consumes better measured stats.
func TestMeasureShardQuantReprices(t *testing.T) {
	cfg := data.CriteoKaggle()
	cache := DefaultShardCacheBytes(cfg) / 8
	probe := ShardProbe{Nodes: 4, CacheBytes: cache, Batch: 1024}
	off := MeasureShard(cfg, probe)
	probe.Quant = shard.QuantINT8
	i8 := MeasureShard(cfg, probe)

	if off.Quant != "fp32" || off.QuantHitFrac != 0 {
		t.Fatalf("fp32 probe must record its mode and no warm hits: %q %g", off.Quant, off.QuantHitFrac)
	}
	if i8.Quant != "int8" || i8.QuantHitFrac == 0 {
		t.Fatalf("int8 probe must record its mode and warm-tier hits: %q %g", i8.Quant, i8.QuantHitFrac)
	}
	if i8.CacheRows < 2*off.CacheRows {
		t.Fatalf("int8 cache holds %d rows vs %d fp32 at the same bytes; want >= 2x", i8.CacheRows, off.CacheRows)
	}
	if i8.HitRate <= off.HitRate || i8.A2ABytesPerIter >= off.A2ABytesPerIter {
		t.Fatalf("int8 frontier must dominate: hit %g vs %g, a2a %d vs %d",
			i8.HitRate, off.HitRate, i8.A2ABytesPerIter, off.A2ABytesPerIter)
	}
	if again := MeasureShard(cfg, probe); again != i8 {
		t.Fatal("repeated int8 probe returned a different (cross-mode) memo entry")
	}

	// The analytic pipelines consume the measurement as-is: Hotline's model
	// eats the measured gather fraction, so the quantized probe's smaller
	// fabric volume must price a strictly faster iteration; the GPU-only
	// HugeCTR baseline has no device cache in its model (only RemoteFrac),
	// so its price must not move at all.
	sys := cost.PaperCluster(4)
	w := NewWorkload(cfg, 4096, sys)
	hl := NewHotline()
	w.Shard = &off
	hlOff := hl.Iteration(w)
	w.Shard = &i8
	hlI8 := hl.Iteration(w)
	if !hlOff.OOM && !hlI8.OOM && hlI8.Total >= hlOff.Total {
		t.Fatalf("Hotline: quantized measurement must reprice faster: %v vs %v", hlI8.Total, hlOff.Total)
	}
	ctr := NewHugeCTR()
	w.Shard = &off
	ctrOff := ctr.Iteration(w)
	w.Shard = &i8
	ctrI8 := ctr.Iteration(w)
	if ctrI8.Total != ctrOff.Total {
		t.Fatalf("HugeCTR (cache-free baseline) must be precision-inert: %v vs %v", ctrI8.Total, ctrOff.Total)
	}
}

// TestHotlineConsumesExposedFrac: a measured exposed-gather fraction moves
// the Hotline iteration monotonically between the fully-hidden and
// no-overlap extremes.
func TestHotlineConsumesExposedFrac(t *testing.T) {
	cfg := data.CriteoKaggle()
	sys := cost.PaperCluster(4)
	w := NewShardedWorkload(cfg, 4096*4, sys, 0)
	analytic := float64(NewHotline().Iteration(w).Total) // OverlapMeasured unset
	iter := func(f float64) float64 {
		w.Shard.SetExposedFrac(f)
		return float64(NewHotline().Iteration(w).Total)
	}
	hidden, half, full := iter(0), iter(0.5), iter(1)
	if !(hidden < half && half < full) {
		t.Fatalf("exposed fraction must price monotonically: %g %g %g", hidden, half, full)
	}
	if analytic > full || analytic <= 0 {
		t.Fatalf("analytic schedule must sit within the measured envelope: %g vs full %g", analytic, full)
	}
	w.Shard.SetExposedFrac(1)
	noOverlap := float64(NewHotlineNoOverlap().Iteration(w).Total)
	if full != noOverlap {
		t.Fatalf("fully exposed (%g) must equal the no-overlap ablation (%g)", full, noOverlap)
	}
}

func TestShardedWorkloadFeedsTimingModels(t *testing.T) {
	cfg := data.CriteoKaggle()
	sys := cost.PaperCluster(2)
	plain := NewWorkload(cfg, 4096, sys)
	sharded := NewShardedWorkload(cfg, 4096, sys, 0)
	if sharded.Shard == nil || sharded.Shard.Nodes != 2 {
		t.Fatal("sharded workload must carry a measurement for sys.Nodes")
	}

	for _, p := range []Pipeline{NewHotline(), NewHugeCTR()} {
		a, b := p.Iteration(plain), p.Iteration(sharded)
		if a.OOM || b.OOM {
			continue
		}
		if a.Total == b.Total {
			t.Fatalf("%s: measured stats must change the timing (both %v)", p.Name(), a.Total)
		}
		if b.Total <= 0 {
			t.Fatalf("%s: non-positive iteration time", p.Name())
		}
	}
}

// TestShardedWorkloadMeasuresOverlap: NewShardedWorkload must price the
// exposed-gather fraction from the pipelined async engine's measurement by
// default — every mn-* scenario consumes it, not only mn-overlap.
func TestShardedWorkloadMeasuresOverlap(t *testing.T) {
	cfg := data.CriteoKaggle()
	for _, nodes := range []int{2, 4} {
		w := NewShardedWorkload(cfg, 4096*nodes, cost.PaperCluster(nodes), 0)
		if w.Shard == nil {
			t.Fatalf("nodes=%d: workload carries no shard measurement", nodes)
		}
		if !w.Shard.OverlapMeasured {
			t.Fatalf("nodes=%d: exposed fraction not measured by default", nodes)
		}
		if f := w.Shard.ExposedFrac; f < 0 || f > 1 {
			t.Fatalf("nodes=%d: exposed fraction %v outside [0,1]", nodes, f)
		}
		// Memoisation: a second workload must see the identical fraction
		// (the sweep's determinism depends on it).
		w2 := NewShardedWorkload(cfg, 4096*nodes, cost.PaperCluster(nodes), 0)
		if w2.Shard.ExposedFrac != w.Shard.ExposedFrac {
			t.Fatalf("nodes=%d: exposed fraction not memoised (%v vs %v)",
				nodes, w.Shard.ExposedFrac, w2.Shard.ExposedFrac)
		}
	}
	// Single node: no fabric, no overlap measurement.
	w := NewShardedWorkload(cfg, 4096, cost.PaperCluster(1), 0)
	if w.Shard.OverlapMeasured {
		t.Fatal("nodes=1 must not report a measured overlap")
	}
}

// TestMeasureOverlapExposedDepthKeyed: the depth is part of the overlap
// memo identity — each k gets its own measurement — and the default-depth
// helpers agree with the explicit depth-2 probe.
func TestMeasureOverlapExposedDepthKeyed(t *testing.T) {
	cfg := data.CriteoKaggle()
	f2 := MeasureOverlapExposedDepth(cfg, 2, 0, 2)
	if got := MeasureOverlapExposed(cfg, 2, 0); got != f2 {
		t.Fatalf("default-depth helper diverged: %v vs %v", got, f2)
	}
	if got := MeasureOverlapExposedDepth(cfg, 2, 0, 2); got != f2 {
		t.Fatalf("depth measurement not memoised: %v vs %v", got, f2)
	}
	if f := MeasureOverlapExposedDepth(cfg, 1, 0, 4); f != 0 {
		t.Fatalf("single node must expose nothing: %v", f)
	}
}

// TestDepthExposedFracNonIncreasing is the mn-depth acceptance claim at
// test granularity: the depth-2 pipeline must not expose MORE gather time
// than the degenerate depth-1 queue, whose single window is issued at
// consume time — synchronous by construction, so its fraction is exactly
// 1 (not a noisy timing of two identical runs).
func TestDepthExposedFracNonIncreasing(t *testing.T) {
	cfg := data.CriteoKaggle()
	f1 := MeasureOverlapExposedDepth(cfg, 4, 0, 1)
	f2 := MeasureOverlapExposedDepth(cfg, 4, 0, 2)
	if f1 != 1 {
		t.Fatalf("depth-1 exposure must be exactly 1 (synchronous by construction), got %v", f1)
	}
	if f2 > f1 {
		t.Fatalf("exposed fraction must be non-increasing from k=1 (%v) to k=2 (%v)", f1, f2)
	}
}

// TestShardedWorkloadDepthRecorded: a depth-swept workload records the
// pipeline depth its overlap was measured at.
func TestShardedWorkloadDepthRecorded(t *testing.T) {
	cfg := data.CriteoKaggle()
	w := NewShardedWorkloadDepth(cfg, 4096*2, cost.PaperCluster(2), 0, 4)
	if w.Shard == nil || !w.Shard.OverlapMeasured {
		t.Fatal("depth workload must measure overlap")
	}
	if w.Shard.PipelineDepth != 4 {
		t.Fatalf("pipeline depth not recorded: %d", w.Shard.PipelineDepth)
	}
	wd := NewShardedWorkload(cfg, 4096*2, cost.PaperCluster(2), 0)
	if wd.Shard.PipelineDepth != train.DefaultPipelineDepth() {
		t.Fatalf("default workload depth = %d want %d",
			wd.Shard.PipelineDepth, train.DefaultPipelineDepth())
	}
}
