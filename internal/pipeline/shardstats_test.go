package pipeline

import (
	"testing"

	"hotline/internal/cost"
	"hotline/internal/data"
)

func TestMeasureShardStatsBasics(t *testing.T) {
	cfg := data.CriteoKaggle()
	m := MeasureShardStats(cfg, 4, DefaultShardCacheBytes(cfg), 1024)
	if m.Nodes != 4 {
		t.Fatalf("nodes = %d", m.Nodes)
	}
	if m.RemoteFrac <= 0 || m.RemoteFrac > 1 {
		t.Fatalf("remote frac = %g", m.RemoteFrac)
	}
	// The hot set is preloaded into ample caches, so the skewed head must
	// hit: hit rate well above zero, and the fabric fraction strictly below
	// the raw remote fraction.
	if m.HitRate <= 0.2 {
		t.Fatalf("hit rate = %g, want > 0.2 with a full hot-set cache", m.HitRate)
	}
	if m.GatherFrac >= m.RemoteFrac {
		t.Fatalf("gather frac %g must be < remote frac %g (caching + dedup)", m.GatherFrac, m.RemoteFrac)
	}
	if m.A2ABytesPerIter <= 0 {
		t.Fatal("a2a bytes must be measured")
	}
}

func TestMeasureShardStatsSingleNode(t *testing.T) {
	cfg := data.CriteoKaggle()
	m := MeasureShardStats(cfg, 1, DefaultShardCacheBytes(cfg), 1024)
	if m.RemoteFrac != 0 || m.A2ABytesPerIter != 0 {
		t.Fatalf("single node must be all-local: %+v", m)
	}
}

func TestMeasureShardStatsCachePressure(t *testing.T) {
	cfg := data.CriteoKaggle()
	big := MeasureShardStats(cfg, 4, DefaultShardCacheBytes(cfg), 1024)
	tiny := MeasureShardStats(cfg, 4, DefaultShardCacheBytes(cfg)/16, 1024)
	if tiny.HitRate >= big.HitRate {
		t.Fatalf("smaller cache must hit less: tiny %g vs big %g", tiny.HitRate, big.HitRate)
	}
	if tiny.GatherFrac <= big.GatherFrac {
		t.Fatalf("smaller cache must gather more: tiny %g vs big %g", tiny.GatherFrac, big.GatherFrac)
	}
}

func TestShardedWorkloadFeedsTimingModels(t *testing.T) {
	cfg := data.CriteoKaggle()
	sys := cost.PaperCluster(2)
	plain := NewWorkload(cfg, 4096, sys)
	sharded := NewShardedWorkload(cfg, 4096, sys, 0)
	if sharded.Shard == nil || sharded.Shard.Nodes != 2 {
		t.Fatal("sharded workload must carry a measurement for sys.Nodes")
	}

	for _, p := range []Pipeline{NewHotline(), NewHugeCTR()} {
		a, b := p.Iteration(plain), p.Iteration(sharded)
		if a.OOM || b.OOM {
			continue
		}
		if a.Total == b.Total {
			t.Fatalf("%s: measured stats must change the timing (both %v)", p.Name(), a.Total)
		}
		if b.Total <= 0 {
			t.Fatalf("%s: non-positive iteration time", p.Name())
		}
	}
}
