package pipeline

import (
	"fmt"
	"time"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
	"hotline/internal/train"
)

// FabricMeasurement is one functional training run over a real fabric
// transport: the measured wall clock the transport spent moving gather and
// scatter traffic — numbers the analytic cost.AllToAllTime model can be
// compared against — plus the bit-parity evidence (final loss and maximum
// parameter divergence) against the in-proc reference run of the identical
// stream.
type FabricMeasurement struct {
	// Fabric is the transport's Name() ("inproc", "unix", "tcp").
	Fabric string
	Nodes  int
	Depth  int
	Iters  int
	// FinalLoss is the last iteration's training loss.
	FinalLoss float64
	// MaxStateDiff is the largest absolute parameter difference vs the
	// in-proc reference run; 0 means bit-identical training.
	MaxStateDiff float64
	// GatherWallPerIter / ScatterWallPerIter are the measured per-iteration
	// wall-clock totals the transport spent on fetches and scatter pushes.
	GatherWallPerIter  time.Duration
	ScatterWallPerIter time.Duration
	// A2ABytesPerIter is the accounted all-to-all volume per iteration (the
	// quantity the analytic model prices).
	A2ABytesPerIter int64
	// Stats is the full training-side counter snapshot of the measured run.
	Stats shard.Stats
}

// fabricProbeShape shrinks cfg to the functional probe the fabric runs
// train: the access stream (and therefore the fabric traffic) is untouched,
// the MLPs are small so the run is dominated by what we are measuring.
func fabricProbeShape(cfg data.Config) data.Config {
	fn := cfg
	fn.Samples = 2048
	fn.BotMLP = []int{cfg.BotMLP[0], 64, cfg.EmbedDim}
	fn.TopMLP = []int{64, 1}
	return fn
}

// MeasureFabric is MeasureFabricDepth for one transport network at the
// given node count, with the probe's default iteration budget.
func MeasureFabric(cfg data.Config, nodes, depth int, network string) (FabricMeasurement, error) {
	return MeasureFabricDepth(cfg, nodes, depth, network, 8, 256)
}

// MeasureFabricDepth trains the pipelined Hotline executor functionally on a
// down-scaled copy of cfg twice over sharded services — once on the in-proc
// fast path as the reference, once over the requested fabric network
// ("inproc" skips the second run) — and returns the fabric run's measured
// gather/scatter wall clock together with its parity against the reference.
// The fabric run starts one NodeServer per node behind a real socket
// (unix sockets in a temp dir, or loopback TCP on port 0), so the wall
// times are honest kernel-crossing numbers even without separate OS
// processes.
func MeasureFabricDepth(cfg data.Config, nodes, depth int, network string, iters, batch int) (FabricMeasurement, error) {
	if network == "" || network == "inproc" {
		return MeasureFabricOver(cfg, nodes, depth, iters, batch, nil)
	}
	fab, err := shard.StartLocalFabric(nodes, network, 0, nil)
	if err != nil {
		return FabricMeasurement{}, fmt.Errorf("pipeline: start %s fabric: %w", network, err)
	}
	defer fab.Close()
	return MeasureFabricOver(cfg, nodes, depth, iters, batch, fab.Transport)
}

// MeasureFabricOver is MeasureFabricDepth over an already-connected
// transport — the caller owns the fabric's lifetime (e.g. the hotline-bench
// coordinator dialing real hotline-node worker processes). A nil transport
// measures only the in-proc reference run.
func MeasureFabricOver(cfg data.Config, nodes, depth int, iters, batch int, fabric shard.Transport) (FabricMeasurement, error) {
	if nodes < 2 {
		return FabricMeasurement{}, fmt.Errorf("pipeline: fabric measurement needs >= 2 nodes, got %d", nodes)
	}
	if depth < 1 {
		depth = train.DefaultPipelineDepth()
	}
	fn := fabricProbeShape(cfg)
	const seed = 42

	runOne := func(tr shard.Transport) (float64, *model.Model, shard.Stats, error) {
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: DefaultShardCacheBytes(fn),
			RowBytes: int64(fn.EmbedDim) * 4,
		}, nil)
		if tr != nil {
			svc.SetTransport(tr)
		}
		defer svc.Close()
		t := train.NewHotlineSharded(model.New(fn, seed), 0.1, svc)
		t.OverlapGather = true
		t.Depth = depth
		t.LearnSamples = 512
		gen := data.NewGenerator(fn)
		batches := make([]*data.Batch, iters)
		for i := range batches {
			batches[i] = gen.NextBatch(batch)
		}
		svc.ResetStats()
		var loss float64
		for i := 0; i < iters; i++ {
			end := i + depth
			if end > iters {
				end = iters
			}
			loss = t.StepLookahead(batches[i], batches[i+1:end])
		}
		return loss, t.M, svc.Snapshot(), svc.FabricErr()
	}

	refLoss, refM, refStats, err := runOne(nil)
	if err != nil {
		return FabricMeasurement{}, fmt.Errorf("pipeline: in-proc reference run: %w", err)
	}

	m := FabricMeasurement{
		Fabric: "inproc", Nodes: nodes, Depth: depth, Iters: iters,
		FinalLoss:          refLoss,
		GatherWallPerIter:  refStats.GatherWall / time.Duration(iters),
		ScatterWallPerIter: refStats.ScatterWall / time.Duration(iters),
		A2ABytesPerIter:    refStats.A2ABytes() / int64(iters),
		Stats:              refStats,
	}
	if fabric == nil {
		return m, nil
	}

	loss, fm, stats, err := runOne(fabric)
	if err != nil {
		return FabricMeasurement{}, fmt.Errorf("pipeline: %s fabric run: %w", fabric.Name(), err)
	}
	m.Fabric = fabric.Name()
	m.FinalLoss = loss
	m.MaxStateDiff = model.MaxStateDiff(refM, fm)
	m.GatherWallPerIter = stats.GatherWall / time.Duration(iters)
	m.ScatterWallPerIter = stats.ScatterWall / time.Duration(iters)
	m.A2ABytesPerIter = stats.A2ABytes() / int64(iters)
	m.Stats = stats
	if loss != refLoss {
		return m, fmt.Errorf("pipeline: %s fabric diverged from in-proc: loss %v vs %v", fabric.Name(), loss, refLoss)
	}
	return m, nil
}
