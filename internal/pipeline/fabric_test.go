package pipeline

import (
	"testing"

	"hotline/internal/data"
)

// TestMeasureFabricDepthParity runs the fabric measurement end to end over
// unix sockets: the socket run must train bit-identically to the in-proc
// reference (exact loss, zero parameter divergence) and report non-zero
// measured gather and scatter wall clock.
func TestMeasureFabricDepthParity(t *testing.T) {
	m, err := MeasureFabricDepth(data.CriteoKaggle(), 2, 2, "unix", 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fabric != "unix" {
		t.Fatalf("fabric = %q want unix", m.Fabric)
	}
	if m.MaxStateDiff != 0 {
		t.Fatalf("socket fabric diverged from in-proc: max diff %g", m.MaxStateDiff)
	}
	if m.GatherWallPerIter <= 0 || m.ScatterWallPerIter <= 0 {
		t.Fatalf("expected measured wall times, got gather %v scatter %v",
			m.GatherWallPerIter, m.ScatterWallPerIter)
	}
	if m.A2ABytesPerIter <= 0 {
		t.Fatalf("no accounted all-to-all volume: %d", m.A2ABytesPerIter)
	}

	// The in-proc shortcut skips the socket runs entirely and reports a
	// zero scatter wall (a shared address space moves no scatter bytes).
	ref, err := MeasureFabricDepth(data.CriteoKaggle(), 2, 2, "inproc", 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Fabric != "inproc" {
		t.Fatalf("fabric = %q want inproc", ref.Fabric)
	}
	if ref.ScatterWallPerIter != 0 {
		t.Fatalf("in-proc scatter wall = %v want 0", ref.ScatterWallPerIter)
	}
	if ref.FinalLoss != m.FinalLoss {
		t.Fatalf("reference loss %v != fabric loss %v", ref.FinalLoss, m.FinalLoss)
	}
}
