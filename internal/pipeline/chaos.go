//hotline:typed-errors

package pipeline

import (
	"fmt"
	"time"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
	"hotline/internal/shard/chaos"
	"hotline/internal/train"
)

// ChaosMeasurement is one functional training run through an injected fault:
// a peer killed mid-pipeline by a deterministic chaos schedule, recovered
// under the requested policy, with the recovery costs measured and the
// bit-parity evidence against the fault-free in-proc reference attached.
type ChaosMeasurement struct {
	Fabric string
	Nodes  int
	Depth  int
	Iters  int
	// Policy is the recovery policy's name ("redial" or "adopt").
	Policy string
	// Schedule is the applied chaos schedule, rendered ("w1:kill(1) ...").
	Schedule string
	// FinalLoss / MaxStateDiff are the parity evidence vs the fault-free
	// in-proc reference run of the identical stream; MaxStateDiff 0 means
	// the recovered run trained bit-identically through the fault.
	FinalLoss    float64
	MaxStateDiff float64
	// RecoveryWall is the measured wall clock recovery took: the transport's
	// successful re-dial recoveries plus the service's failover work.
	RecoveryWall time.Duration
	// Redials / Adoptions count transport re-dials and shard failovers.
	Redials   int
	Adoptions int
	// MigratedBytes is the row payload failover moved to new owners;
	// ResyncBytes is the payload re-dial recovery pushed to restore
	// restarted (empty) nodes; RefetchedRows counts rows whose window
	// fetches were replayed through recovery re-routing.
	MigratedBytes int64
	ResyncBytes   int64
	RefetchedRows int64
	// StaleServeRows counts rows the serve probe answered from the warmed
	// mirror while the peer was down (graceful degradation, not errors).
	StaleServeRows int64
	// Stats is the training-side counter snapshot of the chaos run.
	Stats shard.Stats
}

// MeasureChaos trains the pipelined executor functionally on a down-scaled
// copy of cfg twice — fault-free in-proc as the reference, then over a chaos
// fabric (one killable NodeServer per node) where the schedule kills the
// highest-numbered peer at window 1: under RecoverRedial the peer restarts
// on a new address after restartAfter and the transport re-dials it; under
// RecoverAdopt it stays dead and the survivors adopt its shard. Each window
// also issues one serve-path gather, so an outage's graceful degradation
// (StaleServeRows) is measured in the same run. The returned measurement
// carries the recovery costs and the bit-parity evidence; an error means
// the run did not recover.
func MeasureChaos(cfg data.Config, nodes, depth int, network string,
	iters, batch int, policy shard.RecoveryPolicy, restartAfter time.Duration) (ChaosMeasurement, error) {
	if nodes < 2 {
		return ChaosMeasurement{}, fmt.Errorf("chaos measurement needs >= 2 nodes, got %d: %w", nodes, shard.ErrFabricConfig)
	}
	if depth < 1 {
		depth = train.DefaultPipelineDepth()
	}
	fn := fabricProbeShape(cfg)
	const seed = 42
	victim := nodes - 1

	var sched chaos.Schedule
	retry := shard.RetryConfig{}
	switch policy {
	case shard.RecoverRedial:
		sched = chaos.KillRestart(victim, 1, restartAfter)
		retry.MaxRedials = 40
		retry.Budget = 30 * time.Second
	case shard.RecoverAdopt:
		sched = chaos.Kill(victim, 1)
		retry.MaxAttempts = 1
		retry.MaxRedials = 2
		retry.Backoff = func(int) time.Duration { return 0 }
	default:
		return ChaosMeasurement{}, fmt.Errorf("chaos measurement needs a recovery policy, got %v: %w", policy, shard.ErrFabricConfig)
	}

	runOne := func(fab *chaos.Fabric) (float64, *model.Model, *shard.Service, error) {
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: DefaultShardCacheBytes(fn),
			RowBytes: int64(fn.EmbedDim) * 4,
		}, nil)
		var rt *shard.ResilientTransport
		if fab != nil {
			svc.SetRecovery(shard.RecoveryConfig{Policy: policy})
			var err error
			if rt, err = fab.Dial(retry); err != nil {
				svc.Close()
				return 0, nil, nil, err
			}
			svc.SetTransport(rt)
		}
		t := train.NewHotlineSharded(model.New(fn, seed), 0.1, svc)
		t.OverlapGather = true
		t.Depth = depth
		t.LearnSamples = 512
		gen := data.NewGenerator(fn)
		batches := make([]*data.Batch, iters)
		for i := range batches {
			batches[i] = gen.NextBatch(batch)
		}
		svc.ResetStats()
		var loss float64
		for i := 0; i < iters; i++ {
			if fab != nil {
				fab.Tick(i)
				serveProbe(svc, batches[i])
			}
			end := i + depth
			if end > iters {
				end = iters
			}
			loss = t.StepLookahead(batches[i], batches[i+1:end])
		}
		return loss, t.M, svc, svc.FabricErr()
	}

	refLoss, refM, refSvc, err := runOne(nil)
	if err != nil {
		return ChaosMeasurement{}, fmt.Errorf("chaos in-proc reference run: %w", err)
	}
	refSvc.Close()

	fab, err := chaos.NewFabric(nodes, network, shard.FabricTimeouts{})
	if err != nil {
		return ChaosMeasurement{}, err
	}
	defer fab.Close()
	fab.SetSchedule(sched)
	loss, fm, svc, err := runOne(fab)
	if err != nil {
		if svc != nil {
			svc.Close()
		}
		return ChaosMeasurement{}, fmt.Errorf("chaos %s run (%s): %w", policy, sched, err)
	}

	m := ChaosMeasurement{
		Fabric: network, Nodes: nodes, Depth: depth, Iters: iters,
		Policy:       policy.String(),
		Schedule:     sched.String(),
		FinalLoss:    loss,
		MaxStateDiff: model.MaxStateDiff(refM, fm),
		Stats:        svc.Snapshot(),
	}
	rec := svc.RecoveryStats()
	m.Adoptions = rec.Adoptions
	m.MigratedBytes = rec.MigratedBytes
	m.ResyncBytes = rec.ResyncBytes
	m.RefetchedRows = rec.Refetches
	m.RecoveryWall = rec.RecoveryWall
	if rt, ok := svc.Transport().(*shard.ResilientTransport); ok {
		m.RecoveryWall += rt.RecoveryWall()
	}
	for _, h := range svc.PeerHealth() {
		m.Redials += h.Redials
	}
	m.StaleServeRows = svc.ServeSnapshot().StaleServeRows
	svc.Close()
	if loss != refLoss {
		return m, fmt.Errorf("chaos %s run diverged from fault-free reference: loss %v vs %v: %w",
			policy, loss, refLoss, shard.ErrPeerDead)
	}
	return m, nil
}

// serveProbe issues one serve-path gather for the batch's first sparse
// table, exercising graceful degradation while a peer is down. Serve-side
// staging comes from the gatherer ring and is released immediately; the
// training counters never move.
func serveProbe(svc *shard.Service, b *data.Batch) {
	g := svc.Gatherer()
	if g == nil || len(b.Sparse) == 0 {
		return
	}
	plan := svc.PlanServeGather(0, b.Sparse[0])
	if plan == nil {
		return
	}
	dim := svc.Config().RowBytes / 4
	st := svc.ServeGatherSync(plan, int(dim), func(row int32, dst []float32) {})
	g.Release(st)
}
