// Package pipeline implements the training-pipeline timing models that the
// paper evaluates against each other: the hybrid CPU-GPU baseline
// (Intel-optimized DLRM), XDL's parameter server, FAE's static popularity
// scheduler, the GPU-only HugeCTR mode, the lookahead ScratchPipe-Ideal,
// a CPU-based Hotline variant, and Hotline itself.
//
// Every pipeline consumes the same Workload (model shapes, batch size,
// system config, measured popularity statistics) and the same cost models,
// so differences between pipelines come only from where embeddings live and
// what overlaps with what — the paper's actual claim surface.
//
// In the DESIGN.md layering the package sits above internal/cost and
// internal/sim and below internal/experiments. Workloads carry measured
// inputs from the functional layers: MeasureStats probes popular-input and
// cold-lookup fractions, and MeasureShardStats (backed by internal/shard)
// replaces the analytic fractions with cache hit-rates and all-to-all
// volumes measured against real sharded-cache state.
package pipeline
