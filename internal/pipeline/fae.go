package pipeline

import "hotline/internal/cost"

// FAE models the FAE baseline [Adnan et al., VLDB'22]: an offline profiler
// statically marks hot embeddings, which are replicated in GPU HBM. Training
// then alternates between popular mini-batches (all accesses hot — run
// entirely on GPUs, data parallel) and non-popular mini-batches (run in the
// classic hybrid mode). FAE does not pipeline the two, pays embedding
// coherence synchronisation when switching between modes (its hot copies
// must be flushed/reloaded between CPU and GPU), and its offline profiler
// adds ~15% of training time that the original work did not account for
// (paper §VII-B2).
type FAE struct {
	hybrid *Hybrid
	// BatchesPerPhase is how many same-kind mini-batches FAE's scheduler
	// groups between mode switches (amortises coherence syncs).
	BatchesPerPhase int
	// ProfilerFrac is the offline-profiling overhead fraction.
	ProfilerFrac float64
}

// NewFAE returns the FAE baseline.
func NewFAE() *FAE {
	return &FAE{hybrid: NewIntelDLRM(), BatchesPerPhase: 64, ProfilerFrac: 0.15}
}

// Name implements Pipeline.
func (f *FAE) Name() string { return "FAE" }

// Iteration returns the popularity-weighted steady-state iteration:
// PopularFrac of mini-batches run as popular, the rest hybrid.
func (f *FAE) Iteration(w Workload) IterStats {
	pop := f.popularIteration(w)
	hyb := f.hybrid.Iteration(w)

	p := w.PopularFrac
	ph := Breakdown{}
	for k, v := range pop.Phases {
		ph[k] += scaleDur(v, p)
	}
	for k, v := range hyb.Phases {
		ph[k] += scaleDur(v, 1-p)
	}

	// Coherence: on each popular<->non-popular transition the hot tier is
	// synchronised over PCIe (paper footnote 1 / Figure 20). Two
	// transitions per phase pair, amortised over the batches in a phase.
	syncBytes := w.HotBytesFull / 16 // dirty fraction of the hot tier
	sync := scaleDur(w.Sys.PCIe.Transfer(syncBytes), 2.0/float64(f.BatchesPerPhase))
	ph[PhaseComm] += sync

	// Offline profiler overhead, charged against training time.
	ph[PhaseOverhead] += scaleDur(ph.Total(), f.ProfilerFrac)

	return IterStats{Total: ph.Total(), Phases: ph}
}

// popularIteration times an all-popular mini-batch: embeddings are
// replicated on every GPU, so the batch runs data-parallel with hot
// embedding gradients joining the dense all-reduce. No CPU involvement.
func (f *FAE) popularIteration(w Workload) IterStats {
	sys := w.Sys
	nGPU := sys.TotalGPUs()
	ph := Breakdown{}

	perGPULookups := w.TotalLookups() / int64(nGPU)
	ph[PhaseEmbFwd] = cost.GPUEmbLookupTime(sys.GPU, perGPULookups, w.RowBytes())

	fwd, bwd := w.gpuDenseTime(w.PerGPUBatch())
	ph[PhaseMLPFwd] = fwd
	ph[PhaseBwd] = bwd

	gradBytes := w.DenseParamBytes() + w.PooledEmbBytes(w.PerGPUBatch())
	ph[PhaseAllReduce] = cost.HierarchicalAllReduceTime(sys, gradBytes)

	touched := dedupRows(perGPULookups)
	ph[PhaseOpt] = cost.GPUEmbUpdateTime(sys.GPU, touched, w.RowBytes()) +
		cost.GPUMLPTime(sys.GPU, w.DenseParamBytes()/2, 2)

	ph[PhaseOverhead] = cost.PerIterHostOverhead
	return IterStats{Total: ph.Total(), Phases: ph}
}
