package pipeline

import (
	"fmt"
	"sync"
	"time"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/model"
	"hotline/internal/shard"
	"hotline/internal/train"
)

// ShardMeasurement carries *measured* sharding statistics for a workload:
// the timing models use these fractions instead of the analytic
// cold-lookup × dedup products when a workload was built sharded. All
// fractions are relative to total embedding lookups and are scale-free, so
// measurements taken on the downscaled functional tables apply to the
// paper-scale lookup counts the pipelines price.
type ShardMeasurement struct {
	Nodes             int
	CacheBytesPerNode int64
	// Policy is the device-cache eviction policy the measurement ran under
	// (part of the memo identity — a policy ablation must never read stats
	// measured under a different policy).
	Policy shard.Policy
	// Placement names the row-ownership policy the measurement ran under
	// (round-robin, capacity-weighted, hot-aware).
	Placement string
	// HitRate is the device-cache hit rate over remote lookups.
	HitRate float64
	// LocalFrac is the fraction of lookups served by the requesting node's
	// own shard (what hot-aware placement raises).
	LocalFrac float64
	// RemoteFrac is the fraction of lookups that land on a remote shard
	// before any caching (the GPU-only all-to-all exchange fraction).
	RemoteFrac float64
	// GatherFrac is the fraction of lookups that cross the fabric after
	// caching and intra-iteration dedup (Hotline's cold-gather fraction).
	GatherFrac float64
	// ScatterFrac is the gradient push-back fraction after per-node
	// pre-reduction.
	ScatterFrac float64
	// A2ABytesPerIter is the measured gather+scatter volume per iteration
	// at the measurement batch size, on the scaled tables (scenario
	// reporting; the pipelines rescale via the fractions above).
	A2ABytesPerIter int64
	// CacheOccupancy is the mean device-cache fill after warm-up.
	CacheOccupancy float64
	// Quant names the device caches' precision tiering the measurement ran
	// under ("fp32" when quantization is off). Part of the memo identity: a
	// quantized cache's hit rate must never answer a full-precision probe.
	Quant string
	// QuantHitFrac is the fraction of device-cache hits served from the
	// narrow warm tier through the fused dequantize-gather kernel.
	QuantHitFrac float64
	// CacheRows is the steady-state device-cache entry count summed over
	// nodes — at a fixed byte budget the narrow warm tiers hold 2-4x more
	// rows than fp32, which is what moves HitRate and the all-to-all bytes.
	CacheRows int
	// Evictions counts device-cache displacements during the measured
	// window (cache-pressure indicator for the ablations).
	Evictions int64
	// PipelineDepth is the prefetch pipeline depth k the overlap
	// measurement ran at (how many gather windows may be in flight at
	// once); 0 means no overlap measurement was taken.
	PipelineDepth int
	// OverlapMeasured reports that a functional overlap run (the
	// mn-overlap / mn-depth scenarios) measured ExposedFrac; the zero
	// value means unmeasured, so the timing models keep their analytic
	// overlap schedule unless a measurement was made explicitly.
	OverlapMeasured bool
	// ExposedFrac is the measured fraction of the fabric gather that stays
	// on the critical path under the async overlap engine (0 = fully
	// hidden, 1 = fully exposed). Only meaningful when OverlapMeasured is
	// set; the Hotline timing model then prices the exposed share instead
	// of its analytic overlap schedule.
	ExposedFrac float64
	// Fabric names the transport a real-fabric measurement ran over
	// ("unix", "tcp"); empty means the fabric numbers below are unset and
	// the timing models rely on the analytic AllToAllTime alone.
	Fabric string
	// GatherWallPerIter / ScatterWallPerIter are the measured per-iteration
	// wall-clock totals the fabric transport spent on gather fetches and
	// scatter pushes (MeasureFabricDepth) — the empirical counterparts to
	// the analytic all-to-all model.
	GatherWallPerIter  time.Duration
	ScatterWallPerIter time.Duration
}

// SetFabric records a fabric measurement's wall-clock numbers on the
// workload's shard statistics.
func (m *ShardMeasurement) SetFabric(fm FabricMeasurement) {
	m.Fabric = fm.Fabric
	m.GatherWallPerIter = fm.GatherWallPerIter
	m.ScatterWallPerIter = fm.ScatterWallPerIter
}

// SetExposedFrac records a measured exposed-gather fraction (clamped to
// [0, 1]) and marks the measurement present.
func (m *ShardMeasurement) SetExposedFrac(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	m.ExposedFrac, m.OverlapMeasured = f, true
}

// ShardProbe configures one MeasureShard measurement.
type ShardProbe struct {
	// Nodes is the simulated node count.
	Nodes int
	// CacheBytes is the per-node device-cache budget (0 = pure remote).
	CacheBytes int64
	// Batch is the replayed mini-batch size.
	Batch int
	// Policy selects the device-cache eviction policy.
	Policy shard.Policy
	// Placement selects the row-ownership policy.
	Placement shard.PlacementKind
	// HBMBytes are the real per-node HBM byte budgets PlaceCapacity
	// derives its ownership weights from (a heterogeneous cluster where
	// some nodes hold more device memory than others). Empty means a
	// homogeneous cluster: every node gets the probe's CacheBytes budget.
	HBMBytes []int64
	// Quant selects the device caches' precision tiering (shard.QuantOff
	// reproduces the fp32-only cache bit for bit). Capacity-weighted
	// placement reprices its ownership weights off the effective row
	// footprint: a node's HBM budget holds CacheBytes / WarmWidth.RowBytes
	// rows, so narrowing the warm tier raises the rows-per-node weights
	// the partitioner spreads ownership by.
	Quant shard.QuantMode
}

// shardStatsCache memoises measurements per full probe identity.
var shardStatsCache sync.Map // string -> ShardMeasurement

// shardStatsMu serialises first-time measurement like workloadStatsMu.
var shardStatsMu sync.Mutex

// measureIters is how many post-warm-up iterations a measurement averages.
const measureIters = 4

// measureWarmup is how many iterations run before counters reset.
const measureWarmup = 2

// MeasureShardStats replays a real access stream against a sharded service
// under the given eviction policy (round-robin ownership): it profiles an
// epoch, builds the access-aware placement (the EAL-learned hot set),
// preloads the hot rows into the per-node device caches, streams warm-up
// batches, then measures steady-state cache hit-rates and gather/scatter
// volumes over several iterations. Results are memoised per configuration
// — the policy is part of the memo identity — and deterministic for any
// concurrency.
func MeasureShardStats(cfg data.Config, nodes int, cacheBytes int64, batch int, policy shard.Policy) ShardMeasurement {
	return MeasureShard(cfg, ShardProbe{
		Nodes: nodes, CacheBytes: cacheBytes, Batch: batch, Policy: policy,
	})
}

// MeasureShard is MeasureShardStats with the full probe surface: eviction
// policy plus ownership placement (round-robin, capacity-weighted with
// optional per-node weights, or hot-aware — popular rows pinned to their
// dominant requesting node, counted over the same stream the measurement
// replays).
func MeasureShard(cfg data.Config, p ShardProbe) ShardMeasurement {
	key := fmt.Sprintf("%s/%d/%d/%d/%s/%s/%v/%s",
		cfg.Name, p.Nodes, p.CacheBytes, p.Batch, p.Policy, p.Placement, p.HBMBytes, p.Quant)
	if v, ok := shardStatsCache.Load(key); ok {
		return v.(ShardMeasurement)
	}
	shardStatsMu.Lock()
	defer shardStatsMu.Unlock()
	if v, ok := shardStatsCache.Load(key); ok {
		return v.(ShardMeasurement)
	}

	probe := cfg
	if probe.Samples > 4096 {
		probe.Samples = 4096
	}
	batch := p.Batch
	if batch > 2048 {
		batch = 2048
	}
	prof := data.ProfileEpoch(data.NewGenerator(probe), 512)
	placement := embedding.PlacementFromCounts(
		prof.Counts(), probe.NumTables, probe.EmbedDim, data.ScaledHotBudget(probe))

	part := buildPartitioner(probe, p, batch, placement)
	svc := shard.New(shard.Config{
		Nodes: p.Nodes, CacheBytes: p.CacheBytes, RowBytes: int64(probe.EmbedDim) * 4,
		Policy: p.Policy, Part: part, Quant: p.Quant,
	}, placement)
	// Replicate the learned hot set (bounded caches keep what fits).
	for t := 0; t < probe.NumTables; t++ {
		svc.Preload(t, placement.HotRows(t))
	}

	gen := data.NewGenerator(probe)
	iteration := func() {
		b := gen.NextBatch(batch)
		for t := range b.Sparse {
			svc.RecordGather(t, b.Sparse[t])
			svc.RecordScatter(t, b.Sparse[t])
		}
	}
	for i := 0; i < measureWarmup; i++ { // warm-up: cache state reaches steady flow
		iteration()
	}
	svc.ResetStats()
	before := svc.CacheEvictions()
	for i := 0; i < measureIters; i++ {
		iteration()
	}
	st := svc.Snapshot()

	m := ShardMeasurement{
		Nodes:             p.Nodes,
		CacheBytesPerNode: p.CacheBytes,
		Policy:            p.Policy,
		Placement:         svc.Config().Placement(),
		HitRate:           st.HitRate(),
		LocalFrac:         st.LocalFrac(),
		RemoteFrac:        st.RemoteFrac(),
		GatherFrac:        st.GatherFrac(),
		ScatterFrac:       st.ScatterFrac(),
		A2ABytesPerIter:   st.A2ABytes() / measureIters,
		CacheOccupancy:    svc.CacheOccupancy(),
		Evictions:         svc.CacheEvictions() - before,
		Quant:             p.Quant.String(),
		CacheRows:         svc.CacheEntries(),
	}
	if st.CacheHits > 0 {
		m.QuantHitFrac = float64(st.QuantHits) / float64(st.CacheHits)
	}
	shardStatsCache.Store(key, m)
	return m
}

// buildPartitioner realises a probe's placement policy. The hot-aware
// partitioner counts per-node requests over exactly the batches the
// measurement will replay (a fresh generator yields the identical stream),
// then pins each popular row to its dominant requester.
func buildPartitioner(probe data.Config, p ShardProbe, batch int, hot shard.HotClassifier) shard.Partitioner {
	switch p.Placement {
	case shard.PlaceCapacity:
		// Ownership weights derive from the real per-node HBM byte
		// budgets: heterogeneous budgets from the probe, else every node's
		// device budget from the probe's CacheBytes (a pure-remote probe
		// degenerates to the uniform one-row-per-node weighting). Under a
		// quantized warm tier the same bytes hold more rows, so the weights
		// are priced at the effective (warm-width) row footprint.
		rowBytes := p.Quant.WarmWidth().RowBytes(probe.EmbedDim)
		hbm := p.HBMBytes
		if len(hbm) == 0 {
			hbm = make([]int64, p.Nodes)
			for i := range hbm {
				hbm[i] = max(p.CacheBytes, rowBytes)
			}
		}
		return shard.NewCapacityWeightedHBM(hbm, rowBytes)
	case shard.PlaceHotAware:
		rc := shard.NewRequestCounter(p.Nodes)
		gen := data.NewGenerator(probe)
		for i := 0; i < measureWarmup+measureIters; i++ {
			b := gen.NextBatch(batch)
			for t := range b.Sparse {
				rc.Observe(t, b.Sparse[t])
			}
		}
		return rc.HotAware(hot)
	default:
		return shard.NewRoundRobin(p.Nodes)
	}
}

// DefaultShardCacheBytes is the per-node device-cache budget used when none
// is given: the dataset's scaled hot-set budget, i.e. each node can hold
// one full replica of the learned hot set (the paper's ≤512 MB HBM tier).
func DefaultShardCacheBytes(cfg data.Config) int64 { return data.ScaledHotBudget(cfg) }

// overlapCache memoises MeasureOverlapExposedDepth per (dataset, nodes,
// cache budget, depth). The fraction is a wall-clock measurement, so
// memoising keeps every workload built in one process — and the concurrent
// experiment sweep — consistent.
var overlapCache sync.Map // string -> float64

// overlapMu serialises first-time overlap measurement.
var overlapMu sync.Mutex

// MeasureOverlapExposed is MeasureOverlapExposedDepth at the executors'
// current default pipeline depth (train.DefaultPipelineDepth — 2 unless
// hotline.PipelineDepth / hotline-bench -depth moved it), so workloads
// price the overlap of the pipeline the executors actually run.
func MeasureOverlapExposed(cfg data.Config, nodes int, cacheBytes int64) float64 {
	return MeasureOverlapExposedDepth(cfg, nodes, cacheBytes, train.DefaultPipelineDepth())
}

// MeasureOverlapExposedDepth trains the pipelined Hotline executor
// functionally on a down-sampled copy of cfg over a sharded service with
// the given per-node device-cache budget (<= 0 selects the scaled hot-set
// default) — once with synchronous staged gathers, once with the depth-k
// prefetch pipeline (classification and fabric gathers for the next k-1
// mini-batches issued while iteration i finishes, dirty rows delta-
// repaired) — and returns the measured fraction of gather wall time the
// pipeline left exposed, in [0, 1]. Both the cache budget and the depth
// are part of the memo identity: a cache-starved topology has far more
// gather traffic to hide, and a deeper pipeline has more compute to hide
// it under, so exposure must be measured under the same knobs the
// workload's gather stats were.
//
// The probe shrinks the MLPs (the access stream, and therefore the gather
// traffic, is untouched); less compute per iteration means less time to
// hide traffic under, so the returned fraction is a conservative estimate
// of what the full model would hide. The mn-overlap and mn-depth scenarios
// measure the production-shape model and override the workload's fraction
// with it.
func MeasureOverlapExposedDepth(cfg data.Config, nodes int, cacheBytes int64, depth int) float64 {
	if nodes <= 1 {
		return 0
	}
	if cacheBytes <= 0 {
		cacheBytes = DefaultShardCacheBytes(cfg)
	}
	if depth < 1 {
		depth = train.DefaultPipelineDepth()
	}
	if depth == 1 {
		// The depth-1 pipeline's only window belongs to the consuming
		// forward, so it runs the synchronous code path verbatim — its
		// exposure is 1 by construction, and timing the ratio of two
		// identical runs would only measure scheduler noise.
		return 1
	}
	key := fmt.Sprintf("%s/%d/%d/%d", cfg.Name, nodes, cacheBytes, depth)
	if v, ok := overlapCache.Load(key); ok {
		return v.(float64)
	}
	overlapMu.Lock()
	defer overlapMu.Unlock()
	if v, ok := overlapCache.Load(key); ok {
		return v.(float64)
	}

	fn := cfg
	fn.Samples = 2048
	fn.BotMLP = []int{cfg.BotMLP[0], 64, cfg.EmbedDim}
	fn.TopMLP = []int{64, 1}
	const iters, batch, seed = 8, 256, 42
	runOne := func(overlap bool) shard.OverlapStats {
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: cacheBytes,
			RowBytes: int64(fn.EmbedDim) * 4,
		}, nil)
		tr := train.NewHotlineSharded(model.New(fn, seed), 0.1, svc)
		tr.OverlapGather = overlap
		tr.Depth = depth
		tr.LearnSamples = 512
		gen := data.NewGenerator(fn)
		batches := make([]*data.Batch, iters)
		for i := range batches {
			batches[i] = gen.NextBatch(batch)
		}
		for i := 0; i < iters; i++ {
			end := i + depth
			if end > iters {
				end = iters
			}
			tr.StepLookahead(batches[i], batches[i+1:end])
		}
		return svc.Gatherer().Stats()
	}
	syncStats := runOne(false)
	overStats := runOne(true)
	f := shard.ExposedFrac(overStats, syncStats)
	overlapCache.Store(key, f)
	return f
}

// NewShardedWorkload is NewShardedWorkloadDepth at the executors' current
// default pipeline depth.
func NewShardedWorkload(cfg data.Config, batch int, sys cost.System, cacheBytes int64) Workload {
	return NewShardedWorkloadDepth(cfg, batch, sys, cacheBytes, train.DefaultPipelineDepth())
}

// NewShardedWorkloadDepth assembles a workload whose timing models consume
// measured sharding statistics (sys.Nodes simulated nodes, cacheBytes of
// device cache per node, LRU caches over round-robin ownership) instead of
// the analytic popularity fractions. The exposed-gather fraction is also
// measured — the depth-k pipelined async engine against its synchronous
// baseline (MeasureOverlapExposedDepth) — so every mn-* scenario prices
// overlap from measurement by default instead of the analytic overlap
// schedule, at the pipeline depth the scenario sweeps.
func NewShardedWorkloadDepth(cfg data.Config, batch int, sys cost.System, cacheBytes int64, depth int) Workload {
	w := NewWorkload(cfg, batch, sys)
	if cacheBytes <= 0 {
		cacheBytes = DefaultShardCacheBytes(cfg)
	}
	if depth < 1 {
		depth = train.DefaultPipelineDepth()
	}
	m := MeasureShardStats(cfg, sys.Nodes, cacheBytes, batch, shard.PolicyLRU)
	if sys.Nodes > 1 {
		m.PipelineDepth = depth
		m.SetExposedFrac(MeasureOverlapExposedDepth(cfg, sys.Nodes, cacheBytes, depth))
	}
	w.Shard = &m
	return w
}
