package pipeline

import (
	"fmt"
	"sync"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/shard"
)

// ShardMeasurement carries *measured* sharding statistics for a workload:
// the timing models use these fractions instead of the analytic
// cold-lookup × dedup products when a workload was built sharded. All
// fractions are relative to total embedding lookups and are scale-free, so
// measurements taken on the downscaled functional tables apply to the
// paper-scale lookup counts the pipelines price.
type ShardMeasurement struct {
	Nodes             int
	CacheBytesPerNode int64
	// HitRate is the device-cache hit rate over remote lookups.
	HitRate float64
	// RemoteFrac is the fraction of lookups that land on a remote shard
	// before any caching (the GPU-only all-to-all exchange fraction).
	RemoteFrac float64
	// GatherFrac is the fraction of lookups that cross the fabric after
	// caching and intra-iteration dedup (Hotline's cold-gather fraction).
	GatherFrac float64
	// ScatterFrac is the gradient push-back fraction after per-node
	// pre-reduction.
	ScatterFrac float64
	// A2ABytesPerIter is the measured gather+scatter volume per iteration
	// at the measurement batch size, on the scaled tables (scenario
	// reporting; the pipelines rescale via the fractions above).
	A2ABytesPerIter int64
	// CacheOccupancy is the mean device-cache fill after warm-up.
	CacheOccupancy float64
	// Evictions counts device-cache displacements during the measured
	// window (cache-pressure indicator for the ablations).
	Evictions int64
}

// shardStatsCache memoises measurements per (dataset, nodes, cache, batch).
var shardStatsCache sync.Map // string -> ShardMeasurement

// shardStatsMu serialises first-time measurement like workloadStatsMu.
var shardStatsMu sync.Mutex

// measureIters is how many post-warm-up iterations a measurement averages.
const measureIters = 4

// MeasureShardStats replays a real access stream against a sharded service:
// it profiles an epoch, builds the access-aware placement (the EAL-learned
// hot set), preloads the hot rows into the per-node device caches, streams
// warm-up batches, then measures steady-state cache hit-rates and
// gather/scatter volumes over several iterations. Results are memoised per
// configuration and deterministic for any concurrency.
func MeasureShardStats(cfg data.Config, nodes int, cacheBytes int64, batch int) ShardMeasurement {
	key := fmt.Sprintf("%s/%d/%d/%d", cfg.Name, nodes, cacheBytes, batch)
	if v, ok := shardStatsCache.Load(key); ok {
		return v.(ShardMeasurement)
	}
	shardStatsMu.Lock()
	defer shardStatsMu.Unlock()
	if v, ok := shardStatsCache.Load(key); ok {
		return v.(ShardMeasurement)
	}

	probe := cfg
	if probe.Samples > 4096 {
		probe.Samples = 4096
	}
	if batch > 2048 {
		batch = 2048
	}
	prof := data.ProfileEpoch(data.NewGenerator(probe), 512)
	placement := embedding.PlacementFromCounts(
		prof.Counts(), probe.NumTables, probe.EmbedDim, data.ScaledHotBudget(probe))

	svc := shard.New(shard.Config{
		Nodes: nodes, CacheBytes: cacheBytes, RowBytes: int64(probe.EmbedDim) * 4,
	}, placement)
	// Replicate the learned hot set (bounded caches keep what fits).
	for t := 0; t < probe.NumTables; t++ {
		svc.Preload(t, placement.HotRows(t))
	}

	gen := data.NewGenerator(probe)
	iteration := func() {
		b := gen.NextBatch(batch)
		for t := range b.Sparse {
			svc.RecordGather(t, b.Sparse[t])
			svc.RecordScatter(t, b.Sparse[t])
		}
	}
	for i := 0; i < 2; i++ { // warm-up: cache state reaches steady flow
		iteration()
	}
	svc.ResetStats()
	before := svc.CacheEvictions()
	for i := 0; i < measureIters; i++ {
		iteration()
	}
	st := svc.Snapshot()

	m := ShardMeasurement{
		Nodes:             nodes,
		CacheBytesPerNode: cacheBytes,
		HitRate:           st.HitRate(),
		RemoteFrac:        st.RemoteFrac(),
		GatherFrac:        st.GatherFrac(),
		ScatterFrac:       st.ScatterFrac(),
		A2ABytesPerIter:   st.A2ABytes() / measureIters,
		CacheOccupancy:    svc.CacheOccupancy(),
		Evictions:         svc.CacheEvictions() - before,
	}
	shardStatsCache.Store(key, m)
	return m
}

// DefaultShardCacheBytes is the per-node device-cache budget used when none
// is given: the dataset's scaled hot-set budget, i.e. each node can hold
// one full replica of the learned hot set (the paper's ≤512 MB HBM tier).
func DefaultShardCacheBytes(cfg data.Config) int64 { return data.ScaledHotBudget(cfg) }

// NewShardedWorkload assembles a workload whose timing models consume
// measured sharding statistics (sys.Nodes simulated nodes, cacheBytes of
// device cache per node) instead of the analytic popularity fractions.
func NewShardedWorkload(cfg data.Config, batch int, sys cost.System, cacheBytes int64) Workload {
	w := NewWorkload(cfg, batch, sys)
	if cacheBytes <= 0 {
		cacheBytes = DefaultShardCacheBytes(cfg)
	}
	m := MeasureShardStats(cfg, sys.Nodes, cacheBytes, batch)
	w.Shard = &m
	return w
}
