package pipeline

import (
	"testing"
	"testing/quick"

	"hotline/internal/cost"
	"hotline/internal/data"
)

// Property: for any plausible workload parameters, every pipeline yields a
// positive iteration whose phase breakdown sums exactly to the total, and
// never schedules anything acausally.
func TestPipelineInvariantsProperty(t *testing.T) {
	cfg := data.CriteoKaggle()
	f := func(batchRaw uint16, gpusRaw, popRaw, coldRaw uint8) bool {
		batch := 256 + int(batchRaw)%16128
		gpus := []int{1, 2, 4}[int(gpusRaw)%3]
		w := NewWorkload(cfg, batch, cost.PaperSystem(gpus))
		w.PopularFrac = 0.05 + float64(popRaw%90)/100
		w.ColdLookupFrac = 0.001 + float64(coldRaw%40)/100
		for _, p := range All() {
			st := p.Iteration(w)
			if st.OOM {
				continue
			}
			if st.Total <= 0 {
				return false
			}
			if st.Phases.Total() != st.Total {
				return false
			}
			for _, d := range st.Phases {
				if d < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: iteration time is monotone non-decreasing in batch size for
// every pipeline (more work can never be faster under the same system).
func TestBatchMonotonicityProperty(t *testing.T) {
	cfg := data.Avazu()
	sys := cost.PaperSystem(4)
	f := func(seedRaw uint16) bool {
		small := 512 + int(seedRaw)%4096
		large := small * 2
		for _, p := range All() {
			a := p.Iteration(NewWorkload(cfg, small, sys))
			b := p.Iteration(NewWorkload(cfg, large, sys))
			if a.OOM || b.OOM {
				continue
			}
			if b.Total < a.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the no-overlap ablation can never beat pipelined Hotline.
func TestOverlapNeverHurtsProperty(t *testing.T) {
	cfg := data.CriteoTerabyte()
	f := func(popRaw, coldRaw uint8, gpusRaw uint8) bool {
		gpus := []int{1, 2, 4}[int(gpusRaw)%3]
		w := NewWorkload(cfg, 4096, cost.PaperSystem(gpus))
		w.PopularFrac = 0.05 + float64(popRaw%90)/100
		w.ColdLookupFrac = 0.001 + float64(coldRaw%40)/100
		serial := NewHotlineNoOverlap().Iteration(w)
		piped := NewHotline().Iteration(w)
		return piped.Total <= serial.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hotline never OOMs and never loses meaningfully to the
// CPU-segregation variant. At very small batches the µ-batch split's extra
// dispatch can slightly exceed the (cheap) CPU work it hides, so the bound
// allows a few percent of slack; at 2K+ batches Hotline must win outright.
func TestHotlineDominatesCPUVariantProperty(t *testing.T) {
	f := func(dsRaw, gpusRaw uint8, batchRaw uint16) bool {
		cfgs := data.AllDatasets()
		cfg := cfgs[int(dsRaw)%len(cfgs)]
		gpus := []int{1, 2, 4}[int(gpusRaw)%3]
		batch := 512 + int(batchRaw)%8192
		w := NewWorkload(cfg, batch, cost.PaperSystem(gpus))
		hl := NewHotline().Iteration(w)
		hc := NewHotlineCPU().Iteration(w)
		if hl.OOM {
			return false
		}
		if batch >= 2048 {
			return hl.Total <= hc.Total
		}
		return float64(hl.Total) <= float64(hc.Total)*1.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
