package pipeline

import "hotline/internal/cost"

// GPUOnly models the GPU-only mode (paper Figure 1b) as implemented by
// HugeCTR: the embedding tables are sharded (model-parallel) across all
// GPU HBMs, every iteration exchanges pooled embeddings with all-to-all
// collectives in both directions, and the dense network runs data-parallel
// with an all-reduce. The mode OOMs when the paper-scale embedding bytes
// exceed aggregate HBM capacity — Figures 22 and 30's failure cases.
type GPUOnly struct {
	name string
	// cached reports whether embeddings come from a GPU-resident cache fed
	// by lookahead prefetch (ScratchPipe-Ideal) instead of full residency:
	// no OOM, and prefetch traffic rides PCIe concurrently (ideal RAW
	// relaxation per §VII-E).
	cached bool
	// mgmtFrac is per-iteration cache management overhead (ScratchPipe).
	mgmtFrac float64
}

// NewHugeCTR returns the NVIDIA HugeCTR-style GPU-only baseline.
func NewHugeCTR() *GPUOnly { return &GPUOnly{name: "HugeCTR"} }

// NewScratchPipeIdeal returns the idealised re-implementation of
// ScratchPipe (§VII-E): a GPU cache holds every working row (relaxed RAW),
// so capacity never OOMs, but the sharded cache still needs all-to-all.
func NewScratchPipeIdeal() *GPUOnly {
	return &GPUOnly{name: "ScratchPipe-Ideal", cached: true, mgmtFrac: 0.04}
}

// Name implements Pipeline.
func (g *GPUOnly) Name() string { return g.name }

// FitsMemory reports whether the paper-scale embeddings fit aggregate HBM.
func (g *GPUOnly) FitsMemory(w Workload) bool {
	if g.cached {
		return true
	}
	return w.Cfg.FullEmbeddingBytes() <= int64(w.Sys.TotalGPUs())*w.Sys.GPU.HBMBytes
}

// Iteration times one steady-state mini-batch.
func (g *GPUOnly) Iteration(w Workload) IterStats {
	if !g.FitsMemory(w) {
		return IterStats{OOM: true}
	}
	sys := w.Sys
	nGPU := sys.TotalGPUs()
	ph := Breakdown{}

	// 1. Each GPU gathers its shard's lookups out of HBM.
	perGPULookups := w.TotalLookups() / int64(nGPU)
	ph[PhaseEmbFwd] = cost.GPUEmbLookupTime(sys.GPU, perGPULookups, w.RowBytes())

	// 2. Forward all-to-all: pooled vectors travel to their sample's owner.
	// A sharded workload prices the measured remote-row exchange instead of
	// the analytic pooled-activation estimate.
	a2aBytes := w.PooledEmbBytes(w.Batch) / int64(nGPU)
	if w.Shard != nil {
		a2aBytes = scaleI64(w.TotalLookups(), w.Shard.RemoteFrac) * w.RowBytes() / int64(nGPU)
	}
	a2aFwd := cost.CrossNodeAllToAllTime(sys, a2aBytes)

	// 3. Dense network, data parallel.
	fwd, bwd := w.gpuDenseTime(w.PerGPUBatch())
	ph[PhaseMLPFwd] = fwd
	ph[PhaseBwd] = bwd

	// 4. Dense all-reduce and gradient all-to-all back to shard owners.
	ph[PhaseAllReduce] = cost.HierarchicalAllReduceTime(sys, w.DenseParamBytes())
	a2aBwd := cost.CrossNodeAllToAllTime(sys, a2aBytes)
	ph[PhaseA2A] = a2aFwd + a2aBwd

	// 5. Sparse update in HBM plus dense SGD.
	touched := dedupRows(perGPULookups)
	ph[PhaseOpt] = cost.GPUEmbUpdateTime(sys.GPU, touched, w.RowBytes()) +
		cost.GPUMLPTime(sys.GPU, w.DenseParamBytes()/2, 2)

	// 6. Host loop; ScratchPipe adds cache management. Its prefetch of the
	// next batch's rows rides PCIe under GPU compute — exposed only if the
	// transfer outruns the compute.
	overhead := cost.PerIterHostOverhead
	if g.cached {
		prefetch := cost.DMAGatherTime(sys, dedupRows(w.TotalLookups()), w.RowBytes())
		computeTime := ph.Total()
		if prefetch > computeTime {
			overhead += prefetch - computeTime
		}
		overhead += scaleDur(ph.Total(), g.mgmtFrac)
	}
	ph[PhaseOverhead] = overhead

	return IterStats{Total: ph.Total(), Phases: ph}
}
