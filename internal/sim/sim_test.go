package sim

import (
	"testing"
	"testing/quick"
)

func TestUnits(t *testing.T) {
	if Microseconds(1) != 1000 || Milliseconds(1) != 1e6 || SecondsDur(1) != 1e9 {
		t.Fatal("unit constructors wrong")
	}
	if Milliseconds(2.5).Millis() != 2.5 {
		t.Fatal("Millis roundtrip wrong")
	}
	if Time(1500).String() != "1.500µs" {
		t.Fatalf("String = %s", Time(1500).String())
	}
	if Time(42).String() != "42ns" {
		t.Fatalf("String = %s", Time(42).String())
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime(1, 5, 3) != 5 || MaxTime() != 0 {
		t.Fatal("MaxTime wrong")
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("gpu0")
	s1, e1 := r.Schedule(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first booking [%d,%d)", s1, e1)
	}
	// Ready at 5 but resource busy until 10.
	s2, e2 := r.Schedule(5, 20)
	if s2 != 10 || e2 != 30 {
		t.Fatalf("second booking [%d,%d)", s2, e2)
	}
	// Ready after free: starts at ready.
	s3, _ := r.Schedule(100, 1)
	if s3 != 100 {
		t.Fatalf("third booking starts %d", s3)
	}
	r.Reset()
	if r.Free() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestScheduleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource("x").Schedule(0, -1)
}

func TestRecorderAggregation(t *testing.T) {
	rec := &Recorder{}
	rec.Record("gpu0", "fwd", 0, 10)
	rec.Record("gpu0", "bwd", 10, 30)
	rec.Record("pcie", "fwd", 5, 9)
	by := rec.BusyByPhase()
	if by["fwd"] != 14 || by["bwd"] != 20 {
		t.Fatalf("BusyByPhase = %v", by)
	}
	res := rec.BusyByResource()
	if res["gpu0"] != 30 || res["pcie"] != 4 {
		t.Fatalf("BusyByResource = %v", res)
	}
	if rec.Makespan() != 30 {
		t.Fatalf("Makespan = %d", rec.Makespan())
	}
}

func TestRecorderRejectsBackwardSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Recorder{}).Record("r", "p", 10, 5)
}

func TestCheckNoOverlap(t *testing.T) {
	rec := &Recorder{}
	rec.Record("gpu0", "a", 0, 10)
	rec.Record("gpu0", "b", 10, 20)
	rec.Record("gpu1", "a", 5, 15) // different resource: fine
	if err := rec.CheckNoOverlap(); err != nil {
		t.Fatalf("no overlap expected: %v", err)
	}
	rec.Record("gpu0", "c", 15, 25)
	if err := rec.CheckNoOverlap(); err == nil {
		t.Fatal("overlap should be detected")
	}
}

// Property: any sequence of Schedule calls on one resource yields
// non-overlapping, causally ordered spans.
func TestScheduleCausalityProperty(t *testing.T) {
	f := func(readies []uint16, durs []uint16) bool {
		r := NewResource("x")
		rec := &Recorder{}
		n := len(readies)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			s, e := r.Schedule(Time(readies[i]), Duration(durs[i]))
			if s < Time(readies[i]) || e != s+Duration(durs[i]) {
				return false
			}
			rec.Record("x", "p", s, e)
		}
		return rec.CheckNoOverlap() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
