// Package sim provides the discrete-event substrate of the performance
// model: simulated time, serially reusable resources with calendar
// scheduling, and span recording for timeline analysis.
//
// The paper's training pipelines are deterministic dataflows (every
// iteration issues the same operations), so resources use calendar-based
// scheduling: a task on a resource starts at max(readyTime, resourceFree)
// and occupies it for its duration. Pipelines compose these calendars to
// model overlap (e.g. Hotline hiding parameter gathering under popular
// µ-batch execution) and the recorder keeps the resulting spans for
// breakdown figures.
//
// In the DESIGN.md layering this is the root of the performance-model
// stack: internal/cost prices work in sim time and internal/pipeline
// schedules it on sim resources.
package sim
