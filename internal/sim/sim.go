package sim

import (
	"fmt"
	"sort"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Unit constructors.
func Nanoseconds(n float64) Duration  { return Duration(n) }
func Microseconds(u float64) Duration { return Duration(u * 1e3) }
func Milliseconds(m float64) Duration { return Duration(m * 1e6) }
func SecondsDur(s float64) Duration   { return Duration(s * 1e9) }

// Seconds converts a Time/Duration to float seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Millis converts to float milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Micros converts to float microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	switch {
	case t >= 1e9:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= 1e6:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= 1e3:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// MaxTime returns the later of the given times.
func MaxTime(ts ...Time) Time {
	var m Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// Resource is a serially reusable device (a GPU stream, a PCIe link, the
// CPU memory subsystem, the accelerator). Zero value is a free resource at
// time 0.
type Resource struct {
	Name string
	free Time
}

// NewResource returns a named resource, free from time 0.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Free returns the time at which the resource next becomes available.
func (r *Resource) Free() Time { return r.free }

// Schedule books the resource for d starting no earlier than ready, and
// returns the booked [start, end) interval. d must be non-negative.
func (r *Resource) Schedule(ready Time, d Duration) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative duration %d on %s", d, r.Name))
	}
	start = ready
	if r.free > start {
		start = r.free
	}
	end = start + d
	r.free = end
	return start, end
}

// Reset makes the resource free at time 0 again.
func (r *Resource) Reset() { r.free = 0 }

// Span is one recorded occupancy interval.
type Span struct {
	Resource string
	Phase    string
	Start    Time
	End      Time
}

// Dur returns the span length.
func (s Span) Dur() Duration { return s.End - s.Start }

// Recorder collects spans for breakdown and Gantt-style analyses.
type Recorder struct {
	Spans []Span
}

// Record appends a span. Zero-length spans are kept (they carry phase
// attribution for instantaneous events).
func (r *Recorder) Record(resource, phase string, start, end Time) {
	if end < start {
		panic(fmt.Sprintf("sim: span end %d before start %d (%s/%s)", end, start, resource, phase))
	}
	r.Spans = append(r.Spans, Span{Resource: resource, Phase: phase, Start: start, End: end})
}

// BusyByPhase sums span durations per phase label. Note this is occupancy,
// not critical-path time; overlapped spans both count.
func (r *Recorder) BusyByPhase() map[string]Duration {
	out := make(map[string]Duration)
	for _, s := range r.Spans {
		out[s.Phase] += s.Dur()
	}
	return out
}

// BusyByResource sums span durations per resource.
func (r *Recorder) BusyByResource() map[string]Duration {
	out := make(map[string]Duration)
	for _, s := range r.Spans {
		out[s.Resource] += s.Dur()
	}
	return out
}

// Makespan returns the latest span end time (0 for an empty recorder).
func (r *Recorder) Makespan() Time {
	var m Time
	for _, s := range r.Spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// CheckNoOverlap verifies that no two spans on the same resource overlap —
// the causality invariant of calendar scheduling. It returns the first
// violating pair, if any.
func (r *Recorder) CheckNoOverlap() error {
	byRes := make(map[string][]Span)
	for _, s := range r.Spans {
		byRes[s.Resource] = append(byRes[s.Resource], s)
	}
	for res, spans := range byRes {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End {
				return fmt.Errorf("sim: overlap on %s: [%v,%v) and [%v,%v)",
					res, spans[i-1].Start, spans[i-1].End, spans[i].Start, spans[i].End)
			}
		}
	}
	return nil
}
