package model

import (
	"math"
	"testing"

	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/metrics"
	"hotline/internal/nn"
	"hotline/internal/tensor"
)

// tiny returns a small DLRM config that trains fast in tests.
func tiny() data.Config {
	return data.Config{
		Name: "tiny", RM: "T1",
		DenseFeatures: 4, NumTables: 3,
		FullRowsPerTable:   []int64{1000, 500, 200},
		ScaledRowsPerTable: []int{100, 50, 20},
		LookupsPerTable:    1, ZipfS: 1.1, DriftPerDay: 0.1, HotFracRows: 0.3,
		EmbedDim: 8,
		BotMLP:   []int{4, 16, 8},
		TopMLP:   []int{16, 1},
		Samples:  512, Seed: 42, ScaleFactor: 10, FullSizeGB: 0.001,
	}
}

// tinySeq returns a small TBSM config.
func tinySeq() data.Config {
	c := tiny()
	c.Name = "tinyseq"
	c.TimeSteps = 5
	c.Attention = true
	return c
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(tiny(), 7), New(tiny(), 7)
	if !DenseStateEqual(a, b) || !SparseStateEqual(a, b) {
		t.Fatal("same seed must give identical models")
	}
	c := New(tiny(), 8)
	if DenseStateEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestForwardShape(t *testing.T) {
	cfg := tiny()
	m := New(cfg, 1)
	g := data.NewGenerator(cfg)
	b := g.NextBatch(16)
	logits := m.Forward(b)
	if logits.Rows != 16 || logits.Cols != 1 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestTBSMForwardShape(t *testing.T) {
	cfg := tinySeq()
	m := New(cfg, 1)
	if !m.IsTBSM() {
		t.Fatal("config with TimeSteps>1 must build TBSM")
	}
	g := data.NewGenerator(cfg)
	b := g.NextBatch(8)
	logits := m.Forward(b)
	if logits.Rows != 8 || logits.Cols != 1 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestTrainStepReducesLossDLRM(t *testing.T) {
	cfg := tiny()
	m := New(cfg, 2)
	g := data.NewGenerator(cfg)
	b := g.NextBatch(256)
	first := m.TrainStep(b, 0.1)
	var last float64
	for i := 0; i < 60; i++ {
		last = m.TrainStep(b, 0.1)
	}
	if last > first-0.02 {
		t.Fatalf("loss did not fall: first %g last %g", first, last)
	}
}

func TestTrainStepReducesLossTBSM(t *testing.T) {
	cfg := tinySeq()
	m := New(cfg, 2)
	g := data.NewGenerator(cfg)
	b := g.NextBatch(128)
	first := m.TrainStep(b, 0.1)
	var last float64
	for i := 0; i < 60; i++ {
		last = m.TrainStep(b, 0.1)
	}
	if last > first-0.01 {
		t.Fatalf("TBSM loss did not fall: first %g last %g", first, last)
	}
}

func TestTrainingImprovesAUC(t *testing.T) {
	cfg := tiny()
	cfg.Samples = 2048
	m := New(cfg, 3)
	g := data.NewGenerator(cfg)
	eval := data.NewGenerator(cfg)
	eval.SetDay(0)
	evalBatch := eval.NextBatch(1024)

	before := metrics.AUC(m.Predict(evalBatch), evalBatch.Labels)
	for i := 0; i < 40; i++ {
		m.TrainStep(g.NextBatch(128), 0.1)
	}
	after := metrics.AUC(m.Predict(evalBatch), evalBatch.Labels)
	if after < before+0.02 || after < 0.55 {
		t.Fatalf("AUC should improve: before %.3f after %.3f", before, after)
	}
}

// Model-level gradient check for the full DLRM composite.
func TestModelGradCheck(t *testing.T) {
	cfg := tiny()
	m := New(cfg, 4)
	g := data.NewGenerator(cfg)
	b := g.NextBatch(6)

	loss := func() float64 {
		return nn.BCELossOnly(m.Forward(b), b.Labels, nn.ReduceSum)
	}
	m.ZeroAll()
	logits := m.Forward(b)
	_, grad := nn.BCEWithLogits(logits, b.Labels, nn.ReduceSum)
	m.Backward(grad, 1)

	params := m.DenseParams()
	for _, pi := range []int{0, len(params) - 1} {
		p := params[pi]
		for _, i := range []int{0, len(p.Value.Data) / 2} {
			const eps = 1e-2
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := loss()
			p.Value.Data[i] = orig - eps
			lm := loss()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(p.Grad.Data[i])) > 2e-2*math.Max(0.1, math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g numeric %g", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

// Gradient accumulation: two Backward calls over µ-batches must equal one
// Backward over the full batch — the heart of the Hotline parity claim.
func TestMicroBatchGradientAccumulation(t *testing.T) {
	cfg := tiny()
	b := data.NewGenerator(cfg).NextBatch(10)
	popIdx := []int{0, 2, 4, 6, 8}
	nonIdx := []int{1, 3, 5, 7, 9}

	full := New(cfg, 9)
	full.ZeroAll()
	logits := full.Forward(b)
	_, g := nn.BCEWithLogits(logits, b.Labels, nn.ReduceSum)
	full.Backward(g, 1)

	split := New(cfg, 9)
	split.ZeroAll()
	for _, idx := range [][]int{popIdx, nonIdx} {
		sub := b.Subset(idx)
		lg := split.Forward(sub)
		_, sg := nn.BCEWithLogits(lg, sub.Labels, nn.ReduceSum)
		split.Backward(sg, 1)
	}

	pf, ps := full.DenseParams(), split.DenseParams()
	for i := range pf {
		if d := tensor.MaxAbsDiff(pf[i].Grad, ps[i].Grad); d > 2e-4 {
			t.Fatalf("param %s grads diverge by %g", pf[i].Name, d)
		}
	}
}

func TestApplySparseClearsPending(t *testing.T) {
	cfg := tiny()
	m := New(cfg, 5)
	b := data.NewGenerator(cfg).NextBatch(4)
	logits := m.Forward(b)
	_, g := nn.BCEWithLogits(logits, b.Labels, nn.ReduceMean)
	m.Backward(g, 1)
	if len(m.pendingSparse) == 0 {
		t.Fatal("Backward should stash sparse grads")
	}
	table0 := m.Tables[0].(*embedding.Table)
	before := table0.W.Clone()
	m.ApplySparse(0.5)
	if len(m.pendingSparse) != 0 {
		t.Fatal("ApplySparse must clear the stash")
	}
	if tensor.MaxAbsDiff(before, table0.W) == 0 {
		t.Fatal("ApplySparse should change embeddings")
	}
	after := table0.W.Clone()
	m.ApplySparse(0.5) // no-op now
	if tensor.MaxAbsDiff(after, table0.W) != 0 {
		t.Fatal("second ApplySparse must be a no-op")
	}
}

func TestBackwardScale(t *testing.T) {
	cfg := tiny()
	b := data.NewGenerator(cfg).NextBatch(8)

	a := New(cfg, 11)
	a.ZeroAll()
	la := a.Forward(b)
	_, ga := nn.BCEWithLogits(la, b.Labels, nn.ReduceSum)
	a.Backward(ga, 0.125)

	c := New(cfg, 11)
	c.ZeroAll()
	lc := c.Forward(b)
	_, gc := nn.BCEWithLogits(lc, b.Labels, nn.ReduceMean) // mean = sum/8
	c.Backward(gc, 1)

	pa, pc := a.DenseParams(), c.DenseParams()
	for i := range pa {
		if d := tensor.MaxAbsDiff(pa[i].Grad, pc[i].Grad); d > 1e-5 {
			t.Fatalf("scaled grads diverge by %g", d)
		}
	}
}

func TestParameterCounts(t *testing.T) {
	cfg := tiny()
	m := New(cfg, 1)
	dense, sparse := m.ParameterCounts()
	if sparse != (100+50+20)*8 {
		t.Fatalf("sparse params %d", sparse)
	}
	if dense <= 0 {
		t.Fatal("dense params must be positive")
	}
}

func TestTable2ModelsConstruct(t *testing.T) {
	for _, cfg := range data.AllDatasets() {
		m := New(cfg, 1)
		dense, sparse := m.ParameterCounts()
		if dense == 0 || sparse == 0 {
			t.Fatalf("%s: empty model", cfg.Name)
		}
		if cfg.RM == "RM1" && !m.IsTBSM() {
			t.Fatal("RM1 must be TBSM")
		}
		if cfg.RM != "RM1" && m.IsTBSM() {
			t.Fatalf("%s must be DLRM", cfg.RM)
		}
		// one real forward/backward pass on a small batch
		g := data.NewGenerator(cfg)
		b := g.NextBatch(4)
		logits := m.Forward(b)
		_, grad := nn.BCEWithLogits(logits, b.Labels, nn.ReduceMean)
		m.Backward(grad, 1)
		m.ApplySparse(0.01)
	}
}
