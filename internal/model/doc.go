// Package model assembles full recommendation models from the nn and
// embedding substrates: DLRM (RM2, RM3, RM4 and the SYN models) and TBSM
// (RM1, with a behaviour-sequence table and an attention layer), following
// the architectures in the paper's Table II.
//
// A Model supports full functional training (forward, backward, SGD), with
// gradient accumulation across multiple Backward calls so the Hotline
// executor can run popular and non-popular µ-batches separately and update
// once — the mechanism behind the paper's accuracy-parity proof (Eq. 5).
//
// In the DESIGN.md layering the package sits between the kernel layers
// (tensor/nn/embedding) and the executors (train). Sparse parameters live
// behind the embedding.Bag interface: ShardEmbeddings swaps the single-node
// tables for shard-service-backed bags without changing any training math,
// and NewShadow provides the weight-sharing shadows the concurrent µ-batch
// executor needs.
package model
