package model

import (
	"fmt"
	"slices"

	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/nn"
	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// Model is a DLRM or TBSM instance.
//
// Forward/backward state (layer outputs, the TBSM sequence scratch, the
// gradient-scale staging) lives in per-instance buffers reused across
// steps, so a steady-state training iteration performs no allocations.
// Matrices returned by Forward are therefore valid only until the next
// Forward call on the same model; shadows own fully private scratch.
type Model struct {
	Cfg data.Config

	Bot   *nn.MLP
	Top   *nn.MLP
	Inter *nn.DotInteraction
	Attn  *nn.Attention // non-nil only for TBSM configs
	// Tables is the sparse parameter set behind the Bag interface: plain
	// single-node tables by default, ShardedBags after ShardEmbeddings.
	Tables embedding.Bags

	// pendingSparse accumulates sparse gradients across Backward calls
	// until ApplySparse or ZeroAll.
	pendingSparse []tableGrad

	// forward caches
	lastBatch    *data.Batch
	lastStepIdx  [][][]int32 // TBSM: per step, per sample index lists for table 0
	lastSeqSteps []*tensor.Matrix

	// reusable scratch
	denseParams []nn.Param       // memoised DenseParams result
	inputsBuf   []*tensor.Matrix // interaction inputs, one slot per vector
	gradScaled  tensor.Matrix    // Backward's scaled-gradient staging
	fws         tensor.Workspace // per-Forward workspace (TBSM sequence state)
	optWS       tensor.Workspace // sparse-optimizer merge workspace
	sgd         *nn.SGD          // TrainStep's cached dense optimizer
	bceGrad     tensor.Matrix    // TrainStep's loss-gradient buffer
}

type tableGrad struct {
	table int
	grad  embedding.SparseGrad
	scale float32
}

// New builds a model with deterministic initial weights derived from seed.
// Two models built from the same config and seed are bit-identical.
func New(cfg data.Config, seed uint64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := tensor.NewRNG(seed)
	m := &Model{Cfg: cfg}
	m.Bot = nn.NewMLP(cfg.BotMLP, true, rng)
	m.Inter = nn.NewDotInteraction(cfg.EmbedDim, cfg.NumTables)
	topSizes := append([]int{m.Inter.OutWidth()}, cfg.TopMLP...)
	m.Top = nn.NewMLP(topSizes, false, rng)
	if cfg.TimeSteps > 1 {
		m.Attn = nn.NewAttention(cfg.EmbedDim, cfg.TimeSteps)
	}
	m.Tables = embedding.NewTables(cfg.ScaledRowsPerTable, cfg.EmbedDim, rng).Bags()
	return m
}

// ShardEmbeddings partitions every embedding table across the nodes of a
// shard.Service (row-wise, with per-node hot-entry device caches). The
// model's training math is bit-identical before and after — only the
// simulated row placement and the service's traffic accounting change.
// It panics if the embeddings are already sharded.
func (m *Model) ShardEmbeddings(svc *shard.Service) {
	for t, b := range m.Tables {
		tab, ok := b.(*embedding.Table)
		if !ok {
			panic("model: embeddings already sharded")
		}
		m.Tables[t] = embedding.ShardBag(tab, svc, t)
	}
}

// IsTBSM reports whether the model carries the attention/sequence structure.
func (m *Model) IsTBSM() bool { return m.Attn != nil }

// sparsePrefetcher is implemented by bags that can gather a µ-batch's
// remote rows asynchronously (embedding.ShardedBag on a service with an
// async engine).
type sparsePrefetcher interface {
	Prefetch(indices [][]int32)
	AbortPrefetch()
}

// PrefetchSparse issues asynchronous gathers for every embedding access the
// batch will make, on bags that support prefetching. The eventual
// Forward(b) consumes the staged rows; the Hotline executor calls this for
// the non-popular µ-batch before dispatching the popular one — and, in the
// depth-k cross-iteration pipeline, for up to k-1 FUTURE mini-batches
// right after the current sparse update — overlapping the fabric traffic
// with compute. Windows are registered FIFO per bag, and rows a later
// sparse update rewrites are delta-repaired before consumption, so staging
// ahead never changes training state. The TBSM sequence table is skipped
// (its per-timestep index sets are built inside Forward) and everything
// else is a no-op on non-prefetching bags.
//
//hotline:hotpath
func (m *Model) PrefetchSparse(b *data.Batch) {
	for t, bag := range m.Tables {
		if m.IsTBSM() && t == 0 {
			continue
		}
		if p, ok := bag.(sparsePrefetcher); ok {
			p.Prefetch(b.Sparse[t])
		}
	}
}

// AbortPrefetchSparse joins and discards every outstanding prefetch window
// (the whole staged lookahead, however deep). The pipelined executor calls
// it when a lookahead speculated on batches that are not the ones actually
// trained next, so a stale window can never be consumed against a reused
// index buffer.
func (m *Model) AbortPrefetchSparse() {
	for _, bag := range m.Tables {
		if p, ok := bag.(sparsePrefetcher); ok {
			p.AbortPrefetch()
		}
	}
}

// NewShadow returns a model that shares m's parameter storage (dense weights
// and embedding tables) but owns private gradient accumulators, sparse-grad
// stash and forward caches. Two µ-batches can then run forward/backward
// concurrently — parameters are only read during the passes — and the
// shadow's gradients are folded back with AbsorbShadow. The shadow stays
// valid across updates because all optimizers mutate parameters in place.
func NewShadow(m *Model) *Model {
	s := &Model{Cfg: m.Cfg}
	s.Bot = m.Bot.Shadow()
	s.Top = m.Top.Shadow()
	s.Inter = nn.NewDotInteraction(m.Cfg.EmbedDim, m.Cfg.NumTables)
	if m.Attn != nil {
		s.Attn = nn.NewAttention(m.Cfg.EmbedDim, m.Cfg.TimeSteps)
	}
	s.Tables = m.Tables.Shadow()
	return s
}

// AbsorbShadow folds a shadow's accumulated gradients into m: dense
// gradients add into m's accumulators in parameter order, and the shadow's
// stashed sparse gradients append after m's own (fixed reduction order, so
// the combined update is deterministic for any worker count).
//
//hotline:hotpath
func (m *Model) AbsorbShadow(s *Model) {
	pm, ps := m.DenseParams(), s.DenseParams()
	if len(pm) != len(ps) {
		panic("model: AbsorbShadow across different architectures")
	}
	for i := range pm {
		tensor.AxpyInto(pm[i].Grad, 1, ps[i].Grad)
	}
	m.pendingSparse = append(m.pendingSparse, s.pendingSparse...) //hotline:allow hotalloc sparse stash; converges to the per-step entry count
	s.pendingSparse = s.pendingSparse[:0]
}

// serveForwarder is implemented by bags with a dedicated read path
// (ShardedBag routes serve traffic into separate counters and bypasses the
// prefetch-window machinery; Table simply skips arming Backward).
type serveForwarder interface {
	ServeForward(indices [][]int32) *tensor.Matrix
}

// bagForward dispatches one table lookup down the training or the serving
// path. Every in-tree bag implements serveForwarder; the Forward fallback
// keeps external Bag implementations working on the serve path too.
//
//hotline:hotpath
func bagForward(b embedding.Bag, indices [][]int32, serve bool) *tensor.Matrix {
	if serve {
		if sf, ok := b.(serveForwarder); ok {
			return sf.ServeForward(indices)
		}
	}
	return b.Forward(indices)
}

// Forward computes the logits (B x 1) for a batch. The returned matrix is
// scratch owned by the top MLP, valid until the next Forward call.
//
//hotline:hotpath
func (m *Model) Forward(b *data.Batch) *tensor.Matrix { return m.forward(b, false) }

// forward is the shared forward pass. With serve set it takes the read-only
// inference path: embedding lookups go through ServeForward (serve-side
// traffic accounting, no prefetch-window interaction) and the batch is not
// cached for Backward — a serve pass between a train Forward and its
// Backward on DIFFERENT instances of the same weights perturbs nothing.
// Dense-layer activations are still instance scratch either way, so serve
// traffic runs on shadows (NewShadow), never on the training instance.
//
//hotline:hotpath
func (m *Model) forward(b *data.Batch, serve bool) *tensor.Matrix {
	if !serve {
		m.lastBatch = b
	}
	m.fws.Reset()
	z0 := m.Bot.Forward(b.Dense)
	if m.inputsBuf == nil {
		m.inputsBuf = make([]*tensor.Matrix, m.Cfg.NumTables+1) //hotline:allow hotalloc lazy one-time input-slice init
	}
	inputs := m.inputsBuf
	inputs[0] = z0
	for t := 0; t < m.Cfg.NumTables; t++ {
		if m.IsTBSM() && t == 0 {
			inputs[t+1] = m.forwardSequence(b, serve)
			continue
		}
		inputs[t+1] = bagForward(m.Tables[t], b.Sparse[t], serve)
	}
	feat := m.Inter.Forward(inputs)
	return m.Top.Forward(feat)
}

// forwardSequence runs the TBSM behaviour-sequence table: one embedding
// lookup per timestep, pooled by the attention layer. Step outputs are
// copied into the per-forward workspace (the sequence table reuses one
// lookup buffer across timesteps) and the per-step index lists are rebuilt
// into reusable slabs.
func (m *Model) forwardSequence(b *data.Batch, serve bool) *tensor.Matrix {
	steps := m.Cfg.TimeSteps
	n := b.Size()
	if m.lastStepIdx == nil {
		m.lastStepIdx = make([][][]int32, steps)
		m.lastSeqSteps = make([]*tensor.Matrix, steps)
	}
	for s := 0; s < steps; s++ {
		idx := m.lastStepIdx[s]
		if cap(idx) < n {
			idx = make([][]int32, n)
		}
		idx = idx[:n]
		slab := m.fws.Int32(n)
		for i := 0; i < n; i++ {
			seq := b.Sparse[0][i]
			if len(seq) != steps {
				panic(fmt.Sprintf("model: sample %d sequence len %d want %d", i, len(seq), steps))
			}
			slab[i] = seq[s]
			idx[i] = slab[i : i+1 : i+1]
		}
		m.lastStepIdx[s] = idx
		out := bagForward(m.Tables[0], idx, serve)
		seqOut := m.fws.Matrix(out.Rows, out.Cols)
		copy(seqOut.Data, out.Data)
		m.lastSeqSteps[s] = seqOut
	}
	return m.Attn.Forward(m.lastSeqSteps)
}

// Backward accumulates gradients for dL/dlogits. Dense parameter gradients
// add into the MLP accumulators; sparse gradients are stashed (scaled by
// scale) until ApplySparse. Multiple Backward calls between updates model
// µ-batch accumulation.
//
//hotline:hotpath
func (m *Model) Backward(gradLogits *tensor.Matrix, scale float32) {
	if m.lastBatch == nil {
		panic("model: Backward before Forward")
	}
	g := gradLogits
	if scale != 1 {
		g = m.gradScaled.CopyFrom(gradLogits)
		tensor.Scale(g, scale)
	}
	gFeat := m.Top.Backward(g)
	gInputs := m.Inter.Backward(gFeat)
	m.Bot.Backward(gInputs[0])
	for t := 0; t < m.Cfg.NumTables; t++ {
		gEmb := gInputs[t+1]
		if m.IsTBSM() && t == 0 {
			stepGrads := m.Attn.Backward(gEmb)
			for s, sg := range stepGrads {
				spg := m.Tables[0].BackwardIndices(m.lastStepIdx[s], sg)
				m.pendingSparse = append(m.pendingSparse, tableGrad{table: 0, grad: spg, scale: 1}) //hotline:allow hotalloc sparse stash; converges to the per-step entry count
			}
			continue
		}
		spg := m.Tables[t].BackwardIndices(m.lastBatch.Sparse[t], gEmb)
		m.pendingSparse = append(m.pendingSparse, tableGrad{table: t, grad: spg, scale: 1}) //hotline:allow hotalloc sparse stash; converges to the per-step entry count
	}
}

// DenseParams returns every dense trainable parameter. The slice is
// memoised — parameter storage is stable for the life of the model — so
// per-step optimizer and gradient-zeroing paths allocate nothing.
func (m *Model) DenseParams() []nn.Param {
	if m.denseParams == nil {
		m.denseParams = append(m.Bot.Params(), m.Top.Params()...)
	}
	return m.denseParams
}

// ApplySparse applies all stashed sparse gradients with the learning rate
// and clears the stash. Application order is deterministic (stash order).
//
//hotline:hotpath
func (m *Model) ApplySparse(lr float32) {
	for _, tg := range m.pendingSparse {
		m.Tables[tg.table].ApplySparseSGD(tg.grad, lr*tg.scale)
	}
	m.pendingSparse = m.pendingSparse[:0]
}

// ApplySparseAdagrad applies all stashed sparse gradients as ONE adaptive
// update per table against the globally-indexed accumulators (one state per
// table, see embedding.NewAdagradStateFor) and clears the stash. Because
// Adagrad is non-linear in the gradient, the stash entries of each table —
// the popular and non-popular µ-batches, or the TBSM timesteps — are merged
// into a single combined SparseGrad first (rows unioned in ascending order,
// contributions summed in stash order), exactly the full-mini-batch
// gradient a baseline executor would apply.
//
//hotline:hotpath
func (m *Model) ApplySparseAdagrad(states []*embedding.AdagradState, lr float32) {
	if len(states) != len(m.Tables) {
		panic(fmt.Sprintf("model: ApplySparseAdagrad wants %d states, got %d", len(m.Tables), len(states)))
	}
	m.optWS.Reset()
	for t := range m.Tables {
		merged := m.mergeSparse(t)
		if merged.Grad == nil {
			continue
		}
		m.Tables[t].ApplySparseAdagrad(states[t], merged, lr)
	}
	m.pendingSparse = m.pendingSparse[:0]
}

// mergeSparse folds every stash entry of one table into a single combined
// SparseGrad (scales applied). Entries keep their stash order, so the
// per-row addition sequence is deterministic.
func (m *Model) mergeSparse(table int) embedding.SparseGrad {
	var first *tableGrad
	count := 0
	for i := range m.pendingSparse {
		if m.pendingSparse[i].table == table {
			if first == nil {
				first = &m.pendingSparse[i]
			}
			count++
		}
	}
	if first == nil {
		return embedding.SparseGrad{}
	}
	if count == 1 && first.scale == 1 {
		return first.grad
	}
	// Union pass: collect distinct rows in ascending order. Every entry's
	// rows are already sorted, so a presence bitmap over the touched range
	// would also work; the simple merge below stays O(total rows) and
	// allocation-free through the optimizer workspace.
	dim := first.grad.Grad.Cols
	total := 0
	for i := range m.pendingSparse {
		if m.pendingSparse[i].table == table {
			total += len(m.pendingSparse[i].grad.Rows)
		}
	}
	scratch := m.optWS.Int32(total)[:0]
	for i := range m.pendingSparse {
		if m.pendingSparse[i].table == table {
			scratch = append(scratch, m.pendingSparse[i].grad.Rows...)
		}
	}
	slices.Sort(scratch)
	rows := slices.Compact(scratch)
	grad := m.optWS.Matrix(len(rows), dim)
	// slot[row] via binary search over the sorted distinct rows (every
	// entry's rows are present by construction).
	for i := range m.pendingSparse {
		tg := &m.pendingSparse[i]
		if tg.table != table {
			continue
		}
		for j, r := range tg.grad.Rows {
			gi, _ := slices.BinarySearch(rows, r)
			dst := grad.Row(gi)
			src := tg.grad.Grad.Row(j)
			if tg.scale == 1 {
				for k := range dst {
					dst[k] += src[k]
				}
			} else {
				for k := range dst {
					dst[k] += tg.scale * src[k]
				}
			}
		}
	}
	return embedding.SparseGrad{Rows: rows, Grad: grad}
}

// stepScratchResetter is implemented by bags whose per-step scratch must be
// rewound at the step boundary (shadow bags never see the apply-time
// rewind — their gradients are applied through the primary tables).
type stepScratchResetter interface {
	ResetStepScratch()
}

// ZeroAll clears dense gradient accumulators, drops stashed sparse grads
// and rewinds the bags' step scratch (every executor calls it once per
// step on each model it drives, including shadows).
func (m *Model) ZeroAll() {
	nn.ZeroGrads(m.DenseParams())
	m.pendingSparse = m.pendingSparse[:0]
	for _, b := range m.Tables {
		if r, ok := b.(stepScratchResetter); ok {
			r.ResetStepScratch()
		}
	}
}

// TrainStep runs one standard mini-batch SGD iteration (the baseline
// executor) and returns the mean BCE loss.
func (m *Model) TrainStep(b *data.Batch, lr float32) float64 {
	m.ZeroAll()
	logits := m.Forward(b)
	loss, grad := nn.BCEWithLogitsInto(&m.bceGrad, logits, b.Labels, nn.ReduceMean)
	m.Backward(grad, 1)
	if m.sgd == nil {
		m.sgd = nn.NewSGD(m.DenseParams(), lr)
	}
	m.sgd.LR = lr
	m.sgd.Step()
	m.ApplySparse(lr)
	return loss
}

// Predict returns click probabilities for a batch (no gradient state kept).
func (m *Model) Predict(b *data.Batch) []float32 {
	logits := m.Forward(b)
	out := make([]float32, logits.Rows)
	for i := range out {
		out[i] = nn.SigmoidScalar(logits.Data[i])
	}
	return out
}

// ServePredict returns click probabilities via the read-only serving path:
// embedding lookups are booked as serve traffic and never touch prefetch
// windows or backward state. Run it on a shadow (NewShadow) when a training
// instance shares the weights.
func (m *Model) ServePredict(b *data.Batch) []float32 {
	return m.ServePredictInto(nil, b)
}

// ServePredictInto is ServePredict writing into dst (grown as needed), so a
// steady-state request loop allocates nothing.
func (m *Model) ServePredictInto(dst []float32, b *data.Batch) []float32 {
	logits := m.forward(b, true)
	if cap(dst) < logits.Rows {
		dst = make([]float32, logits.Rows)
	}
	dst = dst[:logits.Rows]
	for i := range dst {
		dst[i] = nn.SigmoidScalar(logits.Data[i])
	}
	return dst
}

// ParameterCounts returns (dense, sparse) scalar parameter counts
// (the paper Table II inventory, at scaled table sizes).
func (m *Model) ParameterCounts() (dense, sparse int64) {
	dense = int64(nn.NumParams(m.DenseParams()))
	for _, t := range m.Tables {
		sparse += int64(t.NumRows()) * int64(t.EmbedDim())
	}
	return dense, sparse
}

// DenseStateEqual reports whether two models have bit-identical dense
// parameters (used by parity tests).
func DenseStateEqual(a, b *Model) bool {
	pa, pb := a.DenseParams(), b.DenseParams()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value) {
			return false
		}
	}
	return true
}

// SparseStateEqual reports whether two models have bit-identical embedding
// tables (physical layout — sharded or not — does not matter).
func SparseStateEqual(a, b *Model) bool {
	return embedding.BagsEqual(a.Tables, b.Tables)
}

// MaxStateDiff returns the largest absolute parameter difference between two
// models across dense and sparse state (0 for bit-identical models).
func MaxStateDiff(a, b *Model) float64 {
	var max float64
	pa, pb := a.DenseParams(), b.DenseParams()
	for i := range pa {
		if d := float64(tensor.MaxAbsDiff(pa[i].Value, pb[i].Value)); d > max {
			max = d
		}
	}
	if d := embedding.MaxAbsDiffBags(a.Tables, b.Tables); d > max {
		max = d
	}
	return max
}
