package model

import (
	"fmt"

	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/nn"
	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// Model is a DLRM or TBSM instance.
type Model struct {
	Cfg data.Config

	Bot   *nn.MLP
	Top   *nn.MLP
	Inter *nn.DotInteraction
	Attn  *nn.Attention // non-nil only for TBSM configs
	// Tables is the sparse parameter set behind the Bag interface: plain
	// single-node tables by default, ShardedBags after ShardEmbeddings.
	Tables embedding.Bags

	// pendingSparse accumulates sparse gradients across Backward calls
	// until ApplySparse or ZeroAll.
	pendingSparse []tableGrad

	// forward caches
	lastBatch    *data.Batch
	lastStepIdx  [][][]int32 // TBSM: per step, per sample index lists for table 0
	lastSeqSteps []*tensor.Matrix
}

type tableGrad struct {
	table int
	grad  embedding.SparseGrad
	scale float32
}

// New builds a model with deterministic initial weights derived from seed.
// Two models built from the same config and seed are bit-identical.
func New(cfg data.Config, seed uint64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := tensor.NewRNG(seed)
	m := &Model{Cfg: cfg}
	m.Bot = nn.NewMLP(cfg.BotMLP, true, rng)
	m.Inter = nn.NewDotInteraction(cfg.EmbedDim, cfg.NumTables)
	topSizes := append([]int{m.Inter.OutWidth()}, cfg.TopMLP...)
	m.Top = nn.NewMLP(topSizes, false, rng)
	if cfg.TimeSteps > 1 {
		m.Attn = nn.NewAttention(cfg.EmbedDim, cfg.TimeSteps)
	}
	m.Tables = embedding.NewTables(cfg.ScaledRowsPerTable, cfg.EmbedDim, rng).Bags()
	return m
}

// ShardEmbeddings partitions every embedding table across the nodes of a
// shard.Service (row-wise, with per-node hot-entry device caches). The
// model's training math is bit-identical before and after — only the
// simulated row placement and the service's traffic accounting change.
// It panics if the embeddings are already sharded.
func (m *Model) ShardEmbeddings(svc *shard.Service) {
	for t, b := range m.Tables {
		tab, ok := b.(*embedding.Table)
		if !ok {
			panic("model: embeddings already sharded")
		}
		m.Tables[t] = embedding.ShardBag(tab, svc, t)
	}
}

// IsTBSM reports whether the model carries the attention/sequence structure.
func (m *Model) IsTBSM() bool { return m.Attn != nil }

// sparsePrefetcher is implemented by bags that can gather a µ-batch's
// remote rows asynchronously (embedding.ShardedBag on a service with an
// async engine).
type sparsePrefetcher interface {
	Prefetch(indices [][]int32)
}

// PrefetchSparse issues asynchronous gathers for every embedding access the
// batch will make, on bags that support prefetching. The following
// Forward(b) consumes the staged rows; the Hotline executor calls this for
// the non-popular µ-batch before dispatching the popular one, overlapping
// the fabric traffic with compute. The TBSM sequence table is skipped (its
// per-timestep index sets are built inside Forward) and everything else is
// a no-op on non-prefetching bags.
func (m *Model) PrefetchSparse(b *data.Batch) {
	for t, bag := range m.Tables {
		if m.IsTBSM() && t == 0 {
			continue
		}
		if p, ok := bag.(sparsePrefetcher); ok {
			p.Prefetch(b.Sparse[t])
		}
	}
}

// NewShadow returns a model that shares m's parameter storage (dense weights
// and embedding tables) but owns private gradient accumulators, sparse-grad
// stash and forward caches. Two µ-batches can then run forward/backward
// concurrently — parameters are only read during the passes — and the
// shadow's gradients are folded back with AbsorbShadow. The shadow stays
// valid across updates because all optimizers mutate parameters in place.
func NewShadow(m *Model) *Model {
	s := &Model{Cfg: m.Cfg}
	s.Bot = m.Bot.Shadow()
	s.Top = m.Top.Shadow()
	s.Inter = nn.NewDotInteraction(m.Cfg.EmbedDim, m.Cfg.NumTables)
	if m.Attn != nil {
		s.Attn = nn.NewAttention(m.Cfg.EmbedDim, m.Cfg.TimeSteps)
	}
	s.Tables = m.Tables.Shadow()
	return s
}

// AbsorbShadow folds a shadow's accumulated gradients into m: dense
// gradients add into m's accumulators in parameter order, and the shadow's
// stashed sparse gradients append after m's own (fixed reduction order, so
// the combined update is deterministic for any worker count).
func (m *Model) AbsorbShadow(s *Model) {
	pm, ps := m.DenseParams(), s.DenseParams()
	if len(pm) != len(ps) {
		panic("model: AbsorbShadow across different architectures")
	}
	for i := range pm {
		tensor.AxpyInto(pm[i].Grad, 1, ps[i].Grad)
	}
	m.pendingSparse = append(m.pendingSparse, s.pendingSparse...)
	s.pendingSparse = s.pendingSparse[:0]
}

// Forward computes the logits (B x 1) for a batch.
func (m *Model) Forward(b *data.Batch) *tensor.Matrix {
	m.lastBatch = b
	z0 := m.Bot.Forward(b.Dense)
	inputs := make([]*tensor.Matrix, 0, m.Cfg.NumTables+1)
	inputs = append(inputs, z0)
	for t := 0; t < m.Cfg.NumTables; t++ {
		if m.IsTBSM() && t == 0 {
			inputs = append(inputs, m.forwardSequence(b))
			continue
		}
		inputs = append(inputs, m.Tables[t].Forward(b.Sparse[t]))
	}
	feat := m.Inter.Forward(inputs)
	return m.Top.Forward(feat)
}

// forwardSequence runs the TBSM behaviour-sequence table: one embedding
// lookup per timestep, pooled by the attention layer.
func (m *Model) forwardSequence(b *data.Batch) *tensor.Matrix {
	steps := m.Cfg.TimeSteps
	n := b.Size()
	m.lastStepIdx = make([][][]int32, steps)
	m.lastSeqSteps = make([]*tensor.Matrix, steps)
	for s := 0; s < steps; s++ {
		idx := make([][]int32, n)
		for i := 0; i < n; i++ {
			seq := b.Sparse[0][i]
			if len(seq) != steps {
				panic(fmt.Sprintf("model: sample %d sequence len %d want %d", i, len(seq), steps))
			}
			idx[i] = []int32{seq[s]}
		}
		m.lastStepIdx[s] = idx
		m.lastSeqSteps[s] = m.Tables[0].Forward(idx)
	}
	return m.Attn.Forward(m.lastSeqSteps)
}

// Backward accumulates gradients for dL/dlogits. Dense parameter gradients
// add into the MLP accumulators; sparse gradients are stashed (scaled by
// scale) until ApplySparse. Multiple Backward calls between updates model
// µ-batch accumulation.
func (m *Model) Backward(gradLogits *tensor.Matrix, scale float32) {
	if m.lastBatch == nil {
		panic("model: Backward before Forward")
	}
	g := gradLogits
	if scale != 1 {
		g = gradLogits.Clone()
		tensor.Scale(g, scale)
	}
	gFeat := m.Top.Backward(g)
	gInputs := m.Inter.Backward(gFeat)
	m.Bot.Backward(gInputs[0])
	for t := 0; t < m.Cfg.NumTables; t++ {
		gEmb := gInputs[t+1]
		if m.IsTBSM() && t == 0 {
			stepGrads := m.Attn.Backward(gEmb)
			for s, sg := range stepGrads {
				spg := m.Tables[0].BackwardIndices(m.lastStepIdx[s], sg)
				m.pendingSparse = append(m.pendingSparse, tableGrad{table: 0, grad: spg, scale: 1})
			}
			continue
		}
		spg := m.Tables[t].BackwardIndices(m.lastBatch.Sparse[t], gEmb)
		m.pendingSparse = append(m.pendingSparse, tableGrad{table: t, grad: spg, scale: 1})
	}
}

// DenseParams returns every dense trainable parameter.
func (m *Model) DenseParams() []nn.Param {
	return append(m.Bot.Params(), m.Top.Params()...)
}

// ApplySparse applies all stashed sparse gradients with the learning rate
// and clears the stash. Application order is deterministic (stash order).
func (m *Model) ApplySparse(lr float32) {
	for _, tg := range m.pendingSparse {
		m.Tables[tg.table].ApplySparseSGD(tg.grad, lr*tg.scale)
	}
	m.pendingSparse = m.pendingSparse[:0]
}

// ZeroAll clears dense gradient accumulators and drops stashed sparse grads.
func (m *Model) ZeroAll() {
	nn.ZeroGrads(m.DenseParams())
	m.pendingSparse = m.pendingSparse[:0]
}

// TrainStep runs one standard mini-batch SGD iteration (the baseline
// executor) and returns the mean BCE loss.
func (m *Model) TrainStep(b *data.Batch, lr float32) float64 {
	m.ZeroAll()
	logits := m.Forward(b)
	loss, grad := nn.BCEWithLogits(logits, b.Labels, nn.ReduceMean)
	m.Backward(grad, 1)
	opt := nn.NewSGD(m.DenseParams(), lr)
	opt.Step()
	m.ApplySparse(lr)
	return loss
}

// Predict returns click probabilities for a batch (no gradient state kept).
func (m *Model) Predict(b *data.Batch) []float32 {
	logits := m.Forward(b)
	out := make([]float32, logits.Rows)
	for i := range out {
		out[i] = nn.SigmoidScalar(logits.Data[i])
	}
	return out
}

// ParameterCounts returns (dense, sparse) scalar parameter counts
// (the paper Table II inventory, at scaled table sizes).
func (m *Model) ParameterCounts() (dense, sparse int64) {
	dense = int64(nn.NumParams(m.DenseParams()))
	for _, t := range m.Tables {
		sparse += int64(t.NumRows()) * int64(t.EmbedDim())
	}
	return dense, sparse
}

// DenseStateEqual reports whether two models have bit-identical dense
// parameters (used by parity tests).
func DenseStateEqual(a, b *Model) bool {
	pa, pb := a.DenseParams(), b.DenseParams()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value) {
			return false
		}
	}
	return true
}

// SparseStateEqual reports whether two models have bit-identical embedding
// tables (physical layout — sharded or not — does not matter).
func SparseStateEqual(a, b *Model) bool {
	return embedding.BagsEqual(a.Tables, b.Tables)
}

// MaxStateDiff returns the largest absolute parameter difference between two
// models across dense and sparse state (0 for bit-identical models).
func MaxStateDiff(a, b *Model) float64 {
	var max float64
	pa, pb := a.DenseParams(), b.DenseParams()
	for i := range pa {
		if d := float64(tensor.MaxAbsDiff(pa[i].Value, pb[i].Value)); d > max {
			max = d
		}
	}
	if d := embedding.MaxAbsDiffBags(a.Tables, b.Tables); d > max {
		max = d
	}
	return max
}
