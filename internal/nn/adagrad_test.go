package nn

import (
	"math"
	"testing"

	"hotline/internal/tensor"
)

func TestAdagradStepKnown(t *testing.T) {
	p := Param{Value: tensor.FromSlice(1, 2, []float32{1, 1}), Grad: tensor.FromSlice(1, 2, []float32{2, 0})}
	opt := NewAdagrad([]Param{p}, 0.5)
	opt.Step()
	// G = 4 -> step = 0.5*2/sqrt(4) = 0.5
	if math.Abs(float64(p.Value.Data[0]-0.5)) > 1e-5 {
		t.Fatalf("adagrad step = %v", p.Value.Data)
	}
	if p.Value.Data[1] != 1 {
		t.Fatal("zero grad must not move the parameter")
	}
	// Second identical step: G = 8 -> step = 1/sqrt(8) ≈ 0.3536.
	opt.Step()
	want := 0.5 - 0.5*2/float32(math.Sqrt(8))
	if math.Abs(float64(p.Value.Data[0]-want)) > 1e-5 {
		t.Fatalf("second step = %v want %v", p.Value.Data[0], want)
	}
}

// Adagrad's effective learning rate must shrink across repeated steps.
func TestAdagradLearningRateDecays(t *testing.T) {
	p := Param{Value: tensor.New(1, 1), Grad: tensor.New(1, 1)}
	opt := NewAdagrad([]Param{p}, 1)
	var deltas []float32
	prev := p.Value.Data[0]
	for i := 0; i < 5; i++ {
		p.Grad.Data[0] = 1
		opt.Step()
		deltas = append(deltas, prev-p.Value.Data[0])
		prev = p.Value.Data[0]
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] >= deltas[i-1] {
			t.Fatalf("step %d delta %g did not shrink from %g", i, deltas[i], deltas[i-1])
		}
	}
}

func TestAdagradLearnsToyProblem(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := NewMLP([]int{2, 16, 1}, false, rng)
	opt := NewAdagrad(m.Params(), 0.2)
	x := tensor.New(64, 2)
	targets := make([]float32, 64)
	for i := 0; i < 64; i++ {
		a, b := rng.Float32()*2-1, rng.Float32()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a-b > 0 {
			targets[i] = 1
		}
	}
	first := BCELossOnly(m.Forward(x), targets, ReduceMean)
	var last float64
	for epoch := 0; epoch < 150; epoch++ {
		opt.ZeroGrads()
		logits := m.Forward(x)
		var g *tensor.Matrix
		last, g = BCEWithLogits(logits, targets, ReduceMean)
		m.Backward(g)
		opt.Step()
	}
	if last > first*0.7 {
		t.Fatalf("adagrad failed to learn: first %g last %g", first, last)
	}
}

// The parity-critical property: because Adagrad is non-linear in the
// gradient, applying one accumulated update (Hotline's discipline) matches
// the baseline, while applying per-µ-batch updates diverges.
func TestAdagradRequiresAccumulatedUpdate(t *testing.T) {
	mk := func() (Param, *Adagrad) {
		p := Param{Value: tensor.FromSlice(1, 1, []float32{1}), Grad: tensor.New(1, 1)}
		return p, NewAdagrad([]Param{p}, 0.1)
	}
	g1, g2 := float32(0.3), float32(0.7)

	// Baseline: one update with g1+g2.
	pa, oa := mk()
	pa.Grad.Data[0] = g1 + g2
	oa.Step()

	// Hotline's discipline: accumulate both µ-batch grads, then one Step.
	pb, ob := mk()
	pb.Grad.Data[0] += g1
	pb.Grad.Data[0] += g2
	ob.Step()
	if pa.Value.Data[0] != pb.Value.Data[0] {
		t.Fatal("accumulated single update must equal the baseline exactly")
	}

	// Anti-pattern: per-µ-batch updates — must diverge from the baseline.
	pc, oc := mk()
	pc.Grad.Data[0] = g1
	oc.Step()
	pc.Grad.Data[0] = g2
	oc.Step()
	if pc.Value.Data[0] == pa.Value.Data[0] {
		t.Fatal("per-µ-batch adagrad updates should NOT match the baseline")
	}
}
