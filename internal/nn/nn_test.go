package nn

import (
	"math"
	"testing"
	"testing/quick"

	"hotline/internal/tensor"
)

// numericalGrad estimates dLoss/dx[i] by central differences.
func numericalGrad(x *tensor.Matrix, i int, loss func() float64) float64 {
	const eps = 1e-3
	orig := x.Data[i]
	x.Data[i] = orig + eps
	lp := loss()
	x.Data[i] = orig - eps
	lm := loss()
	x.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

func TestLinearForwardKnown(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear(2, 2, rng)
	l.W = tensor.FromSlice(2, 2, []float32{1, 2, 3, 4})
	l.B = tensor.FromSlice(1, 2, []float32{0.5, -0.5})
	x := tensor.FromSlice(1, 2, []float32{1, 1})
	y := l.Forward(x)
	if y.At(0, 0) != 4.5 || y.At(0, 1) != 5.5 {
		t.Fatalf("Linear forward = %v", y.Data)
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear(4, 3, rng)
	x := tensor.New(5, 4)
	tensor.NormalInit(x, 1, rng)
	targets := []float32{1, 0, 1, 0, 1}

	loss := func() float64 {
		h := l.Forward(x)
		// squash 3 outputs to 1 logit by summing, for a scalar loss
		logits := tensor.New(5, 1)
		for r := 0; r < 5; r++ {
			row := h.Row(r)
			logits.Data[r] = row[0] + row[1] + row[2]
		}
		return BCELossOnly(logits, targets, ReduceSum)
	}

	// analytic gradients
	h := l.Forward(x)
	logits := tensor.New(5, 1)
	for r := 0; r < 5; r++ {
		row := h.Row(r)
		logits.Data[r] = row[0] + row[1] + row[2]
	}
	_, glog := BCEWithLogits(logits, targets, ReduceSum)
	gh := tensor.New(5, 3)
	for r := 0; r < 5; r++ {
		for c := 0; c < 3; c++ {
			gh.Set(r, c, glog.Data[r])
		}
	}
	gx := l.Backward(gh)

	for _, i := range []int{0, 3, 7, 11} {
		num := numericalGrad(l.W, i, loss)
		if math.Abs(num-float64(l.GradW.Data[i])) > 1e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("W grad[%d]: analytic %g numeric %g", i, l.GradW.Data[i], num)
		}
	}
	for i := 0; i < 3; i++ {
		num := numericalGrad(l.B, i, loss)
		if math.Abs(num-float64(l.GradB.Data[i])) > 1e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("b grad[%d]: analytic %g numeric %g", i, l.GradB.Data[i], num)
		}
	}
	for _, i := range []int{0, 5, 13, 19} {
		num := numericalGrad(x, i, loss)
		if math.Abs(num-float64(gx.Data[i])) > 1e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("x grad[%d]: analytic %g numeric %g", i, gx.Data[i], num)
		}
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice(1, 4, []float32{-1, 0, 2, -3})
	y := r.Forward(x)
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("ReLU forward = %v", y.Data)
		}
	}
	g := r.Backward(tensor.FromSlice(1, 4, []float32{1, 1, 1, 1}))
	wantG := []float32{0, 0, 1, 0}
	for i, w := range wantG {
		if g.Data[i] != w {
			t.Fatalf("ReLU backward = %v", g.Data)
		}
	}
}

func TestSigmoidStable(t *testing.T) {
	if v := SigmoidScalar(1000); v != 1 {
		t.Fatalf("sigmoid(1000) = %g", v)
	}
	if v := SigmoidScalar(-1000); v != 0 {
		t.Fatalf("sigmoid(-1000) = %g", v)
	}
	if v := SigmoidScalar(0); math.Abs(float64(v)-0.5) > 1e-7 {
		t.Fatalf("sigmoid(0) = %g", v)
	}
}

func TestSigmoidGradCheck(t *testing.T) {
	s := NewSigmoid()
	x := tensor.FromSlice(1, 3, []float32{-0.5, 0.2, 1.5})
	loss := func() float64 {
		y := s.Forward(x)
		var sum float64
		for _, v := range y.Data {
			sum += float64(v) * float64(v)
		}
		return sum
	}
	y := s.Forward(x)
	g := tensor.New(1, 3)
	for i, v := range y.Data {
		g.Data[i] = 2 * v
	}
	gx := s.Backward(g)
	for i := range x.Data {
		num := numericalGrad(x, i, loss)
		if math.Abs(num-float64(gx.Data[i])) > 1e-3 {
			t.Fatalf("sigmoid grad[%d]: analytic %g numeric %g", i, gx.Data[i], num)
		}
	}
}

func TestMLPShapesAndParams(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := NewMLP([]int{13, 64, 16}, true, rng)
	x := tensor.New(8, 13)
	tensor.NormalInit(x, 1, rng)
	y := m.Forward(x)
	if y.Rows != 8 || y.Cols != 16 {
		t.Fatalf("MLP out shape %dx%d", y.Rows, y.Cols)
	}
	want := 13*64 + 64 + 64*16 + 16
	if n := NumParams(m.Params()); n != want {
		t.Fatalf("NumParams = %d want %d", n, want)
	}
	if f := m.FLOPs(8); f != MLPFLOPs([]int{13, 64, 16}, 8) {
		t.Fatalf("FLOPs mismatch %d", f)
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewMLP([]int{3, 5, 1}, false, rng)
	x := tensor.New(4, 3)
	tensor.NormalInit(x, 1, rng)
	targets := []float32{1, 0, 0, 1}

	loss := func() float64 {
		return BCELossOnly(m.Forward(x), targets, ReduceMean)
	}
	ZeroGrads(m.Params())
	logits := m.Forward(x)
	_, g := BCEWithLogits(logits, targets, ReduceMean)
	gx := m.Backward(g)

	for _, p := range m.Params() {
		for _, i := range []int{0, len(p.Value.Data) - 1} {
			num := numericalGrad(p.Value, i, loss)
			if math.Abs(num-float64(p.Grad.Data[i])) > 1e-2*math.Max(0.05, math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g numeric %g", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
	for i := range x.Data {
		num := numericalGrad(x, i, loss)
		if math.Abs(num-float64(gx.Data[i])) > 1e-2*math.Max(0.05, math.Abs(num)) {
			t.Fatalf("x grad[%d]: analytic %g numeric %g", i, gx.Data[i], num)
		}
	}
}

func TestDotInteractionWidthAndValues(t *testing.T) {
	di := NewDotInteraction(2, 2) // n = 3 vectors, pairs = 3
	if di.OutWidth() != 2+3 {
		t.Fatalf("OutWidth = %d", di.OutWidth())
	}
	z0 := tensor.FromSlice(1, 2, []float32{1, 2})
	e1 := tensor.FromSlice(1, 2, []float32{3, 4})
	e2 := tensor.FromSlice(1, 2, []float32{5, 6})
	out := di.Forward([]*tensor.Matrix{z0, e1, e2})
	// pairs in order: (e1,z0), (e2,z0), (e2,e1)
	want := []float32{1, 2, 1*3 + 2*4, 1*5 + 2*6, 3*5 + 4*6}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("interaction out = %v want %v", out.Data, want)
		}
	}
}

func TestDotInteractionGradCheck(t *testing.T) {
	rng := tensor.NewRNG(5)
	di := NewDotInteraction(3, 2)
	ins := make([]*tensor.Matrix, 3)
	for i := range ins {
		ins[i] = tensor.New(2, 3)
		tensor.NormalInit(ins[i], 1, rng)
	}
	targets := []float32{1, 0}
	loss := func() float64 {
		out := di.Forward(ins)
		logits := tensor.New(2, 1)
		for r := 0; r < 2; r++ {
			var s float32
			for _, v := range out.Row(r) {
				s += v
			}
			logits.Data[r] = s
		}
		return BCELossOnly(logits, targets, ReduceSum)
	}
	out := di.Forward(ins)
	logits := tensor.New(2, 1)
	for r := 0; r < 2; r++ {
		var s float32
		for _, v := range out.Row(r) {
			s += v
		}
		logits.Data[r] = s
	}
	_, gl := BCEWithLogits(logits, targets, ReduceSum)
	gout := tensor.New(out.Rows, out.Cols)
	for r := 0; r < out.Rows; r++ {
		for c := 0; c < out.Cols; c++ {
			gout.Set(r, c, gl.Data[r])
		}
	}
	grads := di.Backward(gout)
	for vi, in := range ins {
		for i := range in.Data {
			num := numericalGrad(in, i, loss)
			if math.Abs(num-float64(grads[vi].Data[i])) > 2e-2*math.Max(0.05, math.Abs(num)) {
				t.Fatalf("input %d grad[%d]: analytic %g numeric %g", vi, i, grads[vi].Data[i], num)
			}
		}
	}
}

func TestAttentionWeightsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(6)
	at := NewAttention(4, 3)
	ins := make([]*tensor.Matrix, 3)
	for i := range ins {
		ins[i] = tensor.New(2, 4)
		tensor.NormalInit(ins[i], 1, rng)
	}
	at.Forward(ins)
	for b := 0; b < 2; b++ {
		var sum float32
		for _, a := range at.lastAlphas.Row(b) {
			if a < 0 {
				t.Fatal("negative attention weight")
			}
			sum += a
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Fatalf("alphas sum to %g", sum)
		}
	}
}

func TestAttentionGradCheck(t *testing.T) {
	rng := tensor.NewRNG(7)
	at := NewAttention(3, 3)
	ins := make([]*tensor.Matrix, 3)
	for i := range ins {
		ins[i] = tensor.New(2, 3)
		tensor.NormalInit(ins[i], 0.7, rng)
	}
	targets := []float32{1, 0}
	loss := func() float64 {
		out := at.Forward(ins)
		logits := tensor.New(2, 1)
		for r := 0; r < 2; r++ {
			var s float32
			for _, v := range out.Row(r) {
				s += v
			}
			logits.Data[r] = s
		}
		return BCELossOnly(logits, targets, ReduceSum)
	}
	out := at.Forward(ins)
	logits := tensor.New(2, 1)
	for r := 0; r < 2; r++ {
		var s float32
		for _, v := range out.Row(r) {
			s += v
		}
		logits.Data[r] = s
	}
	_, gl := BCEWithLogits(logits, targets, ReduceSum)
	gout := tensor.New(out.Rows, out.Cols)
	for r := 0; r < out.Rows; r++ {
		for c := 0; c < out.Cols; c++ {
			gout.Set(r, c, gl.Data[r])
		}
	}
	grads := at.Backward(gout)
	for vi, in := range ins {
		for i := range in.Data {
			num := numericalGrad(in, i, loss)
			if math.Abs(num-float64(grads[vi].Data[i])) > 2e-2*math.Max(0.05, math.Abs(num)) {
				t.Fatalf("timestep %d grad[%d]: analytic %g numeric %g", vi, i, grads[vi].Data[i], num)
			}
		}
	}
}

func TestBCEMatchesDirectFormula(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{0.3, -1.2})
	targets := []float32{1, 0}
	got, grad := BCEWithLogits(logits, targets, ReduceSum)
	var want float64
	for i := range targets {
		p := 1 / (1 + math.Exp(-float64(logits.Data[i])))
		y := float64(targets[i])
		want += -(y*math.Log(p) + (1-y)*math.Log(1-p))
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("BCE = %g want %g", got, want)
	}
	for i := range targets {
		p := 1 / (1 + math.Exp(-float64(logits.Data[i])))
		if math.Abs(float64(grad.Data[i])-(p-float64(targets[i]))) > 1e-6 {
			t.Fatalf("BCE grad[%d] = %g", i, grad.Data[i])
		}
	}
}

// Property: the µ-batch split identity of paper Eq. 5. Sum-reduced BCE over a
// mini-batch equals the sum of the two µ-batch losses for any split point.
func TestLossSplitIdentityProperty(t *testing.T) {
	f := func(seed uint64, splitRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		n := 16
		logits := tensor.New(n, 1)
		tensor.NormalInit(logits, 2, rng)
		targets := make([]float32, n)
		for i := range targets {
			if rng.Float32() < 0.5 {
				targets[i] = 1
			}
		}
		split := int(splitRaw) % (n + 1)
		full := BCELossOnly(logits, targets, ReduceSum)
		lo := BCELossOnly(tensor.FromSlice(split, 1, logits.Data[:split]), targets[:split], ReduceSum)
		hi := BCELossOnly(tensor.FromSlice(n-split, 1, logits.Data[split:]), targets[split:], ReduceSum)
		return math.Abs(full-(lo+hi)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSGDStep(t *testing.T) {
	rng := tensor.NewRNG(8)
	l := NewLinear(2, 2, rng)
	opt := NewSGD(l.Params(), 0.5)
	before := l.W.Clone()
	l.GradW.Fill(1)
	opt.Step()
	for i := range l.W.Data {
		if math.Abs(float64(l.W.Data[i]-(before.Data[i]-0.5))) > 1e-6 {
			t.Fatalf("SGD step wrong at %d", i)
		}
	}
	opt.ZeroGrads()
	if l.GradW.Data[0] != 0 {
		t.Fatal("ZeroGrads failed")
	}
}

// Training an MLP on a separable toy problem must reduce the loss.
func TestMLPLearnsToyProblem(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := NewMLP([]int{2, 16, 1}, false, rng)
	opt := NewSGD(m.Params(), 0.1)
	x := tensor.New(64, 2)
	targets := make([]float32, 64)
	for i := 0; i < 64; i++ {
		a, b := rng.Float32()*2-1, rng.Float32()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a+b > 0 {
			targets[i] = 1
		}
	}
	first := BCELossOnly(m.Forward(x), targets, ReduceMean)
	var last float64
	for epoch := 0; epoch < 200; epoch++ {
		opt.ZeroGrads()
		logits := m.Forward(x)
		var g *tensor.Matrix
		last, g = BCEWithLogits(logits, targets, ReduceMean)
		m.Backward(g)
		opt.Step()
	}
	if last > first*0.5 {
		t.Fatalf("MLP failed to learn: first %g last %g", first, last)
	}
}
