package nn

import (
	"fmt"
	"math"

	"hotline/internal/tensor"
)

// Reduction selects how per-sample losses combine into the scalar loss.
type Reduction int

const (
	// ReduceMean divides the summed loss (and gradients) by the batch size.
	ReduceMean Reduction = iota
	// ReduceSum leaves the loss as the plain sum over samples. The Hotline
	// µ-batch executor uses sums so that L_popular + L_non-popular equals
	// the baseline mini-batch loss exactly (paper Eq. 5).
	ReduceSum
)

// BCEWithLogits computes binary cross-entropy between logits and {0,1}
// targets with the numerically stable log-sum-exp formulation:
//
//	ℓ(x, y) = max(x,0) − x·y + log(1 + e^{−|x|})
//
// It returns the reduced loss and dL/dlogits under the same reduction.
func BCEWithLogits(logits *tensor.Matrix, targets []float32, red Reduction) (float64, *tensor.Matrix) {
	return BCEWithLogitsInto(tensor.New(logits.Rows, 1), logits, targets, red)
}

// BCEWithLogitsInto is BCEWithLogits writing the gradient into a
// caller-supplied buffer (resized to B x 1), so steady-state training can
// reuse one gradient matrix per executor instead of allocating per step.
//
//hotline:hotpath
func BCEWithLogitsInto(grad *tensor.Matrix, logits *tensor.Matrix, targets []float32, red Reduction) (float64, *tensor.Matrix) {
	if logits.Cols != 1 {
		panic(fmt.Sprintf("nn: BCEWithLogits wants Bx1 logits, got %dx%d", logits.Rows, logits.Cols))
	}
	if logits.Rows != len(targets) {
		panic(fmt.Sprintf("nn: BCEWithLogits %d logits vs %d targets", logits.Rows, len(targets)))
	}
	grad.ResizeNoZero(logits.Rows, 1) // every element written below
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		x := float64(logits.Data[i])
		y := float64(targets[i])
		loss += math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
		grad.Data[i] = SigmoidScalar(logits.Data[i]) - targets[i]
	}
	if red == ReduceMean && logits.Rows > 0 {
		inv := 1 / float64(logits.Rows)
		loss *= inv
		tensor.Scale(grad, float32(inv))
	}
	return loss, grad
}

// BCELossOnly evaluates the loss without materialising gradients; used by
// evaluation loops.
func BCELossOnly(logits *tensor.Matrix, targets []float32, red Reduction) float64 {
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		x := float64(logits.Data[i])
		y := float64(targets[i])
		loss += math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	}
	if red == ReduceMean && logits.Rows > 0 {
		loss /= float64(logits.Rows)
	}
	return loss
}
