package nn

import (
	"fmt"

	"hotline/internal/tensor"
)

// Linear is a fully connected layer computing y = x·W + b with
// W of shape (in x out) and b of length out.
//
// Forward/backward scratch (the output, the per-call weight-gradient
// staging and the input gradient) lives in per-instance buffers that are
// resized instead of reallocated, so steady-state training allocates
// nothing. A returned matrix is therefore valid only until the next
// Forward/Backward call on the same instance; shadows own private scratch.
type Linear struct {
	In, Out int
	W       *tensor.Matrix // in x out
	B       *tensor.Matrix // 1 x out
	GradW   *tensor.Matrix
	GradB   *tensor.Matrix

	lastInput *tensor.Matrix // cached for backward
	out       tensor.Matrix  // forward output scratch
	gwScratch tensor.Matrix  // per-call dW staging (summed into GradW)
	gradIn    tensor.Matrix  // backward output scratch
}

// NewLinear returns a Linear layer with Xavier-initialised weights.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In:    in,
		Out:   out,
		W:     tensor.New(in, out),
		B:     tensor.New(1, out),
		GradW: tensor.New(in, out),
		GradB: tensor.New(1, out),
	}
	tensor.XavierInit(l.W, in, out, rng)
	return l
}

// Shadow returns a Linear that shares l's weight and bias storage but owns
// private gradient accumulators and forward cache, so two µ-batches can run
// forward/backward concurrently against the same parameters.
func (l *Linear) Shadow() *Linear {
	return &Linear{
		In: l.In, Out: l.Out, W: l.W, B: l.B,
		GradW: tensor.New(l.In, l.Out),
		GradB: tensor.New(1, l.Out),
	}
}

// Forward computes x·W + b for a batch x of shape (B x in). The returned
// matrix is scratch owned by l, valid until the next Forward call.
//
//hotline:hotpath
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear forward input cols %d want %d", x.Cols, l.In))
	}
	l.lastInput = x
	out := l.out.ResizeNoZero(x.Rows, l.Out) // MatMul zeroes its destination
	tensor.MatMul(out, x, l.W)
	tensor.AddBiasRow(out, l.B.Data)
	return out
}

// Backward accumulates dW = xᵀ·g, db = Σrows g and returns dx = g·Wᵀ
// (scratch owned by l, valid until the next Backward call).
//
//hotline:hotpath
func (l *Linear) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if l.lastInput == nil {
		panic("nn: Linear.Backward before Forward")
	}
	gw := l.gwScratch.ResizeNoZero(l.In, l.Out) // MatMulTransA zeroes its destination
	tensor.MatMulTransA(gw, l.lastInput, gradOut)
	tensor.AxpyInto(l.GradW, 1, gw)
	tensor.SumRowsInto(l.GradB.Data, gradOut)
	gradIn := l.gradIn.ResizeNoZero(gradOut.Rows, l.In) // fully overwritten
	tensor.MatMulTransB(gradIn, gradOut, l.W)
	return gradIn
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: "W", Value: l.W, Grad: l.GradW},
		{Name: "b", Value: l.B, Grad: l.GradB},
	}
}
