package nn

import (
	"fmt"

	"hotline/internal/tensor"
)

// MLP is a stack of Linear layers with ReLU between them. When
// finalActivation is true the last Linear is also followed by a ReLU
// (DLRM bottom MLPs end in ReLU; top MLPs end in a raw logit).
type MLP struct {
	Sizes  []int
	layers []Layer

	params []Param // memoised Params() result (layer Grad pointers are stable)
}

// NewMLP builds an MLP from the layer sizes, e.g. {13, 512, 256, 64}.
// relUAfterLast controls whether the output of the final Linear passes
// through a ReLU.
func NewMLP(sizes []int, reluAfterLast bool, rng *tensor.RNG) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: MLP needs >= 2 sizes, got %v", sizes))
	}
	m := &MLP{Sizes: sizes}
	for i := 0; i < len(sizes)-1; i++ {
		m.layers = append(m.layers, NewLinear(sizes[i], sizes[i+1], rng))
		last := i == len(sizes)-2
		if !last || reluAfterLast {
			m.layers = append(m.layers, NewReLU())
		}
	}
	return m
}

// Shadow returns an MLP sharing m's parameters with private gradient
// accumulators and forward caches (see Linear.Shadow).
func (m *MLP) Shadow() *MLP {
	s := &MLP{Sizes: m.Sizes}
	for _, l := range m.layers {
		switch v := l.(type) {
		case *Linear:
			s.layers = append(s.layers, v.Shadow())
		case *ReLU:
			s.layers = append(s.layers, NewReLU())
		default:
			panic(fmt.Sprintf("nn: MLP.Shadow: unsupported layer %T", l))
		}
	}
	return s
}

// Forward runs the stack on a batch.
//
//hotline:hotpath
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the reverse pass through the stack.
//
//hotline:hotpath
func (m *MLP) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	for i := len(m.layers) - 1; i >= 0; i-- {
		gradOut = m.layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params returns the parameters of every layer in order. The slice is
// memoised (parameter and gradient storage is stable for the life of the
// MLP), so the per-step optimizer path performs no allocations.
func (m *MLP) Params() []Param {
	if m.params != nil {
		return m.params
	}
	var ps []Param
	for i, l := range m.layers {
		for _, p := range l.Params() {
			p.Name = fmt.Sprintf("mlp[%d].%s", i, p.Name)
			ps = append(ps, p)
		}
	}
	m.params = ps
	return ps
}

// FLOPs returns the multiply-accumulate count of one forward pass for a
// batch of the given size; the performance layer uses this for cost models.
func (m *MLP) FLOPs(batch int) int64 {
	var f int64
	for i := 0; i < len(m.Sizes)-1; i++ {
		f += 2 * int64(batch) * int64(m.Sizes[i]) * int64(m.Sizes[i+1])
	}
	return f
}

// MLPFLOPs computes forward MAC count for an architecture without building it.
func MLPFLOPs(sizes []int, batch int) int64 {
	var f int64
	for i := 0; i < len(sizes)-1; i++ {
		f += 2 * int64(batch) * int64(sizes[i]) * int64(sizes[i+1])
	}
	return f
}
