package nn

import (
	"fmt"

	"hotline/internal/par"
	"hotline/internal/tensor"
)

// DotInteraction implements the DLRM feature-interaction layer: given the
// bottom-MLP output z0 and the per-table embedding vectors (all of equal
// dimension d), it emits for each sample the concatenation of z0 with the
// pairwise dot products of all distinct vector pairs.
//
// With n = 1 + numTables vectors the output width is d + n(n-1)/2.
type DotInteraction struct {
	Dim    int
	NumVec int // vectors per sample: 1 (dense) + number of embedding tables

	lastInputs []*tensor.Matrix
}

// NewDotInteraction returns the interaction op for numTables embedding
// tables of dimension dim.
func NewDotInteraction(dim, numTables int) *DotInteraction {
	return &DotInteraction{Dim: dim, NumVec: numTables + 1}
}

// OutWidth returns the output feature width.
func (d *DotInteraction) OutWidth() int {
	n := d.NumVec
	return d.Dim + n*(n-1)/2
}

// Forward consumes the dense vector matrix followed by one matrix per
// embedding table, each of shape (B x Dim), and returns (B x OutWidth()).
func (d *DotInteraction) Forward(inputs []*tensor.Matrix) *tensor.Matrix {
	if len(inputs) != d.NumVec {
		panic(fmt.Sprintf("nn: DotInteraction wants %d inputs, got %d", d.NumVec, len(inputs)))
	}
	batch := inputs[0].Rows
	for i, m := range inputs {
		if m.Rows != batch || m.Cols != d.Dim {
			panic(fmt.Sprintf("nn: DotInteraction input %d is %dx%d want %dx%d", i, m.Rows, m.Cols, batch, d.Dim))
		}
	}
	d.lastInputs = inputs
	out := tensor.New(batch, d.OutWidth())
	perSample := int64(d.NumVec) * int64(d.NumVec) * int64(d.Dim)
	par.ForWork(batch, perSample, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			row := out.Row(b)
			copy(row[:d.Dim], inputs[0].Row(b))
			k := d.Dim
			for i := 1; i < d.NumVec; i++ {
				vi := inputs[i].Row(b)
				for j := 0; j < i; j++ {
					vj := inputs[j].Row(b)
					var dot float32
					for t := 0; t < d.Dim; t++ {
						dot += vi[t] * vj[t]
					}
					row[k] = dot
					k++
				}
			}
		}
	})
	return out
}

// Backward returns one gradient matrix per forward input, in order.
func (d *DotInteraction) Backward(gradOut *tensor.Matrix) []*tensor.Matrix {
	if d.lastInputs == nil {
		panic("nn: DotInteraction.Backward before Forward")
	}
	batch := d.lastInputs[0].Rows
	grads := make([]*tensor.Matrix, d.NumVec)
	for i := range grads {
		grads[i] = tensor.New(batch, d.Dim)
	}
	perSample := int64(d.NumVec) * int64(d.NumVec) * int64(d.Dim)
	par.ForWork(batch, perSample, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			grow := gradOut.Row(b)
			// Pass-through gradient for the copied dense vector.
			copy(grads[0].Row(b), grow[:d.Dim])
			k := d.Dim
			for i := 1; i < d.NumVec; i++ {
				vi := d.lastInputs[i].Row(b)
				gi := grads[i].Row(b)
				for j := 0; j < i; j++ {
					vj := d.lastInputs[j].Row(b)
					gj := grads[j].Row(b)
					g := grow[k]
					k++
					if g == 0 {
						continue
					}
					for t := 0; t < d.Dim; t++ {
						gi[t] += g * vj[t]
						gj[t] += g * vi[t]
					}
				}
			}
		}
	})
	return grads
}
