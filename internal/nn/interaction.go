package nn

import (
	"fmt"

	"hotline/internal/par"
	"hotline/internal/tensor"
)

// DotInteraction implements the DLRM feature-interaction layer: given the
// bottom-MLP output z0 and the per-table embedding vectors (all of equal
// dimension d), it emits for each sample the concatenation of z0 with the
// pairwise dot products of all distinct vector pairs.
//
// With n = 1 + numTables vectors the output width is d + n(n-1)/2.
// Output and input-gradient matrices are per-instance scratch reused
// across calls.
type DotInteraction struct {
	Dim    int
	NumVec int // vectors per sample: 1 (dense) + number of embedding tables

	lastInputs []*tensor.Matrix
	out        tensor.Matrix
	grads      []*tensor.Matrix
}

// NewDotInteraction returns the interaction op for numTables embedding
// tables of dimension dim.
func NewDotInteraction(dim, numTables int) *DotInteraction {
	return &DotInteraction{Dim: dim, NumVec: numTables + 1}
}

// OutWidth returns the output feature width.
func (d *DotInteraction) OutWidth() int {
	n := d.NumVec
	return d.Dim + n*(n-1)/2
}

// fwdRange computes samples [lo, hi) of the interaction output.
//
//hotline:hotpath
func (d *DotInteraction) fwdRange(out *tensor.Matrix, inputs []*tensor.Matrix, lo, hi int) {
	for b := lo; b < hi; b++ {
		row := out.Row(b)
		copy(row[:d.Dim], inputs[0].Row(b))
		k := d.Dim
		for i := 1; i < d.NumVec; i++ {
			vi := inputs[i].Row(b)
			for j := 0; j < i; j++ {
				vj := inputs[j].Row(b)[:len(vi)]
				var dot float32
				for t, v := range vi {
					dot += v * vj[t]
				}
				row[k] = dot
				k++
			}
		}
	}
}

// Forward consumes the dense vector matrix followed by one matrix per
// embedding table, each of shape (B x Dim), and returns (B x OutWidth()).
//
//hotline:hotpath
func (d *DotInteraction) Forward(inputs []*tensor.Matrix) *tensor.Matrix {
	if len(inputs) != d.NumVec {
		panic(fmt.Sprintf("nn: DotInteraction wants %d inputs, got %d", d.NumVec, len(inputs)))
	}
	batch := inputs[0].Rows
	for i, m := range inputs {
		if m.Rows != batch || m.Cols != d.Dim {
			panic(fmt.Sprintf("nn: DotInteraction input %d is %dx%d want %dx%d", i, m.Rows, m.Cols, batch, d.Dim))
		}
	}
	d.lastInputs = inputs
	out := d.out.ResizeNoZero(batch, d.OutWidth()) // every cell written by fwdRange
	perSample := int64(d.NumVec) * int64(d.NumVec) * int64(d.Dim)
	if par.Serial(batch, perSample) {
		d.fwdRange(out, inputs, 0, batch)
	} else {
		par.ForWork(batch, perSample, func(lo, hi int) {
			d.fwdRange(out, inputs, lo, hi)
		})
	}
	return out
}

// bwdRange computes samples [lo, hi) of every input gradient.
//
//hotline:hotpath
func (d *DotInteraction) bwdRange(grads []*tensor.Matrix, gradOut *tensor.Matrix, lo, hi int) {
	for b := lo; b < hi; b++ {
		grow := gradOut.Row(b)
		// Pass-through gradient for the copied dense vector.
		copy(grads[0].Row(b), grow[:d.Dim])
		k := d.Dim
		for i := 1; i < d.NumVec; i++ {
			vi := d.lastInputs[i].Row(b)
			gi := grads[i].Row(b)
			for j := 0; j < i; j++ {
				g := grow[k]
				k++
				if g == 0 {
					continue
				}
				vj := d.lastInputs[j].Row(b)[:len(vi)]
				gj := grads[j].Row(b)[:len(vi)]
				gi := gi[:len(vi)]
				for t, v := range vi {
					gi[t] += g * vj[t]
					gj[t] += g * v
				}
			}
		}
	}
}

// Backward returns one gradient matrix per forward input, in order (scratch
// owned by d, valid until the next Backward call).
//
//hotline:hotpath
func (d *DotInteraction) Backward(gradOut *tensor.Matrix) []*tensor.Matrix {
	if d.lastInputs == nil {
		panic("nn: DotInteraction.Backward before Forward")
	}
	batch := d.lastInputs[0].Rows
	if d.grads == nil {
		d.grads = make([]*tensor.Matrix, d.NumVec) //hotline:allow hotalloc lazy one-time gradient-buffer init
		for i := range d.grads {
			d.grads[i] = &tensor.Matrix{} //hotline:allow hotalloc lazy one-time gradient-buffer init
		}
	}
	for i := range d.grads {
		d.grads[i].Resize(batch, d.Dim)
	}
	grads := d.grads
	perSample := int64(d.NumVec) * int64(d.NumVec) * int64(d.Dim)
	if par.Serial(batch, perSample) {
		d.bwdRange(grads, gradOut, 0, batch)
	} else {
		par.ForWork(batch, perSample, func(lo, hi int) {
			d.bwdRange(grads, gradOut, lo, hi)
		})
	}
	return grads
}
