// Package nn implements the dense neural-network components of DLRM and
// TBSM: linear layers, activations, MLP stacks, the DLRM dot-product feature
// interaction, the TBSM attention layer, binary cross-entropy loss and the
// SGD/Adagrad optimizers.
//
// All layers use hand-written backpropagation over internal/tensor matrices.
// Every forward call caches what its backward pass needs; Backward must be
// called after Forward with a gradient of the same shape as the forward
// output, and returns the gradient with respect to the layer input.
//
// In the DESIGN.md layering the package sits directly above internal/tensor
// and below internal/model, which assembles these layers into full DLRM and
// TBSM architectures.
//
//hotline:deterministic
package nn
