// Package nn implements the dense neural-network components of DLRM and
// TBSM: linear layers, activations, MLP stacks, the DLRM dot-product feature
// interaction, the TBSM attention layer, binary cross-entropy loss and SGD.
//
// All layers use hand-written backpropagation over internal/tensor matrices.
// Every forward call caches what its backward pass needs; Backward must be
// called after Forward with a gradient of the same shape as the forward
// output, and returns the gradient with respect to the layer input.
package nn

import "hotline/internal/tensor"

// Param couples a trainable value with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// Layer is a differentiable module with trainable parameters.
type Layer interface {
	// Forward computes the layer output for input x (batch rows).
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients along the way.
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns the trainable parameters (empty for stateless layers).
	Params() []Param
}

// ZeroGrads clears the gradient accumulators of all params.
func ZeroGrads(params []Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// NumParams returns the total scalar parameter count.
func NumParams(params []Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Value.Data)
	}
	return n
}
