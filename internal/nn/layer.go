package nn

import "hotline/internal/tensor"

// Param couples a trainable value with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// Layer is a differentiable module with trainable parameters.
type Layer interface {
	// Forward computes the layer output for input x (batch rows).
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients along the way.
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns the trainable parameters (empty for stateless layers).
	Params() []Param
}

// ZeroGrads clears the gradient accumulators of all params.
//
//hotline:hotpath
func ZeroGrads(params []Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// NumParams returns the total scalar parameter count.
func NumParams(params []Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Value.Data)
	}
	return n
}
