package nn

import (
	"math"

	"hotline/internal/par"
	"hotline/internal/tensor"
)

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask *tensor.Matrix // 1 where input > 0
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(x, 0) element-wise.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	mask := tensor.New(x.Rows, x.Cols)
	par.ForWork(len(x.Data), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := x.Data[i]; v > 0 {
				out.Data[i] = v
				mask.Data[i] = 1
			}
		}
	})
	r.mask = mask
	return out
}

// Backward gates the incoming gradient by the forward mask.
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	gradIn := tensor.New(gradOut.Rows, gradOut.Cols)
	tensor.Hadamard(gradIn, gradOut, r.mask)
	return gradIn
}

// Params returns nil; ReLU is stateless.
func (r *ReLU) Params() []Param { return nil }

// Sigmoid is the logistic activation σ(x) = 1/(1+e⁻ˣ).
type Sigmoid struct {
	out *tensor.Matrix
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// SigmoidScalar computes the numerically stable logistic function.
func SigmoidScalar(x float32) float32 {
	if x >= 0 {
		z := float32(math.Exp(-float64(x)))
		return 1 / (1 + z)
	}
	z := float32(math.Exp(float64(x)))
	return z / (1 + z)
}

// Forward computes σ(x) element-wise.
func (s *Sigmoid) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = SigmoidScalar(v)
	}
	s.out = out
	return out
}

// Backward computes g·σ(x)·(1-σ(x)) using the cached forward output.
func (s *Sigmoid) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if s.out == nil {
		panic("nn: Sigmoid.Backward before Forward")
	}
	gradIn := tensor.New(gradOut.Rows, gradOut.Cols)
	for i, g := range gradOut.Data {
		y := s.out.Data[i]
		gradIn.Data[i] = g * y * (1 - y)
	}
	return gradIn
}

// Params returns nil; Sigmoid is stateless.
func (s *Sigmoid) Params() []Param { return nil }
