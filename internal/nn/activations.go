package nn

import (
	"math"

	"hotline/internal/par"
	"hotline/internal/tensor"
)

// ReLU is the rectified-linear activation. Output, mask and input-gradient
// buffers are per-instance scratch reused across calls (valid until the
// next Forward/Backward on the same instance).
type ReLU struct {
	out    tensor.Matrix
	mask   tensor.Matrix // 1 where input > 0
	gradIn tensor.Matrix
	fwdRun bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// reluRange computes elements [lo, hi) of max(x, 0) and the mask.
//
//hotline:hotpath
func reluRange(out, mask, x *tensor.Matrix, lo, hi int) {
	o, mk, xd := out.Data, mask.Data, x.Data
	for i := lo; i < hi; i++ {
		if v := xd[i]; v > 0 {
			o[i] = v
			mk[i] = 1
		}
	}
}

// Forward computes max(x, 0) element-wise.
//
//hotline:hotpath
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := r.out.Resize(x.Rows, x.Cols)
	mask := r.mask.Resize(x.Rows, x.Cols)
	if par.Serial(len(x.Data), 1) {
		reluRange(out, mask, x, 0, len(x.Data))
	} else {
		par.ForWork(len(x.Data), 1, func(lo, hi int) {
			reluRange(out, mask, x, lo, hi)
		})
	}
	r.fwdRun = true
	return out
}

// Backward gates the incoming gradient by the forward mask.
//
//hotline:hotpath
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if !r.fwdRun {
		panic("nn: ReLU.Backward before Forward")
	}
	gradIn := r.gradIn.ResizeNoZero(gradOut.Rows, gradOut.Cols) // fully overwritten
	tensor.Hadamard(gradIn, gradOut, &r.mask)
	return gradIn
}

// Params returns nil; ReLU is stateless.
func (r *ReLU) Params() []Param { return nil }

// Sigmoid is the logistic activation σ(x) = 1/(1+e⁻ˣ).
type Sigmoid struct {
	out    tensor.Matrix
	gradIn tensor.Matrix
	fwdRun bool
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// SigmoidScalar computes the numerically stable logistic function.
//
//hotline:hotpath
func SigmoidScalar(x float32) float32 {
	if x >= 0 {
		z := float32(math.Exp(-float64(x)))
		return 1 / (1 + z)
	}
	z := float32(math.Exp(float64(x)))
	return z / (1 + z)
}

// Forward computes σ(x) element-wise.
func (s *Sigmoid) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := s.out.ResizeNoZero(x.Rows, x.Cols) // fully overwritten
	for i, v := range x.Data {
		out.Data[i] = SigmoidScalar(v)
	}
	s.fwdRun = true
	return out
}

// Backward computes g·σ(x)·(1-σ(x)) using the cached forward output.
func (s *Sigmoid) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if !s.fwdRun {
		panic("nn: Sigmoid.Backward before Forward")
	}
	gradIn := s.gradIn.ResizeNoZero(gradOut.Rows, gradOut.Cols) // fully overwritten
	for i, g := range gradOut.Data {
		y := s.out.Data[i]
		gradIn.Data[i] = g * y * (1 - y)
	}
	return gradIn
}

// Params returns nil; Sigmoid is stateless.
func (s *Sigmoid) Params() []Param { return nil }
