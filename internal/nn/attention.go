package nn

import (
	"fmt"
	"math"

	"hotline/internal/par"
	"hotline/internal/tensor"
)

// Attention is the TBSM time-series attention layer. Given per-timestep
// feature vectors h_1..h_T (each B x Dim) it uses the final timestep as the
// query, computes scaled dot-product scores against every timestep, softmaxes
// them, and returns the attention-weighted context vector (B x Dim).
//
// Forward/backward outputs are per-instance scratch reused across calls.
type Attention struct {
	Dim   int
	Steps int

	lastInputs []*tensor.Matrix
	lastAlphas tensor.Matrix // B x Steps softmax weights
	out        tensor.Matrix
	dAlphaBuf  tensor.Matrix // B x Steps backward staging (per-sample rows)
	grads      []*tensor.Matrix
}

// NewAttention returns an attention layer over steps timesteps of dim-wide
// vectors.
func NewAttention(dim, steps int) *Attention {
	if steps < 1 {
		panic("nn: Attention needs >= 1 step")
	}
	return &Attention{Dim: dim, Steps: steps}
}

// fwdRange computes samples [lo, hi) of the softmax weights and context.
func (a *Attention) fwdRange(out, alphas *tensor.Matrix, inputs []*tensor.Matrix, lo, hi int) {
	scale := float32(1 / math.Sqrt(float64(a.Dim)))
	query := inputs[a.Steps-1]
	for b := lo; b < hi; b++ {
		q := query.Row(b)
		arow := alphas.Row(b)
		var maxScore float32 = float32(math.Inf(-1))
		for t := 0; t < a.Steps; t++ {
			h := inputs[t].Row(b)
			var dot float32
			for k := range q {
				dot += q[k] * h[k]
			}
			arow[t] = dot * scale
			if arow[t] > maxScore {
				maxScore = arow[t]
			}
		}
		var sum float32
		for t := range arow {
			arow[t] = float32(math.Exp(float64(arow[t] - maxScore)))
			sum += arow[t]
		}
		for t := range arow {
			arow[t] /= sum
		}
		orow := out.Row(b)
		for t := 0; t < a.Steps; t++ {
			h := inputs[t].Row(b)
			w := arow[t]
			for k := range orow {
				orow[k] += w * h[k]
			}
		}
	}
}

// Forward consumes one (B x Dim) matrix per timestep and returns the
// (B x Dim) context (scratch owned by a, valid until the next Forward).
func (a *Attention) Forward(inputs []*tensor.Matrix) *tensor.Matrix {
	if len(inputs) != a.Steps {
		panic(fmt.Sprintf("nn: Attention wants %d inputs, got %d", a.Steps, len(inputs)))
	}
	batch := inputs[0].Rows
	for i, m := range inputs {
		if m.Rows != batch || m.Cols != a.Dim {
			panic(fmt.Sprintf("nn: Attention input %d is %dx%d want %dx%d", i, m.Rows, m.Cols, batch, a.Dim))
		}
	}
	a.lastInputs = inputs
	alphas := a.lastAlphas.ResizeNoZero(batch, a.Steps) // every cell written
	out := a.out.Resize(batch, a.Dim)
	perSample := 4 * int64(a.Steps) * int64(a.Dim)
	if par.Serial(batch, perSample) {
		a.fwdRange(out, alphas, inputs, 0, batch)
	} else {
		par.ForWork(batch, perSample, func(lo, hi int) {
			a.fwdRange(out, alphas, inputs, lo, hi)
		})
	}
	return out
}

// bwdRange computes samples [lo, hi) of every timestep gradient. Each
// sample's dα staging row is private to the sample, so shards never race.
func (a *Attention) bwdRange(grads []*tensor.Matrix, gradOut *tensor.Matrix, lo, hi int) {
	scale := float32(1 / math.Sqrt(float64(a.Dim)))
	for b := lo; b < hi; b++ {
		grow := gradOut.Row(b)
		arow := a.lastAlphas.Row(b)
		q := a.lastInputs[a.Steps-1].Row(b)

		// dL/dα_t = g·h_t ; context = Σ α_t h_t contributes α_t·g to dh_t.
		dAlpha := a.dAlphaBuf.Row(b)
		for t := 0; t < a.Steps; t++ {
			h := a.lastInputs[t].Row(b)
			gt := grads[t].Row(b)
			var dot float32
			for k := range grow {
				dot += grow[k] * h[k]
				gt[k] += arow[t] * grow[k]
			}
			dAlpha[t] = dot
		}
		// Softmax backward: ds_t = α_t (dα_t − Σ_u α_u dα_u).
		var inner float32
		for t := range dAlpha {
			inner += arow[t] * dAlpha[t]
		}
		for t := 0; t < a.Steps; t++ {
			dScore := arow[t] * (dAlpha[t] - inner) * scale
			if dScore == 0 {
				continue
			}
			// score_t = scale·(q·h_t): grad flows to h_t and to q (= h_{T-1}).
			h := a.lastInputs[t].Row(b)
			gt := grads[t].Row(b)
			gq := grads[a.Steps-1].Row(b)
			for k := range h {
				gt[k] += dScore * q[k]
				gq[k] += dScore * h[k]
			}
		}
	}
}

// Backward returns the gradients with respect to each timestep input
// (scratch owned by a, valid until the next Backward call).
func (a *Attention) Backward(gradOut *tensor.Matrix) []*tensor.Matrix {
	if a.lastInputs == nil {
		panic("nn: Attention.Backward before Forward")
	}
	batch := a.lastInputs[0].Rows
	if a.grads == nil {
		a.grads = make([]*tensor.Matrix, a.Steps)
		for t := range a.grads {
			a.grads[t] = &tensor.Matrix{}
		}
	}
	for t := range a.grads {
		a.grads[t].Resize(batch, a.Dim)
	}
	grads := a.grads
	a.dAlphaBuf.ResizeNoZero(batch, a.Steps) // per-sample rows fully overwritten
	perSample := 6 * int64(a.Steps) * int64(a.Dim)
	if par.Serial(batch, perSample) {
		a.bwdRange(grads, gradOut, 0, batch)
	} else {
		par.ForWork(batch, perSample, func(lo, hi int) {
			a.bwdRange(grads, gradOut, lo, hi)
		})
	}
	return grads
}
