package nn

import (
	"math"

	"hotline/internal/tensor"
)

// Adagrad is the adaptive-gradient optimizer the DLRM reference offers for
// production training: each parameter's learning rate shrinks with the
// accumulated squared gradient.
//
// Unlike SGD, Adagrad is non-linear in the gradient, so Hotline's executor
// must accumulate the popular and non-popular µ-batch gradients and apply
// ONE update per mini-batch (as this repository's executors do). Applying
// per-µ-batch updates would change the accumulator trajectory and break the
// paper's parity guarantee — tested in adagrad_test.go.
type Adagrad struct {
	LR     float32
	Eps    float32
	params []Param
	accum  []*tensor.Matrix // squared-gradient accumulators
}

// NewAdagrad returns an optimizer over params.
func NewAdagrad(params []Param, lr float32) *Adagrad {
	a := &Adagrad{LR: lr, Eps: 1e-8, params: params}
	a.accum = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		a.accum[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return a
}

// Step applies p -= lr·g/√(G+eps) with G += g² element-wise.
//
//hotline:hotpath
func (a *Adagrad) Step() {
	for i, p := range a.params {
		acc := a.accum[i]
		for j, g := range p.Grad.Data {
			acc.Data[j] += g * g
			p.Value.Data[j] -= a.LR * g / float32(math.Sqrt(float64(acc.Data[j]+a.Eps)))
		}
	}
}

// ZeroGrads clears all gradient accumulators (not the Adagrad state).
func (a *Adagrad) ZeroGrads() { ZeroGrads(a.params) }

// Params exposes the optimized parameter set.
func (a *Adagrad) Params() []Param { return a.params }
