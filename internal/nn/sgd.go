package nn

import "hotline/internal/tensor"

// SGD is a plain stochastic-gradient-descent optimizer over dense params.
// (DLRM's reference implementation also uses plain SGD for dense layers;
// sparse embedding rows are updated by embedding.SparseSGD.)
type SGD struct {
	LR     float32
	params []Param
}

// NewSGD returns an optimizer over params with the given learning rate.
func NewSGD(params []Param, lr float32) *SGD {
	return &SGD{LR: lr, params: params}
}

// Step applies p.Value -= lr·p.Grad to every parameter.
//
//hotline:hotpath
func (s *SGD) Step() {
	for _, p := range s.params {
		tensor.AxpyInto(p.Value, -s.LR, p.Grad)
	}
}

// ZeroGrads clears all gradient accumulators.
func (s *SGD) ZeroGrads() { ZeroGrads(s.params) }

// Params exposes the optimized parameter set.
func (s *SGD) Params() []Param { return s.params }
