package report

import (
	"strings"
	"testing"
)

func TestRenderAligns(t *testing.T) {
	tab := &Table{
		ID:     "fig0",
		Title:  "Test",
		Header: []string{"name", "value"},
		Notes:  "hello",
	}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "2")
	out := tab.Render()
	if !strings.Contains(out, "== fig0: Test ==") {
		t.Fatalf("missing title: %s", out)
	}
	if !strings.Contains(out, "note: hello") {
		t.Fatal("missing notes")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows + note
	if len(lines) != 6 {
		t.Fatalf("got %d lines: %s", len(lines), out)
	}
	// Value column must start at the same offset in both data rows.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "2") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tab := &Table{ID: "x", Title: "y", Header: []string{"a", "b", "c"}}
	tab.AddRowf("n", 1.23456, 7)
	if tab.Rows[0][1] != "1.235" {
		t.Fatalf("float formatting = %q", tab.Rows[0][1])
	}
	if tab.Rows[0][2] != "7" {
		t.Fatalf("int formatting = %q", tab.Rows[0][2])
	}
}
