package report

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a titled grid plus free-form notes
// (typically the paper-vs-measured comparison).
type Table struct {
	ID     string // experiment id, e.g. "fig19"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v (floats with %.3g).
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}
