// Package report renders experiment results as aligned text tables, the
// output format of cmd/hotline-bench and EXPERIMENTS.md.
//
// In the DESIGN.md layering the package is a leaf: internal/experiments
// produces Tables, the CLI and sweep engine render them, and nothing here
// depends on any other substrate.
package report
