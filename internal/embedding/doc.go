// Package embedding implements the sparse side of recommendation models:
// embedding tables with sum-pooled bag lookups (the EmbeddingBag operator),
// deterministic sparse gradients and SGD updates, the two-tier
// (GPU-HBM / CPU-DRAM) placement map that Hotline's access-aware layout
// produces, and the multi-node ShardedBag that routes the same operator
// through a shard.Service.
//
// In the DESIGN.md layering the package sits between internal/tensor (raw
// kernels) and internal/model (DLRM/TBSM assembly). Models hold their
// sparse parameters behind the Bag interface, so the single-node Table and
// the sharded implementation interchange freely; both obey the determinism
// contract (bit-identical results for every worker count and, for
// ShardedBag, every node count).
//
//hotline:deterministic
package embedding
