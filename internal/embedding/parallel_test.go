package embedding

import (
	"testing"

	"hotline/internal/par"
	"hotline/internal/tensor"
)

// Bag lookups, sparse backward and sparse SGD must be bit-identical for
// every worker count (the par determinism contract).
func TestTableParallelBitIdentical(t *testing.T) {
	const (
		rows    = 500
		dim     = 16
		samples = 700
		bag     = 4
	)
	rng := tensor.NewRNG(3)
	indices := make([][]int32, samples)
	for i := range indices {
		idxs := make([]int32, bag)
		for j := range idxs {
			idxs[j] = int32(rng.Intn(rows))
		}
		// Duplicate within one bag occasionally: the backward pass must sum
		// repeated contributions in order.
		if i%7 == 0 {
			idxs[1] = idxs[0]
		}
		indices[i] = idxs
	}
	gradOut := tensor.New(samples, dim)
	for i := range gradOut.Data {
		gradOut.Data[i] = float32(rng.NormFloat64())
	}

	type result struct {
		out *tensor.Matrix
		sg  SparseGrad
		w   *tensor.Matrix
	}
	run := func(workers int) result {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		tab := NewTable(rows, dim, tensor.NewRNG(9))
		out := tab.Forward(indices)
		sg := tab.Backward(gradOut)
		tab.ApplySparseSGD(sg, 0.05)
		return result{out: out, sg: sg, w: tab.W}
	}

	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !want.out.Equal(got.out) {
			t.Fatalf("Forward: workers=%d differs from workers=1", workers)
		}
		if len(want.sg.Rows) != len(got.sg.Rows) {
			t.Fatalf("Backward touched %d rows vs %d", len(got.sg.Rows), len(want.sg.Rows))
		}
		for i := range want.sg.Rows {
			if want.sg.Rows[i] != got.sg.Rows[i] {
				t.Fatalf("Backward row order differs at %d", i)
			}
		}
		if !want.sg.Grad.Equal(got.sg.Grad) {
			t.Fatalf("Backward grads: workers=%d differ from workers=1", workers)
		}
		if !want.w.Equal(got.w) {
			t.Fatalf("ApplySparseSGD: workers=%d weights differ from workers=1", workers)
		}
	}
}
