package embedding

import (
	"fmt"

	"hotline/internal/par"
	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// ShardedBag is the multi-node embedding-bag: the table's rows are
// partitioned round-robin across the nodes of a shard.Service (row r lives
// on node r mod N, packed at local index r/N), and every lookup and
// gradient push is routed through the service for device-cache simulation
// and all-to-all accounting.
//
// The operator math is bit-identical to the single-node Table for every
// node count: partitioning only relocates rows, the per-bag summation order
// and the sparse-gradient reduction order are exactly the serial ones, and
// the Service's accounting never touches values. TestShardedBagBitIdentical
// enforces this for node counts {1,2,4,8}.
type ShardedBag struct {
	Rows, Dim int
	// TableIdx keys the service's cache and traffic accounting.
	TableIdx int

	svc    *shard.Service
	shards []*tensor.Matrix // shards[n] packs the rows owned by node n

	lastIndices [][]int32
}

// ShardBag partitions a table's rows across the service's nodes, copying
// each row into its owner shard. The source table is not retained.
func ShardBag(t *Table, svc *shard.Service, tableIdx int) *ShardedBag {
	nodes := svc.Nodes()
	s := &ShardedBag{
		Rows: t.Rows, Dim: t.Dim, TableIdx: tableIdx,
		svc: svc, shards: make([]*tensor.Matrix, nodes),
	}
	for n := 0; n < nodes; n++ {
		owned := 0
		if t.Rows > n {
			owned = (t.Rows - n + nodes - 1) / nodes
		}
		s.shards[n] = tensor.New(owned, t.Dim)
	}
	for r := 0; r < t.Rows; r++ {
		copy(s.shards[r%nodes].Row(r/nodes), t.W.Row(r))
	}
	return s
}

// Service returns the shard service the bag routes through.
func (s *ShardedBag) Service() *shard.Service { return s.svc }

// RowView implements Bag: a live view of row r inside its owner shard.
func (s *ShardedBag) RowView(r int) []float32 {
	nodes := len(s.shards)
	return s.shards[r%nodes].Row(r / nodes)
}

// Forward implements Bag: the sum-pooled lookup with shard routing. The
// service accounting runs as a serial pre-pass (cache state must evolve in
// batch order); the arithmetic then shards across workers exactly like the
// single-node operator.
func (s *ShardedBag) Forward(indices [][]int32) *tensor.Matrix {
	s.svc.RecordGather(s.TableIdx, indices)
	out := tensor.New(len(indices), s.Dim)
	lookups := int64(1)
	if len(indices) > 0 {
		lookups += int64(len(indices[0]))
	}
	par.ForWork(len(indices), lookups*int64(s.Dim), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			orow := out.Row(b)
			for _, ix := range indices[b] {
				if ix < 0 || int(ix) >= s.Rows {
					panic(fmt.Sprintf("embedding: index %d out of range [0,%d)", ix, s.Rows))
				}
				erow := s.RowView(int(ix))
				for k := range orow {
					orow[k] += erow[k]
				}
			}
		}
	})
	s.lastIndices = indices
	return out
}

// Backward implements Bag.
func (s *ShardedBag) Backward(gradOut *tensor.Matrix) SparseGrad {
	if s.lastIndices == nil {
		panic("embedding: Backward before Forward")
	}
	return s.BackwardIndices(s.lastIndices, gradOut)
}

// BackwardIndices implements Bag: the storage-independent adjoint plus the
// gradient scatter accounting (each node pre-reduces locally and pushes one
// message per distinct remote row to its owner).
func (s *ShardedBag) BackwardIndices(indices [][]int32, gradOut *tensor.Matrix) SparseGrad {
	if gradOut.Rows != len(indices) || gradOut.Cols != s.Dim {
		panic(fmt.Sprintf("embedding: Backward grad %dx%d want %dx%d",
			gradOut.Rows, gradOut.Cols, len(indices), s.Dim))
	}
	s.svc.RecordScatter(s.TableIdx, indices)
	return bagBackward(indices, gradOut, s.Dim)
}

// ApplySparseSGD implements Bag: each owner node updates its resident rows.
func (s *ShardedBag) ApplySparseSGD(sg SparseGrad, lr float32) {
	par.ForWork(len(sg.Rows), int64(s.Dim)*2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			wrow := s.RowView(int(sg.Rows[i]))
			grow := sg.Grad.Row(i)
			for k := range wrow {
				wrow[k] -= lr * grow[k]
			}
		}
	})
}

// NumRows implements Bag.
func (s *ShardedBag) NumRows() int { return s.Rows }

// EmbedDim implements Bag.
func (s *ShardedBag) EmbedDim() int { return s.Dim }

// SizeBytes implements Bag (the logical footprint; shards add no padding).
func (s *ShardedBag) SizeBytes() int64 { return int64(s.Rows) * int64(s.Dim) * 4 }

// ShadowBag implements Bag: the shadow shares shard storage and the service
// (its accounting is mutex-guarded) with a private forward cache.
func (s *ShardedBag) ShadowBag() Bag {
	return &ShardedBag{
		Rows: s.Rows, Dim: s.Dim, TableIdx: s.TableIdx,
		svc: s.svc, shards: s.shards,
	}
}

// Materialize reassembles the partitioned rows into one contiguous matrix
// (tests and state comparisons).
func (s *ShardedBag) Materialize() *tensor.Matrix {
	out := tensor.New(s.Rows, s.Dim)
	for r := 0; r < s.Rows; r++ {
		copy(out.Row(r), s.RowView(r))
	}
	return out
}

// ShardBags partitions every table across the service, preserving table
// order (table i keeps accounting key i).
func ShardBags(ts Tables, svc *shard.Service) Bags {
	out := make(Bags, len(ts))
	for i, t := range ts {
		out[i] = ShardBag(t, svc, i)
	}
	return out
}
