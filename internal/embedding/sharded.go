package embedding

import (
	"fmt"

	"hotline/internal/par"
	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// ShardedBag is the multi-node embedding-bag: the table's rows are
// partitioned across the nodes of a shard.Service under its placement
// policy (round-robin by default; capacity-weighted and hot-row-aware
// partitioners relocate rows without touching any math), and every lookup
// and gradient push is routed through the service for device-cache
// simulation and all-to-all accounting.
//
// The operator math is bit-identical to the single-node Table for every
// node count and placement: partitioning only relocates rows, the per-bag
// summation order and the sparse-gradient reduction order are exactly the
// serial ones, and the Service's accounting never touches values.
// TestShardedBagBitIdentical enforces this for node counts {1,2,4,8}.
//
// When the service carries an async gather engine, Prefetch issues a
// µ-batch's fabric fetches ahead of time; the matching Forward then blocks
// only on whatever the overlap failed to hide and reads the remote rows
// from the staging buffer. Up to pipeline-depth windows can be open at
// once (the depth-k cross-iteration pipeline): the bag and its shadows
// share one shard.WindowQueue registering every issued window in stream
// order, sparse updates mark the staged rows they rewrite as dirty, and
// the consuming Forward delta-repairs them first — so the values applied
// are bit-identical to a synchronous gather at consume time, for any
// depth. Like Table, forward output and sparse-gradient buffers are
// per-instance scratch reused across calls.
type ShardedBag struct {
	Rows, Dim int
	// TableIdx keys the service's cache and traffic accounting.
	TableIdx int

	svc    *shard.Service
	shards []*tensor.Matrix // shards[n] packs the rows owned by node n
	// owner[r] / local[r] locate global row r inside its owner shard;
	// shared (read-only) with shadows.
	owner []int32
	local []int32

	// windows is the open prefetch-window registry and dirty-row tracker,
	// shared with shadows (a shadow issues the lookahead windows; the
	// primary bag's sparse updates invalidate their staged rows).
	windows *shard.WindowQueue

	lastIndices [][]int32
	fwdOut      tensor.Matrix
	bw          backwardArena
	fetchFn     shard.FetchFunc // bound once; a per-call method value would allocate
	rowAt       shard.RowAt     // bound once, like fetchFn; source for scatter pushes
}

// ShardBag partitions a table's rows across the service's nodes under its
// placement policy, copying each row into its owner shard. The source table
// is not retained.
func ShardBag(t *Table, svc *shard.Service, tableIdx int) *ShardedBag {
	nodes := svc.Nodes()
	s := &ShardedBag{
		Rows: t.Rows, Dim: t.Dim, TableIdx: tableIdx,
		svc: svc, shards: make([]*tensor.Matrix, nodes),
		owner: make([]int32, t.Rows), local: make([]int32, t.Rows),
	}
	counts := make([]int, nodes)
	for r := 0; r < t.Rows; r++ {
		o := svc.Owner(tableIdx, int32(r))
		s.owner[r] = int32(o)
		s.local[r] = int32(counts[o])
		counts[o]++
	}
	for n := 0; n < nodes; n++ {
		s.shards[n] = tensor.New(counts[n], t.Dim)
	}
	for r := 0; r < t.Rows; r++ {
		copy(s.shards[s.owner[r]].Row(int(s.local[r])), t.W.Row(r))
	}
	s.windows = svc.NewWindowQueue(tableIdx)
	s.fetchFn = s.fetchRow
	s.rowAt = s.rowViewAt
	// Declare the table to the fabric: on a multi-process transport this is
	// the initial shard sync (every row is pushed to its owner node), so
	// worker stores serve exactly the bits the mirror above holds.
	svc.RegisterTable(tableIdx, t.Dim, t.Rows, s.rowAt)
	return s
}

// Service returns the shard service the bag routes through.
func (s *ShardedBag) Service() *shard.Service { return s.svc }

// RowView implements Bag: a live view of row r inside its owner shard.
//
//hotline:hotpath
func (s *ShardedBag) RowView(r int) []float32 {
	return s.shards[s.owner[r]].Row(int(s.local[r]))
}

// Prefetch issues the asynchronous gather of a µ-batch's remote rows: the
// service plans the fabric fetches (advancing cache state and counters
// exactly like a synchronous gather) and the engine streams them into a
// staging buffer while the caller computes something else — the Hotline
// executor overlaps the non-popular gather with the popular µ-batch inside
// an iteration, and the depth-k cross-iteration pipeline issues the next
// k-1 mini-batches' gathers right after the current sparse update so they
// stream through the dense step and the following iterations. Windows are
// registered FIFO in the shared WindowQueue; the Forward over the same
// index set consumes the oldest one. A no-op without an engine or on a
// single node.
//
//hotline:hotpath
func (s *ShardedBag) Prefetch(indices [][]int32) {
	g := s.svc.Gatherer()
	if g == nil || s.svc.Nodes() == 1 {
		return
	}
	plan := s.svc.PlanGather(s.TableIdx, indices)
	var h *shard.Handle
	if plan != nil {
		h = g.Submit(plan, s.Dim, s.fetchFn)
	}
	s.windows.Push(indices, h)
}

// AbortPrefetch joins and discards every outstanding prefetch window of
// this bag and its shadows (their accounting already happened — wasted
// prefetches). The executor calls it when a pipelined lookahead turns out
// not to match the batches actually trained, so a reused index buffer can
// never satisfy a stale window.
func (s *ShardedBag) AbortPrefetch() { s.windows.Abort() }

// PendingWindows reports the open (issued, unconsumed) prefetch windows
// shared across this bag and its shadows.
func (s *ShardedBag) PendingWindows() int { return s.windows.Len() }

// fetchRow copies one owner-resident row into its staging slot.
//
//hotline:hotpath
func (s *ShardedBag) fetchRow(row int32, dst []float32) {
	copy(dst, s.RowView(int(row)))
}

// rowViewAt is RowView with the fabric's signature (bound once into rowAt).
//
//hotline:hotpath
func (s *ShardedBag) rowViewAt(row int32) []float32 { return s.RowView(int(row)) }

// fwdRange computes output rows [lo, hi) of the pooled lookup, reading
// fabric-fetched rows from the staging buffer.
//
//hotline:hotpath
func (s *ShardedBag) fwdRange(out *tensor.Matrix, indices [][]int32, staged *shard.Staging, lo, hi int) {
	for b := lo; b < hi; b++ {
		orow := out.Row(b)
		for _, ix := range indices[b] {
			if ix < 0 || int(ix) >= s.Rows {
				panic(fmt.Sprintf("embedding: index %d out of range [0,%d)", ix, s.Rows))
			}
			erow := s.RowView(int(ix))
			if staged != nil {
				// Fabric-fetched rows are applied from the staging
				// buffer in fixed batch order; the copies are
				// bit-identical to the owner-shard rows.
				if v, ok := staged.Lookup(ix); ok {
					erow = v
				}
			}
			for k := range orow {
				orow[k] += erow[k]
			}
		}
	}
}

// Forward implements Bag: the sum-pooled lookup with shard routing. The
// service accounting runs as a serial pre-pass (cache state must evolve in
// batch order); the arithmetic then shards across workers exactly like the
// single-node operator. When the oldest open Prefetch window matches the
// index set it is consumed — blocking only on the exposed remainder of the
// gather, with rows dirtied by intervening sparse updates delta-repaired
// first (or served stale under Service.SetStaleReads). A non-matching
// forward (an evaluation pass, a popular µ-batch) leaves younger windows
// untouched and, with an engine attached, stages its fabric rows
// synchronously — the measured baseline the overlap is compared against.
// Consumed staging buffers are recycled into the engine's ring.
//
//hotline:hotpath
func (s *ShardedBag) Forward(indices [][]int32) *tensor.Matrix {
	var staged *shard.Staging
	var win *shard.Window
	g := s.svc.Gatherer()
	if w := s.windows.Match(indices); w != nil {
		win = w
		staged = s.windows.Consume(w, s.fetchFn)
	} else if g != nil && s.svc.Nodes() > 1 {
		if plan := s.svc.PlanGather(s.TableIdx, indices); plan != nil {
			staged = g.GatherSync(plan, s.Dim, s.fetchFn)
		}
	} else {
		s.svc.RecordGather(s.TableIdx, indices)
	}

	out := s.fwdOut.Resize(len(indices), s.Dim)
	perItem := bagLookups(indices, s.Dim)
	if par.Serial(len(indices), perItem) {
		s.fwdRange(out, indices, staged, 0, len(indices))
	} else {
		par.ForWork(len(indices), perItem, func(lo, hi int) {
			s.fwdRange(out, indices, staged, lo, hi)
		})
	}
	if staged != nil {
		g.Release(staged)
	}
	if win != nil {
		s.windows.Recycle(win)
	}
	s.lastIndices = indices
	return out
}

// ServeForward is the online-inference read path: the pooled lookup with
// serve-side routing. Unlike Forward it is strictly read-only with respect
// to training machinery — it never matches or consumes a prefetch window
// (open lookahead windows belong to the training stream and must survive a
// concurrent predict), never arms Backward, and books its traffic into the
// service's serve counters (ServeSnapshot) so training traffic fractions
// stay clean. The shared device caches ARE warmed: live request traffic
// keeps the popular rows resident for both paths, which is the serving
// story's whole point. Rows are read directly from the owner shards — the
// accounting pass prices the fabric gather; no staging copy is needed for
// a read that applies no delta repair.
//
// The returned matrix is this instance's forward scratch. Serve replicas
// must be shadows (ShadowBag / model.NewShadow): calling ServeForward on
// an instance with an in-flight Forward→Backward pair would overwrite the
// activations that backward still reads.
//
//hotline:hotpath
func (s *ShardedBag) ServeForward(indices [][]int32) *tensor.Matrix {
	var staged *shard.Staging
	if s.svc.Multiproc() || s.svc.Quantized() {
		// On a real fabric the read path must actually cross it: stage the
		// remote rows synchronously from their owner processes (timed into
		// the serve-side wall meter) and read the pooled values from the
		// staging buffer. Precision-tiered caches stage too — warm-tier hits
		// must be served through the fused dequantize-gather, not read exact
		// from the mirror.
		if plan := s.svc.PlanServeGather(s.TableIdx, indices); plan != nil {
			staged = s.svc.ServeGatherSync(plan, s.Dim, s.fetchFn)
		}
	} else {
		s.svc.RecordServeGather(s.TableIdx, indices)
	}
	out := s.fwdOut.Resize(len(indices), s.Dim)
	perItem := bagLookups(indices, s.Dim)
	if par.Serial(len(indices), perItem) {
		s.fwdRange(out, indices, staged, 0, len(indices))
	} else {
		par.ForWork(len(indices), perItem, func(lo, hi int) {
			s.fwdRange(out, indices, staged, lo, hi)
		})
	}
	if staged != nil {
		s.svc.Gatherer().Release(staged)
	}
	return out
}

// Backward implements Bag.
//
//hotline:hotpath
func (s *ShardedBag) Backward(gradOut *tensor.Matrix) SparseGrad {
	if s.lastIndices == nil {
		panic("embedding: Backward before Forward")
	}
	return s.BackwardIndices(s.lastIndices, gradOut)
}

// BackwardIndices implements Bag: the storage-independent adjoint plus the
// gradient scatter accounting (each node pre-reduces locally and pushes one
// message per distinct remote row to its owner).
//
//hotline:hotpath
func (s *ShardedBag) BackwardIndices(indices [][]int32, gradOut *tensor.Matrix) SparseGrad {
	if gradOut.Rows != len(indices) || gradOut.Cols != s.Dim {
		panic(fmt.Sprintf("embedding: Backward grad %dx%d want %dx%d",
			gradOut.Rows, gradOut.Cols, len(indices), s.Dim))
	}
	s.svc.RecordScatter(s.TableIdx, indices)
	return bagBackward(&s.bw, indices, gradOut, s.Dim)
}

// sgdRange applies rows [lo, hi) of a sparse SGD update.
//
//hotline:hotpath
func (s *ShardedBag) sgdRange(sg SparseGrad, lr float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		wrow := s.RowView(int(sg.Rows[i]))
		grow := sg.Grad.Row(i)
		for k := range wrow {
			wrow[k] -= lr * grow[k]
		}
	}
}

// ApplySparseSGD implements Bag: each owner node updates its resident rows.
// Open prefetch windows that staged any updated row are marked dirty first
// (and joined, so no in-flight fetch races the write); the consuming
// forward repairs them.
//
//hotline:mutates-rows
//hotline:hotpath
func (s *ShardedBag) ApplySparseSGD(sg SparseGrad, lr float32) {
	s.windows.MarkDirty(sg.Rows)
	perItem := int64(s.Dim) * 2
	if par.Serial(len(sg.Rows), perItem) {
		s.sgdRange(sg, lr, 0, len(sg.Rows))
	} else {
		par.ForWork(len(sg.Rows), perItem, func(lo, hi int) {
			s.sgdRange(sg, lr, lo, hi)
		})
	}
	// Mirror the new row values to their owner processes (the pre-reduced
	// scatter). No-op on the in-proc transport.
	s.svc.PushUpdates(s.TableIdx, sg.Rows, s.rowAt)
	s.bw.reset()
}

// ApplySparseAdagrad implements Bag: the adaptive update runs on each
// owner-resident row against the shared (globally indexed) accumulator, in
// the same serial row order as the single-node table — bit-identical for
// every node count and placement. Like the SGD path, staged copies of the
// updated rows in open prefetch windows are marked dirty first.
//
//hotline:mutates-rows
//hotline:hotpath
func (s *ShardedBag) ApplySparseAdagrad(st *AdagradState, sg SparseGrad, lr float32) {
	s.windows.MarkDirty(sg.Rows)
	for i, ix := range sg.Rows {
		adagradRow(s.RowView(int(ix)), st.Accum.Row(int(ix)), sg.Grad.Row(i), lr, st.Eps)
	}
	// Only the row values travel: the Adagrad accumulator is coordinator
	// state, so the scatter stays one message per distinct row.
	s.svc.PushUpdates(s.TableIdx, sg.Rows, s.rowAt)
	s.bw.reset()
}

// ResetStepScratch rewinds the backward arena at a step boundary (see
// Table.ResetStepScratch — shadows never see the apply-time rewind).
//
//hotline:hotpath
func (s *ShardedBag) ResetStepScratch() { s.bw.reset() }

// NumRows implements Bag.
func (s *ShardedBag) NumRows() int { return s.Rows }

// EmbedDim implements Bag.
func (s *ShardedBag) EmbedDim() int { return s.Dim }

// SizeBytes implements Bag (the logical footprint; shards add no padding).
func (s *ShardedBag) SizeBytes() int64 { return int64(s.Rows) * int64(s.Dim) * 4 }

// ShadowBag implements Bag: the shadow shares shard storage, the placement
// maps, the service (its accounting is mutex-guarded) AND the prefetch
// window registry — a lookahead window issued on the shadow must be
// visible to the primary bag's sparse updates for dirty-row tracking —
// with private forward state.
func (s *ShardedBag) ShadowBag() Bag {
	sh := &ShardedBag{
		Rows: s.Rows, Dim: s.Dim, TableIdx: s.TableIdx,
		svc: s.svc, shards: s.shards, owner: s.owner, local: s.local,
		windows: s.windows,
	}
	sh.fetchFn = sh.fetchRow
	sh.rowAt = sh.rowViewAt
	return sh
}

// Materialize reassembles the partitioned rows into one contiguous matrix
// (tests and state comparisons).
func (s *ShardedBag) Materialize() *tensor.Matrix {
	out := tensor.New(s.Rows, s.Dim)
	for r := 0; r < s.Rows; r++ {
		copy(out.Row(r), s.RowView(r))
	}
	return out
}

// ShardBags partitions every table across the service, preserving table
// order (table i keeps accounting key i).
func ShardBags(ts Tables, svc *shard.Service) Bags {
	out := make(Bags, len(ts))
	for i, t := range ts {
		out[i] = ShardBag(t, svc, i)
	}
	return out
}
