package embedding

import (
	"math/bits"
	"sort"
)

// Tier says where an embedding row physically lives in the simulated system.
type Tier uint8

const (
	// TierCPU rows live in host DRAM (the not-frequently-accessed majority).
	TierCPU Tier = iota
	// TierGPU rows are replicated in every GPU's HBM (frequently accessed).
	TierGPU
)

// hotBitmapMaxRows bounds the dense-bitmap fast path of a hot set: rows
// below the bound live in a bitmap (grown lazily to the highest marked row,
// at most 256 KB per table), rows above it fall back to a map. Every scaled
// table this repository ships fits the bitmap entirely, so the per-lookup
// probe — the classification inner loop and the shard service's admission
// check — is a shift, a mask and a load instead of a map access.
const hotBitmapMaxRows = 1 << 21

// hotSet records one table's GPU-resident rows: a dense bitmap for the
// affordable row range plus an overflow map for anything beyond it.
type hotSet struct {
	bits     []uint64
	overflow map[int32]struct{}
	count    int
}

// mark adds row to the set; reports whether it was newly added.
func (h *hotSet) mark(row int32) bool {
	if row < hotBitmapMaxRows {
		w, b := int(row>>6), uint64(1)<<(row&63)
		if w >= len(h.bits) {
			if w < cap(h.bits) {
				// The spare capacity was zeroed by make and never written.
				h.bits = h.bits[:w+1]
			} else {
				// Grow geometrically: placements mark the Zipf tail in
				// ascending row order, and word-at-a-time growth would copy
				// quadratically.
				newCap := w + 1
				if c := 2 * cap(h.bits); c > newCap {
					newCap = c
				}
				grown := make([]uint64, w+1, newCap)
				copy(grown, h.bits)
				h.bits = grown
			}
		}
		if h.bits[w]&b != 0 {
			return false
		}
		h.bits[w] |= b
		h.count++
		return true
	}
	if h.overflow == nil {
		h.overflow = make(map[int32]struct{})
	}
	if _, ok := h.overflow[row]; ok {
		return false
	}
	h.overflow[row] = struct{}{}
	h.count++
	return true
}

// has reports membership. Rows under the bitmap bound never consult the
// overflow map (they can only have been marked into the bitmap).
func (h *hotSet) has(row int32) bool {
	if row < hotBitmapMaxRows {
		w := int(row >> 6)
		return w < len(h.bits) && h.bits[w]&(uint64(1)<<(row&63)) != 0
	}
	_, ok := h.overflow[row]
	return ok
}

// rows returns the members in ascending order.
func (h *hotSet) rows() []int32 {
	out := make([]int32, 0, h.count)
	for w, word := range h.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, int32(w<<6+b))
			word &= word - 1
		}
	}
	if len(h.overflow) > 0 {
		start := len(out)
		for r := range h.overflow {
			out = append(out, r)
		}
		sort.Slice(out[start:], func(i, j int) bool { return out[start+i] < out[start+j] })
	}
	return out
}

// Placement records, per table, which rows are GPU-resident. It is the
// product of Hotline's access-aware layout (learning phase) or FAE's offline
// profiler, and is consumed by the runtime schedulers.
type Placement struct {
	hot      []hotSet // per table: set of GPU-resident rows
	Dim      int
	HotBytes int64
}

// NewPlacement returns an all-CPU placement for numTables tables of the
// given embedding dimension.
func NewPlacement(numTables, dim int) *Placement {
	return &Placement{hot: make([]hotSet, numTables), Dim: dim}
}

// NumTables returns the table count.
func (p *Placement) NumTables() int { return len(p.hot) }

// MarkHot places row of table on the GPU tier.
func (p *Placement) MarkHot(table int, row int32) {
	if p.hot[table].mark(row) {
		p.HotBytes += int64(p.Dim) * 4
	}
}

// TierOf reports where a row lives.
func (p *Placement) TierOf(table int, row int32) Tier {
	if p.hot[table].has(row) {
		return TierGPU
	}
	return TierCPU
}

// IsHot reports whether a row is GPU-resident.
func (p *Placement) IsHot(table int, row int32) bool {
	return p.hot[table].has(row)
}

// HotRowCount returns the number of GPU-resident rows in one table.
func (p *Placement) HotRowCount(table int) int { return p.hot[table].count }

// TotalHotRows returns the GPU-resident row count across all tables.
func (p *Placement) TotalHotRows() int {
	n := 0
	for i := range p.hot {
		n += p.hot[i].count
	}
	return n
}

// HotRows returns the sorted hot rows of one table (deterministic iteration
// for replication and tests).
func (p *Placement) HotRows(table int) []int32 {
	return p.hot[table].rows()
}

// InputIsPopular reports whether a sample is popular: every index it touches,
// across all tables, must be GPU-resident (the paper's classification rule —
// one cold access makes the whole input non-popular).
func (p *Placement) InputIsPopular(sparse [][]int32) bool {
	for table, idxs := range sparse {
		for _, ix := range idxs {
			if !p.IsHot(table, ix) {
				return false
			}
		}
	}
	return true
}

// AccessCount is a (table, row) access-frequency record.
type AccessCount struct {
	Table int
	Row   int32
	Count int64
}

// PlacementFromCounts builds the access-aware layout: rows are ranked by
// access count globally and marked hot greedily until budgetBytes of HBM is
// consumed. This models both Hotline's learning phase output and FAE's
// offline profiler output.
func PlacementFromCounts(counts []AccessCount, numTables, dim int, budgetBytes int64) *Placement {
	sorted := make([]AccessCount, len(counts))
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		if sorted[i].Table != sorted[j].Table {
			return sorted[i].Table < sorted[j].Table
		}
		return sorted[i].Row < sorted[j].Row
	})
	p := NewPlacement(numTables, dim)
	rowBytes := int64(dim) * 4
	for _, c := range sorted {
		if p.HotBytes+rowBytes > budgetBytes {
			break
		}
		p.MarkHot(c.Table, c.Row)
	}
	return p
}
