package embedding

import "sort"

// Tier says where an embedding row physically lives in the simulated system.
type Tier uint8

const (
	// TierCPU rows live in host DRAM (the not-frequently-accessed majority).
	TierCPU Tier = iota
	// TierGPU rows are replicated in every GPU's HBM (frequently accessed).
	TierGPU
)

// Placement records, per table, which rows are GPU-resident. It is the
// product of Hotline's access-aware layout (learning phase) or FAE's offline
// profiler, and is consumed by the runtime schedulers.
type Placement struct {
	hot      []map[int32]struct{} // per table: set of GPU-resident rows
	Dim      int
	HotBytes int64
}

// NewPlacement returns an all-CPU placement for numTables tables of the
// given embedding dimension.
func NewPlacement(numTables, dim int) *Placement {
	p := &Placement{hot: make([]map[int32]struct{}, numTables), Dim: dim}
	for i := range p.hot {
		p.hot[i] = make(map[int32]struct{})
	}
	return p
}

// NumTables returns the table count.
func (p *Placement) NumTables() int { return len(p.hot) }

// MarkHot places row of table on the GPU tier.
func (p *Placement) MarkHot(table int, row int32) {
	if _, ok := p.hot[table][row]; !ok {
		p.hot[table][row] = struct{}{}
		p.HotBytes += int64(p.Dim) * 4
	}
}

// TierOf reports where a row lives.
func (p *Placement) TierOf(table int, row int32) Tier {
	if _, ok := p.hot[table][row]; ok {
		return TierGPU
	}
	return TierCPU
}

// IsHot reports whether a row is GPU-resident.
func (p *Placement) IsHot(table int, row int32) bool {
	_, ok := p.hot[table][row]
	return ok
}

// HotRowCount returns the number of GPU-resident rows in one table.
func (p *Placement) HotRowCount(table int) int { return len(p.hot[table]) }

// TotalHotRows returns the GPU-resident row count across all tables.
func (p *Placement) TotalHotRows() int {
	n := 0
	for _, m := range p.hot {
		n += len(m)
	}
	return n
}

// HotRows returns the sorted hot rows of one table (deterministic iteration
// for replication and tests).
func (p *Placement) HotRows(table int) []int32 {
	rows := make([]int32, 0, len(p.hot[table]))
	for r := range p.hot[table] {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// InputIsPopular reports whether a sample is popular: every index it touches,
// across all tables, must be GPU-resident (the paper's classification rule —
// one cold access makes the whole input non-popular).
func (p *Placement) InputIsPopular(sparse [][]int32) bool {
	for table, idxs := range sparse {
		for _, ix := range idxs {
			if !p.IsHot(table, ix) {
				return false
			}
		}
	}
	return true
}

// AccessCount is a (table, row) access-frequency record.
type AccessCount struct {
	Table int
	Row   int32
	Count int64
}

// PlacementFromCounts builds the access-aware layout: rows are ranked by
// access count globally and marked hot greedily until budgetBytes of HBM is
// consumed. This models both Hotline's learning phase output and FAE's
// offline profiler output.
func PlacementFromCounts(counts []AccessCount, numTables, dim int, budgetBytes int64) *Placement {
	sorted := make([]AccessCount, len(counts))
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		if sorted[i].Table != sorted[j].Table {
			return sorted[i].Table < sorted[j].Table
		}
		return sorted[i].Row < sorted[j].Row
	})
	p := NewPlacement(numTables, dim)
	rowBytes := int64(dim) * 4
	for _, c := range sorted {
		if p.HotBytes+rowBytes > budgetBytes {
			break
		}
		p.MarkHot(c.Table, c.Row)
	}
	return p
}
