package embedding

import "hotline/internal/tensor"

// Bag is the embedding-bag operator: sum-pooled multi-hot lookups with
// deterministic sparse gradients and in-place SGD. Two implementations
// exist — the single-node Table and the multi-node ShardedBag — and they
// are bit-identical on every input: the models above never care where a row
// physically lives.
type Bag interface {
	// Forward performs the sum-pooled bag lookup for indices[b] per sample.
	Forward(indices [][]int32) *tensor.Matrix
	// Backward folds the pooled output gradient back onto the rows of the
	// last Forward call.
	Backward(gradOut *tensor.Matrix) SparseGrad
	// BackwardIndices is Backward against an explicit index set.
	BackwardIndices(indices [][]int32, gradOut *tensor.Matrix) SparseGrad
	// ApplySparseSGD performs W[row] -= lr·grad for every row in sg.
	ApplySparseSGD(sg SparseGrad, lr float32)
	// ApplySparseAdagrad performs the adaptive per-row update
	// G[row] += g², W[row] -= lr·g/√(G[row]+eps) against a globally-indexed
	// accumulator (see NewAdagradStateFor); sharded and single-node bags
	// produce bit-identical state. Pass the full mini-batch gradient — the
	// step is non-linear in g.
	ApplySparseAdagrad(st *AdagradState, sg SparseGrad, lr float32)
	// NumRows returns the table's row count.
	NumRows() int
	// EmbedDim returns the embedding dimension.
	EmbedDim() int
	// SizeBytes returns the parameter footprint.
	SizeBytes() int64
	// RowView returns one row's weights (a live view, not a copy).
	RowView(r int) []float32
	// ShadowBag returns a weight-sharing shadow with private forward state,
	// for concurrent read-only passes against the same parameters.
	ShadowBag() Bag
}

// Bags is a model's full sparse parameter set behind the Bag interface, one
// bag per categorical feature.
type Bags []Bag

// Bags adapts concrete Tables to the interface slice.
func (ts Tables) Bags() Bags {
	out := make(Bags, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}

// Shadow returns weight-sharing shadows of every bag.
func (bs Bags) Shadow() Bags {
	out := make(Bags, len(bs))
	for i, b := range bs {
		out[i] = b.ShadowBag()
	}
	return out
}

// SizeBytes returns the total sparse footprint.
func (bs Bags) SizeBytes() int64 {
	var n int64
	for _, b := range bs {
		n += b.SizeBytes()
	}
	return n
}

// BagsEqual reports whether two bag sets hold bit-identical weights,
// regardless of their physical layout (a sharded set can equal a
// single-node set).
func BagsEqual(a, b Bags) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].NumRows() != b[i].NumRows() || a[i].EmbedDim() != b[i].EmbedDim() {
			return false
		}
		for r := 0; r < a[i].NumRows(); r++ {
			ra, rb := a[i].RowView(r), b[i].RowView(r)
			for k := range ra {
				if ra[k] != rb[k] {
					return false
				}
			}
		}
	}
	return true
}

// MaxAbsDiffBags returns the largest absolute weight difference between two
// bag sets of identical shape.
func MaxAbsDiffBags(a, b Bags) float64 {
	var max float64
	for i := range a {
		for r := 0; r < a[i].NumRows(); r++ {
			ra, rb := a[i].RowView(r), b[i].RowView(r)
			for k := range ra {
				d := float64(ra[k] - rb[k])
				if d < 0 {
					d = -d
				}
				if d > max {
					max = d
				}
			}
		}
	}
	return max
}
