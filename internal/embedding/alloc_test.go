package embedding

import (
	"testing"

	"hotline/internal/par"
	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// The zero-allocation contract holds for the steady-state serial path:
// at Parallelism(1) every per-step buffer is reused, so after a short
// warm-up the hot operators perform no allocations at all. (Parallel runs
// allocate the goroutine fan-out itself; that is the cost of forking, not
// of the operators.)

// allocIdx builds a deterministic multi-hot index stream.
func allocIdx(rows, batch, lookups, salt int) [][]int32 {
	idx := make([][]int32, batch)
	for b := range idx {
		l := make([]int32, lookups)
		for j := range l {
			l[j] = int32((salt + b*7 + j*13) % rows)
		}
		idx[b] = l
	}
	return idx
}

// TestTableForwardBackwardZeroAlloc: the single-node bag's forward, the
// sorted-pair backward and the sparse update reuse their scratch entirely.
func TestTableForwardBackwardZeroAlloc(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	tab := NewTable(256, 16, tensor.NewRNG(1))
	idx := allocIdx(256, 32, 3, 1)
	grad := tensor.New(32, 16)
	grad.Fill(0.01)
	for i := 0; i < 3; i++ { // warm the scratch buffers
		tab.Forward(idx)
		sg := tab.Backward(grad)
		tab.ApplySparseSGD(sg, 0.01)
	}
	if n := testing.AllocsPerRun(50, func() {
		tab.Forward(idx)
		sg := tab.Backward(grad)
		tab.ApplySparseSGD(sg, 0.01)
	}); n > 0 {
		t.Fatalf("Table forward/backward/update allocated %.1f times per step, want 0", n)
	}
}

// newAllocService builds a 4-node service with an async engine attached.
func newAllocService(t *testing.T, dim int) *shard.Service {
	t.Helper()
	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 8 * int64(dim) * 4, RowBytes: int64(dim) * 4,
	}, nil)
	svc.EnableAsyncGather()
	return svc
}

// TestShardedForwardZeroAlloc: the synchronous staged-gather path — plan,
// staging, accounting dedup and output — cycles entirely through the
// engine's ring and the service scratch.
func TestShardedForwardZeroAlloc(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	const dim = 16
	svc := newAllocService(t, dim)
	sb := ShardBag(NewTable(256, dim, tensor.NewRNG(2)), svc, 0)
	idx := allocIdx(256, 32, 3, 2)
	grad := tensor.New(32, dim)
	grad.Fill(0.01)
	for i := 0; i < 3; i++ {
		sb.Forward(idx)
		sg := sb.Backward(grad)
		sb.ApplySparseSGD(sg, 0.01)
	}
	if n := testing.AllocsPerRun(50, func() {
		sb.Forward(idx)
		sg := sb.Backward(grad)
		sb.ApplySparseSGD(sg, 0.01)
	}); n > 0 {
		t.Fatalf("sharded sync forward/backward allocated %.1f times per step, want 0", n)
	}
}

// TestPrefetchPathZeroAlloc: the asynchronous prefetch-then-consume window
// recycles its plan, staging, handle and window entry through the engine's
// PrefetchRing and the bag's WindowQueue, and idle owner queues are woken
// by a cond signal to a PERSISTENT drainer goroutine — no per-window `go`
// statement — so the steady-state path allocates nothing at all.
func TestPrefetchPathZeroAlloc(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	const dim = 16
	svc := newAllocService(t, dim)
	sb := ShardBag(NewTable(256, dim, tensor.NewRNG(3)), svc, 0)
	idx := allocIdx(256, 32, 3, 3)
	for i := 0; i < 8; i++ {
		sb.Prefetch(idx)
		sb.Forward(idx)
	}
	if n := testing.AllocsPerRun(50, func() {
		sb.Prefetch(idx)
		sb.Forward(idx)
	}); n > 0 {
		t.Fatalf("prefetch path allocated %.1f times per window, want 0", n)
	}
}
