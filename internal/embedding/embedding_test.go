package embedding

import (
	"math"
	"testing"
	"testing/quick"

	"hotline/internal/tensor"
)

func TestForwardSumPooling(t *testing.T) {
	tab := &Table{Rows: 3, Dim: 2, W: tensor.FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})}
	out := tab.Forward([][]int32{{0, 2}, {1}})
	if out.At(0, 0) != 6 || out.At(0, 1) != 8 {
		t.Fatalf("bag 0 = %v", out.Row(0))
	}
	if out.At(1, 0) != 3 || out.At(1, 1) != 4 {
		t.Fatalf("bag 1 = %v", out.Row(1))
	}
}

func TestForwardOutOfRangePanics(t *testing.T) {
	tab := NewTable(2, 2, tensor.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Forward([][]int32{{5}})
}

func TestBackwardAccumulatesSharedRows(t *testing.T) {
	tab := NewTable(4, 2, tensor.NewRNG(2))
	tab.Forward([][]int32{{1, 2}, {2}})
	grad := tensor.FromSlice(2, 2, []float32{1, 1, 10, 10})
	sg := tab.Backward(grad)
	if len(sg.Rows) != 2 || sg.Rows[0] != 1 || sg.Rows[1] != 2 {
		t.Fatalf("rows = %v", sg.Rows)
	}
	// row 1 only from bag 0; row 2 from bags 0 and 1.
	if sg.Grad.At(0, 0) != 1 || sg.Grad.At(1, 0) != 11 {
		t.Fatalf("grads = %v", sg.Grad.Data)
	}
}

func TestBackwardDuplicateIndexInOneBag(t *testing.T) {
	tab := NewTable(4, 1, tensor.NewRNG(3))
	tab.Forward([][]int32{{3, 3}})
	sg := tab.Backward(tensor.FromSlice(1, 1, []float32{2}))
	if len(sg.Rows) != 1 || sg.Grad.At(0, 0) != 4 {
		t.Fatalf("duplicate index should double grad: %v %v", sg.Rows, sg.Grad.Data)
	}
}

func TestSparseSGDUpdatesOnlyTouchedRows(t *testing.T) {
	rng := tensor.NewRNG(4)
	tab := NewTable(5, 2, rng)
	before := tab.W.Clone()
	tab.Forward([][]int32{{1}})
	sg := tab.Backward(tensor.FromSlice(1, 2, []float32{1, 2}))
	tab.ApplySparseSGD(sg, 0.1)
	for r := 0; r < 5; r++ {
		for c := 0; c < 2; c++ {
			want := before.At(r, c)
			if r == 1 {
				want -= 0.1 * float32(c+1)
			}
			if math.Abs(float64(tab.W.At(r, c)-want)) > 1e-6 {
				t.Fatalf("row %d col %d: got %g want %g", r, c, tab.W.At(r, c), want)
			}
		}
	}
}

// Numerical gradient check of the bag lookup through a squared-sum loss.
func TestEmbeddingGradCheck(t *testing.T) {
	rng := tensor.NewRNG(5)
	tab := NewTable(6, 3, rng)
	indices := [][]int32{{0, 1}, {1, 4}, {5}}
	loss := func() float64 {
		out := tab.Forward(indices)
		var s float64
		for _, v := range out.Data {
			s += float64(v) * float64(v)
		}
		return s
	}
	out := tab.Forward(indices)
	gout := tensor.New(out.Rows, out.Cols)
	for i, v := range out.Data {
		gout.Data[i] = 2 * v
	}
	sg := tab.Backward(gout)
	dense := map[int32][]float32{}
	for i, r := range sg.Rows {
		dense[r] = sg.Grad.Row(i)
	}
	const eps = 1e-2
	for r := 0; r < 6; r++ {
		for c := 0; c < 3; c++ {
			i := r*3 + c
			orig := tab.W.Data[i]
			tab.W.Data[i] = orig + eps
			lp := loss()
			tab.W.Data[i] = orig - eps
			lm := loss()
			tab.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			var analytic float64
			if g, ok := dense[int32(r)]; ok {
				analytic = float64(g[c])
			}
			if math.Abs(num-analytic) > 1e-2*math.Max(0.05, math.Abs(num)) {
				t.Fatalf("W[%d,%d]: analytic %g numeric %g", r, c, analytic, num)
			}
		}
	}
}

// Property: backward conserves gradient mass — the summed sparse gradient
// equals the summed output gradient times bag sizes.
func TestBackwardMassConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		tab := NewTable(10, 2, rng)
		batch := 1 + rng.Intn(6)
		indices := make([][]int32, batch)
		totalLookups := 0
		for b := range indices {
			n := 1 + rng.Intn(3)
			totalLookups += n
			for j := 0; j < n; j++ {
				indices[b] = append(indices[b], int32(rng.Intn(10)))
			}
		}
		tab.Forward(indices)
		gout := tensor.New(batch, 2)
		gout.Fill(1)
		sg := tab.Backward(gout)
		var mass float32
		for _, v := range sg.Grad.Data {
			mass += v
		}
		return math.Abs(float64(mass)-float64(totalLookups*2)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTablesAggregate(t *testing.T) {
	rng := tensor.NewRNG(6)
	ts := NewTables([]int{10, 20}, 4, rng)
	if ts.SizeBytes() != (10+20)*4*4 {
		t.Fatalf("SizeBytes = %d", ts.SizeBytes())
	}
	if ts.TotalRows() != 30 {
		t.Fatalf("TotalRows = %d", ts.TotalRows())
	}
	c := ts.Clone()
	c[0].W.Set(0, 0, 99)
	if ts[0].W.At(0, 0) == 99 {
		t.Fatal("Clone must deep copy")
	}
}

func TestPlacementBasics(t *testing.T) {
	p := NewPlacement(2, 4)
	if p.TierOf(0, 5) != TierCPU {
		t.Fatal("default tier should be CPU")
	}
	p.MarkHot(0, 5)
	p.MarkHot(0, 5) // idempotent
	if p.TierOf(0, 5) != TierGPU || !p.IsHot(0, 5) {
		t.Fatal("MarkHot failed")
	}
	if p.HotBytes != 16 {
		t.Fatalf("HotBytes = %d", p.HotBytes)
	}
	if p.HotRowCount(0) != 1 || p.TotalHotRows() != 1 {
		t.Fatal("hot counts wrong")
	}
}

func TestInputIsPopular(t *testing.T) {
	p := NewPlacement(2, 4)
	p.MarkHot(0, 1)
	p.MarkHot(1, 2)
	if !p.InputIsPopular([][]int32{{1}, {2}}) {
		t.Fatal("all-hot input should be popular")
	}
	// A single cold access anywhere makes the input non-popular.
	if p.InputIsPopular([][]int32{{1}, {2, 3}}) {
		t.Fatal("input with one cold access must be non-popular")
	}
}

func TestPlacementFromCountsRespectsBudget(t *testing.T) {
	counts := []AccessCount{
		{Table: 0, Row: 0, Count: 100},
		{Table: 0, Row: 1, Count: 50},
		{Table: 1, Row: 0, Count: 200},
		{Table: 1, Row: 1, Count: 1},
	}
	dim := 4 // 16 bytes/row
	p := PlacementFromCounts(counts, 2, dim, 32)
	if p.TotalHotRows() != 2 {
		t.Fatalf("budget 32B should fit 2 rows, got %d", p.TotalHotRows())
	}
	if !p.IsHot(1, 0) || !p.IsHot(0, 0) {
		t.Fatal("hottest rows should win the budget")
	}
	if p.IsHot(0, 1) || p.IsHot(1, 1) {
		t.Fatal("cold rows must stay cold")
	}
}

func TestPlacementFromCountsDeterministicTieBreak(t *testing.T) {
	counts := []AccessCount{
		{Table: 1, Row: 7, Count: 10},
		{Table: 0, Row: 3, Count: 10},
	}
	p := PlacementFromCounts(counts, 2, 1, 4) // one row fits
	if !p.IsHot(0, 3) {
		t.Fatal("tie must break toward lower table id")
	}
}

func TestHotRowsSorted(t *testing.T) {
	p := NewPlacement(1, 1)
	for _, r := range []int32{9, 1, 5} {
		p.MarkHot(0, r)
	}
	rows := p.HotRows(0)
	if rows[0] != 1 || rows[1] != 5 || rows[2] != 9 {
		t.Fatalf("HotRows = %v", rows)
	}
}

func TestSparseAdagradUpdatesTouchedRows(t *testing.T) {
	rng := tensor.NewRNG(21)
	tab := NewTable(4, 2, rng)
	st := NewAdagradState(tab)
	before := tab.W.Clone()
	tab.Forward([][]int32{{1}})
	sg := tab.Backward(tensor.FromSlice(1, 2, []float32{2, 0}))
	tab.ApplySparseAdagrad(st, sg, 0.5)
	// G=4 -> step 0.5*2/2 = 0.5 on element (1,0); (1,1) untouched (g=0).
	if math.Abs(float64(tab.W.At(1, 0)-(before.At(1, 0)-0.5))) > 1e-4 {
		t.Fatalf("adagrad row update wrong: %g vs %g", tab.W.At(1, 0), before.At(1, 0)-0.5)
	}
	if tab.W.At(1, 1) != before.At(1, 1) || tab.W.At(0, 0) != before.At(0, 0) {
		t.Fatal("untouched elements must not move")
	}
	if st.Accum.At(1, 0) != 4 {
		t.Fatalf("accumulator = %g", st.Accum.At(1, 0))
	}
}

// Sparse Adagrad parity discipline: one accumulated update equals the
// baseline; two per-µ-batch updates do not (see nn.TestAdagradRequires...).
func TestSparseAdagradAccumulationDiscipline(t *testing.T) {
	base := NewTable(2, 1, tensor.NewRNG(5))
	baseSt := NewAdagradState(base)
	split := base.Clone()
	splitSt := NewAdagradState(split)

	full := SparseGrad{Rows: []int32{0}, Grad: tensor.FromSlice(1, 1, []float32{1.0})}
	base.ApplySparseAdagrad(baseSt, full, 0.1)

	half := SparseGrad{Rows: []int32{0}, Grad: tensor.FromSlice(1, 1, []float32{0.5})}
	split.ApplySparseAdagrad(splitSt, half, 0.1)
	split.ApplySparseAdagrad(splitSt, half, 0.1)

	if base.W.At(0, 0) == split.W.At(0, 0) {
		t.Fatal("per-µ-batch adagrad must diverge from single accumulated update")
	}
}
