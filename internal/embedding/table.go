package embedding

import (
	"fmt"
	"math"
	"sort"

	"hotline/internal/par"
	"hotline/internal/tensor"
)

// Table is one categorical feature's embedding table: Rows vectors of
// dimension Dim.
type Table struct {
	Rows, Dim int
	W         *tensor.Matrix // Rows x Dim

	lastIndices [][]int32
}

// NewTable returns a table initialised U(-1/Rows^½, +1/Rows^½) like the DLRM
// reference (scaled uniform keeps pooled sums bounded).
func NewTable(rows, dim int, rng *tensor.RNG) *Table {
	t := &Table{Rows: rows, Dim: dim, W: tensor.New(rows, dim)}
	limit := 1.0 / float64(rows)
	if limit < 0.01 {
		limit = 0.01
	}
	tensor.UniformInit(t.W, limit, rng)
	return t
}

// Forward performs a sum-pooled bag lookup: indices[b] lists the rows sample
// b accesses (multi-hot); the output row b is the element-wise sum of those
// embedding rows. One-hot inputs simply use single-element lists.
func (t *Table) Forward(indices [][]int32) *tensor.Matrix {
	out := tensor.New(len(indices), t.Dim)
	lookups := int64(1)
	if len(indices) > 0 {
		lookups += int64(len(indices[0]))
	}
	par.ForWork(len(indices), lookups*int64(t.Dim), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			orow := out.Row(b)
			for _, ix := range indices[b] {
				if ix < 0 || int(ix) >= t.Rows {
					panic(fmt.Sprintf("embedding: index %d out of range [0,%d)", ix, t.Rows))
				}
				erow := t.W.Row(int(ix))
				for k := range orow {
					orow[k] += erow[k]
				}
			}
		}
	})
	t.lastIndices = indices
	return out
}

// SparseGrad holds deduplicated per-row gradients in ascending row order, so
// updates are deterministic regardless of batch ordering.
type SparseGrad struct {
	Rows []int32
	Grad *tensor.Matrix // len(Rows) x Dim
}

// Backward folds the pooled output gradient back onto the accessed rows.
// Each accessed row receives the (summed) gradient of every bag that touched
// it — the exact adjoint of sum pooling.
func (t *Table) Backward(gradOut *tensor.Matrix) SparseGrad {
	if t.lastIndices == nil {
		panic("embedding: Backward before Forward")
	}
	return t.BackwardIndices(t.lastIndices, gradOut)
}

// BackwardIndices is Backward against an explicit index set instead of the
// cached one. The TBSM model uses it to run several lookups per table per
// iteration (one per timestep) and backpropagate each independently.
func (t *Table) BackwardIndices(indices [][]int32, gradOut *tensor.Matrix) SparseGrad {
	if gradOut.Rows != len(indices) || gradOut.Cols != t.Dim {
		panic(fmt.Sprintf("embedding: Backward grad %dx%d want %dx%d",
			gradOut.Rows, gradOut.Cols, len(indices), t.Dim))
	}
	return bagBackward(indices, gradOut, t.Dim)
}

// bagBackward is the storage-independent adjoint of sum pooling, shared by
// Table and ShardedBag (the sparse gradient depends only on indices and the
// output gradient, never on where rows live).
func bagBackward(indices [][]int32, gradOut *tensor.Matrix, dim int) SparseGrad {
	// Pass 1 (serial): record, per touched row, the ordered list of batch
	// positions that contribute gradient (duplicates within one bag repeat).
	touches := make(map[int32][]int32)
	for b, idxs := range indices {
		for _, ix := range idxs {
			touches[ix] = append(touches[ix], int32(b))
		}
	}
	rows := make([]int32, 0, len(touches))
	for ix := range touches {
		rows = append(rows, ix)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	// Pass 2 (parallel over distinct rows): sum each row's contributions in
	// recorded batch order — the same addition sequence as a serial
	// accumulation, so the result is bit-identical for any worker count.
	grad := tensor.New(len(rows), dim)
	par.ForWork(len(rows), 4*int64(dim), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := grad.Row(i)
			for _, b := range touches[rows[i]] {
				grow := gradOut.Row(int(b))
				for k := range g {
					g[k] += grow[k]
				}
			}
		}
	})
	return SparseGrad{Rows: rows, Grad: grad}
}

// ApplySparseSGD performs W[row] -= lr·grad for every row in sg. Rows in a
// SparseGrad are distinct, so the per-row updates shard across workers.
func (t *Table) ApplySparseSGD(sg SparseGrad, lr float32) {
	par.ForWork(len(sg.Rows), int64(t.Dim)*2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			wrow := t.W.Row(int(sg.Rows[i]))
			grow := sg.Grad.Row(i)
			for k := range wrow {
				wrow[k] -= lr * grow[k]
			}
		}
	})
}

// SizeBytes returns the table's parameter footprint (float32 entries).
func (t *Table) SizeBytes() int64 { return int64(t.Rows) * int64(t.Dim) * 4 }

// NumRows implements Bag.
func (t *Table) NumRows() int { return t.Rows }

// EmbedDim implements Bag.
func (t *Table) EmbedDim() int { return t.Dim }

// RowView implements Bag: a live view of one row's weights.
func (t *Table) RowView(r int) []float32 { return t.W.Row(r) }

// ShadowBag implements Bag.
func (t *Table) ShadowBag() Bag { return t.Shadow() }

// Clone deep-copies the table (used to run baseline and Hotline executors
// from identical initial states).
func (t *Table) Clone() *Table {
	return &Table{Rows: t.Rows, Dim: t.Dim, W: t.W.Clone()}
}

// Shadow returns a Table sharing t's weight storage with a private forward
// cache, for concurrent read-only lookups against the same parameters.
func (t *Table) Shadow() *Table {
	return &Table{Rows: t.Rows, Dim: t.Dim, W: t.W}
}

// Tables is the full sparse parameter set of a model, one Table per
// categorical feature.
type Tables []*Table

// NewTables builds one table per row-count entry, all with dimension dim.
func NewTables(rowCounts []int, dim int, rng *tensor.RNG) Tables {
	ts := make(Tables, len(rowCounts))
	for i, rows := range rowCounts {
		ts[i] = NewTable(rows, dim, rng)
	}
	return ts
}

// SizeBytes returns the total sparse footprint.
func (ts Tables) SizeBytes() int64 {
	var n int64
	for _, t := range ts {
		n += t.SizeBytes()
	}
	return n
}

// TotalRows returns the summed row count across tables.
func (ts Tables) TotalRows() int64 {
	var n int64
	for _, t := range ts {
		n += int64(t.Rows)
	}
	return n
}

// Clone deep-copies every table.
func (ts Tables) Clone() Tables {
	out := make(Tables, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// Shadow returns weight-sharing shadows of every table.
func (ts Tables) Shadow() Tables {
	out := make(Tables, len(ts))
	for i, t := range ts {
		out[i] = t.Shadow()
	}
	return out
}

// AdagradState holds per-element squared-gradient accumulators for one
// table's sparse Adagrad updates (the DLRM reference's production
// optimizer).
type AdagradState struct {
	Accum *tensor.Matrix // Rows x Dim, same shape as the table
	Eps   float32
}

// NewAdagradState returns a zeroed accumulator for table t.
func NewAdagradState(t *Table) *AdagradState {
	return &AdagradState{Accum: tensor.New(t.Rows, t.Dim), Eps: 1e-8}
}

// NewAdagradStateFor returns a zeroed accumulator shaped for any Bag. The
// accumulator is indexed by global row, so the same state drives a
// single-node Table and a ShardedBag identically.
func NewAdagradStateFor(b Bag) *AdagradState {
	return &AdagradState{Accum: tensor.New(b.NumRows(), b.EmbedDim()), Eps: 1e-8}
}

// ApplySparseAdagrad implements Bag: the adaptive update on the touched
// rows, G[row] += g², W[row] -= lr·g/√(G[row]+eps). Because the step is
// non-linear in g, callers must pass the FULL mini-batch gradient (popular
// and non-popular µ-batches accumulated) to stay at parity with a baseline
// that updates once per mini-batch.
func (t *Table) ApplySparseAdagrad(st *AdagradState, sg SparseGrad, lr float32) {
	for i, ix := range sg.Rows {
		adagradRow(t.W.Row(int(ix)), st.Accum.Row(int(ix)), sg.Grad.Row(i), lr, st.Eps)
	}
}

// adagradRow is the shared per-row adaptive step: serial element order, so
// every Bag implementation produces bit-identical state.
func adagradRow(wrow, arow, grow []float32, lr, eps float32) {
	for k := range wrow {
		g := grow[k]
		arow[k] += g * g
		wrow[k] -= lr * g / sqrt32(arow[k]+eps)
	}
}

func sqrt32(v float32) float32 { return float32(math.Sqrt(float64(v))) }
