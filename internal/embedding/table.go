package embedding

import (
	"fmt"
	"math"
	"slices"

	"hotline/internal/par"
	"hotline/internal/tensor"
)

// Table is one categorical feature's embedding table: Rows vectors of
// dimension Dim.
//
// Forward output and backward sparse-gradient buffers are per-instance
// scratch: a Forward result is valid until the next Forward on the same
// instance, and a SparseGrad is valid until the step's sparse update applies
// it (ApplySparseSGD / ApplySparseAdagrad recycle the arena). Shadows own
// private scratch, so concurrent µ-batch passes never share buffers.
type Table struct {
	Rows, Dim int
	W         *tensor.Matrix // Rows x Dim

	lastIndices [][]int32
	fwdOut      tensor.Matrix
	bw          backwardArena
}

// NewTable returns a table initialised U(-1/Rows^½, +1/Rows^½) like the DLRM
// reference (scaled uniform keeps pooled sums bounded).
func NewTable(rows, dim int, rng *tensor.RNG) *Table {
	t := &Table{Rows: rows, Dim: dim, W: tensor.New(rows, dim)}
	limit := 1.0 / float64(rows)
	if limit < 0.01 {
		limit = 0.01
	}
	tensor.UniformInit(t.W, limit, rng)
	return t
}

// bagLookups estimates the per-sample scalar work of a pooled lookup.
func bagLookups(indices [][]int32, dim int) int64 {
	lookups := int64(1)
	if len(indices) > 0 {
		lookups += int64(len(indices[0]))
	}
	return lookups * int64(dim)
}

// fwdRange computes output rows [lo, hi) of the pooled lookup.
//
//hotline:hotpath
func (t *Table) fwdRange(out *tensor.Matrix, indices [][]int32, lo, hi int) {
	for b := lo; b < hi; b++ {
		orow := out.Row(b)
		for _, ix := range indices[b] {
			if ix < 0 || int(ix) >= t.Rows {
				panic(fmt.Sprintf("embedding: index %d out of range [0,%d)", ix, t.Rows))
			}
			erow := t.W.Row(int(ix))[:len(orow)]
			for k, v := range erow {
				orow[k] += v
			}
		}
	}
}

// Forward performs a sum-pooled bag lookup: indices[b] lists the rows sample
// b accesses (multi-hot); the output row b is the element-wise sum of those
// embedding rows. One-hot inputs simply use single-element lists. The
// returned matrix is scratch owned by t, valid until the next Forward call
// on this instance.
//
//hotline:hotpath
func (t *Table) Forward(indices [][]int32) *tensor.Matrix {
	out := t.fwdOut.Resize(len(indices), t.Dim)
	perItem := bagLookups(indices, t.Dim)
	if par.Serial(len(indices), perItem) {
		t.fwdRange(out, indices, 0, len(indices))
	} else {
		par.ForWork(len(indices), perItem, func(lo, hi int) {
			t.fwdRange(out, indices, lo, hi)
		})
	}
	t.lastIndices = indices
	return out
}

// ServeForward is the online-inference read path: the same sum-pooled
// lookup as Forward, but it never arms Backward (lastIndices is untouched,
// so an in-flight train Forward→Backward pair on another instance of the
// same weights is unaffected). The single-node table has no routing or
// accounting to skip — the split exists so serving code holds one method
// across both bag implementations. The returned matrix is the instance's
// forward scratch; serve replicas own shadows, never the training instance.
//
//hotline:hotpath
func (t *Table) ServeForward(indices [][]int32) *tensor.Matrix {
	out := t.fwdOut.Resize(len(indices), t.Dim)
	perItem := bagLookups(indices, t.Dim)
	if par.Serial(len(indices), perItem) {
		t.fwdRange(out, indices, 0, len(indices))
	} else {
		par.ForWork(len(indices), perItem, func(lo, hi int) {
			t.fwdRange(out, indices, lo, hi)
		})
	}
	return out
}

// SparseGrad holds deduplicated per-row gradients in ascending row order, so
// updates are deterministic regardless of batch ordering.
type SparseGrad struct {
	Rows []int32
	Grad *tensor.Matrix // len(Rows) x Dim
}

// Backward folds the pooled output gradient back onto the accessed rows.
// Each accessed row receives the (summed) gradient of every bag that touched
// it — the exact adjoint of sum pooling.
//
//hotline:hotpath
func (t *Table) Backward(gradOut *tensor.Matrix) SparseGrad {
	if t.lastIndices == nil {
		panic("embedding: Backward before Forward")
	}
	return t.BackwardIndices(t.lastIndices, gradOut)
}

// BackwardIndices is Backward against an explicit index set instead of the
// cached one. The TBSM model uses it to run several lookups per table per
// iteration (one per timestep) and backpropagate each independently.
//
//hotline:hotpath
func (t *Table) BackwardIndices(indices [][]int32, gradOut *tensor.Matrix) SparseGrad {
	if gradOut.Rows != len(indices) || gradOut.Cols != t.Dim {
		panic(fmt.Sprintf("embedding: Backward grad %dx%d want %dx%d",
			gradOut.Rows, gradOut.Cols, len(indices), t.Dim))
	}
	return bagBackward(&t.bw, indices, gradOut, t.Dim)
}

// maxArenaSlots bounds how many SparseGrads a backward arena pools. The
// Hotline step needs one per table instance (TimeSteps for the TBSM
// sequence table); callers that run backward passes without ever applying
// them fall off the pool into plain allocations instead of growing it.
const maxArenaSlots = 256

// sparseSlot is one pooled SparseGrad's backing storage.
type sparseSlot struct {
	rows []int32
	grad tensor.Matrix
}

// backwardArena is the reusable scratch behind bagBackward: the sorted
// (row, sample) pair buffer plus a cursor-based ring of SparseGrad slots.
// The cursor rewinds when a sparse update consumes the step's gradients
// (ApplySparseSGD / ApplySparseAdagrad), so the steady-state loop reuses
// the same slots every step.
type backwardArena struct {
	pairs  []int64
	starts []int32
	slots  []*sparseSlot
	cur    int
}

// reset rewinds the slot cursor; existing slot contents stay valid until
// the next backward pass overwrites them.
//
//hotline:hotpath
func (a *backwardArena) reset() { a.cur = 0 }

// acquire hands out the next slot, pooling up to maxArenaSlots.
func (a *backwardArena) acquire() *sparseSlot {
	if a.cur >= maxArenaSlots {
		return &sparseSlot{}
	}
	if a.cur == len(a.slots) {
		a.slots = append(a.slots, &sparseSlot{})
	}
	s := a.slots[a.cur]
	a.cur++
	return s
}

// bagBackward is the storage-independent adjoint of sum pooling, shared by
// Table and ShardedBag (the sparse gradient depends only on indices and the
// output gradient, never on where rows live).
//
// It replaces the historical per-call map[int32][]int32 touch map with a
// sorted (row, sample) pair buffer: pairs pack the row in the high 32 bits
// and the batch position in the low 32, so an ascending sort groups each
// row's contributions in batch order — exactly the serial reduction order
// the map recorded — without allocating.
//
//hotline:hotpath
func bagBackward(a *backwardArena, indices [][]int32, gradOut *tensor.Matrix, dim int) SparseGrad {
	// Pass 1 (serial): flatten and sort the (row, batch position) pairs.
	// Duplicates within one bag produce identical pairs, which keep the
	// duplicate contributions just like the map's repeated appends did.
	pairs := a.pairs[:0]
	for b, idxs := range indices {
		for _, ix := range idxs {
			pairs = append(pairs, int64(ix)<<32|int64(uint32(b))) //hotline:allow hotalloc arena pair buffer; growth converges to the batch's lookup count
		}
	}
	a.pairs = pairs
	slices.Sort(pairs)

	distinct := 0
	for i := range pairs {
		if i == 0 || pairs[i]>>32 != pairs[i-1]>>32 {
			distinct++
		}
	}
	slot := a.acquire()
	rows := slot.rows[:0]
	if cap(rows) < distinct {
		rows = make([]int32, 0, distinct) //hotline:allow hotalloc grown only past the arena slot's high-water mark
	}
	starts := a.starts[:0]
	if cap(starts) < distinct+1 {
		starts = make([]int32, 0, distinct+1) //hotline:allow hotalloc grown only past the arena's high-water mark
	}
	for i := range pairs {
		if i == 0 || pairs[i]>>32 != pairs[i-1]>>32 {
			rows = append(rows, int32(pairs[i]>>32)) //hotline:allow hotalloc capacity ensured above; the reslice never grows
			starts = append(starts, int32(i))        //hotline:allow hotalloc capacity ensured above; the reslice never grows
		}
	}
	starts = append(starts, int32(len(pairs))) //hotline:allow hotalloc capacity ensured above; the reslice never grows
	slot.rows, a.starts = rows, starts

	// Pass 2 (parallel over distinct rows): sum each row's contributions in
	// recorded batch order — the same addition sequence as a serial
	// accumulation, so the result is bit-identical for any worker count.
	grad := slot.grad.Resize(distinct, dim)
	perItem := 4 * int64(dim)
	if par.Serial(distinct, perItem) {
		bagBackwardRange(grad, gradOut, pairs, starts, 0, distinct)
	} else {
		par.ForWork(distinct, perItem, func(lo, hi int) {
			bagBackwardRange(grad, gradOut, pairs, starts, lo, hi)
		})
	}
	return SparseGrad{Rows: rows, Grad: grad}
}

// bagBackwardRange fills gradient rows [lo, hi) from their pair segments.
//
//hotline:hotpath
func bagBackwardRange(grad, gradOut *tensor.Matrix, pairs []int64, starts []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		g := grad.Row(i)
		for p := starts[i]; p < starts[i+1]; p++ {
			grow := gradOut.Row(int(uint32(pairs[p])))[:len(g)]
			for k, v := range grow {
				g[k] += v
			}
		}
	}
}

// sgdRange applies rows [lo, hi) of a sparse SGD update.
//
//hotline:hotpath
func (t *Table) sgdRange(sg SparseGrad, lr float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		wrow := t.W.Row(int(sg.Rows[i]))
		grow := sg.Grad.Row(i)[:len(wrow)]
		for k, v := range grow {
			wrow[k] -= lr * v
		}
	}
}

// ApplySparseSGD performs W[row] -= lr·grad for every row in sg. Rows in a
// SparseGrad are distinct, so the per-row updates shard across workers.
// Applying a step's gradients recycles the backward arena: every SparseGrad
// this instance produced since the last update becomes invalid after the
// NEXT backward pass overwrites the slots.
//
//hotline:hotpath
func (t *Table) ApplySparseSGD(sg SparseGrad, lr float32) {
	perItem := int64(t.Dim) * 2
	if par.Serial(len(sg.Rows), perItem) {
		t.sgdRange(sg, lr, 0, len(sg.Rows))
	} else {
		par.ForWork(len(sg.Rows), perItem, func(lo, hi int) {
			t.sgdRange(sg, lr, lo, hi)
		})
	}
	t.bw.reset()
}

// ResetStepScratch rewinds the backward arena at a step boundary. Shadow
// bags need this: their SparseGrads are absorbed into the primary model's
// stash and applied through the PRIMARY tables, so the apply-time rewind
// never fires on the shadow instance — Model.ZeroAll calls this instead.
//
//hotline:hotpath
func (t *Table) ResetStepScratch() { t.bw.reset() }

// SizeBytes returns the table's parameter footprint (float32 entries).
func (t *Table) SizeBytes() int64 { return int64(t.Rows) * int64(t.Dim) * 4 }

// NumRows implements Bag.
func (t *Table) NumRows() int { return t.Rows }

// EmbedDim implements Bag.
func (t *Table) EmbedDim() int { return t.Dim }

// RowView implements Bag: a live view of one row's weights.
func (t *Table) RowView(r int) []float32 { return t.W.Row(r) }

// ShadowBag implements Bag.
func (t *Table) ShadowBag() Bag { return t.Shadow() }

// Clone deep-copies the table (used to run baseline and Hotline executors
// from identical initial states).
func (t *Table) Clone() *Table {
	return &Table{Rows: t.Rows, Dim: t.Dim, W: t.W.Clone()}
}

// Shadow returns a Table sharing t's weight storage with a private forward
// cache, for concurrent read-only lookups against the same parameters.
func (t *Table) Shadow() *Table {
	return &Table{Rows: t.Rows, Dim: t.Dim, W: t.W}
}

// Tables is the full sparse parameter set of a model, one Table per
// categorical feature.
type Tables []*Table

// NewTables builds one table per row-count entry, all with dimension dim.
func NewTables(rowCounts []int, dim int, rng *tensor.RNG) Tables {
	ts := make(Tables, len(rowCounts))
	for i, rows := range rowCounts {
		ts[i] = NewTable(rows, dim, rng)
	}
	return ts
}

// SizeBytes returns the total sparse footprint.
func (ts Tables) SizeBytes() int64 {
	var n int64
	for _, t := range ts {
		n += t.SizeBytes()
	}
	return n
}

// TotalRows returns the summed row count across tables.
func (ts Tables) TotalRows() int64 {
	var n int64
	for _, t := range ts {
		n += int64(t.Rows)
	}
	return n
}

// Clone deep-copies every table.
func (ts Tables) Clone() Tables {
	out := make(Tables, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// Shadow returns weight-sharing shadows of every table.
func (ts Tables) Shadow() Tables {
	out := make(Tables, len(ts))
	for i, t := range ts {
		out[i] = t.Shadow()
	}
	return out
}

// AdagradState holds per-element squared-gradient accumulators for one
// table's sparse Adagrad updates (the DLRM reference's production
// optimizer).
type AdagradState struct {
	Accum *tensor.Matrix // Rows x Dim, same shape as the table
	Eps   float32
}

// NewAdagradState returns a zeroed accumulator for table t.
func NewAdagradState(t *Table) *AdagradState {
	return &AdagradState{Accum: tensor.New(t.Rows, t.Dim), Eps: 1e-8}
}

// NewAdagradStateFor returns a zeroed accumulator shaped for any Bag. The
// accumulator is indexed by global row, so the same state drives a
// single-node Table and a ShardedBag identically.
func NewAdagradStateFor(b Bag) *AdagradState {
	return &AdagradState{Accum: tensor.New(b.NumRows(), b.EmbedDim()), Eps: 1e-8}
}

// ApplySparseAdagrad implements Bag: the adaptive update on the touched
// rows, G[row] += g², W[row] -= lr·g/√(G[row]+eps). Because the step is
// non-linear in g, callers must pass the FULL mini-batch gradient (popular
// and non-popular µ-batches accumulated) to stay at parity with a baseline
// that updates once per mini-batch.
//
//hotline:hotpath
func (t *Table) ApplySparseAdagrad(st *AdagradState, sg SparseGrad, lr float32) {
	for i, ix := range sg.Rows {
		adagradRow(t.W.Row(int(ix)), st.Accum.Row(int(ix)), sg.Grad.Row(i), lr, st.Eps)
	}
	t.bw.reset()
}

// adagradRow is the shared per-row adaptive step: serial element order, so
// every Bag implementation produces bit-identical state.
//
//hotline:hotpath
func adagradRow(wrow, arow, grow []float32, lr, eps float32) {
	for k := range wrow {
		g := grow[k]
		arow[k] += g * g
		wrow[k] -= lr * g / sqrt32(arow[k]+eps)
	}
}

//hotline:hotpath
func sqrt32(v float32) float32 { return float32(math.Sqrt(float64(v))) }
