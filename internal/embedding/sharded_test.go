package embedding

import (
	"testing"

	"hotline/internal/shard"
	"hotline/internal/tensor"
)

func shardSvc(nodes, cacheRows, dim int) *shard.Service {
	return shard.New(shard.Config{
		Nodes: nodes, CacheBytes: int64(cacheRows) * int64(dim) * 4,
		RowBytes: int64(dim) * 4,
	}, nil)
}

// randIndices draws deterministic multi-hot index lists.
func randIndices(rng *tensor.RNG, batch, lookups, rows int) [][]int32 {
	idx := make([][]int32, batch)
	for b := range idx {
		idx[b] = make([]int32, lookups)
		for j := range idx[b] {
			idx[b][j] = int32(rng.Intn(rows))
		}
	}
	return idx
}

// TestShardedBagBitIdentical is the determinism contract of the sharded
// subsystem: forward outputs, sparse gradients and post-update weights are
// bit-identical to the single-node Table for shard counts {1,2,4,8},
// including duplicate indices within a bag and multi-round training.
func TestShardedBagBitIdentical(t *testing.T) {
	const rows, dim, batch, lookups, steps = 37, 8, 16, 4, 5
	for _, nodes := range []int{1, 2, 4, 8} {
		ref := NewTable(rows, dim, tensor.NewRNG(7))
		sb := ShardBag(NewTable(rows, dim, tensor.NewRNG(7)), shardSvc(nodes, 8, dim), 0)

		rngA := tensor.NewRNG(99)
		rngB := tensor.NewRNG(99)
		for step := 0; step < steps; step++ {
			idxA := randIndices(rngA, batch, lookups, rows)
			idxB := randIndices(rngB, batch, lookups, rows)

			outA := ref.Forward(idxA)
			outB := sb.Forward(idxB)
			if !outA.Equal(outB) {
				t.Fatalf("nodes=%d step=%d: forward diverged", nodes, step)
			}

			grad := tensor.New(batch, dim)
			grng := tensor.NewRNG(uint64(1000 + step))
			for i := range grad.Data {
				grad.Data[i] = float32(grng.NormFloat64())
			}
			sgA := ref.Backward(grad)
			sgB := sb.Backward(grad)
			if len(sgA.Rows) != len(sgB.Rows) || !sgA.Grad.Equal(sgB.Grad) {
				t.Fatalf("nodes=%d step=%d: backward diverged", nodes, step)
			}
			for i := range sgA.Rows {
				if sgA.Rows[i] != sgB.Rows[i] {
					t.Fatalf("nodes=%d: gradient row order diverged", nodes)
				}
			}

			ref.ApplySparseSGD(sgA, 0.05)
			sb.ApplySparseSGD(sgB, 0.05)
		}
		if !ref.W.Equal(sb.Materialize()) {
			t.Fatalf("nodes=%d: weights diverged after %d steps", nodes, steps)
		}
	}
}

// TestShardedBagImplementsBag pins both implementations to the interface.
func TestShardedBagImplementsBag(t *testing.T) {
	var _ Bag = &Table{}
	var _ Bag = &ShardedBag{}
}

func TestShardedBagAccounting(t *testing.T) {
	const rows, dim = 16, 4
	svc := shardSvc(4, 8, dim)
	sb := ShardBag(NewTable(rows, dim, tensor.NewRNG(1)), svc, 0)

	idx := [][]int32{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	out := sb.Forward(idx)
	sb.Backward(tensor.New(out.Rows, dim))

	st := svc.Snapshot()
	if st.Lookups != 8 {
		t.Fatalf("lookups = %d want 8", st.Lookups)
	}
	// Row r is owned by node r%4; sample b runs on node b%4. Only sample 0
	// (row 0) and sample 3 (row 7) touch a locally owned row; the other six
	// accesses are remote cold misses.
	if st.Local != 2 || st.CacheMisses != 6 {
		t.Fatalf("routing: %+v", st)
	}
	if st.GatherBytes != 6*int64(dim)*4 || st.ScatterBytes != 6*int64(dim)*4 {
		t.Fatalf("traffic: %+v", st)
	}
}

func TestShardedBagShadowSharesWeights(t *testing.T) {
	const rows, dim = 12, 4
	sb := ShardBag(NewTable(rows, dim, tensor.NewRNG(3)), shardSvc(3, 4, dim), 0)
	sh := sb.ShadowBag().(*ShardedBag)

	idx := [][]int32{{1, 2}}
	sh.Forward(idx)
	sg := sh.Backward(tensor.FromSlice(1, dim, []float32{1, 1, 1, 1}))
	sb.ApplySparseSGD(sg, 0.5)

	// The shadow reads the primary's updated weights (shared storage).
	for _, r := range []int{1, 2} {
		a, b := sb.RowView(r), sh.RowView(r)
		for k := range a {
			if a[k] != b[k] {
				t.Fatal("shadow must share weight storage")
			}
		}
	}
	// The primary's forward cache must be untouched by the shadow's pass.
	if sb.lastIndices != nil {
		t.Fatal("shadow forward must not disturb the primary's cache")
	}
}

func TestShardBagsPartitionsWholeModel(t *testing.T) {
	ts := NewTables([]int{10, 20, 30}, 4, tensor.NewRNG(5))
	svc := shardSvc(2, 16, 4)
	bags := ShardBags(ts, svc)
	if len(bags) != 3 {
		t.Fatalf("bags = %d", len(bags))
	}
	if !BagsEqual(ts.Bags(), bags) {
		t.Fatal("sharded bags must hold the source tables' weights")
	}
	if MaxAbsDiffBags(ts.Bags(), bags) != 0 {
		t.Fatal("max diff must be zero for identical weights")
	}
}
