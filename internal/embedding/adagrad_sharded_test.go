package embedding

import (
	"testing"

	"hotline/internal/shard"
	"hotline/internal/tensor"
)

// TestShardedAdagradBitParity drives a single-node Table and ShardedBags at
// several node counts through identical forward/backward/Adagrad streams:
// the lifted Bag method must leave bit-identical weights and accumulators
// for every node count (the ROADMAP "Adagrad on sharded tables" item).
func TestShardedAdagradBitParity(t *testing.T) {
	const rows, dim, iters, batch = 96, 8, 12, 16
	mkIdx := func(it int) [][]int32 {
		idx := make([][]int32, batch)
		for b := range idx {
			idx[b] = []int32{
				int32((it*17 + b*5) % rows),
				int32((it*29 + b*11) % rows),
				int32((it + b) % 7), // skewed head rows repeat
			}
		}
		return idx
	}
	mkGrad := func(it int) *tensor.Matrix {
		g := tensor.New(batch, dim)
		rng := tensor.NewRNG(uint64(1000 + it))
		tensor.UniformInit(g, 0.5, rng)
		return g
	}

	train := func(b Bag) {
		st := NewAdagradStateFor(b)
		for it := 0; it < iters; it++ {
			idx := mkIdx(it)
			b.Forward(idx)
			sg := b.BackwardIndices(idx, mkGrad(it))
			b.ApplySparseAdagrad(st, sg, 0.05)
		}
	}

	ref := NewTable(rows, dim, tensor.NewRNG(7))
	train(ref)

	for _, nodes := range []int{1, 2, 4, 8} {
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: 16 * int64(dim) * 4, RowBytes: int64(dim) * 4,
		}, nil)
		sb := ShardBag(NewTable(rows, dim, tensor.NewRNG(7)), svc, 0)
		train(sb)
		if !BagsEqual(Bags{ref}, Bags{sb}) {
			t.Fatalf("nodes=%d: Adagrad state diverged from single-node table", nodes)
		}
	}
}

// TestShardedAdagradHotAwarePlacement repeats the parity check under a
// non-uniform (hot-aware) partitioner: relocating rows must never change
// the optimizer trajectory.
func TestShardedAdagradHotAwarePlacement(t *testing.T) {
	const rows, dim = 64, 4
	idx := [][]int32{{0, 1, 2}, {0, 5, 9}, {1, 33, 2}, {0, 2, 63}}
	grad := tensor.New(len(idx), dim)
	tensor.UniformInit(grad, 1, tensor.NewRNG(3))

	step := func(b Bag) {
		st := NewAdagradStateFor(b)
		for i := 0; i < 4; i++ {
			b.Forward(idx)
			sg := b.BackwardIndices(idx, grad)
			b.ApplySparseAdagrad(st, sg, 0.1)
		}
	}

	ref := NewTable(rows, dim, tensor.NewRNG(11))
	step(ref)

	rc := shard.NewRequestCounter(4)
	rc.Observe(0, idx)
	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: 0, RowBytes: int64(dim) * 4, Part: rc.HotAware(nil),
	}, nil)
	sb := ShardBag(NewTable(rows, dim, tensor.NewRNG(11)), svc, 0)
	step(sb)
	if !BagsEqual(Bags{ref}, Bags{sb}) {
		t.Fatal("hot-aware placement changed the Adagrad trajectory")
	}
}
