package embedding

import (
	"testing"

	"hotline/internal/tensor"
)

// mapHotSet is the historical map-only hot-set implementation, kept as the
// reference the bitmap fast path must be equivalent to.
type mapHotSet map[int32]struct{}

// TestHotSetBitmapEquivalence drives the bitmap+overflow hot set and the
// plain map reference with an identical mark/probe stream straddling the
// bitmap bound, including duplicates, and checks membership, counts and
// sorted-row enumeration stay equal.
func TestHotSetBitmapEquivalence(t *testing.T) {
	rng := tensor.NewRNG(99)
	var h hotSet
	ref := mapHotSet{}

	sample := func() int32 {
		switch rng.Intn(4) {
		case 0: // dense head (bitmap, low words)
			return int32(rng.Intn(1000))
		case 1: // mid range (bitmap, forces growth)
			return int32(rng.Intn(hotBitmapMaxRows))
		case 2: // exactly around the bound
			return int32(hotBitmapMaxRows - 2 + rng.Intn(4))
		default: // overflow range
			return int32(hotBitmapMaxRows + rng.Intn(100000))
		}
	}

	for i := 0; i < 20000; i++ {
		r := sample()
		if rng.Intn(2) == 0 {
			added := h.mark(r)
			_, had := ref[r]
			if added == had {
				t.Fatalf("mark(%d): added=%v but reference had=%v", r, added, had)
			}
			ref[r] = struct{}{}
		} else {
			_, want := ref[r]
			if got := h.has(r); got != want {
				t.Fatalf("has(%d) = %v, reference %v", r, got, want)
			}
		}
	}
	if h.count != len(ref) {
		t.Fatalf("count %d, reference %d", h.count, len(ref))
	}
	rows := h.rows()
	if len(rows) != len(ref) {
		t.Fatalf("rows() returned %d entries, reference %d", len(rows), len(ref))
	}
	for i, r := range rows {
		if i > 0 && rows[i-1] >= r {
			t.Fatalf("rows() not strictly ascending at %d: %d >= %d", i, rows[i-1], r)
		}
		if _, ok := ref[r]; !ok {
			t.Fatalf("rows() contains %d, not in reference", r)
		}
	}
}

// TestPlacementBitmapSemantics covers the Placement surface over the new
// hot sets: byte accounting, per-table counts and popularity classification.
func TestPlacementBitmapSemantics(t *testing.T) {
	p := NewPlacement(2, 8)
	p.MarkHot(0, 3)
	p.MarkHot(0, 3) // duplicate must not double-count
	p.MarkHot(0, hotBitmapMaxRows+7)
	p.MarkHot(1, 100)

	if p.TotalHotRows() != 3 {
		t.Fatalf("TotalHotRows = %d, want 3", p.TotalHotRows())
	}
	if p.HotBytes != 3*8*4 {
		t.Fatalf("HotBytes = %d, want %d", p.HotBytes, 3*8*4)
	}
	if p.HotRowCount(0) != 2 || p.HotRowCount(1) != 1 {
		t.Fatalf("per-table counts = %d/%d, want 2/1", p.HotRowCount(0), p.HotRowCount(1))
	}
	if !p.IsHot(0, 3) || !p.IsHot(0, hotBitmapMaxRows+7) || !p.IsHot(1, 100) {
		t.Fatal("marked rows must be hot")
	}
	if p.IsHot(0, 4) || p.IsHot(1, hotBitmapMaxRows+7) || p.IsHot(0, 100) {
		t.Fatal("unmarked rows must be cold")
	}
	if p.TierOf(0, 3) != TierGPU || p.TierOf(0, 5) != TierCPU {
		t.Fatal("TierOf mismatch")
	}
	if !p.InputIsPopular([][]int32{{3}, {100}}) {
		t.Fatal("all-hot input must be popular")
	}
	if p.InputIsPopular([][]int32{{3}, {101}}) {
		t.Fatal("one cold access must make the input non-popular")
	}
	want := []int32{3, hotBitmapMaxRows + 7}
	got := p.HotRows(0)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("HotRows(0) = %v, want %v", got, want)
	}
}
