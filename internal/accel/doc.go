// Package accel is a cycle-approximate functional model of the Hotline
// hardware accelerator (paper §V): the Embedding Access Logger (a
// multi-banked SRAM tracker with SRRIP replacement), the parallel lookup
// engine array with its Feistel-network randomizer, the data dispatcher and
// reducer, the instruction set (Table I), and the area/energy model
// (Table IV / Figure 29).
//
// In the DESIGN.md layering the package sits beside internal/train: the
// Hotline executor feeds sampled batches into the EAL during the learning
// phase and asks the accelerator to classify every mini-batch into popular
// and non-popular µ-batches during the acceleration phase. The timing side
// (segregation throughput, reducer bandwidth) feeds internal/pipeline's
// Hotline model.
package accel
