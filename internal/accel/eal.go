package accel

import (
	"fmt"
	"sort"
)

// ReplacementPolicy selects the EAL's eviction policy. The paper uses
// SRRIP; FIFO is the ablation comparator (cheaper but scan-vulnerable).
type ReplacementPolicy uint8

const (
	// PolicySRRIP is the paper's 2-bit RRPV static re-reference policy.
	PolicySRRIP ReplacementPolicy = iota
	// PolicyFIFO evicts in insertion order, ignoring re-references.
	PolicyFIFO
)

// EALConfig sizes the Embedding Access Logger.
type EALConfig struct {
	// SizeBytes is the SRAM capacity (paper default 4 MB).
	SizeBytes int64
	// Banks is the number of independently ported banks (default 64).
	Banks int
	// Ways is the set associativity of each bank.
	Ways int
	// BytesPerEntry models the 17-bit entry (valid + 2-bit RRPV + 14-bit
	// identifier) padded to storage granularity; the paper's 4 MB / 2M
	// blocks gives 2 bytes.
	BytesPerEntry int64
	// Seed keys the Feistel randomizer.
	Seed uint32
	// Policy selects the replacement policy (default SRRIP).
	Policy ReplacementPolicy
	// NoRandomizer disables the Feistel network and indexes banks/sets by
	// the raw (table, row) bits — the thrashing ablation of §V-C.
	NoRandomizer bool
}

// DefaultEALConfig is the paper's Table IV configuration.
func DefaultEALConfig() EALConfig {
	return EALConfig{SizeBytes: 4 << 20, Banks: 64, Ways: 8, BytesPerEntry: 2, Seed: 0x40714E}
}

// Entries returns the total tracked-entry capacity.
func (c EALConfig) Entries() int { return int(c.SizeBytes / c.BytesPerEntry) }

const rrpvMax = 3 // 2-bit RRPV

// ealEntry is one SRAM block.
type ealEntry struct {
	valid bool
	rrpv  uint8
	tag   uint32 // scattered key (models the 14-bit identifier + set index)
}

// EAL is the Embedding Access Logger: a cache-like structure that tracks
// frequently-accessed embedding identifiers with SRRIP replacement
// (2-bit RRPV, insertion at rrpvMax-1, promotion to 0 on hit). Entries hold
// only identifiers — never embedding data — which is how 4 MB of SRAM can
// track the hot set of multi-GB tables.
type EAL struct {
	Cfg      EALConfig
	feistel  *Feistel
	sets     int // sets per bank
	entries  []ealEntry
	fifoNext []uint8 // per-set round-robin pointer (PolicyFIFO)

	// pow2 is set when banks and sets are both powers of two (the paper
	// configuration): locate then uses masks and shifts instead of the two
	// integer divisions, which dominate the classification probe.
	pow2      bool
	bankMask  uint32
	bankShift uint32
	setMask   uint32

	// statistics
	Hits, Misses, Inserts, Evicts int64
}

// NewEAL builds the logger.
func NewEAL(cfg EALConfig) *EAL {
	total := cfg.Entries()
	perBank := total / cfg.Banks
	sets := perBank / cfg.Ways
	if sets < 1 {
		panic(fmt.Sprintf("accel: EAL too small: %d entries over %d banks x %d ways", total, cfg.Banks, cfg.Ways))
	}
	e := &EAL{
		Cfg:      cfg,
		feistel:  NewFeistel(cfg.Seed),
		sets:     sets,
		entries:  make([]ealEntry, cfg.Banks*sets*cfg.Ways),
		fifoNext: make([]uint8, cfg.Banks*sets),
	}
	if isPow2(cfg.Banks) && isPow2(sets) {
		e.pow2 = true
		e.bankMask = uint32(cfg.Banks - 1)
		e.setMask = uint32(sets - 1)
		for 1<<e.bankShift < cfg.Banks {
			e.bankShift++
		}
	}
	return e
}

// isPow2 reports whether v is a positive power of two.
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Capacity returns the number of identifiers the EAL can track.
func (e *EAL) Capacity() int { return e.Cfg.Banks * e.sets * e.Cfg.Ways }

// locate returns the bank, set and tag for a (table, row) key.
//
//hotline:hotpath
func (e *EAL) locate(table int, row int32) (bank, set int, tag uint32) {
	var h uint32
	if e.Cfg.NoRandomizer {
		// Raw indexing: hot heads of every table share the same low index
		// bits, so they collide into the same banks and sets (the
		// thrashing the Feistel network exists to prevent).
		h = uint32(row)
		tag = uint32(table)<<26 ^ uint32(row)
	} else {
		h = e.feistel.HashKey(table, row)
		tag = h
	}
	if e.pow2 {
		// Same bank/set mapping as the division form below, via masks.
		bank = int(h & e.bankMask)
		set = int((h >> e.bankShift) & e.setMask)
		return
	}
	bank = int(h % uint32(e.Cfg.Banks))
	set = int((h / uint32(e.Cfg.Banks)) % uint32(e.sets))
	return
}

//hotline:hotpath
func (e *EAL) setSlice(bank, set int) []ealEntry {
	base := (bank*e.sets + set) * e.Cfg.Ways
	return e.entries[base : base+e.Cfg.Ways]
}

// Bank returns which bank services the key (used by the conflict model).
func (e *EAL) Bank(table int, row int32) int {
	b, _, _ := e.locate(table, row)
	return b
}

// Contains is the acceleration-phase classification probe: a read-only
// check that does not disturb replacement state.
//
//hotline:hotpath
func (e *EAL) Contains(table int, row int32) bool {
	bank, set, tag := e.locate(table, row)
	for _, ent := range e.setSlice(bank, set) {
		// Tags are Feistel-scattered, so the tag compare almost always
		// fails first; checking it before the valid bit short-circuits the
		// common miss.
		if ent.tag == tag && ent.valid {
			return true
		}
	}
	return false
}

// Touch is the learning-phase access: on hit the entry's RRPV promotes to 0
// (near re-reference); on miss the key is inserted at rrpvMax-1, evicting a
// distant (rrpv==max) victim per SRRIP. Returns whether it was a hit.
//
//hotline:hotpath
func (e *EAL) Touch(table int, row int32) bool {
	bank, set, tag := e.locate(table, row)
	ways := e.setSlice(bank, set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].rrpv = 0
			e.Hits++
			return true
		}
	}
	e.Misses++
	e.insert(bank*e.sets+set, ways, tag)
	return false
}

// insert places tag per the configured policy. SRRIP: find an invalid way
// or an rrpv==max victim, aging the set until one appears. FIFO: evict in
// round-robin insertion order.
//
//hotline:hotpath
func (e *EAL) insert(setIdx int, ways []ealEntry, tag uint32) {
	for i := range ways {
		if !ways[i].valid {
			ways[i] = ealEntry{valid: true, rrpv: rrpvMax - 1, tag: tag}
			e.Inserts++
			return
		}
	}
	if e.Cfg.Policy == PolicyFIFO {
		i := int(e.fifoNext[setIdx]) % len(ways)
		e.fifoNext[setIdx]++
		ways[i] = ealEntry{valid: true, rrpv: rrpvMax - 1, tag: tag}
		e.Inserts++
		e.Evicts++
		return
	}
	for {
		for i := range ways {
			if ways[i].rrpv == rrpvMax {
				ways[i] = ealEntry{valid: true, rrpv: rrpvMax - 1, tag: tag}
				e.Inserts++
				e.Evicts++
				return
			}
		}
		for i := range ways {
			ways[i].rrpv++
		}
	}
}

// Occupancy returns the fraction of valid entries.
func (e *EAL) Occupancy() float64 {
	n := 0
	for _, ent := range e.entries {
		if ent.valid {
			n++
		}
	}
	return float64(n) / float64(len(e.entries))
}

// Reset clears contents and statistics (a fresh learning phase).
func (e *EAL) Reset() {
	for i := range e.entries {
		e.entries[i] = ealEntry{}
	}
	for i := range e.fifoNext {
		e.fifoNext[i] = 0
	}
	e.Hits, e.Misses, e.Inserts, e.Evicts = 0, 0, 0, 0
}

// HitRate returns hits/(hits+misses) over Touch calls so far.
func (e *EAL) HitRate() float64 {
	t := e.Hits + e.Misses
	if t == 0 {
		return 0
	}
	return float64(e.Hits) / float64(t)
}

// OracleLFU is the idealised comparator of Figure 15: it keeps exact access
// counts for every identifier (which hardware cannot afford — a 24-bit
// counter per block) and marks the top-capacity identifiers as tracked.
type OracleLFU struct {
	Capacity int
	counts   map[uint64]int64
}

// NewOracleLFU returns an oracle tracker with the same identifier capacity
// as an EAL.
func NewOracleLFU(capacity int) *OracleLFU {
	return &OracleLFU{Capacity: capacity, counts: make(map[uint64]int64)}
}

func oracleKey(table int, row int32) uint64 {
	return uint64(table)<<32 | uint64(uint32(row))
}

// Touch records an access.
func (o *OracleLFU) Touch(table int, row int32) { o.counts[oracleKey(table, row)]++ }

// TrackedSet returns the identifiers an ideal LFU of this capacity would
// hold: the top-Capacity by exact count.
func (o *OracleLFU) TrackedSet() map[uint64]struct{} {
	all := make([]keyCount, 0, len(o.counts))
	for k, c := range o.counts {
		all = append(all, keyCount{k, c})
	}
	// Simple sort is fine at model scale; ties break on key for determinism.
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].k < all[j].k
	})
	n := o.Capacity
	if n > len(all) {
		n = len(all)
	}
	out := make(map[uint64]struct{}, n)
	for i := 0; i < n; i++ {
		out[all[i].k] = struct{}{}
	}
	return out
}

// Contains reports whether the oracle's tracked set holds the key.
// (Computed lazily from counts; use TrackedSet for bulk queries.)
func (o *OracleLFU) Contains(table int, row int32) bool {
	_, ok := o.TrackedSet()[oracleKey(table, row)]
	return ok
}

// keyCount pairs an identifier with its exact access count.
type keyCount struct {
	k uint64
	c int64
}
