package accel

import "fmt"

// Opcode enumerates the Hotline instruction set (paper Table I).
type Opcode uint8

const (
	// OpDMARead issues a DMA read request (mem start idx, #bytes).
	OpDMARead Opcode = iota
	// OpDMAWrite issues a DMA write request (mem start idx, #bytes).
	OpDMAWrite
	// OpVAdd element-wise adds an input vector into the embedding vector buffer.
	OpVAdd
	// OpVMul element-wise multiplies (dot product step).
	OpVMul
	// OpSWr writes an embedding table base address into an address register.
	OpSWr
	// OpGPURd reads an embedding index from a GPU device (device id, sparse idx).
	OpGPURd
	opCount
)

var opNames = [...]string{"dma_rd", "dma_wr", "v_add", "v_mul", "s_wr", "gpu_rd"}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instruction is one accelerator command: an opcode and two 28-bit operands,
// packed into a 64-bit word by Encode.
type Instruction struct {
	Op  Opcode
	Op1 uint32 // mem start idx / input vector / reg idx / gpu device id
	Op2 uint32 // #bytes / emb vec buffer / base addr / sparse idx
}

const operandMask = (1 << 28) - 1

// Encode packs the instruction into a 64-bit word:
// [63:56] opcode, [55:28] op1, [27:0] op2.
func (in Instruction) Encode() uint64 {
	return uint64(in.Op)<<56 | uint64(in.Op1&operandMask)<<28 | uint64(in.Op2&operandMask)
}

// Decode unpacks a word encoded by Encode.
func Decode(w uint64) (Instruction, error) {
	op := Opcode(w >> 56)
	if op >= opCount {
		return Instruction{}, fmt.Errorf("accel: invalid opcode %d", uint8(op))
	}
	return Instruction{
		Op:  op,
		Op1: uint32(w>>28) & operandMask,
		Op2: uint32(w) & operandMask,
	}, nil
}

// Driver is a minimal functional executor for the ISA, used to validate the
// instruction semantics: it moves bytes between a host memory image and the
// accelerator's embedding vector buffer and applies reducer arithmetic.
type Driver struct {
	// HostMem models CPU DRAM (indexed by "mem start idx" in floats).
	HostMem []float32
	// VecBuf models the 0.5 kB embedding vector buffer.
	VecBuf []float32
	// AddrRegs models the data dispatcher's address registers.
	AddrRegs [32]uint32
	// GPUMem models per-device HBM rows (device -> flat floats).
	GPUMem map[int][]float32

	Executed int64
}

// NewDriver returns a driver with a vecWidth-float vector buffer.
func NewDriver(hostMem []float32, vecWidth int) *Driver {
	return &Driver{
		HostMem: hostMem,
		VecBuf:  make([]float32, vecWidth),
		GPUMem:  make(map[int][]float32),
	}
}

// Execute runs one instruction. Scratch is the staging area DMA reads land
// in / writes come from (the input eDRAM in hardware).
func (d *Driver) Execute(in Instruction, scratch []float32) error {
	d.Executed++
	switch in.Op {
	case OpDMARead:
		n := int(in.Op2) / 4 // bytes -> floats
		if int(in.Op1)+n > len(d.HostMem) || n > len(scratch) {
			return fmt.Errorf("accel: dma_rd out of range: idx=%d n=%d", in.Op1, n)
		}
		copy(scratch[:n], d.HostMem[in.Op1:int(in.Op1)+n])
	case OpDMAWrite:
		n := int(in.Op2) / 4
		if int(in.Op1)+n > len(d.HostMem) || n > len(scratch) {
			return fmt.Errorf("accel: dma_wr out of range: idx=%d n=%d", in.Op1, n)
		}
		copy(d.HostMem[in.Op1:int(in.Op1)+n], scratch[:n])
	case OpVAdd:
		n := len(d.VecBuf)
		if int(in.Op1)+n > len(scratch) {
			return fmt.Errorf("accel: v_add input out of range")
		}
		for i := 0; i < n; i++ {
			d.VecBuf[i] += scratch[int(in.Op1)+i]
		}
	case OpVMul:
		n := len(d.VecBuf)
		if int(in.Op1)+n > len(scratch) {
			return fmt.Errorf("accel: v_mul input out of range")
		}
		for i := 0; i < n; i++ {
			d.VecBuf[i] *= scratch[int(in.Op1)+i]
		}
	case OpSWr:
		if int(in.Op1) >= len(d.AddrRegs) {
			return fmt.Errorf("accel: s_wr reg %d out of range", in.Op1)
		}
		d.AddrRegs[in.Op1] = in.Op2
	case OpGPURd:
		mem, ok := d.GPUMem[int(in.Op1)]
		if !ok {
			return fmt.Errorf("accel: gpu_rd unknown device %d", in.Op1)
		}
		n := len(d.VecBuf)
		base := int(in.Op2) * n
		if base+n > len(mem) {
			return fmt.Errorf("accel: gpu_rd row %d out of range", in.Op2)
		}
		copy(d.VecBuf, mem[base:base+n])
	default:
		return fmt.Errorf("accel: unknown opcode %v", in.Op)
	}
	return nil
}
