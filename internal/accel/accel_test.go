package accel

import (
	"math"
	"testing"
	"testing/quick"

	"hotline/internal/data"
	"hotline/internal/tensor"
)

func TestFeistelBijective(t *testing.T) {
	f := NewFeistel(7)
	rng := tensor.NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := uint32(rng.Uint64())
		if f.Inverse(f.Permute(v)) != v {
			t.Fatalf("Feistel not bijective at %x", v)
		}
	}
}

// Property: Permute is injective on any sampled set (no collisions).
func TestFeistelNoCollisionsProperty(t *testing.T) {
	f := NewFeistel(9)
	fn := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		seenIn := make(map[uint32]uint32)
		for i := 0; i < 500; i++ {
			v := uint32(rng.Uint64())
			out := f.Permute(v)
			if prev, ok := seenIn[out]; ok && prev != v {
				return false
			}
			seenIn[out] = v
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFeistelScattersBanks(t *testing.T) {
	// Sequential indices of one table must spread across banks near-uniformly.
	e := NewEAL(DefaultEALConfig())
	counts := make([]int, e.Cfg.Banks)
	n := 64 * 256
	for i := 0; i < n; i++ {
		counts[e.Bank(3, int32(i))]++
	}
	want := n / e.Cfg.Banks
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bank %d has %d of expected %d (poor scatter)", b, c, want)
		}
	}
}

func TestEALCapacityMatchesPaper(t *testing.T) {
	cfg := DefaultEALConfig()
	if cfg.Entries() != 2<<20 {
		t.Fatalf("4MB at 2B/entry must give 2M blocks, got %d", cfg.Entries())
	}
	e := NewEAL(cfg)
	if e.Capacity() != 2<<20 {
		t.Fatalf("EAL capacity = %d", e.Capacity())
	}
}

func TestEALHitPromotesAndTracks(t *testing.T) {
	e := NewEAL(EALConfig{SizeBytes: 1 << 12, Banks: 4, Ways: 4, BytesPerEntry: 2, Seed: 1})
	if e.Touch(0, 42) {
		t.Fatal("first touch must miss")
	}
	if !e.Touch(0, 42) {
		t.Fatal("second touch must hit")
	}
	if !e.Contains(0, 42) {
		t.Fatal("Contains must see tracked entry")
	}
	if e.Contains(1, 42) {
		t.Fatal("other table must not alias")
	}
	if e.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g", e.HitRate())
	}
}

func TestEALEvictsUnderPressure(t *testing.T) {
	e := NewEAL(EALConfig{SizeBytes: 256, Banks: 2, Ways: 2, BytesPerEntry: 2, Seed: 1})
	cap := e.Capacity()
	for i := 0; i < cap*4; i++ {
		e.Touch(0, int32(i))
	}
	if e.Evicts == 0 {
		t.Fatal("overfilling must evict")
	}
	if e.Occupancy() != 1 {
		t.Fatalf("occupancy should be full, got %g", e.Occupancy())
	}
	e.Reset()
	if e.Occupancy() != 0 || e.Hits != 0 {
		t.Fatal("Reset must clear state")
	}
}

// SRRIP protects frequently re-referenced entries against a scan: touch a
// hot set repeatedly, stream a long scan through, hot set should survive
// better than scan entries.
func TestSRRIPScanResistance(t *testing.T) {
	e := NewEAL(EALConfig{SizeBytes: 4 << 10, Banks: 4, Ways: 8, BytesPerEntry: 2, Seed: 3})
	hot := 64
	for r := 0; r < 20; r++ {
		for i := 0; i < hot; i++ {
			e.Touch(0, int32(i))
		}
		for i := 0; i < 512; i++ {
			e.Touch(1, int32(1000+r*512+i)) // one-shot scan, never repeats
		}
	}
	kept := 0
	for i := 0; i < hot; i++ {
		if e.Contains(0, int32(i)) {
			kept++
		}
	}
	if float64(kept)/float64(hot) < 0.8 {
		t.Fatalf("SRRIP should retain hot set under scan: kept %d/%d", kept, hot)
	}
}

// The paper's claim behind Figure 15: the SRRIP EAL tracks ~90% of what an
// oracle LFU of equal capacity tracks, on Zipfian traffic.
func TestEALTracksMostOfOracle(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 2048
	gen := data.NewGenerator(cfg)
	ealCfg := EALConfig{SizeBytes: 1 << 14, Banks: 8, Ways: 8, BytesPerEntry: 2, Seed: 5}
	e := NewEAL(ealCfg)
	oracle := NewOracleLFU(e.Capacity())
	for i := 0; i < 4; i++ {
		b := gen.NextBatch(512)
		for tbl := range b.Sparse {
			for _, idxs := range b.Sparse[tbl] {
				for _, ix := range idxs {
					e.Touch(tbl, ix)
					oracle.Touch(tbl, ix)
				}
			}
		}
	}
	tracked := oracle.TrackedSet()
	if len(tracked) == 0 {
		t.Fatal("oracle tracked nothing")
	}
	hit := 0
	for k := range tracked {
		if e.Contains(int(k>>32), int32(uint32(k))) {
			hit++
		}
	}
	cov := float64(hit) / float64(len(tracked))
	if cov < 0.55 {
		t.Fatalf("EAL covers %.2f of oracle set, want most of it", cov)
	}
}

func TestParallelRequestsMatchFig16(t *testing.T) {
	// Paper: a 512-entry queue over 64 banks sustains ~60 parallel requests.
	got := ParallelRequestsPerIteration(512, 64, 64, 128)
	if got < 55 || got > 64 {
		t.Fatalf("512q/64banks = %.1f parallel requests, want ~60", got)
	}
	// Small queues starve the banks.
	small := ParallelRequestsPerIteration(8, 64, 64, 128)
	if small >= got || small > 8 {
		t.Fatalf("8-entry queue should issue <= 8, got %.1f", small)
	}
	// More banks with a big queue -> more parallelism.
	if ParallelRequestsPerIteration(512, 8, 64, 128) >= got {
		t.Fatal("8 banks must issue fewer than 64 banks")
	}
}

func TestSegregationTimeFastAndMonotone(t *testing.T) {
	m := NewSegregationModel(DefaultEngineConfig(), DefaultEALConfig())
	t4k := m.SegregationTime(4096 * 26)
	t16k := m.SegregationTime(16384 * 26)
	if t16k <= t4k {
		t.Fatal("segregation time must grow with lookups")
	}
	// The accelerator must be orders of magnitude faster than the CPU's
	// ~60ms (paper Figure 7 vs accelerator pipeline).
	if t4k.Millis() > 1 {
		t.Fatalf("accelerator segregation of 4K batch = %v, want < 1ms", t4k)
	}
}

func TestReducerTime(t *testing.T) {
	r := DefaultReducerConfig()
	t1 := r.ReduceTime(100, 64)
	t2 := r.ReduceTime(200, 64)
	if t2 <= t1 {
		t.Fatal("reduce time must grow with rows")
	}
}

func TestEDRAMCapacityMatchesPaper(t *testing.T) {
	// §V-A: 2.5 MB of eDRAM stages mini-batches of up to 16K inputs.
	ed := DefaultInputEDRAM()
	// A Criteo-like input: 26 tables x 4B index + misc ≈ 150B.
	if got := ed.MaxInputs(150); got < 16000 {
		t.Fatalf("eDRAM should hold >= 16K inputs, got %d", got)
	}
	if ed.MaxInputs(0) != 0 {
		t.Fatal("zero-size input guard failed")
	}
}

func TestAcceleratorLearnAndClassify(t *testing.T) {
	cfg := data.CriteoKaggle()
	cfg.Samples = 2048
	gen := data.NewGenerator(cfg)
	acc := New(DefaultConfig())

	// Learning phase over a few batches.
	for i := 0; i < 4; i++ {
		acc.LearnBatch(gen.NextBatch(512))
	}
	cl := acc.Classify(data.NewGenerator(cfg).NextBatch(1024))
	if got := len(cl.PopularIdx) + len(cl.NonPopularIdx); got != 1024 {
		t.Fatalf("classification must partition the batch, got %d", got)
	}
	if cl.TotalLookups != 1024*26 {
		t.Fatalf("TotalLookups = %d", cl.TotalLookups)
	}
	// With the big default EAL nearly all replayed traffic should be popular.
	if cl.PopularFraction() < 0.5 {
		t.Fatalf("popular fraction %.2f too low after learning", cl.PopularFraction())
	}
	if cl.ColdLookups == 0 {
		t.Log("note: zero cold lookups (fine for high-skew synthetic data)")
	}
}

func TestMaybeLearnSamplesAtRate(t *testing.T) {
	cfg := data.TaobaoAlibaba()
	gen := data.NewGenerator(cfg)
	acc := New(DefaultConfig()) // 5%
	learned := 0
	for i := 0; i < 100; i++ {
		if acc.MaybeLearn(gen.NextBatch(8)) {
			learned++
		}
	}
	if learned != 5 {
		t.Fatalf("5%% of 100 batches = 5, got %d", learned)
	}
}

func TestISARoundTrip(t *testing.T) {
	ins := []Instruction{
		{OpDMARead, 12345, 4096},
		{OpDMAWrite, 1, 8},
		{OpVAdd, 0, 3},
		{OpVMul, 7, 0},
		{OpSWr, 3, 0x0FFFFFFF},
		{OpGPURd, 2, 999},
	}
	for _, in := range ins {
		got, err := Decode(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got != in {
			t.Fatalf("roundtrip %v -> %v", in, got)
		}
	}
	if _, err := Decode(uint64(200) << 56); err == nil {
		t.Fatal("invalid opcode must fail to decode")
	}
	if OpDMARead.String() != "dma_rd" || Opcode(99).String() == "" {
		t.Fatal("opcode names wrong")
	}
}

// Property: Encode/Decode round-trips any in-range instruction.
func TestISARoundTripProperty(t *testing.T) {
	f := func(op uint8, o1, o2 uint32) bool {
		in := Instruction{Op: Opcode(op % uint8(opCount)), Op1: o1 & operandMask, Op2: o2 & operandMask}
		got, err := Decode(in.Encode())
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDriverExecutesGatherReduce(t *testing.T) {
	// Host memory holds two embedding rows; program gathers and sums them.
	host := []float32{1, 2, 3, 4, 10, 20, 30, 40}
	d := NewDriver(host, 4)
	scratch := make([]float32, 8)

	prog := []Instruction{
		{OpDMARead, 0, 16}, // row 0 -> scratch[0:4]
		{OpVAdd, 0, 0},     // vecbuf += scratch[0:4]
		{OpDMARead, 4, 16}, // row 1 -> scratch[0:4]
		{OpVAdd, 0, 0},
	}
	for _, in := range prog {
		if err := d.Execute(in, scratch); err != nil {
			t.Fatal(err)
		}
	}
	want := []float32{11, 22, 33, 44}
	for i, w := range want {
		if d.VecBuf[i] != w {
			t.Fatalf("vecbuf = %v want %v", d.VecBuf, want)
		}
	}
	// Write the pooled vector back.
	copy(scratch, d.VecBuf)
	if err := d.Execute(Instruction{OpDMAWrite, 0, 16}, scratch); err != nil {
		t.Fatal(err)
	}
	if host[0] != 11 {
		t.Fatalf("dma_wr failed: %v", host[:4])
	}
	if d.Executed != 5 {
		t.Fatalf("executed = %d", d.Executed)
	}
}

func TestDriverGPUReadAndErrors(t *testing.T) {
	d := NewDriver(make([]float32, 16), 2)
	d.GPUMem[0] = []float32{5, 6, 7, 8}
	if err := d.Execute(Instruction{OpGPURd, 0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if d.VecBuf[0] != 7 || d.VecBuf[1] != 8 {
		t.Fatalf("gpu_rd row 1 = %v", d.VecBuf)
	}
	if err := d.Execute(Instruction{OpGPURd, 9, 0}, nil); err == nil {
		t.Fatal("unknown device must error")
	}
	if err := d.Execute(Instruction{OpDMARead, 1 << 20, 64}, make([]float32, 64)); err == nil {
		t.Fatal("out-of-range dma must error")
	}
	if err := d.Execute(Instruction{OpSWr, 99, 0}, nil); err == nil {
		t.Fatal("bad reg must error")
	}
	if err := d.Execute(Instruction{OpSWr, 3, 0xABC}, nil); err != nil || d.AddrRegs[3] != 0xABC {
		t.Fatal("s_wr failed")
	}
}

func TestPowerModelMatchesTable4(t *testing.T) {
	p := DefaultPowerModel()
	if math.Abs(p.TotalArea()-7.01) > 0.01 {
		t.Fatalf("total area %.2f mm², Table IV says 7.01", p.TotalArea())
	}
	if p.AvgEnergyMilliJ != 132 {
		t.Fatalf("avg energy %.0f mJ, Table IV says 132", p.AvgEnergyMilliJ)
	}
	// EAL must dominate area and power (Figure 29).
	for _, b := range p.Blocks {
		if b.Component != CompEAL && b.AreaMM2 >= p.Blocks[0].AreaMM2 {
			t.Fatal("EAL must be the largest block")
		}
	}
}

func TestPerfPerWatt(t *testing.T) {
	base := PerfPerWatt(100, 4, false)
	withAcc := PerfPerWatt(100, 4, true)
	if withAcc >= base {
		t.Fatal("adding accelerator power must reduce perf/Watt at equal throughput")
	}
	// But a >1.1x throughput gain should more than recover it.
	if PerfPerWatt(220, 4, true) <= base {
		t.Fatal("2.2x throughput must win perf/Watt despite accelerator power")
	}
}

// TestClassifyZeroAllocSteadyState: the acceleration-phase classification
// reuses its index scratch and the per-call probe memo, so classifying a
// mini-batch allocates nothing after warm-up (the accelerator sits on the
// critical path of every training step).
func TestClassifyZeroAllocSteadyState(t *testing.T) {
	cfg := data.CriteoKaggle()
	acc := New(DefaultConfig())
	gen := data.NewGenerator(cfg)
	for i := 0; i < 2; i++ {
		acc.LearnBatch(gen.NextBatch(1024))
	}
	batch := gen.NextBatch(2048)
	for i := 0; i < 3; i++ {
		acc.Classify(batch)
	}
	if n := testing.AllocsPerRun(20, func() { acc.Classify(batch) }); n > 0 {
		t.Fatalf("Classify allocated %.1f times per batch, want 0", n)
	}
}

// TestClassifyMemoMatchesDirectProbe: the per-call memo must be invisible —
// classification with the memo equals per-lookup EAL.Contains probes.
func TestClassifyMemoMatchesDirectProbe(t *testing.T) {
	cfg := data.CriteoKaggle()
	acc := New(DefaultConfig())
	gen := data.NewGenerator(cfg)
	for i := 0; i < 2; i++ {
		acc.LearnBatch(gen.NextBatch(1024))
	}
	for trial := 0; trial < 3; trial++ {
		b := gen.NextBatch(512)
		cl := acc.Classify(b)
		popular := map[int]bool{}
		for _, i := range cl.PopularIdx {
			popular[i] = true
		}
		for i := 0; i < b.Size(); i++ {
			want := true
			for tab := range b.Sparse {
				for _, ix := range b.Sparse[tab][i] {
					if !acc.EAL.Contains(tab, ix) {
						want = false
					}
				}
			}
			if popular[i] != want {
				t.Fatalf("trial %d sample %d: memoised classification %v, direct probe %v",
					trial, i, popular[i], want)
			}
		}
	}
}
