package accel

import (
	"testing"
	"testing/quick"

	"hotline/internal/tensor"
)

func smallCfg() EALConfig {
	return EALConfig{SizeBytes: 4 << 10, Banks: 4, Ways: 8, BytesPerEntry: 2, Seed: 3}
}

func TestFIFOEvictsInInsertionOrder(t *testing.T) {
	cfg := EALConfig{SizeBytes: 16, Banks: 1, Ways: 2, BytesPerEntry: 2, Seed: 1, Policy: PolicyFIFO}
	// 1 bank, 4 sets of 2 ways. Find three keys mapping to the same set.
	e := NewEAL(cfg)
	var keys []int32
	_, set0, _ := e.locate(0, 0)
	bank0 := e.Bank(0, 0)
	for row := int32(0); row < 10000 && len(keys) < 3; row++ {
		b, s, _ := e.locate(0, row)
		if b == bank0 && s == set0 {
			keys = append(keys, row)
		}
	}
	if len(keys) < 3 {
		t.Skip("could not find 3 colliding keys")
	}
	e.Touch(0, keys[0])
	e.Touch(0, keys[1])
	// Re-touch keys[0] (a hit) — FIFO must ignore recency.
	e.Touch(0, keys[0])
	// Insert the third: evicts keys[0] (oldest insertion), not keys[1].
	e.Touch(0, keys[2])
	if e.Contains(0, keys[0]) {
		t.Fatal("FIFO must evict the oldest insertion even if re-referenced")
	}
	if !e.Contains(0, keys[1]) || !e.Contains(0, keys[2]) {
		t.Fatal("FIFO evicted the wrong entry")
	}
}

// Under a repeated hot set + one-shot scan, SRRIP must retain strictly more
// of the hot set than FIFO — the reason the paper picked it.
func TestSRRIPBeatsFIFOUnderScan(t *testing.T) {
	run := func(policy ReplacementPolicy) int {
		cfg := smallCfg()
		cfg.Policy = policy
		e := NewEAL(cfg)
		hot := 96
		for r := 0; r < 15; r++ {
			for i := 0; i < hot; i++ {
				e.Touch(0, int32(i))
			}
			for i := 0; i < 2048; i++ {
				e.Touch(1, int32(100000+r*2048+i)) // never repeats
			}
		}
		kept := 0
		for i := 0; i < hot; i++ {
			if e.Contains(0, int32(i)) {
				kept++
			}
		}
		return kept
	}
	srrip, fifo := run(PolicySRRIP), run(PolicyFIFO)
	if srrip <= fifo {
		t.Fatalf("SRRIP kept %d vs FIFO %d — scan resistance lost", srrip, fifo)
	}
}

func TestNoRandomizerStillCorrect(t *testing.T) {
	cfg := smallCfg()
	cfg.NoRandomizer = true
	e := NewEAL(cfg)
	e.Touch(2, 77)
	if !e.Contains(2, 77) {
		t.Fatal("raw-indexed EAL must still track entries")
	}
	if e.Contains(3, 77) {
		t.Fatal("raw indexing must still disambiguate tables via the tag")
	}
}

// Raw indexing piles the hot heads of all tables into the same sets: bank
// distribution of per-table head indices must be far more concentrated than
// with the Feistel network.
func TestNoRandomizerCollidesHotHeads(t *testing.T) {
	count := func(noRand bool) int {
		cfg := smallCfg()
		cfg.NoRandomizer = noRand
		e := NewEAL(cfg)
		slots := map[[2]int]int{}
		// Head index 0..7 of 26 tables (208 keys): raw indexing sends every
		// table's head to the same (bank, set) slots; Feistel scatters them.
		for tbl := 0; tbl < 26; tbl++ {
			for row := int32(0); row < 8; row++ {
				b, set, _ := e.locate(tbl, row)
				slots[[2]int{b, set}]++
			}
		}
		max := 0
		for _, c := range slots {
			if c > max {
				max = c
			}
		}
		return max // occupancy of the most loaded set
	}
	raw, feistel := count(true), count(false)
	if raw <= feistel {
		t.Fatalf("raw indexing should concentrate load: raw max %d vs feistel max %d", raw, feistel)
	}
	if raw <= smallCfg().Ways {
		t.Fatalf("raw max %d should exceed associativity (thrash)", raw)
	}
}

// Property: Touch then Contains always holds, for any policy/randomizer.
func TestTouchImpliesContainsProperty(t *testing.T) {
	f := func(seed uint64, policyRaw, noRand uint8) bool {
		cfg := smallCfg()
		cfg.Policy = ReplacementPolicy(policyRaw % 2)
		cfg.NoRandomizer = noRand%2 == 1
		e := NewEAL(cfg)
		rng := tensor.NewRNG(seed)
		table := rng.Intn(8)
		row := int32(rng.Intn(1 << 20))
		e.Touch(table, row)
		return e.Contains(table, row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the EAL never tracks more identifiers than its capacity.
func TestCapacityBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := EALConfig{SizeBytes: 512, Banks: 2, Ways: 4, BytesPerEntry: 2, Seed: uint32(seed)}
		e := NewEAL(cfg)
		rng := tensor.NewRNG(seed)
		for i := 0; i < 4*e.Capacity(); i++ {
			e.Touch(rng.Intn(4), int32(rng.Intn(1<<16)))
		}
		return e.Occupancy() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
