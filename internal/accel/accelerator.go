package accel

import (
	"hotline/internal/data"
	"hotline/internal/sim"
)

// Config bundles the full accelerator configuration (Table IV defaults).
type Config struct {
	EAL     EALConfig
	Engines EngineConfig
	Reducer ReducerConfig
	EDRAM   InputEDRAMConfig
	// SampleRate is the learning-phase mini-batch sampling rate
	// (paper: 5% keeps profiling overhead ≤ 5%).
	SampleRate float64
}

// DefaultConfig returns the paper's accelerator.
func DefaultConfig() Config {
	return Config{
		EAL:        DefaultEALConfig(),
		Engines:    DefaultEngineConfig(),
		Reducer:    DefaultReducerConfig(),
		EDRAM:      DefaultInputEDRAM(),
		SampleRate: 0.05,
	}
}

// Accelerator is the functional + timing model of the Hotline accelerator.
// It owns an EAL and classifies mini-batches into popular / non-popular
// µ-batches, exactly as the Input Classifier + Lookup Engine array do.
type Accelerator struct {
	Cfg Config
	EAL *EAL
	seg *SegregationModel
	// learning statistics
	SampledBatches int64
	TotalBatches   int64

	// classification scratch, reused across Classify calls
	popScratch, nonScratch []int
	memo                   classifyMemo
}

// memoBits sizes the classification memo (2^14 entries ≈ 256 KB).
const memoBits = 14

// classifyMemo is a direct-mapped, epoch-tagged memo of EAL probe results,
// valid within one Classify call (the EAL is read-only during
// classification, and the epoch advances on every call). Zipf-skewed
// batches repeat their head rows constantly, so most probes skip the
// Feistel hash and the 8-way set scan entirely — this models the hardware's
// ability to service repeated identifiers from its port buffers rather than
// re-walking SRAM banks.
type classifyMemo struct {
	keys   []uint64
	epochs []uint32
	vals   []bool
	epoch  uint32
}

// lookup probes the memo; compute is consulted (and memoised) on a miss.
//
//hotline:hotpath
func (m *classifyMemo) lookup(key uint64, compute func() bool) bool {
	if m.keys == nil {
		n := 1 << memoBits
		m.keys = make([]uint64, n)   //hotline:allow hotalloc lazy one-time memo init
		m.epochs = make([]uint32, n) //hotline:allow hotalloc lazy one-time memo init
		m.vals = make([]bool, n)     //hotline:allow hotalloc lazy one-time memo init
	}
	h := (key * 0x9E3779B97F4A7C15) >> (64 - memoBits)
	if m.keys[h] == key && m.epochs[h] == m.epoch {
		return m.vals[h]
	}
	v := compute()
	m.keys[h], m.epochs[h], m.vals[h] = key, m.epoch, v
	return v
}

// nextEpoch invalidates the memo (start of a new Classify call).
//
//hotline:hotpath
func (m *classifyMemo) nextEpoch() {
	m.epoch++
	if m.epoch == 0 && m.keys != nil {
		// uint32 wrap: scrub stale tags so an ancient entry can never alias
		// the restarted epoch counter.
		clear(m.keys)
	}
}

// New builds an accelerator.
func New(cfg Config) *Accelerator {
	return &Accelerator{
		Cfg: cfg,
		EAL: NewEAL(cfg.EAL),
		seg: NewSegregationModel(cfg.Engines, cfg.EAL),
	}
}

// LearnBatch feeds every access of a sampled mini-batch into the EAL
// (learning phase, §IV-1).
//
//hotline:hotpath
func (a *Accelerator) LearnBatch(b *data.Batch) {
	a.SampledBatches++
	for t := range b.Sparse {
		for _, idxs := range b.Sparse[t] {
			for _, ix := range idxs {
				a.EAL.Touch(t, ix)
			}
		}
	}
}

// MaybeLearn samples the batch at the configured rate using a deterministic
// batch counter (every k-th batch where k = 1/SampleRate), mirroring the
// periodic re-calibration the paper describes.
//
//hotline:hotpath
func (a *Accelerator) MaybeLearn(b *data.Batch) bool {
	a.TotalBatches++
	if a.Cfg.SampleRate <= 0 {
		return false
	}
	k := int64(1 / a.Cfg.SampleRate)
	if k < 1 {
		k = 1
	}
	if (a.TotalBatches-1)%k == 0 {
		a.LearnBatch(b)
		return true
	}
	return false
}

// Classification is the result of segregating one mini-batch.
type Classification struct {
	PopularIdx    []int // sample positions whose accesses are all tracked
	NonPopularIdx []int
	// ColdLookups counts accesses that missed the EAL (these rows must be
	// gathered from CPU DRAM for the non-popular µ-batch).
	ColdLookups int64
	// TotalLookups is every sparse access in the batch.
	TotalLookups int64
}

// PopularFraction returns |popular| / batch.
func (c Classification) PopularFraction() float64 {
	n := len(c.PopularIdx) + len(c.NonPopularIdx)
	if n == 0 {
		return 0
	}
	return float64(len(c.PopularIdx)) / float64(n)
}

// Classify runs the acceleration-phase segregation: an input is popular iff
// every one of its embedding indices is tracked by the EAL (§V-C).
//
// The returned index slices are scratch owned by the accelerator, valid
// until the next Classify call; callers that keep a classification across
// batches must copy them (the executor's lookahead stash does).
//
//hotline:hotpath
func (a *Accelerator) Classify(b *data.Batch) Classification {
	cl := Classification{PopularIdx: a.popScratch[:0], NonPopularIdx: a.nonScratch[:0]}
	a.memo.nextEpoch()
	n := b.Size()
	for i := 0; i < n; i++ {
		popular := true
		for t := range b.Sparse {
			for _, ix := range b.Sparse[t][i] {
				cl.TotalLookups++
				key := uint64(t)<<32 | uint64(uint32(ix))
				tracked := a.memo.lookup(key, func() bool { return a.EAL.Contains(t, ix) }) //hotline:allow hotalloc non-escaping predicate; memo.lookup invokes it inline or not at all
				if !tracked {
					popular = false
					cl.ColdLookups++
				}
			}
		}
		if popular {
			cl.PopularIdx = append(cl.PopularIdx, i) //hotline:allow hotalloc classification scratch; converges to the batch size
		} else {
			cl.NonPopularIdx = append(cl.NonPopularIdx, i) //hotline:allow hotalloc classification scratch; converges to the batch size
		}
	}
	a.popScratch, a.nonScratch = cl.PopularIdx, cl.NonPopularIdx
	return cl
}

// SegregationTime returns the accelerator time to classify a mini-batch
// with the given lookup count.
func (a *Accelerator) SegregationTime(totalLookups int64) sim.Duration {
	return a.seg.SegregationTime(totalLookups)
}

// LookupThroughput exposes sustained lookups/cycle (for reports).
func (a *Accelerator) LookupThroughput() float64 { return a.seg.Throughput() }
