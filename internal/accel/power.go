package accel

// Component identifies one accelerator block in the area/power inventory.
type Component string

const (
	CompEAL        Component = "Embedding Access Logger"
	CompLookup     Component = "Lookup Engines"
	CompEDRAM      Component = "Input eDRAM"
	CompReducer    Component = "Reducer ALUs"
	CompDispatcher Component = "Data Dispatcher"
	CompVecBuf     Component = "Embedding Vector Buffer"
)

// BlockBudget is one row of the area/power breakdown.
type BlockBudget struct {
	Component Component
	AreaMM2   float64
	PowerW    float64
}

// PowerModel reproduces the paper's Table IV / Figure 29 inventory: the
// accelerator totals 7.01 mm² (45 nm) and 132 mJ average energy per
// mini-batch, with the EAL's 4 MB SRAM dominating both area and power.
// Block splits follow Figure 29's breakdown (EAL largest, then eDRAM,
// lookup engines, reducer, dispatcher, vector buffer).
type PowerModel struct {
	Blocks []BlockBudget
	// AvgEnergyMilliJ is the average energy per mini-batch (Table IV).
	AvgEnergyMilliJ float64
}

// DefaultPowerModel returns the Table IV accelerator at 350 MHz / 45 nm.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		Blocks: []BlockBudget{
			{CompEAL, 3.60, 1.90},        // 4 MB multi-banked SRAM
			{CompEDRAM, 1.45, 0.60},      // 2.5 MB input buffer
			{CompLookup, 1.10, 0.75},     // 64 engines + Feistel nets
			{CompReducer, 0.45, 0.30},    // 16 ALUs
			{CompDispatcher, 0.35, 0.20}, // classifier + addr regs + ctrl
			{CompVecBuf, 0.06, 0.05},     // 0.5 kB buffer
		},
		AvgEnergyMilliJ: 132,
	}
}

// TotalArea sums block areas (≈ 7.01 mm², Table IV).
func (p PowerModel) TotalArea() float64 {
	var a float64
	for _, b := range p.Blocks {
		a += b.AreaMM2
	}
	return a
}

// TotalPower sums block powers in watts.
func (p PowerModel) TotalPower() float64 {
	var w float64
	for _, b := range p.Blocks {
		w += b.PowerW
	}
	return w
}

// SystemPowerW approximates the host power envelope of the training server
// used for performance/Watt (Figure 29): CPU TDP + per-GPU TDP.
func SystemPowerW(gpus int) float64 {
	const cpuTDP = 85.0  // Xeon Silver 4116
	const gpuTDP = 300.0 // Tesla V100
	return cpuTDP + float64(gpus)*gpuTDP
}

// PerfPerWatt computes relative throughput/Watt: throughput (iterations/s
// or any consistent unit) divided by system power, optionally including the
// accelerator's own power draw.
func PerfPerWatt(throughput float64, gpus int, withAccelerator bool) float64 {
	p := SystemPowerW(gpus)
	if withAccelerator {
		p += DefaultPowerModel().TotalPower()
	}
	if p <= 0 {
		return 0
	}
	return throughput / p
}
