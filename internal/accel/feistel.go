package accel

// Feistel is the low-latency 4-round Feistel network the lookup engine uses
// to scatter (embedding table, embedding index) tuples uniformly across EAL
// banks and sets, preventing thrashing when one table's indices dominate
// (paper §V-C, citing Luby-Rackoff).
//
// A Feistel network is a bijection on 32-bit values, so two distinct
// (table, index) tuples can never collide before the modulo-bank step —
// exactly why the hardware uses it instead of a lossy hash.
type Feistel struct {
	keys [4]uint16
}

// NewFeistel derives round keys from seed.
func NewFeistel(seed uint32) *Feistel {
	f := &Feistel{}
	x := seed ^ 0x9E3779B9
	for i := range f.keys {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		f.keys[i] = uint16(x>>7) | 1
	}
	return f
}

// round is the Feistel F-function on a 16-bit half.
//
//hotline:hotpath
func (f *Feistel) round(half, key uint16) uint16 {
	x := uint32(half)*0x9E37 + uint32(key)
	x ^= x >> 7
	x = x*0x85EB + 0x1657
	x ^= x >> 9
	return uint16(x)
}

// Permute applies the 4-round network to v (a bijection on uint32).
//
//hotline:hotpath
func (f *Feistel) Permute(v uint32) uint32 {
	l, r := uint16(v>>16), uint16(v)
	for i := 0; i < 4; i++ {
		l, r = r, l^f.round(r, f.keys[i])
	}
	return uint32(l)<<16 | uint32(r)
}

// Inverse undoes Permute (bijectivity witness for tests).
func (f *Feistel) Inverse(v uint32) uint32 {
	l, r := uint16(v>>16), uint16(v)
	for i := 3; i >= 0; i-- {
		l, r = r^f.round(l, f.keys[i]), l
	}
	return uint32(l)<<16 | uint32(r)
}

// HashKey maps an (embedding table, embedding index) tuple to a scattered
// 32-bit key. Table id occupies the top 6 bits pre-permutation so tables
// with identical index distributions land in different regions.
//
//hotline:hotpath
func (f *Feistel) HashKey(table int, row int32) uint32 {
	v := uint32(table)<<26 ^ uint32(row)&0x03FF_FFFF
	return f.Permute(v)
}
