package accel

import (
	"hotline/internal/sim"
	"hotline/internal/tensor"
)

// EngineConfig sizes the parallel lookup-engine array (paper §V-C,
// Table IV: 64 engines at 350 MHz, fed from a 512-entry request queue).
type EngineConfig struct {
	Engines   int
	QueueSize int
	FreqHz    float64
}

// DefaultEngineConfig is the paper's Table IV configuration.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{Engines: 64, QueueSize: 512, FreqHz: 350e6}
}

// CycleTime returns one accelerator clock period.
func (c EngineConfig) CycleTime() sim.Duration {
	return sim.Duration(1e9 / c.FreqHz)
}

// ParallelRequestsPerIteration estimates how many queued EAL requests issue
// per iteration for a queue of m requests over banks banks (Figure 16's
// design-space exploration): the scheduler scans the queue and issues at
// most one request per bank per iteration, capped by the engine count.
// Requests target banks uniformly thanks to the Feistel randomizer; the
// estimate Monte-Carlo samples that process with a deterministic seed.
func ParallelRequestsPerIteration(queue, banks, engines int, trials int) float64 {
	if queue < 1 || banks < 1 {
		return 0
	}
	rng := tensor.NewRNG(uint64(queue)<<32 ^ uint64(banks)<<8 ^ 0xF16)
	var total float64
	for t := 0; t < trials; t++ {
		seen := make(map[int]struct{}, banks)
		for i := 0; i < queue; i++ {
			seen[rng.Intn(banks)] = struct{}{}
		}
		issued := len(seen)
		if issued > engines {
			issued = engines
		}
		total += float64(issued)
	}
	return total / float64(trials)
}

// SegregationModel converts mini-batch classification work into accelerator
// time. throughput is lookups retired per cycle (bounded by both the engine
// count and the bank-parallelism of the EAL).
type SegregationModel struct {
	Eng EngineConfig
	EAL EALConfig
	// perLookupCycles is the pipeline depth cost amortised to 1 per lookup.
	throughput float64
}

// NewSegregationModel derives the sustained lookup throughput from the
// engine and EAL configurations.
func NewSegregationModel(eng EngineConfig, eal EALConfig) *SegregationModel {
	par := ParallelRequestsPerIteration(eng.QueueSize, eal.Banks, eng.Engines, 64)
	if par < 1 {
		par = 1
	}
	return &SegregationModel{Eng: eng, EAL: eal, throughput: par}
}

// Throughput returns sustained lookups per cycle.
func (m *SegregationModel) Throughput() float64 { return m.throughput }

// SegregationTime returns the time to classify a mini-batch with the given
// total lookup count (batch × average lookups per input) and assemble the
// two µ-batches. Constants: 1 cycle per issued request plus a fixed
// pipeline ramp of ~200 cycles per mini-batch.
func (m *SegregationModel) SegregationTime(totalLookups int64) sim.Duration {
	cycles := float64(totalLookups)/m.throughput + 200
	return sim.Duration(cycles * float64(m.Eng.CycleTime()))
}

// ReducerConfig sizes the reducer ALU array (Table IV: 16 ALUs).
type ReducerConfig struct {
	ALUs   int
	FreqHz float64
}

// DefaultReducerConfig is the paper's Table IV configuration.
func DefaultReducerConfig() ReducerConfig { return ReducerConfig{ALUs: 16, FreqHz: 350e6} }

// ReduceTime models pooling nRows embedding rows of dim floats into bag
// sums: one float add per element, ALUs elements per cycle.
func (r ReducerConfig) ReduceTime(nRows int64, dim int) sim.Duration {
	cycles := float64(nRows*int64(dim)) / float64(r.ALUs)
	return sim.Duration(cycles * 1e9 / r.FreqHz)
}

// InputEDRAMConfig models the 2.5 MB input staging buffer that holds the
// non-popular µ-batch (paper §V-A: up to 16K inputs).
type InputEDRAMConfig struct {
	SizeBytes int64
}

// DefaultInputEDRAM returns the Table IV 2.5 MB buffer.
func DefaultInputEDRAM() InputEDRAMConfig { return InputEDRAMConfig{SizeBytes: 2_500_000} }

// MaxInputs returns how many inputs fit given bytes per staged input
// (sparse indices + per-table offsets).
func (c InputEDRAMConfig) MaxInputs(bytesPerInput int64) int {
	if bytesPerInput <= 0 {
		return 0
	}
	return int(c.SizeBytes / bytesPerInput)
}
