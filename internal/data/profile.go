package data

import (
	"sort"

	"hotline/internal/embedding"
)

// AccessProfile aggregates per-row access counts observed over a stream of
// batches. It backs the Figure 6 skew analysis, Hotline's learning phase and
// FAE's offline profiler.
type AccessProfile struct {
	NumTables int
	counts    []map[int32]int64
	Total     int64
}

// NewAccessProfile returns an empty profile over numTables tables.
func NewAccessProfile(numTables int) *AccessProfile {
	p := &AccessProfile{NumTables: numTables, counts: make([]map[int32]int64, numTables)}
	for i := range p.counts {
		p.counts[i] = make(map[int32]int64)
	}
	return p
}

// Observe adds every access in the batch to the profile.
func (p *AccessProfile) Observe(b *Batch) {
	for t := range b.Sparse {
		for _, idxs := range b.Sparse[t] {
			for _, ix := range idxs {
				p.counts[t][ix]++
				p.Total++
			}
		}
	}
}

// Count returns the access count of one row.
func (p *AccessProfile) Count(table int, row int32) int64 { return p.counts[table][row] }

// DistinctRows returns how many distinct rows were touched.
func (p *AccessProfile) DistinctRows() int {
	n := 0
	for _, m := range p.counts {
		n += len(m)
	}
	return n
}

// Counts flattens the profile into embedding.AccessCount records (sorted by
// count descending, deterministic tie-break).
func (p *AccessProfile) Counts() []embedding.AccessCount {
	out := make([]embedding.AccessCount, 0, p.DistinctRows())
	for t, m := range p.counts {
		for row, c := range m {
			out = append(out, embedding.AccessCount{Table: t, Row: row, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Row < out[j].Row
	})
	return out
}

// SortedCounts returns just the access counts in descending order — the
// Figure 6 per-entry access curve.
func (p *AccessProfile) SortedCounts() []int64 {
	cs := p.Counts()
	out := make([]int64, len(cs))
	for i, c := range cs {
		out[i] = c.Count
	}
	return out
}

// SkewRatio returns the ratio between the pth-percentile-from-top access
// count and the median — a summary of how heavy the head is (the paper
// reports >100x for frequently-accessed entries).
func (p *AccessProfile) SkewRatio() float64 {
	sorted := p.SortedCounts()
	if len(sorted) < 10 {
		return 1
	}
	top := sorted[len(sorted)/100] // 99th percentile
	med := sorted[len(sorted)/2]
	if med == 0 {
		med = 1
	}
	return float64(top) / float64(med)
}

// ProfileEpoch runs gen for the config's epoch length and returns the
// resulting profile. batchSize controls generation granularity only.
func ProfileEpoch(gen *Generator, batchSize int) *AccessProfile {
	p := NewAccessProfile(gen.Cfg.NumTables)
	remaining := gen.Cfg.Samples
	for remaining > 0 {
		n := batchSize
		if n > remaining {
			n = remaining
		}
		p.Observe(gen.NextBatch(n))
		remaining -= n
	}
	return p
}

// PopularInputFraction classifies nSamples fresh inputs against the placement
// and returns the fraction that are popular (all accesses GPU-resident).
func PopularInputFraction(gen *Generator, placement *embedding.Placement, nSamples int) float64 {
	if nSamples <= 0 {
		return 0
	}
	popular := 0
	b := gen.NextBatch(nSamples)
	for i := 0; i < nSamples; i++ {
		if placement.InputIsPopular(b.SampleSparse(i)) {
			popular++
		}
	}
	return float64(popular) / float64(nSamples)
}

// ScaledHotBudget is the downscaled analogue of the paper's 512 MB
// frequently-accessed-embedding budget: cfg.HotFracRows of the scaled sparse
// footprint, with a floor so tiny configs keep a meaningful head. The
// fraction is calibrated per dataset (see the catalog) so that the resulting
// popular-input percentages match Figure 6.
func ScaledHotBudget(cfg Config) int64 {
	b := int64(cfg.HotFracRows * float64(cfg.TotalScaledRows()) * float64(cfg.EmbedDim) * 4)
	min := int64(cfg.EmbedDim) * 4 * 64 // at least 64 hot rows
	if b < min {
		b = min
	}
	return b
}

// TopKRows returns the k most-accessed (table,row) pairs of the profile.
func (p *AccessProfile) TopKRows(k int) []embedding.AccessCount {
	cs := p.Counts()
	if k > len(cs) {
		k = len(cs)
	}
	return cs[:k]
}

// DayOverlap measures, for one table, the overlap between the top-k popular
// rows on two days: |top_k(day1) ∩ top_k(day2)| / k. Figure 9's evolving
// skew shows this dropping as days pass.
func DayOverlap(cfg Config, table, day1, day2, k int) float64 {
	set := func(day int) map[int32]struct{} {
		g := NewGenerator(cfg)
		g.SetDay(day)
		s := make(map[int32]struct{}, k)
		for rank := 0; rank < k; rank++ {
			s[g.RowForRank(table, rank)] = struct{}{}
		}
		return s
	}
	a, b := set(day1), set(day2)
	inter := 0
	for r := range a {
		if _, ok := b[r]; ok {
			inter++
		}
	}
	return float64(inter) / float64(k)
}
