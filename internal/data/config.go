package data

import (
	"fmt"
	"math"
)

// Config describes one synthetic dataset/model workload. It carries both the
// paper-scale footprint (FullRowsPerTable, FullSizeGB — used by the
// performance simulator for memory-capacity and bandwidth math, e.g. the
// HugeCTR OOM results) and a ~1000x downscaled shape (ScaledRowsPerTable —
// used by the functional training layer so real training runs on a laptop).
type Config struct {
	Name string // dataset name, e.g. "Criteo Kaggle"
	RM   string // model id from paper Table II, e.g. "RM2"

	DenseFeatures int
	NumTables     int
	// FullRowsPerTable is the paper-scale per-table row count (sums to the
	// Table II sparse-parameter count).
	FullRowsPerTable []int64
	// ScaledRowsPerTable is the downscaled per-table row count used for
	// functional training and access profiling.
	ScaledRowsPerTable []int
	// LookupsPerTable is the multi-hot degree (1 = one-hot). For the TBSM
	// workload table 0 is the behaviour-sequence table and its lookups are
	// interpreted as TimeSteps item embeddings rather than a pooled bag.
	LookupsPerTable int
	// ZipfS is the popularity skew exponent, fitted per dataset so that the
	// popular-input fraction under a 512 MB hot budget matches Figure 6.
	ZipfS float64
	// DriftPerDay is the fraction of popular ranks that get remapped to new
	// rows per simulated day (Figure 9's evolving skew).
	DriftPerDay float64
	// HotFracRows is the fraction of scaled embedding bytes the hot
	// (GPU-resident) tier may hold. It is the downscaled analogue of the
	// paper's 512 MB frequently-accessed budget, calibrated jointly with
	// ZipfS so the popular-input fraction matches Figure 6.
	HotFracRows float64

	EmbedDim  int
	BotMLP    []int
	TopMLP    []int
	TimeSteps int  // >1 selects the TBSM model with attention
	Attention bool // TBSM attention layer (RM1)

	Samples int    // samples per (scaled) synthetic epoch
	Seed    uint64 // base RNG seed; everything derives deterministically

	ScaleFactor int64   // FullRows / ScaledRows ratio (documentation)
	FullSizeGB  float64 // Table II "Size (GB)" column
}

// TotalFullRows sums the paper-scale row counts.
func (c Config) TotalFullRows() int64 {
	var n int64
	for _, r := range c.FullRowsPerTable {
		n += r
	}
	return n
}

// TotalScaledRows sums the downscaled row counts.
func (c Config) TotalScaledRows() int {
	n := 0
	for _, r := range c.ScaledRowsPerTable {
		n += r
	}
	return n
}

// FullEmbeddingBytes is the paper-scale sparse footprint in bytes (float32).
func (c Config) FullEmbeddingBytes() int64 {
	return c.TotalFullRows() * int64(c.EmbedDim) * 4
}

// Validate checks internal consistency (MLP widths vs embedding dim, table
// counts, etc).
func (c Config) Validate() error {
	if len(c.FullRowsPerTable) != c.NumTables || len(c.ScaledRowsPerTable) != c.NumTables {
		return fmt.Errorf("data: %s row-count slices (%d/%d) != NumTables %d",
			c.Name, len(c.FullRowsPerTable), len(c.ScaledRowsPerTable), c.NumTables)
	}
	if len(c.BotMLP) < 2 || c.BotMLP[0] != c.DenseFeatures {
		return fmt.Errorf("data: %s bottom MLP %v must start at %d dense features", c.Name, c.BotMLP, c.DenseFeatures)
	}
	if c.BotMLP[len(c.BotMLP)-1] != c.EmbedDim {
		return fmt.Errorf("data: %s bottom MLP %v must end at embed dim %d", c.Name, c.BotMLP, c.EmbedDim)
	}
	if c.TopMLP[len(c.TopMLP)-1] != 1 {
		return fmt.Errorf("data: %s top MLP %v must end at 1 logit", c.Name, c.TopMLP)
	}
	if c.LookupsPerTable < 1 {
		return fmt.Errorf("data: %s LookupsPerTable %d < 1", c.Name, c.LookupsPerTable)
	}
	return nil
}

// splitRows distributes total rows over n tables with a power-law profile
// (a few huge tables plus a long tail, as in the real Criteo tables).
func splitRows(total int64, n int, alpha float64) []int64 {
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = 1 / pow(float64(i+1), alpha)
		sum += weights[i]
	}
	rows := make([]int64, n)
	var assigned int64
	for i := range rows {
		rows[i] = int64(float64(total) * weights[i] / sum)
		if rows[i] < 4 {
			rows[i] = 4
		}
		assigned += rows[i]
	}
	// Put rounding slack in the largest table.
	if assigned < total {
		rows[0] += total - assigned
	}
	return rows
}

func pow(x, a float64) float64 { return math.Pow(x, a) }

func scaleDown(full []int64, factor int64) []int {
	out := make([]int, len(full))
	for i, r := range full {
		s := r / factor
		if s < 8 {
			s = 8
		}
		out[i] = int(s)
	}
	return out
}

// Catalog entries. Shapes follow paper Table II; Zipf exponents are fitted so
// the popular-input fractions under a 512 MB (paper-scale) hot budget line up
// with Figure 6 (~75-85% popular, Taobao least skewed).

// CriteoKaggle returns the RM2 workload (DLRM, 13 dense, 26 sparse, 33.8M rows).
func CriteoKaggle() Config {
	full := splitRows(33_800_000, 26, 1.6)
	c := Config{
		Name: "Criteo Kaggle", RM: "RM2",
		DenseFeatures: 13, NumTables: 26,
		FullRowsPerTable: full, ScaledRowsPerTable: scaleDown(full, 1000),
		LookupsPerTable: 1, ZipfS: 1.0, DriftPerDay: 0.10, HotFracRows: 0.30,
		EmbedDim: 16,
		BotMLP:   []int{13, 512, 256, 64, 16},
		TopMLP:   []int{512, 256, 1},
		Samples:  8192, Seed: 0xC217E0, ScaleFactor: 1000, FullSizeGB: 2,
	}
	return c
}

// TaobaoAlibaba returns the RM1 workload (TBSM, 1 dense, 3 sparse, 5.1M rows,
// 21 time steps with an attention layer).
func TaobaoAlibaba() Config {
	full := splitRows(5_100_000, 3, 1.2)
	return Config{
		Name: "Taobao Alibaba", RM: "RM1",
		DenseFeatures: 1, NumTables: 3,
		FullRowsPerTable: full, ScaledRowsPerTable: scaleDown(full, 1000),
		LookupsPerTable: 1, ZipfS: 1.5, DriftPerDay: 0.15, HotFracRows: 0.15,
		EmbedDim:  16,
		BotMLP:    []int{1, 16},
		TopMLP:    []int{30, 60, 1},
		TimeSteps: 21, Attention: true,
		Samples: 8192, Seed: 0x7A0BA0, ScaleFactor: 1000, FullSizeGB: 0.3,
	}
}

// CriteoTerabyte returns the RM3 workload (DLRM, 13 dense, 26 sparse, 266M rows).
func CriteoTerabyte() Config {
	full := splitRows(266_000_000, 26, 1.6)
	return Config{
		Name: "Criteo Terabyte", RM: "RM3",
		DenseFeatures: 13, NumTables: 26,
		FullRowsPerTable: full, ScaledRowsPerTable: scaleDown(full, 4000),
		LookupsPerTable: 1, ZipfS: 1.2, DriftPerDay: 0.12, HotFracRows: 0.15,
		EmbedDim: 64,
		BotMLP:   []int{13, 512, 256, 64},
		TopMLP:   []int{512, 512, 256, 1},
		Samples:  8192, Seed: 0x7E4AB7, ScaleFactor: 4000, FullSizeGB: 63,
	}
}

// Avazu returns the RM4 workload (DLRM, 1 dense, 21 sparse, 9.3M rows).
func Avazu() Config {
	full := splitRows(9_300_000, 21, 1.6)
	return Config{
		Name: "Avazu", RM: "RM4",
		DenseFeatures: 1, NumTables: 21,
		FullRowsPerTable: full, ScaledRowsPerTable: scaleDown(full, 1000),
		LookupsPerTable: 1, ZipfS: 1.8, DriftPerDay: 0.08, HotFracRows: 0.12,
		EmbedDim: 16,
		BotMLP:   []int{1, 512, 256, 64, 16},
		TopMLP:   []int{512, 256, 1},
		Samples:  8192, Seed: 0xA7A2B0, ScaleFactor: 1000, FullSizeGB: 0.55,
	}
}

// SynM1 returns the SYN-M1 multi-hot synthetic model (Fig. 28/30): 54 dense,
// 102 sparse features, 196 GB of embeddings.
func SynM1() Config {
	const dim = 64
	totalRows := int64(196) * (1 << 30) / (dim * 4)
	full := splitRows(totalRows, 102, 1.3)
	return Config{
		Name: "SYN-M1", RM: "SYN-M1",
		DenseFeatures: 54, NumTables: 102,
		FullRowsPerTable: full, ScaledRowsPerTable: scaleDown(full, 40_000),
		LookupsPerTable: 4, ZipfS: 1.2, DriftPerDay: 0.10, HotFracRows: 0.20,
		EmbedDim: dim,
		BotMLP:   []int{54, 512, 256, 64},
		TopMLP:   []int{512, 256, 1},
		Samples:  4096, Seed: 0x517171, ScaleFactor: 40_000, FullSizeGB: 196,
	}
}

// SynM2 returns the SYN-M2 multi-hot synthetic model: 102 dense, 204 sparse
// features, 390 GB of embeddings.
func SynM2() Config {
	const dim = 64
	totalRows := int64(390) * (1 << 30) / (dim * 4)
	full := splitRows(totalRows, 204, 1.3)
	return Config{
		Name: "SYN-M2", RM: "SYN-M2",
		DenseFeatures: 102, NumTables: 204,
		FullRowsPerTable: full, ScaledRowsPerTable: scaleDown(full, 80_000),
		LookupsPerTable: 4, ZipfS: 1.2, DriftPerDay: 0.10, HotFracRows: 0.20,
		EmbedDim: dim,
		BotMLP:   []int{102, 512, 256, 64},
		TopMLP:   []int{512, 256, 1},
		Samples:  4096, Seed: 0x517172, ScaleFactor: 80_000, FullSizeGB: 390,
	}
}

// AllDatasets returns the four real-world workloads in paper order.
func AllDatasets() []Config {
	return []Config{CriteoKaggle(), TaobaoAlibaba(), CriteoTerabyte(), Avazu()}
}

// ByName looks a config up by dataset name or RM id.
func ByName(name string) (Config, error) {
	for _, c := range append(AllDatasets(), SynM1(), SynM2()) {
		if c.Name == name || c.RM == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("data: unknown dataset %q", name)
}
