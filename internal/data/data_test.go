package data

import (
	"math"
	"testing"
	"testing/quick"

	"hotline/internal/embedding"
	"hotline/internal/tensor"
)

func TestZipfCDFMonotone(t *testing.T) {
	z := NewZipf(100, 1.1)
	prev := 0.0
	for r := 0; r < 100; r++ {
		p := z.ProbOfRank(r)
		if p <= 0 {
			t.Fatalf("rank %d prob %g", r, p)
		}
		if r > 0 && p > prev+1e-12 {
			t.Fatalf("prob must be non-increasing: rank %d %g > %g", r, p, prev)
		}
		prev = p
	}
	if math.Abs(z.MassOfTop(100)-1) > 1e-9 {
		t.Fatal("total mass must be 1")
	}
}

func TestZipfSampleMatchesMass(t *testing.T) {
	z := NewZipf(1000, 1.0)
	rng := tensor.NewRNG(1)
	n := 50000
	top10 := 0
	for i := 0; i < n; i++ {
		if z.Sample(rng) < 10 {
			top10++
		}
	}
	got := float64(top10) / float64(n)
	want := z.MassOfTop(10)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("top-10 empirical mass %g want %g", got, want)
	}
}

func TestZipfRanksForMass(t *testing.T) {
	z := NewZipf(1000, 1.1)
	k := z.RanksForMass(0.75)
	if m := z.MassOfTop(k); m < 0.75 {
		t.Fatalf("top-%d mass %g < 0.75", k, m)
	}
	if k > 1 {
		if m := z.MassOfTop(k - 1); m >= 0.75 {
			t.Fatalf("k not minimal: top-%d already has %g", k-1, m)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	for r := 0; r < 10; r++ {
		if math.Abs(z.ProbOfRank(r)-0.1) > 1e-9 {
			t.Fatalf("s=0 should be uniform, rank %d = %g", r, z.ProbOfRank(r))
		}
	}
}

func TestCatalogValidates(t *testing.T) {
	for _, cfg := range append(AllDatasets(), SynM1(), SynM2()) {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}

func TestCatalogMatchesTable2(t *testing.T) {
	cases := []struct {
		cfg       Config
		dense     int
		sparse    int
		totalRows int64
		dim       int
	}{
		{CriteoKaggle(), 13, 26, 33_800_000, 16},
		{TaobaoAlibaba(), 1, 3, 5_100_000, 16},
		{CriteoTerabyte(), 13, 26, 266_000_000, 64},
		{Avazu(), 1, 21, 9_300_000, 16},
	}
	for _, c := range cases {
		if c.cfg.DenseFeatures != c.dense || c.cfg.NumTables != c.sparse || c.cfg.EmbedDim != c.dim {
			t.Fatalf("%s shape mismatch vs Table II", c.cfg.Name)
		}
		if got := c.cfg.TotalFullRows(); got != c.totalRows {
			t.Fatalf("%s total rows %d want %d", c.cfg.Name, got, c.totalRows)
		}
	}
	if TaobaoAlibaba().TimeSteps != 21 || !TaobaoAlibaba().Attention {
		t.Fatal("Taobao must be the 21-step TBSM workload")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("RM3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("Avazu"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestSplitRowsConserves(t *testing.T) {
	rows := splitRows(1_000_000, 26, 1.6)
	var sum int64
	for _, r := range rows {
		if r < 4 {
			t.Fatalf("table with %d rows", r)
		}
		sum += r
	}
	if sum != 1_000_000 {
		t.Fatalf("splitRows sum %d", sum)
	}
	if rows[0] <= rows[25] {
		t.Fatal("rows must be head-heavy")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := CriteoKaggle()
	g1, g2 := NewGenerator(cfg), NewGenerator(cfg)
	b1, b2 := g1.NextBatch(32), g2.NextBatch(32)
	if !b1.Dense.Equal(b2.Dense) {
		t.Fatal("dense features must be deterministic")
	}
	for tbl := range b1.Sparse {
		for i := range b1.Sparse[tbl] {
			for j := range b1.Sparse[tbl][i] {
				if b1.Sparse[tbl][i][j] != b2.Sparse[tbl][i][j] {
					t.Fatal("sparse indices must be deterministic")
				}
			}
		}
	}
	for i := range b1.Labels {
		if b1.Labels[i] != b2.Labels[i] {
			t.Fatal("labels must be deterministic")
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	cfg := TaobaoAlibaba()
	g := NewGenerator(cfg)
	b := g.NextBatch(16)
	if b.Size() != 16 || b.Dense.Rows != 16 || b.Dense.Cols != 1 {
		t.Fatalf("batch shapes wrong: %d %v", b.Size(), b.Dense)
	}
	if len(b.Sparse) != 3 {
		t.Fatalf("tables = %d", len(b.Sparse))
	}
	if len(b.Sparse[0][0]) != 21 {
		t.Fatalf("sequence table should have 21 lookups, got %d", len(b.Sparse[0][0]))
	}
	if len(b.Sparse[1][0]) != 1 {
		t.Fatalf("non-sequence table should be one-hot, got %d", len(b.Sparse[1][0]))
	}
	for tbl := range b.Sparse {
		rows := cfg.ScaledRowsPerTable[tbl]
		for _, idxs := range b.Sparse[tbl] {
			for _, ix := range idxs {
				if ix < 0 || int(ix) >= rows {
					t.Fatalf("index %d out of range %d", ix, rows)
				}
			}
		}
	}
}

func TestBatchSubset(t *testing.T) {
	g := NewGenerator(Avazu())
	b := g.NextBatch(8)
	sub := b.Subset([]int{1, 5, 7})
	if sub.Size() != 3 {
		t.Fatalf("subset size %d", sub.Size())
	}
	for j, i := range []int{1, 5, 7} {
		if sub.Labels[j] != b.Labels[i] {
			t.Fatal("subset labels wrong")
		}
		if sub.Dense.At(j, 0) != b.Dense.At(i, 0) {
			t.Fatal("subset dense wrong")
		}
		for tbl := range b.Sparse {
			if sub.Sparse[tbl][j][0] != b.Sparse[tbl][i][0] {
				t.Fatal("subset sparse wrong")
			}
		}
	}
}

func TestLabelsHaveBothClassesAndSignal(t *testing.T) {
	g := NewGenerator(CriteoKaggle())
	b := g.NextBatch(2000)
	ones := 0
	for _, l := range b.Labels {
		if l == 1 {
			ones++
		}
	}
	if ones < 200 || ones > 1800 {
		t.Fatalf("labels degenerate: %d/2000 positive", ones)
	}
}

func TestAccessProfileCountsAndSkew(t *testing.T) {
	g := NewGenerator(CriteoKaggle())
	p := NewAccessProfile(g.Cfg.NumTables)
	b := g.NextBatch(2000)
	p.Observe(b)
	if p.Total != 2000*26 {
		t.Fatalf("total accesses %d want %d", p.Total, 2000*26)
	}
	if p.SkewRatio() < 5 {
		t.Fatalf("Zipf data should be heavily skewed, ratio=%g", p.SkewRatio())
	}
	counts := p.Counts()
	for i := 1; i < len(counts); i++ {
		if counts[i].Count > counts[i-1].Count {
			t.Fatal("Counts must be sorted descending")
		}
	}
}

// The paper's core empirical claim: with a 512MB-equivalent hot budget, the
// large majority (~70-85%) of inputs are popular.
func TestPopularInputFractionMatchesPaper(t *testing.T) {
	for _, cfg := range AllDatasets() {
		cfg.Samples = 4096
		g := NewGenerator(cfg)
		prof := ProfileEpoch(g, 512)
		budget := ScaledHotBudget(cfg)
		placement := embedding.PlacementFromCounts(prof.Counts(), cfg.NumTables, cfg.EmbedDim, budget)
		frac := PopularInputFraction(NewGenerator(cfg), placement, 2048)
		if frac < 0.55 || frac > 0.97 {
			t.Errorf("%s: popular fraction %.2f outside plausible paper range", cfg.Name, frac)
		}
	}
}

func TestDayDriftChangesPopularSet(t *testing.T) {
	cfg := CriteoTerabyte()
	same := DayOverlap(cfg, 0, 3, 3, 100)
	if same != 1 {
		t.Fatalf("self overlap = %g", same)
	}
	d1 := DayOverlap(cfg, 0, 0, 1, 100)
	d7 := DayOverlap(cfg, 0, 0, 7, 100)
	if d1 >= 1 {
		t.Fatal("one day of drift must change the popular set")
	}
	if d7 > d1 {
		t.Fatalf("overlap should decay with days: d1=%g d7=%g", d1, d7)
	}
}

func TestSetDayDeterministicAndOrderIndependent(t *testing.T) {
	cfg := Avazu()
	g1 := NewGenerator(cfg)
	g1.SetDay(5)
	g2 := NewGenerator(cfg)
	g2.SetDay(2)
	g2.SetDay(5)
	for r := 0; r < 50; r++ {
		if g1.RowForRank(0, r) != g2.RowForRank(0, r) {
			t.Fatal("SetDay must be path-independent")
		}
	}
}

// Property: every permutation produced for any day is a valid permutation.
func TestDayPermIsPermutationProperty(t *testing.T) {
	cfg := TaobaoAlibaba()
	f := func(dayRaw uint8, tableRaw uint8) bool {
		day := int(dayRaw) % 10
		table := int(tableRaw) % cfg.NumTables
		g := NewGenerator(cfg)
		g.SetDay(day)
		rows := cfg.ScaledRowsPerTable[table]
		seen := make(map[int32]struct{}, rows)
		for r := 0; r < rows; r++ {
			v := g.RowForRank(table, r)
			if v < 0 || int(v) >= rows {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return len(seen) == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestScaledHotBudgetFloor(t *testing.T) {
	cfg := TaobaoAlibaba()
	b := ScaledHotBudget(cfg)
	if b < int64(cfg.EmbedDim)*4*64 {
		t.Fatalf("budget %d below floor", b)
	}
}

func TestTopKRows(t *testing.T) {
	g := NewGenerator(Avazu())
	p := NewAccessProfile(g.Cfg.NumTables)
	p.Observe(g.NextBatch(500))
	top := p.TopKRows(10)
	if len(top) != 10 {
		t.Fatalf("TopKRows returned %d", len(top))
	}
	if top[0].Count < top[9].Count {
		t.Fatal("TopKRows must be sorted")
	}
}
