// Package data provides the synthetic workload substrate that stands in for
// the paper's Criteo Kaggle / Criteo Terabyte / Taobao Alibaba / Avazu
// datasets. Generators draw embedding indices from Zipfian popularity
// distributions whose skew parameters are fitted so that the popular-input
// fractions and access skews match the paper's Figure 6, and support
// day-to-day popularity drift (Figure 9).
//
// In the DESIGN.md layering this is the bottom layer: every functional
// substrate (model, train, accel) consumes its deterministic Batch streams,
// and the profiling helpers (AccessProfile, ScaledHotBudget) seed the
// access-aware placements that embedding, shard and pipeline build on.
// Each Config carries both the paper-scale footprint (for the performance
// simulator's capacity math) and a ~1000x downscaled shape (so functional
// training runs on a laptop).
package data
