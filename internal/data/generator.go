package data

import (
	"fmt"
	"math"
	"sync"

	"hotline/internal/tensor"
)

// Batch is one mini-batch of training inputs.
type Batch struct {
	// Dense is B x DenseFeatures continuous features.
	Dense *tensor.Matrix
	// Sparse[table][sample] lists the embedding rows the sample accesses in
	// that table (LookupsPerTable entries, TimeSteps entries for the TBSM
	// sequence table).
	Sparse [][][]int32
	// Labels holds the {0,1} click labels.
	Labels []float32
}

// Size returns the number of samples in the batch.
func (b *Batch) Size() int { return len(b.Labels) }

// SampleSparse returns the per-table index lists of one sample
// (view, not copy).
func (b *Batch) SampleSparse(i int) [][]int32 {
	out := make([][]int32, len(b.Sparse))
	for t := range b.Sparse {
		out[t] = b.Sparse[t][i]
	}
	return out
}

// Subset extracts the samples at the given positions into a new Batch,
// preserving order. The Hotline executor uses this to materialise popular and
// non-popular µ-batches.
func (b *Batch) Subset(idx []int) *Batch {
	return b.SubsetInto(&Batch{}, idx)
}

// SubsetInto is Subset writing into a reusable destination batch: the dense
// matrix, label slice and sparse index tables are resized in place (index
// lists are shared slice views of b, never copied), so the steady-state
// executor reuses one buffer per µ-batch instead of allocating per step.
// dst must not be b.
func (b *Batch) SubsetInto(dst *Batch, idx []int) *Batch {
	if dst.Dense == nil {
		dst.Dense = &tensor.Matrix{}
	}
	dst.Dense.ResizeNoZero(len(idx), b.Dense.Cols) // every row copied below
	if cap(dst.Labels) < len(idx) {
		dst.Labels = make([]float32, len(idx))
	}
	dst.Labels = dst.Labels[:len(idx)]
	if cap(dst.Sparse) < len(b.Sparse) {
		dst.Sparse = make([][][]int32, len(b.Sparse))
	}
	dst.Sparse = dst.Sparse[:len(b.Sparse)]
	for t := range b.Sparse {
		if cap(dst.Sparse[t]) < len(idx) {
			dst.Sparse[t] = make([][]int32, len(idx))
		}
		dst.Sparse[t] = dst.Sparse[t][:len(idx)]
	}
	for j, i := range idx {
		copy(dst.Dense.Row(j), b.Dense.Row(i))
		dst.Labels[j] = b.Labels[i]
		for t := range b.Sparse {
			dst.Sparse[t][j] = b.Sparse[t][i]
		}
	}
	return dst
}

// Generator produces deterministic synthetic batches for one dataset config.
// The popularity of embedding rows follows Zipf(cfg.ZipfS); rank r of table t
// maps to a concrete row id through a per-day permutation so that the set of
// popular rows drifts across days (evolving skew, Figure 9).
//
// A Generator is safe for concurrent use: NextBatch, SetDay and RowForRank
// serialise on an internal mutex. The batch *stream* stays deterministic —
// concurrent NextBatch callers each receive a well-formed batch from the
// stream, though which caller gets which batch depends on arrival order;
// callers that need a fixed caller-to-batch assignment should draw from
// per-goroutine Generators (construction is cheap and seeded).
type Generator struct {
	Cfg Config
	Day int

	mu      sync.Mutex
	rng     *tensor.RNG
	zipfs   []*Zipf
	perms   [][]int32 // per table: rank -> row id for the current day
	labeler *labeler
}

// NewGenerator builds a generator positioned at day 0.
func NewGenerator(cfg Config) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		Cfg:     cfg,
		rng:     tensor.NewRNG(cfg.Seed),
		zipfs:   make([]*Zipf, cfg.NumTables),
		labeler: newLabeler(cfg),
	}
	for t := range g.zipfs {
		g.zipfs[t] = NewZipf(cfg.ScaledRowsPerTable[t], cfg.ZipfS)
	}
	g.SetDay(0)
	return g
}

// SetDay positions the generator at a simulated day. The day-d permutation is
// derived from the base permutation by d rounds of partial reshuffling: each
// round remaps DriftPerDay of the most popular ranks to fresh rows. Calling
// SetDay with any value is deterministic and order-independent.
func (g *Generator) SetDay(day int) {
	if day < 0 {
		panic(fmt.Sprintf("data: negative day %d", day))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.Day = day
	g.perms = make([][]int32, g.Cfg.NumTables)
	for t := range g.perms {
		g.perms[t] = g.dayPerm(t, day)
	}
}

// dayPerm computes the rank->row permutation for one table on one day.
func (g *Generator) dayPerm(table, day int) []int32 {
	rows := g.Cfg.ScaledRowsPerTable[table]
	base := tensor.NewRNG(g.Cfg.Seed ^ (uint64(table)+1)*0x9E3779B97F4A7C15)
	perm := make([]int32, rows)
	for i, v := range base.Perm(rows) {
		perm[i] = int32(v)
	}
	// Drift: remap a slice of the popular head each day.
	head := int(float64(rows) * 0.05) // the ranks that matter for popularity
	if head < 1 {
		head = 1
	}
	moved := int(float64(head) * g.Cfg.DriftPerDay)
	for d := 1; d <= day; d++ {
		dr := tensor.NewRNG(g.Cfg.Seed ^ uint64(table+1)<<32 ^ uint64(d)*0xBF58476D1CE4E5B9)
		for m := 0; m < moved; m++ {
			a := dr.Intn(head)
			b := dr.Intn(rows)
			perm[a], perm[b] = perm[b], perm[a]
		}
	}
	return perm
}

// RowForRank exposes the current day's rank->row mapping (used by skew
// analyses and tests).
func (g *Generator) RowForRank(table, rank int) int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.perms[table][rank]
}

// NextBatch draws n samples. Consecutive calls advance the RNG stream, so an
// epoch is a sequence of NextBatch calls.
func (g *Generator) NextBatch(n int) *Batch {
	g.mu.Lock()
	defer g.mu.Unlock()
	cfg := g.Cfg
	b := &Batch{
		Dense:  tensor.New(n, cfg.DenseFeatures),
		Sparse: make([][][]int32, cfg.NumTables),
		Labels: make([]float32, n),
	}
	for t := range b.Sparse {
		b.Sparse[t] = make([][]int32, n)
	}
	for i := 0; i < n; i++ {
		drow := b.Dense.Row(i)
		for f := range drow {
			drow[f] = float32(g.rng.NormFloat64())
		}
		for t := 0; t < cfg.NumTables; t++ {
			k := cfg.LookupsPerTable
			if cfg.TimeSteps > 1 && t == 0 {
				k = cfg.TimeSteps // behaviour-sequence table
			}
			idxs := make([]int32, k)
			for j := 0; j < k; j++ {
				rank := g.zipfs[t].Sample(g.rng)
				idxs[j] = g.perms[t][rank]
			}
			b.Sparse[t][i] = idxs
		}
		b.Labels[i] = g.labeler.label(drow, b.SampleSparse(i), g.rng)
	}
	return b
}

// labeler produces labels from a hidden ground-truth model so that training
// has learnable signal (AUC rises above 0.5) while remaining deterministic.
type labeler struct {
	denseW []float32
	alpha  float32
}

func newLabeler(cfg Config) *labeler {
	rng := tensor.NewRNG(cfg.Seed ^ 0x1AB31ED)
	l := &labeler{denseW: make([]float32, cfg.DenseFeatures), alpha: 1.5}
	for i := range l.denseW {
		l.denseW[i] = float32(rng.NormFloat64())
	}
	return l
}

// hiddenRowEffect hashes (table, row) to a stable effect in [-0.5, 0.5].
func hiddenRowEffect(table int, row int32) float32 {
	h := uint64(table+1)*0x9E3779B97F4A7C15 ^ uint64(uint32(row))*0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	return float32(h%1000)/1000 - 0.5
}

func (l *labeler) label(dense []float32, sparse [][]int32, rng *tensor.RNG) float32 {
	var logit float32
	for i, v := range dense {
		logit += l.denseW[i] * v * 0.3
	}
	for t, idxs := range sparse {
		for _, ix := range idxs {
			logit += hiddenRowEffect(t, ix)
		}
	}
	p := 1 / (1 + expNeg(l.alpha*logit))
	if rng.Float32() < p {
		return 1
	}
	return 0
}

func expNeg(x float32) float32 { return float32(math.Exp(float64(-x))) }
