package data

import (
	"fmt"
	"math"
	"sort"

	"hotline/internal/tensor"
)

// Zipf samples popularity ranks in [0, n) with P(rank=r) ∝ 1/(r+1)^s.
//
// Sampling inverts a precomputed CDF with binary search, which supports any
// s ≥ 0 (including the s ≤ 1 regime where rejection samplers like
// math/rand's are unavailable) and is deterministic given the caller's RNG.
type Zipf struct {
	N   int
	S   float64
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("data: Zipf n=%d", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("data: Zipf s=%g", s))
	}
	z := &Zipf{N: n, S: s, cdf: make([]float64, n)}
	var sum float64
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), s)
		z.cdf[r] = sum
	}
	inv := 1 / sum
	for r := range z.cdf {
		z.cdf[r] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// Sample draws one rank (0 = most popular).
func (z *Zipf) Sample(rng *tensor.RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// ProbOfRank returns P(rank = r).
func (z *Zipf) ProbOfRank(r int) float64 {
	if r == 0 {
		return z.cdf[0]
	}
	return z.cdf[r] - z.cdf[r-1]
}

// MassOfTop returns the probability mass of the k most popular ranks,
// i.e. the fraction of accesses the top-k entries absorb.
func (z *Zipf) MassOfTop(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= z.N {
		return 1
	}
	return z.cdf[k-1]
}

// RanksForMass returns the smallest k such that the top-k ranks absorb at
// least mass of all accesses.
func (z *Zipf) RanksForMass(mass float64) int {
	return sort.SearchFloat64s(z.cdf, mass) + 1
}
