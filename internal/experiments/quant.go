package experiments

import (
	"fmt"
	"slices"

	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/metrics"
	"hotline/internal/model"
	"hotline/internal/report"
	"hotline/internal/shard"
	"hotline/internal/train"
)

// The quant scenario measures the precision-tiered device caches: at one
// fixed per-node HBM byte budget on the skewed Criteo stream, each cache
// format (fp32, fp16, int8, hot-fp32+warm-int8) trains the same functional
// model, and the table prices what the narrower tiers buy (more resident
// rows, higher hit rate, fewer all-to-all bytes) against what they cost
// (measured state divergence and ΔAUC from serving warm rows through the
// fused quantize→dequantize round trip).

func init() {
	registry["mn-quant"] = regEntry{"Multi-node quantized warm-tier caches: precision sweep at a fixed HBM budget (measured)", MNQuant}
}

// mnQuantSweep is the cache formats the scenario measures.
var mnQuantSweep = []shard.QuantMode{shard.QuantOff, shard.QuantFP16, shard.QuantINT8, shard.QuantMixed}

// quantRun is one functional training run of the precision sweep.
type quantRun struct {
	m      *model.Model
	st     shard.Stats
	rows   int       // steady-state cached rows across nodes
	losses []float64 // per-iteration losses (the fp32 bit-identity witness)
	eval   metrics.Summary
}

// runQuant trains the Hotline executor batch-by-batch on sharded tables
// whose device caches use the given precision mode at a fixed byte budget,
// and evaluates the final model on a held-out batch.
func runQuant(fn data.Config, nodes, iters, batch int, budget int64, q shard.QuantMode, hot shard.HotClassifier) quantRun {
	const seed = 42
	svc := shard.New(shard.Config{
		Nodes: nodes, CacheBytes: budget, RowBytes: int64(fn.EmbedDim) * 4, Quant: q,
	}, hot)
	tr := train.NewHotlineSharded(model.New(fn, seed), 0.1, svc)
	tr.LearnSamples = 512
	gen := data.NewGenerator(fn)
	losses := make([]float64, iters)
	for i := 0; i < iters; i++ {
		losses[i] = tr.Step(gen.NextBatch(batch))
	}
	evalGen := data.NewGenerator(fn)
	evalGen.NextBatch(1024)
	evalBatch := evalGen.NextBatch(1024)
	return quantRun{
		m: tr.M, st: svc.Snapshot(), rows: svc.CacheEntries(), losses: losses,
		eval: metrics.Evaluate(tr.M.Predict(evalBatch), evalBatch.Labels),
	}
}

// mnQuantBudget is the sweep's fixed per-node HBM budget: a quarter of the
// learned hot set at fp32, so full precision cannot hold the head of the
// distribution and the narrow tiers' extra rows are load-bearing.
func mnQuantBudget(fn data.Config) int64 { return data.ScaledHotBudget(fn) / 4 }

// effectiveHotBudget reprices the EAL hot-set learning budget for a cache
// format — the placement-side half of the effective-capacity story. The
// paper sizes the hot set to what the HBM tier can replicate; a narrow
// storage width packs more rows into the same bytes, so the uniform
// quantized modes learn proportionally larger hot sets (4·dim fp32 bytes of
// learning budget per WarmWidth.RowBytes of real HBM). The mixed mode
// splits the budget instead: half learns an exact fp32 hot tier, and the
// open warm tier fills the other half with int8 rows at admission time.
func effectiveHotBudget(budget int64, dim int, q shard.QuantMode) int64 {
	if q == shard.QuantMixed {
		return budget / 2
	}
	return budget * 4 * int64(dim) / q.WarmWidth().RowBytes(dim)
}

// mnQuantClassifier learns the popularity classifier for one cache format:
// the same profiled access counts for every mode, ranked identically, cut
// at the format's repriced hot budget.
func mnQuantClassifier(fn data.Config, budget int64, q shard.QuantMode) shard.HotClassifier {
	prof := data.ProfileEpoch(data.NewGenerator(fn), 512)
	return embedding.PlacementFromCounts(prof.Counts(), fn.NumTables, fn.EmbedDim,
		effectiveHotBudget(budget, fn.EmbedDim, q))
}

// MNQuant sweeps the device-cache precision format at a fixed HBM byte
// budget on Criteo Kaggle's skewed access stream. Per format it reports the
// steady-state resident rows (the effective-capacity multiplier), the
// device-cache hit rate, the fraction of hits served from the narrow warm
// tier through the fused dequantize-gather kernel, the per-iteration
// all-to-all and cache-fill volumes, and the functional cost: maximum
// parameter divergence and ΔAUC against the fp32 run. The fp32 row is run
// twice — its divergence column doubling as the bit-identity gate (exact
// same losses, MaxStateDiff exactly 0) that proves quantization-off changes
// nothing.
func MNQuant() *report.Table {
	t := &report.Table{Header: []string{
		"cache format", "rows held", "hit rate", "warm-hit frac",
		"A2A KB/iter", "fill KB", "max |Δw| vs fp32", "ΔAUC vs fp32"}}
	fn := data.CriteoKaggle()
	fn.Samples = 2048
	const nodes, iters, batch = 4, 10, 256
	budget := mnQuantBudget(fn)

	ref := runQuant(fn, nodes, iters, batch, budget, shard.QuantOff, mnQuantClassifier(fn, budget, shard.QuantOff))
	for _, q := range mnQuantSweep {
		// The fp32 row re-runs its own reference configuration: any nonzero
		// divergence or loss mismatch means quantization-off is not inert.
		r := runQuant(fn, nodes, iters, batch, budget, q, mnQuantClassifier(fn, budget, q))
		div := model.MaxStateDiff(ref.m, r.m)
		if q == shard.QuantOff && (div != 0 || !slices.Equal(ref.losses, r.losses)) {
			t.Notes = "FP32 RERUN DIVERGED — quantization-off must be bit-identical, see TestQuantOffBitIdentical"
		}
		t.AddRow(q.String(),
			fmt.Sprint(r.rows),
			pct(r.st.HitRate(), 1),
			pct(quantHitFrac(r.st), 1),
			fmt.Sprintf("%.1f", float64(r.st.A2ABytes())/float64(iters)/1024),
			fmt.Sprintf("%.1f", float64(r.st.FillBytes)/1024),
			fmt.Sprintf("%.2g", div),
			fmt.Sprintf("%+.4f", r.eval.AUC-ref.eval.AUC))
	}
	if t.Notes == "" {
		t.Notes = fmt.Sprintf("functional layer, fixed %d KB device cache per node (¼ of the fp32 hot set): "+
			"warm rows are stored narrow and served through the fused dequantize-gather kernel, so the same "+
			"bytes hold more of the head of the skewed distribution — more hits, fewer all-to-all bytes — "+
			"while the Δw and ΔAUC columns price the quantization error that buys", budget/1024)
	}
	return t
}

// quantHitFrac is the share of cache hits served from the narrow warm tier.
func quantHitFrac(st shard.Stats) float64 {
	if st.CacheHits == 0 {
		return 0
	}
	return float64(st.QuantHits) / float64(st.CacheHits)
}
