package experiments

import (
	"fmt"

	"hotline/internal/accel"
	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
	"hotline/internal/report"
)

// ablation experiments probe the design choices DESIGN.md calls out. They
// are not paper figures; they quantify why the paper's choices matter.

func init() {
	registry["abl-eal"] = regEntry{"Ablation: EAL replacement policy (SRRIP vs FIFO vs Oracle)", AblEALPolicy}
	registry["abl-feistel"] = regEntry{"Ablation: Feistel randomizer vs raw set indexing", AblFeistel}
	registry["abl-overlap"] = regEntry{"Ablation: gather/compute pipelining on vs off", AblOverlap}
	registry["abl-sampling"] = regEntry{"Ablation: learning-phase sampling rate", AblSampling}
}

// trainEALOnEpoch feeds a few scaled batches through an EAL and returns the
// fraction of a fresh evaluation batch classified popular.
func trainEALOnEpoch(cfg data.Config, eal *accel.EAL, learnBatches, batchSize int) float64 {
	gen := data.NewGenerator(cfg)
	for i := 0; i < learnBatches; i++ {
		b := gen.NextBatch(batchSize)
		for tbl := range b.Sparse {
			for _, idxs := range b.Sparse[tbl] {
				for _, ix := range idxs {
					eal.Touch(tbl, ix)
				}
			}
		}
	}
	eval := data.NewGenerator(cfg).NextBatch(1024)
	pop := 0
	for i := 0; i < eval.Size(); i++ {
		isPop := true
		for tbl := range eval.Sparse {
			for _, ix := range eval.Sparse[tbl][i] {
				if !eal.Contains(tbl, ix) {
					isPop = false
				}
			}
		}
		if isPop {
			pop++
		}
	}
	return float64(pop) / float64(eval.Size())
}

// AblEALPolicy compares SRRIP against FIFO replacement and the Oracle LFU
// at equal capacity: SRRIP's re-reference protection is what keeps the hot
// set resident under the one-shot tail scan of Zipfian traffic.
func AblEALPolicy() *report.Table {
	t := &report.Table{Header: []string{"dataset", "FIFO", "SRRIP", "Oracle LFU"}}
	for _, cfg := range data.AllDatasets() {
		probe := cfg
		probe.Samples = 2048
		base := accel.EALConfig{SizeBytes: 48 << 10, Banks: 8, Ways: 8, BytesPerEntry: 2, Seed: 7}

		fifoCfg := base
		fifoCfg.Policy = accel.PolicyFIFO
		fifo := trainEALOnEpoch(probe, accel.NewEAL(fifoCfg), 8, 512)
		srrip := trainEALOnEpoch(probe, accel.NewEAL(base), 8, 512)

		oracle := accel.NewOracleLFU(accel.NewEAL(base).Capacity())
		gen := data.NewGenerator(probe)
		for i := 0; i < 4; i++ {
			b := gen.NextBatch(512)
			for tbl := range b.Sparse {
				for _, idxs := range b.Sparse[tbl] {
					for _, ix := range idxs {
						oracle.Touch(tbl, ix)
					}
				}
			}
		}
		tracked := oracle.TrackedSet()
		eval := data.NewGenerator(probe).NextBatch(1024)
		pop := 0
		for i := 0; i < eval.Size(); i++ {
			isPop := true
			for tbl := range eval.Sparse {
				for _, ix := range eval.Sparse[tbl][i] {
					if _, ok := tracked[uint64(tbl)<<32|uint64(uint32(ix))]; !ok {
						isPop = false
					}
				}
			}
			if isPop {
				pop++
			}
		}
		oraclePop := float64(pop) / float64(eval.Size())

		t.AddRow(cfg.Name, pct(fifo, 1), pct(srrip, 1), pct(oraclePop, 1))
	}
	t.Notes = "SRRIP approaches the oracle at a 2-bit/entry cost; FIFO loses the hot set to tail scans"
	return t
}

// AblFeistel compares the Feistel-scattered EAL against raw (table,row)
// indexing: without the randomizer the hot heads of all tables collide into
// the same sets and thrash.
func AblFeistel() *report.Table {
	t := &report.Table{Header: []string{"dataset", "raw indexing", "Feistel", "gain"}}
	for _, cfg := range data.AllDatasets() {
		probe := cfg
		probe.Samples = 2048
		base := accel.EALConfig{SizeBytes: 48 << 10, Banks: 8, Ways: 8, BytesPerEntry: 2, Seed: 7}
		raw := base
		raw.NoRandomizer = true
		rawPop := trainEALOnEpoch(probe, accel.NewEAL(raw), 8, 512)
		feistelPop := trainEALOnEpoch(probe, accel.NewEAL(base), 8, 512)
		gain := "-"
		if rawPop > 0 {
			gain = fmt.Sprintf("%.2fx", feistelPop/rawPop)
		}
		t.AddRow(cfg.Name, pct(rawPop, 1), pct(feistelPop, 1), gain)
	}
	t.Notes = "paper §V-C: the randomizer scatters (table,index) tuples to prevent trashing"
	return t
}

// AblOverlap quantifies the pipeline scheduling itself: Hotline with the
// gather serialised after the popular µ-batch.
func AblOverlap() *report.Table {
	t := &report.Table{Header: []string{"dataset", "gpus", "serial gather", "pipelined", "gain"}}
	serial, piped := pipeline.NewHotlineNoOverlap(), pipeline.NewHotline()
	for _, cfg := range data.AllDatasets() {
		for _, gpus := range []int{1, 4} {
			w := pipeline.NewWorkload(cfg, 1024*gpus, cost.PaperSystem(gpus))
			// Exaggerate nothing: use measured stats but force a realistic
			// cold share so the serialisation is visible on all datasets.
			a, b := serial.Iteration(w), piped.Iteration(w)
			t.AddRow(cfg.Name, fmt.Sprint(gpus), a.Total.String(), b.Total.String(),
				fmt.Sprintf("%.2fx", pipeline.Speedup(a, b)))
		}
	}
	t.Notes = "overlap is the 'sources of benefits (1)' of §IV: gather hides under popular execution"
	return t
}

// AblSampling sweeps the learning-phase sampling rate: the paper's 5%
// captures most frequently-accessed embeddings at ≤5% overhead.
func AblSampling() *report.Table {
	t := &report.Table{Header: []string{"dataset", "sample rate", "popular captured", "profiling overhead"}}
	for _, cfg := range []data.Config{data.CriteoKaggle(), data.TaobaoAlibaba()} {
		probe := cfg
		probe.Samples = 8192
		const full = 40 // 512-input batches in the probe epoch
		for _, rate := range []float64{0.01, 0.05, 0.20, 1.00} {
			eal := accel.NewEAL(accel.EALConfig{SizeBytes: 48 << 10, Banks: 8, Ways: 8, BytesPerEntry: 2, Seed: 7})
			learn := int(float64(full)*rate + 0.5)
			if learn < 1 {
				learn = 1
			}
			pop := trainEALOnEpoch(probe, eal, learn, 512)
			t.AddRow(cfg.Name, pct(rate, 1), pct(pop, 1), pct(rate, 1))
		}
	}
	t.Notes = "paper: sampling 5% of mini-batches identifies >90% of frequently-accessed embeddings"
	return t
}
