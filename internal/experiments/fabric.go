package experiments

import (
	"fmt"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
	"hotline/internal/report"
	"hotline/internal/shard"
)

func init() {
	registry["mn-fabric"] = regEntry{"Multi-node sharded embeddings: real socket fabric vs in-proc (measured wall clock)", MNFabric}
}

// fabricIters / fabricBatch size the mn-fabric functional runs: enough
// iterations past the learning phase that the prefetch pipeline is in
// steady state, small enough that the socket grid finishes in CI.
const (
	fabricIters = 6
	fabricBatch = 256
)

// MNFabric trains the pipelined Hotline executor at 2/4/8 nodes twice per
// row — once on the in-proc fast path, once over a real unix-socket fabric
// where every shard node is a NodeServer behind its own socket — and
// reports the transport's measured per-iteration gather/scatter wall clock
// next to the analytic AllToAllTime the timing models price. The "max
// diff" column is the bit-parity evidence: the socket run must reproduce
// the in-proc parameters exactly (0 means bit-identical), so the measured
// wall times are for provably the same computation.
func MNFabric() *report.Table {
	t := &report.Table{Header: []string{
		"nodes", "fabric", "gather wall/iter", "scatter wall/iter",
		"a2a KB/iter", "a2a time (analytic)", "max diff"}}
	cfg := data.CriteoKaggle()
	for _, nodes := range []int{2, 4, 8} {
		sys := cost.PaperCluster(nodes)
		for _, network := range []string{"inproc", "unix"} {
			m, err := pipeline.MeasureFabricDepth(cfg, nodes, 0, network, fabricIters, fabricBatch)
			if err != nil {
				t.AddRow(fmt.Sprint(nodes), network, "error: "+err.Error(), "-", "-", "-", "-")
				continue
			}
			st := shard.Stats{Nodes: nodes, GatherBytes: m.A2ABytesPerIter}
			t.AddRow(fmt.Sprint(nodes), m.Fabric,
				m.GatherWallPerIter.String(), m.ScatterWallPerIter.String(),
				fmt.Sprintf("%.1f", float64(m.A2ABytesPerIter)/1024),
				st.AllToAllTime(sys).String(),
				fmt.Sprintf("%g", m.MaxStateDiff))
		}
	}
	t.Notes = "each unix row runs every shard node as a NodeServer behind its own " +
		"socket: gather/scatter wall is measured kernel-crossing time, the analytic " +
		"column is the link model the pipelines price, and max diff 0 proves the " +
		"socket run trained bit-identically to the in-proc fast path"
	return t
}
