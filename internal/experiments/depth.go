package experiments

import (
	"fmt"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/metrics"
	"hotline/internal/model"
	"hotline/internal/pipeline"
	"hotline/internal/report"
	"hotline/internal/shard"
	"hotline/internal/train"
)

// The depth scenario measures the queue-depth-vs-staleness tradeoff of the
// depth-k prefetch pipeline: a deeper lookahead gives the async engine more
// compute to hide fabric gathers under (the exposed fraction falls), but
// windows wait longer, so more of their staged rows are rewritten by
// intervening sparse updates and must be delta-repaired — extra fabric
// traffic the shallow pipeline never pays. The opt-in stale mode skips the
// repair and measures what that staleness costs in accuracy instead.

func init() {
	registry["mn-depth"] = regEntry{"Multi-node sharded embeddings: prefetch depth k sweep (measured)", MNDepth}
}

// mnDepthSweep is the pipeline depths the scenario measures.
var mnDepthSweep = []int{1, 2, 4, 8}

// depthRun is one functional training run of the depth sweep.
type depthRun struct {
	m     *model.Model
	stats shard.OverlapStats
	eval  metrics.Summary
}

// runDepth trains the Hotline executor on sharded tables at pipeline depth
// k (overlap=false selects the fully synchronous baseline) and evaluates
// the final model on a held-out batch.
func runDepth(fn data.Config, nodes, iters, batch, k int, overlap, stale bool) depthRun {
	const seed = 42
	svc := shard.New(shard.Config{
		Nodes: nodes, CacheBytes: data.ScaledHotBudget(fn),
		RowBytes: int64(fn.EmbedDim) * 4,
	}, nil)
	svc.SetStaleReads(stale)
	tr := train.NewHotlineSharded(model.New(fn, seed), 0.1, svc)
	tr.OverlapGather = overlap
	tr.Depth = k
	tr.LearnSamples = 512
	gen := data.NewGenerator(fn)
	batches := make([]*data.Batch, iters)
	for i := range batches {
		batches[i] = gen.NextBatch(batch)
	}
	for i := 0; i < iters; i++ {
		end := i + k
		if end > iters {
			end = iters
		}
		tr.StepLookahead(batches[i], batches[i+1:end])
	}

	evalGen := data.NewGenerator(fn)
	evalGen.NextBatch(1024)
	evalBatch := evalGen.NextBatch(1024)
	return depthRun{
		m:     tr.M,
		stats: svc.Gatherer().Stats(),
		eval:  metrics.Evaluate(tr.M.Predict(evalBatch), evalBatch.Labels),
	}
}

// MNDepth sweeps the prefetch pipeline depth k over {1,2,4,8} at 4 nodes on
// Criteo Kaggle: per depth it reports the measured exposed-gather fraction
// (against the synchronous baseline), the dirty-row repair traffic the
// depth incurs, the staleness cost of skipping the repair (rows served
// stale, state divergence and AUC delta of the stale-mode run), and the
// Hotline iteration time when the timing model prices the depth's measured
// exposure. Depth 1 is the degenerate single-window queue — its gather is
// synchronous by construction, so its exposure anchors the sweep near
// 100%; depth 2 is the classic cross-iteration pipeline; deeper queues
// trade repair traffic for more hiding time.
func MNDepth() *report.Table {
	t := &report.Table{Header: []string{
		"depth k", "windows", "exposed frac", "repair rows", "repair KB",
		"stale rows", "stale max |Δw|", "stale ΔAUC", "Hotline iter"}}
	// The timing-model workload uses the pristine dataset config (its
	// measurement memos are shared across experiments and keyed by dataset
	// name); only the functional training runs on a down-sampled copy.
	cfg := data.CriteoKaggle()
	fn := cfg
	fn.Samples = 2048
	const nodes, iters, batch = 4, 10, 256
	sys := cost.PaperCluster(nodes)

	sync := runDepth(fn, nodes, iters, batch, 1, false, false)

	for _, k := range mnDepthSweep {
		// Depth 1 runs the synchronous code path verbatim (its single
		// window belongs to the consuming forward), so the sync baseline
		// IS its repair and stale run — the row anchors at exactly 100%
		// exposure with no repair and no staleness.
		repair, staleR := sync, sync
		if k > 1 {
			repair = runDepth(fn, nodes, iters, batch, k, true, false)
			staleR = runDepth(fn, nodes, iters, batch, k, true, true)
		}

		exposedFrac := shard.ExposedFrac(repair.stats, sync.stats)
		if model.MaxStateDiff(sync.m, repair.m) != 0 {
			// Repair mode must stay bit-identical to batch-by-batch
			// stepping; a divergence here is a bug, surface it loudly.
			t.Notes = "REPAIR-MODE STATE DIVERGED — see TestPipelinedOverlapDeterminism"
		}

		w := pipeline.NewShardedWorkloadDepth(cfg, 4096*nodes, sys, 0, k)
		w.Shard.SetExposedFrac(exposedFrac)
		t.AddRow(fmt.Sprint(k),
			fmt.Sprint(repair.stats.Windows),
			pct(exposedFrac, 1),
			fmt.Sprint(repair.stats.RepairRows),
			fmt.Sprintf("%.1f", float64(repair.stats.RepairBytes)/1024),
			fmt.Sprint(staleR.stats.StaleRows),
			fmt.Sprintf("%.2g", model.MaxStateDiff(repair.m, staleR.m)),
			fmt.Sprintf("%+.4f", staleR.eval.AUC-repair.eval.AUC),
			pipeline.NewHotline().Iteration(w).Total.String())
	}
	if t.Notes == "" {
		t.Notes = "wall-clock, functional layer: depth k keeps up to k gather windows in " +
			"flight; staged rows rewritten by intervening sparse updates are delta-repaired " +
			"before use (bit-identical to batch-by-batch stepping), or served stale under " +
			"the opt-in stale mode, whose accuracy cost the ΔAUC column prices"
	}
	return t
}
