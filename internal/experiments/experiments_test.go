package experiments

import (
	"strings"
	"testing"
)

// heavyExperiments run functional training or large design-space probes and
// dominate the suite's wall time; -short skips them (the sweep tests still
// cover a fast subset end-to-end, and CI's scenario step runs mn-depth and
// mn-syn through hotline-bench -smoke without the race detector).
var heavyExperiments = map[string]bool{
	"tab5": true, "fig18": true, "fig27": true, "fig28": true, "abl-eal": true,
	"mn-depth": true, "mn-syn": true, "mn-fabric": true, "mn-chaos": true,
	"mn-quant": true,
}

func TestAllExperimentsRun(t *testing.T) {
	SetTrainIters(12) // keep functional training short in tests
	for _, id := range All() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && heavyExperiments[id] {
				t.Skip("heavy experiment; run without -short")
			}
			tab, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			out := tab.Render()
			if !strings.Contains(out, id) {
				t.Fatal("render must include the experiment id")
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure/table in DESIGN.md's per-experiment index must exist.
	want := []string{
		"tab1", "tab2", "tab5",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig15", "fig16", "fig18", "fig19", "fig20", "fig21", "fig22",
		"fig23", "fig24", "fig25", "fig26", "fig27", "fig28", "fig29", "fig30",
	}
	have := map[string]bool{}
	for _, id := range All() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	// plus the design-choice ablations and multi-node sharding scenarios
	extras := []string{
		"abl-eal", "abl-feistel", "abl-overlap", "abl-sampling",
		"mn-scale", "mn-cache", "mn-skew", "mn-policy",
		"mn-place", "mn-overlap", "mn-adagrad",
		"mn-depth", "mn-syn", "mn-batch",
		"mn-serve", "mn-qps", "mn-fabric", "mn-chaos", "mn-quant",
	}
	for _, id := range extras {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(All()) != len(want)+len(extras) {
		t.Errorf("registry has %d experiments, expected %d", len(All()), len(want)+len(extras))
	}
}

func TestTitlesPresent(t *testing.T) {
	for _, id := range All() {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}
