package experiments

import (
	"fmt"
	"math"

	"hotline/internal/accel"
	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
	"hotline/internal/report"
)

// Fig3HybridBreakdown reproduces Figure 3: where the hybrid CPU-GPU mode
// spends its iteration; CPU-side phases dominate the embedding-heavy
// datasets.
func Fig3HybridBreakdown() *report.Table {
	t := &report.Table{Header: append([]string{"dataset"}, phaseOrder...)}
	dlrm := pipeline.NewIntelDLRM()
	for _, cfg := range data.AllDatasets() {
		w := pipeline.NewWorkload(cfg, 4096, cost.PaperSystem(4))
		st := dlrm.Iteration(w)
		t.AddRow(append([]string{cfg.Name}, breakdownRow(st)...)...)
	}
	t.Notes = "paper: embedding ops + CPU-GPU comm reach up to 75% on Criteo Terabyte"
	return t
}

// Fig4GPUOnlyBreakdown reproduces Figure 4: the GPU-only mode's breakdown on
// one node, with the all-to-all share visible.
func Fig4GPUOnlyBreakdown() *report.Table {
	t := &report.Table{Header: append([]string{"dataset"}, phaseOrder...)}
	hc := pipeline.NewHugeCTR()
	for _, cfg := range data.AllDatasets() {
		w := pipeline.NewWorkload(cfg, 4096, cost.PaperSystem(4))
		st := hc.Iteration(w)
		if st.OOM {
			t.AddRow(cfg.Name, "OOM")
			continue
		}
		t.AddRow(append([]string{cfg.Name}, breakdownRow(st)...)...)
	}
	t.Notes = "paper: ~12% all-to-all at 4 GPUs over NVLink"
	return t
}

// Fig5MultiNodeBreakdown reproduces Figure 5: multi-node GPU-only training
// with InfiniBand; communication exceeds 50% at 4 nodes.
func Fig5MultiNodeBreakdown() *report.Table {
	t := &report.Table{Header: append([]string{"dataset", "nodes"}, phaseOrder...)}
	hc := pipeline.NewHugeCTR()
	for _, cfg := range []data.Config{data.CriteoKaggle(), data.CriteoTerabyte()} {
		for _, nodes := range []int{1, 2, 4} {
			w := pipeline.NewWorkload(cfg, 4096*nodes, cost.PaperCluster(nodes))
			st := hc.Iteration(w)
			if st.OOM {
				t.AddRow(cfg.Name, fmt.Sprint(nodes), "OOM")
				continue
			}
			t.AddRow(append([]string{cfg.Name, fmt.Sprint(nodes)}, breakdownRow(st)...)...)
		}
	}
	t.Notes = "paper: communication >50% of multi-node training time"
	return t
}

// Fig19Speedup reproduces Figure 19: all hybrid-memory frameworks normalized
// to 1-GPU XDL, with weak scaling (1K inputs per GPU).
func Fig19Speedup() *report.Table {
	t := &report.Table{Header: []string{"dataset", "gpus", "XDL", "Intel-Opt DLRM", "FAE", "Hotline"}}
	ref := map[string]float64{}
	for _, cfg := range data.AllDatasets() {
		ref[cfg.Name] = float64(pipeline.NewXDL().Iteration(weakScaledWorkload(cfg, 1)).Total)
	}
	pipes := []pipeline.Pipeline{
		pipeline.NewXDL(), pipeline.NewIntelDLRM(), pipeline.NewFAE(), pipeline.NewHotline(),
	}
	geo := make([]float64, len(pipes))
	count := 0
	for _, cfg := range data.AllDatasets() {
		for _, gpus := range []int{1, 2, 4} {
			w := weakScaledWorkload(cfg, gpus)
			row := []string{cfg.Name, fmt.Sprint(gpus)}
			for i, p := range pipes {
				sp := ref[cfg.Name] / float64(p.Iteration(w).Total)
				row = append(row, fmt.Sprintf("%.2f", sp))
				if geo[i] == 0 {
					geo[i] = 1
				}
				geo[i] *= sp
			}
			count++
			t.AddRow(row...)
		}
	}
	row := []string{"GEOMEAN", "-"}
	for i := range pipes {
		row = append(row, fmt.Sprintf("%.2f", pow(geo[i], 1/float64(count))))
	}
	t.AddRow(row...)
	t.Notes = "paper: Hotline 3.4x over 4-GPU XDL, 2.2x over Intel DLRM, 1.4x over FAE on average"
	return t
}

// Fig20LatencyBreakdown reproduces Figure 20: phase breakdowns for each
// framework at 1/2/4 GPUs on Criteo Kaggle and Terabyte.
func Fig20LatencyBreakdown() *report.Table {
	t := &report.Table{Header: append([]string{"dataset", "framework", "gpus", "iter"}, phaseOrder...)}
	pipes := []pipeline.Pipeline{
		pipeline.NewXDL(), pipeline.NewIntelDLRM(), pipeline.NewFAE(), pipeline.NewHotline(),
	}
	for _, cfg := range []data.Config{data.CriteoKaggle(), data.CriteoTerabyte()} {
		for _, p := range pipes {
			for _, gpus := range []int{1, 2, 4} {
				w := weakScaledWorkload(cfg, gpus)
				st := p.Iteration(w)
				row := []string{cfg.Name, p.Name(), fmt.Sprint(gpus), st.Total.String()}
				t.AddRow(append(row, breakdownRow(st)...)...)
			}
		}
	}
	t.Notes = "paper: Hotline removes exposed CPU-GPU communication; overhead stays minimal"
	return t
}

// Fig21Throughput reproduces Figure 21: epochs/hour at 4 GPUs vs batch size.
func Fig21Throughput() *report.Table {
	t := &report.Table{Header: []string{"dataset", "batch", "DLRM ep/h", "Hotline ep/h", "ratio"}}
	dlrm, hl := pipeline.NewIntelDLRM(), pipeline.NewHotline()
	sys := cost.PaperSystem(4)
	var geo float64 = 1
	n := 0
	for _, cfg := range data.AllDatasets() {
		epochSamples := float64(cfg.Samples) * float64(cfg.ScaleFactor)
		for _, batch := range []int{1024, 4096, 16384} {
			w := pipeline.NewWorkload(cfg, batch, sys)
			iters := epochSamples / float64(batch)
			eph := func(st pipeline.IterStats) float64 {
				return 3600 / (iters * st.Total.Seconds())
			}
			d, h := eph(dlrm.Iteration(w)), eph(hl.Iteration(w))
			t.AddRowf(cfg.Name, batch, d, h, h/d)
			geo *= h / d
			n++
		}
	}
	t.Notes = fmt.Sprintf("geomean throughput gain %.2fx; paper reports 2.6x epochs/hour at 4 GPUs",
		pow(geo, 1/float64(n)))
	return t
}

// Fig22HugeCTR reproduces Figure 22: Hotline vs the GPU-only HugeCTR,
// including its OOM failures on Criteo Terabyte below 4 GPUs.
func Fig22HugeCTR() *report.Table {
	t := &report.Table{Header: []string{"dataset", "gpus", "HugeCTR", "Hotline", "speedup"}}
	hc, hl := pipeline.NewHugeCTR(), pipeline.NewHotline()
	for _, cfg := range []data.Config{data.CriteoKaggle(), data.CriteoTerabyte()} {
		for _, gpus := range []int{1, 2, 4} {
			w := weakScaledWorkload(cfg, gpus)
			hcSt, hlSt := hc.Iteration(w), hl.Iteration(w)
			if hcSt.OOM {
				t.AddRow(cfg.Name, fmt.Sprint(gpus), "OOM", hlSt.Total.String(), "-")
				continue
			}
			t.AddRow(cfg.Name, fmt.Sprint(gpus), hcSt.Total.String(), hlSt.Total.String(),
				fmt.Sprintf("%.2f", pipeline.Speedup(hcSt, hlSt)))
		}
	}
	t.Notes = "paper: Hotline 1.13x by eliminating all-to-all; Terabyte needs >=4 GPUs for HugeCTR"
	return t
}

// Fig23CPUvsAccel reproduces Figure 23: the accelerator against CPU-based
// segregation and gathering.
func Fig23CPUvsAccel() *report.Table {
	t := &report.Table{Header: []string{"dataset", "gpus", "Hotline-CPU", "Hotline-Acc", "speedup"}}
	hcpu, hl := pipeline.NewHotlineCPU(), pipeline.NewHotline()
	for _, cfg := range data.AllDatasets() {
		for _, gpus := range []int{1, 2, 4} {
			w := weakScaledWorkload(cfg, gpus)
			a, b := hcpu.Iteration(w), hl.Iteration(w)
			t.AddRow(cfg.Name, fmt.Sprint(gpus), a.Total.String(), b.Total.String(),
				fmt.Sprintf("%.2f", pipeline.Speedup(a, b)))
		}
	}
	t.Notes = "paper: up to 3.5x over CPU-based Hotline"
	return t
}

// Fig24ScratchPipe reproduces Figure 24: Hotline vs ScratchPipe-Ideal with
// relaxed RAW dependencies.
func Fig24ScratchPipe() *report.Table {
	t := &report.Table{Header: []string{"dataset", "gpus", "ScratchPipe-Ideal", "Hotline", "speedup"}}
	sp, hl := pipeline.NewScratchPipeIdeal(), pipeline.NewHotline()
	for _, cfg := range data.AllDatasets() {
		for _, gpus := range []int{1, 2, 4} {
			w := weakScaledWorkload(cfg, gpus)
			a, b := sp.Iteration(w), hl.Iteration(w)
			t.AddRow(cfg.Name, fmt.Sprint(gpus), a.Total.String(), b.Total.String(),
				fmt.Sprintf("%.2f", pipeline.Speedup(a, b)))
		}
	}
	t.Notes = "paper: parity at 1 GPU, ~1.2x at 4 GPUs (all-to-all scaling)"
	return t
}

// Fig25RatioSweep reproduces Figure 25: forcing the popular:non-popular
// ratio and checking whether the gather hides under popular execution.
func Fig25RatioSweep() *report.Table {
	t := &report.Table{Header: []string{"pop:non", "popular fwd", "gather", "hidden"}}
	base := pipeline.NewWorkload(data.CriteoKaggle(), 4096, cost.PaperSystem(4))
	for _, p := range []float64{0.2, 0.3, 0.4, 0.6, 0.8, 0.9} {
		w := base
		w.PopularFrac = p
		// Non-popular inputs carry a mix of hot and cold accesses; the
		// cold share scales with the non-popular fraction (synthetic
		// dataset construction as in the paper).
		w.ColdLookupFrac = (1 - p) * 0.15
		st := pipeline.NewHotline().Iteration(w)
		popFwd := st.Phases[pipeline.PhaseMLPFwd] + st.Phases[pipeline.PhaseEmbFwd]
		gatherStall := st.Phases[pipeline.PhaseGather]
		coldRows := int64(float64(w.TotalLookups()) * w.ColdLookupFrac * 0.8)
		gather := cost.DMAGatherTime(w.Sys, coldRows, w.RowBytes())
		hidden := "yes"
		if gatherStall > 0 {
			hidden = "no"
		}
		t.AddRow(fmt.Sprintf("%.0f%%:%.0f%%", p*100, (1-p)*100),
			popFwd.String(), gather.String(), hidden)
	}
	t.Notes = "paper: gather concealed even at 3:7 popular:non-popular"
	return t
}

// Fig26BatchSweep reproduces Figure 26: Hotline speedup vs the hybrid
// baseline across mini-batch sizes at 4 GPUs.
func Fig26BatchSweep() *report.Table {
	t := &report.Table{Header: []string{"dataset", "batch", "DLRM", "Hotline", "speedup"}}
	dlrm, hl := pipeline.NewIntelDLRM(), pipeline.NewHotline()
	sys := cost.PaperSystem(4)
	for _, cfg := range data.AllDatasets() {
		for _, batch := range []int{1024, 2048, 4096, 8192, 16384} {
			w := pipeline.NewWorkload(cfg, batch, sys)
			a, b := dlrm.Iteration(w), hl.Iteration(w)
			t.AddRow(cfg.Name, fmt.Sprint(batch), a.Total.String(), b.Total.String(),
				fmt.Sprintf("%.2f", pipeline.Speedup(a, b)))
		}
	}
	t.Notes = "paper: benefits grow with mini-batch size"
	return t
}

// Fig28SyntheticModels reproduces Figure 28: SYN-M1 and SYN-M2 multi-hot
// models at 4 GPUs vs the Intel DLRM baseline.
func Fig28SyntheticModels() *report.Table {
	t := &report.Table{Header: []string{"model", "sparse feats", "size GB", "speedup vs DLRM"}}
	dlrm, hl := pipeline.NewIntelDLRM(), pipeline.NewHotline()
	for _, cfg := range []data.Config{data.SynM1(), data.SynM2()} {
		w := pipeline.NewWorkload(cfg, 4096, cost.PaperSystem(4))
		sp := pipeline.Speedup(dlrm.Iteration(w), hl.Iteration(w))
		t.AddRow(cfg.Name, fmt.Sprint(cfg.NumTables), fmt.Sprintf("%.0f", cfg.FullSizeGB),
			fmt.Sprintf("%.2f", sp))
	}
	t.Notes = "paper: gains sustained for larger models, decreasing 2.5x -> 2.2x with 2x sparse features"
	return t
}

// Fig29PerfPerWatt reproduces Figure 29: throughput/Watt improvement and
// the accelerator's area/power breakdown (Table IV).
func Fig29PerfPerWatt() *report.Table {
	t := &report.Table{Header: []string{"component", "area mm2", "power W"}}
	pm := accel.DefaultPowerModel()
	for _, b := range pm.Blocks {
		t.AddRowf(string(b.Component), b.AreaMM2, b.PowerW)
	}
	t.AddRowf("TOTAL", pm.TotalArea(), pm.TotalPower())

	// Perf/Watt: Hotline throughput gain vs baseline, with accelerator
	// power included.
	var geo float64 = 1
	n := 0
	for _, cfg := range data.AllDatasets() {
		w := pipeline.NewWorkload(cfg, 4096, cost.PaperSystem(4))
		sp := pipeline.Speedup(pipeline.NewIntelDLRM().Iteration(w), pipeline.NewHotline().Iteration(w))
		base := accel.PerfPerWatt(1, 4, false)
		hot := accel.PerfPerWatt(sp, 4, true)
		geo *= hot / base
		n++
	}
	t.Notes = fmt.Sprintf("throughput/Watt improvement %.2fx (paper: 3.9x); avg energy %.0f mJ/mini-batch",
		pow(geo, 1/float64(n)), pm.AvgEnergyMilliJ)
	return t
}

// Fig30MultiNode reproduces Figure 30: SYN-M1/M2 across 1/2/4 nodes,
// HugeCTR OOMing until aggregate HBM suffices, Hotline running everywhere.
func Fig30MultiNode() *report.Table {
	t := &report.Table{Header: []string{"model", "nodes", "HugeCTR", "Hotline", "speedup"}}
	hc, hl := pipeline.NewHugeCTR(), pipeline.NewHotline()
	for _, cfg := range []data.Config{data.SynM1(), data.SynM2()} {
		for _, nodes := range []int{1, 2, 4} {
			w := pipeline.NewWorkload(cfg, 4096*nodes, cost.PaperCluster(nodes))
			hcSt, hlSt := hc.Iteration(w), hl.Iteration(w)
			hcCell, spCell := hcSt.Total.String(), fmt.Sprintf("%.2f", pipeline.Speedup(hcSt, hlSt))
			if hcSt.OOM {
				hcCell, spCell = "OOM", "-"
			}
			t.AddRow(cfg.Name, fmt.Sprint(nodes), hcCell, hlSt.Total.String(), spCell)
		}
	}
	t.Notes = "paper: 1.89x at 4 nodes by eliminating all-to-all; SYN-M2 exceeds 16 GPUs"
	return t
}

// pow is a local float power helper.
func pow(x, a float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, a)
}
