package experiments

import (
	"fmt"
	"sync/atomic"

	"hotline/internal/accel"
	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/report"
	"hotline/internal/train"
)

// trainItersSetting controls the functional-training experiment sizes
// (0 = default 40). Tests and benches use the default; cmd/hotline-bench can
// raise it via -iters. Atomic so generators running inside a concurrent
// sweep can read it race-free.
var trainItersSetting atomic.Int64

// SetTrainIters adjusts the functional-training length (cmd flag hook).
func SetTrainIters(n int) {
	if n > 0 {
		trainItersSetting.Store(int64(n))
	}
}

// TrainIters returns the configured functional-training iteration count.
func TrainIters() int {
	if n := trainItersSetting.Load(); n > 0 {
		return int(n)
	}
	return 40
}

// Table1ISA validates Table I: every instruction encodes, decodes and
// executes; a gather-reduce-writeback program produces the right sums.
func Table1ISA() *report.Table {
	t := &report.Table{Header: []string{"instruction", "operands", "roundtrip", "semantics"}}
	host := []float32{1, 2, 3, 4, 10, 20, 30, 40}
	d := accel.NewDriver(host, 4)
	d.GPUMem[0] = []float32{9, 9, 9, 9}
	scratch := make([]float32, 8)

	cases := []struct {
		in   accel.Instruction
		desc string
	}{
		{accel.Instruction{Op: accel.OpSWr, Op1: 1, Op2: 0x100}, "reg idx, base addr"},
		{accel.Instruction{Op: accel.OpDMARead, Op1: 0, Op2: 16}, "mem start idx, #bytes"},
		{accel.Instruction{Op: accel.OpVAdd, Op1: 0, Op2: 0}, "input vector, emb vec buff"},
		{accel.Instruction{Op: accel.OpVMul, Op1: 0, Op2: 0}, "input vector, emb vec buff"},
		{accel.Instruction{Op: accel.OpGPURd, Op1: 0, Op2: 0}, "gpu device id, sparse idx"},
		{accel.Instruction{Op: accel.OpDMAWrite, Op1: 4, Op2: 16}, "mem start idx, #bytes"},
	}
	for _, c := range cases {
		rt := "ok"
		if got, err := accel.Decode(c.in.Encode()); err != nil || got != c.in {
			rt = "FAIL"
		}
		sem := "ok"
		if err := d.Execute(c.in, scratch); err != nil {
			sem = err.Error()
		}
		t.AddRow(c.in.Op.String(), c.desc, rt, sem)
	}
	t.Notes = fmt.Sprintf("%d instructions executed on the functional driver", d.Executed)
	return t
}

// Table2Models reproduces Table II: the model inventory.
func Table2Models() *report.Table {
	t := &report.Table{Header: []string{
		"model", "dataset", "dense feats", "sparse feats", "dense params", "sparse params (full)",
		"dim", "size GB"}}
	for _, cfg := range data.AllDatasets() {
		m := model.New(cfg, 1)
		dense, _ := m.ParameterCounts()
		t.AddRow(cfg.RM, cfg.Name, fmt.Sprint(cfg.DenseFeatures), fmt.Sprint(cfg.NumTables),
			fmt.Sprint(dense), fmt.Sprint(cfg.TotalFullRows()),
			fmt.Sprint(cfg.EmbedDim), fmt.Sprintf("%.2f", cfg.FullSizeGB))
	}
	t.Notes = "paper Table II; sparse parameters at paper scale, models built at 1/1000 scale"
	return t
}

// Fig18AccuracyParity reproduces Figure 18: AUC trajectories of the
// baseline and Hotline executors coincide on every dataset.
func Fig18AccuracyParity() *report.Table {
	t := &report.Table{Header: []string{"dataset", "iter", "baseline AUC", "hotline AUC", "|diff|"}}
	for _, cfg := range data.AllDatasets() {
		scaled := scaledTrainingConfig(cfg)
		base := train.NewBaseline(model.New(scaled, 1234), 0.1)
		hot := train.NewHotline(model.New(scaled, 1234), 0.1)
		iters := TrainIters()
		run := train.RunConfig{BatchSize: 64, Iters: iters, EvalEvery: iters / 4, EvalSize: 512}
		curveB := train.Run(base, data.NewGenerator(scaled), run)
		curveH := train.Run(hot, data.NewGenerator(scaled), run)
		for i := range curveB {
			d := curveB[i].Metrics.AUC - curveH[i].Metrics.AUC
			if d < 0 {
				d = -d
			}
			t.AddRow(cfg.Name, fmt.Sprint(curveB[i].Iteration),
				fmt.Sprintf("%.4f", curveB[i].Metrics.AUC),
				fmt.Sprintf("%.4f", curveH[i].Metrics.AUC),
				fmt.Sprintf("%.5f", d))
		}
	}
	t.Notes = "paper: Hotline maintains exactly identical training fidelity to the baseline"
	return t
}

// Table5Accuracy reproduces Table V: final accuracy/AUC/logloss for both
// executors plus the maximum parameter divergence.
func Table5Accuracy() *report.Table {
	t := &report.Table{Header: []string{
		"dataset", "exec", "accuracy", "AUC", "logloss", "max state diff", "popular %"}}
	for _, cfg := range data.AllDatasets() {
		scaled := scaledTrainingConfig(cfg)
		rep := train.Parity(scaled, 99, train.RunConfig{BatchSize: 64, Iters: TrainIters(), EvalSize: 512})
		t.AddRow(cfg.Name, "DLRM/TBSM",
			fmt.Sprintf("%.2f%%", rep.Baseline.Accuracy*100),
			fmt.Sprintf("%.4f", rep.Baseline.AUC),
			fmt.Sprintf("%.4f", rep.Baseline.LogLoss), "-", "-")
		t.AddRow(cfg.Name, "Hotline",
			fmt.Sprintf("%.2f%%", rep.Hotline.Accuracy*100),
			fmt.Sprintf("%.4f", rep.Hotline.AUC),
			fmt.Sprintf("%.4f", rep.Hotline.LogLoss),
			fmt.Sprintf("%.2g", rep.MaxStateDiff),
			fmt.Sprintf("%.0f%%", rep.PopularFrac*100))
	}
	t.Notes = "paper Table V: identical metrics for baseline and Hotline"
	return t
}

// scaledTrainingConfig shrinks the dense towers for functional-training
// experiments so the full four-dataset parity suite runs in seconds while
// preserving each model's structure (TBSM keeps its sequence + attention).
func scaledTrainingConfig(cfg data.Config) data.Config {
	c := cfg
	c.Samples = 4096
	shrink := func(sizes []int, cap int) []int {
		out := make([]int, len(sizes))
		for i, s := range sizes {
			if s > cap {
				s = cap
			}
			out[i] = s
		}
		return out
	}
	c.BotMLP = shrink(c.BotMLP, 64)
	c.TopMLP = shrink(c.TopMLP, 64)
	// keep the invariants: bottom ends at the embedding dim, top ends at 1
	c.BotMLP[0] = c.DenseFeatures
	c.BotMLP[len(c.BotMLP)-1] = c.EmbedDim
	c.TopMLP[len(c.TopMLP)-1] = 1
	return c
}
