// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI-§VII) from this repository's substrates, plus the
// design-choice ablations (abl-*) and the multi-node sharded-embedding
// scenarios (mn-*). Each experiment returns a report.Table whose rows
// mirror the paper's series; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// In the DESIGN.md layering this is the top internal layer: experiments
// compose every substrate below (data, model, train, accel, shard,
// pipeline) and the concurrent sweep engine (Sweep/RunAll) fans the
// registry over a bounded worker pool with byte-identical results for any
// worker count. cmd/hotline-bench and hotline.go expose the registry.
package experiments
