package experiments

import (
	"fmt"
	"sort"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
	"hotline/internal/report"
)

// Generator produces one experiment's table.
type Generator func() *report.Table

// regEntry is one registry row.
type regEntry struct {
	title string
	gen   Generator
}

// registry maps experiment id -> (title, generator).
var registry = map[string]regEntry{
	"tab1":  {"Hotline instruction set round-trip and semantics", Table1ISA},
	"tab2":  {"Recommender model architectures and parameters", Table2Models},
	"tab5":  {"Accuracy metric parity (DLRM baseline vs Hotline)", Table5Accuracy},
	"fig3":  {"Hybrid CPU-GPU training-time breakdown (4 GPUs)", Fig3HybridBreakdown},
	"fig4":  {"GPU-only single-node training-time breakdown", Fig4GPUOnlyBreakdown},
	"fig5":  {"Multi-node GPU-only training-time breakdown", Fig5MultiNodeBreakdown},
	"fig6":  {"Embedding access skew and popular-input fractions", Fig6AccessSkew},
	"fig7":  {"CPU-based segregation vs GPU mini-batch training", Fig7CPUSegregation},
	"fig8":  {"Segregation wall-clock vs CPU core count", Fig8CorePlateau},
	"fig9":  {"Evolving popularity skew across days", Fig9EvolvingSkew},
	"fig15": {"SRRIP-based EAL vs Oracle LFU tracker", Fig15SRRIPvsOracle},
	"fig16": {"EAL queue size x banks design space", Fig16QueueBanks},
	"fig18": {"Training accuracy curves: baseline vs Hotline", Fig18AccuracyParity},
	"fig19": {"Speedup vs XDL / Intel DLRM / FAE (1/2/4 GPUs)", Fig19Speedup},
	"fig20": {"Latency breakdown across frameworks", Fig20LatencyBreakdown},
	"fig21": {"Training throughput (epochs/hour, 4 GPUs)", Fig21Throughput},
	"fig22": {"Hotline vs HugeCTR (GPU-only baseline)", Fig22HugeCTR},
	"fig23": {"Hotline accelerator vs CPU-based Hotline", Fig23CPUvsAccel},
	"fig24": {"Hotline vs ScratchPipe-Ideal", Fig24ScratchPipe},
	"fig25": {"Popular:non-popular ratio sweep (gather hiding)", Fig25RatioSweep},
	"fig26": {"Speedup vs mini-batch size", Fig26BatchSweep},
	"fig27": {"EAL size sweep (popular inputs captured)", Fig27EALSize},
	"fig28": {"Synthetic large models (SYN-M1/M2, 4 GPUs)", Fig28SyntheticModels},
	"fig29": {"Performance/Watt and accelerator area/power", Fig29PerfPerWatt},
	"fig30": {"Multi-node scaling vs HugeCTR (SYN models)", Fig30MultiNode},
}

// All returns every experiment id in a stable order.
func All() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by id.
func Run(id string) (*report.Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, All())
	}
	t := e.gen()
	t.ID = id
	if t.Title == "" {
		t.Title = e.title
	}
	return t, nil
}

// --- shared helpers ------------------------------------------------------

// weakScaledWorkload builds the Fig 19-style workload: 1K inputs per GPU.
func weakScaledWorkload(cfg data.Config, gpus int) pipeline.Workload {
	return pipeline.NewWorkload(cfg, 1024*gpus, cost.PaperSystem(gpus))
}

// pct formats a fraction of a total as a percentage string.
func pct(part, total float64) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*part/total)
}

// phaseOrder is the display order for breakdown figures (paper legend order).
var phaseOrder = []string{
	pipeline.PhaseMLPFwd, pipeline.PhaseEmbFwd, pipeline.PhaseBwd,
	pipeline.PhaseOpt, pipeline.PhaseComm, pipeline.PhaseA2A,
	pipeline.PhaseAllReduce, pipeline.PhaseSeg, pipeline.PhaseGather,
	pipeline.PhaseOverhead,
}

// breakdownRow renders one IterStats as percentage cells in phaseOrder.
func breakdownRow(st pipeline.IterStats) []string {
	cells := make([]string, 0, len(phaseOrder))
	total := float64(st.Total)
	for _, ph := range phaseOrder {
		cells = append(cells, pct(float64(st.Phases[ph]), total))
	}
	return cells
}
