package experiments

import (
	"fmt"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/report"
	"hotline/internal/shard"
	"hotline/internal/train"
)

// mn-adagrad is the end-to-end sharded-training scenario under the DLRM
// reference's production optimizer: dense + sparse Adagrad on the Hotline
// µ-batch executor over sharded embedding tables. The Bag lift of
// ApplySparseAdagrad (globally-indexed accumulators, fixed serial row
// order) makes sharded Adagrad bit-identical to the single-node executor
// for every node count, while the merged per-mini-batch update keeps the
// µ-batch executor at accuracy parity with the Adagrad baseline.

func init() {
	registry["mn-adagrad"] = regEntry{"Multi-node sharded training under Adagrad (measured)", MNAdagrad}
}

// MNAdagrad trains the Adagrad Hotline executor on sharded tables at
// 1/2/4 nodes and reports the measured traffic plus the state divergence
// from (a) the single-node Adagrad executor — which must be zero — and
// (b) the full-mini-batch Adagrad baseline, which stays at Fig 18-level
// parity (float reduction order is the only difference).
func MNAdagrad() *report.Table {
	t := &report.Table{Header: []string{
		"nodes", "loss", "AUC", "cache hit", "a2a KB/iter",
		"vs 1-node adagrad", "vs baseline adagrad"}}
	cfg := data.CriteoKaggle()
	fn := cfg
	fn.Samples = 2048
	iters := TrainIters()
	if iters > 24 {
		iters = 24 // the scenario's point is parity, not a long curve
	}
	const batch, seed = 128, 404
	run := train.RunConfig{BatchSize: batch, Iters: iters, EvalEvery: iters, EvalSize: 512}

	// References: the unsharded Adagrad Hotline executor and the Adagrad
	// baseline, trained on the identical stream.
	ref := train.NewHotlineAdagrad(model.New(fn, seed), 0.1)
	ref.LearnSamples = 512
	train.Run(ref, data.NewGenerator(fn), run)
	base := train.NewBaselineAdagrad(model.New(fn, seed), 0.1)
	train.Run(base, data.NewGenerator(fn), run)

	for _, nodes := range []int{1, 2, 4} {
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: data.ScaledHotBudget(fn),
			RowBytes: int64(fn.EmbedDim) * 4,
		}, nil)
		tr := train.NewHotlineShardedAdagrad(model.New(fn, seed), 0.1, svc)
		tr.LearnSamples = 512
		curve := train.Run(tr, data.NewGenerator(fn), run)
		last := curve[len(curve)-1]
		st := svc.Snapshot()
		a2aKB := float64(st.A2ABytes()) / float64(iters) / 1024

		vsRef := model.MaxStateDiff(ref.M, tr.M)
		refCell := fmt.Sprintf("%.3g", vsRef)
		if vsRef == 0 {
			refCell = "bit-identical"
		}
		t.AddRow(fmt.Sprint(nodes),
			fmt.Sprintf("%.4f", last.Loss),
			fmt.Sprintf("%.4f", last.Metrics.AUC),
			pct(st.HitRate(), 1),
			fmt.Sprintf("%.1f", a2aKB),
			refCell,
			fmt.Sprintf("%.3g", model.MaxStateDiff(base.M, tr.M)))
	}
	t.Notes = "Adagrad is non-linear in the gradient, so the executor merges each " +
		"table's µ-batch gradients into ONE update per mini-batch (Model." +
		"ApplySparseAdagrad); sharding must then be bit-identical to the single-node " +
		"Adagrad executor, and the divergence from the baseline stays at float-" +
		"reduction-order scale"
	return t
}
