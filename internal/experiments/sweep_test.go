package experiments

import (
	"context"
	"errors"
	"testing"

	"hotline/internal/par"
	"hotline/internal/report"
)

// sweepIDs returns the id set for determinism tests: the full registry
// normally, a fast representative subset (ISA, models, three timing figures)
// under -short.
func sweepIDs(t *testing.T) []string {
	if testing.Short() {
		return []string{"tab1", "tab2", "fig19", "fig25", "fig26"}
	}
	return All()
}

// wallClockExperiments report measured wall-clock durations of the
// functional layer (the async-overlap scenario, the depth sweep, the
// serving latency knee, and the chaos recovery runs — whose restart
// timer is real time, so the recovery wall and the number of serve
// probes landing inside the outage vary run to run). Their timing cells
// legitimately vary, so the byte-identical sweep contract skips them;
// everything structural about them is still checked — for mn-chaos the
// bit-identity claim itself (max diff 0) is enforced inside MeasureChaos,
// which errors on any loss divergence. mn-serve is NOT in this set: it
// reports only traffic counters, which must stay deterministic.
var wallClockExperiments = map[string]bool{
	"mn-overlap": true, "mn-depth": true, "mn-qps": true, "mn-fabric": true,
	"mn-chaos": true,
}

// TestRunAllExperiments: every id yields a non-empty table, and the
// concurrent sweep produces byte-identical tables to serial runs.
func TestRunAllExperiments(t *testing.T) {
	SetTrainIters(8)
	ids := sweepIDs(t)

	serial := make(map[string]string, len(ids))
	for _, id := range ids {
		tab, err := Run(id)
		if err != nil {
			t.Fatalf("serial %s: %v", id, err)
		}
		serial[id] = tab.Render()
	}

	tables, err := RunAll(context.Background(), ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(ids) {
		t.Fatalf("sweep returned %d tables, want %d", len(tables), len(ids))
	}
	for i, tab := range tables {
		if tab.ID != ids[i] {
			t.Fatalf("table %d is %s, want %s (stable id order)", i, tab.ID, ids[i])
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", tab.ID)
		}
		if wallClockExperiments[tab.ID] {
			continue
		}
		if got := tab.Render(); got != serial[tab.ID] {
			t.Errorf("%s: concurrent table differs from serial run:\n--- serial ---\n%s--- sweep ---\n%s",
				tab.ID, serial[tab.ID], got)
		}
	}
}

func TestSweepCapturesErrors(t *testing.T) {
	res := Sweep(context.Background(), []string{"tab1", "fig99"}, 2)
	if res[0].Err != nil || res[0].Table == nil {
		t.Fatalf("tab1 should succeed, got %v", res[0].Err)
	}
	if res[0].Duration <= 0 {
		t.Fatal("successful result must carry a duration")
	}
	if res[1].Err == nil {
		t.Fatal("unknown id must be captured as an error")
	}
	if _, err := RunAll(context.Background(), []string{"fig99"}, 1); err == nil {
		t.Fatal("RunAll must surface the first failure")
	}
}

func TestSweepCapturesPanics(t *testing.T) {
	registry["boom"] = regEntry{"panicking experiment", func() *report.Table {
		panic("kaboom")
	}}
	// A panic inside a parallel kernel shard must also be captured: par
	// forwards worker-goroutine panics to the experiment's goroutine.
	registry["boom-par"] = regEntry{"panicking parallel kernel", func() *report.Table {
		par.ForWork(1_000_000, 1024, func(lo, hi int) { panic("shard kaboom") })
		return &report.Table{}
	}}
	defer delete(registry, "boom")
	defer delete(registry, "boom-par")
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	res := Sweep(context.Background(), []string{"boom", "boom-par", "tab1"}, 2)
	if res[0].Err == nil || res[1].Err == nil {
		t.Fatalf("panics must be captured as errors, got %v / %v", res[0].Err, res[1].Err)
	}
	if res[2].Err != nil {
		t.Fatalf("panic must not poison sibling experiments: %v", res[2].Err)
	}
}

func TestSweepHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Sweep(ctx, []string{"tab1", "tab2"}, 2)
	for _, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", r.ID, r.Err)
		}
	}
}

func TestRunAllDefaultsToFullRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry sweep is slow; run without -short")
	}
	SetTrainIters(8)
	tables, err := RunAll(context.Background(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(All()) {
		t.Fatalf("default sweep produced %d tables, want %d", len(tables), len(All()))
	}
}
