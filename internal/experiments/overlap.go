package experiments

import (
	"fmt"
	"time"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/pipeline"
	"hotline/internal/report"
	"hotline/internal/shard"
	"hotline/internal/train"
)

// The overlap/placement scenarios extend the mn-* family with the two
// remaining Hotline claims the sharded substrate can measure functionally:
// that hot-row-aware ownership shrinks the all-to-all volume blind
// round-robin pays (FAE/HugeCTR's hybrid-placement argument), and that the
// non-popular gather can stream while the popular µ-batch computes, leaving
// only a sliver of the fabric traffic exposed (the paper's pipeline,
// Figure 12, executed by the async gather engine instead of assumed by the
// timing model).

func init() {
	registry["mn-place"] = regEntry{"Multi-node sharded embeddings: ownership placement policies", MNPlacement}
	registry["mn-overlap"] = regEntry{"Multi-node sharded embeddings: async gather overlap (measured)", MNOverlap}
}

// MNPlacement sweeps the row-ownership policy at 4 nodes under cache
// pressure on the Criteo Kaggle skew: blind round-robin, capacity-weighted
// (a heterogeneous cluster whose per-node HBM byte budgets are 4x/2x/2x/1x
// the device-cache budget — ownership weights derive from those real byte
// budgets, not hand-picked demo weights) and hot-row-aware (popular rows
// pinned to their dominant requesting node). Hot-aware ownership turns the
// heaviest remote request streams into local ones, so gather and
// gradient-scatter messages — and with them the measured all-to-all bytes —
// drop relative to round-robin.
func MNPlacement() *report.Table {
	t := &report.Table{Header: []string{
		"placement", "local", "cache hit", "gather", "scatter KB/iter", "a2a KB/iter"}}
	cfg := data.CriteoKaggle()
	cache := pipeline.DefaultShardCacheBytes(cfg) / 8
	probes := []pipeline.ShardProbe{
		{Nodes: 4, CacheBytes: cache, Batch: mnBatch, Placement: shard.PlaceRoundRobin},
		{Nodes: 4, CacheBytes: cache, Batch: mnBatch, Placement: shard.PlaceCapacity,
			HBMBytes: []int64{4 * cache, 2 * cache, 2 * cache, cache}},
		{Nodes: 4, CacheBytes: cache, Batch: mnBatch, Placement: shard.PlaceHotAware},
	}
	for _, p := range probes {
		m := pipeline.MeasureShard(cfg, p)
		// Gather and scatter rows share one row footprint, so the fractions
		// split the measured a2a volume exactly.
		scatterKB := float64(m.A2ABytesPerIter) * m.ScatterFrac / (m.GatherFrac + m.ScatterFrac) / 1024
		t.AddRow(m.Placement,
			pct(m.LocalFrac, 1), pct(m.HitRate, 1), pct(m.GatherFrac, 1),
			fmt.Sprintf("%.1f", scatterKB),
			fmt.Sprintf("%.1f", float64(m.A2ABytesPerIter)/1024))
	}
	t.Notes = "hot-aware ownership pins each popular row to its dominant requester: the " +
		"owner is always one of the row's touchers, so its gather and scatter messages " +
		"vanish — blind round-robin only gets that for free 1-in-4 times"
	return t
}

// MNOverlap trains the full Hotline executor on sharded tables twice per
// node count — once with synchronous gathers, once with the cross-iteration
// prefetch pipeline (mini-batch i+1 classified and its non-popular fabric
// gathers issued while iteration i finishes, streaming through the dense
// update and the next popular pass) — and reports the measured wall-clock
// gather time each run left exposed. The measured exposed fraction then
// feeds the Hotline timing model in place of its analytic overlap schedule.
func MNOverlap() *report.Table {
	t := &report.Table{Header: []string{
		"nodes", "prefetched rows", "sync gather", "exposed gather", "hidden",
		"Hotline iter (measured overlap)", "(no overlap)"}}
	// The timing-model workload uses the pristine dataset config (its
	// measurement memos are shared across experiments and keyed by dataset
	// name); only the functional training runs on a down-sampled copy.
	cfg := data.CriteoKaggle()
	fn := cfg
	fn.Samples = 2048
	const iters, batch, seed = 10, 256, 42

	for _, nodes := range []int{2, 4} {
		runOne := func(overlap bool) (*train.HotlineTrainer, shard.OverlapStats) {
			svc := shard.New(shard.Config{
				Nodes: nodes, CacheBytes: data.ScaledHotBudget(fn),
				RowBytes: int64(fn.EmbedDim) * 4,
			}, nil)
			tr := train.NewHotlineSharded(model.New(fn, seed), 0.1, svc)
			tr.OverlapGather = overlap
			tr.LearnSamples = 512 // past the learning phase quickly
			gen := data.NewGenerator(fn)
			b := gen.NextBatch(batch)
			for i := 1; i <= iters; i++ {
				var next *data.Batch
				if i < iters {
					next = gen.NextBatch(batch)
				}
				tr.StepPipelined(b, next)
				b = next
			}
			return tr, svc.Gatherer().Stats()
		}
		sync, syncStats := runOne(false)
		over, overStats := runOne(true)

		// Total exposed gather per run: inline (synchronous) staged gathers
		// plus, for the overlap run, the time Forward blocked on prefetch
		// windows the compute did not fully hide. The run-level ratio is the
		// measured exposed-gather fraction the timing model consumes.
		syncExposed := syncStats.ExposedGather()
		overExposed := overStats.ExposedGather()
		exposedFrac := float64(overExposed) / float64(syncExposed)
		if exposedFrac > 1 {
			exposedFrac = 1
		}
		hidden := 1 - exposedFrac

		parity := ""
		if !model.DenseStateEqual(sync.M, over.M) || !model.SparseStateEqual(sync.M, over.M) {
			parity = " [STATE DIVERGED]"
		}

		sys := cost.PaperCluster(nodes)
		w := pipeline.NewShardedWorkload(cfg, 4096*nodes, sys, 0)
		w.Shard.SetExposedFrac(exposedFrac)
		hl := pipeline.NewHotline()
		t.AddRow(fmt.Sprint(nodes),
			fmt.Sprint(overStats.PrefetchRows),
			roundMS(syncExposed), roundMS(overExposed),
			pct(hidden, 1)+parity,
			hl.Iteration(w).Total.String(),
			pipeline.NewHotlineNoOverlap().Iteration(w).Total.String())
	}
	t.Notes = "wall-clock, functional layer: the cross-iteration pipeline classifies " +
		"mini-batch i+1 and streams its non-popular remote rows into staging while " +
		"iteration i finishes; training state is bit-identical to the synchronous run " +
		"(TestOverlapDeterminism / TestPipelinedOverlapDeterminism)"
	return t
}

// roundMS renders a wall duration at µs resolution for stable-width tables.
func roundMS(d time.Duration) string { return d.Round(time.Microsecond).String() }
