package experiments

import (
	"fmt"

	"hotline/internal/accel"
	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/pipeline"
	"hotline/internal/report"
)

// Fig6AccessSkew reproduces Figure 6: the per-entry access skew of each
// dataset and the fraction of inputs that are popular under the hot budget.
func Fig6AccessSkew() *report.Table {
	t := &report.Table{Header: []string{
		"dataset", "distinct rows", "top access", "median access", "skew(p99/med)", "% popular inputs"}}
	for _, cfg := range data.AllDatasets() {
		probe := cfg
		probe.Samples = 4096
		gen := data.NewGenerator(probe)
		prof := data.ProfileEpoch(gen, 512)
		counts := prof.SortedCounts()
		med := counts[len(counts)/2]
		placement := embedding.PlacementFromCounts(
			prof.Counts(), probe.NumTables, probe.EmbedDim, data.ScaledHotBudget(probe))
		popFrac := data.PopularInputFraction(data.NewGenerator(probe), placement, 2048)
		t.AddRow(cfg.Name,
			fmt.Sprint(prof.DistinctRows()), fmt.Sprint(counts[0]), fmt.Sprint(med),
			fmt.Sprintf("%.0fx", prof.SkewRatio()), fmt.Sprintf("%.0f%%", popFrac*100))
	}
	t.Notes = "paper: frequently-accessed entries see >100x more accesses; ~75% of inputs popular"
	return t
}

// Fig7CPUSegregation reproduces Figure 7: CPU-based mini-batch segregation
// time against GPU training time for 1K/2K/4K mini-batches on 1/2/4 GPUs.
func Fig7CPUSegregation() *report.Table {
	t := &report.Table{Header: []string{"dataset", "gpus", "batch", "CPU segregation", "GPU training", "ratio"}}
	for _, cfg := range data.AllDatasets() {
		for _, gpus := range []int{1, 2, 4} {
			batch := 1024 * gpus
			w := pipeline.NewWorkload(cfg, batch, cost.PaperSystem(gpus))
			seg := cost.CPUSegregationTime(w.Sys.CPU, w.TotalLookups(), w.Sys.CPU.Cores)
			// GPU training time for the mini-batch: the GPU-side phases of
			// the hybrid iteration.
			st := pipeline.NewIntelDLRM().Iteration(w)
			gpuTrain := st.Phases[pipeline.PhaseMLPFwd] + st.Phases[pipeline.PhaseBwd] +
				st.Phases[pipeline.PhaseAllReduce]
			t.AddRow(cfg.Name, fmt.Sprint(gpus), fmt.Sprint(batch),
				seg.String(), gpuTrain.String(),
				fmt.Sprintf("%.1fx", float64(seg)/float64(gpuTrain)))
		}
	}
	t.Notes = "paper: CPU segregation up to 2.5x the GPU mini-batch training time"
	return t
}

// Fig8CorePlateau reproduces Figure 8: segregation wall-clock for a 4K
// Criteo Terabyte mini-batch as CPU cores vary; it plateaus beyond ~24.
func Fig8CorePlateau() *report.Table {
	t := &report.Table{Header: []string{"cores", "segregation", "vs 1 core"}}
	cfg := data.CriteoTerabyte()
	w := pipeline.NewWorkload(cfg, 4096, cost.PaperSystem(4))
	base := cost.CPUSegregationTime(w.Sys.CPU, w.TotalLookups(), 1)
	for _, cores := range []int{1, 2, 4, 8, 16, 24, 32} {
		seg := cost.CPUSegregationTime(w.Sys.CPU, w.TotalLookups(), cores)
		t.AddRow(fmt.Sprint(cores), seg.String(), fmt.Sprintf("%.2fx", float64(base)/float64(seg)))
	}
	t.Notes = "paper: memory-bound — adding cores beyond 24 does not help"
	return t
}

// Fig9EvolvingSkew reproduces Figure 9: the overlap of the popular set with
// day 0 decays as the training data drifts across days (Terabyte table 20).
func Fig9EvolvingSkew() *report.Table {
	t := &report.Table{Header: []string{"day", "top-100 overlap with day 0"}}
	cfg := data.CriteoTerabyte()
	table := 20
	for day := 0; day <= 7; day++ {
		ov := data.DayOverlap(cfg, table, 0, day, 100)
		t.AddRow(fmt.Sprint(day), fmt.Sprintf("%.0f%%", ov*100))
	}
	t.Notes = "paper: popular embeddings shift within days; static offline profiling goes stale"
	return t
}

// Fig15SRRIPvsOracle reproduces Figure 15: the fraction of popular inputs
// captured by the SRRIP-based EAL vs an Oracle LFU of equal capacity.
func Fig15SRRIPvsOracle() *report.Table {
	t := &report.Table{Header: []string{"dataset", "Oracle LFU", "SRRIP EAL", "SRRIP/Oracle"}}
	for _, cfg := range data.AllDatasets() {
		probe := cfg
		probe.Samples = 2048
		// Scaled EAL: the datasets are ~1000x downscaled, so a few KB of
		// tracker SRAM corresponds to the paper's 4 MB.
		ealCfg := accel.EALConfig{SizeBytes: 16 << 10, Banks: 16, Ways: 8, BytesPerEntry: 2, Seed: 7}
		eal := accel.NewEAL(ealCfg)
		oracle := accel.NewOracleLFU(eal.Capacity())

		gen := data.NewGenerator(probe)
		for i := 0; i < 4; i++ {
			b := gen.NextBatch(512)
			for tbl := range b.Sparse {
				for _, idxs := range b.Sparse[tbl] {
					for _, ix := range idxs {
						eal.Touch(tbl, ix)
						oracle.Touch(tbl, ix)
					}
				}
			}
		}
		tracked := oracle.TrackedSet()
		eval := data.NewGenerator(probe).NextBatch(1024)
		var popEAL, popOracle int
		for i := 0; i < eval.Size(); i++ {
			ealPop, oraPop := true, true
			for tbl := range eval.Sparse {
				for _, ix := range eval.Sparse[tbl][i] {
					if !eal.Contains(tbl, ix) {
						ealPop = false
					}
					if _, ok := tracked[uint64(tbl)<<32|uint64(uint32(ix))]; !ok {
						oraPop = false
					}
				}
			}
			if ealPop {
				popEAL++
			}
			if oraPop {
				popOracle++
			}
		}
		ratio := 0.0
		if popOracle > 0 {
			ratio = float64(popEAL) / float64(popOracle)
		}
		t.AddRow(cfg.Name,
			pct(float64(popOracle), float64(eval.Size())),
			pct(float64(popEAL), float64(eval.Size())),
			fmt.Sprintf("%.2f", ratio))
	}
	t.Notes = "paper: SRRIP tracks ~90% of the oracle's frequently-accessed set"
	return t
}

// Fig16QueueBanks reproduces Figure 16: parallel EAL requests per iteration
// across queue sizes and bank counts.
func Fig16QueueBanks() *report.Table {
	banks := []int{8, 16, 32, 64}
	header := []string{"queue"}
	for _, b := range banks {
		header = append(header, fmt.Sprintf("%d banks", b))
	}
	t := &report.Table{Header: header}
	for _, q := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		row := []string{fmt.Sprint(q)}
		for _, b := range banks {
			row = append(row, fmt.Sprintf("%.1f", accel.ParallelRequestsPerIteration(q, b, 64, 64)))
		}
		t.AddRow(row...)
	}
	t.Notes = "paper: a 512-entry queue over 64 banks sustains ~60 parallel requests"
	return t
}

// Fig27EALSize reproduces Figure 27: popular inputs captured as the EAL
// SRAM size varies (scaled: dataset rows are ~1000x the paper's, so KB here
// correspond to MB in the paper).
func Fig27EALSize() *report.Table {
	sizes := []int64{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}
	header := []string{"dataset"}
	for _, s := range sizes {
		header = append(header, fmt.Sprintf("%dKB", s>>10))
	}
	t := &report.Table{Header: header}
	for _, cfg := range data.AllDatasets() {
		probe := cfg
		probe.Samples = 2048
		row := []string{cfg.Name}
		for _, size := range sizes {
			eal := accel.NewEAL(accel.EALConfig{SizeBytes: size, Banks: 8, Ways: 8, BytesPerEntry: 2, Seed: 7})
			gen := data.NewGenerator(probe)
			for i := 0; i < 4; i++ {
				b := gen.NextBatch(512)
				for tbl := range b.Sparse {
					for _, idxs := range b.Sparse[tbl] {
						for _, ix := range idxs {
							eal.Touch(tbl, ix)
						}
					}
				}
			}
			eval := data.NewGenerator(probe).NextBatch(1024)
			pop := 0
			for i := 0; i < eval.Size(); i++ {
				isPop := true
				for tbl := range eval.Sparse {
					for _, ix := range eval.Sparse[tbl][i] {
						if !eal.Contains(tbl, ix) {
							isPop = false
						}
					}
				}
				if isPop {
					pop++
				}
			}
			row = append(row, pct(float64(pop), float64(eval.Size())))
		}
		t.AddRow(row...)
	}
	t.Notes = "paper: 4MB (scaled: 4KB) suffices; Taobao (least skewed) benefits from more"
	return t
}
