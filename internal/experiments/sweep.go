package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hotline/internal/report"
)

// SweepResult is one experiment's outcome within a concurrent sweep.
type SweepResult struct {
	ID       string
	Title    string
	Table    *report.Table // nil when Err is set
	Err      error
	Duration time.Duration
}

// Sweep runs the given experiment ids on a bounded pool of workers and
// returns one result per id, in the ids' order regardless of completion
// order. workers <= 0 means NumCPU. Errors (including generator panics and
// context cancellation) are captured per experiment, never propagated as
// panics, so one failing experiment cannot take down a sweep.
//
// Every generator in the registry builds its own models, generators and
// accelerators from fixed seeds, so a concurrent sweep produces tables
// byte-identical to serial Run calls.
func Sweep(ctx context.Context, ids []string, workers int) []SweepResult {
	if ctx == nil {
		ctx = context.Background()
	}
	workers = EffectiveWorkers(workers, len(ids))
	results := make([]SweepResult, len(ids))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(ids) {
					return
				}
				results[i] = runOne(ctx, ids[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// EffectiveWorkers returns the pool size a Sweep over jobs experiments
// actually uses for a requested worker count: <= 0 means NumCPU, capped at
// the job count. Reporting tools use this instead of mirroring the rule.
func EffectiveWorkers(requested, jobs int) int {
	if requested <= 0 {
		requested = runtime.NumCPU()
	}
	if requested > jobs {
		requested = jobs
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// runOne executes a single experiment with panic and cancellation capture.
func runOne(ctx context.Context, id string) (res SweepResult) {
	res.ID = id
	res.Title = Title(id)
	if err := ctx.Err(); err != nil {
		res.Err = err
		return
	}
	start := time.Now()
	defer func() {
		res.Duration = time.Since(start)
		if r := recover(); r != nil {
			res.Table = nil
			res.Err = fmt.Errorf("experiments: %s panicked: %v", id, r)
		}
	}()
	res.Table, res.Err = Run(id)
	return
}

// RunAll sweeps the given experiments concurrently and returns their tables
// in the ids' order (all registry experiments, in sorted id order, when ids
// is empty). The returned error is the first per-experiment failure; tables
// of the successful experiments are returned alongside it.
func RunAll(ctx context.Context, ids []string, workers int) ([]*report.Table, error) {
	if len(ids) == 0 {
		ids = All()
	}
	res := Sweep(ctx, ids, workers)
	tables := make([]*report.Table, 0, len(res))
	var firstErr error
	for _, r := range res {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", r.ID, r.Err)
			}
			continue
		}
		tables = append(tables, r.Table)
	}
	return tables, firstErr
}
