package experiments

import (
	"fmt"
	"time"

	"hotline/internal/data"
	"hotline/internal/pipeline"
	"hotline/internal/report"
	"hotline/internal/shard"
)

func init() {
	registry["mn-chaos"] = regEntry{"Multi-node sharded embeddings: fault recovery under a deterministic chaos schedule (measured)", MNChaos}
}

// chaosIters / chaosBatch size the mn-chaos functional runs: long enough
// that the kill at window 1 lands mid-pipeline and recovery has windows
// left to prove bit-identity over, short enough for the CI smoke.
const (
	chaosIters = 8
	chaosBatch = 256
)

// chaosRestartAfter is the wall delay before a killed peer's replacement
// process comes up in the re-dial scenario.
const chaosRestartAfter = 10 * time.Millisecond

// MNChaos kills the highest-numbered shard node at training window 1 —
// mid-pipeline, with prefetched windows open — under both recovery
// policies, and reports what recovery cost: measured recovery latency,
// re-dials, shard adoptions, migrated and resynced row payload, window rows
// refetched through re-routing, and the rows the serve path answered from
// the warmed mirror while the peer was down. The "max diff" column is the
// recovery subsystem's core claim: 0 means training through the fault was
// bit-identical to the fault-free reference run.
func MNChaos() *report.Table {
	t := &report.Table{Header: []string{
		"nodes", "policy", "schedule", "recovery wall", "redials", "adoptions",
		"migrated KB", "resync KB", "refetched", "stale served", "max diff"}}
	cfg := data.CriteoKaggle()
	for _, nodes := range []int{2, 4, 8} {
		for _, policy := range []shard.RecoveryPolicy{shard.RecoverRedial, shard.RecoverAdopt} {
			m, err := pipeline.MeasureChaos(cfg, nodes, 0, "unix",
				chaosIters, chaosBatch, policy, chaosRestartAfter)
			if err != nil {
				t.AddRow(fmt.Sprint(nodes), policy.String(), "error: "+err.Error(),
					"-", "-", "-", "-", "-", "-", "-", "-")
				continue
			}
			t.AddRow(fmt.Sprint(nodes), m.Policy, m.Schedule,
				m.RecoveryWall.Round(10*time.Microsecond).String(),
				fmt.Sprint(m.Redials), fmt.Sprint(m.Adoptions),
				fmt.Sprintf("%.1f", float64(m.MigratedBytes)/1024),
				fmt.Sprintf("%.1f", float64(m.ResyncBytes)/1024),
				fmt.Sprint(m.RefetchedRows), fmt.Sprint(m.StaleServeRows),
				fmt.Sprintf("%g", m.MaxStateDiff))
		}
	}
	t.Notes = "a peer dies at window 1 with prefetch windows open: redial re-dials the " +
		"restarted process and resyncs its (empty) store from the coordinator's " +
		"authoritative mirror; adopt repartitions the dead node's rows onto the " +
		"survivors and re-routes in-flight fetches; in both policies max diff 0 " +
		"proves training through the fault stayed bit-identical, and the stale " +
		"column counts serve rows answered from the warmed mirror during the outage"
	return t
}
