package experiments

import (
	"fmt"
	"time"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/report"
	"hotline/internal/serve"
	"hotline/internal/shard"
)

// The serving scenarios exercise the online read path the paper's target
// systems spend most of their life in: requests drawn from the drifting
// Zipf corpus replayed against a sharded model through the load harness,
// with every number measured (serve-side traffic counters, wall-clock
// latency percentiles) rather than modelled.

func init() {
	registry["mn-serve"] = regEntry{"Online serving under drift: cache churn on live request traffic", MNServe}
	registry["mn-qps"] = regEntry{"Online serving saturation: QPS vs tail-latency knee", MNQPSKnee}
}

// servingCfg is the scaled Kaggle model the serving scenarios score with
// (same shape as the train-step benchmarks: full embedding tables, small
// MLPs, so the sparse read path dominates like it does in production).
func servingCfg() data.Config {
	cfg := data.CriteoKaggle()
	cfg.BotMLP = []int{13, 64, 16}
	cfg.TopMLP = []int{64, 1}
	return cfg
}

// servingStack builds the 4-node sharded server the scenarios share.
func servingStack(cfg data.Config, replicas int, cacheBytes int64) (*serve.Server, *shard.Service) {
	svc := shard.New(shard.Config{
		Nodes: 4, CacheBytes: cacheBytes, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
	m := model.New(cfg, 1)
	m.ShardEmbeddings(svc)
	return serve.NewServer(m, replicas), svc
}

// MNServe serves a drifting request corpus day by day and measures the
// cache churn live traffic causes: each day's popular head differs from the
// previous day's, so the device caches warmed by day-d requests partially
// miss on day d+1 and re-warm — evictions and gather traffic show the
// turnover. All counters come from the service's serve-side snapshot; the
// training counters stay untouched (asserted by the shard tests).
func MNServe() *report.Table {
	t := &report.Table{Header: []string{
		"day", "requests", "cache hit", "gather", "a2a KB/req", "evictions"}}
	cfg := servingCfg()
	perDay := TrainIters()
	const days, reqBatch = 4, 64
	// A deliberately tight cache budget: the drifting popular head must not
	// fit outright, so daily turnover shows up as evictions, not just as a
	// dip in the hit rate.
	srv, svc := servingStack(cfg, 2, 64<<10)
	corpus := serve.BuildCorpus(cfg, days, perDay, reqBatch)

	day := -1
	var reqs int
	flush := func() {
		if day < 0 {
			return
		}
		sv := svc.ServeSnapshot()
		t.AddRow(fmt.Sprint(day), fmt.Sprint(reqs),
			pct(sv.HitRate(), 1), pct(sv.GatherFrac(), 1),
			fmt.Sprintf("%.1f", float64(sv.GatherBytes)/float64(reqs)/1024),
			fmt.Sprint(sv.Evictions))
	}
	for _, req := range corpus.Requests {
		if req.Day != day {
			flush()
			day, reqs = req.Day, 0
			svc.ResetServeStats()
		}
		srv.Predict(req.Batch)
		reqs++
	}
	flush()
	t.Notes = "measured serve-side counters per drift day on live request traffic: " +
		"the popular head drifts between days (Fig 9), so each day begins with a " +
		"partially stale cache that request traffic re-warms — the within-day hit " +
		"rate stays high while evictions count the daily turnover"
	return t
}

// MNQPSKnee sweeps the offered request rate and reports the latency curve:
// throughput tracks the offered rate until the server saturates, after
// which the open-loop schedule piles queueing delay into the tail
// percentiles — the knee is the last rate whose p99 stays within budget.
func MNQPSKnee() *report.Table {
	t := &report.Table{Header: []string{
		"offered QPS", "achieved", "p50", "p99", "p999", "knee"}}
	cfg := servingCfg()
	srv, _ := servingStack(cfg, 2, 1<<20)
	corpus := serve.BuildCorpus(cfg, 2, TrainIters(), 64)
	requests := 4 * TrainIters()
	rates := []float64{100, 200, 400, 800, 1600}
	points := serve.SaturationSweep(srv, corpus, rates,
		serve.LoadConfig{Requests: requests, Players: 2})
	const budget = 20 * time.Millisecond
	knee := serve.Knee(points, budget)
	for i, p := range points {
		mark := ""
		if i == knee {
			mark = "<- knee"
		}
		t.AddRow(fmt.Sprintf("%.0f", p.QPS),
			fmt.Sprintf("%.0f", p.Report.Throughput),
			p.Report.Latency.P50.Round(time.Microsecond).String(),
			p.Report.Latency.P99.Round(time.Microsecond).String(),
			p.Report.Latency.P999.Round(time.Microsecond).String(),
			mark)
	}
	t.Notes = fmt.Sprintf("open-loop load harness (latency measured from scheduled "+
		"arrival, so saturation shows up as queueing in the tail); knee = last rate "+
		"with p99 inside %v. Wall-clock measurements: absolute values depend on the "+
		"host, the knee's shape is the result", budget)
	return t
}
