package experiments

import (
	"slices"
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
)

// TestQuantCapacityFrontier is the acceptance gate for the precision-tiered
// caches, at exactly the mn-quant configuration: at one fixed HBM byte
// budget on the skewed Criteo stream, the tiered format must dominate the
// fp32-only cache — at least 2x the resident rows, strictly more hits,
// strictly fewer all-to-all bytes — with the quantization cost measured,
// not assumed away.
func TestQuantCapacityFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("functional training sweep; run without -short")
	}
	fn := data.CriteoKaggle()
	fn.Samples = 2048
	const nodes, iters, batch = 4, 10, 256
	budget := mnQuantBudget(fn)
	run := func(q shard.QuantMode) quantRun {
		return runQuant(fn, nodes, iters, batch, budget, q, mnQuantClassifier(fn, budget, q))
	}
	fp32 := run(shard.QuantOff)
	if fp32.st.QuantHits != 0 || fp32.rows == 0 {
		t.Fatalf("fp32 baseline must cache rows and serve no quantized hits: rows=%d quantHits=%d",
			fp32.rows, fp32.st.QuantHits)
	}

	for _, q := range []shard.QuantMode{shard.QuantFP16, shard.QuantINT8, shard.QuantMixed} {
		r := run(q)
		if r.st.HitRate() <= fp32.st.HitRate() {
			t.Errorf("%s hit rate %.4f must strictly beat fp32's %.4f at the same budget",
				q, r.st.HitRate(), fp32.st.HitRate())
		}
		if r.st.A2ABytes() >= fp32.st.A2ABytes() {
			t.Errorf("%s moved %d all-to-all bytes, fp32 %d; the narrow tier must move strictly fewer",
				q, r.st.A2ABytes(), fp32.st.A2ABytes())
		}
		if r.st.QuantHits == 0 {
			t.Errorf("%s served no warm-tier hits; the fused kernel never ran", q)
		}
		if q == shard.QuantMixed && r.rows < 2*fp32.rows {
			t.Errorf("hot-fp32+warm-int8 holds %d rows vs %d fp32 at the same budget; want >= 2x",
				r.rows, fp32.rows)
		}
	}
}

// TestQuantOffBitIdentical is the inertness gate: two independent fp32-mode
// runs of the sweep configuration must agree bit for bit — exact per-step
// losses and exactly zero parameter divergence — so quantization-off
// provably changes nothing about training.
func TestQuantOffBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("functional training; run without -short")
	}
	fn := data.CriteoKaggle()
	fn.Samples = 2048
	const nodes, iters, batch = 4, 6, 256
	budget := mnQuantBudget(fn)
	hot := mnQuantClassifier(fn, budget, shard.QuantOff)
	a := runQuant(fn, nodes, iters, batch, budget, shard.QuantOff, hot)
	b := runQuant(fn, nodes, iters, batch, budget, shard.QuantOff, hot)
	if !slices.Equal(a.losses, b.losses) {
		t.Fatalf("fp32 losses diverged:\n%v\n%v", a.losses, b.losses)
	}
	if d := model.MaxStateDiff(a.m, b.m); d != 0 {
		t.Fatalf("fp32 reruns diverged: max |Δw| = %g, want exactly 0", d)
	}
}
