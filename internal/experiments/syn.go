package experiments

import (
	"fmt"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
	"hotline/internal/report"
	"hotline/internal/shard"
)

// The SYN scenarios bring the synthetic multi-hot models (SYN-M1/M2, the
// paper's Fig 28/30 workloads) onto the measured sharded substrate, and
// sweep the mini-batch size on it — the two scenario-breadth gaps the
// roadmap named: until now the mn-* family only replayed the real-world
// one-hot datasets at one batch size.

func init() {
	registry["mn-syn"] = regEntry{"Multi-node sharded embeddings: SYN-M1/M2 multi-hot models (measured)", MNSynthetic}
	registry["mn-batch"] = regEntry{"Multi-node sharded embeddings: mini-batch size sweep (measured)", MNBatchSweep}
}

// MNSynthetic replays the SYN-M1 and SYN-M2 multi-hot access streams (4
// lookups per table, 102/204 tables) against a 4-node sharded service and
// prices the measured fractions with the timing models. Multi-hot bags
// touch far more rows per input than the one-hot real-world models, so the
// device caches and intra-iteration dedup carry proportionally more of the
// load — exactly the regime the paper's Fig 30 multi-node claim lives in.
func MNSynthetic() *report.Table {
	t := &report.Table{Header: []string{
		"model", "tables", "lookups/input", "cache hit", "remote", "gather",
		"a2a KB/iter", "exposed", "Hotline iter", "HugeCTR iter"}}
	const nodes = 4
	sys := cost.PaperCluster(nodes)
	for _, cfg := range []data.Config{data.SynM1(), data.SynM2()} {
		m := pipeline.MeasureShardStats(cfg, nodes, pipeline.DefaultShardCacheBytes(cfg),
			mnBatch, shard.PolicyLRU)
		w := pipeline.NewShardedWorkload(cfg, 4096*nodes, sys, 0)
		exposed := "-"
		if w.Shard.OverlapMeasured {
			exposed = pct(w.Shard.ExposedFrac, 1)
		}
		t.AddRow(cfg.RM,
			fmt.Sprint(cfg.NumTables),
			fmt.Sprint(cfg.NumTables*cfg.LookupsPerTable),
			pct(m.HitRate, 1), pct(m.RemoteFrac, 1), pct(m.GatherFrac, 1),
			fmt.Sprintf("%.1f", float64(m.A2ABytesPerIter)/1024),
			exposed,
			pipeline.NewHotline().Iteration(w).Total.String(),
			pipeline.NewHugeCTR().Iteration(w).Total.String())
	}
	t.Notes = "measured on the scaled multi-hot tables: 4 lookups per table multiply " +
		"the per-input embedding traffic, so cache hit-rate and dedup matter more than " +
		"for the one-hot real-world models; Hotline vs HugeCTR is the Fig 30 comparison " +
		"with measured (not analytic) shard fractions"
	return t
}

// MNBatchSweep sweeps the mini-batch size on the 4-node sharded Criteo
// Kaggle service: a larger batch touches more distinct rows per iteration,
// but the skewed head repeats within the batch, so intra-iteration dedup
// absorbs a growing share and the all-to-all bytes per input fall.
func MNBatchSweep() *report.Table {
	t := &report.Table{Header: []string{
		"batch", "cache hit", "gather", "a2a KB/iter", "a2a B/input", "Hotline iter"}}
	cfg := data.CriteoKaggle()
	const nodes = 4
	sys := cost.PaperCluster(nodes)
	for _, batch := range []int{256, 512, 1024, 2048} {
		m := pipeline.MeasureShardStats(cfg, nodes, pipeline.DefaultShardCacheBytes(cfg),
			batch, shard.PolicyLRU)
		w := pipeline.NewShardedWorkload(cfg, batch*nodes, sys, 0)
		t.AddRow(fmt.Sprint(batch),
			pct(m.HitRate, 1), pct(m.GatherFrac, 1),
			fmt.Sprintf("%.1f", float64(m.A2ABytesPerIter)/1024),
			fmt.Sprintf("%.1f", float64(m.A2ABytesPerIter)/float64(batch)),
			pipeline.NewHotline().Iteration(w).Total.String())
	}
	t.Notes = "same harness as mn-scale at varying batch size: per-iteration a2a volume " +
		"grows sub-linearly in the batch because the Zipf head dedups within an " +
		"iteration, so the fabric cost per input falls as batches grow"
	return t
}
