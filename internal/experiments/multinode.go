package experiments

import (
	"fmt"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/embedding"
	"hotline/internal/pipeline"
	"hotline/internal/report"
	"hotline/internal/shard"
)

// The mn-* family are the multi-node scenarios of the sharded embedding
// subsystem: unlike the fig* experiments (closed-form timing models), every
// number here is *measured* by replaying real access streams against real
// shard topology and device-cache state (internal/shard), then priced with
// the internal/cost link models.

func init() {
	registry["mn-scale"] = regEntry{"Multi-node sharded embeddings: node-count scaling (measured)", MNScale}
	registry["mn-cache"] = regEntry{"Multi-node sharded embeddings: device-cache size ablation", MNCacheSize}
	registry["mn-skew"] = regEntry{"Multi-node sharded embeddings: static vs evolving skew", MNEvolvingSkew}
	registry["mn-policy"] = regEntry{"Multi-node sharded embeddings: LRU vs SRRIP cache eviction", MNCachePolicy}
}

// mnBatch is the per-iteration mini-batch the scenarios replay.
const mnBatch = 1024

// MNScale measures the sharded service across 1/2/4/8 nodes on Criteo
// Kaggle: device-cache hit-rate, all-to-all volume, and the Hotline
// iteration time when the timing model consumes the measured fractions
// instead of the analytic ones (the Figure 30 claim, now measured).
func MNScale() *report.Table {
	t := &report.Table{Header: []string{
		"nodes", "cache hit", "remote", "gather", "a2a KB/iter", "a2a time",
		"exposed", "Hotline iter (measured)", "(analytic)"}}
	cfg := data.CriteoKaggle()
	for _, nodes := range []int{1, 2, 4, 8} {
		sys := cost.PaperCluster(nodes)
		m := pipeline.MeasureShardStats(cfg, nodes, pipeline.DefaultShardCacheBytes(cfg), mnBatch, shard.PolicyLRU)
		st := shard.Stats{Nodes: nodes, GatherBytes: m.A2ABytesPerIter}
		measured := pipeline.NewShardedWorkload(cfg, 4096*nodes, sys, 0)
		analytic := pipeline.NewWorkload(cfg, 4096*nodes, sys)
		hl := pipeline.NewHotline()
		exposed := "-"
		if measured.Shard.OverlapMeasured {
			exposed = pct(measured.Shard.ExposedFrac, 1)
		}
		t.AddRow(fmt.Sprint(nodes),
			pct(m.HitRate, 1), pct(m.RemoteFrac, 1), pct(m.GatherFrac, 1),
			fmt.Sprintf("%.1f", float64(m.A2ABytesPerIter)/1024),
			st.AllToAllTime(sys).String(),
			exposed,
			hl.Iteration(measured).Total.String(),
			hl.Iteration(analytic).Total.String())
	}
	t.Notes = "measured on scaled tables: remote fraction grows as (n-1)/n but the " +
		"hot-entry caches absorb the skewed head, keeping the gather fraction low; " +
		"the exposed column is the pipelined async engine's measured exposed-gather " +
		"fraction, which the Hotline timing model prices by default"
	return t
}

// MNCacheSize ablates the per-node device-cache budget at 4 nodes: a
// bounded cache under pressure evicts, the hit-rate falls, and the
// all-to-all volume the fabric must carry grows.
func MNCacheSize() *report.Table {
	t := &report.Table{Header: []string{
		"cache/node", "occupancy", "cache hit", "gather", "evictions", "a2a KB/iter"}}
	cfg := data.CriteoKaggle()
	full := pipeline.DefaultShardCacheBytes(cfg)
	for _, div := range []int64{16, 8, 4, 2, 1} {
		cache := full / div
		m := pipeline.MeasureShardStats(cfg, 4, cache, mnBatch, shard.PolicyLRU)
		t.AddRow(fmt.Sprintf("%dKB", cache>>10),
			pct(m.CacheOccupancy, 1), pct(m.HitRate, 1), pct(m.GatherFrac, 1),
			fmt.Sprint(m.Evictions),
			fmt.Sprintf("%.1f", float64(m.A2ABytesPerIter)/1024))
	}
	t.Notes = "the full hot-set budget caches the skewed head entirely; " +
		"shrinking it trades device memory for fabric traffic"
	return t
}

// MNEvolvingSkew replays days 0..3 of Criteo Terabyte's drifting popularity
// against caches warmed on day 0: the hot set learned on day 0 goes stale,
// the hit-rate decays, and the fabric pays for it (Figure 9's evolving-skew
// argument, measured end to end on the sharded substrate).
func MNEvolvingSkew() *report.Table {
	t := &report.Table{Header: []string{
		"day", "cache hit", "gather", "a2a KB/iter", "a2a time vs day 0"}}
	cfg := data.CriteoTerabyte()
	probe := cfg
	probe.Samples = 4096
	const nodes = 4
	sys := cost.PaperCluster(nodes)

	// Learn the day-0 hot set and replicate it, like the learning phase.
	prof := data.ProfileEpoch(data.NewGenerator(probe), 512)
	placement := embedding.PlacementFromCounts(
		prof.Counts(), probe.NumTables, probe.EmbedDim, data.ScaledHotBudget(probe))
	svc := shard.New(shard.Config{
		Nodes: nodes, CacheBytes: pipeline.DefaultShardCacheBytes(probe),
		RowBytes: int64(probe.EmbedDim) * 4,
	}, placement)
	for tbl := 0; tbl < probe.NumTables; tbl++ {
		svc.Preload(tbl, placement.HotRows(tbl))
	}

	gen := data.NewGenerator(probe)
	var day0 float64
	for day := 0; day <= 3; day++ {
		gen.SetDay(day)
		svc.ResetStats()
		for i := 0; i < 4; i++ {
			b := gen.NextBatch(mnBatch)
			for tbl := range b.Sparse {
				svc.RecordGather(tbl, b.Sparse[tbl])
				svc.RecordScatter(tbl, b.Sparse[tbl])
			}
		}
		st := svc.Snapshot()
		a2a := float64(st.AllToAllTime(sys))
		if day == 0 {
			day0 = a2a
		}
		t.AddRow(fmt.Sprint(day),
			pct(st.HitRate(), 1), pct(st.GatherFrac(), 1),
			fmt.Sprintf("%.1f", float64(st.A2ABytes())/4/1024),
			fmt.Sprintf("%.2fx", a2a/day0))
	}
	t.Notes = "paper Fig 9: popular embeddings drift within days; a day-0 hot set " +
		"decays, which is why Hotline re-samples 5% of batches instead of profiling offline"
	return t
}

// MNCachePolicy compares LRU against SRRIP eviction under cache pressure
// (a quarter of the hot-set budget, 4 nodes): SRRIP's re-reference
// prediction resists the Zipf tail scanning through the cache.
func MNCachePolicy() *report.Table {
	t := &report.Table{Header: []string{
		"policy", "cache hit", "gather", "evictions", "a2a KB/iter"}}
	cfg := data.CriteoKaggle()
	probe := cfg
	probe.Samples = 4096
	const nodes = 4
	for _, pol := range []shard.Policy{shard.PolicyLRU, shard.PolicySRRIP} {
		prof := data.ProfileEpoch(data.NewGenerator(probe), 512)
		placement := embedding.PlacementFromCounts(
			prof.Counts(), probe.NumTables, probe.EmbedDim, data.ScaledHotBudget(probe))
		svc := shard.New(shard.Config{
			Nodes: nodes, CacheBytes: pipeline.DefaultShardCacheBytes(probe) / 4,
			RowBytes: int64(probe.EmbedDim) * 4, Policy: pol,
		}, placement)
		for tbl := 0; tbl < probe.NumTables; tbl++ {
			svc.Preload(tbl, placement.HotRows(tbl))
		}
		gen := data.NewGenerator(probe)
		run := func(iters int) {
			for i := 0; i < iters; i++ {
				b := gen.NextBatch(mnBatch)
				for tbl := range b.Sparse {
					svc.RecordGather(tbl, b.Sparse[tbl])
					svc.RecordScatter(tbl, b.Sparse[tbl])
				}
			}
		}
		run(2) // warm up
		svc.ResetStats()
		evBefore := svc.CacheEvictions()
		run(4)
		st := svc.Snapshot()
		t.AddRow(pol.String(),
			pct(st.HitRate(), 1), pct(st.GatherFrac(), 1),
			fmt.Sprint(svc.CacheEvictions()-evBefore),
			fmt.Sprintf("%.1f", float64(st.A2ABytes())/4/1024))
	}
	t.Notes = "same replacement-policy question as the EAL (Fig 15), asked of the " +
		"device cache: re-reference prediction vs strict recency under a Zipf tail"
	return t
}
