//hotline:typed-errors

package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Wire protocol of the socket fabric.
//
// Every message travels as one frame: a 4-byte big-endian u32 length prefix
// followed by that many payload bytes. The payload is a 1-byte opcode and an
// opcode-specific body; integers are unsigned varints, row values are
// little-endian IEEE-754 float32s. A frame never exceeds MaxFrame — senders
// chunk larger row lists, receivers reject the prefix before allocating.
//
//	hello  node                              coordinator → node, once per conn
//	fetch  table count row*                  coordinator → node
//	rows   table count dim (row f32*dim)*    node → coordinator (fetch reply)
//	push   table count dim (row f32*dim)*    coordinator → node
//	ack                                      node → coordinator (push reply)
//	error  code text                         node → coordinator (either reply)
//	rows16 table count dim (row u16*dim)*    node → coordinator (fetchq fp16 reply)
//	rows8  table count dim (row sc_f32 i8*dim)*  node → coordinator (fetchq int8 reply)
//	fetchq table width count row*            coordinator → node
//
// The quantized replies carry narrow row payloads: rows16 is IEEE binary16
// little-endian, rows8 is a symmetric per-row float32 scale followed by the
// int8 elements — a fetch reply at the warm tier's storage width, 2-4x fewer
// bytes on the wire than opRows. The codec moves the quantized bits verbatim
// (no float conversion on decode), so encode→decode is bit-exact; the
// transport's FetchQuant dequantizes into the staging buffer at the edge.
const (
	opHello  byte = 1
	opFetch  byte = 2
	opRows   byte = 3
	opPush   byte = 4
	opAck    byte = 5
	opError  byte = 6
	opRows16 byte = 7
	opRows8  byte = 8
	opFetchQ byte = 9
)

// MaxFrame bounds a frame's payload. Large pushes and fetch replies are
// chunked under it, and a decoder rejects any length prefix above it before
// allocating — a malformed or hostile prefix cannot balloon memory.
const MaxFrame = 1 << 20

// maxWireDim bounds the per-row dimension a decoder accepts; real embedding
// dims are a few hundred, so anything near the frame bound is garbage.
const maxWireDim = 1 << 16

// Codec errors (a malformed peer surfaces as ErrPeerDead wrapping one of
// these; the fuzz target asserts they are returned, never panicked).
var (
	// ErrBadFrame reports a structurally invalid payload: unknown opcode,
	// short varint, or counts inconsistent with the payload length.
	ErrBadFrame = errors.New("shard: malformed frame")
	// ErrFrameTooLarge reports a length prefix above MaxFrame.
	ErrFrameTooLarge = errors.New("shard: frame exceeds MaxFrame")
	// ErrTruncatedFrame reports a frame cut short of its declared length.
	ErrTruncatedFrame = errors.New("shard: truncated frame")
)

// wire error codes carried by opError bodies.
const (
	wireErrUnknownRow byte = 1
	wireErrBadFrame   byte = 2
	wireErrInternal   byte = 3
)

// wireMsg is one decoded fabric message. Rows and Vals alias scratch owned
// by the decoder's caller; they are consumed before the next decode.
type wireMsg struct {
	op     byte
	node   int       // hello
	table  int       // fetch / rows / push / rows16 / rows8 / fetchq
	dim    int       // rows / push / rows16 / rows8
	rows   []int32   // fetch / rows / push / rows16 / rows8 / fetchq
	vals   []float32 // rows / push: len(rows)*dim values, row-major
	width  Width     // fetchq request width (and stamped on decoded quantized replies)
	h16    []uint16  // rows16: len(rows)*dim binary16 values, row-major
	i8     []int8    // rows8: len(rows)*dim quantized elements, row-major
	scales []float32 // rows8: len(rows) per-row symmetric scales
	code   byte      // error
	text   string    // error
}

// DecodeFrame splits one length-prefixed frame off the front of b, returning
// its payload and the remaining bytes. It never panics and never allocates:
// a prefix above MaxFrame is rejected (ErrFrameTooLarge), anything shorter
// than its declared length is ErrTruncatedFrame, and an empty payload —
// which could carry no opcode — is ErrBadFrame.
func DecodeFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: %d-byte prefix", ErrTruncatedFrame, len(b))
	}
	n := binary.BigEndian.Uint32(b[:4])
	if n > MaxFrame {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if uint32(len(b)-4) < n {
		return nil, nil, fmt.Errorf("%w: want %d payload bytes, have %d", ErrTruncatedFrame, n, len(b)-4)
	}
	return b[4 : 4+n], b[4+n:], nil
}

// readFrame reads one frame payload from r into buf (grown if needed),
// applying the same bounds as DecodeFrame before allocating.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return readFramePayload(r, hdr, buf)
}

// readFramePayload reads a frame's body after its 4-byte length prefix has
// already arrived (the NodeServer splits the read there to arm its IO
// deadline only once a frame has started).
func readFramePayload(r io.Reader, hdr [4]byte, buf []byte) ([]byte, error) {
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return nil, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
		}
		return nil, err
	}
	return buf, nil
}

// writeFrame fills buf's reserved 4-byte prefix with the payload length
// (buf[4:]) and writes the whole frame.
func writeFrame(w io.Writer, buf []byte) error {
	n := len(buf) - 4
	if n <= 0 {
		return fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if n > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	_, err := w.Write(buf)
	return err
}

// uvarint decodes one unsigned varint, rejecting values above max.
func uvarint(b []byte, max uint64) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrBadFrame)
	}
	if v > max {
		return 0, nil, fmt.Errorf("%w: varint %d exceeds %d", ErrBadFrame, v, max)
	}
	return v, b[n:], nil
}

// appendMsg encodes m as a frame payload appended to dst. The caller leaves
// the 4-byte prefix in dst[:4] for writeFrame to fill.
func appendMsg(dst []byte, m *wireMsg) []byte {
	dst = append(dst, m.op)
	switch m.op {
	case opHello:
		dst = binary.AppendUvarint(dst, uint64(m.node))
	case opFetch:
		dst = binary.AppendUvarint(dst, uint64(m.table))
		dst = binary.AppendUvarint(dst, uint64(len(m.rows)))
		for _, r := range m.rows {
			dst = binary.AppendUvarint(dst, uint64(uint32(r)))
		}
	case opRows, opPush:
		dst = binary.AppendUvarint(dst, uint64(m.table))
		dst = binary.AppendUvarint(dst, uint64(len(m.rows)))
		dst = binary.AppendUvarint(dst, uint64(m.dim))
		for i, r := range m.rows {
			dst = binary.AppendUvarint(dst, uint64(uint32(r)))
			for _, v := range m.vals[i*m.dim : (i+1)*m.dim] {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
			}
		}
	case opRows16:
		dst = binary.AppendUvarint(dst, uint64(m.table))
		dst = binary.AppendUvarint(dst, uint64(len(m.rows)))
		dst = binary.AppendUvarint(dst, uint64(m.dim))
		for i, r := range m.rows {
			dst = binary.AppendUvarint(dst, uint64(uint32(r)))
			for _, h := range m.h16[i*m.dim : (i+1)*m.dim] {
				dst = binary.LittleEndian.AppendUint16(dst, h)
			}
		}
	case opRows8:
		dst = binary.AppendUvarint(dst, uint64(m.table))
		dst = binary.AppendUvarint(dst, uint64(len(m.rows)))
		dst = binary.AppendUvarint(dst, uint64(m.dim))
		for i, r := range m.rows {
			dst = binary.AppendUvarint(dst, uint64(uint32(r)))
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(m.scales[i]))
			for _, q := range m.i8[i*m.dim : (i+1)*m.dim] {
				dst = append(dst, byte(q))
			}
		}
	case opFetchQ:
		dst = binary.AppendUvarint(dst, uint64(m.table))
		dst = append(dst, byte(m.width))
		dst = binary.AppendUvarint(dst, uint64(len(m.rows)))
		for _, r := range m.rows {
			dst = binary.AppendUvarint(dst, uint64(uint32(r)))
		}
	case opAck:
	case opError:
		dst = append(dst, m.code)
		dst = append(dst, m.text...)
	default:
		panic(fmt.Sprintf("shard: appendMsg of unknown op %d", m.op))
	}
	return dst
}

// decodeMsg parses a frame payload into m, reusing m.rows / m.vals scratch.
// Every count is validated against the remaining payload length BEFORE the
// matching slice is sized, so a lying header cannot over-allocate: the
// decoder's footprint is bounded by the payload actually received.
func decodeMsg(payload []byte, m *wireMsg) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	m.op = payload[0]
	b := payload[1:]
	var err error
	var v uint64
	switch m.op {
	case opHello:
		if v, b, err = uvarint(b, math.MaxInt32); err != nil {
			return err
		}
		m.node = int(v)
		if len(b) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
		}
	case opFetch:
		if v, b, err = uvarint(b, math.MaxInt32); err != nil {
			return err
		}
		m.table = int(v)
		if v, b, err = uvarint(b, uint64(len(b))); err != nil {
			// Each row needs at least one varint byte, so a count above the
			// remaining length is structurally impossible.
			return err
		}
		count := int(v)
		m.rows = sizeRows(m.rows, count)
		for i := 0; i < count; i++ {
			if v, b, err = uvarint(b, math.MaxUint32); err != nil {
				return err
			}
			m.rows[i] = int32(uint32(v))
		}
		if len(b) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
		}
	case opRows, opPush:
		if v, b, err = uvarint(b, math.MaxInt32); err != nil {
			return err
		}
		m.table = int(v)
		if v, b, err = uvarint(b, uint64(len(b))); err != nil {
			return err
		}
		count := int(v)
		if v, b, err = uvarint(b, maxWireDim); err != nil {
			return err
		}
		m.dim = int(v)
		// Bounds check before allocating: count rows of (≥1 varint byte +
		// dim*4 value bytes) must fit in what actually arrived.
		if need := uint64(count) * (1 + 4*uint64(m.dim)); need > uint64(len(b)) {
			return fmt.Errorf("%w: %d rows×dim %d need %d bytes, have %d",
				ErrBadFrame, count, m.dim, need, len(b))
		}
		m.rows = sizeRows(m.rows, count)
		m.vals = sizeVals(m.vals, count*m.dim)
		for i := 0; i < count; i++ {
			if v, b, err = uvarint(b, math.MaxUint32); err != nil {
				return err
			}
			m.rows[i] = int32(uint32(v))
			if len(b) < 4*m.dim {
				return fmt.Errorf("%w: row %d values cut short", ErrTruncatedFrame, i)
			}
			for k := 0; k < m.dim; k++ {
				m.vals[i*m.dim+k] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*k:]))
			}
			b = b[4*m.dim:]
		}
		if len(b) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
		}
	case opRows16:
		if v, b, err = uvarint(b, math.MaxInt32); err != nil {
			return err
		}
		m.table = int(v)
		if v, b, err = uvarint(b, uint64(len(b))); err != nil {
			return err
		}
		count := int(v)
		if v, b, err = uvarint(b, maxWireDim); err != nil {
			return err
		}
		m.dim = int(v)
		// Bounds check before allocating: count rows of (≥1 varint byte +
		// dim*2 binary16 bytes) must fit in what actually arrived.
		if need := uint64(count) * (1 + 2*uint64(m.dim)); need > uint64(len(b)) {
			return fmt.Errorf("%w: %d fp16 rows×dim %d need %d bytes, have %d",
				ErrBadFrame, count, m.dim, need, len(b))
		}
		m.rows = sizeRows(m.rows, count)
		m.h16 = sizeU16(m.h16, count*m.dim)
		m.width = WidthFP16
		for i := 0; i < count; i++ {
			if v, b, err = uvarint(b, math.MaxUint32); err != nil {
				return err
			}
			m.rows[i] = int32(uint32(v))
			if len(b) < 2*m.dim {
				return fmt.Errorf("%w: fp16 row %d values cut short", ErrTruncatedFrame, i)
			}
			for k := 0; k < m.dim; k++ {
				m.h16[i*m.dim+k] = binary.LittleEndian.Uint16(b[2*k:])
			}
			b = b[2*m.dim:]
		}
		if len(b) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
		}
	case opRows8:
		if v, b, err = uvarint(b, math.MaxInt32); err != nil {
			return err
		}
		m.table = int(v)
		if v, b, err = uvarint(b, uint64(len(b))); err != nil {
			return err
		}
		count := int(v)
		if v, b, err = uvarint(b, maxWireDim); err != nil {
			return err
		}
		m.dim = int(v)
		// Bounds check before allocating: count rows of (≥1 varint byte +
		// 4 scale bytes + dim int8 bytes) must fit in what actually arrived.
		if need := uint64(count) * (1 + 4 + uint64(m.dim)); need > uint64(len(b)) {
			return fmt.Errorf("%w: %d int8 rows×dim %d need %d bytes, have %d",
				ErrBadFrame, count, m.dim, need, len(b))
		}
		m.rows = sizeRows(m.rows, count)
		m.scales = sizeVals(m.scales, count)
		m.i8 = sizeI8(m.i8, count*m.dim)
		m.width = WidthINT8
		for i := 0; i < count; i++ {
			if v, b, err = uvarint(b, math.MaxUint32); err != nil {
				return err
			}
			m.rows[i] = int32(uint32(v))
			if len(b) < 4+m.dim {
				return fmt.Errorf("%w: int8 row %d values cut short", ErrTruncatedFrame, i)
			}
			m.scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(b))
			for k := 0; k < m.dim; k++ {
				m.i8[i*m.dim+k] = int8(b[4+k])
			}
			b = b[4+m.dim:]
		}
		if len(b) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
		}
	case opFetchQ:
		if v, b, err = uvarint(b, math.MaxInt32); err != nil {
			return err
		}
		m.table = int(v)
		if len(b) < 1 {
			return fmt.Errorf("%w: fetchq without width", ErrBadFrame)
		}
		m.width = Width(b[0])
		b = b[1:]
		if m.width != WidthFP16 && m.width != WidthINT8 {
			// fp32 fetches travel as opFetch; any other width byte is a
			// protocol-version mismatch.
			return fmt.Errorf("%w: fetchq width %d", ErrBadFrame, m.width)
		}
		if v, b, err = uvarint(b, uint64(len(b))); err != nil {
			return err
		}
		count := int(v)
		m.rows = sizeRows(m.rows, count)
		for i := 0; i < count; i++ {
			if v, b, err = uvarint(b, math.MaxUint32); err != nil {
				return err
			}
			m.rows[i] = int32(uint32(v))
		}
		if len(b) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
		}
	case opAck:
		if len(b) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
		}
	case opError:
		if len(b) < 1 {
			return fmt.Errorf("%w: error frame without code", ErrBadFrame)
		}
		m.code = b[0]
		m.text = string(b[1:])
	default:
		return fmt.Errorf("%w: unknown opcode %d", ErrBadFrame, m.op)
	}
	return nil
}

// sizeRows returns s resized to n, reusing capacity.
func sizeRows(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// sizeVals returns s resized to n, reusing capacity.
func sizeVals(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

// sizeU16 returns s resized to n, reusing capacity.
func sizeU16(s []uint16, n int) []uint16 {
	if cap(s) < n {
		return make([]uint16, n)
	}
	return s[:n]
}

// sizeI8 returns s resized to n, reusing capacity.
func sizeI8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

// wireErr maps an opError body to the fabric's typed errors.
func wireErr(code byte, text string) error {
	switch code {
	case wireErrUnknownRow:
		return fmt.Errorf("%w: %s", ErrUnknownRow, text)
	case wireErrBadFrame:
		return fmt.Errorf("%w: %s", ErrBadFrame, text)
	default:
		// An error code this build does not know is a protocol-version
		// mismatch — unintelligible protocol, same class as a bad frame.
		return fmt.Errorf("%w: peer error %d: %s", ErrBadFrame, code, text)
	}
}
