package shard

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// frameFor encodes m as a complete frame (prefix + payload).
func frameFor(t testing.TB, m *wireMsg) []byte {
	t.Helper()
	buf := appendMsg(make([]byte, 4), m)
	var w bytes.Buffer
	if err := writeFrame(&w, buf); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return w.Bytes()
}

func TestWireRoundTrip(t *testing.T) {
	msgs := []wireMsg{
		{op: opHello, node: 3},
		{op: opFetch, table: 2, rows: []int32{0, 7, 1 << 20}},
		{op: opRows, table: 1, dim: 2, rows: []int32{5, 9},
			vals: []float32{1, -2.5, float32(math.Inf(1)), 0}},
		{op: opPush, table: 0, dim: 1, rows: []int32{42}, vals: []float32{3.25}},
		{op: opAck},
		{op: opError, code: wireErrUnknownRow, text: "row 9 of table 1"},
	}
	for _, want := range msgs {
		frame := frameFor(t, &want)

		// The stream reader and the pure decoder must agree.
		payload, rest, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("op %d: DecodeFrame: %v", want.op, err)
		}
		if len(rest) != 0 {
			t.Fatalf("op %d: %d bytes left over", want.op, len(rest))
		}
		streamed, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("op %d: readFrame: %v", want.op, err)
		}
		if !bytes.Equal(payload, streamed) {
			t.Fatalf("op %d: DecodeFrame and readFrame disagree", want.op)
		}

		var got wireMsg
		if err := decodeMsg(payload, &got); err != nil {
			t.Fatalf("op %d: decodeMsg: %v", want.op, err)
		}
		if got.op != want.op || got.node != want.node || got.table != want.table ||
			got.dim != want.dim || got.code != want.code || got.text != want.text {
			t.Fatalf("op %d: scalar mismatch: got %+v want %+v", want.op, got, want)
		}
		if len(got.rows) != len(want.rows) {
			t.Fatalf("op %d: rows %v want %v", want.op, got.rows, want.rows)
		}
		for i := range want.rows {
			if got.rows[i] != want.rows[i] {
				t.Fatalf("op %d: rows %v want %v", want.op, got.rows, want.rows)
			}
		}
		if len(got.vals) != len(want.vals) {
			t.Fatalf("op %d: %d vals want %d", want.op, len(got.vals), len(want.vals))
		}
		for i := range want.vals {
			if math.Float32bits(got.vals[i]) != math.Float32bits(want.vals[i]) {
				t.Fatalf("op %d: vals differ at %d: %v want %v", want.op, i, got.vals[i], want.vals[i])
			}
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncatedFrame},
		{"short prefix", []byte{0, 0, 1}, ErrTruncatedFrame},
		{"oversized", []byte{0xff, 0xff, 0xff, 0xff}, ErrFrameTooLarge},
		{"just over max", []byte{0, 0x10, 0, 1}, ErrFrameTooLarge},
		{"empty payload", []byte{0, 0, 0, 0}, ErrBadFrame},
		{"truncated payload", []byte{0, 0, 0, 4, opAck}, ErrTruncatedFrame},
	}
	for _, c := range cases {
		if _, _, err := DecodeFrame(c.in); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

func TestDecodeMsgRejects(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"unknown opcode", []byte{0x7f}, ErrBadFrame},
		{"hello short varint", []byte{opHello, 0x80}, ErrBadFrame},
		{"hello trailing", []byte{opHello, 1, 9}, ErrBadFrame},
		{"fetch lying count", []byte{opFetch, 0, 60, 1, 2}, ErrBadFrame},
		{"push dim too big", []byte{opPush, 0, 1, 0xff, 0xff, 0xff, 0x07}, ErrBadFrame},
		{"push lying geometry", []byte{opPush, 0, 2, 4, 1, 0, 0, 0}, ErrBadFrame},
		{"ack trailing", []byte{opAck, 0}, ErrBadFrame},
		{"error no code", []byte{opError}, ErrBadFrame},
	}
	var m wireMsg
	for _, c := range cases {
		if err := decodeMsg(c.in, &m); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

// FuzzDecodeFrame asserts the codec's safety contract on arbitrary input:
// DecodeFrame + decodeMsg either fail with a typed error or yield a message
// that re-encodes to a payload decoding identically — never a panic, and
// never an allocation beyond the bytes that actually arrived (decodeMsg
// validates every count against the remaining payload before sizing
// anything; the size assertions below would catch a lying header).
func FuzzDecodeFrame(f *testing.F) {
	seed := []wireMsg{
		{op: opHello, node: 1},
		{op: opFetch, table: 0, rows: []int32{1, 2, 3}},
		{op: opRows, table: 1, dim: 2, rows: []int32{4, 5}, vals: []float32{1, 2, 3, 4}},
		{op: opPush, table: 2, dim: 1, rows: []int32{6}, vals: []float32{-1}},
		{op: opAck},
		{op: opError, code: wireErrUnknownRow, text: "row 7"},
	}
	for i := range seed {
		f.Add(frameFor(f, &seed[i]))
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})         // oversized prefix
	f.Add([]byte{0, 0, 0, 16, opFetch, 0})        // truncated payload
	f.Add([]byte{0, 0, 0, 2, opPush, 0x80})       // short varint
	f.Add([]byte{0, 0, 0, 5, opPush, 0, 9, 1, 0}) // lying count

	f.Fuzz(func(t *testing.T, b []byte) {
		payload, rest, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrTruncatedFrame) {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		if len(payload)+len(rest)+4 != len(b) {
			t.Fatalf("frame split lost bytes: %d+%d+4 != %d", len(payload), len(rest), len(b))
		}
		var m wireMsg
		if err := decodeMsg(payload, &m); err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrTruncatedFrame) {
				t.Fatalf("untyped payload error: %v", err)
			}
			return
		}
		// No over-allocation: decoded slices are bounded by what arrived.
		if len(m.rows) > len(payload) || len(m.vals)*4 > len(payload) {
			t.Fatalf("decoded %d rows / %d vals from a %d-byte payload", len(m.rows), len(m.vals), len(payload))
		}
		// Round-trip: a message the decoder accepted must re-encode to a
		// payload the decoder reads back identically.
		re := appendMsg(make([]byte, 4), &m)[4:]
		var m2 wireMsg
		if err := decodeMsg(re, &m2); err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if m2.op != m.op || m2.node != m.node || m2.table != m.table || m2.dim != m.dim ||
			m2.code != m.code || m2.text != m.text || len(m2.rows) != len(m.rows) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", m2, m)
		}
		for i := range m.rows {
			if m2.rows[i] != m.rows[i] {
				t.Fatalf("round-trip row %d: %d vs %d", i, m2.rows[i], m.rows[i])
			}
		}
		for i := range m.vals {
			if math.Float32bits(m2.vals[i]) != math.Float32bits(m.vals[i]) {
				t.Fatalf("round-trip val %d differs", i)
			}
		}
	})
}
