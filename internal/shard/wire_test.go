package shard

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// frameFor encodes m as a complete frame (prefix + payload).
func frameFor(t testing.TB, m *wireMsg) []byte {
	t.Helper()
	buf := appendMsg(make([]byte, 4), m)
	var w bytes.Buffer
	if err := writeFrame(&w, buf); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return w.Bytes()
}

func TestWireRoundTrip(t *testing.T) {
	msgs := []wireMsg{
		{op: opHello, node: 3},
		{op: opFetch, table: 2, rows: []int32{0, 7, 1 << 20}},
		{op: opRows, table: 1, dim: 2, rows: []int32{5, 9},
			vals: []float32{1, -2.5, float32(math.Inf(1)), 0}},
		{op: opPush, table: 0, dim: 1, rows: []int32{42}, vals: []float32{3.25}},
		{op: opAck},
		{op: opError, code: wireErrUnknownRow, text: "row 9 of table 1"},
		{op: opRows16, table: 3, dim: 2, width: WidthFP16, rows: []int32{1, 8},
			h16: []uint16{0x3c00, 0xc000, 0x7bff, 0x0001}},
		{op: opRows8, table: 1, dim: 3, width: WidthINT8, rows: []int32{2},
			scales: []float32{0.125}, i8: []int8{-128, 0, 127}},
		{op: opFetchQ, table: 2, width: WidthINT8, rows: []int32{0, 5, 1 << 19}},
	}
	for _, want := range msgs {
		frame := frameFor(t, &want)

		// The stream reader and the pure decoder must agree.
		payload, rest, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("op %d: DecodeFrame: %v", want.op, err)
		}
		if len(rest) != 0 {
			t.Fatalf("op %d: %d bytes left over", want.op, len(rest))
		}
		streamed, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("op %d: readFrame: %v", want.op, err)
		}
		if !bytes.Equal(payload, streamed) {
			t.Fatalf("op %d: DecodeFrame and readFrame disagree", want.op)
		}

		var got wireMsg
		if err := decodeMsg(payload, &got); err != nil {
			t.Fatalf("op %d: decodeMsg: %v", want.op, err)
		}
		if got.op != want.op || got.node != want.node || got.table != want.table ||
			got.dim != want.dim || got.width != want.width ||
			got.code != want.code || got.text != want.text {
			t.Fatalf("op %d: scalar mismatch: got %+v want %+v", want.op, got, want)
		}
		if len(got.rows) != len(want.rows) {
			t.Fatalf("op %d: rows %v want %v", want.op, got.rows, want.rows)
		}
		for i := range want.rows {
			if got.rows[i] != want.rows[i] {
				t.Fatalf("op %d: rows %v want %v", want.op, got.rows, want.rows)
			}
		}
		if len(got.vals) != len(want.vals) {
			t.Fatalf("op %d: %d vals want %d", want.op, len(got.vals), len(want.vals))
		}
		for i := range want.vals {
			if math.Float32bits(got.vals[i]) != math.Float32bits(want.vals[i]) {
				t.Fatalf("op %d: vals differ at %d: %v want %v", want.op, i, got.vals[i], want.vals[i])
			}
		}
		// Quantized payloads move bit-exactly: no float conversion on decode.
		if len(got.h16) != len(want.h16) || len(got.i8) != len(want.i8) || len(got.scales) != len(want.scales) {
			t.Fatalf("op %d: quant payload sizes %d/%d/%d want %d/%d/%d", want.op,
				len(got.h16), len(got.i8), len(got.scales), len(want.h16), len(want.i8), len(want.scales))
		}
		for i := range want.h16 {
			if got.h16[i] != want.h16[i] {
				t.Fatalf("op %d: h16[%d] = %#x want %#x", want.op, i, got.h16[i], want.h16[i])
			}
		}
		for i := range want.i8 {
			if got.i8[i] != want.i8[i] {
				t.Fatalf("op %d: i8[%d] = %d want %d", want.op, i, got.i8[i], want.i8[i])
			}
		}
		for i := range want.scales {
			if math.Float32bits(got.scales[i]) != math.Float32bits(want.scales[i]) {
				t.Fatalf("op %d: scale[%d] = %v want %v", want.op, i, got.scales[i], want.scales[i])
			}
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncatedFrame},
		{"short prefix", []byte{0, 0, 1}, ErrTruncatedFrame},
		{"oversized", []byte{0xff, 0xff, 0xff, 0xff}, ErrFrameTooLarge},
		{"just over max", []byte{0, 0x10, 0, 1}, ErrFrameTooLarge},
		{"empty payload", []byte{0, 0, 0, 0}, ErrBadFrame},
		{"truncated payload", []byte{0, 0, 0, 4, opAck}, ErrTruncatedFrame},
	}
	for _, c := range cases {
		if _, _, err := DecodeFrame(c.in); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

func TestDecodeMsgRejects(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"unknown opcode", []byte{0x7f}, ErrBadFrame},
		{"hello short varint", []byte{opHello, 0x80}, ErrBadFrame},
		{"hello trailing", []byte{opHello, 1, 9}, ErrBadFrame},
		{"fetch lying count", []byte{opFetch, 0, 60, 1, 2}, ErrBadFrame},
		{"push dim too big", []byte{opPush, 0, 1, 0xff, 0xff, 0xff, 0x07}, ErrBadFrame},
		{"push lying geometry", []byte{opPush, 0, 2, 4, 1, 0, 0, 0}, ErrBadFrame},
		{"ack trailing", []byte{opAck, 0}, ErrBadFrame},
		{"error no code", []byte{opError}, ErrBadFrame},
		{"rows16 dim too big", []byte{opRows16, 0, 1, 0xff, 0xff, 0xff, 0x07}, ErrBadFrame},
		{"rows16 lying geometry", []byte{opRows16, 0, 2, 4, 1, 0, 0}, ErrBadFrame},
		{"rows8 lying geometry", []byte{opRows8, 0, 2, 4, 1, 0, 0, 0, 0, 0}, ErrBadFrame},
		{"fetchq no width", []byte{opFetchQ, 0}, ErrBadFrame},
		{"fetchq fp32 width", []byte{opFetchQ, 0, 0, 1, 1}, ErrBadFrame},
		{"fetchq unknown width", []byte{opFetchQ, 0, 9, 1, 1}, ErrBadFrame},
		{"fetchq lying count", []byte{opFetchQ, 0, 2, 60, 1}, ErrBadFrame},
	}
	var m wireMsg
	for _, c := range cases {
		if err := decodeMsg(c.in, &m); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

// FuzzDecodeFrame asserts the codec's safety contract on arbitrary input:
// DecodeFrame + decodeMsg either fail with a typed error or yield a message
// that re-encodes to a payload decoding identically — never a panic, and
// never an allocation beyond the bytes that actually arrived (decodeMsg
// validates every count against the remaining payload before sizing
// anything; the size assertions below would catch a lying header).
func FuzzDecodeFrame(f *testing.F) {
	seed := []wireMsg{
		{op: opHello, node: 1},
		{op: opFetch, table: 0, rows: []int32{1, 2, 3}},
		{op: opRows, table: 1, dim: 2, rows: []int32{4, 5}, vals: []float32{1, 2, 3, 4}},
		{op: opPush, table: 2, dim: 1, rows: []int32{6}, vals: []float32{-1}},
		{op: opAck},
		{op: opError, code: wireErrUnknownRow, text: "row 7"},
		{op: opRows16, table: 0, dim: 2, rows: []int32{8}, h16: []uint16{0x3c00, 0xc000}},
		{op: opRows8, table: 1, dim: 2, rows: []int32{9}, scales: []float32{0.5}, i8: []int8{1, -1}},
		{op: opFetchQ, table: 0, width: WidthINT8, rows: []int32{3, 4}},
	}
	for i := range seed {
		f.Add(frameFor(f, &seed[i]))
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})         // oversized prefix
	f.Add([]byte{0, 0, 0, 16, opFetch, 0})        // truncated payload
	f.Add([]byte{0, 0, 0, 2, opPush, 0x80})       // short varint
	f.Add([]byte{0, 0, 0, 5, opPush, 0, 9, 1, 0}) // lying count

	f.Fuzz(func(t *testing.T, b []byte) {
		payload, rest, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrTruncatedFrame) {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		if len(payload)+len(rest)+4 != len(b) {
			t.Fatalf("frame split lost bytes: %d+%d+4 != %d", len(payload), len(rest), len(b))
		}
		var m wireMsg
		if err := decodeMsg(payload, &m); err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrTruncatedFrame) {
				t.Fatalf("untyped payload error: %v", err)
			}
			return
		}
		// No over-allocation: decoded slices are bounded by what arrived.
		if len(m.rows) > len(payload) || len(m.vals)*4 > len(payload) {
			t.Fatalf("decoded %d rows / %d vals from a %d-byte payload", len(m.rows), len(m.vals), len(payload))
		}
		if len(m.h16)*2 > len(payload) || len(m.i8) > len(payload) || len(m.scales)*4 > len(payload) {
			t.Fatalf("decoded %d h16 / %d i8 / %d scales from a %d-byte payload",
				len(m.h16), len(m.i8), len(m.scales), len(payload))
		}
		// Round-trip: a message the decoder accepted must re-encode to a
		// payload the decoder reads back identically.
		re := appendMsg(make([]byte, 4), &m)[4:]
		var m2 wireMsg
		if err := decodeMsg(re, &m2); err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if m2.op != m.op || m2.node != m.node || m2.table != m.table || m2.dim != m.dim ||
			m2.width != m.width || m2.code != m.code || m2.text != m.text || len(m2.rows) != len(m.rows) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", m2, m)
		}
		for i := range m.rows {
			if m2.rows[i] != m.rows[i] {
				t.Fatalf("round-trip row %d: %d vs %d", i, m2.rows[i], m.rows[i])
			}
		}
		for i := range m.vals {
			if math.Float32bits(m2.vals[i]) != math.Float32bits(m.vals[i]) {
				t.Fatalf("round-trip val %d differs", i)
			}
		}
		// Quantized payloads are opaque bits to the codec, so they round-trip
		// exactly even when the fuzzer hands us NaN halves or wild scales.
		if len(m2.h16) != len(m.h16) || len(m2.i8) != len(m.i8) || len(m2.scales) != len(m.scales) {
			t.Fatalf("round-trip quant sizes differ: %d/%d/%d vs %d/%d/%d",
				len(m2.h16), len(m2.i8), len(m2.scales), len(m.h16), len(m.i8), len(m.scales))
		}
		for i := range m.h16 {
			if m2.h16[i] != m.h16[i] {
				t.Fatalf("round-trip h16 %d differs", i)
			}
		}
		for i := range m.i8 {
			if m2.i8[i] != m.i8[i] {
				t.Fatalf("round-trip i8 %d differs", i)
			}
		}
		for i := range m.scales {
			if math.Float32bits(m2.scales[i]) != math.Float32bits(m.scales[i]) {
				t.Fatalf("round-trip scale %d differs", i)
			}
		}
	})
}
