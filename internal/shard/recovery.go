//hotline:typed-errors

// Service-level recovery: shard adoption when a peer is past saving.
//
// The ResilientTransport handles everything that can be fixed at the
// connection level — retry, re-dial, resync, spare identity adoption. This
// file handles the case it cannot: a peer declared unrecoverable while
// training still needs its rows. The coordinator's mirror is authoritative
// (all training math happens there; node stores are replicas fed absolute
// row values), so failover is a pure routing change: repartition the dead
// node's rows over the survivors, push their current bits from the mirror,
// and re-route the failed fetches. Every staged row a forward consumes
// still holds exactly the bits a fault-free run would have staged — repairs
// and re-fetches always read current mirror state, and the dirty-row
// tracker already forces a repair wherever an update intervened — so
// training after failover is bit-identical to the fault-free fixed-
// placement run.
package shard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// RecoveryPolicy selects what the service does when the fabric reports a
// dead peer.
type RecoveryPolicy int

const (
	// RecoverNone is the fail-fast default: the first fabric error sticks
	// and the run is void (the pre-recovery behavior, still what the fault
	// classification suite asserts).
	RecoverNone RecoveryPolicy = iota
	// RecoverRedial relies on the transport layer alone: transient failures
	// retry, dead peers re-dial (optionally onto a restarted process or a
	// spare adopting the dead node's identity) and resync from the mirror.
	// A peer that exhausts the retry budget fails the run.
	RecoverRedial
	// RecoverAdopt adds shard adoption on top of RecoverRedial: when a peer
	// is unrecoverable, the surviving nodes adopt its rows — ownership
	// repartitions, the mirror migrates the rows, failed operations
	// re-route — and the run completes without it.
	RecoverAdopt
)

// String names the policy for reports.
func (p RecoveryPolicy) String() string {
	switch p {
	case RecoverNone:
		return "fail-fast"
	case RecoverRedial:
		return "redial"
	case RecoverAdopt:
		return "adopt"
	}
	return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
}

// RecoveryConfig arms a Service's recovery behavior (SetRecovery).
type RecoveryConfig struct {
	Policy RecoveryPolicy
	// MaxFailovers bounds how many peers may be adopted away in one run
	// (cascading failures). Zero defaults to Nodes-1 — adopt until one
	// node remains.
	MaxFailovers int
}

// RecoveryStats counts the recovery subsystem's work. Fetch re-routes and
// row migration happen on the coordinator; redials, spare adoptions and
// per-peer health live in PeerHealth.
type RecoveryStats struct {
	// Adoptions counts survivor failovers (dead peers whose shard the
	// remaining nodes adopted).
	Adoptions int
	// MigratedRows / MigratedBytes count rows pushed to their new owners
	// during failover (repair/migration traffic, separate from scatter).
	MigratedRows, MigratedBytes int64
	// ResyncRows / ResyncBytes count rows re-pushed to a revived (re-dialed
	// or spare) peer restoring its shard from the mirror.
	ResyncRows, ResyncBytes int64
	// Refetches counts rows whose failed gather fetch was re-routed to a
	// surviving owner and completed.
	Refetches int64
	// RecoveryWall is the wall clock spent inside failover and re-routing
	// (recovery latency; excludes the transport layer's own redial backoff).
	RecoveryWall time.Duration
}

// failoverState is one immutable ownership overlay: rows whose base owner
// is dead spread uniformly over the survivors. Swapped in atomically so the
// hot-path Owner read never takes a lock.
type failoverState struct {
	dead      []bool
	survivors []int32
}

func (st *failoverState) route(base int, row int32) int {
	if st == nil || !st.dead[base] {
		return base
	}
	return int(st.survivors[uint32(row)%uint32(len(st.survivors))])
}

// failoverPart wraps the configured Partitioner with the failover overlay.
// Installed by SetRecovery(RecoverAdopt) before any table registers, so
// ownership reads are overlay-aware from the start and failover is a single
// atomic pointer swap — no lock ever appears on the Owner hot path.
type failoverPart struct {
	base  Partitioner
	state atomic.Pointer[failoverState]
}

func (f *failoverPart) Owner(table int, row int32) int {
	return f.state.Load().route(f.base.Owner(table, row), row)
}

func (f *failoverPart) ownerWith(st *failoverState, table int, row int32) int {
	return st.route(f.base.Owner(table, row), row)
}

func (f *failoverPart) Nodes() int   { return f.base.Nodes() }
func (f *failoverPart) Name() string { return f.base.Name() }

// SetRecovery arms the recovery policy. Like SetTransport it must run on a
// fresh service — before tables register — so ownership routing and the
// initial shard sync agree from the first row.
func (s *Service) SetRecovery(cfg RecoveryConfig) {
	s.mu.Lock()
	registered := len(s.tables)
	s.mu.Unlock()
	if registered > 0 {
		panic("shard: SetRecovery after tables were registered; arm recovery on a fresh service")
	}
	if cfg.MaxFailovers == 0 {
		cfg.MaxFailovers = s.cfg.Nodes - 1
	}
	s.recovery = cfg
	s.deadNodes = make([]bool, s.cfg.Nodes)
	if cfg.Policy == RecoverAdopt {
		fp := &failoverPart{base: s.part}
		s.part = fp
		s.failPart = fp
	}
}

// Recovery returns the armed recovery configuration.
func (s *Service) Recovery() RecoveryConfig { return s.recovery }

// PeerHealth snapshots per-peer fabric health — the primary observability
// surface for a resilient fabric (nil on transports without a recovery
// layer). Ordered by node id.
func (s *Service) PeerHealth() []PeerHealth {
	if rt, ok := s.tr.(*ResilientTransport); ok {
		return rt.PeerHealth()
	}
	return nil
}

// RecoveryStats snapshots the recovery subsystem's counters.
func (s *Service) RecoveryStats() RecoveryStats {
	s.recStatsMu.Lock()
	defer s.recStatsMu.Unlock()
	return s.recStats
}

// DeadNodes returns the nodes adopted away by failover, in id order.
func (s *Service) DeadNodes() []int {
	s.recoverMu.Lock()
	defer s.recoverMu.Unlock()
	var out []int
	for n, d := range s.deadNodes {
		if d {
			out = append(out, n)
		}
	}
	return out
}

// adoptable reports whether a fabric failure should trigger shard adoption:
// the adopt policy is armed and the error is dead-peer-class (not an
// application error, not a closing fabric).
func (s *Service) adoptable(err error) bool {
	return s.recovery.Policy == RecoverAdopt &&
		errors.Is(err, ErrPeerDead) && !errors.Is(err, ErrClosed)
}

// recoverFetch re-routes one failed per-owner fetch after shard adoption:
// fail the dead owner over, re-group the rows by their post-failover owners
// and re-fetch. Bounded rounds cover cascading failures (a re-routed fetch
// landing on another dying peer). Returns nil when every row landed —
// recovery succeeded and no fabric error is recorded.
func (s *Service) recoverFetch(table, owner int, rows []int32, st *Staging, local FetchFunc, cause error) error {
	if !s.adoptable(cause) {
		return cause
	}
	start := time.Now() //hotline:allow detorder measured recovery wall; never feeds math
	defer func() {
		s.noteRecoveryWall(time.Since(start)) //hotline:allow detorder measured recovery wall; never feeds math
	}()
	pending := rows
	deadOwner := owner
	err := cause
	for round := 0; round < s.cfg.Nodes; round++ {
		if ferr := s.failoverDead(deadOwner); ferr != nil {
			return fmt.Errorf("failover of node %d: %w", deadOwner, ferr)
		}
		// Re-group by post-failover owner. Recovery path: allocation is fine.
		byOwner := make([][]int32, s.cfg.Nodes)
		for _, r := range pending {
			o := s.Owner(table, r)
			byOwner[o] = append(byOwner[o], r)
		}
		pending = pending[:0:0]
		err = nil
		for o, rs := range byOwner {
			if len(rs) == 0 {
				continue
			}
			if ferr := s.tr.Fetch(table, o, rs, st, local); ferr != nil {
				if !s.adoptable(ferr) {
					return ferr
				}
				pending = append(pending, rs...)
				deadOwner, err = o, ferr
				continue
			}
			s.noteRefetch(int64(len(rs)))
		}
		if len(pending) == 0 {
			return nil
		}
	}
	return err
}

// recoverPush is recoverFetch for the scatter direction: after adoption the
// failed rows re-group by their new owners and push again (idempotent —
// pushes carry absolute mirror values).
func (s *Service) recoverPush(table, owner int, rows []int32, src RowAt, cause error) error {
	if !s.adoptable(cause) {
		return cause
	}
	start := time.Now() //hotline:allow detorder measured recovery wall; never feeds math
	defer func() {
		s.noteRecoveryWall(time.Since(start)) //hotline:allow detorder measured recovery wall; never feeds math
	}()
	pending := rows
	deadOwner := owner
	err := cause
	for round := 0; round < s.cfg.Nodes; round++ {
		if ferr := s.failoverDead(deadOwner); ferr != nil {
			return fmt.Errorf("failover of node %d: %w", deadOwner, ferr)
		}
		byOwner := make([][]int32, s.cfg.Nodes)
		for _, r := range pending {
			o := s.Owner(table, r)
			byOwner[o] = append(byOwner[o], r)
		}
		pending = pending[:0:0]
		err = nil
		for o, rs := range byOwner {
			if len(rs) == 0 {
				continue
			}
			if ferr := s.tr.Push(table, o, rs, src); ferr != nil {
				if !s.adoptable(ferr) {
					return ferr
				}
				pending = append(pending, rs...)
				deadOwner, err = o, ferr
				continue
			}
		}
		if len(pending) == 0 {
			return nil
		}
	}
	return err
}

// failoverDead fails one unrecoverable peer over to the survivors:
// recompute the ownership overlay without it, push every row that moves to
// its new owner (current mirror bits — the authoritative values), and only
// then swap the overlay in, so a concurrent plan can never route a fetch to
// a node that does not hold the row yet. Single-flight and idempotent: a
// second caller for the same peer finds it already failed over and returns
// nil. Commit is all-or-nothing — a migration push failure leaves the old
// overlay in place (the caller's bounded rounds will fail the pushed-to
// peer over too and re-enter).
func (s *Service) failoverDead(dead int) error {
	s.recoverMu.Lock()
	defer s.recoverMu.Unlock()
	if s.recovery.Policy != RecoverAdopt || s.failPart == nil {
		return fmt.Errorf("%w: shard adoption not armed", ErrFabricConfig)
	}
	if dead < 0 || dead >= s.cfg.Nodes {
		return fmt.Errorf("%w: failover of unknown node %d", ErrFabricConfig, dead)
	}
	if s.deadNodes[dead] {
		return nil
	}
	failed := 0
	for _, d := range s.deadNodes {
		if d {
			failed++
		}
	}
	if failed >= s.recovery.MaxFailovers {
		return fmt.Errorf("%w: node %d dead but failover budget (%d) is spent", ErrPeerDead, dead, s.recovery.MaxFailovers)
	}
	newDead := make([]bool, s.cfg.Nodes)
	copy(newDead, s.deadNodes)
	newDead[dead] = true
	var survivors []int32
	for n := 0; n < s.cfg.Nodes; n++ {
		if !newDead[n] {
			survivors = append(survivors, int32(n))
		}
	}
	if len(survivors) == 0 {
		return fmt.Errorf("%w: node %d was the last node standing", ErrPeerDead, dead)
	}
	oldState := s.failPart.state.Load()
	newState := &failoverState{dead: newDead, survivors: survivors}

	s.mu.Lock()
	tables := append([]tableReg(nil), s.tables...)
	s.mu.Unlock()

	// Migrate before swapping: every row whose owner changes is pushed to
	// its new owner first, so the overlay only ever routes to nodes that
	// hold the row.
	var migRows, migBytes int64
	for _, t := range tables {
		byOwner := make([][]int32, s.cfg.Nodes)
		for r := 0; r < t.rows; r++ {
			row := int32(r)
			oldO := s.failPart.ownerWith(oldState, t.table, row)
			newO := s.failPart.ownerWith(newState, t.table, row)
			if oldO != newO {
				byOwner[newO] = append(byOwner[newO], row)
			}
		}
		for o, rs := range byOwner {
			if len(rs) == 0 {
				continue
			}
			if err := s.tr.Push(t.table, o, rs, t.src); err != nil {
				return fmt.Errorf("migrating %d rows of table %d to node %d: %w", len(rs), t.table, o, err)
			}
			migRows += int64(len(rs))
			migBytes += int64(len(rs)) * int64(t.dim) * 4
		}
	}

	s.failPart.state.Store(newState)
	s.deadNodes[dead] = true
	s.recStatsMu.Lock()
	s.recStats.Adoptions++
	s.recStats.MigratedRows += migRows
	s.recStats.MigratedBytes += migBytes
	s.recStatsMu.Unlock()
	return nil
}

// resyncOwner restores a revived peer's shard from the coordinator mirror:
// every row the peer currently owns is pushed with its authoritative bits.
// Wired into the ResilientTransport by SetTransport; runs under the
// transport's per-peer write lock (no fetch can observe the half-restored
// store) and pushes through the direct inner transport so it cannot recurse
// into the retry layer.
func (s *Service) resyncOwner(owner int, direct Transport) error {
	s.mu.Lock()
	tables := append([]tableReg(nil), s.tables...)
	s.mu.Unlock()
	var rrows, rbytes int64
	for _, t := range tables {
		var rows []int32
		for r := 0; r < t.rows; r++ {
			if s.Owner(t.table, int32(r)) == owner {
				rows = append(rows, int32(r))
			}
		}
		if len(rows) == 0 {
			continue
		}
		if err := direct.Push(t.table, owner, rows, t.src); err != nil {
			return fmt.Errorf("resync of table %d (%d rows) to node %d: %w", t.table, len(rows), owner, err)
		}
		rrows += int64(len(rows))
		rbytes += int64(len(rows)) * int64(t.dim) * 4
	}
	s.recStatsMu.Lock()
	s.recStats.ResyncRows += rrows
	s.recStats.ResyncBytes += rbytes
	s.recStatsMu.Unlock()
	return nil
}

func (s *Service) noteRefetch(rows int64) {
	s.recStatsMu.Lock()
	s.recStats.Refetches += rows
	s.recStatsMu.Unlock()
}

func (s *Service) noteRecoveryWall(d time.Duration) {
	s.recStatsMu.Lock()
	s.recStats.RecoveryWall += d
	s.recStatsMu.Unlock()
}
