//hotline:typed-errors

package conformance

import (
	"testing"
	"time"

	"hotline/internal/model"
	"hotline/internal/shard"
	"hotline/internal/shard/chaos"
	"hotline/internal/train"
)

// RecoverySuite: the fault-recovery contracts of the resilient fabric,
// driven by a deterministic chaos schedule against real killable node
// processes.
//
//   - KillRedial: a peer is killed mid-training and restarted on a new
//     address; the transport re-dials, resyncs the empty store from the
//     mirror, and the run's losses and final parameters are bit-identical
//     to the fault-free single-node reference.
//   - KillAdopt: a peer is killed and never returns; past the retry budget
//     the survivors adopt its shard (rows migrated from the authoritative
//     mirror, fetches re-routed) and the run is still bit-identical.
//   - ServeOutage: with a peer down, the serve read path answers from the
//     coordinator's warmed mirror (StaleServeRows counted, no errors) and
//     un-degrades by itself when the peer returns; train/serve counter
//     separation holds throughout.
//
// Bit-identity is exact: per-step losses compare with ==, parameters with
// model.MaxStateDiff == 0. The grid runs nodes {2,4,8} × depths {1,2,4} ×
// both placements (subset under -short), and the package's tests run it
// under -race.

// recoveryGrid returns the (nodes, depth) cells for the current test mode.
func recoveryGrid(short bool) (nodes, depths []int) {
	if short {
		return []int{2, 4}, []int{1, 2}
	}
	return []int{2, 4, 8}, []int{1, 2, 4}
}

// redialRetry is the retry policy of the restart scenarios: generous
// re-dial attempts with the default doubling backoff, so a peer whose
// restart takes tens of milliseconds (or a loaded -race machine) is always
// re-acquired well inside the budget.
func redialRetry() shard.RetryConfig {
	return shard.RetryConfig{MaxRedials: 40, Budget: 30 * time.Second}
}

// adoptRetry is the retry policy of the adoption scenarios: give up on the
// dead peer almost immediately (it is never coming back) so the run spends
// its time in failover, not in backoff.
func adoptRetry() shard.RetryConfig {
	return shard.RetryConfig{
		MaxAttempts: 1,
		MaxRedials:  2,
		Backoff:     func(int) time.Duration { return 0 },
	}
}

// suiteTimeout derives the fabric timeout from the test deadline (deflake
// contract: a hung socket fails the test loudly, never times the run out).
func suiteTimeout(tb testing.TB) time.Duration {
	if t, ok := tb.(*testing.T); ok {
		if d, ok := t.Deadline(); ok {
			if rem := time.Until(d) / 2; rem < shard.DefaultFabricTimeout {
				return rem
			}
		}
	}
	return shard.DefaultFabricTimeout
}

// trainChaos is trainOver against a chaos fabric: same probe stream, same
// executor, with the schedule ticked once per training window and the
// recovery policy armed.
func trainChaos(tb testing.TB, network string, nodes, depth int, part shard.Partitioner,
	policy shard.RecoveryPolicy, retry shard.RetryConfig, sched chaos.Schedule) runResult {
	tb.Helper()
	cfg := probeCfg()
	timeout := suiteTimeout(tb)
	fab, err := chaos.NewFabric(nodes, network, shard.FabricTimeouts{Dial: timeout, IO: timeout})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { fab.Close() })
	rt, err := fab.Dial(retry)
	if err != nil {
		tb.Fatal(err)
	}
	fab.SetSchedule(sched)

	svc := shard.New(shard.Config{
		Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		Part: part,
	}, nil)
	svc.SetRecovery(shard.RecoveryConfig{Policy: policy})
	svc.SetTransport(rt)
	defer func() {
		if err := svc.Close(); err != nil {
			tb.Fatalf("service close: %v", err)
		}
	}()

	t := train.NewHotlineSharded(model.New(cfg, probeSeed), 0.1, svc)
	t.OverlapGather = true
	t.Depth = depth
	t.LearnSamples = probeLearn
	batches := probeBatches(cfg)
	svc.ResetStats()
	res := runResult{m: t.M}
	for i := range batches {
		fab.Tick(i)
		end := i + depth
		if end > len(batches) {
			end = len(batches)
		}
		res.losses = append(res.losses, t.StepLookahead(batches[i], batches[i+1:end]))
	}
	res.stats = svc.Snapshot()
	if g := svc.Gatherer(); g != nil {
		res.over = g.Stats()
	}
	if err := svc.FabricErr(); err != nil {
		tb.Fatalf("fabric error after recovered run (nodes=%d depth=%d policy=%v): %v",
			nodes, depth, policy, err)
	}
	return res
}

// RunRecovery executes the recovery contract suite on one socket family.
func RunRecovery(t *testing.T, network string) {
	cfg := probeCfg()

	// Fault-free single-node reference: the bar every recovered run must
	// clear bit-for-bit.
	ref := train.NewHotline(model.New(cfg, probeSeed), 0.1)
	ref.LearnSamples = probeLearn
	var refLosses []float64
	for _, b := range probeBatches(cfg) {
		refLosses = append(refLosses, ref.Step(b))
	}

	assertBitIdentical := func(t *testing.T, res runResult) {
		t.Helper()
		for i, l := range res.losses {
			if l != refLosses[i] {
				t.Fatalf("iter %d loss %v, fault-free reference %v", i, l, refLosses[i])
			}
		}
		if d := model.MaxStateDiff(ref.M, res.m); d != 0 {
			t.Fatalf("parameters diverged from fault-free reference: max diff %g", d)
		}
	}

	nodesGrid, depthsGrid := recoveryGrid(testing.Short())

	// KillRedial: SIGTERM-equivalent kill at window 1 (mid-pipeline for
	// depth > 1 — the windows prefetched at window 0 are still open),
	// restart on a new port shortly after; training must converge
	// bit-identically through the outage.
	t.Run("KillRedial", func(t *testing.T) {
		for _, nodes := range nodesGrid {
			for _, depth := range depthsGrid {
				for _, placement := range []string{"rr", "hot"} {
					nodes, depth, placement := nodes, depth, placement
					t.Run(formatCell(nodes, depth, placement), func(t *testing.T) {
						var part shard.Partitioner
						if placement == "hot" {
							part = hotAwarePart(cfg, nodes)
						}
						sched := chaos.KillRestart(nodes-1, 1, 10*time.Millisecond)
						res := trainChaos(t, network, nodes, depth, part,
							shard.RecoverRedial, redialRetry(), sched)
						assertBitIdentical(t, res)
						if res.stats.GatherBytes == 0 {
							t.Fatalf("no fabric traffic accounted: %+v", res.stats)
						}
					})
				}
			}
		}
	})

	// KillAdopt: the peer never comes back; the survivors must adopt its
	// shard and finish the run bit-identically.
	t.Run("KillAdopt", func(t *testing.T) {
		for _, nodes := range nodesGrid {
			for _, depth := range depthsGrid {
				for _, placement := range []string{"rr", "hot"} {
					nodes, depth, placement := nodes, depth, placement
					t.Run(formatCell(nodes, depth, placement), func(t *testing.T) {
						var part shard.Partitioner
						if placement == "hot" {
							part = hotAwarePart(cfg, nodes)
						}
						sched := chaos.Kill(nodes-1, 1)
						res := trainChaos(t, network, nodes, depth, part,
							shard.RecoverAdopt, adoptRetry(), sched)
						assertBitIdentical(t, res)
					})
				}
			}
		}
	})

	t.Run("ServeOutage", func(t *testing.T) { runServeOutage(t, network) })
}

// runServeOutage drives the graceful-degradation contract: rows served
// during the outage come from the mirror with StaleServeRows counted and no
// errors; after the peer restarts, serving un-degrades and mixed
// train+serve traffic behaves exactly as on a healthy fabric.
func runServeOutage(t *testing.T, network string) {
	const nodes, rows, dim = 4, 64, 8
	fab, err := chaos.NewFabric(nodes, network, shard.FabricTimeouts{Dial: suiteTimeout(t), IO: suiteTimeout(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	rt, err := fab.Dial(redialRetry())
	if err != nil {
		t.Fatal(err)
	}

	svc := shard.New(shard.Config{Nodes: nodes, CacheBytes: 0, RowBytes: dim * 4}, nil)
	svc.SetRecovery(shard.RecoveryConfig{Policy: shard.RecoverRedial})
	svc.SetTransport(rt)
	defer svc.Close()
	g := svc.EnableAsyncGather()
	store := make([][]float32, rows)
	for r := range store {
		store[r] = make([]float32, dim)
		for k := range store[r] {
			store[r][k] = float32(r*100 + k)
		}
	}
	fetch := func(row int32, dst []float32) { copy(dst, store[row]) }
	svc.RegisterTable(0, dim, rows, func(row int32) []float32 { return store[row] })
	if err := svc.FabricErr(); err != nil {
		t.Fatalf("initial shard sync: %v", err)
	}

	// Rows 1, 5, 9 are owned by node 1 under round-robin; requested by
	// batch position 0 (node 0) they must cross the fabric.
	serveIdx := [][]int32{{1, 5, 9}}
	serveOnce := func() *shard.Staging {
		plan := svc.PlanServeGather(0, serveIdx)
		if plan == nil {
			t.Fatal("serve plan needed no fabric fetches")
		}
		st := svc.ServeGatherSync(plan, dim, fetch)
		for _, row := range serveIdx[0] {
			if v, ok := st.Lookup(row); ok {
				if want := float32(row * 100); v[0] != want {
					t.Fatalf("served row %d = %v want %v", row, v[0], want)
				}
			}
		}
		return st
	}

	// Healthy baseline.
	g.Release(serveOnce())
	if n := svc.ServeSnapshot().StaleServeRows; n != 0 {
		t.Fatalf("healthy serve counted %d stale rows", n)
	}

	// Outage: node 1 down, no restart yet. Serving keeps answering — from
	// the mirror — and counts every owed row stale.
	fab.Kill(1)
	g.Release(serveOnce())
	stale := svc.ServeSnapshot().StaleServeRows
	if stale != int64(len(serveIdx[0])) {
		t.Fatalf("outage serve counted %d stale rows, want %d", stale, len(serveIdx[0]))
	}
	if err := svc.FabricErr(); err != nil {
		t.Fatalf("degraded serve recorded a fabric error: %v", err)
	}
	if svc.Snapshot().StaleServeRows != 0 {
		t.Fatal("stale serve rows leaked into the training counters")
	}

	// Recovery: the peer restarts on a new address; the next serve gather's
	// probe re-dials and resyncs it, and the stale counter stops moving.
	if err := fab.Restart(1); err != nil {
		t.Fatal(err)
	}
	g.Release(serveOnce())
	if got := svc.ServeSnapshot().StaleServeRows; got != stale {
		t.Fatalf("StaleServeRows grew to %d after the peer returned", got)
	}
	if h := svc.PeerHealth()[1]; h.State != shard.PeerAlive || h.Redials < 1 {
		t.Fatalf("peer 1 health after return = %+v", h)
	}

	// Post-recovery mixed train+serve separation, as on a healthy fabric:
	// a training gather moves training counters only.
	trainBefore := svc.Snapshot()
	serveBefore := svc.ServeSnapshot()
	trainIdx := [][]int32{{2, 6, 10}}
	if plan := svc.PlanGather(0, trainIdx); plan != nil {
		st := g.GatherSync(plan, dim, fetch)
		g.Release(st)
	}
	if got := svc.ServeSnapshot(); got.WithoutWall() != serveBefore.WithoutWall() {
		t.Fatalf("post-recovery training leaked into serve counters:\n got %+v\nwas %+v", got, serveBefore)
	}
	if got := svc.Snapshot(); got.WithoutWall() == trainBefore.WithoutWall() {
		t.Fatal("post-recovery training moved no training counters")
	}
	if err := svc.FabricErr(); err != nil {
		t.Fatal(err)
	}
}
