package conformance

import (
	"testing"

	"hotline/internal/shard"
)

func socketSuite(network string) Suite {
	return Suite{
		Name: network,
		NewTransport: func(tb testing.TB, nodes int) shard.Transport {
			f, err := shard.StartLocalFabric(nodes, network, suiteTimeout(tb), nil)
			if err != nil {
				tb.Fatalf("start %s fabric: %v", network, err)
			}
			tb.Cleanup(func() { f.Close() })
			return f.Transport
		},
	}
}

func TestConformanceInproc(t *testing.T) {
	Run(t, Suite{
		Name: "inproc",
		NewTransport: func(tb testing.TB, nodes int) shard.Transport {
			return shard.NewInproc()
		},
	})
}

func TestConformanceUnix(t *testing.T) {
	Run(t, socketSuite("unix"))
}

func TestConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("unix sockets only in -short (CI deflake contract)")
	}
	Run(t, socketSuite("tcp"))
}

func TestConformanceFaultsUnix(t *testing.T) {
	RunFaults(t, "unix")
}

func TestConformanceFaultsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("unix sockets only in -short (CI deflake contract)")
	}
	RunFaults(t, "tcp")
}

func TestRecoveryUnix(t *testing.T) {
	RunRecovery(t, "unix")
}

func TestRecoveryTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("unix sockets only in -short (CI deflake contract)")
	}
	RunRecovery(t, "tcp")
}
