package conformance

import (
	"testing"
	"time"

	"hotline/internal/shard"
)

// suiteTimeout derives the fabric timeout from the test deadline (deflake
// contract: a hung socket fails the test loudly, never times the run out).
func suiteTimeout(tb testing.TB) time.Duration {
	if t, ok := tb.(*testing.T); ok {
		if d, ok := t.Deadline(); ok {
			if rem := time.Until(d) / 2; rem < shard.DefaultFabricTimeout {
				return rem
			}
		}
	}
	return shard.DefaultFabricTimeout
}

func socketSuite(network string) Suite {
	return Suite{
		Name: network,
		NewTransport: func(tb testing.TB, nodes int) shard.Transport {
			f, err := shard.StartLocalFabric(nodes, network, suiteTimeout(tb), nil)
			if err != nil {
				tb.Fatalf("start %s fabric: %v", network, err)
			}
			tb.Cleanup(func() { f.Close() })
			return f.Transport
		},
	}
}

func TestConformanceInproc(t *testing.T) {
	Run(t, Suite{
		Name: "inproc",
		NewTransport: func(tb testing.TB, nodes int) shard.Transport {
			return shard.NewInproc()
		},
	})
}

func TestConformanceUnix(t *testing.T) {
	Run(t, socketSuite("unix"))
}

func TestConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("unix sockets only in -short (CI deflake contract)")
	}
	Run(t, socketSuite("tcp"))
}

func TestConformanceFaultsUnix(t *testing.T) {
	RunFaults(t, "unix")
}

func TestConformanceFaultsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("unix sockets only in -short (CI deflake contract)")
	}
	RunFaults(t, "tcp")
}
