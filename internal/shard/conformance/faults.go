package conformance

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
	"hotline/internal/train"
)

// faultSpec selects a failure mode. All faults are inert until armed — the
// dial-time hello must succeed so the fault lands mid-operation, where real
// fabrics break.
type faultSpec struct {
	readDelay  time.Duration // slow peer: delay every armed read
	truncAfter int64         // >0: EOF after this many armed read bytes
	dropWrite  bool          // swallow armed writes (frames vanish in flight)
	dupWrite   bool          // send every armed frame twice
	corrupt    *atomic.Bool  // mangle the next armed read's first byte (the length prefix)
}

// faultConn wraps one peer connection with a faultSpec's failure mode.
type faultConn struct {
	net.Conn
	faultSpec
	armed     *atomic.Bool
	armedRead atomic.Int64
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.armed.Load() {
		if c.readDelay > 0 {
			time.Sleep(c.readDelay)
		}
		if c.truncAfter > 0 {
			rem := c.truncAfter - c.armedRead.Load()
			if rem <= 0 {
				return 0, io.EOF
			}
			if int64(len(p)) > rem {
				p = p[:rem]
			}
		}
	}
	n, err := c.Conn.Read(p)
	if c.armed.Load() {
		c.armedRead.Add(int64(n))
		if n > 0 && c.corrupt != nil && c.corrupt.CompareAndSwap(true, false) {
			p[0] |= 0xF0 // the length prefix's top byte: the frame turns oversized
		}
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.armed.Load() {
		if c.dropWrite {
			return len(p), nil
		}
		if c.dupWrite {
			if _, err := c.Conn.Write(p); err != nil {
				return 0, err
			}
		}
	}
	return c.Conn.Write(p)
}

// faultFabric starts a local fabric whose peer-0 connection is wrapped by
// the given template. The returned arm function activates the faults.
func faultFabric(t *testing.T, network string, timeout time.Duration, spec faultSpec) (*shard.LocalFabric, func()) {
	t.Helper()
	armed := &atomic.Bool{}
	f, err := shard.StartLocalFabric(2, network, timeout, func(owner int, c net.Conn) net.Conn {
		if owner != 0 {
			return c
		}
		return &faultConn{Conn: c, faultSpec: spec, armed: armed}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() { armed.Store(true) }
}

// seedRows pushes a deterministic table into node 0 before faults arm.
func seedRows(t *testing.T, f *shard.LocalFabric, rows []int32, dim int) shard.RowAt {
	t.Helper()
	src := patternRow(dim)
	if err := f.Transport.Push(0, 0, rows, src); err != nil {
		t.Fatalf("seed push: %v", err)
	}
	return src
}

func patternRow(dim int) shard.RowAt {
	buf := make([]float32, dim)
	return func(row int32) []float32 {
		for k := range buf {
			buf[k] = float32(row)*10 + float32(k)
		}
		return buf
	}
}

// fetchInto issues one Fetch of rows from owner 0 through a service-built
// staging buffer, returning the transport's error.
func fetchInto(t *testing.T, tr shard.Transport, rows []int32, dim int) error {
	t.Helper()
	svc := shard.New(shard.Config{Nodes: 2, CacheBytes: 0, RowBytes: int64(dim) * 4}, nil)
	g := svc.EnableAsyncGather()
	// Build an index set whose remote plan is exactly `rows` on owner 0:
	// batch position 1 (node 1) requesting rows owned by node 0 (even ids).
	idx := [][]int32{nil, rows}
	plan := svc.PlanGather(0, idx)
	if plan == nil {
		t.Fatal("fault probe plan is empty")
	}
	st := g.Ring().Staging(plan, dim)
	defer g.Release(st)
	return tr.Fetch(0, 0, rows, st, nil)
}

// RunFaults executes the fault-injection variants against a socket fabric
// on the given network ("unix" or "tcp"): dropped, duplicated, truncated
// and corrupted frames, a slow peer, and mid-window peer death. Every
// fault must surface as a typed fabric error — ErrPeerDead (wrapping the
// codec error where one applies) — without deadlocking, and must stay
// sticky so later operations fail fast.
func RunFaults(t *testing.T, network string) {
	const dim = 4
	evenRows := []int32{0, 2, 4, 6} // owned by node 0 under round-robin over 2 nodes

	t.Run("TruncatedFrame", func(t *testing.T) {
		f, arm := faultFabric(t, network, 0, faultSpec{truncAfter: 6})
		seedRows(t, f, evenRows, dim)
		arm()
		err := fetchInto(t, f.Transport, evenRows, dim)
		if !errors.Is(err, shard.ErrPeerDead) {
			t.Fatalf("truncated reply: got %v want ErrPeerDead", err)
		}
		// Sticky: the next operation fails fast with the same class.
		if err := f.Transport.Push(0, 0, evenRows, patternRow(dim)); !errors.Is(err, shard.ErrPeerDead) {
			t.Fatalf("push after truncation: got %v want ErrPeerDead", err)
		}
	})

	t.Run("CorruptLengthPrefix", func(t *testing.T) {
		corrupt := &atomic.Bool{}
		corrupt.Store(true)
		f, arm := faultFabric(t, network, 0, faultSpec{corrupt: corrupt})
		seedRows(t, f, evenRows, dim)
		arm()
		err := fetchInto(t, f.Transport, evenRows, dim)
		if !errors.Is(err, shard.ErrPeerDead) {
			t.Fatalf("corrupted prefix: got %v want ErrPeerDead", err)
		}
		if !errors.Is(err, shard.ErrFrameTooLarge) && !errors.Is(err, shard.ErrBadFrame) && !errors.Is(err, shard.ErrTruncatedFrame) {
			// The mangled prefix declares an absurd length; the codec error
			// class must survive the ErrPeerDead wrap.
			t.Fatalf("corrupted prefix lost its codec error: %v", err)
		}
	})

	t.Run("DroppedFrames", func(t *testing.T) {
		// Writes vanish: no reply ever comes, so the op must fail by
		// deadline rather than hang.
		f, arm := faultFabric(t, network, 300*time.Millisecond, faultSpec{dropWrite: true})
		seedRows(t, f, evenRows, dim)
		arm()
		start := time.Now()
		err := fetchInto(t, f.Transport, evenRows, dim)
		if !errors.Is(err, shard.ErrPeerDead) {
			t.Fatalf("dropped frame: got %v want ErrPeerDead", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("dropped frame took %v to surface (deadline not applied)", elapsed)
		}
	})

	t.Run("DuplicatedFrames", func(t *testing.T) {
		// Every request frame is sent twice: the node answers twice, the
		// first exchange reads the first reply cleanly, and the stale
		// duplicate must poison the NEXT exchange as a typed error.
		f, arm := faultFabric(t, network, 0, faultSpec{dupWrite: true})
		seedRows(t, f, evenRows, dim)
		arm()
		if err := fetchInto(t, f.Transport, evenRows, dim); err != nil {
			t.Fatalf("first fetch under duplication: %v", err)
		}
		err := f.Transport.Push(0, 0, evenRows, patternRow(dim))
		if !errors.Is(err, shard.ErrPeerDead) {
			t.Fatalf("exchange after duplicated frame: got %v want ErrPeerDead", err)
		}
	})

	t.Run("SlowPeer", func(t *testing.T) {
		// A slow peer under a generous deadline completes — late, not
		// deadlocked — and the delay shows up in the measured wall time.
		const delay = 20 * time.Millisecond
		f, arm := faultFabric(t, network, 0, faultSpec{readDelay: delay})
		seedRows(t, f, evenRows, dim)
		arm()
		start := time.Now()
		if err := fetchInto(t, f.Transport, evenRows, dim); err != nil {
			t.Fatalf("slow peer fetch: %v", err)
		}
		if time.Since(start) < delay {
			t.Fatalf("slow peer fetch returned before the injected delay")
		}
	})

	t.Run("MidWindowPeerDeath", func(t *testing.T) {
		// A node process dies while prefetch windows are in flight: the
		// training loop must keep stepping (no deadlock — the drainers
		// retire their jobs with the error recorded) and the service must
		// report ErrPeerDead.
		cfg := probeCfg()
		fab, err := shard.StartLocalFabric(2, network, 500*time.Millisecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer fab.Close()
		svc := shard.New(shard.Config{
			Nodes: 2, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		}, nil)
		svc.SetTransport(fab.Transport)
		defer svc.Close()
		tr := train.NewHotlineSharded(model.New(cfg, probeSeed), 0.1, svc)
		tr.OverlapGather = true
		tr.Depth = 2
		tr.LearnSamples = probeLearn
		gen := data.NewGenerator(cfg)
		batches := make([]*data.Batch, 4)
		for i := range batches {
			batches[i] = gen.NextBatch(probeBatch)
		}
		tr.StepLookahead(batches[0], batches[1:3])
		fab.Servers[1].Close() // the peer dies with window(s) open
		for i := 1; i < len(batches); i++ {
			end := i + 2
			if end > len(batches) {
				end = len(batches)
			}
			tr.StepLookahead(batches[i], batches[i+1:end])
		}
		if err := svc.FabricErr(); !errors.Is(err, shard.ErrPeerDead) {
			t.Fatalf("fabric error after peer death: got %v want ErrPeerDead", err)
		}
	})
}
