// Package conformance is the cross-transport invariant suite of the shard
// fabric: one table of contracts — training bit-parity against the
// single-node reference, exact traffic-counter equality with the in-proc
// fast path, depth-k window/repair determinism, serve/train counter
// separation, and clean shutdown with in-flight windows — executed
// identically against every registered Transport implementation, plus
// fault-injection variants (faults.go) asserting typed errors and no
// deadlock when a socket fabric misbehaves.
//
// A new Transport earns its place by passing Run; a socket-family transport
// additionally passes RunFaults. The suite is a library so external
// transport implementations can run it from their own tests.
package conformance

import (
	"fmt"
	"testing"

	"hotline/internal/data"
	"hotline/internal/model"
	"hotline/internal/shard"
	"hotline/internal/train"
)

// Suite describes one transport family under test.
type Suite struct {
	// Name labels the subtests ("inproc", "unix", "tcp").
	Name string
	// NewTransport returns a fresh transport (backed by a fresh fabric) for
	// one run at the given node count. Implementations register teardown on
	// tb. A nil func (or nil return) selects the service's default in-proc
	// fast path.
	NewTransport func(tb testing.TB, nodes int) shard.Transport
}

// probeCfg is the functional probe every invariant trains: the real Criteo
// access stream shape, down-sampled, with shrunken MLPs — the fabric
// traffic is untouched, the arithmetic is cheap.
func probeCfg() data.Config {
	cfg := data.CriteoKaggle()
	// The stream must outlast the probe (probeIters × probeBatch) — a
	// cycled generator replays already-learned samples, every input
	// classifies popular, and the popular/non-popular split degenerates.
	cfg.Samples = 2048
	cfg.BotMLP = []int{cfg.BotMLP[0], 32, cfg.EmbedDim}
	cfg.TopMLP = []int{32, 1}
	return cfg
}

const (
	probeSeed  = 42
	probeIters = 4
	// probeBatch must be large enough that post-learning batches mix
	// popular and non-popular inputs (an input is popular iff ALL its
	// indices are EAL-tracked, so small batches classify all-or-nothing
	// and the prefetch pipeline would never engage).
	probeBatch = 256
	// probeLearn ends the EAL learning phase after the first batch so the
	// prefetch pipeline actually engages within the probe's short stream.
	// Both sides of every parity comparison share it (segregation order is
	// part of the executor's identity).
	probeLearn = probeBatch
)

// probeBatches replays the probe's deterministic stream.
func probeBatches(cfg data.Config) []*data.Batch {
	gen := data.NewGenerator(cfg)
	bs := make([]*data.Batch, probeIters)
	for i := range bs {
		bs[i] = gen.NextBatch(probeBatch)
	}
	return bs
}

// runResult is one sharded training run's evidence.
type runResult struct {
	losses []float64
	m      *model.Model
	stats  shard.Stats
	over   shard.OverlapStats
}

// trainOver runs the pipelined Hotline executor over a sharded service with
// the given transport, node count, depth and partitioner, on the probe's
// fixed stream.
func trainOver(tb testing.TB, s Suite, cfg data.Config, nodes, depth int, part shard.Partitioner) runResult {
	tb.Helper()
	svc := shard.New(shard.Config{
		Nodes: nodes, CacheBytes: 64 << 10, RowBytes: int64(cfg.EmbedDim) * 4,
		Part: part,
	}, nil)
	if s.NewTransport != nil {
		if tr := s.NewTransport(tb, nodes); tr != nil {
			svc.SetTransport(tr)
		}
	}
	defer func() {
		if err := svc.Close(); err != nil {
			tb.Fatalf("service close: %v", err)
		}
	}()
	t := train.NewHotlineSharded(model.New(cfg, probeSeed), 0.1, svc)
	t.OverlapGather = true
	t.Depth = depth
	t.LearnSamples = probeLearn
	batches := probeBatches(cfg)
	svc.ResetStats()
	res := runResult{m: t.M}
	for i := range batches {
		end := i + depth
		if end > len(batches) {
			end = len(batches)
		}
		res.losses = append(res.losses, t.StepLookahead(batches[i], batches[i+1:end]))
	}
	res.stats = svc.Snapshot()
	if g := svc.Gatherer(); g != nil {
		res.over = g.Stats()
	}
	if err := svc.FabricErr(); err != nil {
		tb.Fatalf("fabric error after run (nodes=%d depth=%d): %v", nodes, depth, err)
	}
	return res
}

// hotAwarePart builds the hot-aware placement from the probe's own stream
// (every observed row pinned to its dominant requester).
func hotAwarePart(cfg data.Config, nodes int) shard.Partitioner {
	rc := shard.NewRequestCounter(nodes)
	for _, b := range probeBatches(cfg) {
		for t := range b.Sparse {
			rc.Observe(t, b.Sparse[t])
		}
	}
	return rc.HotAware(nil)
}

// Run executes the invariant table against the suite's transport family.
func Run(t *testing.T, s Suite) {
	cfg := probeCfg()

	// The single-node reference: the unsharded executor on the identical
	// stream. Every (nodes, depth, placement) cell must reproduce its
	// parameters bit-for-bit and its losses exactly.
	ref := train.NewHotline(model.New(cfg, probeSeed), 0.1)
	ref.LearnSamples = probeLearn
	var refLosses []float64
	for _, b := range probeBatches(cfg) {
		refLosses = append(refLosses, ref.Step(b))
	}

	t.Run("TrainingParity", func(t *testing.T) {
		for _, nodes := range []int{2, 4, 8} {
			for _, depth := range []int{1, 2, 4} {
				for _, placement := range []string{"rr", "hot"} {
					nodes, depth, placement := nodes, depth, placement
					name := formatCell(nodes, depth, placement)
					t.Run(name, func(t *testing.T) {
						var part shard.Partitioner
						if placement == "hot" {
							part = hotAwarePart(cfg, nodes)
						}
						res := trainOver(t, s, cfg, nodes, depth, part)
						for i, l := range res.losses {
							if l != refLosses[i] {
								t.Fatalf("iter %d loss %v, single-node reference %v", i, l, refLosses[i])
							}
						}
						if d := model.MaxStateDiff(ref.M, res.m); d != 0 {
							t.Fatalf("parameters diverged from single-node reference: max diff %g", d)
						}
						if res.stats.GatherBytes == 0 || res.stats.ScatterBytes == 0 {
							t.Fatalf("no fabric traffic accounted: %+v", res.stats)
						}
						if depth > 1 && res.over.Windows == 0 {
							t.Fatalf("depth %d ran no prefetch windows: %+v", depth, res.over)
						}
					})
				}
			}
		}
	})

	t.Run("CounterEqualityWithInproc", func(t *testing.T) {
		// The transport must not change WHAT is accounted, only how the
		// bytes move: every traffic counter must equal the in-proc path's,
		// wall clocks aside.
		inproc := Suite{Name: "inproc"}
		for _, nodes := range []int{2, 4} {
			want := trainOver(t, inproc, cfg, nodes, 2, nil).stats.WithoutWall()
			got := trainOver(t, s, cfg, nodes, 2, nil).stats.WithoutWall()
			if got != want {
				t.Fatalf("nodes=%d: counters diverged from in-proc:\n got %+v\nwant %+v", nodes, got, want)
			}
		}
	})

	t.Run("DepthDeterminism", func(t *testing.T) {
		// The depth-k window ring with dirty-row repair must be
		// bit-deterministic in k over the transport.
		base := trainOver(t, s, cfg, 2, 1, nil)
		for _, depth := range []int{2, 4} {
			res := trainOver(t, s, cfg, 2, depth, nil)
			if d := model.MaxStateDiff(base.m, res.m); d != 0 {
				t.Fatalf("depth %d diverged from depth 1: max diff %g", depth, d)
			}
			if res.over.Windows == 0 {
				t.Fatalf("depth %d: no windows issued", depth)
			}
		}
	})

	t.Run("ServeTrainSeparation", func(t *testing.T) { runServeSeparation(t, s) })
	t.Run("CleanShutdown", func(t *testing.T) { runCleanShutdown(t, s) })
}

func formatCell(nodes, depth int, placement string) string {
	return fmt.Sprintf("n%d_d%d_%s", nodes, depth, placement)
}

// fabricFixture is a bare service + registered table over the suite's
// transport, for the invariants that drive the shard layer directly.
type fabricFixture struct {
	svc   *shard.Service
	g     *shard.AsyncGatherer
	store [][]float32
	fetch shard.FetchFunc
	dim   int
}

func newFabricFixture(tb testing.TB, s Suite, nodes, rows, dim int) *fabricFixture {
	tb.Helper()
	f := &fabricFixture{dim: dim}
	// Pure remote (no device caches): every remote row crosses the fabric,
	// and the cache layer cannot leak state between the serve and train
	// probes below.
	f.svc = shard.New(shard.Config{Nodes: nodes, CacheBytes: 0, RowBytes: int64(dim) * 4}, nil)
	if s.NewTransport != nil {
		if tr := s.NewTransport(tb, nodes); tr != nil {
			f.svc.SetTransport(tr)
		}
	}
	f.g = f.svc.EnableAsyncGather()
	f.store = make([][]float32, rows)
	for r := range f.store {
		f.store[r] = make([]float32, dim)
		for k := range f.store[r] {
			f.store[r][k] = float32(r*100 + k)
		}
	}
	f.fetch = func(row int32, dst []float32) { copy(dst, f.store[row]) }
	f.svc.RegisterTable(0, dim, rows, func(row int32) []float32 { return f.store[row] })
	if err := f.svc.FabricErr(); err != nil {
		tb.Fatalf("initial shard sync: %v", err)
	}
	return f
}

func runServeSeparation(t *testing.T, s Suite) {
	f := newFabricFixture(t, s, 4, 64, 8)
	defer f.svc.Close()

	trainIdx := [][]int32{{1, 5}, {2, 6}, {3, 7}, {4, 8}}
	if plan := f.svc.PlanGather(0, trainIdx); plan != nil {
		st := f.g.GatherSync(plan, f.dim, f.fetch)
		f.g.Release(st)
	}
	train := f.svc.Snapshot()
	if train.Lookups == 0 {
		t.Fatal("train probe recorded nothing")
	}

	serveIdx := [][]int32{{9, 13}, {10, 14}, {11, 15}, {12, 16}}
	if plan := f.svc.PlanServeGather(0, serveIdx); plan != nil {
		st := f.svc.ServeGatherSync(plan, f.dim, f.fetch)
		for _, row := range []int32{9, 13} {
			if v, ok := st.Lookup(row); ok {
				if want := float32(row * 100); v[0] != want {
					t.Fatalf("served row %d = %v want %v", row, v[0], want)
				}
			}
		}
		f.g.Release(st)
	}
	serve := f.svc.ServeSnapshot()
	if serve.Lookups == 0 {
		t.Fatal("serve probe recorded nothing")
	}
	if f.svc.Multiproc() && serve.GatherWall == 0 {
		t.Fatal("multiproc serve read crossed no measured fabric")
	}
	if got := f.svc.Snapshot(); got != train {
		t.Fatalf("serve traffic leaked into training counters:\n got %+v\nwas %+v", got, train)
	}
	if err := f.svc.FabricErr(); err != nil {
		t.Fatal(err)
	}
}

func runCleanShutdown(t *testing.T, s Suite) {
	f := newFabricFixture(t, s, 4, 32, 8)
	idx := [][]int32{{1, 2}, {5, 6}}
	q := f.svc.NewWindowQueue(0)
	plan := f.svc.PlanGather(0, idx)
	if plan == nil {
		t.Fatal("probe plan needed no fabric fetches")
	}
	h := f.g.Submit(plan, f.dim, f.fetch)
	q.Push(idx, h)

	// Close with the window still open — twice, concurrently would also be
	// legal (covered by the shard package's own lifecycle test); the
	// contract here is that the in-flight window survives.
	if err := f.svc.Close(); err != nil {
		t.Fatalf("close with open window: %v", err)
	}
	w := q.Match(idx)
	if w == nil {
		t.Fatal("open window lost across Close")
	}
	st := q.Consume(w, f.fetch)
	if st == nil {
		t.Fatal("no staging after Close")
	}
	// Rows 1 and 2 are requested by batch position 0 (node 0) and owned by
	// nodes 1 and 2 under round-robin — both must have crossed the fabric.
	for _, row := range []int32{1, 2} {
		v, ok := st.Lookup(row)
		if !ok {
			t.Fatalf("remote row %d not staged", row)
		}
		if want := float32(row * 100); v[0] != want {
			t.Fatalf("row %d = %v want %v", row, v[0], want)
		}
	}
	f.g.Release(st)
	q.Recycle(w)
	if err := f.svc.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := f.svc.FabricErr(); err != nil {
		t.Fatal(err)
	}
}
