package shard

import (
	"testing"

	"hotline/internal/tensor"
)

// quantTable is a little authoritative row store for quant-path tests: rows
// deterministic, values chosen so the int8 round trip is lossy (the staged
// value must visibly differ from the exact row).
type quantTable struct {
	dim int
}

func (qt quantTable) row(row int32) []float32 {
	v := make([]float32, qt.dim)
	for k := range v {
		v[k] = float32(row)*1.7 + float32(k)*0.313 + 0.111
	}
	return v
}

func (qt quantTable) fetch(row int32, dst []float32) {
	for k := range dst {
		dst[k] = float32(row)*1.7 + float32(k)*0.313 + 0.111
	}
}

// TestQuantizedHitServesFusedRoundTrip: a warm-tier row's staged value must
// be exactly dequantize(quantize(current row)) — the fused kernel's output —
// from its FIRST touch: the serving width is a pure policy function of the
// row, never of cache residency (the fill that admits a row quantizes it),
// which is what keeps pipelined and synchronous quantized training
// bit-identical when their plan orders differ.
func TestQuantizedHitServesFusedRoundTrip(t *testing.T) {
	const dim = 16
	qt := quantTable{dim: dim}
	s := New(Config{Nodes: 2, CacheBytes: 1 << 12, RowBytes: dim * 4, Quant: QuantINT8}, nil)
	g := s.Gatherer()
	if g == nil {
		t.Fatal("quantized service must auto-attach the async engine")
	}
	idx := [][]int32{{1}} // batch position 0 = node 0; row 1 owned by node 1

	// First touch: miss — the fill transfer is priced as a full fabric row,
	// but the staged value is the round trip of the row being admitted.
	plan := s.PlanGather(0, idx)
	if plan == nil {
		t.Fatal("first touch must plan (it stages the quantized fill)")
	}
	if plan.FabricRows() != 0 || plan.Rows() != 1 || plan.Bytes != 0 {
		t.Fatalf("quantize-on-fill plan: fabric=%d staged=%d bytes=%d, want 0/1/0",
			plan.FabricRows(), plan.Rows(), plan.Bytes)
	}
	st := g.GatherSync(plan, dim, qt.fetch)
	v, ok := st.Lookup(1)
	if !ok {
		t.Fatal("row 1 must stage")
	}
	exact := qt.row(1)
	want := make([]float32, dim)
	tensor.RoundTripI8(want, exact)
	for k := range v {
		if v[k] != want[k] {
			t.Fatalf("fill path elem %d = %g, want fused round trip %g", k, v[k], want[k])
		}
	}
	if st.Width(1) != WidthINT8 {
		t.Fatalf("quantized fill width = %v, want int8", st.Width(1))
	}
	g.Release(st)

	// Second touch: warm-tier hit, served through the fused kernel.
	plan = s.PlanGather(0, idx)
	if plan == nil {
		t.Fatal("quantized hit must still produce a plan (it stages)")
	}
	if plan.FabricRows() != 0 || plan.Rows() != 1 {
		t.Fatalf("quant hit plan: fabric=%d staged=%d, want 0/1", plan.FabricRows(), plan.Rows())
	}
	if plan.Bytes != 0 {
		t.Fatalf("quant hit moved %d fabric bytes, want 0", plan.Bytes)
	}
	st = g.GatherSync(plan, dim, qt.fetch)
	v, ok = st.Lookup(1)
	if !ok {
		t.Fatal("quant hit must stage")
	}
	if st.Width(1) != WidthINT8 {
		t.Fatalf("quant hit width = %v, want int8", st.Width(1))
	}
	lossy := false
	for k := range v {
		if v[k] != want[k] {
			t.Fatalf("quant hit elem %d = %g, want fused round trip %g", k, v[k], want[k])
		}
		if v[k] != exact[k] {
			lossy = true
		}
	}
	if !lossy {
		t.Fatal("test rows must make the int8 round trip lossy, or the assertion is vacuous")
	}
	g.Release(st)

	snap := s.Snapshot()
	if snap.CacheHits != 1 || snap.QuantHits != 1 || snap.DequantRows != 2 {
		t.Fatalf("counters: hits=%d quantHits=%d dequantRows=%d, want 1/1/2",
			snap.CacheHits, snap.QuantHits, snap.DequantRows)
	}
	if snap.GatherRows != 1 || snap.GatherBytes != dim*4 {
		t.Fatalf("gather rows=%d bytes=%d, want 1/%d (the fill transfer is priced as a full fabric row)",
			snap.GatherRows, snap.GatherBytes, dim*4)
	}
}

// TestMixedModeTiersByPopularity: under QuantMixed classified-hot rows are
// admitted fp32 (exact hits) and the rest land in the warm int8 tier.
func TestMixedModeTiersByPopularity(t *testing.T) {
	const dim = 16
	qt := quantTable{dim: dim}
	hot := hotSet(0, 1) // row 1 is hot; row 3 is warm
	s := New(Config{Nodes: 2, CacheBytes: 1 << 12, RowBytes: dim * 4, Quant: QuantMixed}, hot)
	g := s.Gatherer()
	idx := [][]int32{{1, 3}} // both remote for node 0

	plan := s.PlanGather(0, idx) // both miss, both admitted
	st := g.GatherSync(plan, dim, qt.fetch)
	g.Release(st)

	plan = s.PlanGather(0, idx) // both hit, tiers differ
	if plan == nil {
		t.Fatal("second touch must plan (warm hit stages)")
	}
	st = g.GatherSync(plan, dim, qt.fetch)
	if w := st.Width(3); w != WidthINT8 {
		t.Fatalf("warm row width = %v, want int8", w)
	}
	if st.Has(1) {
		t.Fatal("hot fp32 hit must not stage at all (served from the shard like any cache hit)")
	}
	g.Release(st)

	snap := s.Snapshot()
	if snap.CacheHits != 2 || snap.QuantHits != 1 {
		t.Fatalf("hits=%d quantHits=%d, want 2/1", snap.CacheHits, snap.QuantHits)
	}
	// Byte accounting: one fp32 entry + one int8 entry.
	wantFill := WidthFP32.RowBytes(dim) + WidthINT8.RowBytes(dim)
	if snap.FillBytes != wantFill {
		t.Fatalf("fill bytes = %d, want %d (fp32 + int8 entry)", snap.FillBytes, wantFill)
	}
}

// TestQuantModeValidation: warm-width entries relax the minimum budget, and
// the quant-off minimum stays the fp32 row.
func TestQuantModeValidation(t *testing.T) {
	const dim = 16
	base := Config{Nodes: 2, RowBytes: dim * 4}
	c := base
	c.CacheBytes = WidthINT8.RowBytes(dim) // 20 bytes: holds one int8 row
	c.Quant = QuantINT8
	if err := c.Validate(); err != nil {
		t.Fatalf("int8 budget of one warm row must validate, got %v", err)
	}
	c.Quant = QuantOff
	if err := c.Validate(); err == nil {
		t.Fatal("fp32 cache smaller than one fp32 row must fail validation")
	}
}

// TestServePathServesQuantized: the read-only serve path routes warm-tier
// hits through the fused kernel too, with counters in the serve snapshot.
func TestServePathServesQuantized(t *testing.T) {
	const dim = 16
	qt := quantTable{dim: dim}
	s := New(Config{Nodes: 2, CacheBytes: 1 << 12, RowBytes: dim * 4, Quant: QuantINT8}, nil)
	g := s.Gatherer()
	idx := [][]int32{{1}}

	plan := s.PlanServeGather(0, idx) // miss: admits int8
	st := s.ServeGatherSync(plan, dim, qt.fetch)
	g.Release(st)
	plan = s.PlanServeGather(0, idx) // warm hit
	st = s.ServeGatherSync(plan, dim, qt.fetch)
	v, ok := st.Lookup(1)
	if !ok || st.Width(1) != WidthINT8 {
		t.Fatalf("serve quant hit not staged quantized (ok=%v width=%v)", ok, st.Width(1))
	}
	want := make([]float32, dim)
	tensor.RoundTripI8(want, qt.row(1))
	for k := range v {
		if v[k] != want[k] {
			t.Fatalf("serve elem %d = %g, want %g", k, v[k], want[k])
		}
	}
	g.Release(st)

	sv := s.ServeSnapshot()
	if sv.QuantHits != 1 || sv.DequantRows != 2 {
		t.Fatalf("serve counters: quantHits=%d dequantRows=%d, want 1/2 (the fill stages quantized too)",
			sv.QuantHits, sv.DequantRows)
	}
	if tr := s.Snapshot(); tr.QuantHits != 0 {
		t.Fatal("serve quant traffic leaked into the training snapshot")
	}
}

// TestWarmTierHoldsMoreRowsEndToEnd: the service-level effective-capacity
// claim — at the same CacheBytes, an int8-tier service retains >= 2x the
// rows of the fp32 service under an identical access stream.
func TestWarmTierHoldsMoreRowsEndToEnd(t *testing.T) {
	const dim = 16
	budget := int64(64 * dim * 4) // 64 fp32 rows
	stream := make([][]int32, 1)
	for r := int32(0); r < 1000; r++ {
		stream[0] = append(stream[0], r)
	}
	run := func(q QuantMode) int {
		s := New(Config{Nodes: 2, CacheBytes: budget, RowBytes: dim * 4, Quant: q}, nil)
		s.RecordGather(0, stream)
		return s.CacheEntries()
	}
	fp32Rows, i8Rows := run(QuantOff), run(QuantINT8)
	if fp32Rows == 0 {
		t.Fatal("fp32 cache must retain rows")
	}
	if i8Rows < 2*fp32Rows {
		t.Fatalf("int8 tier holds %d rows vs %d fp32 at the same budget; want >= 2x", i8Rows, fp32Rows)
	}
}

// TestQuantRepairMatchesSyncGather: a dirtied warm-tier staged row must be
// repaired to exactly what a fresh quantized gather of the updated bits
// would serve (the depth-k determinism contract in quantized mode).
func TestQuantRepairMatchesSyncGather(t *testing.T) {
	const dim = 16
	store := map[int32][]float32{}
	for r := int32(0); r < 8; r++ {
		row := make([]float32, dim)
		for k := range row {
			row[k] = float32(r)*1.7 + float32(k)*0.313 + 0.111
		}
		store[r] = row
	}
	fetch := func(row int32, dst []float32) { copy(dst, store[row]) }

	s := New(Config{Nodes: 2, CacheBytes: 1 << 12, RowBytes: dim * 4, Quant: QuantINT8}, nil)
	g := s.Gatherer()
	q := s.NewWindowQueue(0)
	idx := [][]int32{{1}}

	// Warm the cache: row 1 becomes an int8 entry.
	plan := s.PlanGather(0, idx)
	g.Release(g.GatherSync(plan, dim, fetch))

	// Issue a prefetch window whose staged row is then updated.
	plan = s.PlanGather(0, idx)
	h := g.Submit(plan, dim, fetch)
	q.Push(idx, h)
	q.MarkDirty([]int32{1})
	for k := range store[1] {
		store[1][k] += 5 // the sparse update the window must observe
	}
	w := q.Match(idx)
	if w == nil {
		t.Fatal("window must match its index set")
	}
	st := q.Consume(w, fetch)
	v, ok := st.Lookup(1)
	if !ok {
		t.Fatal("row 1 must stage")
	}
	want := make([]float32, dim)
	tensor.RoundTripI8(want, store[1])
	for k := range v {
		if v[k] != want[k] {
			t.Fatalf("repaired elem %d = %g, want re-quantized current bits %g", k, v[k], want[k])
		}
	}
	g.Release(st)
	q.Recycle(w)

	// Repair accounting: one row at the int8 footprint, no fabric fetch.
	os := g.Stats()
	if os.RepairRows != 1 || os.RepairBytes != WidthINT8.RowBytes(dim) {
		t.Fatalf("repair: rows=%d bytes=%d, want 1/%d", os.RepairRows, os.RepairBytes, WidthINT8.RowBytes(dim))
	}
}
