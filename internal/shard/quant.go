package shard

import "hotline/internal/tensor"

// Precision-tiered device caches.
//
// The binding resource of a Hotline node is HBM bytes, not row slots, so the
// device cache is byte-budgeted and every cached entry carries a storage
// width. Hot rows stay fp32; warm rows are admitted at a narrow width (int8
// with a symmetric per-row scale, or fp16), so the same byte budget holds
// 2-4x more rows. A hit on a narrow entry is served through the fused
// dequantize-gather kernel: the row's current authoritative bits are pushed
// through quantize→dequantize straight into the pooled staging buffer — the
// value a coherent warm-tier replica would hold — so the quantization error
// is real and measured (mn-quant prices it in AUC), while the repair path
// re-runs the same kernel on dirty rows, keeping every pipeline depth
// bit-identical to batch-by-batch stepping in quantized mode. With
// quantization off nothing narrows and training is bit-identical to the
// fp32-only cache.

// Width is a cached row's storage precision.
type Width uint8

const (
	// WidthFP32 stores full-precision rows (4 bytes per element).
	WidthFP32 Width = iota
	// WidthFP16 stores IEEE 754 binary16 rows (2 bytes per element).
	WidthFP16
	// WidthINT8 stores symmetric per-row-scaled int8 rows (1 byte per
	// element plus a 4-byte float32 scale).
	WidthINT8
)

// String names the width for reports.
func (w Width) String() string {
	switch w {
	case WidthFP16:
		return "fp16"
	case WidthINT8:
		return "int8"
	default:
		return "fp32"
	}
}

// RowBytes returns one cached row's footprint at this width for an embedding
// dimension of dim elements (the int8 format carries its per-row scale).
func (w Width) RowBytes(dim int) int64 {
	switch w {
	case WidthFP16:
		return 2 * int64(dim)
	case WidthINT8:
		return int64(dim) + tensor.I8RowOverheadBytes
	default:
		return 4 * int64(dim)
	}
}

// QuantMode selects the device caches' precision tiering.
type QuantMode uint8

const (
	// QuantOff is the default: every admitted row is fp32 and training is
	// bit-identical to the pre-quantization cache.
	QuantOff QuantMode = iota
	// QuantFP16 admits every cached row as fp16.
	QuantFP16
	// QuantINT8 admits every cached row as int8.
	QuantINT8
	// QuantMixed is the precision-tiered mode: popularity-classified hot
	// rows stay fp32, everything else is admitted into the warm tier as
	// int8. With a nil classifier every row counts as hot (all-fp32).
	QuantMixed
)

// String names the mode for reports.
func (m QuantMode) String() string {
	switch m {
	case QuantFP16:
		return "fp16"
	case QuantINT8:
		return "int8"
	case QuantMixed:
		return "hot-fp32+warm-int8"
	default:
		return "fp32"
	}
}

// WarmWidth returns the width non-hot (warm) rows are admitted at — the
// width the effective-capacity repricing reasons in.
func (m QuantMode) WarmWidth() Width {
	switch m {
	case QuantFP16:
		return WidthFP16
	case QuantINT8, QuantMixed:
		return WidthINT8
	default:
		return WidthFP32
	}
}

// hotWidth returns the width popularity-classified rows are admitted at.
func (m QuantMode) hotWidth() Width {
	switch m {
	case QuantFP16:
		return WidthFP16
	case QuantINT8:
		return WidthINT8
	default: // QuantOff, QuantMixed: hot rows keep full precision
		return WidthFP32
	}
}

// dequantRowInto runs the fused dequantize-gather kernel for one cached row:
// the current authoritative bits of src are pushed through the width's
// quantize→dequantize round trip straight into the staging slot dst (no
// narrow row is materialized, no allocation happens). WidthFP32 is a plain
// copy.
//
//hotline:hotpath
func dequantRowInto(dst, src []float32, w Width) {
	switch w {
	case WidthFP16:
		tensor.RoundTripF16(dst, src)
	case WidthINT8:
		tensor.RoundTripI8(dst, src)
	default:
		copy(dst, src)
	}
}
