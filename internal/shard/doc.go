// Package shard is the sharded embedding service: it partitions embedding
// table rows across N simulated nodes under a pluggable ownership policy,
// replicates popularity-classified entries into a bounded per-node device
// cache (LRU or SRRIP eviction), accounts the deterministic all-to-all
// gather/scatter traffic that non-resident rows incur, and can execute
// that traffic asynchronously so gathers overlap with compute.
//
// In the DESIGN.md layering the package sits between internal/cost (whose
// link models price the measured traffic) and internal/embedding (whose
// ShardedBag routes every lookup and gradient through a Service). The
// functional layers stay bit-identical to their single-node counterparts —
// sharding only decides where a row physically lives and what its access
// costs — while the Service's counters turn the paper's Figure-30-style
// multi-node claims from closed-form estimates into measured behaviour:
// cache hit-rates, bytes moved per iteration, all-to-all times, and the
// fraction of gather time left exposed come from replaying real access
// streams against real cache state.
//
// Topology model: samples are dealt round-robin to nodes by batch position
// (NodeOf), and row ownership is a Partitioner — round-robin (row r of
// every table lives on node r mod N, the default), capacity-weighted
// (proportional to per-node capacity; NewCapacityWeightedHBM derives the
// weights from real per-node HBM byte budgets), or hot-row-aware
// (RequestCounter tallies per-node request counts and HotAware pins each
// popular row to its dominant requester, shrinking both gather and
// gradient-scatter volume). Remote lookups first probe the requesting
// node's device cache; misses are gathered over the fabric once per
// iteration (intra-batch dedup) and popularity-classified rows are
// admitted into the cache on the way through. A zero cache budget is the
// explicit pure-remote mode: no admissions and no fill traffic.
//
// Gathers can run asynchronously: PlanGather performs the exact accounting
// walk of RecordGather and also returns the distinct remote rows grouped
// by owner; the AsyncGatherer streams each owner's rows through per-node
// queues — drained by persistent, cond-woken goroutines — into a Staging
// buffer while the consumer computes, and Handle.Await blocks only on what
// the overlap failed to hide — the measured exposed-gather time the
// mn-overlap and mn-depth scenarios and the Hotline timing model consume.
// Plans, stagings and handles pool through a PrefetchRing sized by the
// pipeline's peak window count, so the steady-state path allocates
// nothing.
//
// A depth-k pipeline keeps up to k windows open per table. The WindowQueue
// is its dirty-row tracker: issued windows register FIFO, a sparse update
// marks the staged rows it is about to rewrite dirty (joining in-flight
// fetches first, so no fetch races a write), and the consuming forward
// delta-repairs exactly those rows from the owner shards — every depth is
// therefore bit-identical to batch-by-batch stepping. The opt-in stale
// mode (Service.SetStaleReads) skips the repair, serves issue-time values
// and counts them, so the accuracy cost of staleness is measured rather
// than assumed.
//
//hotline:deterministic
package shard
