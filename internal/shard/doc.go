// Package shard is the sharded embedding service: it partitions embedding
// table rows across N simulated nodes, replicates popularity-classified
// entries into a bounded per-node device cache (LRU or SRRIP eviction), and
// accounts the deterministic all-to-all gather/scatter traffic that
// non-resident rows incur.
//
// In the DESIGN.md layering the package sits between internal/cost (whose
// link models price the measured traffic) and internal/embedding (whose
// ShardedBag routes every lookup and gradient through a Service). The
// functional layers stay bit-identical to their single-node counterparts —
// sharding only decides where a row physically lives and what its access
// costs — while the Service's counters turn the paper's Figure-30-style
// multi-node claims from closed-form estimates into measured behaviour:
// cache hit-rates, bytes moved per iteration, and all-to-all times come from
// replaying real access streams against real cache state.
//
// Topology model: rows are owned round-robin (row r of every table lives on
// node r mod N) and samples are dealt round-robin to nodes the same way, so
// every partition is deterministic and independent of batch composition.
// Remote lookups first probe the requesting node's device cache; misses are
// gathered over the fabric once per iteration (intra-batch dedup) and
// popularity-classified rows are admitted into the cache on the way through.
package shard
