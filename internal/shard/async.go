package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// GatherPlan is the fabric work one accounting pass produced: the distinct
// rows of one table that must cross the fabric, grouped by the node that
// owns (and therefore streams) them, plus a staging slot for every row.
// Plans are built under the service mutex (PlanGather) and are immutable
// afterwards. Plans are ring entries of the async engine: consuming a
// window (AsyncGatherer.Release) recycles its plan, so the two-deep
// cross-iteration pipeline reuses a fixed set of plans instead of
// allocating one per call.
type GatherPlan struct {
	// Table keys the accounting and the staging lookups.
	Table int
	// Bytes is the fabric volume the plan represents, matching the
	// GatherBytes accounting (per-(requesting node, row) dedup, so a row two
	// nodes miss is priced twice even though it stages once).
	Bytes int64

	perOwner [][]int32     // perOwner[o]: distinct rows owner o must stream
	slot     map[int32]int // row -> staging slot (distinct rows only)
}

func newGatherPlan(table, nodes int) *GatherPlan {
	p := &GatherPlan{slot: make(map[int32]int)}
	p.reset(table, nodes)
	return p
}

// reset readies a recycled plan for a new window, keeping the per-owner
// slices and the slot map's buckets.
func (p *GatherPlan) reset(table, nodes int) {
	p.Table = table
	p.Bytes = 0
	if cap(p.perOwner) < nodes {
		p.perOwner = make([][]int32, nodes)
	} else {
		p.perOwner = p.perOwner[:nodes]
		for i := range p.perOwner {
			p.perOwner[i] = p.perOwner[i][:0]
		}
	}
	clear(p.slot)
}

// add registers one fabric fetch of row from owner. Rows are staged once
// even when several requesting nodes fetch them (identical payload), while
// Bytes accumulates the full per-node fabric volume.
func (p *GatherPlan) add(row int32, owner int, rowBytes int64) {
	p.Bytes += rowBytes
	if _, ok := p.slot[row]; ok {
		return
	}
	p.slot[row] = len(p.slot)
	p.perOwner[owner] = append(p.perOwner[owner], row)
}

// Rows returns the number of distinct staged rows.
func (p *GatherPlan) Rows() int { return len(p.slot) }

// Staging is the landing buffer for one gather window's fetched rows: a
// dense rows x dim matrix plus the row -> slot map from the plan. Workers
// fill disjoint slots concurrently; consumers read it only after the
// window's Handle reports completion, then apply the rows in their own
// fixed iteration order — which keeps training bit-identical to the
// synchronous path (the staged values are exact copies of the owner-shard
// rows, and weights do not change while a window is in flight). Stagings
// are ring entries like plans: AsyncGatherer.Release recycles the buffer
// (and the plan it shares its slot map with) for the next window.
type Staging struct {
	dim  int
	buf  []float32
	slot map[int32]int
	plan *GatherPlan // recycled together with the staging
}

// Lookup returns the staged copy of row, if the plan fetched it.
func (st *Staging) Lookup(row int32) ([]float32, bool) {
	i, ok := st.slot[row]
	if !ok {
		return nil, false
	}
	return st.buf[i*st.dim : (i+1)*st.dim], true
}

// Rows returns the staged row count.
func (st *Staging) Rows() int { return len(st.slot) }

// FetchFunc copies one owner-resident row into its staging slot. It runs on
// gather workers concurrently with compute, so it must only read the
// underlying storage (which is stable while a window is in flight).
type FetchFunc func(row int32, dst []float32)

// Handle tracks one submitted gather window. Await may be called exactly
// once per window; the handle is recycled into the engine's pool when it
// returns.
type Handle struct {
	g       *AsyncGatherer
	staging *Staging

	mu      sync.Mutex
	cond    sync.Cond // cond.L = &mu
	pending int
}

// jobDone retires one per-owner fetch job.
func (h *Handle) jobDone() {
	h.mu.Lock()
	h.pending--
	if h.pending == 0 {
		h.cond.Broadcast()
	}
	h.mu.Unlock()
}

// Await blocks until every fetch of the window has landed and returns the
// staging buffer. The calling goroutine helps drain outstanding queue
// buffers instead of idling, and the blocked wall time is accounted as
// exposed gather time — the part of the fabric traffic the overlap failed
// to hide. The handle is recycled on return; pass the staging to
// AsyncGatherer.Release once its rows are consumed.
func (h *Handle) Await() *Staging {
	start := time.Now()
	for _, q := range h.g.queues {
		q.drainOn(h.g)
	}
	h.mu.Lock()
	for h.pending > 0 {
		h.cond.Wait()
	}
	h.mu.Unlock()
	st := h.staging
	h.g.noteExposed(time.Since(start), h)
	return st
}

// OverlapStats aggregates what the async engine moved and how much of it
// the overlap hid. All durations are wall-clock measurements of the
// functional layer (they feed scenario reports and the measured
// exposed-gather fraction, never any training math).
type OverlapStats struct {
	// Windows counts submitted prefetch windows; SyncWindows counts
	// synchronous (non-prefetched) staged gathers.
	Windows, SyncWindows int64
	// PrefetchRows / PrefetchBytes total the fabric volume issued
	// asynchronously; SyncRows / SyncBytes the volume fetched inline.
	PrefetchRows, SyncRows   int64
	PrefetchBytes, SyncBytes int64
	// GatherBusy is the summed time workers spent copying rows (both modes).
	GatherBusy time.Duration
	// Exposed is the summed wall time consumers were blocked in Await —
	// gather time the overlap did not hide.
	Exposed time.Duration
	// SyncGather is the summed wall time of inline staged gathers, i.e. the
	// fully exposed cost the synchronous path pays for the same traffic.
	SyncGather time.Duration
}

// ExposedGather returns the total gather wall time this engine left on the
// consumer's critical path: inline (synchronous) staged gathers plus the
// time consumers were blocked in Await. Comparing it between an
// overlap-off and an overlap-on run of the same workload yields the
// exposed-gather fraction the mn-overlap scenario feeds the timing models.
func (s OverlapStats) ExposedGather() time.Duration { return s.SyncGather + s.Exposed }

// ExposedFrac returns this engine's exposed share of the given synchronous
// gather baseline, clamped to [0, 1] (0 = fully hidden).
func ExposedFrac(overlap, sync OverlapStats) float64 {
	base := sync.ExposedGather()
	if base <= 0 {
		return 0
	}
	f := float64(overlap.ExposedGather()) / float64(base)
	if f > 1 {
		f = 1
	}
	return f
}

// fetchJob is one owner node's contribution to a gather window.
type fetchJob struct {
	rows  []int32
	fetch FetchFunc
	h     *Handle
}

// gatherQueue is one owner node's double-buffered job queue: producers
// append to the fill buffer while a drainer works through the other, and
// the two swap when the drainer comes back — so a new window can queue up
// while the previous one is still streaming.
type gatherQueue struct {
	mu       sync.Mutex
	fill     []fetchJob
	spare    []fetchJob // the drained buffer, recycled on swap
	draining bool
}

// enqueue appends a job and starts a drainer goroutine if none is running.
func (q *gatherQueue) enqueue(j fetchJob, g *AsyncGatherer) {
	q.mu.Lock()
	q.fill = append(q.fill, j)
	start := !q.draining
	if start {
		q.draining = true
	}
	q.mu.Unlock()
	if start {
		go q.drain(g)
	}
}

// swap takes the filled buffer, leaving the spare in its place. Returns nil
// when the queue is empty (and, for the background drainer, clears the
// draining flag so the next enqueue restarts it).
func (q *gatherQueue) swap(background bool) []fetchJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.fill) == 0 {
		if background {
			q.draining = false
		}
		return nil
	}
	jobs := q.fill
	q.fill = q.spare[:0]
	q.spare = nil // owned by the drainer until it returns the buffer
	return jobs
}

// finish recycles a drained buffer.
func (q *gatherQueue) finish(jobs []fetchJob) {
	q.mu.Lock()
	if q.spare == nil {
		q.spare = jobs[:0]
	}
	q.mu.Unlock()
}

// drain is the background drainer: it alternates the double buffers until
// the queue runs dry, then exits.
func (q *gatherQueue) drain(g *AsyncGatherer) {
	for {
		jobs := q.swap(true)
		if jobs == nil {
			return
		}
		runJobs(jobs, g)
		q.finish(jobs)
	}
}

// drainOn lets a consumer goroutine (inside Await) help with queued work
// instead of idling.
func (q *gatherQueue) drainOn(g *AsyncGatherer) {
	jobs := q.swap(false)
	if jobs == nil {
		return
	}
	runJobs(jobs, g)
	q.finish(jobs)
}

// runJobs executes fetches and accounts worker busy time.
func runJobs(jobs []fetchJob, g *AsyncGatherer) {
	start := time.Now()
	for _, j := range jobs {
		st := j.h.staging
		for _, row := range j.rows {
			i := st.slot[row]
			j.fetch(row, st.buf[i*st.dim:(i+1)*st.dim])
		}
		j.h.jobDone()
	}
	g.noteBusy(time.Since(start))
}

// AsyncGatherer executes gather plans off the consumer's critical path: one
// double-buffered queue per owner node (the node streaming its resident
// rows over the fabric), drained by on-demand worker goroutines. Submit
// issues a window; the returned Handle's Await blocks only for whatever the
// overlap failed to hide. GatherSync runs the same plan inline, timing the
// fully exposed cost the synchronous path pays.
//
// Plans, stagings and handles are pooled ring entries: the engine holds a
// free list that grows to the pipeline's peak window count (one window per
// table, two iterations deep under the cross-iteration pipeline) and is
// then reused verbatim, so the steady-state prefetch path allocates
// nothing. Consumers return a window with Release when they have read its
// staged rows.
type AsyncGatherer struct {
	queues []*gatherQueue

	mu    sync.Mutex
	stats OverlapStats

	poolMu       sync.Mutex
	freePlans    []*GatherPlan
	freeStagings []*Staging
	freeHandles  []*Handle
}

// NewAsyncGatherer builds an engine for a topology of `nodes` owner nodes.
func NewAsyncGatherer(nodes int) *AsyncGatherer {
	if nodes < 1 {
		panic(fmt.Sprintf("shard: async gatherer over %d nodes", nodes))
	}
	g := &AsyncGatherer{queues: make([]*gatherQueue, nodes)}
	for i := range g.queues {
		g.queues[i] = &gatherQueue{}
	}
	return g
}

// AcquirePlan hands out a recycled (or new) plan for a window over the
// engine's topology. The service's PlanGather calls this so plans cycle
// through the ring instead of being allocated per accounting pass.
func (g *AsyncGatherer) AcquirePlan(table int) *GatherPlan {
	g.poolMu.Lock()
	n := len(g.freePlans)
	if n == 0 {
		g.poolMu.Unlock()
		return newGatherPlan(table, len(g.queues))
	}
	p := g.freePlans[n-1]
	g.freePlans = g.freePlans[:n-1]
	g.poolMu.Unlock()
	p.reset(table, len(g.queues))
	return p
}

// acquireStaging binds a pooled staging buffer to a plan.
func (g *AsyncGatherer) acquireStaging(plan *GatherPlan, dim int) *Staging {
	need := len(plan.slot) * dim
	g.poolMu.Lock()
	n := len(g.freeStagings)
	var st *Staging
	if n > 0 {
		st = g.freeStagings[n-1]
		g.freeStagings = g.freeStagings[:n-1]
	}
	g.poolMu.Unlock()
	if st == nil {
		st = &Staging{}
	}
	if cap(st.buf) < need {
		st.buf = make([]float32, need)
	}
	st.buf = st.buf[:need]
	st.dim = dim
	st.slot = plan.slot
	st.plan = plan
	return st
}

// acquireHandle hands out a recycled (or new) handle.
func (g *AsyncGatherer) acquireHandle() *Handle {
	g.poolMu.Lock()
	n := len(g.freeHandles)
	var h *Handle
	if n > 0 {
		h = g.freeHandles[n-1]
		g.freeHandles = g.freeHandles[:n-1]
	}
	g.poolMu.Unlock()
	if h == nil {
		h = &Handle{g: g}
		h.cond.L = &h.mu
	}
	return h
}

// Release recycles a consumed window: the staging buffer and the plan whose
// slot map it shares go back into the ring. Callers must not touch the
// staging (or any row slice obtained from Lookup) afterwards. Releasing is
// optional — an unreleased window is simply collected by the GC — so
// external users of Submit/GatherSync that predate the ring keep working.
func (g *AsyncGatherer) Release(st *Staging) {
	if st == nil {
		return
	}
	plan := st.plan
	st.plan = nil
	st.slot = nil
	g.poolMu.Lock()
	g.freeStagings = append(g.freeStagings, st)
	if plan != nil {
		g.freePlans = append(g.freePlans, plan)
	}
	g.poolMu.Unlock()
}

// releaseHandle recycles a completed handle (after Await).
func (g *AsyncGatherer) releaseHandle(h *Handle) {
	h.staging = nil
	g.poolMu.Lock()
	g.freeHandles = append(g.freeHandles, h)
	g.poolMu.Unlock()
}

// Submit issues one gather window asynchronously and returns its Handle.
// The submitting goroutine yields once so the drainers get scheduled even
// on a single-CPU host — the window then streams while the caller's compute
// runs, which is exactly the overlap the paper's pipeline performs in
// hardware.
func (g *AsyncGatherer) Submit(plan *GatherPlan, dim int, fetch FetchFunc) *Handle {
	h := g.acquireHandle()
	h.staging = g.acquireStaging(plan, dim)
	jobs := 0
	for _, rows := range plan.perOwner {
		if len(rows) > 0 {
			jobs++
		}
	}
	g.mu.Lock()
	g.stats.Windows++
	g.stats.PrefetchRows += int64(plan.Rows())
	g.stats.PrefetchBytes += plan.Bytes
	g.mu.Unlock()
	if jobs == 0 {
		return h
	}
	h.mu.Lock()
	h.pending = jobs
	h.mu.Unlock()
	for owner, rows := range plan.perOwner {
		if len(rows) == 0 {
			continue
		}
		g.queues[owner].enqueue(fetchJob{rows: rows, fetch: fetch, h: h}, g)
	}
	runtime.Gosched()
	return h
}

// GatherSync executes a plan inline on the calling goroutine and returns
// the filled staging buffer. The wall time is accounted as synchronous
// (fully exposed) gather time — the baseline the overlap is measured
// against.
func (g *AsyncGatherer) GatherSync(plan *GatherPlan, dim int, fetch FetchFunc) *Staging {
	start := time.Now()
	st := g.acquireStaging(plan, dim)
	for _, rows := range plan.perOwner {
		for _, row := range rows {
			i := st.slot[row]
			fetch(row, st.buf[i*st.dim:(i+1)*st.dim])
		}
	}
	el := time.Since(start)
	g.mu.Lock()
	g.stats.SyncWindows++
	g.stats.SyncRows += int64(plan.Rows())
	g.stats.SyncBytes += plan.Bytes
	g.stats.SyncGather += el
	g.mu.Unlock()
	return st
}

// Stats snapshots the overlap counters.
func (g *AsyncGatherer) Stats() OverlapStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// ResetStats zeroes the overlap counters (e.g. after warm-up windows).
func (g *AsyncGatherer) ResetStats() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats = OverlapStats{}
}

func (g *AsyncGatherer) noteBusy(d time.Duration) {
	g.mu.Lock()
	g.stats.GatherBusy += d
	g.mu.Unlock()
}

// noteExposed accounts one Await's blocked wall time and recycles the
// handle.
func (g *AsyncGatherer) noteExposed(d time.Duration, h *Handle) {
	g.mu.Lock()
	g.stats.Exposed += d
	g.mu.Unlock()
	g.releaseHandle(h)
}
