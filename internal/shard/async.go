package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// GatherPlan is the fabric work one accounting pass produced: the distinct
// rows of one table that must cross the fabric, grouped by the node that
// owns (and therefore streams) them, plus a staging slot for every row.
// Plans are built under the service mutex (PlanGather) and are immutable
// afterwards. Plans are entries of the engine's PrefetchRing: consuming a
// window (AsyncGatherer.Release) recycles its plan, so a depth-k pipeline
// reuses a fixed set of plans instead of allocating one per call.
type GatherPlan struct {
	// Table keys the accounting and the staging lookups.
	Table int
	// Bytes is the fabric volume the plan represents, matching the
	// GatherBytes accounting (per-(requesting node, row) dedup, so a row two
	// nodes miss is priced twice even though it stages once).
	Bytes int64

	perOwner [][]int32     // perOwner[o]: distinct rows owner o must stream
	slot     map[int32]int // row -> staging slot (distinct rows only)

	// quant/qwidth list the staged rows served as warm-tier cache hits: no
	// owner streams them — the fused dequantize-gather kernel materializes
	// each one into its staging slot from the authoritative bits at staging
	// time (Staging.fillQuant). They occupy slots but add no fabric Bytes.
	quant  []int32
	qwidth []Width
}

func newGatherPlan(table, nodes int) *GatherPlan {
	p := &GatherPlan{slot: make(map[int32]int)}
	p.reset(table, nodes)
	return p
}

// reset readies a recycled plan for a new window, keeping the per-owner
// slices and the slot map's buckets.
func (p *GatherPlan) reset(table, nodes int) {
	p.Table = table
	p.Bytes = 0
	if cap(p.perOwner) < nodes {
		p.perOwner = make([][]int32, nodes)
	} else {
		p.perOwner = p.perOwner[:nodes]
		for i := range p.perOwner {
			p.perOwner[i] = p.perOwner[i][:0]
		}
	}
	clear(p.slot)
	p.quant = p.quant[:0]
	p.qwidth = p.qwidth[:0]
}

// add registers one fabric fetch of row from owner. Rows are staged once
// even when several requesting nodes fetch them (identical payload), while
// Bytes accumulates the full per-node fabric volume.
//
//hotline:hotpath
func (p *GatherPlan) add(row int32, owner int, rowBytes int64) {
	p.Bytes += rowBytes
	if _, ok := p.slot[row]; ok {
		return
	}
	p.slot[row] = len(p.slot)
	p.perOwner[owner] = append(p.perOwner[owner], row) //hotline:allow hotalloc per-owner lists are plan-ring scratch; growth converges to the gather high-water mark
}

// addQuant registers one warm-tier cache hit for staging through the fused
// dequantize-gather kernel. It reports whether the row claimed a fresh slot:
// a row already staged keeps its first planner's treatment (a fabric fetch
// stays exact fp32 even if another node later hits it quantized, and a
// quantized hit keeps its dequantized value even if another node later
// misses — the miss still accounts its GatherBytes). First-planner-wins is
// deterministic because planGather walks indices in order.
//
//hotline:hotpath
func (p *GatherPlan) addQuant(row int32, w Width) bool {
	if _, ok := p.slot[row]; ok {
		return false
	}
	p.slot[row] = len(p.slot)
	p.quant = append(p.quant, row) //hotline:allow hotalloc quant lists are plan-ring scratch; growth converges to the gather high-water mark
	p.qwidth = append(p.qwidth, w) //hotline:allow hotalloc quant lists are plan-ring scratch; growth converges to the gather high-water mark
	return true
}

// Rows returns the number of distinct staged rows.
func (p *GatherPlan) Rows() int { return len(p.slot) }

// FabricRows returns the staged rows that actually cross the fabric
// (Rows minus the warm-tier hits the fused kernel materializes locally).
func (p *GatherPlan) FabricRows() int { return len(p.slot) - len(p.quant) }

// Staging is the landing buffer for one gather window's fetched rows: a
// dense rows x dim matrix plus the row -> slot map from the plan. Workers
// fill disjoint slots concurrently; consumers read it only after the
// window's Handle reports completion, then apply the rows in their own
// fixed iteration order. Under the depth-k pipeline a staged row can go
// stale (a later sparse update rewrites the owner row while the window is
// open); the WindowQueue's dirty-row tracker repairs exactly those rows
// before consumption, which keeps every depth bit-identical to batch-by-
// batch stepping. Stagings are ring entries like plans: AsyncGatherer.
// Release recycles the buffer (and the plan it shares its slot map with).
type Staging struct {
	dim  int
	buf  []float32
	slot map[int32]int
	plan *GatherPlan // recycled together with the staging
	// widths records each slot's serving precision (empty = all fp32; sized
	// only when the plan staged warm-tier hits). The repair path consults it
	// to re-run the fused kernel instead of re-fetching.
	widths []Width
}

// Lookup returns the staged copy of row, if the plan fetched it.
//
//hotline:hotpath
func (st *Staging) Lookup(row int32) ([]float32, bool) {
	i, ok := st.slot[row]
	if !ok {
		return nil, false
	}
	return st.buf[i*st.dim : (i+1)*st.dim], true
}

// Has reports whether the plan staged row, without touching the buffer (so
// it is safe while fetches are still in flight — the slot map is immutable
// after planning).
//
//hotline:hotpath
func (st *Staging) Has(row int32) bool {
	_, ok := st.slot[row]
	return ok
}

// Rows returns the staged row count.
func (st *Staging) Rows() int { return len(st.slot) }

// Width returns the precision a staged row is served at (WidthFP32 for rows
// that crossed the fabric exactly, and for rows the plan never staged).
//
//hotline:hotpath
func (st *Staging) Width(row int32) Width {
	if len(st.widths) == 0 {
		return WidthFP32
	}
	i, ok := st.slot[row]
	if !ok {
		return WidthFP32
	}
	return st.widths[i]
}

// fillQuant runs the fused dequantize-gather kernel over the plan's
// warm-tier rows: each row's current authoritative bits are fetched into its
// staging slot and round-tripped through the entry's width in place —
// exactly the value a coherent quantized replica would serve — with zero
// allocations (the kernels tolerate aliasing). Runs on the planning
// goroutine before any fabric job is enqueued, so it never races worker
// fills (slots are disjoint) or sparse updates (same thread).
//
//hotline:hotpath
func (st *Staging) fillQuant(fetch FetchFunc) {
	p := st.plan
	for i, row := range p.quant {
		s := st.slot[row]
		dst := st.buf[s*st.dim : (s+1)*st.dim]
		fetch(row, dst)
		dequantRowInto(dst, dst, p.qwidth[i])
		st.widths[s] = p.qwidth[i]
	}
}

// FetchFunc copies one owner-resident row into its staging slot. It runs on
// gather workers concurrently with compute, so it must only read the
// underlying storage (which is stable while a window is in flight: sparse
// updates join any window whose staged rows they touch before mutating).
type FetchFunc func(row int32, dst []float32)

// Handle tracks one submitted gather window. Await may be called exactly
// once per window; the handle is recycled into the engine's ring when it
// returns.
type Handle struct {
	g       *AsyncGatherer
	staging *Staging

	mu      sync.Mutex
	cond    sync.Cond // cond.L = &mu
	pending int
}

// jobDone retires one per-owner fetch job.
func (h *Handle) jobDone() {
	h.mu.Lock()
	h.pending--
	if h.pending == 0 {
		h.cond.Broadcast()
	}
	h.mu.Unlock()
}

// Await blocks until every fetch of the window has landed and returns the
// staging buffer. The calling goroutine helps drain outstanding queue
// buffers instead of idling, and the blocked wall time is accounted as
// exposed gather time — the part of the fabric traffic the overlap failed
// to hide. The handle is recycled on return; pass the staging to
// AsyncGatherer.Release once its rows are consumed.
func (h *Handle) Await() *Staging {
	start := time.Now() //hotline:allow detorder measured exposed-gather wall; never feeds math
	for _, q := range h.g.queues {
		q.drainOn()
	}
	h.mu.Lock()
	for h.pending > 0 {
		h.cond.Wait()
	}
	h.mu.Unlock()
	st := h.staging
	h.g.noteExposed(time.Since(start), h) //hotline:allow detorder measured exposed-gather wall; never feeds math
	return st
}

// OverlapStats aggregates what the async engine moved and how much of it
// the overlap hid. All durations are wall-clock measurements of the
// functional layer (they feed scenario reports and the measured
// exposed-gather fraction, never any training math).
type OverlapStats struct {
	// Windows counts submitted prefetch windows; SyncWindows counts
	// synchronous (non-prefetched) staged gathers.
	Windows, SyncWindows int64
	// PrefetchRows / PrefetchBytes total the fabric volume issued
	// asynchronously; SyncRows / SyncBytes the volume fetched inline.
	PrefetchRows, SyncRows   int64
	PrefetchBytes, SyncBytes int64
	// RepairRows / RepairBytes total the dirty-row delta repairs a depth-k
	// pipeline shipped: rows staged at issue time that a later sparse
	// update rewrote, re-fetched from their owner shard before the window
	// was consumed. Depth k <= 2 never repairs (no update intervenes);
	// deeper lookahead trades this extra traffic for more hiding time.
	RepairRows, RepairBytes int64
	// StaleRows counts distinct dirtied rows consumed WITHOUT repair under
	// the opt-in stale mode (Service.SetStaleReads) — the rows whose
	// staleness the mn-depth scenario prices in accuracy.
	StaleRows int64
	// GatherBusy is the summed time workers spent copying rows (both modes).
	GatherBusy time.Duration
	// Exposed is the summed wall time consumers were blocked in Await —
	// gather time the overlap did not hide.
	Exposed time.Duration
	// SyncGather is the summed wall time of inline staged gathers, i.e. the
	// fully exposed cost the synchronous path pays for the same traffic.
	SyncGather time.Duration
}

// ExposedGather returns the total gather wall time this engine left on the
// consumer's critical path: inline (synchronous) staged gathers plus the
// time consumers were blocked in Await. Comparing it between an
// overlap-off and an overlap-on run of the same workload yields the
// exposed-gather fraction the mn-overlap/mn-depth scenarios feed the
// timing models.
func (s OverlapStats) ExposedGather() time.Duration { return s.SyncGather + s.Exposed }

// ExposedFrac returns this engine's exposed share of the given synchronous
// gather baseline, clamped to [0, 1] (0 = fully hidden).
func ExposedFrac(overlap, sync OverlapStats) float64 {
	base := sync.ExposedGather()
	if base <= 0 {
		return 0
	}
	f := float64(overlap.ExposedGather()) / float64(base)
	if f > 1 {
		f = 1
	}
	return f
}

// fetchJob is one owner node's contribution to a gather window. svc routes
// the fetch through the service's transport (timing it into the gather wall
// meter); a nil svc (engine built standalone via NewAsyncGatherer) fetches
// straight through the FetchFunc like the in-proc transport would.
type fetchJob struct {
	svc   *Service
	table int
	owner int
	rows  []int32
	fetch FetchFunc
	h     *Handle
}

// engineCounters is the stats cell shared by the engine and its persistent
// drainer goroutines. It deliberately lives outside AsyncGatherer so a
// parked drainer keeps only its queue (and this cell) alive — the engine
// itself stays collectable, and its cleanup closes the queues.
type engineCounters struct {
	mu    sync.Mutex
	stats OverlapStats
}

//
//hotline:stats-writer
func (c *engineCounters) noteBusy(d time.Duration) {
	c.mu.Lock()
	c.stats.GatherBusy += d
	c.mu.Unlock()
}

// gatherQueue is one owner node's job queue, drained by a persistent
// goroutine: producers append to the fill buffer and wake the drainer with
// a cond signal — no per-window goroutine spawn, so the steady-state wake
// path performs zero allocations. Consumers blocked in Await help drain
// via drainOn. Drained buffers recycle through a small free list.
type gatherQueue struct {
	mu              sync.Mutex
	cond            sync.Cond // wakes the persistent drainer; cond.L = &mu
	fill            []fetchJob
	free            [][]fetchJob // drained buffers awaiting reuse
	c               *engineCounters
	started, closed bool
}

func newGatherQueue(c *engineCounters) *gatherQueue {
	q := &gatherQueue{c: c}
	q.cond.L = &q.mu
	return q
}

// enqueue appends a job and wakes the persistent drainer (starting it on
// first use, so sync-only engines never park a goroutine).
func (q *gatherQueue) enqueue(j fetchJob) {
	q.mu.Lock()
	if q.fill == nil {
		q.fill = q.takeFreeLocked()
	}
	q.fill = append(q.fill, j)
	if !q.started && !q.closed {
		q.started = true
		go q.drainLoop()
	} else {
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// takeFreeLocked pops a recycled buffer (nil when none).
func (q *gatherQueue) takeFreeLocked() []fetchJob {
	if n := len(q.free); n > 0 {
		b := q.free[n-1][:0]
		q.free = q.free[:n-1]
		return b
	}
	return nil
}

// swapLocked takes the filled buffer, leaving a recycled one in its place.
// Returns nil when the queue is empty.
func (q *gatherQueue) swapLocked() []fetchJob {
	if len(q.fill) == 0 {
		return nil
	}
	jobs := q.fill
	q.fill = q.takeFreeLocked()
	return jobs
}

// finish recycles a drained buffer.
func (q *gatherQueue) finish(jobs []fetchJob) {
	q.mu.Lock()
	q.free = append(q.free, jobs[:0])
	q.mu.Unlock()
}

// drainLoop is the persistent drainer: it parks on the cond when the queue
// is dry and exits only when the engine is closed.
func (q *gatherQueue) drainLoop() {
	for {
		q.mu.Lock()
		for len(q.fill) == 0 && !q.closed {
			q.cond.Wait()
		}
		jobs := q.swapLocked()
		if jobs == nil { // closed and dry
			q.started = false
			q.cond.Broadcast() // wake close() waiting for retirement
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
		runJobs(jobs, q.c)
		q.finish(jobs)
	}
}

// drainOn lets a consumer goroutine (inside Await) help with queued work
// instead of idling.
func (q *gatherQueue) drainOn() {
	q.mu.Lock()
	jobs := q.swapLocked()
	q.mu.Unlock()
	if jobs == nil {
		return
	}
	runJobs(jobs, q.c)
	q.finish(jobs)
}

// close wakes the persistent drainer and blocks until it has drained the
// queue and retired. Waiting matters for shutdown ordering: the service
// closes its transport right after the engine, and an in-flight window's
// fetches must reach the fabric before it goes away (the CleanShutdown
// conformance contract).
func (q *gatherQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	for q.started {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// runJobs executes fetches and accounts worker busy time. Transport errors
// are recorded on the owning service (Service.FabricErr); the job still
// retires so Await never deadlocks on a dead peer.
func runJobs(jobs []fetchJob, c *engineCounters) {
	start := time.Now() //hotline:allow detorder measured drainer-busy wall; never feeds math
	for _, j := range jobs {
		st := j.h.staging
		if j.svc != nil {
			j.svc.transportFetch(j.table, j.owner, j.rows, st, j.fetch)
		} else {
			for _, row := range j.rows {
				i := st.slot[row]
				j.fetch(row, st.buf[i*st.dim:(i+1)*st.dim])
			}
		}
		j.h.jobDone()
	}
	c.noteBusy(time.Since(start)) //hotline:allow detorder measured drainer-busy wall; never feeds math
}

// AsyncGatherer executes gather plans off the consumer's critical path: one
// job queue per owner node (the node streaming its resident rows over the
// fabric), drained by a persistent per-queue goroutine that parks when its
// queue runs dry. Submit issues a window; the returned Handle's Await
// blocks only for whatever the overlap failed to hide. GatherSync runs the
// same plan inline, timing the fully exposed cost the synchronous path
// pays.
//
// Plans, stagings and handles pool through a PrefetchRing that grows to the
// pipeline's peak window count — one window per table, depth k iterations
// deep — and is then reused verbatim, so the steady-state prefetch path
// allocates nothing. Consumers return a window with Release when they have
// read its staged rows. Drainer goroutines start lazily on the first
// Submit and are retired by Close (or automatically when the engine
// becomes unreachable).
type AsyncGatherer struct {
	queues []*gatherQueue
	c      *engineCounters
	ring   *PrefetchRing
	// svc, when the engine is attached to a service (EnableAsyncGather),
	// routes fetches through the service's transport; nil engines fetch
	// straight through the FetchFunc. Read-only after attach.
	svc *Service
}

// NewAsyncGatherer builds an engine for a topology of `nodes` owner nodes.
func NewAsyncGatherer(nodes int) *AsyncGatherer {
	if nodes < 1 {
		panic(fmt.Sprintf("shard: async gatherer over %d nodes", nodes))
	}
	g := &AsyncGatherer{
		queues: make([]*gatherQueue, nodes),
		c:      &engineCounters{},
		ring:   NewPrefetchRing(),
	}
	for i := range g.queues {
		g.queues[i] = newGatherQueue(g.c)
	}
	// The drainers reference only their queue and the shared counters, so
	// the engine itself stays collectable; retire them when it goes away.
	runtime.AddCleanup(g, func(queues []*gatherQueue) {
		for _, q := range queues {
			q.close()
		}
	}, g.queues)
	return g
}

// Close retires the persistent drainer goroutines. Windows submitted after
// Close still complete (consumers drain them in Await); Close is optional —
// an unreachable engine's drainers are retired by the runtime cleanup.
func (g *AsyncGatherer) Close() {
	for _, q := range g.queues {
		q.close()
	}
}

// Ring exposes the engine's prefetch ring (plans, stagings and handles pool
// through it).
func (g *AsyncGatherer) Ring() *PrefetchRing { return g.ring }

// AcquirePlan hands out a recycled (or new) plan for a window over the
// engine's topology. The service's PlanGather calls this so plans cycle
// through the ring instead of being allocated per accounting pass.
func (g *AsyncGatherer) AcquirePlan(table int) *GatherPlan {
	return g.ring.Plan(table, len(g.queues))
}

// Release recycles a consumed window: the staging buffer and the plan whose
// slot map it shares go back into the ring. Callers must not touch the
// staging (or any row slice obtained from Lookup) afterwards. Releasing is
// optional — an unreleased window is simply collected by the GC — so
// external users of Submit/GatherSync that predate the ring keep working.
func (g *AsyncGatherer) Release(st *Staging) { g.ring.ReleaseStaging(st) }

// Submit issues one gather window asynchronously and returns its Handle.
// The submitting goroutine yields once so the drainers get scheduled even
// on a single-CPU host — the window then streams while the caller's compute
// runs, which is exactly the overlap the paper's pipeline performs in
// hardware.
//
//hotline:stats-writer
func (g *AsyncGatherer) Submit(plan *GatherPlan, dim int, fetch FetchFunc) *Handle {
	h := g.ring.Handle()
	h.g = g
	h.staging = g.ring.Staging(plan, dim)
	if len(plan.quant) > 0 {
		h.staging.fillQuant(fetch)
	}
	jobs := 0
	for _, rows := range plan.perOwner {
		if len(rows) > 0 {
			jobs++
		}
	}
	g.c.mu.Lock()
	g.c.stats.Windows++
	g.c.stats.PrefetchRows += int64(plan.FabricRows())
	g.c.stats.PrefetchBytes += plan.Bytes
	g.c.mu.Unlock()
	if jobs == 0 {
		return h
	}
	h.mu.Lock()
	h.pending = jobs
	h.mu.Unlock()
	for owner, rows := range plan.perOwner {
		if len(rows) == 0 {
			continue
		}
		g.queues[owner].enqueue(fetchJob{svc: g.svc, table: plan.Table, owner: owner, rows: rows, fetch: fetch, h: h})
	}
	runtime.Gosched()
	return h
}

// GatherSync executes a plan inline on the calling goroutine and returns
// the filled staging buffer. The wall time is accounted as synchronous
// (fully exposed) gather time — the baseline the overlap is measured
// against.
//
//hotline:stats-writer
func (g *AsyncGatherer) GatherSync(plan *GatherPlan, dim int, fetch FetchFunc) *Staging {
	start := time.Now() //hotline:allow detorder measured sync-gather wall; never feeds math
	st := g.ring.Staging(plan, dim)
	if len(plan.quant) > 0 {
		st.fillQuant(fetch)
	}
	for owner, rows := range plan.perOwner {
		if len(rows) == 0 {
			continue
		}
		if g.svc != nil {
			g.svc.transportFetch(plan.Table, owner, rows, st, fetch)
			continue
		}
		for _, row := range rows {
			i := st.slot[row]
			fetch(row, st.buf[i*st.dim:(i+1)*st.dim])
		}
	}
	el := time.Since(start) //hotline:allow detorder measured sync-gather wall; never feeds math
	g.c.mu.Lock()
	g.c.stats.SyncWindows++
	g.c.stats.SyncRows += int64(plan.FabricRows())
	g.c.stats.SyncBytes += plan.Bytes
	g.c.stats.SyncGather += el
	g.c.mu.Unlock()
	return st
}

// Stats snapshots the overlap counters.
func (g *AsyncGatherer) Stats() OverlapStats {
	g.c.mu.Lock()
	defer g.c.mu.Unlock()
	return g.c.stats
}

// ResetStats zeroes the overlap counters (e.g. after warm-up windows).
func (g *AsyncGatherer) ResetStats() {
	g.c.mu.Lock()
	defer g.c.mu.Unlock()
	g.c.stats = OverlapStats{}
}

// noteRepair accounts one window's dirty-row delta repair.
//
//hotline:stats-writer
func (g *AsyncGatherer) noteRepair(rows int, bytes int64) {
	g.c.mu.Lock()
	g.c.stats.RepairRows += int64(rows)
	g.c.stats.RepairBytes += bytes
	g.c.mu.Unlock()
}

// noteStale accounts dirtied rows consumed without repair (stale mode).
//
//hotline:stats-writer
func (g *AsyncGatherer) noteStale(rows int) {
	g.c.mu.Lock()
	g.c.stats.StaleRows += int64(rows)
	g.c.mu.Unlock()
}

// noteExposed accounts one Await's blocked wall time and recycles the
// handle.
//
//hotline:stats-writer
func (g *AsyncGatherer) noteExposed(d time.Duration, h *Handle) {
	g.c.mu.Lock()
	g.c.stats.Exposed += d
	g.c.mu.Unlock()
	g.ring.ReleaseHandle(h)
}
