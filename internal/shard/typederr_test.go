package shard

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// Regression tests for the typed-error gaps the wraperr analyzer flagged
// when it first ran: three sites built errors no errors.Is caller could
// classify. Each test pins the typed form so the bugs stay fixed.

// An error code this build does not know (a protocol-version mismatch)
// used to surface untyped; it must classify as ErrBadFrame.
func TestWireErrUnknownCodeIsBadFrame(t *testing.T) {
	err := wireErr(250, "from the future")
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown wire code = %v, want errors.Is ErrBadFrame", err)
	}
	if errors.Is(wireErr(wireErrUnknownRow, "x"), ErrBadFrame) {
		t.Fatal("known code wireErrUnknownRow must not map to ErrBadFrame")
	}
}

// StartLocalFabric on an unknown network used to return an untyped error;
// it must classify as ErrFabricConfig.
func TestFabricUnknownNetworkIsConfigError(t *testing.T) {
	_, err := StartLocalFabric(2, "carrier-pigeon", time.Second, nil)
	if !errors.Is(err, ErrFabricConfig) {
		t.Fatalf("unknown network = %v, want errors.Is ErrFabricConfig", err)
	}
}

// A well-framed reply with the wrong opcode is a protocol violation: the
// error must classify as ErrBadFrame AND ErrPeerDead (the stream is
// desynced, so the peer goes sticky-dead).
func TestWrongReplyOpcodeIsBadFrameAndPeerDead(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var in []byte
		if _, err := readFrame(srv, in); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		// Reply with a valid hello frame where an ack is wanted.
		out := appendMsg([]byte{0, 0, 0, 0}, &wireMsg{op: opHello, node: 9})
		if err := writeFrame(srv, out); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	tr := &SocketTransport{cfg: FabricConfig{Timeouts: FabricTimeouts{IO: time.Second}.WithDefaults()}}
	p := &socketPeer{conn: cli, addr: "pipe"}
	err := tr.exchange(0, p, &wireMsg{op: opHello, node: 0}, opAck)
	<-done
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("wrong-opcode reply = %v, want errors.Is ErrBadFrame", err)
	}
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("wrong-opcode reply = %v, want errors.Is ErrPeerDead", err)
	}
	if p.err == nil {
		t.Fatal("peer not marked sticky-dead after the protocol violation")
	}
}

// Every ErrPeerDead wrap must carry the peer's dial address and node id,
// and both must survive further %w wrapping by callers (FabricErr wraps the
// transport error again, so failures reach the operator double-wrapped).
func TestPeerDeadErrorCarriesAddrThroughDoubleWrap(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	go func() {
		// Hang up without replying: the exchange read fails.
		var in []byte
		readFrame(srv, in)
		srv.Close()
	}()
	const addr = "/tmp/hlfab/n3_0.sock"
	tr := &SocketTransport{cfg: FabricConfig{Network: "unix", Timeouts: FabricTimeouts{IO: time.Second}.WithDefaults()}}
	p := &socketPeer{conn: cli, addr: addr}
	err := tr.exchange(3, p, &wireMsg{op: opHello, node: 3}, opAck)
	if err == nil {
		t.Fatal("exchange against a hung-up peer succeeded")
	}
	// Double-wrap, as Service.noteFabricErr and the resilient layer do.
	wrapped := fmt.Errorf("gather window 7: %w", fmt.Errorf("fabric: %w", err))
	if !errors.Is(wrapped, ErrPeerDead) {
		t.Fatalf("double-wrapped error = %v, want errors.Is ErrPeerDead", wrapped)
	}
	if !strings.Contains(wrapped.Error(), addr) {
		t.Fatalf("double-wrapped error %q lost the peer address %q", wrapped, addr)
	}
	if !strings.Contains(wrapped.Error(), "node 3") {
		t.Fatalf("double-wrapped error %q lost the node id", wrapped)
	}
}
