//hotline:typed-errors

// Resilient fabric layer: retry, re-dial and spare adoption around the
// fail-fast SocketTransport.
//
// The socket transport deliberately knows nothing about recovery — one bad
// frame and the peer is sticky-dead. ResilientTransport layers policy on
// top: it classifies each failure (transient I/O retries, protocol
// corruption surfaces immediately), re-dials dead peers under a bounded
// backoff schedule with an injectable clock, resyncs a freshly dialed
// (empty) node from the coordinator's authoritative mirror, and can hand a
// dead node's identity to a spare process. Every fetch and scatter in the
// fabric carries absolute row values, so replaying an operation after a
// re-dial is idempotent — the retry loop never needs to reason about
// partial application.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PeerState is one peer's position in the recovery state machine.
type PeerState int32

const (
	// PeerAlive: last operation succeeded; requests flow normally.
	PeerAlive PeerState = iota
	// PeerSuspect: an operation failed transiently; recovery (re-dial,
	// resync) is pending or in flight.
	PeerSuspect
	// PeerDead: the retry budget is exhausted; the peer is unrecoverable
	// and only shard adoption (Service-level failover) can route around it.
	PeerDead
)

// String names the state for health snapshots and logs.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	}
	return fmt.Sprintf("PeerState(%d)", int32(s))
}

// PeerHealth is a point-in-time snapshot of one peer's recovery state — the
// observability surface that replaces squinting at a single sticky
// FabricErr.
type PeerHealth struct {
	Node     int
	Addr     string // current dial address (moves on restart/spare adoption)
	State    PeerState
	Failures int    // consecutive failed operations since the last success
	Redials  int    // successful re-dials over the peer's lifetime
	Adopted  bool   // a spare process holds this node's identity
	LastErr  string // most recent failure, "" while healthy
}

// RetryConfig tunes the resilient layer. The zero value is a working
// production config; tests inject Sleep/Now/Backoff to make recovery
// schedules deterministic.
type RetryConfig struct {
	// MaxAttempts bounds how many times one operation runs (first try
	// included), each retry preceded by a successful recovery. Default 3.
	MaxAttempts int
	// MaxRedials bounds dial attempts within one recovery. Default 8.
	MaxRedials int
	// Budget bounds one recovery's total wall clock; exhausted budget
	// declares the peer unrecoverable. Zero uses the inner transport's
	// FabricTimeouts.Retry.
	Budget time.Duration
	// Backoff returns the pause before redial attempt n (0-based).
	// Default: 1ms doubling per attempt, capped at 250ms.
	Backoff func(attempt int) time.Duration
	// Sleep and Now are the injectable clock. Defaults: time.Sleep,
	// time.Now.
	Sleep func(time.Duration)
	Now   func() time.Time
	// Resolve, when set, is asked for the peer's current address before
	// each redial — the hook a restart harness uses to point the fabric at
	// a node re-listening on a new port. Returning "" keeps the current
	// address; returning an error skips this redial attempt.
	Resolve func(owner int) (string, error)
	// Spares are standby node addresses. After SpareAfter failed redials
	// of a dead peer's own address, the next spare adopts the peer's
	// identity: its address swaps in, the fabric re-dials it, and Resync
	// restores the shard — ownership never changes, so training bits
	// don't either.
	Spares []string
	// SpareAfter is how many failed redials precede spare adoption.
	// Default 2.
	SpareAfter int
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.MaxRedials == 0 {
		c.MaxRedials = 8
	}
	if c.Backoff == nil {
		c.Backoff = func(attempt int) time.Duration {
			d := time.Millisecond << min(attempt, 10)
			return min(d, 250*time.Millisecond)
		}
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.SpareAfter == 0 {
		c.SpareAfter = 2
	}
	return c
}

// rPeer is one peer's recovery state. Operations hold mu.RLock around the
// inner transport call; recovery holds mu.Lock across redial+resync so no
// fetch can race a freshly dialed, not-yet-resynced (empty) node. recMu
// single-flights recovery: concurrent failers queue behind it and find the
// peer already revived.
type rPeer struct {
	mu    sync.RWMutex
	recMu sync.Mutex

	state   atomic.Int32
	fails   atomic.Int32
	redials atomic.Int32
	adopted atomic.Bool
	gone    atomic.Bool // unrecoverable; only failover routes around it

	errMu   sync.Mutex
	lastErr error
}

func (p *rPeer) setErr(err error) {
	p.errMu.Lock()
	p.lastErr = err
	p.errMu.Unlock()
}

func (p *rPeer) lastError() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

// ResilientTransport wraps a SocketTransport with retry, re-dial, resync
// and spare adoption. It implements Transport and is safe for concurrent
// use; recovery of one peer never blocks traffic to the others.
type ResilientTransport struct {
	inner *SocketTransport
	cfg   RetryConfig
	peers []*rPeer

	// resync restores a freshly (re-)dialed node's shard from the
	// coordinator mirror, pushing through direct so it cannot recurse into
	// this layer's locks. Wired by Service.SetTransport.
	resyncMu sync.Mutex
	resync   func(owner int, direct Transport) error

	spareMu   sync.Mutex
	spareNext int

	// recoveryWallNS accumulates the wall clock spent inside successful
	// recoveries (backoff sleeps, redials, resync) — the transport-side
	// recovery latency the mn-chaos scenario reports. Measured with the
	// injectable cfg.Now clock.
	recoveryWallNS atomic.Int64
}

// NewResilientTransport layers retry/re-dial policy over a dialed socket
// fabric. The resilient layer owns inner from here on; Close closes it.
func NewResilientTransport(inner *SocketTransport, cfg RetryConfig) (*ResilientTransport, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: resilient layer needs a dialed SocketTransport", ErrFabricConfig)
	}
	if cfg.MaxAttempts < 0 || cfg.MaxRedials < 0 || cfg.Budget < 0 || cfg.SpareAfter < 0 {
		return nil, fmt.Errorf("%w: negative retry bound in %+v", ErrFabricConfig, cfg)
	}
	cfg = cfg.withDefaults()
	if cfg.Budget == 0 {
		cfg.Budget = inner.cfg.Timeouts.Retry
	}
	r := &ResilientTransport{inner: inner, cfg: cfg, peers: make([]*rPeer, len(inner.peers))}
	for i := range r.peers {
		r.peers[i] = &rPeer{}
	}
	return r, nil
}

// setResync installs the mirror-resync callback (called by
// Service.SetTransport; a fabric without one revives peers with empty
// stores, which is only correct for freshly restarted processes that are
// resynced some other way).
func (r *ResilientTransport) setResync(fn func(owner int, direct Transport) error) {
	r.resyncMu.Lock()
	r.resync = fn
	r.resyncMu.Unlock()
}

func (r *ResilientTransport) getResync() func(owner int, direct Transport) error {
	r.resyncMu.Lock()
	defer r.resyncMu.Unlock()
	return r.resync
}

// Name reports the inner socket family; the retry layer is policy, not a
// different wire.
func (r *ResilientTransport) Name() string { return r.inner.Name() }

// Multiproc reports true: rows still cross a process boundary.
func (r *ResilientTransport) Multiproc() bool { return true }

// Close closes the inner fabric.
func (r *ResilientTransport) Close() error { return r.inner.Close() }

// Fetch implements Transport with retry: transient failures trigger
// recovery (re-dial + resync) and the fetch replays — idempotent, the rows
// stream absolute values. Corruption-class failures surface immediately.
func (r *ResilientTransport) Fetch(table, owner int, rows []int32, st *Staging, local FetchFunc) error {
	return r.do(owner, func() error { return r.inner.Fetch(table, owner, rows, st, local) })
}

// Push implements Transport with retry. Scatter pushes carry the rows'
// absolute current values, so a replay after re-dial is idempotent.
func (r *ResilientTransport) Push(table, owner int, rows []int32, src RowAt) error {
	return r.do(owner, func() error { return r.inner.Push(table, owner, rows, src) })
}

// FetchFast is the serve path's fetch: exactly one attempt, no backoff
// sleeps. Against a non-alive peer it makes at most one opportunistic
// recovery probe (re-dial + resync, single-flight, budget-free) so serving
// un-degrades by itself when the peer returns, and otherwise fails fast so
// the caller can answer from warmed caches instead.
func (r *ResilientTransport) FetchFast(table, owner int, rows []int32, st *Staging, local FetchFunc) error {
	p := r.peers[owner]
	if PeerState(p.state.Load()) == PeerAlive && !p.gone.Load() {
		p.mu.RLock()
		err := r.inner.Fetch(table, owner, rows, st, local)
		p.mu.RUnlock()
		if err == nil {
			r.noteSuccess(p)
			return nil
		}
		r.noteFailure(p, err)
		if !TransientFabricErr(err) {
			return err
		}
	}
	if err := r.probePeer(owner); err != nil {
		return err
	}
	p.mu.RLock()
	err := r.inner.Fetch(table, owner, rows, st, local)
	p.mu.RUnlock()
	if err == nil {
		r.noteSuccess(p)
		return nil
	}
	r.noteFailure(p, err)
	return err
}

// PeerHealth snapshots every peer's recovery state, ordered by node id.
func (r *ResilientTransport) PeerHealth() []PeerHealth {
	out := make([]PeerHealth, len(r.peers))
	for i, p := range r.peers {
		h := PeerHealth{
			Node:     i,
			Addr:     r.inner.peerAddr(i),
			State:    PeerState(p.state.Load()),
			Failures: int(p.fails.Load()),
			Redials:  int(p.redials.Load()),
			Adopted:  p.adopted.Load(),
		}
		if err := p.lastError(); err != nil {
			h.LastErr = err.Error()
		}
		out[i] = h
	}
	return out
}

// TransientFabricErr classifies a fabric failure: true means retrying after
// a re-dial can help (connection loss, timeout, truncated stream), false
// means it cannot or must not (protocol corruption, unknown rows, config
// errors, a closed fabric).
func TransientFabricErr(err error) bool {
	switch {
	case err == nil:
		return false
	case isAny(err, ErrBadFrame, ErrFrameTooLarge):
		// Corruption: the stream produced bytes that never form a valid
		// frame. Retrying blind risks re-applying whatever poisoned it;
		// surface it and let the operator (or the chaos test) look.
		return false
	case isAny(err, ErrUnknownRow, ErrFabricConfig, ErrClosed):
		return false
	}
	// Everything else — dial refusals, I/O timeouts, EOF/truncated frames,
	// plain ErrPeerDead — is connection-class and worth a re-dial.
	return true
}

// do runs one idempotent operation with the retry policy: op under the
// peer's read lock; transient failure → single-flight recovery → replay.
func (r *ResilientTransport) do(owner int, op func() error) error {
	p := r.peers[owner]
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if p.gone.Load() {
			return r.deadErr(owner, p)
		}
		if attempt > 0 || PeerState(p.state.Load()) != PeerAlive {
			if err := r.recoverPeer(owner); err != nil {
				return err
			}
		}
		p.mu.RLock()
		err := op()
		p.mu.RUnlock()
		if err == nil {
			r.noteSuccess(p)
			return nil
		}
		r.noteFailure(p, err)
		if !TransientFabricErr(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("%w: node %d (%s %s) still failing after %d attempts: %w",
		ErrPeerDead, owner, r.inner.cfg.Network, r.inner.peerAddr(owner), r.cfg.MaxAttempts, lastErr)
}

func (r *ResilientTransport) noteSuccess(p *rPeer) {
	p.state.Store(int32(PeerAlive))
	p.fails.Store(0)
	p.setErr(nil)
}

func (r *ResilientTransport) noteFailure(p *rPeer, err error) {
	p.fails.Add(1)
	p.setErr(err)
	if !p.gone.Load() {
		p.state.Store(int32(PeerSuspect))
	}
}

// deadErr describes an unrecoverable peer, wrapping its terminal error.
func (r *ResilientTransport) deadErr(owner int, p *rPeer) error {
	last := p.lastError()
	if last == nil {
		last = ErrPeerDead
	}
	return fmt.Errorf("%w: node %d (%s %s) unrecoverable: %w",
		ErrPeerDead, owner, r.inner.cfg.Network, r.inner.peerAddr(owner), last)
}

// recoverPeer revives one peer: bounded backoff re-dials (optionally
// re-resolved or spare-adopted addresses), then a mirror resync, all while
// holding the peer's write lock so no operation can observe the
// half-revived (empty) node. Single-flight: concurrent failers block on
// recMu and find the peer already alive. Exhausting the budget marks the
// peer unrecoverable — from then on only shard adoption serves its rows.
func (r *ResilientTransport) recoverPeer(owner int) error {
	p := r.peers[owner]
	p.recMu.Lock()
	defer p.recMu.Unlock()
	if p.gone.Load() {
		return r.deadErr(owner, p)
	}
	if PeerState(p.state.Load()) == PeerAlive {
		return nil // another flight already revived it
	}
	start := r.cfg.Now()
	deadline := start.Add(r.cfg.Budget)
	lastErr := p.lastError()
	for attempt := 0; ; attempt++ {
		if attempt >= r.cfg.MaxRedials || r.cfg.Now().After(deadline) {
			p.gone.Store(true)
			p.state.Store(int32(PeerDead))
			err := fmt.Errorf("%w: node %d (%s %s) unrecoverable after %d redials: %w",
				ErrPeerDead, owner, r.inner.cfg.Network, r.inner.peerAddr(owner), attempt, lastErr)
			p.setErr(err)
			return err
		}
		r.cfg.Sleep(r.cfg.Backoff(attempt))
		r.retarget(owner, p, attempt)
		if err := r.revive(owner, p); err != nil {
			lastErr = err
			p.setErr(err)
			continue
		}
		r.recoveryWallNS.Add(r.cfg.Now().Sub(start).Nanoseconds())
		return nil
	}
}

// RecoveryWall reports the cumulative wall clock successful recoveries took
// (from first failure handling to revival), measured on the injected clock.
func (r *ResilientTransport) RecoveryWall() time.Duration {
	return time.Duration(r.recoveryWallNS.Load())
}

// probePeer is recoverPeer for the serve path: one redial attempt, no
// sleeps, no budget consumption, and TryLock instead of blocking — a serve
// gather never waits behind a training-side recovery.
func (r *ResilientTransport) probePeer(owner int) error {
	p := r.peers[owner]
	if !p.recMu.TryLock() {
		if err := p.lastError(); err != nil {
			return err
		}
		return fmt.Errorf("%w: node %d (%s %s) recovery in flight",
			ErrPeerDead, owner, r.inner.cfg.Network, r.inner.peerAddr(owner))
	}
	defer p.recMu.Unlock()
	if PeerState(p.state.Load()) == PeerAlive && !p.gone.Load() {
		return nil
	}
	start := r.cfg.Now()
	r.retarget(owner, p, 0)
	if err := r.revive(owner, p); err != nil {
		p.setErr(err)
		return err
	}
	r.recoveryWallNS.Add(r.cfg.Now().Sub(start).Nanoseconds())
	return nil
}

// retarget updates the peer's dial address ahead of a redial: Resolve wins
// (a restart harness reporting the new port); otherwise, once attempt
// passes SpareAfter, the next spare address adopts the peer's identity.
func (r *ResilientTransport) retarget(owner int, p *rPeer, attempt int) {
	if r.cfg.Resolve != nil {
		if addr, err := r.cfg.Resolve(owner); err == nil && addr != "" {
			r.inner.setPeerAddr(owner, addr)
			return
		}
	}
	if attempt < r.cfg.SpareAfter || p.adopted.Load() {
		return
	}
	r.spareMu.Lock()
	defer r.spareMu.Unlock()
	if r.spareNext < len(r.cfg.Spares) {
		r.inner.setPeerAddr(owner, r.cfg.Spares[r.spareNext])
		r.spareNext++
		p.adopted.Store(true)
	}
}

// revive re-dials the peer at its current address and resyncs its shard
// from the mirror, under the write lock that keeps every operation out
// until the node holds correct bits again.
func (r *ResilientTransport) revive(owner int, p *rPeer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := r.inner.redialPeer(owner); err != nil {
		return err
	}
	if resync := r.getResync(); resync != nil {
		if err := resync(owner, r.inner); err != nil {
			return fmt.Errorf("%w: node %d (%s %s) resync after redial: %w",
				ErrPeerDead, owner, r.inner.cfg.Network, r.inner.peerAddr(owner), err)
		}
	}
	p.state.Store(int32(PeerAlive))
	p.fails.Store(0)
	p.redials.Add(1)
	p.setErr(nil)
	return nil
}

// isAny reports errors.Is against any of the targets.
func isAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
