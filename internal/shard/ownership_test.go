package shard

import "testing"

func TestRoundRobinPartitioner(t *testing.T) {
	p := NewRoundRobin(4)
	if p.Nodes() != 4 || p.Name() != "round-robin" {
		t.Fatalf("round-robin identity: %d %q", p.Nodes(), p.Name())
	}
	for r := int32(0); r < 32; r++ {
		if p.Owner(3, r) != int(r)%4 {
			t.Fatalf("row %d owner %d", r, p.Owner(3, r))
		}
	}
}

func TestCapacityWeightedProportions(t *testing.T) {
	p := NewCapacityWeighted([]int{2, 1, 1})
	if p.Nodes() != 3 {
		t.Fatalf("nodes = %d", p.Nodes())
	}
	counts := make([]int, 3)
	const rows = 4000
	for r := int32(0); r < rows; r++ {
		counts[p.Owner(0, r)]++
	}
	if counts[0] != rows/2 || counts[1] != rows/4 || counts[2] != rows/4 {
		t.Fatalf("weighted spread: %v", counts)
	}
	// Zero-weight nodes own nothing but stay part of the topology.
	z := NewCapacityWeighted([]int{1, 0})
	for r := int32(0); r < 16; r++ {
		if z.Owner(0, r) != 0 {
			t.Fatalf("zero-weight node owns row %d", r)
		}
	}
}

func TestCapacityWeightedValidation(t *testing.T) {
	for _, weights := range [][]int{nil, {}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v must panic", weights)
				}
			}()
			NewCapacityWeighted(weights)
		}()
	}
}

func TestCapacityWeightedHBMBudgets(t *testing.T) {
	// Real per-node HBM byte budgets: 32 KB / 16 KB / 16 KB / 8 KB at 64 B
	// per row hold 512 / 256 / 256 / 128 rows -> weights reduce to 4:2:2:1.
	p := NewCapacityWeightedHBM([]int64{32 << 10, 16 << 10, 16 << 10, 8 << 10}, 64)
	if p.Nodes() != 4 || p.Name() != "capacity-weighted" {
		t.Fatalf("identity: %d %q", p.Nodes(), p.Name())
	}
	counts := make([]int, 4)
	const rows = 9000
	for r := int32(0); r < rows; r++ {
		counts[p.Owner(0, r)]++
	}
	if counts[0] != rows*4/9 || counts[1] != rows*2/9 || counts[2] != rows*2/9 || counts[3] != rows/9 {
		t.Fatalf("HBM-derived spread: %v", counts)
	}
	// A budget below one row means the node owns no rows (but stays in the
	// topology); byte remainders below a full row are ignored.
	q := NewCapacityWeightedHBM([]int64{130, 63}, 64) // 2 rows vs 0 rows
	for r := int32(0); r < 16; r++ {
		if q.Owner(0, r) != 0 {
			t.Fatalf("sub-row budget node owns row %d", r)
		}
	}
}

func TestCapacityWeightedHBMValidation(t *testing.T) {
	cases := []struct {
		budgets  []int64
		rowBytes int64
	}{
		{nil, 64},                  // no budgets
		{[]int64{}, 64},            // no budgets
		{[]int64{1 << 20}, 0},      // invalid row footprint
		{[]int64{-1, 1 << 20}, 64}, // negative budget
		{[]int64{63, 63}, 64},      // no budget holds one row
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("budgets %v rowBytes %d must panic", c.budgets, c.rowBytes)
				}
			}()
			NewCapacityWeightedHBM(c.budgets, c.rowBytes)
		}()
	}
}

func TestAssignedOverridesWithFallback(t *testing.T) {
	a := NewAssigned(NewRoundRobin(4), "test")
	a.Assign(0, 7, 2) // round-robin owner would be 3
	a.Assign(1, 7, 1) // ownership is per-table
	if got := a.Owner(0, 7); got != 2 {
		t.Fatalf("override ignored: %d", got)
	}
	if got := a.Owner(1, 7); got != 1 {
		t.Fatalf("per-table override: %d", got)
	}
	if got := a.Owner(0, 6); got != 2 {
		t.Fatalf("fallback row: %d", got)
	}
	if a.Overrides() != 2 {
		t.Fatalf("overrides = %d", a.Overrides())
	}
}

func TestHotAwarePinsDominantRequester(t *testing.T) {
	rc := NewRequestCounter(4)
	// Row 8 (round-robin owner 0) is requested overwhelmingly by batch
	// positions dealt to node 2 (positions 2, 6, 10, ...).
	idx := make([][]int32, 12)
	for b := range idx {
		if b%4 == 2 {
			idx[b] = []int32{8, 8}
		} else {
			idx[b] = []int32{9}
		}
	}
	rc.Observe(0, idx)
	p := rc.HotAware(hotSet(0, 8)) // only row 8 is popular
	if got := p.Owner(0, 8); got != 2 {
		t.Fatalf("hot row must follow its dominant requester: node %d", got)
	}
	// Row 9 was observed but is not popular: round-robin fallback.
	if got := p.Owner(0, 9); got != 1 {
		t.Fatalf("cold row must keep round-robin: node %d", got)
	}
	if p.Name() != PlaceHotAware.String() {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestHotAwareReducesTrafficOnSkew(t *testing.T) {
	// A skewed synthetic stream: a small popular head accessed every batch,
	// a rotating cold tail. Hot-aware ownership must strictly reduce the
	// all-to-all volume vs round-robin on the identical stream, because the
	// pinned owner is always one of the row's requesters.
	const nodes, batchN, iters = 4, 16, 30
	stream := func(it int) [][]int32 {
		idx := make([][]int32, batchN)
		for b := range idx {
			// Head rows 0..3 dominate, each with a two-node requester set
			// that mostly differs from its round-robin owner; tail rows
			// rotate per iteration.
			head := int32((b % 8) / 2)
			idx[b] = []int32{head, int32(64 + (it*batchN+b)%192)}
		}
		return idx
	}
	hot := hotSet(0, 0, 1, 2, 3)
	run := func(part Partitioner) Stats {
		svc := New(Config{Nodes: nodes, CacheBytes: 0, RowBytes: 64, Part: part}, hot)
		for it := 0; it < iters; it++ {
			idx := stream(it)
			svc.RecordGather(0, idx)
			svc.RecordScatter(0, idx)
		}
		return svc.Snapshot()
	}
	rc := NewRequestCounter(nodes)
	for it := 0; it < iters; it++ {
		rc.Observe(0, stream(it))
	}
	rr := run(NewRoundRobin(nodes))
	ha := run(rc.HotAware(hot))
	if ha.A2ABytes() >= rr.A2ABytes() {
		t.Fatalf("hot-aware a2a %d must be < round-robin %d", ha.A2ABytes(), rr.A2ABytes())
	}
	if ha.LocalFrac() <= rr.LocalFrac() {
		t.Fatalf("hot-aware local frac %g must exceed round-robin %g",
			ha.LocalFrac(), rr.LocalFrac())
	}
}

func TestServiceRejectsMismatchedPartitioner(t *testing.T) {
	cfg := Config{Nodes: 4, CacheBytes: 0, RowBytes: 64, Part: NewRoundRobin(2)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("partitioner/node mismatch must fail validation")
	}
}
