package shard

import (
	"fmt"
	"sort"
)

// Partitioner decides which node owns each embedding row. Ownership must be
// deterministic and total: the same (table, row) always maps to the same
// node in [0, Nodes). It replaces the substrate's original hard-coded
// round-robin rule, so non-uniform placements (capacity-weighted shards,
// popular rows co-located with their dominant requesters) plug into the
// Service, the ShardedBag storage layout and the traffic accounting without
// touching any training math.
type Partitioner interface {
	// Owner returns the node that owns row `row` of table `table`.
	Owner(table int, row int32) int
	// Nodes returns the node count the partitioner spreads rows across.
	Nodes() int
	// Name labels the placement policy in reports and measurement memo keys.
	Name() string
}

// PlacementKind names the ownership policies the substrate ships, for
// scenario sweeps and measurement memo keys.
type PlacementKind uint8

const (
	// PlaceRoundRobin is the uniform baseline: row r lives on node r mod N.
	PlaceRoundRobin PlacementKind = iota
	// PlaceCapacity spreads rows proportionally to per-node capacity weights.
	PlaceCapacity
	// PlaceHotAware co-locates popular rows with their dominant requesting
	// node and falls back to round-robin for the cold tail.
	PlaceHotAware
)

// String names the placement for reports.
func (k PlacementKind) String() string {
	switch k {
	case PlaceCapacity:
		return "capacity-weighted"
	case PlaceHotAware:
		return "hot-aware"
	}
	return "round-robin"
}

// --- round-robin -----------------------------------------------------------

type roundRobin struct{ nodes int }

// NewRoundRobin returns the uniform partitioner: row r of every table lives
// on node r mod nodes (the substrate's original hard-coded rule).
func NewRoundRobin(nodes int) Partitioner {
	if nodes < 1 {
		panic(fmt.Sprintf("shard: round-robin over %d nodes", nodes))
	}
	return roundRobin{nodes: nodes}
}

//hotline:hotpath
func (p roundRobin) Owner(table int, row int32) int { return int(row) % p.nodes }
func (p roundRobin) Nodes() int                     { return p.nodes }
func (p roundRobin) Name() string                   { return PlaceRoundRobin.String() }

// --- capacity-weighted -----------------------------------------------------

type capacityWeighted struct {
	schedule []int32 // repeating owner pattern, interleaved for balance
	nodes    int
}

// NewCapacityWeighted spreads rows in proportion to integer per-node
// capacity weights (a heterogeneous cluster where some nodes hold more HBM
// than others). Ownership follows a fixed repeating schedule that
// interleaves nodes — weights {2, 1, 1} yield the pattern 0 1 2 0 — so
// consecutive rows still spread across nodes while node n ends up with
// weights[n]/sum of every table. A zero weight is allowed (the node owns no
// rows but still deals samples and caches replicas).
func NewCapacityWeighted(weights []int) Partitioner {
	if len(weights) == 0 {
		panic("shard: capacity-weighted with no weights")
	}
	maxW, total := 0, 0
	for n, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("shard: negative capacity weight %d for node %d", w, n))
		}
		if w > maxW {
			maxW = w
		}
		total += w
	}
	if total == 0 {
		panic("shard: capacity-weighted with all-zero weights")
	}
	p := capacityWeighted{nodes: len(weights), schedule: make([]int32, 0, total)}
	for round := 0; round < maxW; round++ {
		for n, w := range weights {
			if round < w {
				p.schedule = append(p.schedule, int32(n))
			}
		}
	}
	return p
}

//hotline:hotpath
func (p capacityWeighted) Owner(table int, row int32) int {
	return int(p.schedule[int(row)%len(p.schedule)])
}
func (p capacityWeighted) Nodes() int   { return p.nodes }
func (p capacityWeighted) Name() string { return PlaceCapacity.String() }

// NewCapacityWeightedHBM derives the capacity-weighted placement from real
// per-node HBM byte budgets — each node's device-memory allowance for its
// embedding shard (e.g. its shard.Config cache budget on a heterogeneous
// cluster) — instead of hand-picked demo weights. The weight of node n is
// how many rowBytes-sized embedding rows its budget holds; weights are
// reduced by their GCD so the repeating ownership schedule stays short.
// A node whose budget holds no full row gets weight zero (it owns no rows
// but still deals samples and caches replicas); at least one budget must
// hold a row.
func NewCapacityWeightedHBM(hbmBytes []int64, rowBytes int64) Partitioner {
	if len(hbmBytes) == 0 {
		panic("shard: capacity-weighted placement with no HBM budgets")
	}
	if rowBytes < 4 {
		panic(fmt.Sprintf("shard: capacity-weighted placement with row footprint %d", rowBytes))
	}
	weights := make([]int, len(hbmBytes))
	g := 0
	for n, b := range hbmBytes {
		if b < 0 {
			panic(fmt.Sprintf("shard: negative HBM budget %d for node %d", b, n))
		}
		weights[n] = int(b / rowBytes)
		g = gcd(g, weights[n])
	}
	if g == 0 {
		panic(fmt.Sprintf("shard: no HBM budget in %v holds one %d-byte row", hbmBytes, rowBytes))
	}
	for n := range weights {
		weights[n] /= g
	}
	return NewCapacityWeighted(weights)
}

// gcd returns the greatest common divisor (gcd(0, b) = b).
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// --- hot-row-aware ---------------------------------------------------------

// Assigned overrides ownership for an explicit set of rows and delegates
// everything else to a base partitioner. It is the mechanism behind the
// hot-aware placement: the overrides are the popular rows, pinned to their
// dominant requesters, while the cold tail keeps the base layout.
type Assigned struct {
	base   Partitioner
	assign map[uint64]int32 // key(table,row) -> owner node
	name   string
}

// NewAssigned returns an empty override layer on top of base.
func NewAssigned(base Partitioner, name string) *Assigned {
	return &Assigned{base: base, assign: make(map[uint64]int32), name: name}
}

// Assign pins (table, row) to node. Later assignments overwrite earlier ones.
func (a *Assigned) Assign(table int, row int32, node int) {
	if node < 0 || node >= a.base.Nodes() {
		panic(fmt.Sprintf("shard: assign row to node %d of %d", node, a.base.Nodes()))
	}
	a.assign[key(table, row)] = int32(node)
}

// Overrides returns how many rows carry explicit ownership.
func (a *Assigned) Overrides() int { return len(a.assign) }

// Owner implements Partitioner.
func (a *Assigned) Owner(table int, row int32) int {
	if n, ok := a.assign[key(table, row)]; ok {
		return int(n)
	}
	return a.base.Owner(table, row)
}

// Nodes implements Partitioner.
func (a *Assigned) Nodes() int { return a.base.Nodes() }

// Name implements Partitioner.
func (a *Assigned) Name() string { return a.name }

// RequestCounter tallies, per (table, row), how often each node requests the
// row, with samples dealt to nodes round-robin by batch position exactly
// like Service.NodeOf. Feed it the access stream the placement should
// optimise for (the learning-phase profile), then build the hot-aware
// partitioner from the tallies.
type RequestCounter struct {
	nodes  int
	counts map[uint64][]int64 // key(table,row) -> per-node request counts
}

// NewRequestCounter returns an empty counter for a topology of `nodes` nodes.
func NewRequestCounter(nodes int) *RequestCounter {
	if nodes < 1 {
		panic(fmt.Sprintf("shard: request counter over %d nodes", nodes))
	}
	return &RequestCounter{nodes: nodes, counts: make(map[uint64][]int64)}
}

// Observe tallies one bag access set (indices[b] lists the rows batch
// position b touches; position b is dealt to node b mod nodes).
func (rc *RequestCounter) Observe(table int, indices [][]int32) {
	for b := range indices {
		node := b % rc.nodes
		for _, ix := range indices[b] {
			k := key(table, ix)
			c := rc.counts[k]
			if c == nil {
				c = make([]int64, rc.nodes)
				rc.counts[k] = c
			}
			c[node]++
		}
	}
}

// HotAware builds the hot-row-aware placement: every observed row the
// classifier marks popular is pinned to the node that requested it most
// (ties break toward the lowest node id), so the heaviest request stream
// for each popular row becomes local and its gather and gradient-scatter
// messages disappear. Rows the classifier rejects — and rows never observed
// — keep the round-robin fallback. A nil classifier pins every observed row.
func (rc *RequestCounter) HotAware(hot HotClassifier) Partitioner {
	a := NewAssigned(NewRoundRobin(rc.nodes), PlaceHotAware.String())
	// Sorted key walk: map iteration order must not leak into anything
	// observable (Assign is last-writer-wins per distinct key, but a
	// deterministic walk keeps the build reproducible under -race and easy
	// to debug).
	keys := make([]uint64, 0, len(rc.counts))
	for k := range rc.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		table, row := int(k>>32), int32(uint32(k))
		if hot != nil && !hot.IsHot(table, row) {
			continue
		}
		best, c := 0, rc.counts[k]
		for n := 1; n < rc.nodes; n++ {
			if c[n] > c[best] {
				best = n
			}
		}
		a.Assign(table, row, best)
	}
	return a
}
