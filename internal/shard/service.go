package shard

import (
	"fmt"
	"sync"

	"hotline/internal/cost"
	"hotline/internal/sim"
)

// HotClassifier decides which rows count as popular and may be replicated
// into device caches. embedding.Placement satisfies it directly; adapters
// can wrap the accelerator's EAL. A nil classifier admits every remote row
// (pure demand-cache mode, the admission ablation baseline).
type HotClassifier interface {
	IsHot(table int, row int32) bool
}

// Config sizes a sharded embedding service.
type Config struct {
	// Nodes is the number of simulated nodes the tables shard across.
	Nodes int
	// CacheBytes is each node's device-cache capacity for replicated rows.
	CacheBytes int64
	// RowBytes is one embedding row's footprint (EmbedDim * 4 for float32).
	RowBytes int64
	// Policy selects the device-cache eviction policy (default LRU).
	Policy Policy
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("shard: Nodes %d < 1", c.Nodes)
	}
	if c.RowBytes < 4 {
		return fmt.Errorf("shard: RowBytes %d < 4", c.RowBytes)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("shard: negative CacheBytes %d", c.CacheBytes)
	}
	return nil
}

// CacheRows returns the per-node cache capacity in rows.
func (c Config) CacheRows() int { return int(c.CacheBytes / c.RowBytes) }

// Stats is a snapshot of a Service's traffic counters. All row counters are
// in embedding rows; byte counters already include the row footprint.
type Stats struct {
	Nodes int

	// Lookups counts every embedding access routed through the service.
	Lookups int64
	// Local counts lookups whose row is owned by the requesting node.
	Local int64
	// CacheHits / CacheMisses count remote lookups served by / missing the
	// requesting node's device cache.
	CacheHits, CacheMisses int64
	// GatherRows / GatherBytes count rows actually fetched across the
	// fabric (cache misses deduplicated within one gather call, i.e. one
	// fetch per distinct row per node per iteration).
	GatherRows, GatherBytes int64
	// ScatterRows / ScatterBytes count gradient rows pushed back to their
	// owner nodes (one per distinct touched remote row per node).
	ScatterRows, ScatterBytes int64
	// FillBytes counts replication traffic admitted into device caches.
	FillBytes int64
	// Evictions counts device-cache displacements across all nodes.
	Evictions int64
}

// HitRate returns device-cache hits over all remote lookups.
func (s Stats) HitRate() float64 {
	r := s.CacheHits + s.CacheMisses
	if r == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(r)
}

// RemoteFrac returns the fraction of lookups that land on a remote shard
// (before the device cache intervenes).
func (s Stats) RemoteFrac() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.CacheHits+s.CacheMisses) / float64(s.Lookups)
}

// GatherFrac returns the fraction of lookups that cross the fabric after
// caching and intra-iteration dedup — the measured analogue of the analytic
// cold-lookup × dedup product the timing models otherwise assume.
func (s Stats) GatherFrac() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.GatherRows) / float64(s.Lookups)
}

// ScatterFrac returns gradient push-back rows as a fraction of lookups.
func (s Stats) ScatterFrac() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.ScatterRows) / float64(s.Lookups)
}

// A2ABytes returns the total all-to-all volume: gathers plus scatters.
func (s Stats) A2ABytes() int64 { return s.GatherBytes + s.ScatterBytes }

// Sub returns s minus prev, counter-wise (for per-window deltas).
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Lookups -= prev.Lookups
	d.Local -= prev.Local
	d.CacheHits -= prev.CacheHits
	d.CacheMisses -= prev.CacheMisses
	d.GatherRows -= prev.GatherRows
	d.GatherBytes -= prev.GatherBytes
	d.ScatterRows -= prev.ScatterRows
	d.ScatterBytes -= prev.ScatterBytes
	d.FillBytes -= prev.FillBytes
	d.Evictions -= prev.Evictions
	return d
}

// AllToAllTime prices the snapshot's gather+scatter volume with the cost
// models: each node exchanges its per-node share over the inter-node fabric
// (intra-node NVLink when the system is a single box).
func (s Stats) AllToAllTime(sys cost.System) sim.Duration {
	if s.Nodes <= 1 {
		return 0
	}
	perNode := s.A2ABytes() / int64(s.Nodes)
	link := sys.IB
	if sys.Nodes <= 1 {
		link = sys.NVLink
	}
	return cost.AllToAllTime(link, perNode, s.Nodes)
}

// Service is the sharded embedding substrate: N nodes, each owning a
// round-robin slice of every table's rows plus a bounded device cache of
// replicated popular rows. Embedding bags route accesses through
// RecordGather/RecordScatter; the Service simulates cache state and
// accumulates the traffic counters the timing models and scenario
// experiments consume.
//
// A Service is safe for concurrent use (the Hotline executor runs popular
// and non-popular µ-batches concurrently): counter totals are exact; under
// concurrent recording only the cache interleaving — never any training
// math — depends on scheduling.
type Service struct {
	cfg Config
	hot HotClassifier

	mu     sync.Mutex
	caches []*DeviceCache
	stats  Stats
}

// New builds a Service. hot may be nil (admit every remote row).
func New(cfg Config, hot HotClassifier) *Service {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Service{cfg: cfg, hot: hot, caches: make([]*DeviceCache, cfg.Nodes)}
	for n := range s.caches {
		s.caches[n] = NewDeviceCache(cfg.CacheRows(), cfg.Policy)
	}
	return s
}

// Nodes returns the node count.
func (s *Service) Nodes() int { return s.cfg.Nodes }

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// Owner returns the node that owns a row (round-robin partition).
func (s *Service) Owner(row int32) int { return int(row) % s.cfg.Nodes }

// NodeOf returns the node a batch position is dealt to (round-robin data
// parallelism; µ-batches inherit the mapping by position).
func (s *Service) NodeOf(sample int) int { return sample % s.cfg.Nodes }

// key packs (table, row) into a cache key.
func key(table int, row int32) uint64 {
	return uint64(table)<<32 | uint64(uint32(row))
}

// RecordGather routes one bag lookup's index set (indices[b] lists the rows
// batch position b accesses) through the shard topology: local rows are
// free, remote rows probe the requesting node's device cache, and misses
// are gathered once per distinct (node, row) with popular rows admitted
// into the cache. Deterministic: indices are walked in order.
func (s *Service) RecordGather(table int, indices [][]int32) {
	if s.cfg.Nodes == 1 {
		// Single node: every access is local; count and return.
		var n int64
		for b := range indices {
			n += int64(len(indices[b]))
		}
		s.mu.Lock()
		s.stats.Lookups += n
		s.stats.Local += n
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// gathered dedups fabric fetches within this call (one iteration's bag).
	var gathered map[uint64]struct{}
	for b := range indices {
		node := s.NodeOf(b)
		cache := s.caches[node]
		for _, ix := range indices[b] {
			s.stats.Lookups++
			if s.Owner(ix) == node {
				s.stats.Local++
				continue
			}
			k := key(table, ix)
			if cache.Lookup(k) {
				s.stats.CacheHits++
				continue
			}
			s.stats.CacheMisses++
			// The dedup key is (requesting node, row); the table is fixed
			// within one call.
			nk := uint64(node)<<32 | uint64(uint32(ix))
			if gathered == nil {
				gathered = make(map[uint64]struct{})
			}
			if _, ok := gathered[nk]; !ok {
				gathered[nk] = struct{}{}
				s.stats.GatherRows++
				s.stats.GatherBytes += s.cfg.RowBytes
			}
			if s.hot == nil || s.hot.IsHot(table, ix) {
				if cache.Insert(k) {
					s.stats.Evictions++
				}
				s.stats.FillBytes += s.cfg.RowBytes
			}
		}
	}
}

// RecordScatter accounts the gradient push-back for one bag's backward
// pass: every node locally pre-reduces its gradient contributions, then
// sends one row-sized message per distinct remote row it touched to that
// row's owner.
func (s *Service) RecordScatter(table int, indices [][]int32) {
	if s.cfg.Nodes == 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sent map[uint64]struct{}
	for b := range indices {
		node := s.NodeOf(b)
		for _, ix := range indices[b] {
			if s.Owner(ix) == node {
				continue
			}
			nk := uint64(node)<<32 | uint64(uint32(ix))
			if sent == nil {
				sent = make(map[uint64]struct{})
			}
			if _, ok := sent[nk]; ok {
				continue
			}
			sent[nk] = struct{}{}
			s.stats.ScatterRows++
			s.stats.ScatterBytes += s.cfg.RowBytes
		}
	}
}

// Preload replicates the given rows of one table into every non-owner
// node's device cache (the learning-phase bulk replication), accounting the
// fill traffic. Rows are admitted in the given order, so a bounded cache
// deterministically keeps the most recently preloaded suffix.
func (s *Service) Preload(table int, rows []int32) {
	if s.cfg.Nodes == 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ix := range rows {
		owner := s.Owner(ix)
		k := key(table, ix)
		for n, cache := range s.caches {
			if n == owner || cache.Capacity() == 0 {
				continue
			}
			if cache.Insert(k) {
				s.stats.Evictions++
			}
			s.stats.FillBytes += s.cfg.RowBytes
		}
	}
}

// Snapshot returns the current counters (with Nodes filled in).
func (s *Service) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Nodes = s.cfg.Nodes
	return st
}

// ResetStats zeroes the traffic counters but keeps cache contents (steady
// state), so warm-up windows can be excluded from measurements.
func (s *Service) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// CacheOccupancy returns the mean device-cache occupancy across nodes.
func (s *Service) CacheOccupancy() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	for _, c := range s.caches {
		sum += c.Occupancy()
	}
	return sum / float64(len(s.caches))
}

// CacheEvictions sums per-cache eviction counters (lifetime, not window).
func (s *Service) CacheEvictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.caches {
		n += c.Evicts
	}
	return n
}
