package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hotline/internal/cost"
	"hotline/internal/sim"
)

// HotClassifier decides which rows count as popular and may be replicated
// into device caches. embedding.Placement satisfies it directly; adapters
// can wrap the accelerator's EAL. A nil classifier admits every remote row
// (pure demand-cache mode, the admission ablation baseline).
type HotClassifier interface {
	IsHot(table int, row int32) bool
}

// Config sizes a sharded embedding service.
type Config struct {
	// Nodes is the number of simulated nodes the tables shard across.
	Nodes int
	// CacheBytes is each node's device-cache capacity for replicated rows.
	// Zero selects the explicit pure-remote mode: no device caches, every
	// remote lookup crosses the fabric, and no fill traffic is accounted.
	// Non-zero budgets must hold at least one row (see Validate).
	CacheBytes int64
	// RowBytes is one embedding row's footprint (EmbedDim * 4 for float32).
	RowBytes int64
	// Policy selects the device-cache eviction policy (default LRU).
	Policy Policy
	// Quant selects the device caches' precision tiering (default QuantOff:
	// every cached row is fp32 and training is bit-identical to the
	// untiered cache). See QuantMode.
	Quant QuantMode
	// Part decides row ownership. Nil selects the round-robin baseline
	// (row r of every table lives on node r mod Nodes); see NewRoundRobin,
	// NewCapacityWeighted and RequestCounter.HotAware for the alternatives.
	Part Partitioner
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("shard: Nodes %d < 1", c.Nodes)
	}
	if c.RowBytes < 4 {
		return fmt.Errorf("shard: RowBytes %d < 4", c.RowBytes)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("shard: negative CacheBytes %d", c.CacheBytes)
	}
	if minRow := c.EntryBytes(c.Quant.WarmWidth()); c.CacheBytes > 0 && c.CacheBytes < minRow {
		return fmt.Errorf("shard: CacheBytes %d holds no full %s row of %d bytes; "+
			"use CacheBytes = 0 for an explicit pure-remote (uncached) service",
			c.CacheBytes, c.Quant.WarmWidth(), minRow)
	}
	if c.Part != nil && c.Part.Nodes() != c.Nodes {
		return fmt.Errorf("shard: partitioner %q spreads over %d nodes, config has %d",
			c.Part.Name(), c.Part.Nodes(), c.Nodes)
	}
	return nil
}

// CacheRows returns the per-node cache capacity in fp32 rows.
func (c Config) CacheRows() int { return int(c.CacheBytes / c.RowBytes) }

// Dim returns the embedding dimension implied by the fp32 row footprint.
func (c Config) Dim() int { return int(c.RowBytes / 4) }

// EntryBytes returns one cached row's HBM footprint at the given storage
// width (the int8 format carries its per-row float32 scale).
func (c Config) EntryBytes(w Width) int64 { return w.RowBytes(c.Dim()) }

// WarmCacheRows returns how many warm-tier rows the byte budget holds at the
// configured quantization mode's warm width — the effective capacity the
// placement and timing models reprice from.
func (c Config) WarmCacheRows() int {
	return int(c.CacheBytes / c.EntryBytes(c.Quant.WarmWidth()))
}

// PureRemote reports whether the service runs without device caches (every
// remote lookup crosses the fabric, no replication fill traffic).
func (c Config) PureRemote() bool { return c.CacheBytes == 0 }

// Placement returns the ownership policy name ("round-robin" for the nil
// default).
func (c Config) Placement() string {
	if c.Part == nil {
		return PlaceRoundRobin.String()
	}
	return c.Part.Name()
}

// Stats is a snapshot of a Service's traffic counters. All row counters are
// in embedding rows; byte counters already include the row footprint.
type Stats struct {
	Nodes int

	// Lookups counts every embedding access routed through the service.
	Lookups int64
	// Local counts lookups whose row is owned by the requesting node.
	Local int64
	// CacheHits / CacheMisses count remote lookups served by / missing the
	// requesting node's device cache.
	CacheHits, CacheMisses int64
	// QuantHits counts the CacheHits that landed on a warm-tier (sub-fp32)
	// entry and were served through the fused dequantize-gather kernel.
	QuantHits int64
	// DequantRows counts distinct staged rows the fused dequantize-gather
	// kernel materialized (one per quantized row per staging window, however
	// many batch positions hit it).
	DequantRows int64
	// GatherRows / GatherBytes count rows actually fetched across the
	// fabric (cache misses deduplicated within one gather call, i.e. one
	// fetch per distinct row per node per iteration).
	GatherRows, GatherBytes int64
	// ScatterRows / ScatterBytes count gradient rows pushed back to their
	// owner nodes (one per distinct touched remote row per node).
	ScatterRows, ScatterBytes int64
	// FillBytes counts replication traffic admitted into device caches.
	FillBytes int64
	// Evictions counts device-cache displacements across all nodes.
	Evictions int64
	// StaleServeRows counts serve-path rows answered from the coordinator's
	// warmed mirror while their owner peer was unreachable (graceful serve
	// degradation). Only the serve-side snapshot ever writes it; on the
	// training counters it is always zero.
	StaleServeRows int64

	// GatherWall / ScatterWall are measured wall-clock totals the transport
	// spent moving this window's fabric traffic: staged gather fetches
	// (including dirty-row repairs) and pre-reduced scatter pushes. On the
	// in-proc fast path GatherWall is the staging memcpy time and
	// ScatterWall is zero (a shared address space moves no scatter bytes);
	// on a socket fabric both are real per-window wire times — the measured
	// counterpart of the modeled AllToAllTime.
	GatherWall, ScatterWall time.Duration
}

// HitRate returns device-cache hits over all remote lookups.
func (s Stats) HitRate() float64 {
	r := s.CacheHits + s.CacheMisses
	if r == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(r)
}

// LocalFrac returns the fraction of lookups served by the requesting
// node's own shard — what a placement policy maximises by co-locating rows
// with their requesters.
func (s Stats) LocalFrac() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Local) / float64(s.Lookups)
}

// RemoteFrac returns the fraction of lookups that land on a remote shard
// (before the device cache intervenes).
func (s Stats) RemoteFrac() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.CacheHits+s.CacheMisses) / float64(s.Lookups)
}

// GatherFrac returns the fraction of lookups that cross the fabric after
// caching and intra-iteration dedup — the measured analogue of the analytic
// cold-lookup × dedup product the timing models otherwise assume.
func (s Stats) GatherFrac() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.GatherRows) / float64(s.Lookups)
}

// ScatterFrac returns gradient push-back rows as a fraction of lookups.
func (s Stats) ScatterFrac() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.ScatterRows) / float64(s.Lookups)
}

// A2ABytes returns the total all-to-all volume: gathers plus scatters.
func (s Stats) A2ABytes() int64 { return s.GatherBytes + s.ScatterBytes }

// Sub returns s minus prev, counter-wise (for per-window deltas).
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Lookups -= prev.Lookups
	d.Local -= prev.Local
	d.CacheHits -= prev.CacheHits
	d.CacheMisses -= prev.CacheMisses
	d.QuantHits -= prev.QuantHits
	d.DequantRows -= prev.DequantRows
	d.GatherRows -= prev.GatherRows
	d.GatherBytes -= prev.GatherBytes
	d.ScatterRows -= prev.ScatterRows
	d.ScatterBytes -= prev.ScatterBytes
	d.FillBytes -= prev.FillBytes
	d.Evictions -= prev.Evictions
	d.StaleServeRows -= prev.StaleServeRows
	d.GatherWall -= prev.GatherWall
	d.ScatterWall -= prev.ScatterWall
	return d
}

// WithoutWall returns the snapshot with its wall-clock meters cleared: the
// pure traffic counters, which must be exactly equal across transports for
// the same workload (the conformance suite's counter invariant), while the
// wall times are measurements and legitimately differ.
func (s Stats) WithoutWall() Stats {
	s.GatherWall, s.ScatterWall = 0, 0
	return s
}

// AllToAllTime prices the snapshot's gather+scatter volume with the cost
// models. The snapshot's own node count is authoritative for both the guard
// and the exchange: s.Nodes participants each move their per-node share, and
// the traffic stays on intra-node NVLink only when those participants all
// fit inside sys's single box (sys.Nodes <= 1 and at most one shard node per
// GPU); any disagreement — more shard nodes than one box holds, or a
// multi-box system — prices the inter-node fabric.
func (s Stats) AllToAllTime(sys cost.System) sim.Duration {
	if s.Nodes <= 1 {
		return 0
	}
	// Ceiling division: a per-window Sub delta smaller than the node count
	// must still price at least one byte per participant, not truncate to
	// zero fabric time (tiny windows otherwise read as free).
	perNode := (s.A2ABytes() + int64(s.Nodes) - 1) / int64(s.Nodes)
	link := sys.IB
	if sys.Nodes <= 1 && s.Nodes <= sys.GPUsPerNode {
		link = sys.NVLink
	}
	return cost.AllToAllTime(link, perNode, s.Nodes)
}

// Service is the sharded embedding substrate: N nodes, each owning a
// round-robin slice of every table's rows plus a bounded device cache of
// replicated popular rows. Embedding bags route accesses through
// RecordGather/RecordScatter; the Service simulates cache state and
// accumulates the traffic counters the timing models and scenario
// experiments consume.
//
// A Service is safe for concurrent use (the Hotline executor runs popular
// and non-popular µ-batches concurrently): counter totals are exact; under
// concurrent recording only the cache interleaving — never any training
// math — depends on scheduling.
type Service struct {
	cfg  Config
	hot  HotClassifier
	part Partitioner

	// gather is the optional async prefetch engine (EnableAsyncGather);
	// read-only after attach.
	gather *AsyncGatherer

	// tr is the fabric transport rows travel over (SetTransport; defaults
	// to the in-proc fast path). Read-only after SetTransport, which must
	// run before tables register and training starts.
	tr        Transport
	multiproc bool

	// gatherWallNS / scatterWallNS / serveWallNS meter the wall time spent
	// inside transport calls (atomic: gather drainers, the training path
	// and the serve path all move traffic concurrently). Snapshots read
	// them into Stats.GatherWall / Stats.ScatterWall.
	gatherWallNS, scatterWallNS, serveWallNS atomic.Int64

	// errMu guards the aggregated fabric error (noteFabricErr).
	errMu      sync.Mutex
	fabricErr  error
	fabricErrN int

	// recovery is the armed recovery policy (SetRecovery; read-only after
	// arming, which must precede table registration and training).
	recovery RecoveryConfig
	// failPart is the failover ownership overlay (nil unless RecoverAdopt
	// armed); recoverMu single-flights failover and guards deadNodes.
	failPart  *failoverPart
	recoverMu sync.Mutex
	deadNodes []bool
	// recStatsMu guards the recovery counters.
	recStatsMu sync.Mutex
	recStats   RecoveryStats

	// pushMu serialises PushUpdates' per-owner grouping scratch.
	pushMu     sync.Mutex
	pushGroups [][]int32

	closeOnce sync.Once
	closeErr  error

	// stale selects the opt-in stale-read mode of the depth-k pipeline:
	// windows consume their staged rows as fetched at issue time, skipping
	// the dirty-row repair (WindowQueue.Consume) and merely counting the
	// stale rows. Training then diverges from batch-by-batch stepping — the
	// accuracy cost the mn-depth scenario measures.
	stale atomic.Bool

	mu     sync.Mutex
	caches []*DeviceCache
	// tables records every registered sharded table (RegisterTable).
	tables []tableReg
	stats  Stats
	// serveStats accounts the read-only inference path separately from the
	// training counters: Serve gathers move real fabric bytes and warm the
	// shared device caches, but never scatter gradients, so folding them
	// into the training snapshot would skew every training-side fraction.
	serveStats Stats
	// dedupScratch is the per-call (requesting node, row) dedup set for
	// gather and scatter walks, reused under the mutex so the steady-state
	// accounting path allocates nothing.
	dedupScratch map[uint64]struct{}
}

// New builds a Service. hot may be nil (admit every remote row).
func New(cfg Config, hot HotClassifier) *Service {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	part := cfg.Part
	if part == nil {
		part = NewRoundRobin(cfg.Nodes)
	}
	s := &Service{cfg: cfg, hot: hot, part: part, caches: make([]*DeviceCache, cfg.Nodes), tr: NewInproc()}
	for n := range s.caches {
		s.caches[n] = NewDeviceCache(cfg.CacheBytes, cfg.Policy)
	}
	if cfg.Quant != QuantOff {
		// Quantized hits are served through staged gathers (the fused
		// dequantize-gather runs at staging-acquisition time), so tiered
		// caches always route through the async engine's staging buffers.
		s.EnableAsyncGather()
	}
	return s
}

// Quantized reports whether the device caches run precision-tiered.
func (s *Service) Quantized() bool { return s.cfg.Quant != QuantOff }

// Nodes returns the node count.
func (s *Service) Nodes() int { return s.cfg.Nodes }

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// Partitioner returns the ownership policy in effect.
func (s *Service) Partitioner() Partitioner { return s.part }

// Owner returns the node that owns a row of a table under the service's
// placement policy.
//
//hotline:hotpath
func (s *Service) Owner(table int, row int32) int { return s.part.Owner(table, row) }

// EnableAsyncGather attaches (or returns the already-attached) asynchronous
// gather engine. With an engine attached, ShardedBag forwards route fabric
// fetches through staging buffers — synchronously when no prefetch was
// issued, overlapped with compute when one was — and the engine measures
// how much of the gather time stayed exposed. Attach before training starts;
// the field is read without the service mutex afterwards.
func (s *Service) EnableAsyncGather() *AsyncGatherer {
	if s.gather == nil {
		s.gather = NewAsyncGatherer(s.cfg.Nodes)
		s.gather.svc = s
	}
	return s.gather
}

// Gatherer returns the attached async gather engine, or nil.
func (s *Service) Gatherer() *AsyncGatherer { return s.gather }

// SetStaleReads toggles the opt-in stale-read mode: when on, depth-k
// prefetch windows skip the dirty-row repair and serve staged rows exactly
// as fetched at issue time (counted in OverlapStats.StaleRows). Off — the
// default — every window is delta-repaired before use, keeping any
// pipeline depth bit-identical to batch-by-batch stepping.
func (s *Service) SetStaleReads(on bool) { s.stale.Store(on) }

// StaleReads reports whether the stale-read mode is on.
func (s *Service) StaleReads() bool { return s.stale.Load() }

// NodeOf returns the node a batch position is dealt to (round-robin data
// parallelism; µ-batches inherit the mapping by position).
func (s *Service) NodeOf(sample int) int { return sample % s.cfg.Nodes }

// key packs (table, row) into a cache key.
//
//hotline:hotpath
func key(table int, row int32) uint64 {
	return uint64(table)<<32 | uint64(uint32(row))
}

// RecordGather routes one bag lookup's index set (indices[b] lists the rows
// batch position b accesses) through the shard topology: local rows are
// free, remote rows probe the requesting node's device cache, and misses
// are gathered once per distinct (node, row) with popular rows admitted
// into the cache. Deterministic: indices are walked in order.
func (s *Service) RecordGather(table int, indices [][]int32) {
	s.planGather(table, indices, false, false)
}

// RecordServeGather is RecordGather for the read-only inference path: the
// same shard routing, device-cache probing and popularity-gated admission —
// live serve traffic warms the shared caches exactly like training traffic
// — but the counters land in the serve snapshot (ServeSnapshot), training
// fractions stay untouched, and there is never a matching scatter.
func (s *Service) RecordServeGather(table int, indices [][]int32) {
	s.planGather(table, indices, false, true)
}

// PlanGather performs RecordGather's full accounting pass and additionally
// returns the fabric fetch plan: the distinct rows that must cross the
// fabric into the requesting side's staging buffer, grouped by owner node.
// It returns nil when nothing needs fetching (single node, or every remote
// access was a cache hit). The async gather engine executes the plan; cache
// state and counters advance exactly as a plain RecordGather would.
func (s *Service) PlanGather(table int, indices [][]int32) *GatherPlan {
	return s.planGather(table, indices, true, false)
}

// PlanServeGather is PlanGather for the read-only inference path: the same
// accounting as RecordServeGather (serve counters, shared cache state) plus
// the fabric fetch plan a multi-process transport executes to actually move
// the remote rows (ServeGatherSync).
func (s *Service) PlanServeGather(table int, indices [][]int32) *GatherPlan {
	return s.planGather(table, indices, true, true)
}

// planGather is the shared accounting walk behind RecordGather /
// RecordServeGather / PlanGather. serve selects the serve-side counter set;
// cache state is shared between the two paths by design.
//
//hotline:stats-writer
func (s *Service) planGather(table int, indices [][]int32, collect, serve bool) *GatherPlan {
	if s.cfg.Nodes == 1 {
		// Single node: every access is local; count and return.
		var n int64
		for b := range indices {
			n += int64(len(indices[b]))
		}
		s.mu.Lock()
		st := s.statsFor(serve)
		st.Lookups += n
		st.Local += n
		s.mu.Unlock()
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.statsFor(serve)
	var plan *GatherPlan
	// gathered dedups fabric fetches within this call (one iteration's bag);
	// the scratch set is reused across calls under the mutex.
	gathered := s.acquireDedup()
	for b := range indices {
		node := s.NodeOf(b)
		cache := s.caches[node]
		for _, ix := range indices[b] {
			st.Lookups++
			if s.Owner(table, ix) == node {
				st.Local++
				continue
			}
			k := key(table, ix)
			// The serving width is a pure policy function of the row
			// (admitWidth), never of cache residency: a narrow-tier row is
			// served through the fused quantize→dequantize round trip from
			// its very first touch — the fill that admits it quantizes it,
			// and the forward reads the dequantized replica — not just on
			// later hits. Residency-independent values are what keep every
			// pipeline depth bit-identical to batch-by-batch stepping in
			// quantized mode: plan order may legally differ between the
			// synchronous and lookahead executors, so a value that depended
			// on WHEN a row was admitted would diverge.
			w, admit := s.admitWidth(table, ix)
			narrow := admit && w != WidthFP32 && cache.CapacityBytes() > 0
			if _, hit := cache.Lookup(k); hit {
				st.CacheHits++
				if narrow {
					// Warm-tier hit: served through the fused dequantize-
					// gather kernel at staging time.
					st.QuantHits++
					if collect {
						if plan == nil {
							plan = s.acquirePlan(table)
						}
						if plan.addQuant(ix, w) {
							st.DequantRows++
						}
					}
				}
				continue
			}
			st.CacheMisses++
			// The dedup key is (requesting node, row); the table is fixed
			// within one call.
			nk := uint64(node)<<32 | uint64(uint32(ix))
			if _, ok := gathered[nk]; !ok {
				gathered[nk] = struct{}{}
				st.GatherRows++
				st.GatherBytes += s.cfg.RowBytes
				if collect {
					if plan == nil {
						plan = s.acquirePlan(table)
					}
					if narrow {
						// The miss still prices a full fabric row above (the
						// fill transfer), but the staged value is the fused
						// round trip of the row being admitted — exactly what
						// reading the just-filled warm entry would serve.
						if plan.addQuant(ix, w) {
							st.DequantRows++
						}
					} else {
						plan.add(ix, s.Owner(table, ix), s.cfg.RowBytes)
					}
				}
			}
			// Admission replicates rows into the probing cache at the width
			// the tiering mode assigns them (admitWidth); the explicit
			// pure-remote mode (zero capacity) admits nothing and must
			// account no fill traffic. Fill bytes move only on actual
			// admission, at the admitted entry's footprint — a cache hit
			// above already skipped this path, so every Insert here admits
			// a new key (or is refused as unfittable, moving nothing).
			if cache.CapacityBytes() > 0 && admit {
				eb := s.cfg.EntryBytes(w)
				if ok, ev := cache.Insert(k, w, eb); ok {
					st.Evictions += int64(ev)
					st.FillBytes += eb
				}
			}
		}
	}
	return plan
}

// admitWidth is the tiering admission rule for one remote row: whether the
// probing node's cache admits it and at what storage width. Uniform modes
// (QuantOff, QuantFP16, QuantINT8) keep the popularity gate — only
// classified-hot rows replicate, at the mode's single width. QuantMixed
// admits everything: classified-hot rows at full fp32, the rest into the
// warm tier at int8 (a nil classifier counts every row as hot, so Mixed
// degenerates to all-fp32 — tiering needs a real popularity signal).
//
//hotline:hotpath
func (s *Service) admitWidth(table int, ix int32) (Width, bool) {
	hot := s.hot == nil || s.hot.IsHot(table, ix)
	if s.cfg.Quant == QuantMixed {
		if hot {
			return WidthFP32, true
		}
		return WidthINT8, true
	}
	if !hot {
		return WidthFP32, false
	}
	return s.cfg.Quant.hotWidth(), true
}

// statsFor returns the training or serve counter set. Caller holds s.mu.
func (s *Service) statsFor(serve bool) *Stats {
	if serve {
		return &s.serveStats
	}
	return &s.stats
}

// acquireDedup returns the cleared per-call dedup scratch set. Must be
// called (and the set fully consumed) under s.mu.
func (s *Service) acquireDedup() map[uint64]struct{} {
	if s.dedupScratch == nil {
		s.dedupScratch = make(map[uint64]struct{})
	} else {
		clear(s.dedupScratch)
	}
	return s.dedupScratch
}

// acquirePlan hands out a gather plan, recycling through the async engine's
// ring when one is attached.
func (s *Service) acquirePlan(table int) *GatherPlan {
	if s.gather != nil {
		return s.gather.AcquirePlan(table)
	}
	return newGatherPlan(table, s.cfg.Nodes)
}

// RecordScatter accounts the gradient push-back for one bag's backward
// pass: every node locally pre-reduces its gradient contributions, then
// sends one row-sized message per distinct remote row it touched to that
// row's owner.
//
//hotline:stats-writer
func (s *Service) RecordScatter(table int, indices [][]int32) {
	if s.cfg.Nodes == 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sent := s.acquireDedup()
	for b := range indices {
		node := s.NodeOf(b)
		for _, ix := range indices[b] {
			if s.Owner(table, ix) == node {
				continue
			}
			nk := uint64(node)<<32 | uint64(uint32(ix))
			if _, ok := sent[nk]; ok {
				continue
			}
			sent[nk] = struct{}{}
			s.stats.ScatterRows++
			s.stats.ScatterBytes += s.cfg.RowBytes
		}
	}
}

// Preload replicates the given rows of one table into every non-owner
// node's device cache (the learning-phase bulk replication), accounting the
// fill traffic. Rows are admitted in the given order, so a bounded cache
// deterministically keeps the most recently preloaded suffix. Fill traffic
// counts actual admissions only: re-preloading an already-resident row just
// refreshes its replacement state and moves no bytes across the fabric.
//
//hotline:stats-writer
func (s *Service) Preload(table int, rows []int32) {
	if s.cfg.Nodes == 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Preloaded rows are the learning phase's popular set, so they enter at
	// the hot tier's width (fp32 under QuantOff and QuantMixed).
	w := s.cfg.Quant.hotWidth()
	eb := s.cfg.EntryBytes(w)
	for _, ix := range rows {
		owner := s.Owner(table, ix)
		k := key(table, ix)
		for n, cache := range s.caches {
			if n == owner || cache.CapacityBytes() == 0 {
				continue
			}
			resident := cache.Contains(k)
			ok, ev := cache.Insert(k, w, eb)
			s.stats.Evictions += int64(ev)
			if ok && !resident {
				s.stats.FillBytes += eb
			}
		}
	}
}

// Snapshot returns the current counters (with Nodes and the measured
// transport wall times filled in).
func (s *Service) Snapshot() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.Nodes = s.cfg.Nodes
	st.GatherWall = time.Duration(s.gatherWallNS.Load())
	st.ScatterWall = time.Duration(s.scatterWallNS.Load())
	return st
}

// ServeSnapshot returns the read-only inference path's counters (with
// Nodes filled in): every Serve/Predict gather routed through
// RecordServeGather, separate from the training snapshot.
func (s *Service) ServeSnapshot() Stats {
	s.mu.Lock()
	st := s.serveStats
	s.mu.Unlock()
	st.Nodes = s.cfg.Nodes
	st.GatherWall = time.Duration(s.serveWallNS.Load())
	return st
}

// ResetStats zeroes the traffic counters but keeps cache contents (steady
// state), so warm-up windows can be excluded from measurements.
func (s *Service) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
	s.gatherWallNS.Store(0)
	s.scatterWallNS.Store(0)
}

// ResetServeStats zeroes the serve-path counters, keeping cache contents
// and the training counters (per-day serve windows under drift).
func (s *Service) ResetServeStats() {
	s.mu.Lock()
	s.serveStats = Stats{}
	s.mu.Unlock()
	s.serveWallNS.Store(0)
}

// CacheOccupancy returns the mean device-cache occupancy across nodes.
func (s *Service) CacheOccupancy() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	for _, c := range s.caches {
		sum += c.Occupancy()
	}
	return sum / float64(len(s.caches))
}

// CacheEntries sums the rows currently held across all device caches —
// with tiered admission the same byte budget holds more (narrower) rows,
// and this is the measured row count the mn-quant frontier reports.
func (s *Service) CacheEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for _, c := range s.caches {
		n += c.Len()
	}
	return n
}

// CacheEvictions sums per-cache eviction counters (lifetime, not window).
func (s *Service) CacheEvictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.caches {
		n += c.Evicts
	}
	return n
}
