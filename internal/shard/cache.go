package shard

import "fmt"

// Policy selects a device cache's eviction policy.
type Policy uint8

const (
	// PolicyLRU evicts the least-recently-used entry (exact recency list).
	PolicyLRU Policy = iota
	// PolicySRRIP evicts by 2-bit re-reference prediction with CLOCK-style
	// victim search — the hardware-friendly policy the accelerator's EAL
	// uses, here applied to cached rows rather than tracked identifiers.
	PolicySRRIP
)

// String names the policy for reports.
func (p Policy) String() string {
	if p == PolicySRRIP {
		return "SRRIP"
	}
	return "LRU"
}

const cacheRRPVMax = 3 // 2-bit RRPV

// cacheSlot is one cached row's metadata. Slots form both the SRRIP ring
// and the LRU recency list (prev/next are slot indices). Occupancy is
// tracked by the cache's used counter — slots [0,used) are live — so the
// slot itself carries no validity bit.
type cacheSlot struct {
	key        uint64
	rrpv       uint8
	prev, next int
}

// DeviceCache is one node's bounded hot-entry cache: a fixed number of row
// slots with LRU or SRRIP eviction. It stores identifiers only — the
// simulated payload lives in the shard storage — and keeps exact hit/miss,
// insert and eviction counters. The zero-capacity cache is valid and misses
// every probe.
type DeviceCache struct {
	policy Policy
	cap    int
	index  map[uint64]int // key -> slot
	slots  []cacheSlot
	// LRU recency list endpoints (slot indices, -1 when empty).
	head, tail int
	// used is the number of valid slots; slots [0,used) are allocated in
	// insertion order so victim search never touches unused slots.
	used int
	// hand is the SRRIP CLOCK pointer.
	hand int

	// Hits and Misses count Lookup probes; Inserts and Evicts count
	// admissions and the displacements they caused.
	Hits, Misses, Inserts, Evicts int64
}

// NewDeviceCache returns a cache holding at most capacity entries.
func NewDeviceCache(capacity int, policy Policy) *DeviceCache {
	if capacity < 0 {
		panic(fmt.Sprintf("shard: negative cache capacity %d", capacity))
	}
	c := &DeviceCache{policy: policy, cap: capacity, head: -1, tail: -1}
	c.index = make(map[uint64]int, capacity)
	c.slots = make([]cacheSlot, capacity)
	return c
}

// Capacity returns the entry budget.
func (c *DeviceCache) Capacity() int { return c.cap }

// Len returns the number of cached entries.
func (c *DeviceCache) Len() int { return c.used }

// Occupancy returns Len/Capacity (0 for a zero-capacity cache).
func (c *DeviceCache) Occupancy() float64 {
	if c.cap == 0 {
		return 0
	}
	return float64(c.used) / float64(c.cap)
}

// Contains probes without touching replacement state or counters.
//
//hotline:hotpath
func (c *DeviceCache) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

// Lookup probes the cache and updates replacement state and hit/miss
// counters. It never admits: admission is a separate policy decision made by
// the Service (only popularity-classified rows are replicated).
//
//hotline:hotpath
func (c *DeviceCache) Lookup(key uint64) bool {
	i, ok := c.index[key]
	if !ok {
		c.Misses++
		return false
	}
	c.Hits++
	if c.policy == PolicySRRIP {
		c.slots[i].rrpv = 0 // near re-reference
	} else {
		c.moveToFront(i)
	}
	return true
}

// Insert admits key, evicting per the policy when full. Inserting a present
// key only refreshes its replacement state. Returns whether an eviction
// happened.
//
//hotline:hotpath
func (c *DeviceCache) Insert(key uint64) bool {
	if c.cap == 0 {
		return false
	}
	if i, ok := c.index[key]; ok {
		if c.policy == PolicySRRIP {
			c.slots[i].rrpv = 0
		} else {
			c.moveToFront(i)
		}
		return false
	}
	evicted := false
	var i int
	if c.used < c.cap {
		i = c.used
		c.used++
	} else {
		i = c.victim()
		delete(c.index, c.slots[i].key)
		c.unlink(i)
		c.Evicts++
		evicted = true
	}
	c.slots[i] = cacheSlot{key: key, rrpv: cacheRRPVMax - 1, prev: -1, next: -1}
	c.index[key] = i
	c.pushFront(i)
	c.Inserts++
	return evicted
}

// victim selects the slot to evict. LRU takes the recency-list tail; SRRIP
// sweeps the CLOCK hand for a distant (rrpv==max) entry, aging entries it
// passes — the amortised-O(1) equivalent of SRRIP's "age all, rescan" loop.
//
//hotline:hotpath
func (c *DeviceCache) victim() int {
	if c.policy == PolicyLRU {
		return c.tail
	}
	for {
		i := c.hand
		c.hand = (c.hand + 1) % c.used
		if c.slots[i].rrpv >= cacheRRPVMax {
			return i
		}
		c.slots[i].rrpv++
	}
}

// Reset drops all contents and counters. The index map and slot array are
// retained (clear, not reallocate), so reset-heavy measurement loops stay
// allocation-free — TestDeviceCacheResetZeroAlloc gates this.
//
//hotline:hotpath
func (c *DeviceCache) Reset() {
	clear(c.index)
	for i := range c.slots {
		c.slots[i] = cacheSlot{}
	}
	c.head, c.tail, c.used, c.hand = -1, -1, 0, 0
	c.Hits, c.Misses, c.Inserts, c.Evicts = 0, 0, 0, 0
}

// --- intrusive LRU recency list ------------------------------------------

//hotline:hotpath
func (c *DeviceCache) pushFront(i int) {
	c.slots[i].prev = -1
	c.slots[i].next = c.head
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

//hotline:hotpath
func (c *DeviceCache) unlink(i int) {
	p, n := c.slots[i].prev, c.slots[i].next
	if p >= 0 {
		c.slots[p].next = n
	} else {
		c.head = n
	}
	if n >= 0 {
		c.slots[n].prev = p
	} else {
		c.tail = p
	}
	c.slots[i].prev, c.slots[i].next = -1, -1
}

//hotline:hotpath
func (c *DeviceCache) moveToFront(i int) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}
