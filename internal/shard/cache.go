package shard

import "fmt"

// Policy selects a device cache's eviction policy.
type Policy uint8

const (
	// PolicyLRU evicts the least-recently-used entry (exact recency list).
	PolicyLRU Policy = iota
	// PolicySRRIP evicts by 2-bit re-reference prediction with CLOCK-style
	// victim search — the hardware-friendly policy the accelerator's EAL
	// uses, here applied to cached rows rather than tracked identifiers.
	PolicySRRIP
)

// String names the policy for reports.
func (p Policy) String() string {
	if p == PolicySRRIP {
		return "SRRIP"
	}
	return "LRU"
}

const cacheRRPVMax = 3 // 2-bit RRPV

// cacheSlot is one cached row's metadata. Slots form both the SRRIP ring
// and the LRU recency list (prev/next are slot indices). A dead (recycled)
// slot is marked by bytes == 0 — every live entry occupies at least one
// byte — so the CLOCK sweep can skip holes left by multi-entry evictions.
type cacheSlot struct {
	key        uint64
	rrpv       uint8
	width      Width
	bytes      int32
	prev, next int
}

// DeviceCache is one node's bounded hot-entry cache: a byte budget of row
// entries with LRU or SRRIP eviction. Entries are variable-width — hot rows
// at fp32, warm rows at a narrow width (Width) — so the capacity is
// denominated in HBM bytes end-to-end, matching how placement reasons
// (NewCapacityWeightedHBM). It stores identifiers, widths and footprints
// only — the simulated payload derives from the shard storage through the
// fused dequantize-gather kernel — and keeps exact hit/miss, insert and
// eviction counters. The zero-budget cache is valid and misses every probe.
type DeviceCache struct {
	policy    Policy
	capBytes  int64
	usedBytes int64
	index     map[uint64]int // key -> slot
	slots     []cacheSlot
	freeSlots []int // recycled slot indices (holes in slots)
	// LRU recency list endpoints (slot indices, -1 when empty).
	head, tail int
	// used is the number of live entries.
	used int
	// hand is the SRRIP CLOCK pointer (an index into slots; sweeps skip
	// dead slots).
	hand int

	// Hits and Misses count Lookup probes; Inserts and Evicts count
	// admissions and the displacements they caused. QuantHits counts the
	// Hits that landed on sub-fp32 (warm-tier) entries.
	Hits, Misses, Inserts, Evicts, QuantHits int64
}

// NewDeviceCache returns a cache with a budget of capBytes of row storage.
func NewDeviceCache(capBytes int64, policy Policy) *DeviceCache {
	if capBytes < 0 {
		panic(fmt.Sprintf("shard: negative cache capacity %d bytes", capBytes))
	}
	c := &DeviceCache{policy: policy, capBytes: capBytes, head: -1, tail: -1}
	c.index = make(map[uint64]int)
	return c
}

// CapacityBytes returns the byte budget.
func (c *DeviceCache) CapacityBytes() int64 { return c.capBytes }

// UsedBytes returns the bytes currently held by live entries.
func (c *DeviceCache) UsedBytes() int64 { return c.usedBytes }

// Len returns the number of cached entries.
func (c *DeviceCache) Len() int { return c.used }

// Occupancy returns UsedBytes/CapacityBytes (0 for a zero-budget cache) —
// the byte-denominated fill fraction, identical in meaning whatever mix of
// entry widths the budget holds.
func (c *DeviceCache) Occupancy() float64 {
	if c.capBytes == 0 {
		return 0
	}
	return float64(c.usedBytes) / float64(c.capBytes)
}

// Contains probes without touching replacement state or counters.
//
//hotline:hotpath
func (c *DeviceCache) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

// Lookup probes the cache, updates replacement state and hit/miss counters,
// and returns the hit entry's storage width. It never admits: admission is a
// separate policy decision made by the Service (the popularity classifier
// picks the tier).
//
//hotline:hotpath
func (c *DeviceCache) Lookup(key uint64) (Width, bool) {
	i, ok := c.index[key]
	if !ok {
		c.Misses++
		return WidthFP32, false
	}
	c.Hits++
	w := c.slots[i].width
	if w != WidthFP32 {
		c.QuantHits++
	}
	if c.policy == PolicySRRIP {
		c.slots[i].rrpv = 0 // near re-reference
	} else {
		c.moveToFront(i)
	}
	return w, true
}

// Insert admits key as an entry of `bytes` bytes stored at width, evicting
// per the policy until it fits — a wide fp32 admission may displace several
// narrow warm-tier entries. Inserting a present key at its current width
// only refreshes its replacement state; at a different width it is
// re-admitted (the old entry is dropped uncounted, the fresh one may evict).
// Returns whether the key was admitted (false only when it cannot fit the
// whole budget) and how many evictions the admission caused.
//
//hotline:hotpath
func (c *DeviceCache) Insert(key uint64, width Width, bytes int64) (admitted bool, evictions int) {
	if c.capBytes == 0 || bytes <= 0 || bytes > c.capBytes {
		return false, 0
	}
	if i, ok := c.index[key]; ok {
		if c.slots[i].width == width {
			if c.policy == PolicySRRIP {
				c.slots[i].rrpv = 0
			} else {
				c.moveToFront(i)
			}
			return true, 0
		}
		// Width change (e.g. a reclassified row moving tiers): drop the old
		// entry silently and fall through to a fresh admission.
		c.removeSlot(i)
	}
	for c.usedBytes+bytes > c.capBytes && c.used > 0 {
		v := c.victim()
		c.removeSlot(v)
		c.Evicts++
		evictions++
	}
	i := c.allocSlot()
	c.slots[i] = cacheSlot{key: key, rrpv: cacheRRPVMax - 1, width: width, bytes: int32(bytes), prev: -1, next: -1}
	c.index[key] = i
	c.pushFront(i)
	c.usedBytes += bytes
	c.used++
	c.Inserts++
	return true, evictions
}

// allocSlot hands out a slot index, recycling holes before growing.
//
//hotline:hotpath
func (c *DeviceCache) allocSlot() int {
	if n := len(c.freeSlots); n > 0 {
		i := c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		return i
	}
	c.slots = append(c.slots, cacheSlot{}) //hotline:allow hotalloc slot table grows once to the entry high-water mark, then recycles holes
	return len(c.slots) - 1
}

// removeSlot unlinks and recycles one live slot (no eviction accounting).
//
//hotline:hotpath
func (c *DeviceCache) removeSlot(i int) {
	delete(c.index, c.slots[i].key)
	c.unlink(i)
	c.usedBytes -= int64(c.slots[i].bytes)
	c.slots[i] = cacheSlot{}             // bytes == 0 marks the slot dead
	c.freeSlots = append(c.freeSlots, i) //hotline:allow hotalloc free list is bounded by the widest/narrowest entry ratio and recycles
	c.used--
}

// victim selects the slot to evict. LRU takes the recency-list tail; SRRIP
// sweeps the CLOCK hand for a distant (rrpv==max) entry, aging entries it
// passes — the amortised-O(1) equivalent of SRRIP's "age all, rescan" loop.
// Callers guarantee at least one live entry. Dead slots (recycled holes) are
// skipped without aging.
//
//hotline:hotpath
func (c *DeviceCache) victim() int {
	if c.policy == PolicyLRU {
		return c.tail
	}
	for {
		i := c.hand
		c.hand++
		if c.hand >= len(c.slots) {
			c.hand = 0
		}
		if c.slots[i].bytes == 0 {
			continue
		}
		if c.slots[i].rrpv >= cacheRRPVMax {
			return i
		}
		c.slots[i].rrpv++
	}
}

// Reset drops all contents and counters. The index map and slot array are
// retained (clear, not reallocate), so reset-heavy measurement loops stay
// allocation-free — TestDeviceCacheResetZeroAlloc gates this.
//
//hotline:hotpath
func (c *DeviceCache) Reset() {
	clear(c.index)
	c.slots = c.slots[:0]
	c.freeSlots = c.freeSlots[:0]
	c.head, c.tail, c.used, c.hand = -1, -1, 0, 0
	c.usedBytes = 0
	c.Hits, c.Misses, c.Inserts, c.Evicts, c.QuantHits = 0, 0, 0, 0, 0
}

// --- intrusive LRU recency list ------------------------------------------

//hotline:hotpath
func (c *DeviceCache) pushFront(i int) {
	c.slots[i].prev = -1
	c.slots[i].next = c.head
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

//hotline:hotpath
func (c *DeviceCache) unlink(i int) {
	p, n := c.slots[i].prev, c.slots[i].next
	if p >= 0 {
		c.slots[p].next = n
	} else {
		c.head = n
	}
	if n >= 0 {
		c.slots[n].prev = p
	} else {
		c.tail = p
	}
	c.slots[i].prev, c.slots[i].next = -1, -1
}

//hotline:hotpath
func (c *DeviceCache) moveToFront(i int) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}
