package shard

import (
	"slices"
	"sync"
)

// Window is one issued, not-yet-consumed prefetch window of a depth-k
// pipeline: the index set it was planned for, the in-flight handle (until
// the window is joined) or the landed staging buffer, and the dirty list —
// staged rows a later sparse update rewrote, which must be delta-repaired
// before the window's values may feed a forward pass.
type Window struct {
	indices [][]int32
	handle  *Handle  // in flight; nil once joined (or when the plan was empty)
	staging *Staging // set on join; nil when the plan needed no fetches
	dirty   []int32  // staged rows invalidated since issue (may repeat)
}

// pendingStaging returns the window's staging buffer whether or not the
// window has been joined (the slot map is immutable after planning, so
// membership tests are safe while fetches are still in flight).
func (w *Window) pendingStaging() *Staging {
	if w.staging != nil {
		return w.staging
	}
	if w.handle != nil {
		return w.handle.staging
	}
	return nil
}

// join waits for the window's fetches to land (at most once).
func (w *Window) join() {
	if w.handle != nil {
		w.staging = w.handle.Await()
		w.handle = nil
	}
}

// WindowQueue is the dirty-row tracker of one table's prefetch pipeline: a
// FIFO of open windows shared by a sharded bag and all of its shadows (a
// window is issued by the executor's lookahead on a shadow but invalidated
// by sparse updates applied through the primary bag, so the registry must
// span sharers). It keeps every pipeline depth bit-identical to
// batch-by-batch stepping:
//
//   - Push registers an issued window in stream order.
//   - MarkDirty, called by a sparse update BEFORE it mutates rows, joins
//     every open window that staged any updated row (so no fetch can race
//     the write) and records those rows as dirty.
//   - Match pops the oldest window iff it was planned for exactly the
//     requested index set.
//   - Consume joins the popped window and re-fetches its dirty rows from
//     the owner shards — the delta repair — unless the service is in the
//     opt-in stale mode (SetStaleReads), where the stale values are served
//     as-is and only counted (OverlapStats.StaleRows).
//
// Windows recycle through a free list, so the steady-state depth-k path
// allocates nothing once the pipeline reaches its peak depth.
type WindowQueue struct {
	svc   *Service
	table int // accounting key of the table this queue repairs through the fabric

	mu   sync.Mutex
	open []*Window // FIFO, oldest window first
	free []*Window
}

// NewWindowQueue returns an empty window registry for one table, routing
// through s (delta repairs re-fetch dirty rows from their owner over the
// service's transport).
func (s *Service) NewWindowQueue(table int) *WindowQueue {
	return &WindowQueue{svc: s, table: table}
}

// Len returns the number of open (issued, unconsumed) windows.
func (q *WindowQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.open)
}

// maxOpenWindows bounds the FIFO: a well-behaved depth-k pipeline holds at
// most k windows (k <= 8 in every shipped sweep), so the bound only bites
// a caller that prefetches but whose forwards never match — e.g. index
// slices rebuilt between Prefetch and Forward, which Match's identity test
// rejects. Evicting the oldest window (joined, released, recycled) keeps
// such a caller's memory and MarkDirty scans bounded instead of leaking a
// staging buffer per call.
const maxOpenWindows = 64

// Push registers an issued window for indices. h is nil when the plan
// needed no fabric fetches (the window is then an empty marker keeping the
// FIFO aligned with the lookahead order). If the queue is already at
// maxOpenWindows the oldest window is discarded like an aborted
// speculation — its accounting already happened.
func (q *WindowQueue) Push(indices [][]int32, h *Handle) {
	q.mu.Lock()
	if len(q.open) >= maxOpenWindows {
		q.discardLocked(q.open[0])
		copy(q.open, q.open[1:])
		q.open = q.open[:len(q.open)-1]
	}
	var w *Window
	if n := len(q.free); n > 0 {
		w = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		w = &Window{}
	}
	w.indices = indices
	w.handle = h
	w.staging = nil
	w.dirty = w.dirty[:0]
	q.open = append(q.open, w)
	q.mu.Unlock()
}

// discardLocked joins a window, releases its staging to the engine and
// recycles the entry. Caller holds q.mu.
func (q *WindowQueue) discardLocked(w *Window) {
	w.join()
	if w.staging != nil {
		if g := q.svc.Gatherer(); g != nil {
			g.Release(w.staging)
		}
	}
	w.indices = nil
	w.handle = nil
	w.staging = nil
	q.free = append(q.free, w)
}

// Match pops and returns the oldest open window iff it was planned for
// exactly the given index set; otherwise it returns nil and leaves the
// queue untouched (younger windows stay valid for later batches — a
// non-matching forward, e.g. an evaluation pass, must not disturb the
// pipeline). Pass the popped window to Consume, then Recycle.
func (q *WindowQueue) Match(indices [][]int32) *Window {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.open) == 0 || !sameIndexSet(q.open[0].indices, indices) {
		return nil
	}
	w := q.open[0]
	copy(q.open, q.open[1:])
	q.open = q.open[:len(q.open)-1]
	return w
}

// MarkDirty records that a sparse update is about to rewrite the given
// rows: every open window that staged one of them is joined (fetches
// complete before the caller mutates storage) and the row is added to its
// dirty list for repair at consume time. rows may contain repeats; the
// repair pass dedups.
func (q *WindowQueue) MarkDirty(rows []int32) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, w := range q.open {
		st := w.pendingStaging()
		if st == nil {
			continue
		}
		for _, r := range rows {
			if !st.Has(r) {
				continue
			}
			w.join()
			w.dirty = append(w.dirty, r)
		}
	}
}

// Consume joins a window popped by Match and returns its staging buffer
// (nil when the plan was empty) with every dirty row repaired — re-fetched
// from its owner shard via fetch, so the staged values are bit-identical to
// what a synchronous gather would read now. In stale mode the repair is
// skipped and the distinct dirtied rows are counted instead. Release the
// staging to the engine, then Recycle the window.
func (q *WindowQueue) Consume(w *Window, fetch FetchFunc) *Staging {
	w.join()
	st := w.staging
	if st == nil || len(w.dirty) == 0 {
		return st
	}
	// Dedup in place: repeated updates to one staged row repair it once.
	slices.Sort(w.dirty)
	w.dirty = slices.Compact(w.dirty)
	if q.svc.StaleReads() {
		q.svc.Gatherer().noteStale(len(w.dirty))
		return st
	}
	var repairBytes int64
	for i, r := range w.dirty {
		if !st.Has(r) {
			continue
		}
		if wd := st.Width(r); wd != WidthFP32 {
			// Warm-tier staged row: re-run the fused dequantize-gather on the
			// row's current bits — the refreshed coherent replica — instead of
			// a fabric fetch. Identical to what a synchronous quantized gather
			// would serve now, so every depth stays bit-identical to
			// batch-by-batch stepping in quantized mode too. The refresh push
			// a real warm replica would receive is priced at the entry width.
			if dst, ok := st.Lookup(r); ok {
				fetch(r, dst)
				dequantRowInto(dst, dst, wd)
			}
			repairBytes += wd.RowBytes(st.dim)
			continue
		}
		// Per-row fabric re-fetch from the row's owner; the one-element
		// sub-slice of the dirty list keeps the steady-state path
		// allocation-free.
		q.svc.transportFetch(q.table, q.svc.Owner(q.table, r), w.dirty[i:i+1], st, fetch)
		repairBytes += q.svc.Config().RowBytes
	}
	q.svc.Gatherer().noteRepair(len(w.dirty), repairBytes)
	return st
}

// Recycle returns a consumed window to the free list (after its staging has
// been released to the engine).
func (q *WindowQueue) Recycle(w *Window) {
	w.indices = nil
	w.handle = nil
	w.staging = nil
	q.mu.Lock()
	q.free = append(q.free, w)
	q.mu.Unlock()
}

// Abort joins and discards every open window (its accounting already
// happened — wasted prefetches, like any real system that speculated
// wrong). The executor calls it when a pipelined lookahead turns out not to
// match the batches actually trained, so a reused index buffer can never
// satisfy a stale window.
func (q *WindowQueue) Abort() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, w := range q.open {
		q.discardLocked(w)
	}
	q.open = q.open[:0]
}

// sameIndexSet reports whether a and b are the same index set (the same
// backing slice — the executor prefetches and forwards the identical
// µ-batch view). Empty sets never match: an empty prefetch carries no
// traffic, so consuming it would only mask a caller bug.
func sameIndexSet(a, b [][]int32) bool {
	return len(a) > 0 && len(a) == len(b) && &a[0] == &b[0]
}
