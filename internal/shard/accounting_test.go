package shard

import (
	"testing"

	"hotline/internal/cost"
)

// TestPreloadRepeatedNoDoubleCount is the regression test for the fill
// double-count: re-preloading rows that are already resident refreshes
// their replacement state but moves no bytes, so FillBytes must count
// actual admissions only.
func TestPreloadRepeatedNoDoubleCount(t *testing.T) {
	s := New(cfg(4, 8), nil)
	s.Preload(0, []int32{0, 1})
	first := s.Snapshot().FillBytes
	if want := int64(6 * 64); first != want { // 2 rows x 3 non-owner caches
		t.Fatalf("first preload fill = %d want %d", first, want)
	}
	// The regression: a second identical preload used to double the fill
	// traffic even though every row was already resident.
	s.Preload(0, []int32{0, 1})
	if again := s.Snapshot().FillBytes; again != first {
		t.Fatalf("repeated preload must not re-account fill: %d -> %d", first, again)
	}
	// A genuinely new row still pays its replication traffic.
	s.Preload(0, []int32{2})
	if st := s.Snapshot(); st.FillBytes != first+3*64 {
		t.Fatalf("new row fill: %+v", st)
	}
}

// TestPreloadRefreshKeepsRecency checks the refresh half of the fix: the
// repeated preload still touches replacement state (the row stays at the
// recency front) even though it accounts nothing.
func TestPreloadRefreshKeepsRecency(t *testing.T) {
	s := New(cfg(2, 2), nil) // 2-row caches on 2 nodes
	// Node 0's cache (non-owner of odd rows under round-robin): preload
	// rows 1 and 3, refresh 1, then preload 5 — LRU must evict 3, not 1.
	s.Preload(0, []int32{1, 3})
	s.Preload(0, []int32{1})
	s.Preload(0, []int32{5})
	s.ResetStats()
	s.RecordGather(0, [][]int32{{1}}) // node 0 probes row 1
	if st := s.Snapshot(); st.CacheHits != 1 {
		t.Fatalf("refreshed row must survive the eviction: %+v", st)
	}
}

// TestAllToAllTimeTinyWindow is the regression test for the truncating
// per-node division: a per-window Sub delta smaller than the node count
// used to price zero bytes per participant, so tiny windows moved free of
// any bandwidth cost. The slow fabric makes the single rounded-up byte
// observable at Duration granularity (on the paper's IB it is sub-ns).
func TestAllToAllTimeTinyWindow(t *testing.T) {
	slow := cost.PaperCluster(4)
	slow.IB = cost.LinkSpec{Name: "slow", Bandwidth: 1, A2AEff: 1} // 1 byte/s
	tiny := Stats{Nodes: 8, GatherBytes: 3}                        // 3 bytes across 8 nodes
	zero := Stats{Nodes: 8}
	// The regression: 3/8 truncated to 0 bytes per node, so a tiny delta
	// priced exactly like an empty one — the bandwidth term vanished.
	if got, free := tiny.AllToAllTime(slow), zero.AllToAllTime(slow); got <= free {
		t.Fatalf("tiny window priced like empty (%v <= %v); per-node share must round up", got, free)
	}
	// Ceiling, not floor: 3 bytes over 8 nodes price like 1 byte per node.
	if got, want := tiny.AllToAllTime(slow), cost.AllToAllTime(slow.IB, 1, 8); got != want {
		t.Fatalf("tiny window = %v want ceil pricing %v", got, want)
	}
	// Exact multiples are unchanged by the rounding.
	sys := cost.PaperCluster(4)
	even := Stats{Nodes: 4, GatherBytes: 1 << 20}
	if got, want := even.AllToAllTime(sys), cost.AllToAllTime(sys.IB, 1<<18, 4); got != want {
		t.Fatalf("even split = %v want %v", got, want)
	}
}

// TestDeviceCacheResetZeroAlloc gates the Reset fix: reset-heavy
// measurement loops must not reallocate the index map.
func TestDeviceCacheResetZeroAlloc(t *testing.T) {
	c := NewDeviceCache(64, PolicyLRU)
	for k := uint64(0); k < 64; k++ {
		c.Insert(k, WidthFP32, 1)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Reset()
		c.Insert(1, WidthFP32, 1)
		c.Insert(2, WidthFP32, 1)
	}); n != 0 {
		t.Fatalf("Reset+refill allocates %v/op; want 0", n)
	}
	c.Reset()
	if c.Len() != 0 || c.Contains(1) {
		t.Fatal("Reset must drop contents")
	}
	if c.Hits != 0 || c.Misses != 0 || c.Inserts != 0 || c.Evicts != 0 {
		t.Fatal("Reset must zero counters")
	}
	// The cache must still behave after a cleared-map reset.
	c.Insert(7, WidthFP32, 1)
	_, hit7 := c.Lookup(7)
	_, hit8 := c.Lookup(8)
	if !hit7 || hit8 {
		t.Fatal("cache broken after Reset")
	}
}

// TestServeGatherAccounting covers the read-path counters: serve traffic
// lands in ServeSnapshot (never the training snapshot), warms the shared
// caches, and has no scatter side.
func TestServeGatherAccounting(t *testing.T) {
	s := New(cfg(2, 8), nil)
	s.RecordServeGather(0, [][]int32{{0, 1}, {0, 1}})

	if st := s.Snapshot(); st.Lookups != 0 {
		t.Fatalf("serve traffic leaked into the training snapshot: %+v", st)
	}
	sv := s.ServeSnapshot()
	if sv.Lookups != 4 || sv.Local != 2 || sv.GatherRows != 2 {
		t.Fatalf("serve snapshot: %+v", sv)
	}
	if sv.ScatterRows != 0 || sv.ScatterBytes != 0 {
		t.Fatalf("read path must never scatter: %+v", sv)
	}

	// Serve traffic warmed the shared caches: the same rows now hit, on
	// both the serve path and the training path.
	s.RecordServeGather(0, [][]int32{{0, 1}, {0, 1}})
	if sv = s.ServeSnapshot(); sv.CacheHits != 2 {
		t.Fatalf("serve re-access must hit the warmed cache: %+v", sv)
	}
	s.RecordGather(0, [][]int32{{0, 1}, {0, 1}})
	if st := s.Snapshot(); st.CacheHits != 2 {
		t.Fatalf("training must see serve-warmed caches: %+v", st)
	}

	s.ResetServeStats()
	if sv = s.ServeSnapshot(); sv.Lookups != 0 {
		t.Fatalf("ResetServeStats must zero serve counters: %+v", sv)
	}
	if st := s.Snapshot(); st.Lookups != 4 {
		t.Fatalf("ResetServeStats must keep training counters: %+v", st)
	}
	if sv.Nodes != 2 {
		// Nodes is stamped on snapshot like the training side.
		sv = s.ServeSnapshot()
		if sv.Nodes != 2 {
			t.Fatalf("serve snapshot nodes = %d", sv.Nodes)
		}
	}
}

// TestServeGatherSingleNode: the single-node serve path is all-local.
func TestServeGatherSingleNode(t *testing.T) {
	s := New(cfg(1, 8), nil)
	s.RecordServeGather(0, [][]int32{{0, 1, 2}})
	sv := s.ServeSnapshot()
	if sv.Lookups != 3 || sv.Local != 3 || sv.GatherRows != 0 {
		t.Fatalf("single-node serve: %+v", sv)
	}
}
