//hotline:typed-errors

package shard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Fabric errors. Transport implementations wrap these so callers can test
// failure classes with errors.Is regardless of which peer or frame failed.
var (
	// ErrClosed reports an operation on a closed transport or service.
	ErrClosed = errors.New("shard: transport closed")
	// ErrPeerDead reports a peer connection that failed mid-operation (dial
	// refused, I/O error, timeout, or mid-frame EOF). Once a peer is dead
	// every later operation against it fails fast with the same error.
	ErrPeerDead = errors.New("shard: peer dead")
	// ErrUnknownRow reports a fetch of a row the owner node never received.
	ErrUnknownRow = errors.New("shard: unknown row")
	// ErrFabricConfig reports an invalid fabric configuration (unknown
	// network, empty address list) before any peer is dialled.
	ErrFabricConfig = errors.New("shard: invalid fabric config")
)

// RowAt returns the authoritative payload of one row from the coordinator's
// mirror (e.g. ShardedBag.RowView). It is the source for scatter pushes and
// the initial shard sync; the returned slice is read, never retained.
type RowAt func(row int32) []float32

// Transport moves embedding rows between the coordinator and the shard
// nodes: per-owner gather fetch lists stream owner-resident rows into
// staging buffers, pre-reduced scatter pushes deliver updated rows back to
// their owners, and the serve-side read path reuses the gather direction.
// The Service times every call (Stats.GatherWall / Stats.ScatterWall), so a
// transport's implementation cost is what the fabric measurement reports.
//
// Two implementations ship: the in-proc fast path (NewInproc), which serves
// fetches straight from the coordinator's row mirror — bit-for-bit and
// allocation-for-allocation identical to the direct calls the service made
// before the abstraction — and the socket fabric (DialFabric), where each
// owner is a real OS process reached over a length-prefixed binary framing
// on unix or TCP sockets.
//
// Implementations must be safe for concurrent use: gather drainer
// goroutines, the training path and the serve path all issue operations
// concurrently.
type Transport interface {
	// Name identifies the transport in reports ("inproc", "unix", "tcp").
	Name() string
	// Multiproc reports whether rows cross a process boundary. The service
	// skips scatter pushes and the initial shard sync on single-address-
	// space transports (the mirror IS the owner storage).
	Multiproc() bool
	// Fetch copies the listed owner-resident rows of one table into their
	// staging slots (st.Lookup(row) locates each destination). local reads
	// the coordinator's mirror; the in-proc fast path serves fetches from
	// it directly, socket transports ignore it and ask the owner process.
	Fetch(table, owner int, rows []int32, st *Staging, local FetchFunc) error
	// Push delivers authoritative row payloads of one table to their owner
	// (the pre-reduced scatter, and the initial shard sync). src yields
	// each row's current bits.
	Push(table, owner int, rows []int32, src RowAt) error
	// Close releases the transport. Idempotent.
	Close() error
}

// inproc is the single-address-space fast path: fetches read the
// coordinator's row mirror via the caller-supplied FetchFunc — exactly the
// direct call the service performed before the Transport seam — and pushes
// are no-ops (the mirror is the owner storage). Stateless and always open.
type inproc struct{}

// NewInproc returns the in-proc fast-path transport (the default of every
// Service).
func NewInproc() Transport { return inproc{} }

func (inproc) Name() string    { return "inproc" }
func (inproc) Multiproc() bool { return false }

//hotline:hotpath
func (inproc) Fetch(table, owner int, rows []int32, st *Staging, local FetchFunc) error {
	for _, r := range rows {
		if v, ok := st.Lookup(r); ok {
			local(r, v)
		}
	}
	return nil
}

func (inproc) Push(int, int, []int32, RowAt) error { return nil }
func (inproc) Close() error                        { return nil }

// tableReg is one registered sharded table (geometry + row source), kept so
// a multi-process fabric can re-derive ownership for pushes and diagnostics.
type tableReg struct {
	table, dim, rows int
	src              RowAt
}

// SetTransport installs the fabric transport rows travel over; the default
// is the in-proc fast path. Call it on a fresh service — before any table
// is registered (ShardBag / Model.ShardEmbeddings) and before training — so
// the initial shard sync reaches the right fabric. A multi-process
// transport auto-attaches the async gather engine: every fabric fetch is
// staged, which is what gives the socket path its measured wall times.
func (s *Service) SetTransport(tr Transport) {
	if tr == nil {
		tr = NewInproc()
	}
	s.mu.Lock()
	registered := len(s.tables)
	s.mu.Unlock()
	if registered > 0 {
		panic("shard: SetTransport after tables were registered; install the transport on a fresh service")
	}
	s.tr = tr
	s.multiproc = tr.Multiproc()
	if rt, ok := tr.(*ResilientTransport); ok {
		// A revived (re-dialed or spare) peer starts with an empty store;
		// the service restores its shard from the authoritative mirror.
		rt.setResync(s.resyncOwner)
	}
	if s.multiproc {
		s.EnableAsyncGather()
	}
}

// Transport returns the installed fabric transport (never nil).
func (s *Service) Transport() Transport { return s.tr }

// Multiproc reports whether rows cross a process boundary (socket fabric).
func (s *Service) Multiproc() bool { return s.multiproc }

// RegisterTable declares one sharded table's geometry and row source to the
// fabric. On the in-proc transport this only records the registration; on a
// multi-process fabric it bulk-pushes every row to its owner node process
// (the initial shard sync), so worker stores serve fetches from exactly the
// bits the coordinator's mirror holds. ShardBag calls this; shadows share
// the primary's registration.
func (s *Service) RegisterTable(table, dim, rows int, src RowAt) {
	s.mu.Lock()
	s.tables = append(s.tables, tableReg{table: table, dim: dim, rows: rows, src: src})
	s.mu.Unlock()
	if !s.multiproc {
		return
	}
	// Setup path: allocation is fine, and the sync is deliberately NOT
	// counted as scatter wall time (it replicates initial state, it is not
	// training traffic).
	byOwner := make([][]int32, s.cfg.Nodes)
	for r := 0; r < rows; r++ {
		o := s.Owner(table, int32(r))
		byOwner[o] = append(byOwner[o], int32(r))
	}
	for o, rs := range byOwner {
		if len(rs) == 0 {
			continue
		}
		err := s.tr.Push(table, o, rs, src)
		if err != nil {
			err = s.recoverPush(table, o, rs, src, err)
		}
		if err != nil {
			s.noteFabricErr(fmt.Errorf("initial sync of table %d to node %d: %w", table, o, err))
		}
	}
}

// PushUpdates mirrors a sparse update's new row values to their owner
// processes — the pre-reduced scatter: each updated row travels once, to
// the node that owns it, after local pre-reduction already merged every
// contribution. A no-op on single-address-space transports (the update
// already landed in the owner storage). The push is synchronous and
// per-owner, so a later fetch of an updated row always observes the new
// bits; its wall time accumulates into Stats.ScatterWall.
func (s *Service) PushUpdates(table int, rows []int32, src RowAt) {
	if !s.multiproc || len(rows) == 0 {
		return
	}
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	if cap(s.pushGroups) < s.cfg.Nodes {
		s.pushGroups = make([][]int32, s.cfg.Nodes)
	}
	groups := s.pushGroups[:s.cfg.Nodes]
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	for _, r := range rows {
		o := s.Owner(table, r)
		groups[o] = append(groups[o], r)
	}
	s.pushGroups = groups
	for o, rs := range groups {
		if len(rs) == 0 {
			continue
		}
		start := time.Now() //hotline:allow detorder measured scatter wall; never feeds math
		err := s.tr.Push(table, o, rs, src)
		s.scatterWallNS.Add(time.Since(start).Nanoseconds()) //hotline:allow detorder measured scatter wall; never feeds math
		if err != nil {
			err = s.recoverPush(table, o, rs, src, err)
		}
		if err != nil {
			s.noteFabricErr(fmt.Errorf("scatter push of table %d to node %d: %w", table, o, err))
		}
	}
}

// fetchVia routes one per-owner fetch list through the transport, timing it
// into the given wall-clock meter. A failure first offers itself to shard
// adoption (recoverFetch re-routes the rows to surviving owners); only an
// unrecovered failure is recorded as a fabric error.
func (s *Service) fetchVia(wall *atomic.Int64, table, owner int, rows []int32, st *Staging, local FetchFunc) error {
	start := time.Now() //hotline:allow detorder measured gather wall; never feeds math
	err := s.tr.Fetch(table, owner, rows, st, local)
	wall.Add(time.Since(start).Nanoseconds()) //hotline:allow detorder measured gather wall; never feeds math
	if err != nil {
		err = s.recoverFetch(table, owner, rows, st, local, err)
	}
	if err != nil {
		s.noteFabricErr(fmt.Errorf("gather fetch of table %d from node %d: %w", table, owner, err))
	}
	return err
}

// transportFetch is fetchVia on the training-side gather meter.
func (s *Service) transportFetch(table, owner int, rows []int32, st *Staging, local FetchFunc) error {
	return s.fetchVia(&s.gatherWallNS, table, owner, rows, st, local)
}

// ServeGatherSync stages a serve plan's fabric rows synchronously through
// the transport (the read path of a multi-process fabric); the wall time
// books into the serve-side counters (ServeSnapshot().GatherWall). Release
// the returned staging to the gatherer once its rows are consumed.
//
// On a resilient fabric the serve path degrades instead of erroring: each
// per-owner fetch gets exactly one attempt (FetchFast — at most an
// opportunistic re-dial probe, never a backoff sleep), and an unreachable
// owner's rows are answered from the coordinator's warmed mirror, counted
// as StaleServeRows in the serve snapshot. When the peer returns, the probe
// reconnects it and the counter stops — serving un-degrades by itself.
func (s *Service) ServeGatherSync(plan *GatherPlan, dim int, local FetchFunc) *Staging {
	st := s.gather.ring.Staging(plan, dim)
	if len(plan.quant) > 0 {
		st.fillQuant(local)
	}
	rt, degrade := s.tr.(*ResilientTransport)
	for owner, rows := range plan.perOwner {
		if len(rows) == 0 {
			continue
		}
		if degrade {
			start := time.Now() //hotline:allow detorder measured serve wall; never feeds math
			err := rt.FetchFast(plan.Table, owner, rows, st, local)
			s.serveWallNS.Add(time.Since(start).Nanoseconds()) //hotline:allow detorder measured serve wall; never feeds math
			if err != nil {
				for _, r := range rows {
					if v, ok := st.Lookup(r); ok {
						local(r, v)
					}
				}
				s.noteStaleServe(int64(len(rows)))
			}
			continue
		}
		s.fetchVia(&s.serveWallNS, plan.Table, owner, rows, st, local)
	}
	return st
}

// noteStaleServe counts serve rows answered from the mirror during an
// outage.
//
//hotline:stats-writer
func (s *Service) noteStaleServe(rows int64) {
	s.mu.Lock()
	s.serveStats.StaleServeRows += rows
	s.mu.Unlock()
}

// maxAggregatedFabricErrs bounds how many distinct failures FabricErr
// keeps; a long outage produces thousands of identical cascade errors and
// aggregating them all would only bury the actionable ones.
const maxAggregatedFabricErrs = 8

// noteFabricErr aggregates fabric errors: every recorded failure stays
// classifiable (errors.Is walks the join), the first maxAggregatedFabricErrs
// keep their full text, and later ones only count.
func (s *Service) noteFabricErr(err error) {
	s.errMu.Lock()
	switch {
	case s.fabricErr == nil:
		s.fabricErr = err
	case s.fabricErrN < maxAggregatedFabricErrs:
		s.fabricErr = errors.Join(s.fabricErr, err)
	}
	s.fabricErrN++
	s.errMu.Unlock()
}

// FabricErr returns the transport failures the service observed, aggregated
// (nil when the fabric is healthy — including runs where every failure was
// recovered by retry, re-dial or shard adoption; recovered operations are
// not errors). Fetch failures leave staged rows unfilled, so a non-nil
// fabric error voids any parity claim for the run; check it after training
// and after Close. Suppressed duplicates beyond the aggregation cap are
// reported by FabricErrCount.
func (s *Service) FabricErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.fabricErr
}

// FabricErrCount returns how many fabric errors were recorded in total
// (including those beyond the aggregation cap).
func (s *Service) FabricErrCount() int {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.fabricErrN
}

// ResetFabricErr clears the recorded fabric errors (fault-injection tests).
func (s *Service) ResetFabricErr() {
	s.errMu.Lock()
	s.fabricErr = nil
	s.fabricErrN = 0
	s.errMu.Unlock()
}

// Close releases the fabric: the async engine's persistent drainer
// goroutines are retired (parked drainers wake and exit; windows already
// submitted still complete because consumers help drain in Await) and the
// transport is closed. Idempotent and safe under concurrent callers —
// every call after the first returns the first call's result — and safe
// with prefetch windows still open: consuming them after Close works, only
// new asynchronous drains stop.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		if s.gather != nil {
			s.gather.Close()
		}
		if s.tr != nil {
			s.closeErr = s.tr.Close()
		}
	})
	return s.closeErr
}
