//hotline:typed-errors

// Package chaos is the deterministic fault scheduler for the shard fabric:
// a seeded Schedule of kill/restart/delay/corrupt events driven against a
// restartable in-process fabric (Fabric), so recovery tests and the
// mn-chaos scenario inject byte-identical fault sequences on every run.
//
// Determinism is the whole point — a recovery property that only holds for
// one lucky interleaving is not a property. Schedules are pure data derived
// from a seed; the harness applies them at training-window granularity
// (Tick) with the single deliberate exception of restarts, which fire on a
// wall-clock timer: a training loop blocked inside the transport's retry
// path cannot advance windows, so a window-gated restart would deadlock the
// very scenario it exists to test.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Kind is one chaos event type.
type Kind int

const (
	// KillPeer closes the peer's node process mid-run (the in-process
	// equivalent of SIGTERM: hotline-node's signal handler does exactly
	// this server Close).
	KillPeer Kind = iota
	// RestartPeer starts a fresh, empty node process for the peer on a new
	// address, After the event's wall delay.
	RestartPeer
	// DelayLink adds a per-frame read delay on the coordinator↔peer link
	// for the next Windows training windows.
	DelayLink
	// CorruptFrame corrupts the next reply frame read from the peer (a
	// flipped length prefix — never a valid frame again).
	CorruptFrame
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KillPeer:
		return "kill"
	case RestartPeer:
		return "restart"
	case DelayLink:
		return "delay"
	case CorruptFrame:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// Window is the training window at which the event fires (Tick(w)).
	Window int
	Kind   Kind
	// Peer is the target node.
	Peer int
	// After delays a RestartPeer on the wall clock past its window's tick.
	After time.Duration
	// Windows is a DelayLink's duration in training windows.
	Windows int
	// Delay is a DelayLink's added per-frame read delay.
	Delay time.Duration
}

// Schedule is a deterministic fault sequence, ordered by window.
type Schedule []Event

// String renders the schedule compactly ("w3:kill(1) w3:restart(1)+20ms").
func (s Schedule) String() string {
	if len(s) == 0 {
		return "none"
	}
	var b strings.Builder
	for i, e := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "w%d:%s(%d)", e.Window, e.Kind, e.Peer)
		if e.Kind == RestartPeer && e.After > 0 {
			fmt.Fprintf(&b, "+%s", e.After)
		}
		if e.Kind == DelayLink {
			fmt.Fprintf(&b, "×%dw/%s", e.Windows, e.Delay)
		}
	}
	return b.String()
}

// KillRestart is the canonical single-fault schedule: kill peer at window,
// restart it after the given wall delay.
func KillRestart(peer, window int, after time.Duration) Schedule {
	return Schedule{
		{Window: window, Kind: KillPeer, Peer: peer},
		{Window: window, Kind: RestartPeer, Peer: peer, After: after},
	}
}

// Kill is the no-mercy schedule: kill peer at window and never bring it
// back (the shard-adoption scenario).
func Kill(peer, window int) Schedule {
	return Schedule{{Window: window, Kind: KillPeer, Peer: peer}}
}

// Seeded derives a deterministic schedule from seed: one kill+restart of a
// random peer, plus events random link delays spread over the windows. The
// same (seed, windows, nodes, events) always yields the same schedule.
// Frame corruption is deliberately absent — it is non-retriable by design
// (TransientFabricErr), so a generated corruption would void the very
// recovery run the schedule exists to drive; corruption tests build their
// Event explicitly.
func Seeded(seed int64, windows, nodes, events int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	if windows < 2 {
		windows = 2
	}
	victim := rng.Intn(nodes)
	killAt := 1 + rng.Intn(windows-1)
	s := KillRestart(victim, killAt, time.Duration(5+rng.Intn(20))*time.Millisecond)
	for i := 0; i < events; i++ {
		// Fault a peer other than the kill victim so the generated extras
		// never mask the kill/restart recovery under test.
		peer := rng.Intn(nodes)
		if peer == victim {
			peer = (peer + 1) % nodes
		}
		s = append(s, Event{Window: rng.Intn(windows), Kind: DelayLink, Peer: peer,
			Windows: 1 + rng.Intn(2), Delay: time.Duration(1+rng.Intn(3)) * time.Millisecond})
	}
	return s
}
