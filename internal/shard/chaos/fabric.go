//hotline:typed-errors

package chaos

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"hotline/internal/shard"
)

// Fabric is the restartable node fabric the chaos schedule drives: every
// node is a real NodeServer behind a real socket, killable mid-run and
// restartable on a fresh address with an empty store (exactly what a
// SIGTERM'd and re-spawned hotline-node process looks like to the
// coordinator). The fabric's connection wrapper injects the schedule's link
// faults — and because re-dials run through the same wrapper, a revived
// connection stays subject to the schedule.
type Fabric struct {
	network  string
	nodes    int
	timeouts shard.FabricTimeouts
	dir      string

	mu        sync.Mutex
	servers   []*shard.NodeServer // nil while killed
	addrs     []string            // current dial address per node
	gen       []int               // address generation (restarts move)
	delay     []time.Duration     // injected per-read link delay
	delayLeft []int               // remaining windows of the link delay
	corrupt   []bool              // poison the next reply read
	timers    []*time.Timer
	schedule  Schedule
	timeline  []TimelineEntry
	closed    bool
}

// TimelineEntry is one applied chaos action with its wall timestamp —
// the raw material for recovery-latency reporting.
type TimelineEntry struct {
	At   time.Time
	What string
}

// NewFabric starts nodes NodeServers on the given socket family with no
// faults armed. Close releases everything.
func NewFabric(nodes int, network string, timeouts shard.FabricTimeouts) (*Fabric, error) {
	if network != "unix" && network != "tcp" {
		return nil, fmt.Errorf("%w: chaos fabric network %q", shard.ErrFabricConfig, network)
	}
	f := &Fabric{
		network:   network,
		nodes:     nodes,
		timeouts:  timeouts.WithDefaults(),
		servers:   make([]*shard.NodeServer, nodes),
		addrs:     make([]string, nodes),
		gen:       make([]int, nodes),
		delay:     make([]time.Duration, nodes),
		delayLeft: make([]int, nodes),
		corrupt:   make([]bool, nodes),
	}
	if network == "unix" {
		d, err := os.MkdirTemp("", "hlchaos")
		if err != nil {
			return nil, err
		}
		f.dir = d
	}
	for n := 0; n < nodes; n++ {
		if err := f.startNode(n); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// startNode launches one node on a fresh address. Caller does not hold f.mu.
func (f *Fabric) startNode(node int) error {
	f.mu.Lock()
	gen := f.gen[node]
	f.gen[node]++
	f.mu.Unlock()
	addr := "127.0.0.1:0"
	if f.network == "unix" {
		// Generation-suffixed paths: a restarted node never fights its
		// predecessor's socket file.
		addr = fmt.Sprintf("%s/n%d_%d.sock", f.dir, node, gen)
	}
	srv, err := shard.ServeNode(node, f.network, addr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.servers[node] = srv
	f.addrs[node] = srv.Addr()
	f.mu.Unlock()
	return nil
}

// Addrs returns every node's current dial address.
func (f *Fabric) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.addrs...)
}

// Server returns node's live NodeServer (nil while killed).
func (f *Fabric) Server(node int) *shard.NodeServer {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.servers[node]
}

// Resolve reports a node's current dial address — the ResilientTransport's
// Resolve hook, pointing re-dials at restarted processes.
func (f *Fabric) Resolve(owner int) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addrs[owner], nil
}

// Dial connects a ResilientTransport to the fabric, wiring the chaos
// connection wrapper and (unless the caller supplied one) the Resolve hook.
func (f *Fabric) Dial(retry shard.RetryConfig) (*shard.ResilientTransport, error) {
	if retry.Resolve == nil {
		retry.Resolve = f.Resolve
	}
	inner, err := shard.DialFabric(shard.FabricConfig{
		Network:  f.network,
		Addrs:    f.Addrs(),
		Timeouts: f.timeouts,
		WrapConn: f.wrap,
	})
	if err != nil {
		return nil, err
	}
	return shard.NewResilientTransport(inner, retry)
}

// SetSchedule installs the fault schedule Tick applies.
func (f *Fabric) SetSchedule(s Schedule) {
	f.mu.Lock()
	f.schedule = s
	f.mu.Unlock()
}

// Tick applies every scheduled event for training window w, then ages the
// link delays by one window. Kills and link faults apply immediately;
// restarts arm a wall-clock timer — a training loop blocked inside the
// transport's retry never advances windows, so only a timer can revive the
// peer it is waiting for.
func (f *Fabric) Tick(w int) {
	f.mu.Lock()
	var kills []int
	var restarts []Event
	for _, e := range f.schedule {
		if e.Window != w {
			continue
		}
		switch e.Kind {
		case KillPeer:
			kills = append(kills, e.Peer)
		case RestartPeer:
			restarts = append(restarts, e)
		case DelayLink:
			f.delay[e.Peer] = e.Delay
			f.delayLeft[e.Peer] = e.Windows
			f.note("w%d: delay link %d by %s for %d windows", w, e.Peer, e.Delay, e.Windows)
		case CorruptFrame:
			f.corrupt[e.Peer] = true
			f.note("w%d: corrupt next frame from %d", w, e.Peer)
		}
	}
	for n := range f.delayLeft {
		if f.delayLeft[n] > 0 {
			f.delayLeft[n]--
			if f.delayLeft[n] == 0 {
				f.delay[n] = 0
			}
		}
	}
	f.mu.Unlock()
	for _, peer := range kills {
		f.Kill(peer)
	}
	for _, e := range restarts {
		f.armRestart(w, e)
	}
}

// Kill closes a node's process — the coordinator-visible equivalent of
// SIGTERM (hotline-node's signal handler calls exactly this Close).
func (f *Fabric) Kill(peer int) {
	f.mu.Lock()
	srv := f.servers[peer]
	f.servers[peer] = nil
	f.note("kill node %d", peer)
	f.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// armRestart schedules a wall-delayed restart of a killed peer.
func (f *Fabric) armRestart(w int, e Event) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.note("w%d: restart of node %d armed in %s", w, e.Peer, e.After)
	t := time.AfterFunc(e.After, func() { f.Restart(e.Peer) })
	f.timers = append(f.timers, t)
	f.mu.Unlock()
}

// Restart launches a fresh, empty node process for peer on a new address.
// The transport's Resolve hook picks the address up on its next re-dial and
// the service's resync restores the shard from the mirror.
func (f *Fabric) Restart(peer int) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("%w: chaos fabric closed", shard.ErrClosed)
	}
	f.mu.Unlock()
	if err := f.startNode(peer); err != nil {
		return err
	}
	f.mu.Lock()
	f.note("node %d restarted on %s", peer, f.addrs[peer])
	f.mu.Unlock()
	return nil
}

// Timeline returns the applied chaos actions with wall timestamps.
func (f *Fabric) Timeline() []TimelineEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]TimelineEntry(nil), f.timeline...)
}

// note appends a timeline entry. Caller holds f.mu.
func (f *Fabric) note(format string, args ...any) {
	f.timeline = append(f.timeline, TimelineEntry{At: time.Now(), What: fmt.Sprintf(format, args...)})
}

// Close stops pending restart timers, every live node, and removes the
// socket dir. Idempotent.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	timers := f.timers
	servers := append([]*shard.NodeServer(nil), f.servers...)
	f.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	for _, s := range servers {
		if s != nil {
			s.Close()
		}
	}
	if f.dir != "" {
		os.RemoveAll(f.dir)
	}
	return nil
}

// linkState reads the current fault state of one peer link.
func (f *Fabric) linkState(peer int) (delay time.Duration, corrupt bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delay[peer], f.corrupt[peer]
}

// takeCorrupt consumes the peer's one-shot corruption flag.
func (f *Fabric) takeCorrupt(peer int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	was := f.corrupt[peer]
	f.corrupt[peer] = false
	return was
}

// wrap is the FabricConfig.WrapConn injector: every coordinator→node
// connection — including each re-dial — reads replies through the fault
// state the schedule maintains.
func (f *Fabric) wrap(owner int, c net.Conn) net.Conn {
	return &chaosConn{Conn: c, f: f, peer: owner}
}

// chaosConn injects link faults on the reply direction: an armed DelayLink
// sleeps before each read, and an armed CorruptFrame flips the first byte
// of the next read — the length prefix — so the frame can never decode
// (the non-retriable corruption class).
type chaosConn struct {
	net.Conn
	f    *Fabric
	peer int
}

func (c *chaosConn) Read(p []byte) (int, error) {
	delay, corrupt := c.f.linkState(c.peer)
	if delay > 0 {
		time.Sleep(delay)
	}
	n, err := c.Conn.Read(p)
	if corrupt && n > 0 && c.f.takeCorrupt(c.peer) {
		p[0] ^= 0xa5
	}
	return n, err
}
