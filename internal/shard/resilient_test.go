package shard

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// noSleep is the injected clock for recovery tests: backoff costs nothing,
// the budget never expires on wall time, and schedules are deterministic.
func noSleep(cfg *RetryConfig) {
	cfg.Sleep = func(time.Duration) {}
	cfg.Backoff = func(int) time.Duration { return 0 }
}

func TestTransientFabricErrClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
	}{
		{"nil", nil, false},
		{"peer dead", fmt.Errorf("node 1: %w", ErrPeerDead), true},
		{"io eof", fmt.Errorf("%w: node 1 read: %w", ErrPeerDead, io.ErrUnexpectedEOF), true},
		{"truncated", fmt.Errorf("%w: node 1 read: %w", ErrPeerDead, ErrTruncatedFrame), true},
		{"bad frame", fmt.Errorf("%w: node 1 decode: %w", ErrPeerDead, ErrBadFrame), false},
		{"oversized frame", fmt.Errorf("%w: node 1 read: %w", ErrPeerDead, ErrFrameTooLarge), false},
		{"unknown row", wireErr(wireErrUnknownRow, "row 9"), false},
		{"config", fmt.Errorf("%w: bad network", ErrFabricConfig), false},
		{"closed", ErrClosed, false},
	}
	for _, c := range cases {
		if got := TransientFabricErr(c.err); got != c.transient {
			t.Errorf("%s: TransientFabricErr = %v, want %v", c.name, got, c.transient)
		}
	}
}

// resilientFixture is a 2-node local fabric behind a ResilientTransport
// with an injected (sleepless) clock, its rows pre-pushed and a resync
// callback restoring them on revival.
type resilientFixture struct {
	fab  *LocalFabric
	rt   *ResilientTransport
	rows []int32
	dim  int
}

func newResilientFixture(t *testing.T, cfg RetryConfig) *resilientFixture {
	t.Helper()
	const dim = 8
	f, err := StartLocalFabric(2, "unix", fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	noSleep(&cfg)
	rt, err := NewResilientTransport(f.Transport, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int32{1, 3, 5, 7}
	fx := &resilientFixture{fab: f, rt: rt, rows: rows, dim: dim}
	rt.setResync(func(owner int, direct Transport) error {
		return direct.Push(0, owner, rows, rowPattern(dim))
	})
	if err := rt.Push(0, 1, rows, rowPattern(dim)); err != nil {
		t.Fatal(err)
	}
	return fx
}

// TestResilientRedialRevives kills a node mid-run and restarts it on a new
// port: the transport classifies the failure transient, re-dials via the
// Resolve hook, resyncs the empty store from the row source, and the
// original fetch replays successfully — the caller never sees the outage.
func TestResilientRedialRevives(t *testing.T) {
	var restarted *NodeServer
	fx := newResilientFixture(t, RetryConfig{
		Resolve: func(owner int) (string, error) {
			if owner == 1 && restarted != nil {
				return restarted.Addr(), nil
			}
			return "", nil
		},
	})
	fx.fab.Servers[1].Close()
	srv, err := ServeNode(1, "unix", t.TempDir()+"/restart.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	restarted = srv

	st := stagingFor(fx.rows, fx.dim)
	if err := fx.rt.Fetch(0, 1, fx.rows, st, nil); err != nil {
		t.Fatalf("fetch across restart: %v", err)
	}
	checkFetched(t, st, fx.rows, fx.dim)
	h := fx.rt.PeerHealth()[1]
	if h.State != PeerAlive || h.Redials < 1 || h.Addr != srv.Addr() {
		t.Fatalf("peer 1 health after revival = %+v", h)
	}
	if h.LastErr != "" {
		t.Fatalf("healthy peer still reports error %q", h.LastErr)
	}
}

// TestResilientSpareAdoptsIdentity kills a node with no restart in sight:
// after SpareAfter failed re-dials of the dead address, the configured
// spare process adopts the node's identity — address swap, re-dial, resync
// — and traffic resumes with ownership (and therefore training bits)
// unchanged.
func TestResilientSpareAdoptsIdentity(t *testing.T) {
	spare, err := ServeNode(1, "unix", t.TempDir()+"/spare.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer spare.Close()
	fx := newResilientFixture(t, RetryConfig{
		Spares:     []string{spare.Addr()},
		SpareAfter: 2,
	})
	fx.fab.Servers[1].Close()

	st := stagingFor(fx.rows, fx.dim)
	if err := fx.rt.Fetch(0, 1, fx.rows, st, nil); err != nil {
		t.Fatalf("fetch across spare adoption: %v", err)
	}
	checkFetched(t, st, fx.rows, fx.dim)
	h := fx.rt.PeerHealth()[1]
	if !h.Adopted || h.State != PeerAlive || h.Addr != spare.Addr() {
		t.Fatalf("peer 1 health after spare adoption = %+v", h)
	}
	if s := spare.Stats(); s.RowsHeld != len(fx.rows) {
		t.Fatalf("spare holds %d rows, want %d", s.RowsHeld, len(fx.rows))
	}
}

// TestResilientGivesUpPastBudget exhausts the redial budget against a peer
// that never comes back: the peer is declared unrecoverable (PeerDead), the
// error stays classifiable and carries the address, and later operations
// fail fast.
func TestResilientGivesUpPastBudget(t *testing.T) {
	fx := newResilientFixture(t, RetryConfig{MaxRedials: 2})
	deadAddr := fx.rt.inner.peerAddr(1)
	fx.fab.Servers[1].Close()

	err := fx.rt.Fetch(0, 1, fx.rows, stagingFor(fx.rows, fx.dim), nil)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("fetch past budget = %v, want ErrPeerDead", err)
	}
	h := fx.rt.PeerHealth()[1]
	if h.State != PeerDead {
		t.Fatalf("peer 1 health after give-up = %+v", h)
	}
	err2 := fx.rt.Push(0, 1, fx.rows, rowPattern(fx.dim))
	if !errors.Is(err2, ErrPeerDead) {
		t.Fatalf("push to unrecoverable peer = %v, want fast ErrPeerDead", err2)
	}
	for _, e := range []error{err, err2} {
		if !containsAddr(e, deadAddr) {
			t.Fatalf("error %q lost the dead peer's address %q", e, deadAddr)
		}
	}
	// The healthy peer is untouched.
	if err := fx.rt.Push(0, 0, fx.rows, rowPattern(fx.dim)); err != nil {
		t.Fatalf("healthy peer after neighbour give-up: %v", err)
	}
}

func containsAddr(err error, addr string) bool {
	return err != nil && addr != "" && strings.Contains(err.Error(), addr)
}

// TestResilientCorruptionDoesNotRetry: protocol corruption (a reply that
// can never form a valid frame) is not transient — the resilient layer
// surfaces it unretried instead of hammering a peer that is speaking
// garbage.
func TestResilientCorruptionDoesNotRetry(t *testing.T) {
	fx := newResilientFixture(t, RetryConfig{})
	// Talk to peer 1 with a request the node answers with the wrong opcode:
	// exercise the classifier directly on the typed error exchange produces.
	err := fmt.Errorf("%w: node 1 (unix x.sock) decode: %w", ErrPeerDead, ErrBadFrame)
	if TransientFabricErr(err) {
		t.Fatal("corruption classified transient")
	}
	// And end-to-end: a healthy fabric op still works after the classifier
	// refuses a corruption retry elsewhere.
	if err := fx.rt.Push(0, 0, fx.rows, rowPattern(fx.dim)); err != nil {
		t.Fatal(err)
	}
}

// serviceRecoveryFixture builds a pure-remote 2-node Service over a
// resilient local fabric with the given recovery policy armed and one
// registered 32-row table.
func serviceRecoveryFixture(t *testing.T, policy RecoveryPolicy, retry RetryConfig) (*Service, *LocalFabric) {
	t.Helper()
	const dim, rows = 8, 32
	f, err := StartLocalFabric(2, "unix", fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	noSleep(&retry)
	rt, err := NewResilientTransport(f.Transport, retry)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Nodes: 2, CacheBytes: 0, RowBytes: dim * 4}, nil)
	svc.SetRecovery(RecoveryConfig{Policy: policy})
	svc.SetTransport(rt)
	svc.RegisterTable(0, dim, rows, rowPattern(dim))
	if err := svc.FabricErr(); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	return svc, f
}

// TestServiceSurvivorAdoption kills a peer past its retry budget under the
// adopt policy: the survivor adopts the dead node's rows (migrated from the
// authoritative mirror), the failed fetch re-routes and completes, and the
// run records no fabric error — recovery, not failure.
func TestServiceSurvivorAdoption(t *testing.T) {
	svc, f := serviceRecoveryFixture(t, RecoverAdopt, RetryConfig{MaxRedials: 1, MaxAttempts: 1})
	defer svc.Close()
	f.Servers[1].Close()

	// Rows owned by node 1 under round-robin (odd rows).
	rows := []int32{1, 3, 5, 7}
	st := stagingFor(rows, 8)
	if err := svc.transportFetch(0, 1, rows, st, nil); err != nil {
		t.Fatalf("fetch across survivor adoption: %v", err)
	}
	checkFetched(t, st, rows, 8)
	if err := svc.FabricErr(); err != nil {
		t.Fatalf("recovered run recorded a fabric error: %v", err)
	}
	if dead := svc.DeadNodes(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadNodes = %v, want [1]", dead)
	}
	rs := svc.RecoveryStats()
	if rs.Adoptions != 1 || rs.MigratedRows == 0 || rs.Refetches == 0 {
		t.Fatalf("RecoveryStats = %+v", rs)
	}
	// Ownership now routes every former node-1 row to the survivor.
	for _, r := range rows {
		if o := svc.Owner(0, r); o != 0 {
			t.Fatalf("row %d still owned by %d after adoption", r, o)
		}
	}
	// Scatter pushes to adopted rows follow the new ownership.
	svc.PushUpdates(0, rows, rowPattern(8))
	if err := svc.FabricErr(); err != nil {
		t.Fatalf("push after adoption: %v", err)
	}
}

// TestServiceAdoptionNotArmedFailsFast: without the adopt policy a dead
// peer past its budget is a run-voiding fabric error, exactly as before the
// recovery subsystem existed.
func TestServiceAdoptionNotArmedFailsFast(t *testing.T) {
	svc, f := serviceRecoveryFixture(t, RecoverRedial, RetryConfig{MaxRedials: 1, MaxAttempts: 1})
	defer svc.Close()
	f.Servers[1].Close()
	rows := []int32{1, 3}
	if err := svc.transportFetch(0, 1, rows, stagingFor(rows, 8), nil); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("fetch without adoption = %v, want ErrPeerDead", err)
	}
	if svc.FabricErr() == nil {
		t.Fatal("unrecovered failure recorded no fabric error")
	}
	if len(svc.DeadNodes()) != 0 {
		t.Fatal("redial policy must not adopt shards")
	}
}

// TestFabricErrAggregates: the fabric error is no longer first-error-wins —
// distinct failures aggregate (classifiable through the join) and the total
// count survives past the aggregation cap.
func TestFabricErrAggregates(t *testing.T) {
	svc := New(Config{Nodes: 2, CacheBytes: 0, RowBytes: 16}, nil)
	defer svc.Close()
	svc.noteFabricErr(fmt.Errorf("first: %w", ErrPeerDead))
	svc.noteFabricErr(fmt.Errorf("second: %w", ErrUnknownRow))
	for i := 0; i < 2*maxAggregatedFabricErrs; i++ {
		svc.noteFabricErr(fmt.Errorf("cascade %d: %w", i, ErrPeerDead))
	}
	err := svc.FabricErr()
	if !errors.Is(err, ErrPeerDead) || !errors.Is(err, ErrUnknownRow) {
		t.Fatalf("aggregate = %v, want both classes classifiable", err)
	}
	if n := svc.FabricErrCount(); n != 2+2*maxAggregatedFabricErrs {
		t.Fatalf("FabricErrCount = %d", n)
	}
	svc.ResetFabricErr()
	if svc.FabricErr() != nil || svc.FabricErrCount() != 0 {
		t.Fatal("ResetFabricErr left state behind")
	}
}

// TestServeDegradesToMirror: with a resilient fabric, a serve-side gather
// against a dead peer answers from the coordinator's mirror instead of
// erroring, counts StaleServeRows in the serve snapshot only, and
// un-degrades by itself once the peer is back.
func TestServeDegradesToMirror(t *testing.T) {
	var restarted *NodeServer
	svc, f := serviceRecoveryFixture(t, RecoverRedial, RetryConfig{
		MaxRedials: 1,
		Resolve: func(owner int) (string, error) {
			if owner == 1 && restarted != nil {
				return restarted.Addr(), nil
			}
			return "", nil
		},
	})
	defer svc.Close()
	// The serve plan wants odd (node-1-owned) rows.
	rows := []int32{1, 3, 5}
	plan := newGatherPlan(0, 2)
	for _, r := range rows {
		plan.add(r, 1, 32)
	}
	local := func(row int32, dst []float32) {
		for k := range dst {
			dst[k] = float32(row)*1000 + float32(k)
		}
	}

	f.Servers[1].Close()
	st := svc.ServeGatherSync(plan, 8, local)
	checkFetched(t, st, rows, 8)
	svc.Gatherer().Release(st)
	if got := svc.ServeSnapshot().StaleServeRows; got != int64(len(rows)) {
		t.Fatalf("StaleServeRows = %d, want %d", got, len(rows))
	}
	if svc.Snapshot().StaleServeRows != 0 {
		t.Fatal("training snapshot counted serve staleness")
	}
	if err := svc.FabricErr(); err != nil {
		t.Fatalf("degraded serve recorded a fabric error: %v", err)
	}

	// Peer returns on a new port; the next serve gather probes, re-dials,
	// resyncs and stops counting stale rows.
	srv, err := ServeNode(1, "unix", t.TempDir()+"/back.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	restarted = srv
	before := svc.ServeSnapshot().StaleServeRows
	st2 := svc.ServeGatherSync(plan, 8, local)
	checkFetched(t, st2, rows, 8)
	svc.Gatherer().Release(st2)
	if got := svc.ServeSnapshot().StaleServeRows; got != before {
		t.Fatalf("StaleServeRows grew to %d after the peer returned", got)
	}
	if h := svc.PeerHealth()[1]; h.State != PeerAlive {
		t.Fatalf("peer 1 health after return = %+v", h)
	}
}
