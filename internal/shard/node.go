//hotline:typed-errors

package shard

import (
	"errors"
	"fmt"
	"io"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"hotline/internal/tensor"
)

// NodeServer is one shard node of the socket fabric: the authoritative store
// for the embedding rows its node owns, served over the length-prefixed wire
// protocol. `cmd/hotline-node` wraps it as a standalone OS process; tests
// and the in-process fallback run it as a goroutine behind a real socket —
// the bytes cross the kernel either way.
//
// The server is a strict responder: every frame the coordinator sends gets
// exactly one reply on the same connection (hello→ack, push→ack,
// fetch→rows, anything malformed→error), so the client can serialize
// request/response per connection without tagging.
type NodeServer struct {
	node int
	ln   net.Listener
	io   time.Duration // per-frame IO deadline; 0 = none

	mu    sync.Mutex
	rows  map[uint64][]float32 // key(table,row) → authoritative payload
	conns map[net.Conn]struct{}

	closeOnce sync.Once
	closed    atomic.Bool
	wg        sync.WaitGroup

	// Stats, readable while serving.
	fetchFrames atomic.Int64 // fetch requests served
	pushFrames  atomic.Int64 // push requests applied
	rowsServed  atomic.Int64 // rows returned by fetches
	rowsStored  atomic.Int64 // rows written by pushes
}

// NodeStats is a snapshot of one node process's serving counters.
type NodeStats struct {
	Node        int
	FetchFrames int64
	PushFrames  int64
	RowsServed  int64
	RowsStored  int64
	RowsHeld    int
}

// ServeNode listens on network/addr ("unix" or "tcp"; pass ":0"-style TCP
// addresses to bind an ephemeral port) and serves the node's row store until
// Close. The accept loop runs in the background; Addr reports the bound
// address.
func ServeNode(node int, network, addr string) (*NodeServer, error) {
	return ServeNodeTimeout(node, network, addr, 0)
}

// ServeNodeTimeout is ServeNode with a per-frame IO deadline: once a
// request's length prefix has arrived, reading its payload and writing the
// reply must each finish within ioTimeout, so a coordinator that stalls
// mid-frame cannot pin a handler goroutine (and its conn) forever. Waiting
// for the next request is never bounded — coordinator connections idle
// between training windows by design. Zero disables the deadline; negative
// is a config error.
func ServeNodeTimeout(node int, network, addr string, ioTimeout time.Duration) (*NodeServer, error) {
	if ioTimeout < 0 {
		return nil, fmt.Errorf("%w: node %d negative io timeout %s", ErrFabricConfig, node, ioTimeout)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("shard: node %d listen %s %s: %w", node, network, addr, err)
	}
	s := &NodeServer{
		node: node, ln: ln, io: ioTimeout,
		rows:  make(map[uint64][]float32),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address (the ephemeral port when the
// caller listened on ":0").
func (s *NodeServer) Addr() string { return s.ln.Addr().String() }

// Node returns the owner index this server holds rows for.
func (s *NodeServer) Node() int { return s.node }

// Stats snapshots the serving counters.
func (s *NodeServer) Stats() NodeStats {
	s.mu.Lock()
	held := len(s.rows)
	s.mu.Unlock()
	return NodeStats{
		Node:        s.node,
		FetchFrames: s.fetchFrames.Load(),
		PushFrames:  s.pushFrames.Load(),
		RowsServed:  s.rowsServed.Load(),
		RowsStored:  s.rowsStored.Load(),
		RowsHeld:    held,
	}
}

// Close stops the accept loop, closes every live connection and waits for
// the connection handlers to retire. Idempotent and safe concurrently.
func (s *NodeServer) Close() error {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		s.ln.Close()
		s.mu.Lock()
		//hotline:allow detorder teardown closes every conn; order is unobservable
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *NodeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// serveConn handles one coordinator connection: frame in, frame out.
func (s *NodeServer) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	var in []byte   // read scratch, grown to the largest frame seen
	var out []byte  // write scratch
	var req wireMsg // decoded request, slices reused
	var rep wireMsg
	for {
		payload, err := s.readRequest(c, in)
		if err != nil {
			if errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrTruncatedFrame) {
				// Protocol violation: tell the peer once, then drop the
				// conn — framing is lost, nothing later can be trusted.
				s.reply(c, &out, &wireMsg{op: opError, code: wireErrBadFrame, text: err.Error()})
			}
			return
		}
		in = payload[:cap(payload)]
		if err := decodeMsg(payload, &req); err != nil {
			s.reply(c, &out, &wireMsg{op: opError, code: wireErrBadFrame, text: err.Error()})
			return
		}
		switch req.op {
		case opHello:
			if req.node != s.node {
				s.reply(c, &out, &wireMsg{op: opError, code: wireErrInternal,
					text: fmt.Sprintf("hello for node %d, this is node %d", req.node, s.node)})
				return
			}
			if !s.reply(c, &out, &wireMsg{op: opAck}) {
				return
			}
		case opPush:
			s.applyPush(&req)
			if !s.reply(c, &out, &wireMsg{op: opAck}) {
				return
			}
		case opFetch:
			if !s.replyFetch(c, &out, &req, &rep) {
				return
			}
		case opFetchQ:
			if !s.replyFetchQuant(c, &out, &req, &rep) {
				return
			}
		default:
			s.reply(c, &out, &wireMsg{op: opError, code: wireErrBadFrame,
				text: fmt.Sprintf("unexpected opcode %d", req.op)})
			return
		}
	}
}

// applyPush stores the pushed row payloads (copying out of the frame).
func (s *NodeServer) applyPush(req *wireMsg) {
	s.mu.Lock()
	for i, r := range req.rows {
		k := key(req.table, r)
		dst := s.rows[k]
		if cap(dst) < req.dim {
			dst = make([]float32, req.dim)
		} else {
			dst = dst[:req.dim]
		}
		copy(dst, req.vals[i*req.dim:(i+1)*req.dim])
		s.rows[k] = dst
	}
	s.mu.Unlock()
	s.pushFrames.Add(1)
	s.rowsStored.Add(int64(len(req.rows)))
}

// replyFetch answers a fetch with the requested rows, or an unknown-row
// error if any is absent from the store.
func (s *NodeServer) replyFetch(c net.Conn, out *[]byte, req, rep *wireMsg) bool {
	rep.op = opRows
	rep.table = req.table
	rep.dim = 0
	rep.rows = append(rep.rows[:0], req.rows...)
	rep.vals = rep.vals[:0]
	s.mu.Lock()
	for _, r := range req.rows {
		v, ok := s.rows[key(req.table, r)]
		if !ok {
			s.mu.Unlock()
			return s.reply(c, out, &wireMsg{op: opError, code: wireErrUnknownRow,
				text: fmt.Sprintf("table %d row %d of node %d", req.table, r, s.node)})
		}
		if rep.dim == 0 {
			rep.dim = len(v)
		}
		rep.vals = append(rep.vals, v...)
	}
	s.mu.Unlock()
	s.fetchFrames.Add(1)
	s.rowsServed.Add(int64(len(req.rows)))
	return s.reply(c, out, rep)
}

// replyFetchQuant answers a quantized fetch: each requested row is quantized
// from the authoritative fp32 store at the requested width and travels at
// that width (rows16 or rows8), so a warm-tier refill moves 2-4x fewer
// fabric bytes than a full-precision fetch.
func (s *NodeServer) replyFetchQuant(c net.Conn, out *[]byte, req, rep *wireMsg) bool {
	rep.op = opRows8
	if req.width == WidthFP16 {
		rep.op = opRows16
	}
	rep.table = req.table
	rep.dim = 0
	rep.rows = append(rep.rows[:0], req.rows...)
	rep.vals = rep.vals[:0]
	rep.h16 = rep.h16[:0]
	rep.i8 = rep.i8[:0]
	rep.scales = rep.scales[:0]
	s.mu.Lock()
	for _, r := range req.rows {
		v, ok := s.rows[key(req.table, r)]
		if !ok {
			s.mu.Unlock()
			return s.reply(c, out, &wireMsg{op: opError, code: wireErrUnknownRow,
				text: fmt.Sprintf("table %d row %d of node %d", req.table, r, s.node)})
		}
		if rep.dim == 0 {
			rep.dim = len(v)
		}
		if req.width == WidthFP16 {
			n := len(rep.h16)
			rep.h16 = slices.Grow(rep.h16, len(v))[:n+len(v)]
			tensor.QuantizeRowF16(rep.h16[n:], v)
		} else {
			n := len(rep.i8)
			rep.i8 = slices.Grow(rep.i8, len(v))[:n+len(v)]
			rep.scales = append(rep.scales, tensor.QuantizeRowI8(rep.i8[n:], v))
		}
	}
	s.mu.Unlock()
	s.fetchFrames.Add(1)
	s.rowsServed.Add(int64(len(req.rows)))
	return s.reply(c, out, rep)
}

// readRequest reads one request frame. The wait for the length prefix is
// unbounded (idle connections are healthy); once a frame has started, its
// payload must arrive within the IO deadline.
func (s *NodeServer) readRequest(c net.Conn, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	if s.io > 0 {
		if err := c.SetReadDeadline(time.Now().Add(s.io)); err != nil { //hotline:allow detorder deadline arming; timeouts are a fault policy, not math
			return nil, fmt.Errorf("%w: node %d arm read deadline: %v", ErrPeerDead, s.node, err)
		}
		defer c.SetReadDeadline(time.Time{})
	}
	return readFramePayload(c, hdr, buf)
}

// reply frames and writes one response; false means the conn is unusable.
// The write runs under the IO deadline, so a peer that stops draining its
// socket cannot wedge the handler.
func (s *NodeServer) reply(c net.Conn, out *[]byte, m *wireMsg) bool {
	buf := append((*out)[:0], 0, 0, 0, 0) // reserve the length prefix
	buf = appendMsg(buf, m)
	*out = buf
	if s.io > 0 {
		if c.SetWriteDeadline(time.Now().Add(s.io)) != nil { //hotline:allow detorder deadline arming; timeouts are a fault policy, not math
			return false
		}
		defer c.SetWriteDeadline(time.Time{})
	}
	return writeFrame(c, buf) == nil
}
