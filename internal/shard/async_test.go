package shard

import (
	"sync/atomic"
	"testing"
)

// planFor builds a service + plan over a fixed 2-node access set: batch
// position 0 (node 0) touches rows {0, 1}, position 1 (node 1) touches
// {0, 1}; with nothing hot and no cache, rows 1 (for node 0) and 0 (for
// node 1) cross the fabric.
func planFor(t *testing.T) (*Service, *GatherPlan) {
	t.Helper()
	s := New(Config{Nodes: 2, CacheBytes: 0, RowBytes: 64}, hotSet(0))
	plan := s.PlanGather(0, [][]int32{{0, 1}, {0, 1}})
	if plan == nil {
		t.Fatal("plan must carry fabric fetches")
	}
	return s, plan
}

func TestPlanGatherMatchesRecordGather(t *testing.T) {
	// PlanGather must advance counters and cache state exactly like
	// RecordGather on the identical stream.
	idx := [][]int32{{0, 1, 5}, {0, 2, 5}, {3, 1}}
	a := New(Config{Nodes: 2, CacheBytes: 4 * 64, RowBytes: 64}, nil)
	b := New(Config{Nodes: 2, CacheBytes: 4 * 64, RowBytes: 64}, nil)
	for i := 0; i < 3; i++ {
		a.RecordGather(0, idx)
		b.PlanGather(0, idx)
	}
	if sa, sb := a.Snapshot(), b.Snapshot(); sa != sb {
		t.Fatalf("accounting diverged:\nRecord %+v\nPlan   %+v", sa, sb)
	}
}

func TestPlanGatherContents(t *testing.T) {
	_, plan := planFor(t)
	if plan.Rows() != 2 {
		t.Fatalf("staged rows = %d want 2", plan.Rows())
	}
	if plan.Bytes != 2*64 {
		t.Fatalf("plan bytes = %d", plan.Bytes)
	}
	// Rows staged under their owners: row 0 on node 0, row 1 on node 1.
	if len(plan.perOwner[0]) != 1 || plan.perOwner[0][0] != 0 {
		t.Fatalf("owner 0 fetches %v", plan.perOwner[0])
	}
	if len(plan.perOwner[1]) != 1 || plan.perOwner[1][0] != 1 {
		t.Fatalf("owner 1 fetches %v", plan.perOwner[1])
	}
}

func TestPlanGatherNilWhenNothingCrosses(t *testing.T) {
	s := New(Config{Nodes: 2, CacheBytes: 0, RowBytes: 64}, nil)
	// Node 0 touching its own row 0, node 1 its own row 1: all local.
	if plan := s.PlanGather(0, [][]int32{{0}, {1}}); plan != nil {
		t.Fatalf("all-local plan must be nil, got %+v", plan)
	}
	one := New(Config{Nodes: 1, CacheBytes: 0, RowBytes: 64}, nil)
	if plan := one.PlanGather(0, [][]int32{{0, 1}}); plan != nil {
		t.Fatal("single-node plan must be nil")
	}
}

func TestAsyncGatherStagesRows(t *testing.T) {
	_, plan := planFor(t)
	g := NewAsyncGatherer(2)
	var fetches atomic.Int64
	h := g.Submit(plan, 4, func(row int32, dst []float32) {
		fetches.Add(1)
		for k := range dst {
			dst[k] = float32(row)*10 + float32(k)
		}
	})
	st := h.Await()
	if fetches.Load() != 2 {
		t.Fatalf("fetches = %d want 2", fetches.Load())
	}
	for _, row := range []int32{0, 1} {
		v, ok := st.Lookup(row)
		if !ok {
			t.Fatalf("row %d not staged", row)
		}
		for k := range v {
			if v[k] != float32(row)*10+float32(k) {
				t.Fatalf("row %d slot %d = %g", row, k, v[k])
			}
		}
	}
	if _, ok := st.Lookup(7); ok {
		t.Fatal("unfetched row must miss the staging buffer")
	}
	s := g.Stats()
	if s.Windows != 1 || s.PrefetchRows != 2 || s.PrefetchBytes != 2*64 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestAsyncGatherManyWindows(t *testing.T) {
	// Many in-flight windows across nodes exercise the double-buffered
	// queues; every window's staging must land fully.
	s := New(Config{Nodes: 4, CacheBytes: 0, RowBytes: 64}, hotSet(0))
	g := NewAsyncGatherer(4)
	fetch := func(row int32, dst []float32) { dst[0] = float32(row) }
	var handles []*Handle
	for it := 0; it < 64; it++ {
		idx := make([][]int32, 8)
		for b := range idx {
			idx[b] = []int32{int32((it + b) % 32), int32((it*3 + b) % 32)}
		}
		if plan := s.PlanGather(0, idx); plan != nil {
			handles = append(handles, g.Submit(plan, 1, fetch))
		}
	}
	if len(handles) == 0 {
		t.Fatal("expected fabric traffic")
	}
	for _, h := range handles {
		st := h.Await()
		for row, slot := range st.slot {
			if st.buf[slot] != float32(row) {
				t.Fatalf("row %d staged %g", row, st.buf[slot])
			}
		}
	}
	if got := g.Stats().Windows; got != int64(len(handles)) {
		t.Fatalf("windows = %d want %d", got, len(handles))
	}
}

func TestGatherSyncAccountsExposedTime(t *testing.T) {
	_, plan := planFor(t)
	g := NewAsyncGatherer(2)
	st := g.GatherSync(plan, 4, func(row int32, dst []float32) { dst[0] = float32(row) })
	if st.Rows() != 2 {
		t.Fatalf("staged rows = %d", st.Rows())
	}
	s := g.Stats()
	if s.SyncWindows != 1 || s.SyncRows != 2 || s.SyncGather <= 0 {
		t.Fatalf("sync stats: %+v", s)
	}
	if s.Windows != 0 {
		t.Fatalf("sync gather must not count as a prefetch window: %+v", s)
	}
}

// --- bugfix regressions ----------------------------------------------------

func TestPureRemoteCacheMode(t *testing.T) {
	// CacheBytes = 0 is the explicit pure-remote mode: everything remote
	// crosses the fabric, nothing is admitted, and — the regression — no
	// fill traffic is accounted for admissions that cannot happen.
	s := New(Config{Nodes: 2, CacheBytes: 0, RowBytes: 64}, nil)
	if !s.Config().PureRemote() {
		t.Fatal("zero cache must report PureRemote")
	}
	for i := 0; i < 3; i++ {
		s.RecordGather(0, [][]int32{{0, 1}, {0, 1}})
	}
	st := s.Snapshot()
	if st.FillBytes != 0 {
		t.Fatalf("pure-remote service accounted %d fill bytes", st.FillBytes)
	}
	if st.CacheHits != 0 || st.Evictions != 0 {
		t.Fatalf("pure-remote service must never hit or evict: %+v", st)
	}
	// Every iteration re-fetches: 2 remote rows per call.
	if st.GatherRows != 6 {
		t.Fatalf("gather rows = %d want 6", st.GatherRows)
	}
}

func TestSubRowCacheRejected(t *testing.T) {
	// 0 < CacheBytes < RowBytes used to truncate silently to a zero-row
	// cache; it is now a validation error steering callers to the explicit
	// pure-remote mode.
	cfg := Config{Nodes: 2, CacheBytes: 63, RowBytes: 64}
	if err := cfg.Validate(); err == nil {
		t.Fatal("sub-row cache budget must fail validation")
	}
	if err := (Config{Nodes: 2, CacheBytes: 0, RowBytes: 64}).Validate(); err != nil {
		t.Fatalf("pure-remote config must validate: %v", err)
	}
	if err := (Config{Nodes: 2, CacheBytes: 64, RowBytes: 64}).Validate(); err != nil {
		t.Fatalf("one-row cache must validate: %v", err)
	}
}
