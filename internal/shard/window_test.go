package shard

import (
	"testing"
)

// windowFixture builds a 2-node pure-remote service with an engine, a
// float32 backing store of `rows` rows, and a fetch function reading it.
type windowFixture struct {
	svc   *Service
	g     *AsyncGatherer
	store [][]float32
	fetch FetchFunc
}

func newWindowFixture(t *testing.T, rows, dim int) *windowFixture {
	t.Helper()
	f := &windowFixture{}
	f.svc = New(Config{Nodes: 2, CacheBytes: 0, RowBytes: int64(dim) * 4}, hotSet(0))
	f.g = f.svc.EnableAsyncGather()
	f.store = make([][]float32, rows)
	for r := range f.store {
		f.store[r] = make([]float32, dim)
		for k := range f.store[r] {
			f.store[r][k] = float32(r*100 + k)
		}
	}
	f.fetch = func(row int32, dst []float32) { copy(dst, f.store[row]) }
	return f
}

// issue plans and submits one window over the index set and registers it.
func (f *windowFixture) issue(q *WindowQueue, idx [][]int32) {
	plan := f.svc.PlanGather(0, idx)
	var h *Handle
	if plan != nil {
		h = f.g.Submit(plan, len(f.store[0]), f.fetch)
	}
	q.Push(idx, h)
}

func TestWindowQueueMatchIsFIFOAndExact(t *testing.T) {
	f := newWindowFixture(t, 8, 4)
	q := f.svc.NewWindowQueue(0)
	idxA := [][]int32{{0, 1}, {0, 1}}
	idxB := [][]int32{{2, 3}, {2, 3}}
	f.issue(q, idxA)
	f.issue(q, idxB)
	if q.Len() != 2 {
		t.Fatalf("open windows = %d want 2", q.Len())
	}
	// A younger window must not be served while an older one is open, and
	// a foreign index set must not disturb the queue.
	if w := q.Match(idxB); w != nil {
		t.Fatal("younger window served out of order")
	}
	if w := q.Match([][]int32{{0, 1}, {0, 1}}); w != nil {
		t.Fatal("equal-content but different-identity index set must not match")
	}
	wa := q.Match(idxA)
	if wa == nil {
		t.Fatal("oldest window must match its index set")
	}
	st := q.Consume(wa, f.fetch)
	if v, ok := st.Lookup(1); !ok || v[0] != 100 {
		t.Fatalf("staged row 1 = %v ok=%v", v, ok)
	}
	f.g.Release(st)
	q.Recycle(wa)
	if wb := q.Match(idxB); wb == nil {
		t.Fatal("second window must match after the first is consumed")
	} else {
		f.g.Release(q.Consume(wb, f.fetch))
		q.Recycle(wb)
	}
	if q.Len() != 0 {
		t.Fatalf("open windows = %d want 0", q.Len())
	}
}

func TestWindowQueueDirtyRowRepair(t *testing.T) {
	f := newWindowFixture(t, 8, 4)
	q := f.svc.NewWindowQueue(0)
	idx := [][]int32{{0, 1}, {0, 1}} // rows 0 and 1 both cross the fabric
	f.issue(q, idx)

	// A sparse update rewrites row 1 after the window was issued: marking
	// joins the in-flight fetches first, so the mutation cannot race them.
	q.MarkDirty([]int32{1, 1, 5}) // repeats and un-staged rows are fine
	f.store[1][0] = -42

	w := q.Match(idx)
	st := q.Consume(w, f.fetch)
	if v, _ := st.Lookup(1); v[0] != -42 {
		t.Fatalf("dirty row not repaired: %v", v)
	}
	if v, _ := st.Lookup(0); v[0] != 0 {
		t.Fatalf("clean row must keep its staged value: %v", v)
	}
	stats := f.g.Stats()
	if stats.RepairRows != 1 || stats.RepairBytes != 16 {
		t.Fatalf("repair accounting: %+v", stats)
	}
	if stats.StaleRows != 0 {
		t.Fatalf("repair mode counted stale rows: %+v", stats)
	}
	f.g.Release(st)
	q.Recycle(w)
}

func TestWindowQueueStaleMode(t *testing.T) {
	f := newWindowFixture(t, 8, 4)
	f.svc.SetStaleReads(true)
	q := f.svc.NewWindowQueue(0)
	idx := [][]int32{{0, 1}, {0, 1}}
	f.issue(q, idx)

	q.MarkDirty([]int32{1})
	f.store[1][0] = -42

	w := q.Match(idx)
	st := q.Consume(w, f.fetch)
	if v, _ := st.Lookup(1); v[0] != 100 {
		t.Fatalf("stale mode must serve the issue-time value, got %v", v)
	}
	stats := f.g.Stats()
	if stats.StaleRows != 1 || stats.RepairRows != 0 {
		t.Fatalf("stale accounting: %+v", stats)
	}
	f.g.Release(st)
	q.Recycle(w)
}

func TestWindowQueueAbortDiscardsAll(t *testing.T) {
	f := newWindowFixture(t, 8, 4)
	q := f.svc.NewWindowQueue(0)
	idxA := [][]int32{{0, 1}, {0, 1}}
	idxB := [][]int32{{2, 3}, {2, 3}}
	f.issue(q, idxA)
	f.issue(q, idxB)
	q.Abort()
	if q.Len() != 0 {
		t.Fatalf("abort left %d windows open", q.Len())
	}
	if w := q.Match(idxA); w != nil {
		t.Fatal("aborted window must not match")
	}
}

func TestWindowQueueEmptyPlanWindow(t *testing.T) {
	// All-local accesses plan nothing; the empty window keeps the FIFO
	// aligned and consumes to a nil staging.
	f := newWindowFixture(t, 8, 4)
	q := f.svc.NewWindowQueue(0)
	idx := [][]int32{{0}, {1}} // node 0 owns row 0, node 1 owns row 1
	f.issue(q, idx)
	w := q.Match(idx)
	if w == nil {
		t.Fatal("empty-plan window must still match")
	}
	if st := q.Consume(w, f.fetch); st != nil {
		t.Fatalf("empty-plan window staged %d rows", st.Rows())
	}
	q.Recycle(w)
}

func TestWindowQueueBoundsOpenWindows(t *testing.T) {
	// A caller that prefetches but never pointer-matches its forwards must
	// not leak windows: the FIFO evicts its oldest entry past the cap.
	f := newWindowFixture(t, 8, 4)
	q := f.svc.NewWindowQueue(0)
	for i := 0; i < 3*maxOpenWindows; i++ {
		f.issue(q, [][]int32{{0, 1}, {0, 1}}) // fresh slice header each call
	}
	if q.Len() != maxOpenWindows {
		t.Fatalf("open windows = %d want cap %d", q.Len(), maxOpenWindows)
	}
}

func TestPrefetchRingRecycles(t *testing.T) {
	r := NewPrefetchRing()
	p := r.Plan(3, 2)
	p.add(7, 1, 64)
	st := r.Staging(p, 4)
	if st.plan != p || st.Rows() != 1 {
		t.Fatalf("staging binding: %+v", st)
	}
	r.ReleaseStaging(st)
	p2 := r.Plan(0, 2)
	if p2 != p {
		t.Fatal("released plan must be recycled")
	}
	if p2.Rows() != 0 || p2.Bytes != 0 || p2.Table != 0 {
		t.Fatalf("recycled plan not reset: %+v", p2)
	}
	h := r.Handle()
	r.ReleaseHandle(h)
	if r.Handle() != h {
		t.Fatal("released handle must be recycled")
	}
}

func TestAsyncGathererCloseStillCompletes(t *testing.T) {
	// After Close the persistent drainers are gone, but consumers drain
	// submitted windows themselves in Await — nothing hangs or is lost.
	f := newWindowFixture(t, 8, 4)
	f.g.Close()
	plan := f.svc.PlanGather(0, [][]int32{{0, 1}, {0, 1}})
	h := f.g.Submit(plan, 4, f.fetch)
	st := h.Await()
	if v, ok := st.Lookup(1); !ok || v[0] != 100 {
		t.Fatalf("post-close window staged %v ok=%v", v, ok)
	}
	f.g.Release(st)
}
