package shard

import "testing"

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewDeviceCache(2, PolicyLRU)
	c.Insert(1)
	c.Insert(2)
	if !c.Lookup(1) { // 1 becomes most recent
		t.Fatal("1 must be cached")
	}
	if ev := c.Insert(3); !ev {
		t.Fatal("full cache must evict")
	}
	if c.Contains(2) {
		t.Fatal("LRU victim must be 2")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("1 and 3 must survive")
	}
	if c.Evicts != 1 || c.Inserts != 3 {
		t.Fatalf("counters: evicts=%d inserts=%d", c.Evicts, c.Inserts)
	}
}

func TestSRRIPKeepsReReferencedEntries(t *testing.T) {
	c := NewDeviceCache(4, PolicySRRIP)
	for k := uint64(1); k <= 4; k++ {
		c.Insert(k)
	}
	// Promote 1 and 2 to near re-reference; scan keys 10..17 through.
	c.Lookup(1)
	c.Lookup(2)
	for k := uint64(10); k < 18; k++ {
		c.Insert(k)
	}
	// The re-referenced entries should have outlived at least the first
	// wave of scan insertions (scan resistance vs LRU, which would have
	// dropped everything).
	if c.Evicts != 8 {
		t.Fatalf("evicts = %d want 8", c.Evicts)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d want 4", c.Len())
	}
}

func TestZeroCapacityCacheAlwaysMisses(t *testing.T) {
	c := NewDeviceCache(0, PolicyLRU)
	if c.Insert(1) {
		t.Fatal("zero-capacity insert must be a no-op")
	}
	if c.Lookup(1) {
		t.Fatal("zero-capacity cache can never hit")
	}
	if c.Misses != 1 || c.Occupancy() != 0 {
		t.Fatalf("counters: misses=%d occ=%g", c.Misses, c.Occupancy())
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := NewDeviceCache(2, PolicyLRU)
	c.Insert(1)
	c.Insert(2)
	c.Insert(1) // refresh, not duplicate
	if c.Len() != 2 {
		t.Fatalf("len = %d want 2", c.Len())
	}
	c.Insert(3) // evicts 2 (1 was refreshed)
	if c.Contains(2) || !c.Contains(1) {
		t.Fatal("refresh must update recency")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewDeviceCache(4, PolicySRRIP)
	for k := uint64(0); k < 8; k++ {
		c.Insert(k)
	}
	c.Reset()
	if c.Len() != 0 || c.Hits != 0 || c.Evicts != 0 {
		t.Fatal("reset must clear contents and counters")
	}
	c.Insert(42)
	if !c.Contains(42) {
		t.Fatal("cache must be usable after reset")
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewDeviceCache(8, PolicyLRU)
	c.Insert(5)
	c.Lookup(5)
	c.Lookup(6)
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}
